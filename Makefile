GO ?= go

.PHONY: build test race lint vet fuzz-smoke bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	$(GO) run ./cmd/qolint -json qolint-report.json ./...

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=10s ./internal/sqlparse/

bench-smoke:
	$(GO) test -run=^$$ -bench=BenchmarkExecStreamVsMaterialize -benchtime=1x -benchmem ./internal/engine/
	$(GO) test -run=^$$ -bench=BenchmarkHashJoinProbe -benchtime=1x -benchmem ./internal/engine/
	$(GO) run ./cmd/benchobs -out BENCH_obs.json
	$(GO) run ./cmd/benchparallel -out BENCH_parallel.json
	$(GO) run ./cmd/benchjoin -out BENCH_join.json
	$(GO) run ./cmd/benchshard -out BENCH_shard.json

ci: build lint race fuzz-smoke bench-smoke
