GO ?= go

.PHONY: build test race lint vet fuzz-smoke bench-smoke ledger-smoke serve-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	$(GO) run ./cmd/qolint -json qolint-report.json ./...

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=10s ./internal/sqlparse/
	$(GO) test -run=^$$ -fuzz=FuzzBitPackRoundTrip -fuzztime=5s ./internal/colstore/
	$(GO) test -run=^$$ -fuzz=FuzzFORRoundTrip -fuzztime=5s ./internal/colstore/
	$(GO) test -run=^$$ -fuzz=FuzzRLERoundTrip -fuzztime=5s ./internal/colstore/
	$(GO) test -run=^$$ -fuzz=FuzzDictRoundTrip -fuzztime=5s ./internal/colstore/

bench-smoke:
	$(GO) test -run=^$$ -bench=BenchmarkExecStreamVsMaterialize -benchtime=1x -benchmem ./internal/engine/
	$(GO) test -run=^$$ -bench=BenchmarkHashJoinProbe -benchtime=1x -benchmem ./internal/engine/
	$(GO) run ./cmd/benchobs -out BENCH_obs.json
	$(GO) run ./cmd/benchparallel -out BENCH_parallel.json
	$(GO) run ./cmd/benchjoin -out BENCH_join.json
	$(GO) run ./cmd/benchshard -out BENCH_shard.json
	$(GO) run ./cmd/benchserve -out BENCH_serve.json
	$(GO) run ./cmd/benchcolumnar -out BENCH_columnar.json

# ledger-smoke runs the 40-query feedback corpus end to end: persists
# the cardinality ledger, a slow-query log (threshold 0 so the artifact
# always has content), and the lifecycle event log, then reloads the
# persisted file through `ledger top` to prove the round trip.
ledger-smoke:
	$(GO) run ./cmd/robustqo ledger run -lines 20000 -out ledger.bin \
		-slow-query-ms 0 -slow-log slow_queries.jsonl -events query_events.jsonl
	$(GO) run ./cmd/robustqo ledger top -in ledger.bin -n 5
	$(GO) run ./cmd/robustqo ledger drift -in ledger.bin

# serve-smoke boots the debug server with a tiny admission gate and
# asserts cache hits, prepared-statement execution, overload shedding,
# and graceful drain through the real HTTP surface (see the script).
serve-smoke:
	sh scripts/serve_smoke.sh

ci: build lint race fuzz-smoke bench-smoke ledger-smoke serve-smoke
