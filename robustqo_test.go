package robustqo

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// demoDatabase builds a small orders/lineitem database through the public
// API only.
func demoDatabase(t *testing.T, nOrders, linesPerOrder int) *Database {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(&TableSchema{
		Name: "orders",
		Columns: []Column{
			{Name: "o_orderkey", Type: Int},
			{Name: "o_total", Type: Float},
		},
		PrimaryKey: "o_orderkey",
		Ordered:    []string{"o_orderkey"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(&TableSchema{
		Name: "lineitem",
		Columns: []Column{
			{Name: "l_id", Type: Int},
			{Name: "l_orderkey", Type: Int},
			{Name: "l_ship", Type: Date},
			{Name: "l_receipt", Type: Date},
			{Name: "l_price", Type: Float},
		},
		PrimaryKey: "l_id",
		Foreign:    []ForeignKey{{Column: "l_orderkey", RefTable: "orders"}},
		Indexes: []Index{
			{Name: "ix_ship", Column: "l_ship", Kind: NonClustered},
			{Name: "ix_receipt", Column: "l_receipt", Kind: NonClustered},
		},
		Ordered: []string{"l_id", "l_orderkey"},
	}); err != nil {
		t.Fatal(err)
	}
	id := int64(0)
	for o := 0; o < nOrders; o++ {
		if err := db.Insert("orders", Row{NewInt(int64(o)), NewFloat(float64(o) * 1.5)}); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < linesPerOrder; l++ {
			ship := (id * 7919) % 365
			row := Row{
				NewInt(id),
				NewInt(int64(o)),
				NewDate(ship),
				NewDate(ship + 1 + id%10),
				NewFloat(float64(id%100) + 0.5),
			}
			if err := db.Insert("lineitem", row); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEndToEndQuery(t *testing.T) {
	db := demoDatabase(t, 200, 5)
	if err := db.UpdateStatistics(StatsOptions{SampleSize: 300}); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session(Moderate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query(&Query{
		Tables: []string{"lineitem"},
		Pred:   MustParsePredicate("l_ship BETWEEN 100 AND 200"),
		Aggs: []AggSpec{
			{Func: Count, As: "n"},
			{Func: Sum, Arg: Col("l_price"), As: "total"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Columns) != 2 {
		t.Fatalf("result shape: cols %v rows %d", res.Columns, len(res.Rows))
	}
	if res.Columns[0] != "n" || res.Columns[1] != "total" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Verify the count against direct arithmetic: ship = (id*7919)%365.
	want := int64(0)
	for id := int64(0); id < 1000; id++ {
		s := (id * 7919) % 365
		if s >= 100 && s <= 200 {
			want++
		}
	}
	if res.Rows[0][0].I != want {
		t.Errorf("COUNT = %d, want %d", res.Rows[0][0].I, want)
	}
	if res.SimulatedSeconds <= 0 || res.EstimatedSeconds <= 0 {
		t.Errorf("times: est %g sim %g", res.EstimatedSeconds, res.SimulatedSeconds)
	}
	if !strings.Contains(res.Plan, "Aggregate") {
		t.Errorf("plan missing aggregate:\n%s", res.Plan)
	}
}

func TestJoinThroughPublicAPI(t *testing.T) {
	db := demoDatabase(t, 100, 4)
	if err := db.UpdateStatistics(StatsOptions{}); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session(Aggressive)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query(&Query{
		Tables: []string{"lineitem", "orders"},
		Pred:   MustParsePredicate("o_total > 100 AND l_price < 50"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every output row satisfies the predicate.
	oTotal, lPrice := -1, -1
	for i, c := range res.Columns {
		switch c {
		case "orders.o_total":
			oTotal = i
		case "lineitem.l_price":
			lPrice = i
		}
	}
	if oTotal < 0 || lPrice < 0 {
		t.Fatalf("columns = %v", res.Columns)
	}
	for _, r := range res.Rows {
		if r[oTotal].F <= 100 || r[lPrice].F >= 50 {
			t.Fatal("predicate violated in output")
		}
	}
}

func TestSessionThresholdBehaviour(t *testing.T) {
	db := demoDatabase(t, 400, 5)
	if err := db.UpdateStatistics(StatsOptions{SampleSize: 500}); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// An impossible-window query: aggressive sessions pick an index plan,
	// per-query conservative hints switch to the scan.
	q := &Query{
		Tables: []string{"lineitem"},
		Pred:   MustParsePredicate("l_ship BETWEEN 50 AND 54 AND l_receipt BETWEEN 300 AND 304"),
	}
	planLow, err := sess.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planLow, "Index") {
		t.Errorf("T=5%% plan:\n%s", planLow)
	}
	resHigh, err := sess.QueryWithThreshold(q, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resHigh.Plan, "SeqScan") {
		t.Errorf("T=99.9%% plan:\n%s", resHigh.Plan)
	}
}

func TestHistogramSessionDiffersOnCorrelation(t *testing.T) {
	// Perfectly correlated date columns: the robust estimator sees the
	// correlation, histograms multiply marginals.
	db := NewDatabase()
	if err := db.CreateTable(&TableSchema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: Int},
			{Name: "a", Type: Int},
			{Name: "b", Type: Int},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4000; i++ {
		v := (i * 31) % 100
		if err := db.Insert("t", Row{NewInt(i), NewInt(v), NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.UpdateStatistics(StatsOptions{}); err != nil {
		t.Fatal(err)
	}
	robust, err := db.Session(Aggressive)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := db.SessionWith(HistogramAVI, Aggressive, Jeffreys)
	if err != nil {
		t.Fatal(err)
	}
	pred := MustParsePredicate("a < 50 AND b < 50")
	rRows, err := robust.EstimateRows([]string{"t"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	hRows, err := hist.EstimateRows([]string{"t"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	// Truth: 2000 rows. Histograms: ~1000.
	if math.Abs(rRows-2000) > 300 {
		t.Errorf("robust estimate = %g, want ~2000", rRows)
	}
	if math.Abs(hRows-1000) > 200 {
		t.Errorf("histogram estimate = %g, want ~1000", hRows)
	}
}

func TestMagicFallbackThroughChain(t *testing.T) {
	db := demoDatabase(t, 50, 2)
	if err := db.UpdateStatistics(StatsOptions{}); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session(Moderate)
	if err != nil {
		t.Fatal(err)
	}
	// A predicate the synopsis cannot evaluate (unknown column) falls
	// back to the magic estimator instead of failing the estimate call.
	rows, err := sess.EstimateRows([]string{"lineitem"}, MustParsePredicate("mystery = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if rows <= 0 {
		t.Errorf("magic fallback rows = %g", rows)
	}
}

func TestSessionValidation(t *testing.T) {
	db := demoDatabase(t, 10, 2)
	if _, err := db.Session(Moderate); err == nil {
		t.Error("session before UpdateStatistics accepted")
	}
	if err := db.UpdateStatistics(StatsOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Session(0); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := db.SessionWith(RobustSampling, 0.5, Prior{}); err == nil {
		t.Error("invalid prior accepted")
	}
	if _, err := db.SessionWith(EstimatorKind(99), 0.5, Jeffreys); err != nil {
		// Unknown kinds surface at estimator build time.
		t.Log("constructor rejected unknown kind early (acceptable)")
	} else {
		s, _ := db.SessionWith(EstimatorKind(99), 0.5, Jeffreys)
		if _, err := s.Query(&Query{Tables: []string{"orders"}}); err == nil {
			t.Error("unknown estimator kind executed")
		}
	}
}

func TestInsertAndCreateErrors(t *testing.T) {
	db := NewDatabase()
	if err := db.Insert("nope", Row{NewInt(1)}); err == nil {
		t.Error("insert into unknown table accepted")
	}
	if err := db.CreateTable(&TableSchema{}); err == nil {
		t.Error("empty schema accepted")
	}
	if err := db.CreateTable(&TableSchema{
		Name:       "x",
		Columns:    []Column{{Name: "a", Type: Int}},
		PrimaryKey: "a",
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("x", Row{NewString("bad")}); err == nil {
		t.Error("type mismatch accepted")
	}
	if n, err := db.NumRows("x"); err != nil || n != 0 {
		t.Errorf("NumRows = %d, %v", n, err)
	}
	if _, err := db.NumRows("nope"); err == nil {
		t.Error("NumRows unknown table accepted")
	}
	if err := db.UpdateStatistics(StatsOptions{SampleSize: -1}); err == nil {
		t.Error("negative sample size accepted")
	}
}

func TestPosteriorAndRobustSelectivityFacade(t *testing.T) {
	// The Section 3.4 worked example through the public API.
	sel, err := RobustSelectivity(10, 100, Jeffreys, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-0.128) > 0.002 {
		t.Errorf("RobustSelectivity = %g", sel)
	}
	dist, err := Posterior(10, 100, Jeffreys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist.Mean()-10.5/101) > 1e-12 {
		t.Errorf("Mean = %g", dist.Mean())
	}
	q, err := dist.Quantile(0.8)
	if err != nil || math.Abs(q-sel) > 1e-12 {
		t.Errorf("Quantile = %g, %v", q, err)
	}
	if dist.CDF(q)-0.8 > 1e-9 || dist.PDF(0.1) <= 0 || dist.StdDev() <= 0 {
		t.Error("distribution calculus inconsistent")
	}
	if _, err := Posterior(5, 4, Jeffreys); err == nil {
		t.Error("k > n accepted")
	}
}

func TestDateHelpers(t *testing.T) {
	d, err := ParseDate("1997-07-01")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(d) != "1997-07-01" {
		t.Errorf("round trip = %s", FormatDate(d))
	}
	if MustParseDate("1997-09-30")-d != 91 {
		t.Error("window arithmetic wrong")
	}
}

func TestStatisticsPersistenceRoundTrip(t *testing.T) {
	db := demoDatabase(t, 150, 4)
	if err := db.UpdateStatistics(StatsOptions{SampleSize: 200}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.SaveStatistics(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh process: same schema and data, statistics loaded not rebuilt.
	db2 := demoDatabase(t, 150, 4)
	if err := db2.LoadStatistics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	s1, err := db.Session(Moderate)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db2.Session(Moderate)
	if err != nil {
		t.Fatal(err)
	}
	pred := MustParsePredicate("l_ship BETWEEN 100 AND 200")
	r1, err := s1.EstimateRows([]string{"lineitem"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.EstimateRows([]string{"lineitem"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("estimates differ after reload: %g vs %g", r1, r2)
	}
	// Histogram sessions work off loaded statistics too.
	h2, err := db2.SessionWith(HistogramAVI, Moderate, Jeffreys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.EstimateRows([]string{"lineitem"}, pred); err != nil {
		t.Errorf("histogram estimate after load: %v", err)
	}
	// Queries run end to end on loaded statistics.
	res, err := s2.Query(&Query{Tables: []string{"lineitem"}, Pred: pred,
		Aggs: []AggSpec{{Func: Count, As: "n"}}})
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query after load: %v", err)
	}
}

func TestStatisticsPersistenceErrors(t *testing.T) {
	db := demoDatabase(t, 10, 2)
	var buf bytes.Buffer
	if err := db.SaveStatistics(&buf); err == nil {
		t.Error("save before UpdateStatistics accepted")
	}
	if err := db.LoadStatistics(strings.NewReader("nonsense")); err == nil {
		t.Error("garbage statistics accepted")
	}
	// A schema mismatch is rejected at load time.
	if err := db.UpdateStatistics(StatsOptions{SampleSize: 50}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := db.SaveStatistics(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewDatabase()
	if err := other.CreateTable(&TableSchema{
		Name:       "lineitem",
		Columns:    []Column{{Name: "something_else", Type: Int}},
		PrimaryKey: "something_else",
	}); err != nil {
		t.Fatal(err)
	}
	if err := other.LoadStatistics(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mismatched schema accepted")
	}
}

func TestQueryOrderByLimitThroughPublicAPI(t *testing.T) {
	db := demoDatabase(t, 100, 3)
	if err := db.UpdateStatistics(StatsOptions{}); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session(Moderate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query(&Query{
		Tables:  []string{"lineitem"},
		Pred:    MustParsePredicate("l_price >= 0"),
		OrderBy: []SortKey{{Col: ColumnRef{Table: "lineitem", Column: "l_price"}, Desc: true}},
		Limit:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	priceIdx := -1
	for i, c := range res.Columns {
		if c == "lineitem.l_price" {
			priceIdx = i
		}
	}
	if priceIdx < 0 {
		t.Fatalf("columns = %v", res.Columns)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][priceIdx].F > res.Rows[i-1][priceIdx].F {
			t.Fatal("descending order violated")
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := demoDatabase(t, 200, 4)
	if err := db.UpdateStatistics(StatsOptions{SampleSize: 200}); err != nil {
		t.Fatal(err)
	}
	// Concurrent sessions with different thresholds hammering different
	// queries; execution is read-only and must race-free agree with the
	// sequential answers.
	sequential := func(th ConfidenceThreshold, lo int64) int64 {
		sess, err := db.Session(th)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Query(&Query{
			Tables: []string{"lineitem"},
			Pred:   MustParsePredicate(fmt.Sprintf("l_ship BETWEEN %d AND %d", lo, lo+60)),
			Aggs:   []AggSpec{{Func: Count, As: "n"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].I
	}
	type job struct {
		th ConfidenceThreshold
		lo int64
	}
	jobs := make([]job, 0, 24)
	want := make([]int64, 0, 24)
	for i := 0; i < 24; i++ {
		j := job{th: []ConfidenceThreshold{0.05, 0.5, 0.95}[i%3], lo: int64(i * 12)}
		jobs = append(jobs, j)
		want = append(want, sequential(j.th, j.lo))
	}
	var wg sync.WaitGroup
	got := make([]int64, len(jobs))
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sess, err := db.Session(j.th)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := sess.Query(&Query{
				Tables: []string{"lineitem"},
				Pred:   MustParsePredicate(fmt.Sprintf("l_ship BETWEEN %d AND %d", j.lo, j.lo+60)),
				Aggs:   []AggSpec{{Func: Count, As: "n"}},
			})
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.Rows[0][0].I
		}(i, j)
	}
	wg.Wait()
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("job %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestQuerySQLThroughPublicAPI(t *testing.T) {
	db := demoDatabase(t, 120, 4)
	if err := db.UpdateStatistics(StatsOptions{}); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session(Moderate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.QuerySQL(
		"SELECT COUNT(*) AS n, MAX(l_price) AS top FROM lineitem WHERE l_ship BETWEEN 100 AND 200")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Columns[0] != "n" || res.Columns[1] != "top" {
		t.Fatalf("result = %v %v", res.Columns, res.Rows)
	}
	// Cross-check against the programmatic form.
	res2, err := sess.Query(&Query{
		Tables: []string{"lineitem"},
		Pred:   MustParsePredicate("l_ship BETWEEN 100 AND 200"),
		Aggs: []AggSpec{
			{Func: Count, As: "n"},
			{Func: Max, Arg: Col("l_price"), As: "top"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != res2.Rows[0][0].I || res.Rows[0][1].F != res2.Rows[0][1].F {
		t.Errorf("SQL vs programmatic mismatch: %v vs %v", res.Rows[0], res2.Rows[0])
	}
	if _, err := sess.QuerySQL("nonsense"); err == nil {
		t.Error("bad SQL accepted")
	}
	// MustParseQuery is exported and panics on bad input.
	q := MustParseQuery("SELECT * FROM lineitem LIMIT 2")
	r3, err := sess.Query(q)
	if err != nil || len(r3.Rows) != 2 {
		t.Errorf("limit query = %d rows, %v", len(r3.Rows), err)
	}
}
