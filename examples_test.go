package robustqo_test

// Golden-file test for the examples: each examples/<name>/main.go is a
// deterministic program (fixed seeds, synthetic data), so its full
// stdout is pinned in examples/<name>/golden.txt. Regenerate after an
// intentional output change with
//
//	go test -run TestExamplesGolden -update-golden
//
// and review the diff like any other golden update.

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite examples/*/golden.txt from current output")

func TestExamplesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run full programs; skipped in -short mode")
	}
	for _, name := range []string{"quickstart", "adhoc", "dashboard", "starjoin"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			var out, stderr bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run: %v\nstderr:\n%s", err, stderr.String())
			}
			golden := filepath.Join("examples", name, "golden.txt")
			if *updateGolden {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output drifted from %s;\ngot:\n%s\nwant:\n%s", golden, out.Bytes(), want)
			}
		})
	}
}
