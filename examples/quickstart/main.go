// Quickstart: create a table, load data, build statistics, and watch the
// confidence threshold change the chosen plan for the same query.
package main

import (
	"fmt"
	"log"

	"robustqo"
)

func main() {
	db := robustqo.NewDatabase()

	// A sales table with two indexed, correlated date columns: orders
	// ship within a few days of being placed.
	err := db.CreateTable(&robustqo.TableSchema{
		Name: "sales",
		Columns: []robustqo.Column{
			{Name: "id", Type: robustqo.Int},
			{Name: "order_date", Type: robustqo.Date},
			{Name: "ship_date", Type: robustqo.Date},
			{Name: "amount", Type: robustqo.Float},
		},
		PrimaryKey: "id",
		Indexes: []robustqo.Index{
			{Name: "ix_order", Column: "order_date", Kind: robustqo.NonClustered},
			{Name: "ix_ship", Column: "ship_date", Kind: robustqo.NonClustered},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for i := int64(0); i < 50000; i++ {
		ordered := robustqo.MustParseDate("2004-01-01") + (i*37)%700
		shipped := ordered + 1 + i%7
		err := db.Insert("sales", robustqo.Row{
			robustqo.NewInt(i),
			robustqo.NewDate(ordered),
			robustqo.NewDate(shipped),
			robustqo.NewFloat(float64(i%500) + 0.99),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// The analogue of UPDATE STATISTICS: builds the 500-tuple join
	// synopses for the robust estimator and the 250-bucket histograms for
	// the conventional baseline.
	if err := db.UpdateStatistics(robustqo.StatsOptions{}); err != nil {
		log.Fatal(err)
	}

	// Two predicates that are individually wide but jointly select almost
	// nothing — the correlation pattern that breaks histogram optimizers.
	query := &robustqo.Query{
		Tables: []string{"sales"},
		Pred: robustqo.MustParsePredicate(
			"order_date BETWEEN DATE '2004-03-01' AND DATE '2004-05-30' " +
				"AND ship_date BETWEEN DATE '2005-03-01' AND DATE '2005-05-30'"),
		Aggs: []robustqo.AggSpec{
			{Func: robustqo.Count, As: "n"},
			{Func: robustqo.Sum, Arg: robustqo.Col("amount"), As: "total"},
		},
	}

	for _, t := range []robustqo.ConfidenceThreshold{
		robustqo.Aggressive, robustqo.Moderate, robustqo.Conservative,
	} {
		sess, err := db.Session(t)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- confidence threshold %v ---\n", t)
		fmt.Printf("plan:\n%s", res.Plan)
		fmt.Printf("result: n=%v total=%v  simulated time: %.4fs\n\n",
			res.Rows[0][0], res.Rows[0][1], res.SimulatedSeconds)
	}
}
