// Starjoin: the data-warehouse scenario of Experiment 3. A fact table
// joins three dimensions, each filtered to 10% of its rows. Because the
// dimension filters are correlated through the fact table's foreign-key
// distribution, a histogram optimizer always estimates that 0.1% of the
// fact rows qualify — while the sampling-based robust estimator sees the
// true fraction, switching between the semijoin-intersection strategy
// (selective joins) and the hash-join cascade (non-selective joins).
package main

import (
	"fmt"
	"log"

	"robustqo"
)

const (
	factRows = 300000
	dimRows  = 1000
	dims     = 3
	marginal = 0.10 // each dimension filter selects 10%
)

func main() {
	for _, joinFraction := range []float64{0.0002, 0.08} {
		fmt.Printf("=== handcrafted joining fraction: %.2f%% of fact rows ===\n", joinFraction*100)
		db := buildStar(joinFraction)
		if err := db.UpdateStatistics(robustqo.StatsOptions{}); err != nil {
			log.Fatal(err)
		}
		query := starQuery()

		robust, err := db.Session(robustqo.Aggressive)
		if err != nil {
			log.Fatal(err)
		}
		hist, err := db.SessionWith(robustqo.HistogramAVI, robustqo.Aggressive, robustqo.Jeffreys)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range []struct {
			name string
			sess *robustqo.Session
		}{{"robust sampling (T=50%)", robust}, {"histograms + independence", hist}} {
			rows, err := s.sess.EstimateRows(query.Tables, query.Pred)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.sess.Query(query)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("--- %s ---\n", s.name)
			fmt.Printf("estimated joining rows: %.0f of %d\n", rows, factRows)
			fmt.Printf("plan:\n%s", res.Plan)
			fmt.Printf("matching fact rows: %v   simulated time: %.4fs\n\n",
				res.Rows[0][0], res.SimulatedSeconds)
		}
	}
}

// starQuery is the star template: join all dimensions, filter each to its
// selected 10%, aggregate fact measures.
func starQuery() *robustqo.Query {
	q := &robustqo.Query{
		Tables: []string{"fact", "dim1", "dim2", "dim3"},
		Pred: robustqo.MustParsePredicate(
			"dim1.d_attr = 0 AND dim2.d_attr = 0 AND dim3.d_attr = 0"),
		Aggs: []robustqo.AggSpec{
			{Func: robustqo.Count, As: "n"},
			{Func: robustqo.Sum, Arg: robustqo.Col("f_measure"), As: "total"},
		},
	}
	return q
}

// buildStar constructs the star schema with the paper's handcrafted fact
// distribution: with probability joinFraction a fact row's foreign keys
// all land in the selected 10% of their dimensions; with probability
// (10% - joinFraction) per dimension exactly one does; otherwise none do.
// Every marginal is exactly 10%, the joint exactly joinFraction.
func buildStar(joinFraction float64) *robustqo.Database {
	db := robustqo.NewDatabase()
	selCount := int64(float64(dimRows) * marginal)
	for d := 1; d <= dims; d++ {
		name := fmt.Sprintf("dim%d", d)
		if err := db.CreateTable(&robustqo.TableSchema{
			Name: name,
			Columns: []robustqo.Column{
				{Name: "d_id", Type: robustqo.Int},
				{Name: "d_attr", Type: robustqo.Int},
			},
			PrimaryKey: "d_id",
		}); err != nil {
			log.Fatal(err)
		}
		for k := int64(0); k < dimRows; k++ {
			attr := int64(1)
			if k < selCount {
				attr = 0
			}
			if err := db.Insert(name, robustqo.Row{robustqo.NewInt(k), robustqo.NewInt(attr)}); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := db.CreateTable(&robustqo.TableSchema{
		Name: "fact",
		Columns: []robustqo.Column{
			{Name: "f_id", Type: robustqo.Int},
			{Name: "f_dim1", Type: robustqo.Int},
			{Name: "f_dim2", Type: robustqo.Int},
			{Name: "f_dim3", Type: robustqo.Int},
			{Name: "f_measure", Type: robustqo.Float},
		},
		PrimaryKey: "f_id",
		Foreign: []robustqo.ForeignKey{
			{Column: "f_dim1", RefTable: "dim1"},
			{Column: "f_dim2", RefTable: "dim2"},
			{Column: "f_dim3", RefTable: "dim3"},
		},
		Indexes: []robustqo.Index{
			{Name: "ix_d1", Column: "f_dim1", Kind: robustqo.NonClustered},
			{Name: "ix_d2", Column: "f_dim2", Kind: robustqo.NonClustered},
			{Name: "ix_d3", Column: "f_dim3", Kind: robustqo.NonClustered},
		},
	}); err != nil {
		log.Fatal(err)
	}
	perDim := marginal - joinFraction
	rng := newLCG(20050614)
	for f := int64(0); f < factRows; f++ {
		u := rng.float()
		mode := -1 // none selected
		switch {
		case u < joinFraction:
			mode = -2 // all selected
		case u < joinFraction+float64(dims)*perDim:
			mode = int((u - joinFraction) / perDim)
			if mode >= dims {
				mode = dims - 1
			}
		}
		row := robustqo.Row{robustqo.NewInt(f)}
		for d := 0; d < dims; d++ {
			var key int64
			if mode == -2 || mode == d {
				key = int64(rng.float() * float64(selCount))
			} else {
				key = selCount + int64(rng.float()*float64(dimRows-selCount))
			}
			row = append(row, robustqo.NewInt(key))
		}
		row = append(row, robustqo.NewFloat(rng.float()*100))
		if err := db.Insert("fact", row); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// newLCG is a tiny deterministic generator so the example is
// self-contained and reproducible.
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed} }

func (l *lcg) float() float64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return float64(l.state>>11) / float64(1<<53)
}
