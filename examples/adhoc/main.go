// Adhoc: the exploratory-analysis scenario of Section 2.1. An analyst
// fires one-off queries and wants answers as fast as possible on average,
// accepting that a few queries run long. The example contrasts the
// aggressive and conservative thresholds over a batch of ad-hoc queries
// with wildly different selectivities, and demonstrates the per-query
// hint: one latency-critical query inside the batch overrides the
// session's aggressive default.
package main

import (
	"fmt"
	"log"
	"strings"

	"robustqo"
)

func main() {
	db := buildEventLog()
	if err := db.UpdateStatistics(robustqo.StatsOptions{}); err != nil {
		log.Fatal(err)
	}

	// A grab-bag of exploratory questions over an event log: narrow
	// needle-in-haystack lookups next to broad slices.
	questions := []struct {
		title string
		pred  string
	}{
		{"rare error burst", "severity = 9 AND service_id BETWEEN 49 AND 50"},
		{"one service's warnings", "service_id = 42 AND severity >= 5"},
		{"whole quarter of traffic", "day BETWEEN 25 AND 50"},
		{"broad severity slice", "severity >= 3 AND day BETWEEN 0 AND 80"},
		{"needle by day+service", "day = 17 AND service_id = 0"},
	}

	for _, t := range []robustqo.ConfidenceThreshold{robustqo.Aggressive, robustqo.Conservative} {
		sess, err := db.Session(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== session threshold %v ===\n", t)
		var total float64
		for _, question := range questions {
			res, err := sess.Query(&robustqo.Query{
				Tables: []string{"events"},
				Pred:   robustqo.MustParsePredicate(question.pred),
				Aggs:   []robustqo.AggSpec{{Func: robustqo.Count, As: "n"}},
			})
			if err != nil {
				log.Fatal(err)
			}
			total += res.SimulatedSeconds
			fmt.Printf("  %-26s %8v rows  %.4fs  %s\n",
				question.title, res.Rows[0][0], res.SimulatedSeconds, firstLine(res.Plan))
		}
		fmt.Printf("  batch total: %.4fs\n\n", total)
	}

	// Per-query hint: inside an aggressive session, one query that backs
	// a user-facing page is pinned to the conservative threshold.
	sess, err := db.Session(robustqo.Aggressive)
	if err != nil {
		log.Fatal(err)
	}
	q := &robustqo.Query{
		Tables: []string{"events"},
		Pred:   robustqo.MustParsePredicate("day = 3 AND service_id = 3"),
		Aggs:   []robustqo.AggSpec{{Func: robustqo.Count, As: "n"}},
	}
	fast, err := sess.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	pinned, err := sess.QueryWithThreshold(q, robustqo.Conservative)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-query hint on an aggressive session:")
	fmt.Printf("  session default: %s", firstLine(fast.Plan))
	fmt.Printf("\n  hinted T=95%%:    %s\n", firstLine(pinned.Plan))
}

// firstLine summarizes a plan by its access path: the first line naming a
// scan, index, or join operator.
func firstLine(plan string) string {
	for _, line := range strings.Split(plan, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.Contains(trimmed, "Scan") || strings.Contains(trimmed, "Index") ||
			strings.Contains(trimmed, "Join") {
			return trimmed
		}
	}
	return strings.TrimSpace(plan)
}

func buildEventLog() *robustqo.Database {
	db := robustqo.NewDatabase()
	err := db.CreateTable(&robustqo.TableSchema{
		Name: "events",
		Columns: []robustqo.Column{
			{Name: "id", Type: robustqo.Int},
			{Name: "day", Type: robustqo.Int},
			{Name: "service_id", Type: robustqo.Int},
			{Name: "severity", Type: robustqo.Int},
		},
		PrimaryKey: "id",
		Indexes: []robustqo.Index{
			{Name: "ix_day", Column: "day", Kind: robustqo.NonClustered},
			{Name: "ix_service", Column: "service_id", Kind: robustqo.NonClustered},
			{Name: "ix_severity", Column: "severity", Kind: robustqo.NonClustered},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 100000; i++ {
		day := (i * 7) % 100
		service := (i * 131) % 64
		severity := i % 10
		// One flaky service logs everything at the highest severity.
		if service == 7 {
			severity = 9
		}
		err := db.Insert("events", robustqo.Row{
			robustqo.NewInt(i),
			robustqo.NewInt(day),
			robustqo.NewInt(service),
			robustqo.NewInt(severity),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	return db
}
