// Dashboard: the paper's motivating scenario for predictability
// (Section 2.1). An interactive application fires the same parameterized
// query over and over with varying parameters; users judge the system by
// its worst response times, not its average. A conservative confidence
// threshold buys a flat latency profile; an aggressive one is faster on
// average but occasionally far slower.
package main

import (
	"fmt"
	"log"
	"math"

	"robustqo"
)

func main() {
	db := buildOrdersDatabase()
	if err := db.UpdateStatistics(robustqo.StatsOptions{}); err != nil {
		log.Fatal(err)
	}

	// Dashboard widget: revenue in a sliding two-week status window,
	// where both the ship and the receipt filters move together. Joint
	// selectivity swings with the parameter even though each marginal is
	// constant — invisible to histograms, visible to samples.
	makeQuery := func(offset int64) *robustqo.Query {
		base := robustqo.MustParseDate("2004-01-01")
		return &robustqo.Query{
			Tables: []string{"orders"},
			Pred: robustqo.MustParsePredicate(fmt.Sprintf(
				"ship_day BETWEEN %d AND %d AND receipt_day BETWEEN %d AND %d",
				base+100, base+113, base+100+offset, base+113+offset)),
			Aggs: []robustqo.AggSpec{
				{Func: robustqo.Count, As: "orders"},
				{Func: robustqo.Sum, Arg: robustqo.Col("amount"), As: "revenue"},
			},
		}
	}

	fmt.Println("latency profile per confidence threshold over 25 dashboard refreshes")
	fmt.Println("(offsets sweep the correlation window, changing true selectivity)")
	fmt.Println()
	for _, t := range []robustqo.ConfidenceThreshold{0.05, robustqo.Aggressive, robustqo.Moderate, robustqo.Conservative} {
		sess, err := db.Session(t)
		if err != nil {
			log.Fatal(err)
		}
		var times []float64
		for offset := int64(0); offset < 50; offset += 2 {
			res, err := sess.Query(makeQuery(offset))
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, res.SimulatedSeconds)
		}
		mean, sd, worst := summarize(times)
		fmt.Printf("T=%4.0f%%   mean %.4fs   stddev %.4fs   worst %.4fs\n",
			float64(t)*100, mean, sd, worst)
	}
	fmt.Println()
	fmt.Println("the conservative profile trades a slightly higher mean for a flat,")
	fmt.Println("surprise-free worst case — the paper's predictability argument")
}

func summarize(times []float64) (mean, sd, worst float64) {
	for _, x := range times {
		mean += x
		if x > worst {
			worst = x
		}
	}
	mean /= float64(len(times))
	for _, x := range times {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(times)))
	return mean, sd, worst
}

func buildOrdersDatabase() *robustqo.Database {
	db := robustqo.NewDatabase()
	err := db.CreateTable(&robustqo.TableSchema{
		Name: "orders",
		Columns: []robustqo.Column{
			{Name: "id", Type: robustqo.Int},
			{Name: "ship_day", Type: robustqo.Date},
			{Name: "receipt_day", Type: robustqo.Date},
			{Name: "amount", Type: robustqo.Float},
		},
		PrimaryKey: "id",
		Indexes: []robustqo.Index{
			{Name: "ix_ship", Column: "ship_day", Kind: robustqo.NonClustered},
			{Name: "ix_receipt", Column: "receipt_day", Kind: robustqo.NonClustered},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	base := robustqo.MustParseDate("2004-01-01")
	for i := int64(0); i < 80000; i++ {
		ship := base + (i*131)%365
		receipt := ship + 1 + (i*17)%14
		err := db.Insert("orders", robustqo.Row{
			robustqo.NewInt(i),
			robustqo.NewDate(ship),
			robustqo.NewDate(receipt),
			robustqo.NewFloat(float64(i%1000) + 0.5),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	return db
}
