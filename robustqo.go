// Package robustqo is a query engine with a robust, predictability-aware
// query optimizer, reproducing Babcock & Chaudhuri, "Towards a Robust
// Query Optimizer: A Principled and Practical Approach" (SIGMOD 2005).
//
// Cardinality estimates come from Bayesian inference over precomputed
// join synopses: evaluating a predicate on an n-tuple sample with k
// matches yields a Beta(k+½, n-k+½) posterior over the true selectivity
// (Jeffreys prior), and the estimate handed to the cost-based optimizer
// is the posterior's quantile at a user-chosen confidence threshold.
// Low thresholds optimize for expected speed and accept risk; high
// thresholds buy predictable execution times. A conventional
// histogram+independence estimator is included as the baseline the paper
// measures against.
//
// Basic use:
//
//	db := robustqo.NewDatabase()
//	_, err := db.CreateTable(&robustqo.TableSchema{ ... })
//	...
//	err = db.Insert("orders", rows...)
//	err = db.UpdateStatistics(robustqo.StatsOptions{})
//	sess, err := db.Session(robustqo.Moderate)
//	res, err := sess.Query(&robustqo.Query{
//	    Tables: []string{"orders"},
//	    Pred:   robustqo.MustParsePredicate("o_total > 100"),
//	})
package robustqo

import (
	"robustqo/internal/catalog"
	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
	"robustqo/internal/sqlparse"
	"robustqo/internal/value"
)

// Schema and value types, re-exported from the internal layers so that
// users of the module never import internal packages directly.
type (
	// TableSchema declares a table: columns, primary key, foreign keys,
	// secondary indexes, and known physical orderings.
	TableSchema = catalog.TableSchema
	// Column is one column declaration.
	Column = catalog.Column
	// ColumnType enumerates column types (Int, Float, String, Date).
	ColumnType = catalog.Type
	// ForeignKey declares a single-column reference to another table's
	// primary key.
	ForeignKey = catalog.ForeignKey
	// Index declares a secondary index over an Int or Date column.
	Index = catalog.Index
	// IndexKind distinguishes clustered from non-clustered indexes.
	IndexKind = catalog.IndexKind
	// PartitionSpec horizontally partitions a table on an Int or Date
	// column, either by hash or by sorted range bounds. Scans of
	// partitioned tables are pruned by predicates on the partition key,
	// and statistics are kept per shard so pruned estimates tighten.
	PartitionSpec = catalog.PartitionSpec
	// PartitionKind distinguishes hash from range partitioning.
	PartitionKind = catalog.PartitionKind

	// Value is one typed scalar; Row is one tuple.
	Value = value.Value
	// Row is a tuple of values.
	Row = value.Row

	// Expr is a predicate or scalar expression tree; build with the
	// expression constructors or ParsePredicate.
	Expr = expr.Expr
	// ColumnRef names a (possibly table-qualified) column.
	ColumnRef = expr.ColumnRef

	// Query is a select-project-join query over foreign-key joins.
	Query = optimizer.Query
	// AggSpec is one aggregate output column of a Query.
	AggSpec = engine.AggSpec
	// AggFunc enumerates aggregate functions (Sum, Count, Min, Max, Avg).
	AggFunc = engine.AggFunc
	// SortKey is one ORDER BY term of a Query.
	SortKey = engine.SortKey

	// ConfidenceThreshold is the robustness knob: the percentile of the
	// posterior selectivity distribution used as the estimate.
	ConfidenceThreshold = core.ConfidenceThreshold
	// Prior is the Beta prior over selectivity.
	Prior = core.Prior
)

// Column types.
const (
	Int    = catalog.Int
	Float  = catalog.Float
	String = catalog.String
	Date   = catalog.Date
)

// Index kinds.
const (
	Clustered    = catalog.Clustered
	NonClustered = catalog.NonClustered
)

// Partition kinds.
const (
	HashPartition  = catalog.HashPartition
	RangePartition = catalog.RangePartition
)

// Aggregate functions.
const (
	Sum   = engine.Sum
	Count = engine.Count
	Min   = engine.Min
	Max   = engine.Max
	Avg   = engine.Avg
)

// Named confidence thresholds, matching the paper's recommended system
// settings (Section 6.2.5): Aggressive = 50%, Moderate = 80% (the
// general-purpose default), Conservative = 95%.
const (
	Aggressive   = core.Aggressive
	Moderate     = core.Moderate
	Conservative = core.Conservative
)

// Priors over selectivity. Jeffreys is the default; Figure 4 of the
// paper shows the choice has little effect.
var (
	Jeffreys = core.Jeffreys
	Uniform  = core.Uniform
)

// Expression constructors, re-exported for programmatic query building.
var (
	// NewInt wraps an int64 as a Value; similarly NewFloat, NewString,
	// NewDate (days since 1970-01-01).
	NewInt    = value.Int
	NewFloat  = value.Float
	NewString = value.Str
	NewDate   = value.Date

	// ParseDate converts "YYYY-MM-DD" into the Date day number.
	ParseDate = value.ParseDate
	// FormatDate renders a Date day number as "YYYY-MM-DD".
	FormatDate = value.FormatDate

	// ParsePredicate parses a SQL-like predicate string such as
	// "l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30'".
	ParsePredicate = expr.Parse

	// ParseQuery parses a full SQL SELECT statement
	// ("SELECT ... FROM ... [WHERE] [GROUP BY] [ORDER BY] [LIMIT]")
	// into a Query; see Session.QuerySQL for one-call execution.
	ParseQuery = sqlparse.Parse

	// Col references an unqualified column in an expression; TableCol a
	// table-qualified one.
	Col      = expr.C
	TableCol = expr.TC
)

// The Must* variants panic on malformed input. They are intended for
// compile-time-constant strings in example programs and initialization
// code; the internal/ packages themselves never panic (enforced by the
// qolint nopanic analyzer) so every runtime failure surfaces as an
// error the caller can handle.

// MustParseDate is ParseDate panicking on malformed input.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// MustParsePredicate is ParsePredicate panicking on syntax errors.
func MustParsePredicate(input string) Expr {
	e, err := ParsePredicate(input)
	if err != nil {
		panic(err)
	}
	return e
}

// MustParseQuery is ParseQuery panicking on syntax errors.
func MustParseQuery(sql string) *Query {
	q, err := ParseQuery(sql)
	if err != nil {
		panic(err)
	}
	return q
}

// RobustSelectivity computes the paper's point-estimation rule directly:
// the t-quantile of the Beta posterior after observing k matches in an
// n-tuple sample under the prior.
func RobustSelectivity(k, n int, prior Prior, t ConfidenceThreshold) (float64, error) {
	return core.RobustSelectivity(k, n, prior, t)
}

// Posterior returns the full posterior selectivity distribution after
// observing k of n sample matches: Beta(k+a, n-k+b).
func Posterior(k, n int, prior Prior) (Dist, error) {
	d, err := prior.Posterior(k, n)
	if err != nil {
		return Dist{}, err
	}
	return Dist{beta: d}, nil
}

// Dist is a selectivity distribution exposing the probability calculus a
// caller needs to reason about estimation uncertainty.
type Dist struct {
	beta interface {
		PDF(float64) float64
		CDF(float64) float64
		Quantile(float64) (float64, error)
		Mean() float64
		StdDev() float64
	}
}

// PDF returns the probability density at selectivity x.
func (d Dist) PDF(x float64) float64 { return d.beta.PDF(x) }

// CDF returns P[selectivity <= x].
func (d Dist) CDF(x float64) float64 { return d.beta.CDF(x) }

// Quantile inverts the CDF.
func (d Dist) Quantile(p float64) (float64, error) { return d.beta.Quantile(p) }

// Mean returns the expected selectivity.
func (d Dist) Mean() float64 { return d.beta.Mean() }

// StdDev returns the selectivity standard deviation.
func (d Dist) StdDev() float64 { return d.beta.StdDev() }
