package value

import (
	"testing"
	"testing/quick"

	"robustqo/internal/catalog"
)

func TestConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		kind catalog.Type
		str  string
	}{
		{Int(42), catalog.Int, "42"},
		{Float(2.5), catalog.Float, "2.5"},
		{Str("hi"), catalog.String, `"hi"`},
		{Date(100), catalog.Date, "date(100)"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
	}
}

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2), Int(2), 0},
		{Date(10), Date(20), -1},
		{Date(10), Int(10), 0},
		{Float(0.1), Float(0.2), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestCompareStrings(t *testing.T) {
	if c, err := Compare(Str("a"), Str("b")); err != nil || c != -1 {
		t.Errorf("Compare(a,b) = %d, %v", c, err)
	}
	if c, err := Compare(Str("b"), Str("b")); err != nil || c != 0 {
		t.Errorf("Compare(b,b) = %d, %v", c, err)
	}
	if c, err := Compare(Str("c"), Str("b")); err != nil || c != 1 {
		t.Errorf("Compare(c,b) = %d, %v", c, err)
	}
}

func TestCompareTypeMismatch(t *testing.T) {
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("string/int comparison succeeded")
	}
	if _, err := Compare(Int(1), Str("a")); err == nil {
		t.Error("int/string comparison succeeded")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(5), Int(5)) || Equal(Int(5), Int(6)) {
		t.Error("int equality wrong")
	}
	if Equal(Str("5"), Int(5)) {
		t.Error("cross-type equality should be false")
	}
	if !Equal(Float(1), Int(1)) {
		t.Error("1.0 should equal 1")
	}
}

func TestKey(t *testing.T) {
	if Int(7).Key() != Date(7).Key() {
		t.Error("Int and Date keys with same payload should match")
	}
	if Int(7).Key() == Str("7").Key() {
		t.Error("Int and Str keys should differ")
	}
	if Float(1.5).Key() != Float(1.5).Key() {
		t.Error("Float keys should be stable")
	}
}

func TestAsFloatAndNumeric(t *testing.T) {
	if Int(3).AsFloat() != 3 || Float(2.5).AsFloat() != 2.5 || Date(9).AsFloat() != 9 {
		t.Error("AsFloat wrong")
	}
	if Str("x").Numeric() {
		t.Error("string Numeric")
	}
	if !Int(1).Numeric() || !Float(1).Numeric() || !Date(1).Numeric() {
		t.Error("numeric kinds not Numeric")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Error("Clone aliases original")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Compare(Int(a), Int(b))
		y, err2 := Compare(Int(b), Int(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	// Same-kind comparisons cannot fail, so the errors are discarded.
	f := func(a, b, c float64) bool {
		va, vb, vc := Float(a), Float(b), Float(c)
		ab, _ := Compare(va, vb)
		bc, _ := Compare(vb, vc)
		if ab <= 0 && bc <= 0 {
			ac, _ := Compare(va, vc)
			return ac <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateCivilRoundTrip(t *testing.T) {
	cases := []struct {
		y, m, d int
		days    int64
	}{
		{1970, 1, 1, 0},
		{1970, 1, 2, 1},
		{1969, 12, 31, -1},
		{2000, 3, 1, 11017},
	}
	for _, c := range cases {
		if got := DateFromCivil(c.y, c.m, c.d); got != c.days {
			t.Errorf("DateFromCivil(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.days)
		}
		y, m, d := CivilFromDate(c.days)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("CivilFromDate(%d) = %d-%d-%d", c.days, y, m, d)
		}
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(raw int32) bool {
		days := int64(raw % 1000000)
		y, m, d := CivilFromDate(days)
		return DateFromCivil(y, m, d) == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParseFormatDate(t *testing.T) {
	d, err := ParseDate("1997-07-01")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatDate(d); got != "1997-07-01" {
		t.Errorf("FormatDate = %q", got)
	}
	// TPC-H Experiment 1 window: 92 days minus 1 inclusive makes the span.
	d2, err := ParseDate("1997-09-30")
	if err != nil {
		t.Fatal(err)
	}
	if d2-d != 91 {
		t.Errorf("window length = %d days, want 91", d2-d)
	}
	for _, bad := range []string{"nope", "1997-13-01", "1997-00-10", "1997-01-32", ""} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) succeeded", bad)
		}
	}
}
