// Package value defines the runtime value model shared by the storage,
// expression, index, and execution layers: a small tagged union over the
// catalog's column types, with total ordering within each type.
package value

import (
	"fmt"

	"robustqo/internal/catalog"
)

// Value is one typed scalar. The Kind selects which payload field is live:
// I for Int and Date, F for Float, S for String.
type Value struct {
	Kind catalog.Type
	I    int64
	F    float64
	S    string
}

// Int returns an Int value.
func Int(v int64) Value { return Value{Kind: catalog.Int, I: v} }

// Float returns a Float value.
func Float(v float64) Value { return Value{Kind: catalog.Float, F: v} }

// Str returns a String value.
func Str(v string) Value { return Value{Kind: catalog.String, S: v} }

// Date returns a Date value from days since the epoch.
func Date(days int64) Value { return Value{Kind: catalog.Date, I: days} }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case catalog.Int:
		return fmt.Sprintf("%d", v.I)
	case catalog.Float:
		return fmt.Sprintf("%g", v.F)
	case catalog.String:
		return fmt.Sprintf("%q", v.S)
	case catalog.Date:
		return fmt.Sprintf("date(%d)", v.I)
	default:
		return fmt.Sprintf("value(kind=%d)", int(v.Kind))
	}
}

// Numeric reports whether the value participates in arithmetic and
// cross-type numeric comparison (Int, Float, Date).
func (v Value) Numeric() bool { return v.Kind != catalog.String }

// AsFloat converts a numeric value to float64. String values yield 0;
// callers must check Numeric first when it matters.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case catalog.Float:
		return v.F
	default:
		return float64(v.I)
	}
}

// Compare returns -1, 0, or +1 ordering a before/equal/after b.
// Numeric kinds (Int, Float, Date) compare by numeric value; strings
// compare lexicographically. Comparing a string with a numeric value is a
// type error and returns an error.
func Compare(a, b Value) (int, error) {
	aStr := a.Kind == catalog.String
	bStr := b.Kind == catalog.String
	if aStr != bStr {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.Kind, b.Kind)
	}
	if aStr {
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	// Pure integer comparison avoids float rounding when both sides are
	// integral kinds.
	if a.Kind != catalog.Float && b.Kind != catalog.Float {
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		default:
			return 0, nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

// Equal reports a == b under Compare's ordering; mixed string/numeric
// comparisons are unequal rather than errors, which suits hash-join
// probing.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Key returns a map key identifying the value for hashing (joins, group
// by). Values that Compare as equal map to the same key within a kind
// class; Int and Date values with equal payloads share a key, as the engine
// only ever hashes columns of matching declared types.
func (v Value) Key() any {
	if v.Kind == catalog.String {
		return v.S
	}
	if v.Kind == catalog.Float {
		return v.F
	}
	return v.I
}

// Row is one tuple of values.
type Row []Value

// Clone returns a deep-enough copy of the row (values are immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
