package value

import "fmt"

// Dates are stored as days since the civil epoch 1970-01-01 (negative for
// earlier dates). The conversion uses the days-from-civil algorithm, exact
// over the full proleptic Gregorian calendar.

// DateFromCivil returns the day number of the given civil date.
func DateFromCivil(year, month, day int) int64 {
	y := int64(year)
	m := int64(month)
	d := int64(day)
	if m <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // shift so 1970-01-01 == 0
}

// CivilFromDate inverts DateFromCivil.
func CivilFromDate(days int64) (year, month, day int) {
	z := days + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(d)
}

// ParseDate parses "YYYY-MM-DD" into a day number.
func ParseDate(s string) (int64, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("value: bad date %q: %v", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("value: bad date %q", s)
	}
	return DateFromCivil(y, m, d), nil
}

// FormatDate renders a day number as "YYYY-MM-DD".
func FormatDate(days int64) string {
	y, m, d := CivilFromDate(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}
