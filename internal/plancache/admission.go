package plancache

import (
	"context"
	"errors"
	"sync"
	"time"

	"robustqo/internal/obs"
)

// Admission control protects the serve path from overload: a fixed pool
// of execution tokens bounds concurrent query execution, a bounded FIFO
// queue absorbs bursts, and everything beyond the queue is shed
// immediately with a retry hint — graceful degradation instead of
// collapse, per the ROADMAP's millions-of-users north star.
//
// The state machine per request (DESIGN.md §13):
//
//	arrive ── tokens available ──────────────→ ADMITTED
//	   │
//	   └─ queue not full → QUEUED ─ token freed ─→ ADMITTED
//	        │                │            │
//	        │                │            └─ ctx cancelled → CANCELLED
//	        │                └─ wait > QueueTimeout → TIMED OUT (shed)
//	        └─ queue full → SHED (429 + Retry-After)
//
// After admission, the per-query budgets apply: DOP is clamped to
// MaxQueryDOP and a plan whose estimated cardinality exceeds
// MemBudgetRows is rejected before execution starts (the estimate is
// the optimizer's posterior T-quantile — the robust, not optimistic,
// number).

// Overload classification errors. The serve layer maps ErrShed and
// ErrTimeout to 429 + Retry-After, ErrClosed to 503, and ErrMemBudget
// to 429 (the query would exceed its memory budget at any load).
var (
	ErrShed      = errors.New("plancache: admission queue full")
	ErrTimeout   = errors.New("plancache: admission queue wait timed out")
	ErrClosed    = errors.New("plancache: server is shutting down")
	ErrMemBudget = errors.New("plancache: plan exceeds the per-query memory budget")
)

// AdmissionConfig sizes the gate. Zero values select the documented
// defaults, chosen to be generous: admission exists to bound worst-case
// concurrency, not to throttle ordinary load.
type AdmissionConfig struct {
	// Slots is the number of queries that may execute concurrently.
	// Default: 2×GOMAXPROCS as reported by the caller via DefaultSlots.
	Slots int
	// MaxQueue bounds how many requests may wait for a slot before
	// arrivals are shed. Default 256.
	MaxQueue int
	// QueueTimeout bounds how long one request may wait before it is
	// shed. Default 10s.
	QueueTimeout time.Duration
	// MaxQueryDOP clamps the per-query degree of parallelism. 0 means
	// no clamp.
	MaxQueryDOP int
	// MemBudgetRows rejects plans whose estimated output cardinality
	// exceeds this many rows. 0 means no budget.
	MemBudgetRows float64
	// RetryAfter is the hint returned with shed requests. Default 1s.
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults(defaultSlots int) AdmissionConfig {
	if c.Slots <= 0 {
		c.Slots = defaultSlots
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Admission is the token-based concurrency gate. All methods are safe
// for concurrent use.
type Admission struct {
	cfg    AdmissionConfig
	tokens chan struct{}
	reg    *obs.Registry

	mu      sync.Mutex
	waiting int
	closed  bool
}

// NewAdmission builds a gate. defaultSlots sizes the token pool when
// cfg.Slots is zero (callers pass a function of GOMAXPROCS). Metrics are
// exported to reg when non-nil.
func NewAdmission(cfg AdmissionConfig, defaultSlots int, reg *obs.Registry) *Admission {
	cfg = cfg.withDefaults(defaultSlots)
	a := &Admission{cfg: cfg, tokens: make(chan struct{}, cfg.Slots), reg: reg}
	for i := 0; i < cfg.Slots; i++ {
		a.tokens <- struct{}{}
	}
	return a
}

// Config returns the effective (defaulted) configuration.
func (a *Admission) Config() AdmissionConfig { return a.cfg }

// Waiting returns the instantaneous queue depth.
func (a *Admission) Waiting() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// InFlight returns the number of currently executing (admitted,
// unreleased) queries.
func (a *Admission) InFlight() int { return cap(a.tokens) - len(a.tokens) }

// Admit blocks until an execution token is available, the queue
// overflows, the wait times out, or ctx is cancelled. On success the
// returned release function MUST be called exactly once when the query
// finishes (or is abandoned).
func (a *Admission) Admit(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		if a.reg != nil {
			a.reg.Counter("robustqo_admission_closed_rejects_total").Inc()
		}
		return nil, ErrClosed
	}
	depth := a.waiting
	if depth >= a.cfg.MaxQueue {
		a.mu.Unlock()
		if a.reg != nil {
			a.reg.Counter("robustqo_admission_shed_total").Inc()
		}
		return nil, ErrShed
	}
	a.waiting++
	a.mu.Unlock()

	if a.reg != nil {
		a.reg.Histogram("robustqo_admission_queue_depth", obs.DepthBuckets).Observe(float64(depth))
	}

	start := time.Now()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
		if a.reg != nil {
			a.reg.Histogram("robustqo_admission_queue_wait_seconds", obs.LatencyBuckets).
				Observe(time.Since(start).Seconds())
		}
	}()

	// Fast path: token immediately available.
	select {
	case <-a.tokens:
		if a.reg != nil {
			a.reg.Counter("robustqo_admission_admitted_total").Inc()
		}
		return a.releaseFunc(), nil
	default:
	}

	timer := time.NewTimer(a.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case <-a.tokens:
		if a.reg != nil {
			a.reg.Counter("robustqo_admission_admitted_total").Inc()
		}
		return a.releaseFunc(), nil
	case <-timer.C:
		if a.reg != nil {
			a.reg.Counter("robustqo_admission_timeouts_total").Inc()
		}
		return nil, ErrTimeout
	case <-ctx.Done():
		if a.reg != nil {
			a.reg.Counter("robustqo_admission_cancelled_total").Inc()
		}
		return nil, ctx.Err()
	}
}

func (a *Admission) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.tokens <- struct{}{}
		})
	}
}

// ClampDOP applies the per-query parallelism budget.
func (a *Admission) ClampDOP(dop int) int {
	if a.cfg.MaxQueryDOP > 0 && dop > a.cfg.MaxQueryDOP {
		return a.cfg.MaxQueryDOP
	}
	return dop
}

// CheckMemory rejects a plan whose estimated result cardinality exceeds
// the per-query memory budget. Called between optimization and
// execution, with the plan's robust (T-quantile) row estimate.
func (a *Admission) CheckMemory(estRows float64) error {
	if a.cfg.MemBudgetRows > 0 && estRows > a.cfg.MemBudgetRows {
		if a.reg != nil {
			a.reg.Counter("robustqo_admission_mem_rejects_total").Inc()
		}
		return ErrMemBudget
	}
	return nil
}

// RetryAfter returns the shed-response retry hint.
func (a *Admission) RetryAfter() time.Duration { return a.cfg.RetryAfter }

// Close stops admitting new queries (subsequent Admit calls fail with
// ErrClosed) and waits until every in-flight query has released its
// token or the context expires. It is the drain step of graceful
// shutdown.
func (a *Admission) Close(ctx context.Context) error {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	for i := 0; i < cap(a.tokens); i++ {
		select {
		case <-a.tokens:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
