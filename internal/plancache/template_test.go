package plancache

import (
	"testing"

	"robustqo/internal/optimizer"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

func TestNormalizeSameShapeSharesKey(t *testing.T) {
	q1 := &optimizer.Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 100 AND 300 AND l_qty < 10"),
	}
	q2 := &optimizer.Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 700 AND 900 AND l_qty < 42"),
	}
	t1, t2 := Normalize(q1), Normalize(q2)
	if t1.Key != t2.Key {
		t.Errorf("same shape produced different keys:\n%s\n%s", t1.Key, t2.Key)
	}
	if len(t1.Params) != 3 || len(t2.Params) != 3 {
		t.Fatalf("want 3 slots, got %d and %d", len(t1.Params), len(t2.Params))
	}
	if t1.Params[0].I != 100 || t1.Params[1].I != 300 || t1.Params[2].I != 10 {
		t.Errorf("slot values wrong: %v", t1.Params)
	}
	// Slots 0 and 1 belong to conjunct 0 (the BETWEEN), slot 2 to
	// conjunct 1.
	want := []int{0, 0, 1}
	for i, ci := range t1.ConjunctOfSlot {
		if ci != want[i] {
			t.Errorf("slot %d mapped to conjunct %d, want %d", i, ci, want[i])
		}
	}
}

func TestNormalizeDistinguishesShapes(t *testing.T) {
	base := &optimizer.Query{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_qty < 10")}
	variants := []*optimizer.Query{
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_qty <= 10")},
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_qty < 10.0")},
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_price < 10")},
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_qty < 10"), Limit: 5},
		{Tables: []string{"orders"}, Pred: testkit.Expr("l_qty < 10")},
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_qty < 10 AND l_qty > 2")},
	}
	key := Normalize(base).Key
	for i, v := range variants {
		if Normalize(v).Key == key {
			t.Errorf("variant %d collided with base key", i)
		}
	}
}

func TestBindSubstitutesPositionally(t *testing.T) {
	q := &optimizer.Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 100 AND 300 AND l_qty < 10"),
	}
	tpl := Normalize(q)
	bound, err := tpl.Bind([]value.Value{value.Date(200), value.Date(400), value.Int(25)})
	if err != nil {
		t.Fatal(err)
	}
	want := testkit.Expr("l_ship BETWEEN 200 AND 400 AND l_qty < 25").String()
	if got := bound.Pred.String(); got != want {
		t.Errorf("bound pred = %s, want %s", got, want)
	}
	// The template's own query must be untouched.
	if q.Pred.String() != testkit.Expr("l_ship BETWEEN 100 AND 300 AND l_qty < 10").String() {
		t.Errorf("Bind mutated the template query: %s", q.Pred)
	}
	// Re-normalizing the bound query yields the same key.
	if Normalize(bound).Key != tpl.Key {
		t.Error("bound query normalizes to a different template")
	}
}

func TestBindRejectsBadParams(t *testing.T) {
	tpl := Normalize(&optimizer.Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_qty < 10"),
	})
	if _, err := tpl.Bind(nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := tpl.Bind([]value.Value{value.Str("x")}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestLiteralsMatchesSlotOrder(t *testing.T) {
	q := &optimizer.Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 100 AND 300 AND l_qty < 10"),
	}
	tpl := Normalize(q)
	lits := Literals(q.Pred)
	if len(lits) != len(tpl.Params) {
		t.Fatalf("Literals found %d values, template has %d slots", len(lits), len(tpl.Params))
	}
	for i := range lits {
		if lits[i] != tpl.Params[i] {
			t.Errorf("slot %d: Literals %v != Params %v", i, lits[i], tpl.Params[i])
		}
	}
}
