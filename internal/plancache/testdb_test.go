package plancache

import (
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// cacheDB builds a lineitem/orders pair with uniform ship dates in
// [0, 1000) — wide enough that literal windows translate directly into
// selectivities for interval assertions. parts > 1 range-partitions
// lineitem on l_ship.
func cacheDB(t *testing.T, nLines int, parts int) (*storage.Database, *engine.Context) {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int},
			{Name: "o_total", Type: catalog.Float},
		},
		PrimaryKey: "o_orderkey",
		Ordered:    []string{"o_orderkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lineSchema := &catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_orderkey", Type: catalog.Int},
			{Name: "l_ship", Type: catalog.Date},
			{Name: "l_qty", Type: catalog.Int},
			{Name: "l_price", Type: catalog.Float},
		},
		PrimaryKey: "l_id",
		Foreign:    []catalog.ForeignKey{{Column: "l_orderkey", RefTable: "orders"}},
		Indexes: []catalog.Index{
			{Name: "ix_ship", Column: "l_ship", Kind: catalog.NonClustered},
			{Name: "ix_qty", Column: "l_qty", Kind: catalog.NonClustered},
		},
		Ordered: []string{"l_id", "l_orderkey"},
	}
	if parts > 1 {
		bounds := make([]int64, parts-1)
		for i := range bounds {
			bounds[i] = int64((i + 1) * 1000 / parts)
		}
		lineSchema.Partition = &catalog.PartitionSpec{
			Column: "l_ship", Kind: catalog.RangePartition,
			Partitions: parts, Bounds: bounds,
		}
	}
	lineitem, err := db.CreateTable(lineSchema)
	if err != nil {
		t.Fatal(err)
	}
	nOrders := nLines / 4
	if nOrders == 0 {
		nOrders = 1
	}
	rng := stats.NewRNG(7)
	for o := 0; o < nOrders; o++ {
		if err := orders.Append(value.Row{value.Int(int64(o)), value.Float(rng.Float64() * 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nLines; i++ {
		appendLine(t, lineitem,
			int64(i), int64(i%nOrders),
			int64(testkit.Intn(rng, 1000)),
			int64(testkit.Intn(rng, 50)),
			float64(testkit.Intn(rng, 10000))/100)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

func appendLine(t *testing.T, tab *storage.Table, id, ok, ship, qty int64, price float64) {
	t.Helper()
	err := tab.Append(value.Row{
		value.Int(id), value.Int(ok), value.Date(ship), value.Int(qty), value.Float(price),
	})
	if err != nil {
		t.Fatal(err)
	}
}

// bayes builds the paper's estimator over a fresh synopsis of db.
func bayes(t *testing.T, db *storage.Database, threshold float64, sampleSize int, seed uint64) *core.BayesEstimator {
	t.Helper()
	syn, err := sample.BuildAll(db, sampleSize, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewBayesEstimator(syn, core.ConfidenceThreshold(threshold))
	if err != nil {
		t.Fatal(err)
	}
	return est
}
