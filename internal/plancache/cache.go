package plancache

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/optimizer"
	"robustqo/internal/value"
)

// numShards is the cache's lock-striping factor. Shard selection hashes
// the full key, so concurrent lookups of different templates rarely
// contend on the same mutex.
const numShards = 16

// Outcome classifies what a Plan call did.
type Outcome int

// Plan outcomes.
const (
	// Miss: no usable entry; the plan was built by full optimization
	// and inserted.
	Miss Outcome = iota
	// Hit: the entry's current binding matched exactly; the cached plan
	// was returned with zero estimation work.
	Hit
	// Rebind: parameters changed but every changed estimate's point
	// check stayed inside its planning-time credible interval; the
	// cached plan was re-bound to the new literals without
	// re-optimization.
	Rebind
	// Reject: an entry existed but the new binding left a credible
	// interval or changed the partition-pruning verdict; the plan was
	// re-optimized and the entry replaced.
	Reject
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Rebind:
		return "rebind"
	case Reject:
		return "reject"
	default:
		return "outcome(" + strconv.Itoa(int(o)) + ")"
	}
}

// Cached reports whether the outcome avoided a full optimization.
func (o Outcome) Cached() bool { return o == Hit || o == Rebind }

// Env carries everything a Plan call needs from the serving layer: the
// execution context (catalog + partition layout), the estimator identity
// plans are built under, and the cold-path optimizer.
type Env struct {
	Ctx *engine.Context
	Est core.Estimator
	// Optimize is the cold path: build a fresh plan for q. Called on
	// Miss and Reject.
	Optimize func(q *optimizer.Query) (*optimizer.Plan, error)
	// DOP is the parallelism the plan was (or will be) parallelized
	// for; it is part of the cache key because Exchange operators and
	// their placement are baked into the plan tree.
	DOP int
}

// check is one credible-interval guard: conjunct (index into the
// template's SplitConjuncts order) was planned under a selectivity
// estimate whose posterior central interval was [lo, hi].
type check struct {
	conjunct int
	lo, hi   float64
}

// maxVariants bounds the binding variants one template entry retains.
// Multiple variants keep a workload's hot bindings cached even while
// ad-hoc bindings of the same template reject in and out (the adaptive
// cursor sharing shape: one "cursor" per plan-distinct binding).
const maxVariants = 8

// variant is one cached (binding, plan) instantiation of a template.
type variant struct {
	// params is the binding the variant's plan embeds.
	params []value.Value
	plan   *optimizer.Plan
	// partsKey is the canonical pruning verdict the plan was built
	// under; a binding that prunes differently must not reuse the plan
	// (the shard lists inside scan nodes would be stale).
	partsKey string
	// conjStrs renders each conjunct of the CURRENT binding — the
	// strings embedded in the cached plan's predicates. The re-bind
	// rewriter matches plan predicates against them positionally.
	conjStrs []string
	checks   []check
	// exactOnly variants only serve identical re-bindings: the estimator
	// exposes no posterior intervals, or a slotted conjunct has no
	// estimable relation (a table-free term).
	exactOnly bool
}

// entry is one cached template.
type entry struct {
	mu sync.Mutex
	// tpl is the normalization of the first query that populated the
	// entry; its slot order is the contract params are interpreted by.
	tpl *Template
	// variants is most-recently-used first.
	variants []*variant
	gen      uint64
}

type cacheShard struct {
	mu      sync.RWMutex
	entries map[string]*entry
	order   []string // insertion order, for FIFO eviction
}

// Cache is a sharded, concurrent plan cache. All methods are safe for
// concurrent use; cached plan trees are immutable and shared across
// concurrent executions (engine nodes hand out fresh operators per
// Stream call).
type Cache struct {
	shards  [numShards]cacheShard
	perShed int
	gen     atomic.Uint64
	reg     *obs.Registry
}

// New returns a cache bounded to roughly maxEntries across all shards
// (each shard holds at most ceil(maxEntries/numShards); oldest entries
// are evicted first). Metrics are exported to reg when non-nil.
func New(maxEntries int, reg *obs.Registry) *Cache {
	if maxEntries < numShards {
		maxEntries = numShards
	}
	c := &Cache{perShed: (maxEntries + numShards - 1) / numShards, reg: reg}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
	}
	return c
}

// Invalidate drops every cached plan by bumping the cache generation:
// call it when statistics are rebuilt (synopses resampled) or data is
// reloaded. Stale entries are collected lazily on next lookup. The
// partition layout does not need an explicit Invalidate — it is part of
// every key via optimizer.LayoutKey.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
}

// Len returns the live entry count across shards (stale-generation
// entries not yet collected included).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// fullKey composes the complete cache key: template shape × estimator
// identity (embeds the confidence threshold T) × DOP × partition layout.
//
//qo:hotpath
func fullKey(tplKey, estName string, dop int, layout string) string {
	var b strings.Builder
	b.Grow(len(tplKey) + len(estName) + len(layout) + 8)
	b.WriteString(tplKey)
	b.WriteByte(0x1f)
	b.WriteString(estName)
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(dop))
	b.WriteByte(0x1f)
	b.WriteString(layout)
	return b.String()
}

// shardOf selects the lock stripe for a key by FNV-1a, inlined so the
// hit path never constructs a hash.Hash.
//
//qo:hotpath
func (c *Cache) shardOf(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%numShards]
}

// paramsEqual reports whether two bindings are value-identical.
//
//qo:hotpath
func paramsEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Plan returns an executable plan for q, consulting the cache first.
//
// The decision ladder, per DESIGN.md §13:
//  1. no entry → optimize, record per-conjunct credible intervals, insert (Miss);
//  2. entry with identical parameters → cached plan as-is (Hit);
//  3. parameters changed → cheap re-bind check: same pruning verdict and
//     every changed conjunct's point estimate inside its planning-time
//     interval → clone the plan with new literals substituted (Rebind);
//  4. any check fails → re-optimize and replace the entry (Reject).
//
// Steps 2–3 never invert a posterior CDF; step 3's point checks evaluate
// the predicate on the synopsis but skip quantiling entirely.
func (c *Cache) Plan(env Env, q *optimizer.Query) (*optimizer.Plan, Outcome, error) {
	tpl := Normalize(q)
	key := fullKey(tpl.Key, env.Est.Name(), env.DOP, optimizer.LayoutKey(env.Ctx))
	gen := c.gen.Load()
	shard := c.shardOf(key)

	shard.mu.RLock()
	e := shard.entries[key]
	shard.mu.RUnlock()

	if e != nil {
		e.mu.Lock()
		if e.gen != gen {
			e.mu.Unlock()
			c.dropStale(shard, key, gen)
			if c.reg != nil {
				c.reg.Counter("robustqo_plancache_invalidations_total").Inc()
			}
			e = nil
		} else {
			// Exact binding match against any retained variant: pure hit.
			for i, v := range e.variants {
				if paramsEqual(tpl.Params, v.params) {
					plan := v.plan
					if i > 0 { // move to front: MRU variant scans first
						copy(e.variants[1:i+1], e.variants[:i])
						e.variants[0] = v
					}
					e.mu.Unlock()
					if c.reg != nil {
						c.reg.Counter("robustqo_plancache_hits_total").Inc()
					}
					return plan, Hit, nil
				}
			}
			plan, err := c.tryRebind(env, e, q, tpl)
			e.mu.Unlock()
			if err != nil {
				return nil, Miss, err
			}
			if plan != nil {
				if c.reg != nil {
					c.reg.Counter("robustqo_plancache_rebinds_total").Inc()
				}
				return plan, Rebind, nil
			}
			// Interval or pruning reject: re-optimize for this binding and
			// retain it as a fresh variant alongside the existing ones.
			plan2, err := c.populate(env, q, tpl, key, gen)
			if c.reg != nil {
				c.reg.Counter("robustqo_plancache_rejects_total").Inc()
			}
			return plan2, Reject, err
		}
	}

	plan, err := c.populate(env, q, tpl, key, gen)
	if err != nil {
		return nil, Miss, err
	}
	if c.reg != nil {
		c.reg.Counter("robustqo_plancache_misses_total").Inc()
	}
	return plan, Miss, nil
}

// dropStale removes a stale-generation entry if it is still the one
// mapped at key.
func (c *Cache) dropStale(shard *cacheShard, key string, gen uint64) {
	shard.mu.Lock()
	if cur, ok := shard.entries[key]; ok {
		cur.mu.Lock()
		stale := cur.gen != gen
		cur.mu.Unlock()
		if stale {
			delete(shard.entries, key)
			for i, k := range shard.order {
				if k == key {
					shard.order = append(shard.order[:i], shard.order[i+1:]...)
					break
				}
			}
		}
	}
	shard.mu.Unlock()
}

// populate runs the cold path and installs the result as a new variant
// — prepended to the existing entry when one is live at key, or as a
// fresh entry otherwise.
func (c *Cache) populate(env Env, q *optimizer.Query, tpl *Template, key string, gen uint64) (*optimizer.Plan, error) {
	plan, err := env.Optimize(q)
	if err != nil {
		return nil, err
	}
	v, err := c.buildVariant(env, q, tpl, plan)
	if err != nil {
		// The plan itself is good; only interval recording failed.
		// Serve the plan uncached rather than failing the query.
		return plan, nil
	}
	shard := c.shardOf(key)
	shard.mu.Lock()
	if cur, exists := shard.entries[key]; exists {
		cur.mu.Lock()
		if cur.gen == gen {
			cur.variants = append(cur.variants, nil)
			copy(cur.variants[1:], cur.variants)
			cur.variants[0] = v
			if len(cur.variants) > maxVariants {
				cur.variants = cur.variants[:maxVariants]
			}
			cur.mu.Unlock()
			shard.mu.Unlock()
			return plan, nil
		}
		cur.mu.Unlock()
		// Stale generation: fall through and replace the entry.
	} else {
		for len(shard.order) >= c.perShed {
			victim := shard.order[0]
			shard.order = shard.order[1:]
			delete(shard.entries, victim)
			if c.reg != nil {
				c.reg.Counter("robustqo_plancache_evictions_total").Inc()
			}
		}
		shard.order = append(shard.order, key)
	}
	shard.entries[key] = &entry{tpl: tpl, variants: []*variant{v}, gen: gen}
	shard.mu.Unlock()
	return plan, nil
}

// buildVariant records the credible interval each slotted conjunct was
// planned under. This is plan-time (miss-path) work: the interval costs
// two posterior quantile inversions per conjunct, amortized by the
// estimator's QuantileCache.
func (c *Cache) buildVariant(env Env, q *optimizer.Query, tpl *Template, plan *optimizer.Plan) (*variant, error) {
	info, err := optimizer.AnalyzeBinding(env.Ctx, q)
	if err != nil {
		return nil, err
	}
	v := &variant{
		params:   append([]value.Value(nil), tpl.Params...),
		plan:     plan,
		partsKey: info.PartsKey,
	}
	v.conjStrs = make([]string, len(info.Conjuncts))
	for i, bc := range info.Conjuncts {
		v.conjStrs[i] = bc.Pred.String()
	}

	ie, ok := env.Est.(core.IntervalEstimator)
	if !ok {
		v.exactOnly = true
		return v, nil
	}
	slotted := make(map[int]bool, len(tpl.ConjunctOfSlot))
	for _, ci := range tpl.ConjunctOfSlot {
		slotted[ci] = true
	}
	for ci := range info.Conjuncts {
		if !slotted[ci] {
			continue
		}
		bc := info.Conjuncts[ci]
		if len(bc.Tables) == 0 {
			// A parameterized table-free term (e.g. a constant
			// comparison) has no estimable relation; only identical
			// re-bindings are safe.
			v.exactOnly = true
			return v, nil
		}
		lo, hi, err := ie.CredibleInterval(core.Request{
			Tables:     bc.Tables,
			Pred:       bc.Pred,
			Partitions: bc.Partitions,
		}, core.DefaultIntervalWidth)
		if err != nil {
			return nil, err
		}
		v.checks = append(v.checks, check{conjunct: ci, lo: lo, hi: hi})
	}
	return v, nil
}

// tryRebind attempts to serve q from one of e's variants under the
// credible-interval rule: the first variant (MRU order) whose pruning
// verdict matches and whose changed-conjunct point estimates stay inside
// their planning-time intervals is re-bound in place. Returns (nil, nil)
// when the binding must be re-optimized. Caller holds e.mu.
func (c *Cache) tryRebind(env Env, e *entry, q *optimizer.Query, tpl *Template) (*optimizer.Plan, error) {
	ie, ok := env.Est.(core.IntervalEstimator)
	if !ok {
		return nil, nil
	}
	var info *optimizer.BindInfo
	var intervalFail, pruningFail bool
	for _, v := range e.variants {
		if v.exactOnly || len(tpl.Params) != len(v.params) {
			continue
		}
		if info == nil { // shared across variants; computed at most once
			var err error
			info, err = optimizer.AnalyzeBinding(env.Ctx, q)
			if err != nil {
				return nil, err
			}
		}
		if info.PartsKey != v.partsKey {
			// The new literals change which shards survive pruning; this
			// variant's embedded partition lists are stale.
			pruningFail = true
			continue
		}
		if len(info.Conjuncts) != len(v.conjStrs) {
			continue
		}

		// Re-check only conjuncts whose slots actually changed: an
		// unchanged conjunct's estimate is bit-identical to plan time.
		changed := make(map[int]bool)
		for si, ci := range tpl.ConjunctOfSlot {
			if tpl.Params[si] != v.params[si] {
				changed[ci] = true
			}
		}
		inside := true
		for _, ck := range v.checks {
			if !changed[ck.conjunct] {
				continue
			}
			bc := info.Conjuncts[ck.conjunct]
			pe, err := ie.PointEstimate(core.Request{
				Tables:     bc.Tables,
				Pred:       bc.Pred,
				Partitions: bc.Partitions,
			})
			if err != nil {
				return nil, err
			}
			if pe < ck.lo || pe > ck.hi {
				intervalFail = true
				inside = false
				break
			}
		}
		if !inside {
			continue
		}

		// All checks passed: clone the plan tree with the new literals
		// and index ranges substituted in.
		newConj := make([]expr.Expr, len(info.Conjuncts))
		for i, bc := range info.Conjuncts {
			newConj[i] = bc.Pred
		}
		rw := conjunctRewriter(v.conjStrs, newConj)
		root, remap, err := engine.Rebind(v.plan.Root, engine.RebindOptions{
			Expr: rw,
			Range: func(table string, k engine.KeyRange) engine.KeyRange {
				if cols, ok := info.Ranges[table]; ok {
					if r, ok := cols[k.Column]; ok {
						return r
					}
				}
				return k
			},
		})
		if err != nil {
			return nil, err
		}
		plan := v.plan.Rebound(root, remap)

		// The variant now serves the new binding; the credible intervals
		// stay anchored at original plan time so drift accumulates
		// against the estimates the plan was actually costed under.
		v.params = append(v.params[:0], tpl.Params...)
		v.plan = plan
		for i, bc := range info.Conjuncts {
			v.conjStrs[i] = bc.Pred.String()
		}
		return plan, nil
	}
	// No variant accepted the binding. Count the dominant failure once
	// per call, not per variant.
	if c.reg != nil {
		switch {
		case intervalFail:
			c.reg.Counter("robustqo_plancache_interval_rejects_total").Inc()
		case pruningFail:
			c.reg.Counter("robustqo_plancache_pruning_rejects_total").Inc()
		}
	}
	return nil, nil
}

// conjunctRewriter maps a plan-embedded predicate (a conjunction of some
// subset of the old binding's conjuncts, in conjunct order — the shape
// the optimizer's predFor builds) to the same conjunction over the new
// binding's conjuncts. Terms are matched positionally by their rendered
// form, scanning forward, so duplicate shapes resolve in order.
func conjunctRewriter(oldStrs []string, newConj []expr.Expr) func(expr.Expr) expr.Expr {
	return func(old expr.Expr) expr.Expr {
		terms := expr.SplitConjuncts(old)
		out := make([]expr.Expr, len(terms))
		next := 0
		for i, t := range terms {
			s := t.String()
			found := -1
			for k := next; k < len(oldStrs); k++ {
				if oldStrs[k] == s {
					found = k
					break
				}
			}
			if found < 0 {
				for k := 0; k < next; k++ {
					if oldStrs[k] == s {
						found = k
						break
					}
				}
			}
			if found < 0 {
				out[i] = t
				continue
			}
			out[i] = newConj[found]
			next = found + 1
		}
		return expr.Conj(out...)
	}
}
