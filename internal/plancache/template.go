// Package plancache memoizes optimized plans across repeated query
// templates, extending the memoization pattern of core.QuantileCache up
// the whole optimize stack: where the quantile cache spares repeated
// Beta inversions, the plan cache spares repeated plan enumerations.
//
// A template is a query with its predicate literals abstracted to
// parameter slots (the prepared-statement view). The cache key is the
// template shape × the estimator identity (which embeds the confidence
// threshold T) × the requested DOP × the partition layout — everything
// that can change what Optimize would return. Cached entries remember
// the posterior credible interval each parameterized estimate was
// planned under; a re-execution with new literals reuses the plan iff
// every changed estimate's cheap point check stays inside its interval
// (DESIGN.md §13), the Bayesian rendering of Trummer & Koch's
// parametric-query-optimization rule (arXiv:1511.01782).
package plancache

import (
	"fmt"
	"strconv"
	"strings"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
	"robustqo/internal/value"
)

// Template is a normalized query shape with its literals lifted out as
// positional parameters. Two queries normalize to the same Key exactly
// when they differ only in predicate literal values — the same
// table|conjunct grammar as the ledger fingerprint (optimizer
// fingerprints, DESIGN.md §12), but with slots where the fingerprint
// bins values.
type Template struct {
	// Key is the normalized shape: tables, slotted predicate, and the
	// non-parameterized clauses (grouping, aggregates, order, limit,
	// projection) verbatim.
	Key string
	// Params holds the literal values of this normalization, in slot
	// (depth-first predicate traversal) order.
	Params []value.Value
	// Kinds holds each slot's value kind; a re-binding must match kinds
	// slot-for-slot or it is a different template.
	Kinds []catalog.Type
	// ConjunctOfSlot maps each slot to the index of the top-level AND
	// term (in expr.SplitConjuncts order — the optimizer's conjunct
	// order) that contains it. The re-bind check uses it to re-estimate
	// only the conjuncts whose parameters actually changed.
	ConjunctOfSlot []int

	q *optimizer.Query
}

// Normalize abstracts the query's predicate literals into parameter
// slots and returns the resulting template. The query itself is not
// modified and is retained (not copied) as the binding source for Bind.
func Normalize(q *optimizer.Query) *Template {
	t := &Template{q: q}
	var b strings.Builder
	b.Grow(128)
	for i, name := range q.Tables {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
	}
	b.WriteByte('|')
	for ci, term := range expr.SplitConjuncts(q.Pred) {
		if ci > 0 {
			b.WriteByte(';')
		}
		before := len(t.Params)
		shapeExpr(&b, term, t)
		for range t.Params[before:] {
			t.ConjunctOfSlot = append(t.ConjunctOfSlot, ci)
		}
	}
	b.WriteByte('|')
	for i, g := range q.GroupBy {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(g.String())
	}
	b.WriteByte('|')
	for i, a := range q.Aggs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Func.String())
		b.WriteByte('(')
		if a.Arg != nil {
			// Aggregate arguments stay verbatim in the key: they are
			// scalar outputs, not selectivity-bearing predicates, so
			// there is no interval to re-check a slot against.
			b.WriteString(a.Arg.String())
		}
		b.WriteByte(')')
		b.WriteString(a.As)
	}
	b.WriteByte('|')
	for i, k := range q.OrderBy {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k.String())
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.Limit))
	b.WriteByte('|')
	for i, p := range q.Project {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.String())
	}
	t.Key = b.String()
	return t
}

// kindTag renders a value kind's one-byte slot tag.
func kindTag(k catalog.Type) byte {
	switch k {
	case catalog.Int:
		return 'i'
	case catalog.Float:
		return 'f'
	case catalog.String:
		return 's'
	case catalog.Date:
		return 'd'
	default:
		return '?'
	}
}

// shapeExpr renders the slotted shape of one predicate subtree, lifting
// every literal into a parameter slot. The traversal order here defines
// slot order; Bind and the re-bind rewriter must walk identically.
// Contains substrings and IN lists stay verbatim in the key: they have
// no sargable range form, so parameterizing them would add re-bind
// machinery for shapes the corpus never re-binds.
func shapeExpr(b *strings.Builder, e expr.Expr, t *Template) {
	switch n := e.(type) {
	case expr.Col:
		b.WriteString(n.Ref.String())
	case expr.Lit:
		b.WriteByte('?')
		b.WriteByte(kindTag(n.Val.Kind))
		t.Params = append(t.Params, n.Val)
		t.Kinds = append(t.Kinds, n.Val.Kind)
	case expr.Cmp:
		b.WriteByte('(')
		shapeExpr(b, n.L, t)
		b.WriteString(n.Op.String())
		shapeExpr(b, n.R, t)
		b.WriteByte(')')
	case expr.Between:
		b.WriteByte('(')
		shapeExpr(b, n.E, t)
		b.WriteString(" between ")
		shapeExpr(b, n.Lo, t)
		b.WriteString("..")
		shapeExpr(b, n.Hi, t)
		b.WriteByte(')')
	case expr.And:
		b.WriteByte('(')
		for i, term := range n.Terms {
			if i > 0 {
				b.WriteByte('&')
			}
			shapeExpr(b, term, t)
		}
		b.WriteByte(')')
	case expr.Or:
		b.WriteByte('(')
		for i, term := range n.Terms {
			if i > 0 {
				b.WriteByte('+')
			}
			shapeExpr(b, term, t)
		}
		b.WriteByte(')')
	case expr.Not:
		b.WriteByte('!')
		shapeExpr(b, n.E, t)
	case expr.Arith:
		b.WriteByte('(')
		shapeExpr(b, n.L, t)
		b.WriteString(n.Op.String())
		shapeExpr(b, n.R, t)
		b.WriteByte(')')
	case expr.Contains:
		shapeExpr(b, n.E, t)
		b.WriteString("~")
		b.WriteString(strconv.Quote(n.Substr))
	case expr.In:
		shapeExpr(b, n.E, t)
		b.WriteString(" in(")
		for i, v := range n.Vals {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.String())
		}
		b.WriteByte(')')
	default:
		// Unknown node kinds get a type-distinct tag so they can never
		// collide with a known shape.
		b.WriteString("<?")
		b.WriteString(strconv.Quote(e.String()))
		b.WriteByte('>')
	}
}

// Bind returns a copy of the template's query with the predicate
// literals replaced by params, positionally. The template's own query
// and predicate are never mutated.
func (t *Template) Bind(params []value.Value) (*optimizer.Query, error) {
	if len(params) != len(t.Params) {
		return nil, fmt.Errorf("plancache: template has %d parameters, got %d", len(t.Params), len(params))
	}
	for i, p := range params {
		if !kindsCompatible(t.Kinds[i], p.Kind) {
			return nil, fmt.Errorf("plancache: parameter %d: want %v, got %v", i, t.Kinds[i], p.Kind)
		}
	}
	// Coerce interchangeable int/date payloads to the slot's declared
	// kind so a bound query re-normalizes to the same template key.
	coerced := make([]value.Value, len(params))
	for i, p := range params {
		if p.Kind != t.Kinds[i] {
			p = value.Value{Kind: t.Kinds[i], I: p.I}
		}
		coerced[i] = p
	}
	q := *t.q
	var idx int
	q.Pred = substLits(t.q.Pred, coerced, &idx)
	return &q, nil
}

// kindsCompatible mirrors storage's Append rule: Int and Date share an
// int64 payload and are interchangeable as parameter bindings.
func kindsCompatible(want, got catalog.Type) bool {
	if want == got {
		return true
	}
	ints := func(k catalog.Type) bool { return k == catalog.Int || k == catalog.Date }
	return ints(want) && ints(got)
}

// substLits clones an expression substituting the idx'th literal (in the
// same depth-first order shapeExpr assigns slots) with params[idx].
func substLits(e expr.Expr, params []value.Value, idx *int) expr.Expr {
	switch n := e.(type) {
	case expr.Lit:
		v := params[*idx]
		*idx++
		return expr.Lit{Val: v}
	case expr.Cmp:
		n.L = substLits(n.L, params, idx)
		n.R = substLits(n.R, params, idx)
		return n
	case expr.Between:
		n.E = substLits(n.E, params, idx)
		n.Lo = substLits(n.Lo, params, idx)
		n.Hi = substLits(n.Hi, params, idx)
		return n
	case expr.And:
		terms := make([]expr.Expr, len(n.Terms))
		for i, term := range n.Terms {
			terms[i] = substLits(term, params, idx)
		}
		return expr.And{Terms: terms}
	case expr.Or:
		terms := make([]expr.Expr, len(n.Terms))
		for i, term := range n.Terms {
			terms[i] = substLits(term, params, idx)
		}
		return expr.Or{Terms: terms}
	case expr.Not:
		n.E = substLits(n.E, params, idx)
		return n
	case expr.Arith:
		n.L = substLits(n.L, params, idx)
		n.R = substLits(n.R, params, idx)
		return n
	case expr.Contains:
		// The substring is key material, not a slot, but the operand
		// subtree could in principle carry literals — recurse so the
		// traversal stays in lockstep with shapeExpr's slot order.
		n.E = substLits(n.E, params, idx)
		return n
	case expr.In:
		n.E = substLits(n.E, params, idx)
		return n
	default:
		// Col and unknown kinds carry no slots underneath.
		return e
	}
}

// Literals extracts the predicate literals of a query in slot order —
// the params a fresh normalization of q would produce. It is how the
// serve path turns an ad-hoc query into (template, params) for lookup.
func Literals(pred expr.Expr) []value.Value {
	var out []value.Value
	collectLits(pred, &out)
	return out
}

func collectLits(e expr.Expr, out *[]value.Value) {
	switch n := e.(type) {
	case expr.Lit:
		*out = append(*out, n.Val)
	case expr.Cmp:
		collectLits(n.L, out)
		collectLits(n.R, out)
	case expr.Between:
		collectLits(n.E, out)
		collectLits(n.Lo, out)
		collectLits(n.Hi, out)
	case expr.And:
		for _, term := range n.Terms {
			collectLits(term, out)
		}
	case expr.Or:
		for _, term := range n.Terms {
			collectLits(term, out)
		}
	case expr.Not:
		collectLits(n.E, out)
	case expr.Arith:
		collectLits(n.L, out)
		collectLits(n.R, out)
	case expr.Contains:
		collectLits(n.E, out)
	case expr.In:
		collectLits(n.E, out)
	}
}
