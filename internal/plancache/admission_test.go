package plancache

import (
	"context"
	"errors"
	"testing"
	"time"

	"robustqo/internal/obs"
)

func TestAdmissionTokensAndQueue(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(AdmissionConfig{Slots: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second}, 1, reg)

	rel1, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}

	// Second arrival queues; releasing the first token admits it.
	admitted := make(chan struct{})
	go func() {
		rel2, err := a.Admit(context.Background())
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		close(admitted)
		rel2()
	}()
	// Wait for the second arrival to be queued.
	for a.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Third arrival overflows the single-slot queue: shed.
	if _, err := a.Admit(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow arrival: %v, want ErrShed", err)
	}

	rel1()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued arrival was never admitted after release")
	}
	if got := reg.Counter("robustqo_admission_shed_total").Value(); got != 1 {
		t.Errorf("shed_total = %d, want 1", got)
	}
	if got := reg.Counter("robustqo_admission_admitted_total").Value(); got != 2 {
		t.Errorf("admitted_total = %d, want 2", got)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond}, 1, nil)
	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := a.Admit(context.Background()); !errors.Is(err, ErrTimeout) {
		t.Fatalf("starved arrival: %v, want ErrTimeout", err)
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 1, MaxQueue: 4}, 1, nil)
	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := a.Admit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled arrival: %v, want context.Canceled", err)
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 2}, 2, nil)
	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not mint a new token
	if got := a.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after release, want 0", got)
	}
	// Both slots (not three) are available.
	r1, _ := a.Admit(context.Background())
	r2, _ := a.Admit(context.Background())
	if got := a.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	r1()
	r2()
}

func TestAdmissionClose(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 2}, 2, nil)
	rel, err := a.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- a.Close(ctx)
	}()

	// New arrivals are rejected immediately once draining starts. An
	// arrival that races ahead of the close must release its token or
	// the drain below would wait on it forever.
	for {
		rel2, err := a.Admit(context.Background())
		if errors.Is(err, ErrClosed) {
			break
		}
		if err == nil {
			rel2()
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestAdmissionBudgets(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Slots: 1, MaxQueryDOP: 2, MemBudgetRows: 1000}, 1, nil)
	if got := a.ClampDOP(8); got != 2 {
		t.Errorf("ClampDOP(8) = %d, want 2", got)
	}
	if got := a.ClampDOP(1); got != 1 {
		t.Errorf("ClampDOP(1) = %d, want 1", got)
	}
	if err := a.CheckMemory(500); err != nil {
		t.Errorf("under-budget plan rejected: %v", err)
	}
	if err := a.CheckMemory(5000); !errors.Is(err, ErrMemBudget) {
		t.Errorf("over-budget plan: %v, want ErrMemBudget", err)
	}
}
