package plancache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/optimizer"
	"robustqo/internal/testkit"
)

// env wires a cache environment over the test database.
func testEnv(t *testing.T, ctx *engine.Context, est *optimizer.Optimizer) Env {
	t.Helper()
	return Env{
		Ctx: ctx,
		Est: est.Est,
		DOP: est.MaxDOP,
		Optimize: func(q *optimizer.Query) (*optimizer.Plan, error) {
			return est.Optimize(q)
		},
	}
}

func TestCacheHitRebindReject(t *testing.T) {
	db, ctx := cacheDB(t, 8000, 1)
	est := bayes(t, db, 0.8, 512, 11)
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c := New(64, reg)
	env := testEnv(t, ctx, opt)

	mk := func(lo, hi int) *optimizer.Query {
		return &optimizer.Query{
			Tables: []string{"lineitem"},
			Pred:   testkit.Expr(fmt.Sprintf("l_ship BETWEEN %d AND %d", lo, hi)),
		}
	}

	// Cold: miss.
	p1, out, err := c.Plan(env, mk(100, 300))
	if err != nil {
		t.Fatal(err)
	}
	if out != Miss {
		t.Fatalf("first call: %v, want miss", out)
	}

	// Identical binding: hit, same plan pointer.
	p2, out, err := c.Plan(env, mk(100, 300))
	if err != nil {
		t.Fatal(err)
	}
	if out != Hit {
		t.Fatalf("identical binding: %v, want hit", out)
	}
	if p2 != p1 {
		t.Error("hit returned a different plan object")
	}

	// Equal-selectivity shift: the point estimate stays inside the 95%
	// credible interval, so the plan re-binds without re-optimizing.
	p3, out, err := c.Plan(env, mk(200, 400))
	if err != nil {
		t.Fatal(err)
	}
	if out != Rebind {
		t.Fatalf("shifted binding: %v, want rebind", out)
	}
	if p3 == p1 {
		t.Error("rebind returned the original plan object (literals would be stale)")
	}
	if reflect.TypeOf(p3.Root) != reflect.TypeOf(p1.Root) {
		t.Errorf("rebind changed the plan shape: %T vs %T", p3.Root, p1.Root)
	}

	// The rebound plan must compute exactly what a cold plan computes.
	coldPlan, err := opt.Optimize(mk(200, 400))
	if err != nil {
		t.Fatal(err)
	}
	gotRes, _, _, err := engine.Run(ctx, p3.Root)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, _, _, err := engine.Run(ctx, coldPlan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRes.Rows) != len(wantRes.Rows) {
		t.Fatalf("rebound plan returned %d rows, cold plan %d", len(gotRes.Rows), len(wantRes.Rows))
	}

	// A drastically wider window moves the estimate far outside the
	// interval: reject + re-optimize.
	_, out, err = c.Plan(env, mk(0, 950))
	if err != nil {
		t.Fatal(err)
	}
	if out != Reject {
		t.Fatalf("wide binding: %v, want reject", out)
	}

	if got := reg.Counter("robustqo_plancache_hits_total").Value(); got != 1 {
		t.Errorf("hits_total = %d, want 1", got)
	}
	if got := reg.Counter("robustqo_plancache_rebinds_total").Value(); got != 1 {
		t.Errorf("rebinds_total = %d, want 1", got)
	}
	if got := reg.Counter("robustqo_plancache_interval_rejects_total").Value(); got != 1 {
		t.Errorf("interval_rejects_total = %d, want 1", got)
	}
}

func TestCacheVariantsKeepHotBinding(t *testing.T) {
	db, ctx := cacheDB(t, 8000, 1)
	est := bayes(t, db, 0.8, 512, 11)
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	c := New(64, obs.NewRegistry())
	env := testEnv(t, ctx, opt)
	mk := func(lo, hi int) *optimizer.Query {
		return &optimizer.Query{
			Tables: []string{"lineitem"},
			Pred:   testkit.Expr(fmt.Sprintf("l_ship BETWEEN %d AND %d", lo, hi)),
		}
	}

	if _, out, err := c.Plan(env, mk(100, 300)); err != nil || out != Miss {
		t.Fatalf("hot cold: %v %v", out, err)
	}
	// A far-away binding rejects and is retained as a second variant...
	if _, out, err := c.Plan(env, mk(0, 950)); err != nil || out != Reject {
		t.Fatalf("ad-hoc: %v %v", out, err)
	}
	// ...WITHOUT displacing the hot binding: both now hit.
	if _, out, err := c.Plan(env, mk(100, 300)); err != nil || out != Hit {
		t.Fatalf("hot after ad-hoc reject: %v %v, want hit", out, err)
	}
	if _, out, err := c.Plan(env, mk(0, 950)); err != nil || out != Hit {
		t.Fatalf("ad-hoc repeat: %v %v, want hit", out, err)
	}
}

func TestCacheInvalidate(t *testing.T) {
	db, ctx := cacheDB(t, 2000, 1)
	est := bayes(t, db, 0.8, 256, 3)
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	c := New(64, obs.NewRegistry())
	env := testEnv(t, ctx, opt)
	q := &optimizer.Query{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_qty < 10")}

	if _, out, err := c.Plan(env, q); err != nil || out != Miss {
		t.Fatalf("first: %v %v", out, err)
	}
	if _, out, err := c.Plan(env, q); err != nil || out != Hit {
		t.Fatalf("second: %v %v", out, err)
	}
	// Statistics rebuilt -> every cached plan is stale.
	c.Invalidate()
	if _, out, err := c.Plan(env, q); err != nil || out != Miss {
		t.Fatalf("after invalidate: %v %v", out, err)
	}
}

func TestCacheKeySeparatesEstimatorDOPLayout(t *testing.T) {
	db, ctx := cacheDB(t, 2000, 1)
	opt1, err := optimizer.New(ctx, bayes(t, db, 0.8, 256, 3))
	if err != nil {
		t.Fatal(err)
	}
	opt2, err := optimizer.New(ctx, bayes(t, db, 0.95, 256, 3))
	if err != nil {
		t.Fatal(err)
	}
	c := New(64, obs.NewRegistry())
	q := &optimizer.Query{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_qty < 10")}

	if _, out, _ := c.Plan(testEnv(t, ctx, opt1), q); out != Miss {
		t.Fatalf("T=0.8 first: %v", out)
	}
	// Different confidence threshold -> different estimator name ->
	// different key.
	if _, out, _ := c.Plan(testEnv(t, ctx, opt2), q); out != Miss {
		t.Fatalf("T=0.95 must not share the T=0.8 entry: %v", out)
	}
	// Different DOP -> different key (Exchange placement is baked in).
	env4 := testEnv(t, ctx, opt1)
	env4.DOP = 4
	if _, out, _ := c.Plan(env4, q); out != Miss {
		t.Fatalf("DOP=4 must not share the DOP=1 entry: %v", out)
	}
	// Different partition layout -> different key.
	db2, ctx2 := cacheDB(t, 2000, 4)
	optP, err := optimizer.New(ctx2, bayes(t, db2, 0.8, 256, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, out, _ := c.Plan(testEnv(t, ctx2, optP), q); out != Miss {
		t.Fatalf("partitioned layout must not share the unpartitioned entry: %v", out)
	}
	if c.Len() != 4 {
		t.Errorf("expected 4 distinct entries, have %d", c.Len())
	}
}

func TestCachePruningChangeRejects(t *testing.T) {
	db, ctx := cacheDB(t, 4000, 4)
	est := bayes(t, db, 0.8, 512, 5)
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c := New(64, reg)
	env := testEnv(t, ctx, opt)
	mk := func(lo, hi int) *optimizer.Query {
		return &optimizer.Query{
			Tables: []string{"lineitem"},
			Pred:   testkit.Expr(fmt.Sprintf("l_ship BETWEEN %d AND %d", lo, hi)),
		}
	}
	// Shards cover [0,250) [250,500) [500,750) [750,1000): the first
	// window prunes to shard 0, the second to shard 2 — same shape,
	// similar selectivity, incompatible shard lists.
	if _, out, err := c.Plan(env, mk(10, 240)); err != nil || out != Miss {
		t.Fatalf("first: %v %v", out, err)
	}
	_, out, err := c.Plan(env, mk(510, 740))
	if err != nil {
		t.Fatal(err)
	}
	if out != Reject {
		t.Fatalf("pruning-changing binding: %v, want reject", out)
	}
	if got := reg.Counter("robustqo_plancache_pruning_rejects_total").Value(); got != 1 {
		t.Errorf("pruning_rejects_total = %d, want 1", got)
	}
}

func TestCacheEviction(t *testing.T) {
	db, ctx := cacheDB(t, 1000, 1)
	opt, err := optimizer.New(ctx, bayes(t, db, 0.8, 128, 3))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c := New(numShards, reg) // 1 entry per shard
	env := testEnv(t, ctx, opt)
	for i := 0; i < 64; i++ {
		q := &optimizer.Query{
			Tables: []string{"lineitem"},
			// Vary the shape (chain length) so each query is a distinct
			// template.
			Pred:  testkit.Expr("l_qty < 10"),
			Limit: i + 1,
		}
		if _, _, err := c.Plan(env, q); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > numShards {
		t.Errorf("cache holds %d entries, bound is %d", c.Len(), numShards)
	}
	if reg.Counter("robustqo_plancache_evictions_total").Value() == 0 {
		t.Error("no evictions recorded despite overflow")
	}
}

func TestCacheConcurrent(t *testing.T) {
	db, ctx := cacheDB(t, 4000, 1)
	est := bayes(t, db, 0.8, 256, 9)
	opt, err := optimizer.New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	c := New(128, obs.NewRegistry())
	env := testEnv(t, ctx, opt)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				lo := (g*8 + i) % 30 * 10
				q := &optimizer.Query{
					Tables: []string{"lineitem"},
					Pred:   testkit.Expr(fmt.Sprintf("l_ship BETWEEN %d AND %d", lo, lo+200)),
				}
				plan, _, err := c.Plan(env, q)
				if err != nil {
					errs <- err
					return
				}
				if _, _, _, err := engine.Run(ctx, plan.Root); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
