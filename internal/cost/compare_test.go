package cost

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{35.0, 35.0 + 1e-12, true},            // rounding noise on a seconds-scale cost
		{35.0, 35.0001, false},                // a real cost difference
		{1e6, 1e6 * (1 + 1e-12), true},        // relative tolerance at large magnitude
		{1e6, 1e6 + 1, false},                 // one simulated second apart
		{0, 1e-12, true},                      // absolute tolerance near zero
		{0, 1e-6, false},                      // a real selectivity difference
		{math.Inf(1), math.Inf(1), true},      // equal infinities
		{math.Inf(1), math.MaxFloat64, false}, // infinity vs finite
		{math.NaN(), math.NaN(), false},       // NaN equals nothing
		{-0.5, 0.5, false},                    // sign matters
		{1e-10, 2e-10, true},                  // both below absolute tolerance
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("ApproxEqual(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := ApproxEqual(c.b, c.a); got != c.want {
			t.Errorf("ApproxEqual(%g, %g) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestLess(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{1, 1, false},
		{35.0, 35.0 + 1e-12, false}, // within tolerance: a tie, not a win
		{35.0, 35.0001, true},
		{-1, 0, true},
		{math.Inf(-1), 0, true},
		{0, math.Inf(1), true},
		{math.NaN(), 1, false}, // NaN never ranks below anything
		{1, math.NaN(), false},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Less must be asymmetric: a plan cannot beat and lose to the same rival.
	for _, a := range []float64{0, 1, 35, 1e6} {
		for _, b := range []float64{0, 1, 35, 1e6} {
			if Less(a, b) && Less(b, a) {
				t.Errorf("Less(%g, %g) and Less(%g, %g) both true", a, b, b, a)
			}
		}
	}
}
