package cost

import (
	"math"
	"strings"
	"testing"
)

func TestCountersAddAccumulatesAllFields(t *testing.T) {
	a := Counters{1, 2, 3, 4, 5, 6, 7, 8, 9}
	var c Counters
	c.Add(a)
	c.Add(a)
	want := Counters{2, 4, 6, 8, 10, 12, 14, 16, 18}
	if c != want {
		t.Errorf("Add = %+v, want %+v", c, want)
	}
}

// TestCountersString is the golden test for the rendering EXPLAIN
// ANALYZE embeds: field order fixed, zero fields always omitted,
// all-zero counters spelled "none".
func TestCountersString(t *testing.T) {
	cases := []struct {
		c    Counters
		want string
	}{
		{Counters{}, "none"},
		{Counters{SeqPages: 3, Output: 9}, "seq=3 out=9"},
		{Counters{RandPages: 2, HashProbes: 7}, "rand=2 hp=7"},
		{Counters{1, 2, 3, 4, 5, 6, 7, 8, 9},
			"seq=1 rand=2 cpu=3 seeks=4 entries=5 hb=6 hp=7 sort=8 out=9"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Counters%+v.String() = %q, want %q", tc.c, got, tc.want)
		}
	}
	if strings.Contains(Counters{SeqPages: 1}.String(), "rand=") {
		t.Error("zero field leaked into rendering")
	}
}

func TestModelTimeLinear(t *testing.T) {
	m := Model{SeqPage: 1, RandPage: 2, Tuple: 3, IndexSeek: 4, IndexEntry: 5,
		HashBuild: 6, HashProbe: 7, SortTuple: 8, Output: 9}
	c := Counters{1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := m.Time(c); got != 45 {
		t.Errorf("Time = %g", got)
	}
	if got := m.Time(Counters{}); got != 0 {
		t.Errorf("empty Time = %g", got)
	}
}

func TestDefaultCalibrationMatchesPaper51(t *testing.T) {
	// A 6,000,000-row sequential scan (75,000 pages at 80 tuples/page)
	// must cost the paper's f1 = 35 seconds.
	scan := Counters{SeqPages: 75000, Tuples: 6_000_000}
	if got := Default.Time(scan); math.Abs(got-35) > 0.5 {
		t.Errorf("SF1 scan = %gs, want ~35", got)
	}
	// Each qualifying tuple of the index plan costs one random page plus
	// output emission: the paper's v2 = 3.5e-3 seconds per tuple.
	perTuple := Default.Time(Counters{RandPages: 1, Output: 1})
	if math.Abs(perTuple-3.5e-3) > 1e-4 {
		t.Errorf("per-tuple fetch = %g, want ~3.5e-3", perTuple)
	}
	// The stable plan's per-qualifying-tuple increment is v1 = 3.5e-6.
	if math.Abs(Default.Output-3.5e-6) > 1e-9 {
		t.Errorf("Output = %g, want 3.5e-6", Default.Output)
	}
	// Relative magnitudes that the plan space depends on.
	if Default.RandPage <= Default.SeqPage {
		t.Error("random pages must cost more than sequential")
	}
	if Default.IndexSeek <= Default.IndexEntry {
		t.Error("seeks must cost more than entry scans")
	}
}
