// Package cost defines the execution cost model shared by the optimizer
// (which applies it to estimated cardinalities) and the executor (which
// applies it to actual operation counts).
//
// The model is deliberately simple — linear in page accesses and tuple
// touches — and its constants are calibrated so that the engine's
// sequential-scan and index-intersection plans over a 6,000,000-row table
// reproduce the analytical model of Section 5.1 of the paper:
//
//	cost(P1 = seq scan)           ≈ 35 + 3.5e-6 · x   seconds
//	cost(P2 = index intersection) ≈  5 + 3.5e-3 · x   seconds
//
// where x is the number of qualifying tuples. Because both the optimizer
// and the executor use the same model, "actual execution time" in this
// repository means the model applied to the actual counts incurred while
// really executing the plan over the data — a deterministic substitute for
// the paper's wall-clock measurements that preserves every crossover.
package cost

import "fmt"

// Counters records the work performed (or predicted) by a plan.
type Counters struct {
	SeqPages     int64 // sequential page reads
	RandPages    int64 // random page reads (RID fetches, unclustered probes)
	Tuples       int64 // tuples processed through operators (CPU)
	IndexSeeks   int64 // B-tree traversals root-to-leaf
	IndexEntries int64 // index leaf entries scanned
	HashBuilds   int64 // tuples inserted into hash tables
	HashProbes   int64 // hash table probes
	SortTuples   int64 // tuples passed through a sort
	Output       int64 // tuples emitted from the plan root
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.SeqPages += other.SeqPages
	c.RandPages += other.RandPages
	c.Tuples += other.Tuples
	c.IndexSeeks += other.IndexSeeks
	c.IndexEntries += other.IndexEntries
	c.HashBuilds += other.HashBuilds
	c.HashProbes += other.HashProbes
	c.SortTuples += other.SortTuples
	c.Output += other.Output
}

// String renders the counters compactly for diagnostics and EXPLAIN
// output. The rendering is stable: fields appear in declaration order,
// zero-valued fields are always omitted, and all-zero counters render
// as "none". Tests pin this format — change it deliberately.
func (c Counters) String() string {
	fields := []struct {
		label string
		v     int64
	}{
		{"seq", c.SeqPages},
		{"rand", c.RandPages},
		{"cpu", c.Tuples},
		{"seeks", c.IndexSeeks},
		{"entries", c.IndexEntries},
		{"hb", c.HashBuilds},
		{"hp", c.HashProbes},
		{"sort", c.SortTuples},
		{"out", c.Output},
	}
	var b []byte
	for _, f := range fields {
		if f.v == 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%d", f.label, f.v)...)
	}
	if len(b) == 0 {
		return "none"
	}
	return string(b)
}

// Model holds per-operation costs in simulated seconds.
type Model struct {
	SeqPage    float64 // one sequential page read
	RandPage   float64 // one random page read
	Tuple      float64 // processing one tuple (predicate eval, copy)
	IndexSeek  float64 // one B-tree descent
	IndexEntry float64 // scanning one index leaf entry
	HashBuild  float64 // inserting one tuple into a hash table
	HashProbe  float64 // one hash probe
	SortTuple  float64 // one tuple through sort (amortized n log n folded in)
	Output     float64 // emitting one result tuple
}

// Default is the calibrated model described in the package comment.
//
// Derivation, with storage.TuplesPerPage = 80 and N = 6e6 rows
// (75,000 pages):
//
//   - Sequential scan: 75000·SeqPage + 6e6·Tuple = 35 s
//     with Tuple = 1e-6  →  SeqPage = 29/75000 ≈ 3.867e-4.
//   - Each qualifying row in the index plan costs one random page read
//     plus output: RandPage + Output = 3.5e-3  →  RandPage = 3.4965e-3.
//   - The index plan's fixed part (two index range scans over the
//     marginal matches plus the intersection) comes to ≈ 5 s for the
//     Experiment-1 workload, giving IndexEntry = 1e-5.
var Default = Model{
	SeqPage:    3.867e-4,
	RandPage:   3.4965e-3,
	Tuple:      1e-6,
	IndexSeek:  5e-4, // a mostly-cached B-tree descent: well under one random page
	IndexEntry: 5e-6,
	HashBuild:  4e-6,
	HashProbe:  4e-6,
	SortTuple:  8e-6,
	Output:     3.5e-6,
}

// Time converts counters into simulated seconds under the model.
func (m Model) Time(c Counters) float64 {
	return float64(c.SeqPages)*m.SeqPage +
		float64(c.RandPages)*m.RandPage +
		float64(c.Tuples)*m.Tuple +
		float64(c.IndexSeeks)*m.IndexSeek +
		float64(c.IndexEntries)*m.IndexEntry +
		float64(c.HashBuilds)*m.HashBuild +
		float64(c.HashProbes)*m.HashProbe +
		float64(c.SortTuples)*m.SortTuple +
		float64(c.Output)*m.Output
}
