package cost

import "math"

// Epsilon is the relative tolerance below which two plan costs (or
// selectivities) are indistinguishable. Costs are sums of many small
// model terms, so two algebraically equal plans can differ by a few
// ulps depending on association order; ranking them with raw < would
// make plan choice depend on floating-point noise. One part per billion
// is far below any real cost difference the model can produce and far
// above accumulated rounding error.
const Epsilon = 1e-9

// ApproxEqual reports whether a and b are equal within Epsilon,
// relative to their magnitudes (absolute near zero). It is the approved
// way to compare float64 costs and selectivities for equality; the
// floatcmp analyzer flags raw == and != elsewhere.
func ApproxEqual(a, b float64) bool {
	if a == b {
		return true // fast path; also handles equal infinities
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // an unequal infinity is never close to anything
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale > 1 {
		return math.Abs(a-b) <= Epsilon*scale
	}
	return math.Abs(a-b) <= Epsilon
}

// Less reports whether a is smaller than b by more than the tolerance:
// the approved way to rank plans by cost. Plans within Epsilon of each
// other compare equal, so enumeration order (kept deterministic by the
// maporder analyzer) breaks the tie, not rounding noise.
func Less(a, b float64) bool {
	return a < b && !ApproxEqual(a, b)
}
