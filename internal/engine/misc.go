package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"robustqo/internal/catalog"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// Filter applies a predicate to its input's rows.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema(ctx *Context) (expr.RelSchema, error) { return f.Input.Schema(ctx) }

// Describe implements Node.
func (f *Filter) Describe() string { return fmt.Sprintf("Filter(%s)", f.Pred) }

// Execute implements Node.
func (f *Filter) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, f, counters)
}

// Stream implements Node.
func (f *Filter) Stream() Operator { return &filterOp{node: f} }

// filterOp evaluates the predicate over each input batch's column vectors
// and compacts survivors in place.
type filterOp struct {
	node     *Filter
	input    Operator
	counters *cost.Counters
	pred     *expr.Bound
	sel      []int
}

func (o *filterOp) Open(ctx *Context, counters *cost.Counters) error {
	schema, err := o.node.Input.Schema(ctx)
	if err != nil {
		return err
	}
	pred, err := bindFilter(o.node.Pred, schema)
	if err != nil {
		return err
	}
	o.input = o.node.Input.Stream()
	if err := o.input.Open(ctx, counters); err != nil {
		return err
	}
	o.counters, o.pred = counters, pred
	return nil
}

// Next gathers the child batch down to the rows passing the predicate,
// in place — no batch of its own, no copies.
//
//qo:hotpath
func (o *filterOp) Next() (*Batch, error) {
	for {
		b, err := o.input.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		o.counters.Tuples += int64(b.Len())
		o.sel = identSel(o.sel, b.Len())
		keep, err := o.pred.EvalBatch(b.Cols(), o.sel)
		if err != nil {
			//qo:alloc-ok error path, cold
			return nil, fmt.Errorf("engine: Filter: %v", err)
		}
		b.Gather(keep)
		if b.Len() > 0 {
			return b, nil
		}
	}
}

func (o *filterOp) Close() {
	if o.input != nil {
		o.input.Close()
	}
}

// Project narrows the input to the named columns, in order.
type Project struct {
	Input Node
	Cols  []expr.ColumnRef
}

// Schema implements Node.
func (p *Project) Schema(ctx *Context) (expr.RelSchema, error) {
	in, err := p.Input.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	fields := make([]expr.Field, len(p.Cols))
	for i, c := range p.Cols {
		idx, err := in.Resolve(c)
		if err != nil {
			return expr.RelSchema{}, fmt.Errorf("engine: Project: %v", err)
		}
		fields[i] = in.Fields[idx]
	}
	return expr.RelSchema{Fields: fields}, nil
}

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = c.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Execute implements Node.
func (p *Project) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, p, counters)
}

// Stream implements Node.
func (p *Project) Stream() Operator { return &projectOp{node: p} }

// projectOp re-exposes a subset of the input's column vectors without
// copying. When the projection repeats a column it copies instead, so a
// downstream Gather cannot compact the shared backing slice twice.
type projectOp struct {
	node     *Project
	input    Operator
	counters *cost.Counters
	idxs     []int
	dup      bool
	view     Batch  // aliasing header over the input batch
	out      *Batch // owned storage, used only when dup
}

func (o *projectOp) Open(ctx *Context, counters *cost.Counters) error {
	in, err := o.node.Input.Schema(ctx)
	if err != nil {
		return err
	}
	idxs := make([]int, len(o.node.Cols))
	fields := make([]expr.Field, len(o.node.Cols))
	seen := make(map[int]bool, len(o.node.Cols))
	dup := false
	for i, c := range o.node.Cols {
		idx, err := in.Resolve(c)
		if err != nil {
			return fmt.Errorf("engine: Project: %v", err)
		}
		idxs[i] = idx
		fields[i] = in.Fields[idx]
		if seen[idx] {
			dup = true
		}
		seen[idx] = true
	}
	o.input = o.node.Input.Stream()
	if err := o.input.Open(ctx, counters); err != nil {
		return err
	}
	o.counters, o.idxs, o.dup = counters, idxs, dup
	schema := expr.RelSchema{Fields: fields}
	if dup {
		o.out = getBatch(schema)
	} else {
		o.view = Batch{Schema: schema, cols: make([][]value.Value, len(idxs))}
	}
	return nil
}

func (o *projectOp) Next() (*Batch, error) {
	b, err := o.input.Next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	o.counters.Tuples += int64(b.Len())
	if !o.dup {
		for i, idx := range o.idxs {
			o.view.cols[i] = b.cols[idx]
		}
		o.view.n = b.Len()
		return &o.view, nil
	}
	o.out.Reset()
	for i, idx := range o.idxs {
		o.out.cols[i] = append(o.out.cols[i], b.cols[idx]...)
	}
	o.out.n = b.Len()
	return o.out, nil
}

func (o *projectOp) Close() {
	if o.input != nil {
		o.input.Close()
	}
	putBatch(o.out)
	o.out = nil
}

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec is one aggregate output: Func applied to the scalar Arg
// (ignored for COUNT, which may leave Arg nil).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr // scalar; nil allowed for Count
	As   string    // output column name
}

// Aggregate computes hash-grouped aggregates. With no GroupBy columns it
// produces a single row of grand totals (even over empty input, matching
// SQL semantics for COUNT/SUM over empty sets: COUNT = 0, others NaN-free
// zero values).
type Aggregate struct {
	Input   Node
	GroupBy []expr.ColumnRef
	Aggs    []AggSpec
}

// Schema implements Node.
func (a *Aggregate) Schema(ctx *Context) (expr.RelSchema, error) {
	in, err := a.Input.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return a.outSchema(in)
}

func (a *Aggregate) outSchema(in expr.RelSchema) (expr.RelSchema, error) {
	var fields []expr.Field
	for _, g := range a.GroupBy {
		idx, err := in.Resolve(g)
		if err != nil {
			return expr.RelSchema{}, fmt.Errorf("engine: Aggregate group key: %v", err)
		}
		fields = append(fields, in.Fields[idx])
	}
	for i, spec := range a.Aggs {
		name := spec.As
		if name == "" {
			name = fmt.Sprintf("%s_%d", strings.ToLower(spec.Func.String()), i)
		}
		typ := catalog.Float
		if spec.Func == Count {
			typ = catalog.Int
		}
		fields = append(fields, expr.Field{Column: name, Type: typ})
	}
	return expr.RelSchema{Fields: fields}, nil
}

// Describe implements Node.
func (a *Aggregate) Describe() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		if s.Arg != nil {
			parts[i] = fmt.Sprintf("%s(%s)", s.Func, s.Arg)
		} else {
			parts[i] = fmt.Sprintf("%s(*)", s.Func)
		}
	}
	d := "Aggregate(" + strings.Join(parts, ", ")
	if len(a.GroupBy) > 0 {
		keys := make([]string, len(a.GroupBy))
		for i, g := range a.GroupBy {
			keys[i] = g.String()
		}
		d += " BY " + strings.Join(keys, ", ")
	}
	return d + ")"
}

type aggState struct {
	groupVals value.Row
	count     int64
	sums      []float64
	mins      []float64
	maxs      []float64
	counts    []int64 // per-agg counts (for AVG)
}

// newAggState initializes accumulator state for one group, capturing the
// group-key values from the first row seen (nil row for the empty-input
// grand total).
func (a *Aggregate) newAggState(groupIdxs []int, row value.Row) *aggState {
	st := &aggState{
		sums:   make([]float64, len(a.Aggs)),
		mins:   make([]float64, len(a.Aggs)),
		maxs:   make([]float64, len(a.Aggs)),
		counts: make([]int64, len(a.Aggs)),
	}
	for i := range st.mins {
		st.mins[i] = math.Inf(1)
		st.maxs[i] = math.Inf(-1)
	}
	if row != nil {
		st.groupVals = make(value.Row, len(groupIdxs))
		for i, gi := range groupIdxs {
			st.groupVals[i] = row[gi]
		}
	}
	return st
}

// accumulate folds one argument value into aggregate i's running state.
func (st *aggState) accumulate(i int, fn AggFunc, v value.Value) error {
	if !v.Numeric() {
		return fmt.Errorf("engine: %s over non-numeric value %s", fn, v)
	}
	f := v.AsFloat()
	st.sums[i] += f
	if f < st.mins[i] {
		st.mins[i] = f
	}
	if f > st.maxs[i] {
		st.maxs[i] = f
	}
	st.counts[i]++
	return nil
}

// finalize renders one group's output row.
func (a *Aggregate) finalize(st *aggState, width int) value.Row {
	out := make(value.Row, 0, width)
	out = append(out, st.groupVals...)
	for i, spec := range a.Aggs {
		switch spec.Func {
		case Count:
			if spec.Arg == nil {
				out = append(out, value.Int(st.count))
			} else {
				out = append(out, value.Int(st.counts[i]))
			}
		case Sum:
			out = append(out, value.Float(st.sums[i]))
		case Min:
			out = append(out, value.Float(zeroIfInf(st.mins[i])))
		case Max:
			out = append(out, value.Float(zeroIfInf(st.maxs[i])))
		case Avg:
			if st.counts[i] == 0 {
				out = append(out, value.Float(0))
			} else {
				out = append(out, value.Float(st.sums[i]/float64(st.counts[i])))
			}
		}
	}
	return out
}

// Execute implements Node.
func (a *Aggregate) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, a, counters)
}

// Stream implements Node.
func (a *Aggregate) Stream() Operator { return &aggregateOp{node: a} }

// aggregateOp is a pipeline breaker: it consumes its whole input at Open,
// evaluating aggregate arguments a column vector at a time, and emits the
// grouped output in batches.
type aggregateOp struct {
	node *Aggregate
	rows []value.Row
	next int
	out  *Batch
}

func (o *aggregateOp) Open(ctx *Context, counters *cost.Counters) error {
	a := o.node
	if len(a.Aggs) == 0 && len(a.GroupBy) == 0 {
		return fmt.Errorf("engine: Aggregate with no aggregates and no group keys")
	}
	inSchema, err := a.Input.Schema(ctx)
	if err != nil {
		return err
	}
	outSchema, err := a.outSchema(inSchema)
	if err != nil {
		return err
	}
	groupIdxs := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groupIdxs[i], err = inSchema.Resolve(g)
		if err != nil {
			return fmt.Errorf("engine: Aggregate group key: %v", err)
		}
	}
	argFns := make([]*expr.BoundScalar, len(a.Aggs))
	argVecs := make([][]value.Value, len(a.Aggs))
	for i, spec := range a.Aggs {
		if spec.Arg == nil {
			if spec.Func != Count {
				return fmt.Errorf("engine: %s requires an argument", spec.Func)
			}
			continue
		}
		argFns[i], err = expr.BindScalar(spec.Arg, inSchema)
		if err != nil {
			return fmt.Errorf("engine: Aggregate arg: %v", err)
		}
	}

	input := a.Input.Stream()
	defer input.Close()
	if err := input.Open(ctx, counters); err != nil {
		return err
	}

	groups := make(map[string]*aggState)
	var order []string
	var sel []int
	var keyBuf strings.Builder
	rowBuf := make(value.Row, len(inSchema.Fields))
	for {
		b, err := input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		counters.Tuples += int64(n)
		counters.HashBuilds += int64(n)
		sel = identSel(sel, n)
		cols := b.Cols()
		for i := range a.Aggs {
			if argFns[i] == nil {
				continue
			}
			if cap(argVecs[i]) < n {
				argVecs[i] = make([]value.Value, n)
			}
			argVecs[i] = argVecs[i][:n]
			if err := argFns[i].EvalBatch(cols, sel, argVecs[i]); err != nil {
				return fmt.Errorf("engine: Aggregate: %v", err)
			}
		}
		for r := 0; r < n; r++ {
			keyBuf.Reset()
			for _, gi := range groupIdxs {
				keyBuf.WriteString(cols[gi][r].String())
				keyBuf.WriteByte('\x00')
			}
			k := keyBuf.String()
			st, ok := groups[k]
			if !ok {
				b.Row(r, rowBuf)
				st = a.newAggState(groupIdxs, rowBuf)
				groups[k] = st
				order = append(order, k)
			}
			st.count++
			for i, spec := range a.Aggs {
				if spec.Func == Count && spec.Arg == nil {
					continue
				}
				if err := st.accumulate(i, spec.Func, argVecs[i][r]); err != nil {
					return err
				}
			}
		}
	}
	// A global aggregate over empty input still yields one row.
	if len(groupIdxs) == 0 && len(groups) == 0 {
		groups[""] = a.newAggState(groupIdxs, nil)
		order = append(order, "")
	}
	sort.Strings(order) // deterministic output order
	o.rows = make([]value.Row, 0, len(order))
	for _, k := range order {
		o.rows = append(o.rows, a.finalize(groups[k], len(outSchema.Fields)))
	}
	o.out = getBatch(outSchema)
	return nil
}

func (o *aggregateOp) Next() (*Batch, error) {
	if o.next >= len(o.rows) {
		return nil, nil
	}
	end := o.next + BatchSize
	if end > len(o.rows) {
		end = len(o.rows)
	}
	o.out.Reset()
	for _, r := range o.rows[o.next:end] {
		o.out.AppendRow(r)
	}
	o.next = end
	return o.out, nil
}

func (o *aggregateOp) Close() {
	putBatch(o.out)
	o.out = nil
}
