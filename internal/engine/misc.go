package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"robustqo/internal/catalog"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// Filter applies a predicate to its input's rows.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema(ctx *Context) (expr.RelSchema, error) { return f.Input.Schema(ctx) }

// Describe implements Node.
func (f *Filter) Describe() string { return fmt.Sprintf("Filter(%s)", f.Pred) }

// Execute implements Node.
func (f *Filter) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	in, err := f.Input.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	pred, err := bindFilter(f.Pred, in.Schema)
	if err != nil {
		return nil, err
	}
	counters.Tuples += int64(len(in.Rows))
	var rows []value.Row
	for _, r := range in.Rows {
		ok, err := pred.Eval(r)
		if err != nil {
			return nil, fmt.Errorf("engine: Filter: %v", err)
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return &Result{Schema: in.Schema, Rows: rows}, nil
}

// Project narrows the input to the named columns, in order.
type Project struct {
	Input Node
	Cols  []expr.ColumnRef
}

// Schema implements Node.
func (p *Project) Schema(ctx *Context) (expr.RelSchema, error) {
	in, err := p.Input.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	fields := make([]expr.Field, len(p.Cols))
	for i, c := range p.Cols {
		idx, err := in.Resolve(c)
		if err != nil {
			return expr.RelSchema{}, fmt.Errorf("engine: Project: %v", err)
		}
		fields[i] = in.Fields[idx]
	}
	return expr.RelSchema{Fields: fields}, nil
}

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = c.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Execute implements Node.
func (p *Project) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	in, err := p.Input.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(p.Cols))
	fields := make([]expr.Field, len(p.Cols))
	for i, c := range p.Cols {
		idx, err := in.Schema.Resolve(c)
		if err != nil {
			return nil, fmt.Errorf("engine: Project: %v", err)
		}
		idxs[i] = idx
		fields[i] = in.Schema.Fields[idx]
	}
	counters.Tuples += int64(len(in.Rows))
	rows := make([]value.Row, len(in.Rows))
	for r, row := range in.Rows {
		out := make(value.Row, len(idxs))
		for i, idx := range idxs {
			out[i] = row[idx]
		}
		rows[r] = out
	}
	return &Result{Schema: expr.RelSchema{Fields: fields}, Rows: rows}, nil
}

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggSpec is one aggregate output: Func applied to the scalar Arg
// (ignored for COUNT, which may leave Arg nil).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr // scalar; nil allowed for Count
	As   string    // output column name
}

// Aggregate computes hash-grouped aggregates. With no GroupBy columns it
// produces a single row of grand totals (even over empty input, matching
// SQL semantics for COUNT/SUM over empty sets: COUNT = 0, others NaN-free
// zero values).
type Aggregate struct {
	Input   Node
	GroupBy []expr.ColumnRef
	Aggs    []AggSpec
}

// Schema implements Node.
func (a *Aggregate) Schema(ctx *Context) (expr.RelSchema, error) {
	in, err := a.Input.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return a.outSchema(in)
}

func (a *Aggregate) outSchema(in expr.RelSchema) (expr.RelSchema, error) {
	var fields []expr.Field
	for _, g := range a.GroupBy {
		idx, err := in.Resolve(g)
		if err != nil {
			return expr.RelSchema{}, fmt.Errorf("engine: Aggregate group key: %v", err)
		}
		fields = append(fields, in.Fields[idx])
	}
	for i, spec := range a.Aggs {
		name := spec.As
		if name == "" {
			name = fmt.Sprintf("%s_%d", strings.ToLower(spec.Func.String()), i)
		}
		typ := catalog.Float
		if spec.Func == Count {
			typ = catalog.Int
		}
		fields = append(fields, expr.Field{Column: name, Type: typ})
	}
	return expr.RelSchema{Fields: fields}, nil
}

// Describe implements Node.
func (a *Aggregate) Describe() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		if s.Arg != nil {
			parts[i] = fmt.Sprintf("%s(%s)", s.Func, s.Arg)
		} else {
			parts[i] = fmt.Sprintf("%s(*)", s.Func)
		}
	}
	d := "Aggregate(" + strings.Join(parts, ", ")
	if len(a.GroupBy) > 0 {
		keys := make([]string, len(a.GroupBy))
		for i, g := range a.GroupBy {
			keys[i] = g.String()
		}
		d += " BY " + strings.Join(keys, ", ")
	}
	return d + ")"
}

type aggState struct {
	groupVals value.Row
	count     int64
	sums      []float64
	mins      []float64
	maxs      []float64
	counts    []int64 // per-agg counts (for AVG)
}

// Execute implements Node.
func (a *Aggregate) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(a.Aggs) == 0 && len(a.GroupBy) == 0 {
		return nil, fmt.Errorf("engine: Aggregate with no aggregates and no group keys")
	}
	in, err := a.Input.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	outSchema, err := a.outSchema(in.Schema)
	if err != nil {
		return nil, err
	}
	groupIdxs := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groupIdxs[i], err = in.Schema.Resolve(g)
		if err != nil {
			return nil, fmt.Errorf("engine: Aggregate group key: %v", err)
		}
	}
	argFns := make([]*expr.BoundScalar, len(a.Aggs))
	for i, spec := range a.Aggs {
		if spec.Arg == nil {
			if spec.Func != Count {
				return nil, fmt.Errorf("engine: %s requires an argument", spec.Func)
			}
			continue
		}
		argFns[i], err = expr.BindScalar(spec.Arg, in.Schema)
		if err != nil {
			return nil, fmt.Errorf("engine: Aggregate arg: %v", err)
		}
	}
	counters.Tuples += int64(len(in.Rows))
	counters.HashBuilds += int64(len(in.Rows))

	groups := make(map[string]*aggState)
	var order []string
	keyOf := func(row value.Row) string {
		if len(groupIdxs) == 0 {
			return ""
		}
		var sb strings.Builder
		for _, gi := range groupIdxs {
			sb.WriteString(row[gi].String())
			sb.WriteByte('\x00')
		}
		return sb.String()
	}
	newState := func(row value.Row) *aggState {
		st := &aggState{
			sums:   make([]float64, len(a.Aggs)),
			mins:   make([]float64, len(a.Aggs)),
			maxs:   make([]float64, len(a.Aggs)),
			counts: make([]int64, len(a.Aggs)),
		}
		for i := range st.mins {
			st.mins[i] = math.Inf(1)
			st.maxs[i] = math.Inf(-1)
		}
		if row != nil {
			st.groupVals = make(value.Row, len(groupIdxs))
			for i, gi := range groupIdxs {
				st.groupVals[i] = row[gi]
			}
		}
		return st
	}
	for _, row := range in.Rows {
		k := keyOf(row)
		st, ok := groups[k]
		if !ok {
			st = newState(row)
			groups[k] = st
			order = append(order, k)
		}
		st.count++
		for i, spec := range a.Aggs {
			if spec.Func == Count && spec.Arg == nil {
				continue
			}
			v, err := argFns[i].Eval(row)
			if err != nil {
				return nil, fmt.Errorf("engine: Aggregate: %v", err)
			}
			if !v.Numeric() {
				return nil, fmt.Errorf("engine: %s over non-numeric value %s", spec.Func, v)
			}
			f := v.AsFloat()
			st.sums[i] += f
			if f < st.mins[i] {
				st.mins[i] = f
			}
			if f > st.maxs[i] {
				st.maxs[i] = f
			}
			st.counts[i]++
		}
	}
	// A global aggregate over empty input still yields one row.
	if len(groupIdxs) == 0 && len(groups) == 0 {
		groups[""] = newState(nil)
		order = append(order, "")
	}
	sort.Strings(order) // deterministic output order
	rows := make([]value.Row, 0, len(order))
	for _, k := range order {
		st := groups[k]
		out := make(value.Row, 0, len(outSchema.Fields))
		out = append(out, st.groupVals...)
		for i, spec := range a.Aggs {
			switch spec.Func {
			case Count:
				if spec.Arg == nil {
					out = append(out, value.Int(st.count))
				} else {
					out = append(out, value.Int(st.counts[i]))
				}
			case Sum:
				out = append(out, value.Float(st.sums[i]))
			case Min:
				out = append(out, value.Float(zeroIfInf(st.mins[i])))
			case Max:
				out = append(out, value.Float(zeroIfInf(st.maxs[i])))
			case Avg:
				if st.counts[i] == 0 {
					out = append(out, value.Float(0))
				} else {
					out = append(out, value.Float(st.sums[i]/float64(st.counts[i])))
				}
			}
		}
		rows = append(rows, out)
	}
	return &Result{Schema: outSchema, Rows: rows}, nil
}

func zeroIfInf(f float64) float64 {
	if math.IsInf(f, 0) {
		return 0
	}
	return f
}
