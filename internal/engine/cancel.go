package engine

import (
	"context"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
)

// CancelGuard makes an execution responsive to request cancellation: it
// wraps a plan root and checks the Go context between batches, so a
// client disconnect or per-request timeout stops the pull pipeline at
// the next batch boundary instead of running the query to completion.
//
// Cancellation is batch-granular by design. A blocking operator mid-
// Open (a sort or hash build materializing its input) finishes the
// batch it is pulling before the guard above it observes the cancel —
// the engine's operators are synchronous and never themselves poll a
// context. For the serve path this is the right trade: the guard costs
// one atomic load per batch on the hot path, and the longest
// uncancellable stretch is one operator's blocking phase, which the
// admission controller's memory budget already bounds.
//
// The guard sits outside the Instrumented root so that when it aborts
// an execution, closing it still closes the instrumented tree, which
// flushes the ledger feedback for whatever work did complete.
type CancelGuard struct {
	Inner Node
	Ctx   context.Context
}

// Guard wraps root with a cancellation check against ctx. A nil or
// background context returns root unchanged — zero overhead when the
// caller has no deadline.
func Guard(ctx context.Context, root Node) Node {
	if ctx == nil || ctx.Done() == nil {
		return root
	}
	return &CancelGuard{Inner: root, Ctx: ctx}
}

// Schema implements Node.
func (g *CancelGuard) Schema(ctx *Context) (expr.RelSchema, error) { return g.Inner.Schema(ctx) }

// Describe implements Node.
func (g *CancelGuard) Describe() string { return g.Inner.Describe() }

// Execute implements Node.
func (g *CancelGuard) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, g, counters)
}

// Stream implements Node.
func (g *CancelGuard) Stream() Operator { return &cancelOp{node: g} }

type cancelOp struct {
	node  *CancelGuard
	inner Operator
}

func (o *cancelOp) Open(ctx *Context, counters *cost.Counters) error {
	if err := o.node.Ctx.Err(); err != nil {
		return err
	}
	o.inner = o.node.Inner.Stream()
	return o.inner.Open(ctx, counters)
}

//qo:hotpath
func (o *cancelOp) Next() (*Batch, error) {
	if err := o.node.Ctx.Err(); err != nil {
		return nil, err
	}
	return o.inner.Next()
}

func (o *cancelOp) Close() {
	if o.inner != nil {
		o.inner.Close()
	}
}
