package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/value"
)

// Exchange runs a morselizable source on DOP worker goroutines and merges
// their output back into the serial Open/Next/Close contract. Workers
// claim morsels from a shared counter, accumulate into private
// cost.Counters, and ship (morsel index, rows, counters) back to the
// coordinator, which re-sequences morsels by index — so rows come out in
// the source's serial order — and folds the per-worker counters into the
// shared counters exactly once, in worker order. A full drain is
// therefore byte-identical, in both rows and counters, to running the
// source serially.
//
// With DOP < 2, or over a source that cannot be morselized, Exchange
// degrades to a pure pass-through of the source's own operator.
type Exchange struct {
	Source Node
	DOP    int
	// Trace, when non-nil, receives one worker-N span per worker carrying
	// the morsel and row totals it processed.
	Trace *obs.Trace
}

// Schema implements Node.
func (e *Exchange) Schema(ctx *Context) (expr.RelSchema, error) {
	return e.Source.Schema(ctx)
}

// Describe implements Node.
func (e *Exchange) Describe() string {
	return fmt.Sprintf("Exchange(dop=%d, %s)", e.DOP, e.Source.Describe())
}

// Execute implements Node.
func (e *Exchange) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, e, counters)
}

// Stream implements Node.
func (e *Exchange) Stream() Operator { return &exchangeOp{node: e} }

// morselResult carries one finished morsel from a worker to the
// coordinator.
type morselResult struct {
	m    int
	rows []value.Row
	err  error
}

// workerReport is each worker's final accounting: the counters it
// accumulated privately, shipped to the coordinator at the barrier.
// busy/wall are wall-clock utilization figures, populated only when the
// context carries a metrics registry; they never influence results or
// cost.Counters.
type workerReport struct {
	w        int
	counters cost.Counters
	morsels  int
	rows     int64
	busy     time.Duration
	wall     time.Duration
}

type exchangeOp struct {
	node     *Exchange
	counters *cost.Counters

	// passthrough is set when the source runs serially (DOP < 2 or not
	// morselizable); every call then delegates to it.
	passthrough Operator

	// metrics, when non-nil, receives the robustqo_exchange_* utilization
	// series: per-worker busy fractions, queue depth samples, and row/
	// shard skew. Copied from Context.Metrics at Open.
	metrics *obs.Registry
	// shardOf maps a morsel index to its shard; shardRows accumulates
	// emitted rows per shard for the skew metric. Both nil unless the
	// runner is sharded and metrics are on.
	shardOf   func(int) int
	shardRows []int64

	runner   morselRunner
	nMorsels int
	nWorkers int
	claim    atomic.Int64
	stopCh   chan struct{}
	stopped  bool
	results  chan morselResult
	reports  chan workerReport
	wg       sync.WaitGroup
	spans    []*obs.Span

	next    int                  // next morsel index to emit
	pending map[int]morselResult // received out-of-order morsels
	cur     []value.Row
	curPos  int
	out     *Batch
	merged  bool
}

func (o *exchangeOp) Open(ctx *Context, counters *cost.Counters) error {
	o.counters = counters
	src, ok := morselSourceOf(o.node.Source)
	if o.node.DOP < 2 || !ok {
		o.passthrough = o.node.Source.Stream()
		return o.passthrough.Open(ctx, counters)
	}
	runner, err := src.openMorsels(ctx, counters, o.node.DOP)
	if err != nil {
		return err
	}
	o.runner = runner
	o.metrics = ctx.Metrics
	if o.metrics != nil {
		if sr, ok := runner.(shardedRunner); ok && sr.numShards() > 1 {
			o.shardOf = sr.shardOfMorsel
			o.shardRows = make([]int64, sr.numShards())
		}
	}
	schema, err := o.node.Source.Schema(ctx)
	if err != nil {
		return err
	}
	o.nMorsels = runner.numMorsels()
	o.nWorkers = min(o.node.DOP, o.nMorsels)
	o.out = getBatch(schema)
	o.pending = make(map[int]morselResult, o.nWorkers)
	if o.nWorkers == 0 {
		return nil
	}
	o.stopCh = make(chan struct{})
	o.results = make(chan morselResult, o.nWorkers*2)
	o.reports = make(chan workerReport, o.nWorkers)
	o.spans = make([]*obs.Span, o.nWorkers)
	for w := 0; w < o.nWorkers; w++ {
		mw, err := runner.newWorker()
		if err != nil {
			o.finish()
			return err
		}
		o.spans[w] = o.node.Trace.StartSpanDetached(fmt.Sprintf("worker-%d", w))
		o.wg.Add(1)
		timed := o.metrics != nil
		go func(w int, mw morselWorker) {
			defer o.wg.Done()
			defer mw.release()
			// Counters stay goroutine-local; they reach the shared
			// counters only via the report channel, merged at the
			// coordinator's barrier. busy/wall time the morsel work vs the
			// worker's whole lifetime — the busy fraction's complement is
			// time spent waiting on the coordinator's backpressure.
			var wc cost.Counters
			var rows int64
			var busy time.Duration
			var wallStart time.Time
			if timed {
				wallStart = time.Now()
			}
			morsels := 0
			wall := func() time.Duration {
				if timed {
					return time.Since(wallStart)
				}
				return 0
			}
			for {
				select {
				case <-o.stopCh:
					o.reports <- workerReport{w: w, counters: wc, morsels: morsels, rows: rows, busy: busy, wall: wall()}
					return
				default:
				}
				m := int(o.claim.Add(1)) - 1
				if m >= o.nMorsels {
					break
				}
				var start time.Time
				if timed {
					start = time.Now()
				}
				out, err := mw.runMorsel(m, &wc)
				if timed {
					busy += time.Since(start)
				}
				rows += int64(len(out))
				morsels++
				select {
				case o.results <- morselResult{m: m, rows: out, err: err}:
				case <-o.stopCh:
					o.reports <- workerReport{w: w, counters: wc, morsels: morsels, rows: rows, busy: busy, wall: wall()}
					return
				}
				if err != nil {
					// Stop claiming; the coordinator surfaces the error
					// when emission order reaches this morsel.
					break
				}
			}
			o.reports <- workerReport{w: w, counters: wc, morsels: morsels, rows: rows, busy: busy, wall: wall()}
		}(w, mw)
	}
	return nil
}

func (o *exchangeOp) Next() (*Batch, error) {
	if o.passthrough != nil {
		return o.passthrough.Next()
	}
	for {
		// Emit the current morsel's survivors in batch-sized chunks.
		if o.curPos < len(o.cur) {
			end := min(o.curPos+BatchSize, len(o.cur))
			o.out.Reset()
			for _, r := range o.cur[o.curPos:end] {
				o.out.AppendRow(r)
			}
			o.curPos = end
			return o.out, nil
		}
		if o.next >= o.nMorsels {
			o.finish()
			return nil, nil
		}
		// Block until the next in-order morsel arrives; stash any that
		// arrive ahead of their turn. Every morsel index gets exactly one
		// result, so this always terminates.
		res, ok := o.pending[o.next]
		for !ok {
			if o.metrics != nil {
				// Sampled just before each blocking receive: how far the
				// workers have run ahead of the in-order merge.
				o.metrics.Histogram("robustqo_exchange_queue_depth", obs.DepthBuckets).Observe(float64(len(o.results)))
			}
			r := <-o.results
			if o.shardRows != nil {
				o.shardRows[o.shardOf(r.m)] += int64(len(r.rows))
			}
			o.pending[r.m] = r
			res, ok = o.pending[o.next]
		}
		delete(o.pending, o.next)
		o.next = o.next + 1
		if res.err != nil {
			return nil, res.err
		}
		o.cur, o.curPos = res.rows, 0
	}
}

func (o *exchangeOp) Close() {
	if o.passthrough != nil {
		o.passthrough.Close()
		return
	}
	o.finish()
	putBatch(o.out)
	o.out = nil
	o.cur = nil
	o.pending = nil
}

// finish stops the pool, waits for every worker, and merges the
// per-worker counters into the shared counters — exactly once, in worker
// order, so repeated drains and early Closes both account every charge
// deterministically.
func (o *exchangeOp) finish() {
	if o.merged {
		return
	}
	o.merged = true
	if o.stopCh != nil && !o.stopped {
		o.stopped = true
		close(o.stopCh)
	}
	o.wg.Wait()
	for {
		// Release any undelivered morsels (nil channel: skipped).
		select {
		case <-o.results:
			continue
		default:
		}
		break
	}
	reps := make([]workerReport, o.nWorkers)
	got := make([]bool, o.nWorkers)
	for {
		select {
		case r := <-o.reports:
			reps[r.w] = r
			got[r.w] = true
			continue
		default:
		}
		break
	}
	var totalRows, totalMorsels, maxWorkerRows int64
	nReported := 0
	for w := range reps {
		if got[w] {
			o.counters.Add(reps[w].counters)
			totalRows += reps[w].rows
			totalMorsels += int64(reps[w].morsels)
			if reps[w].rows > maxWorkerRows {
				maxWorkerRows = reps[w].rows
			}
			nReported++
			if sp := o.spans[w]; sp != nil {
				sp.SetAttr("morsels", fmt.Sprintf("%d", reps[w].morsels))
				sp.SetAttr("rows", fmt.Sprintf("%d", reps[w].rows))
			}
			if o.metrics != nil && reps[w].wall > 0 {
				o.metrics.Histogram("robustqo_exchange_worker_busy_ratio", obs.RatioBuckets).
					Observe(reps[w].busy.Seconds() / reps[w].wall.Seconds())
			}
		}
		if w < len(o.spans) {
			o.spans[w].End()
		}
	}
	o.exportSkew(totalRows, totalMorsels, maxWorkerRows, nReported)
	// The workers bypass an instrumented source's pass-through wrapper,
	// so feed the actual totals into its stats here; EXPLAIN ANALYZE then
	// reports the scan's actuals as usual.
	if inst, ok := o.node.Source.(*Instrumented); ok && inst.Stats != nil {
		inst.Stats.Rows += totalRows
		inst.Stats.Batches += totalMorsels
	}
	// Runners that bypass further Instrumented wrappers inside the source
	// subtree (HashJoin over an instrumented probe) feed those here too.
	if f, ok := o.runner.(morselStatsFeeder); ok {
		f.feedStats()
	}
}

// exportSkew emits the drain-level utilization series: totals, the
// max-over-mean row skew across workers, and — when the runner is
// sharded — the same skew statistic across shards. A skew of 1.0 is a
// perfectly balanced drain; the histogram buckets (obs.SkewBuckets) top
// out at 10x.
func (o *exchangeOp) exportSkew(totalRows, totalMorsels, maxWorkerRows int64, nWorkers int) {
	if o.metrics == nil {
		return
	}
	o.metrics.Counter("robustqo_exchange_rows_total").Add(totalRows)
	o.metrics.Counter("robustqo_exchange_morsels_total").Add(totalMorsels)
	if totalRows > 0 && nWorkers > 0 {
		skew := float64(maxWorkerRows) * float64(nWorkers) / float64(totalRows)
		o.metrics.Histogram("robustqo_exchange_row_skew", obs.SkewBuckets).Observe(skew)
	}
	if o.shardRows != nil {
		var shardTotal, shardMax int64
		for _, r := range o.shardRows {
			shardTotal += r
			if r > shardMax {
				shardMax = r
			}
		}
		if shardTotal > 0 {
			skew := float64(shardMax) * float64(len(o.shardRows)) / float64(shardTotal)
			o.metrics.Histogram("robustqo_exchange_shard_skew", obs.SkewBuckets).Observe(skew)
		}
	}
}
