package engine

import (
	"fmt"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
)

// TestAccessPathEquivalenceProperty checks, over many random range
// predicates, that every access path — sequential scan, each single-index
// range scan with residual, and the index intersection — returns exactly
// the same row multiset. This is the engine-level invariant the optimizer
// relies on: plan choice may change cost but never results.
func TestAccessPathEquivalenceProperty(t *testing.T) {
	db, ctx := testDB(t, 300, 4, 10)
	_ = db
	rng := stats.NewRNG(2718)
	for trial := 0; trial < 60; trial++ {
		// Random (possibly empty, possibly inverted-then-fixed) windows.
		mk := func() (int64, int64) {
			lo := int64(testkit.Intn(rng, 120)) - 10
			hi := lo + int64(testkit.Intn(rng, 60))
			return lo, hi
		}
		sLo, sHi := mk()
		rLo, rHi := mk()
		shipRange := KeyRange{Column: "l_ship", Lo: sLo, Hi: sHi}
		rcptRange := KeyRange{Column: "l_receipt", Lo: rLo, Hi: rHi}
		pred := expr.Conj(
			expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)},
			expr.Between{E: expr.C("l_receipt"), Lo: expr.IntLit(rLo), Hi: expr.IntLit(rHi)},
		)
		label := fmt.Sprintf("trial %d ship[%d,%d] receipt[%d,%d]", trial, sLo, sHi, rLo, rHi)

		scan, _, _, err := Run(ctx, &SeqScan{Table: "lineitem", Filter: pred})
		if err != nil {
			t.Fatalf("%s: scan: %v", label, err)
		}
		plans := []Node{
			&IndexRangeScan{Table: "lineitem", Range: shipRange,
				Residual: expr.Between{E: expr.C("l_receipt"), Lo: expr.IntLit(rLo), Hi: expr.IntLit(rHi)}},
			&IndexRangeScan{Table: "lineitem", Range: rcptRange,
				Residual: expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)}},
			&IndexIntersect{Table: "lineitem", Ranges: []KeyRange{shipRange, rcptRange}},
		}
		for pi, plan := range plans {
			res, _, _, err := Run(ctx, plan)
			if err != nil {
				t.Fatalf("%s: plan %d: %v", label, pi, err)
			}
			sameRowMultiset(t, res.Rows, scan.Rows, fmt.Sprintf("%s plan %d", label, pi))
		}
	}
}

// TestJoinMethodEquivalenceProperty checks that hash, merge, and indexed
// nested-loop joins agree on random filtered inputs.
func TestJoinMethodEquivalenceProperty(t *testing.T) {
	_, ctx := testDB(t, 120, 3, 10)
	rng := stats.NewRNG(3141)
	okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
	lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
	for trial := 0; trial < 30; trial++ {
		cut := rng.Float64() * 1000
		filter := expr.Cmp{Op: expr.LT, L: expr.TC("orders", "o_total"), R: expr.FloatLit(cut)}
		ordersScan := func() Node { return &SeqScan{Table: "orders", Filter: filter} }
		lineScan := func() Node { return &SeqScan{Table: "lineitem"} }

		ref, _, _, err := Run(ctx, &HashJoin{
			Build: ordersScan(), Probe: lineScan(), BuildCol: okey, ProbeCol: lkey,
		})
		if err != nil {
			t.Fatal(err)
		}
		mj := &MergeJoin{Left: ordersScan(), Right: lineScan(),
			LeftCol: okey, RightCol: lkey, LeftSorted: true, RightSorted: true}
		mres, _, _, err := Run(ctx, mj)
		if err != nil {
			t.Fatal(err)
		}
		sameRowMultiset(t, mres.Rows, ref.Rows, fmt.Sprintf("merge trial %d", trial))

		// INL emits outer-then-inner; reorder the reference columns by
		// comparing against a hash join with the same orientation.
		inl := &INLJoin{Outer: ordersScan(), OuterCol: okey, InnerTable: "lineitem", InnerCol: "l_orderkey"}
		ires, _, _, err := Run(ctx, inl)
		if err != nil {
			// INL via secondary index requires an index on l_orderkey,
			// which the fixture lacks; probing the PK side instead.
			inl2 := &INLJoin{
				Outer:      &SeqScan{Table: "lineitem"},
				OuterCol:   lkey,
				InnerTable: "orders",
				InnerCol:   "o_orderkey",
				Residual:   filter,
			}
			ires2, _, _, err := Run(ctx, inl2)
			if err != nil {
				t.Fatal(err)
			}
			hj2, _, _, err := Run(ctx, &HashJoin{
				Build: lineScan(), Probe: ordersScan(), BuildCol: lkey, ProbeCol: okey,
			})
			if err != nil {
				t.Fatal(err)
			}
			sameRowMultiset(t, ires2.Rows, hj2.Rows, fmt.Sprintf("inl-pk trial %d", trial))
			continue
		}
		hjSame, _, _, err := Run(ctx, &HashJoin{
			Build: ordersScan(), Probe: lineScan(), BuildCol: okey, ProbeCol: lkey,
		})
		if err != nil {
			t.Fatal(err)
		}
		sameRowMultiset(t, ires.Rows, hjSame.Rows, fmt.Sprintf("inl trial %d", trial))
	}
}

// TestStreamMaterializedSPJProperty drives random select-project-join
// plans — random access path, random join method, random filter windows,
// optional sort — through both the streaming pipeline and the materialized
// reference engine, requiring identical rows in identical order AND
// byte-identical cost.Counters on every full drain. This is the refactor's
// core safety property: batching changes when work happens, never how
// much or what it produces.
func TestStreamMaterializedSPJProperty(t *testing.T) {
	_, ctx := testDB(t, 200, 3, 10)
	rng := stats.NewRNG(9001)
	okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
	lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
	for trial := 0; trial < 40; trial++ {
		sLo := int64(testkit.Intn(rng, 110)) - 5
		sHi := sLo + int64(testkit.Intn(rng, 70))
		cut := rng.Float64() * 1000
		linePred := expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)}
		orderPred := expr.Cmp{Op: expr.LT, L: expr.TC("orders", "o_total"), R: expr.FloatLit(cut)}

		// Random access path for the lineitem side.
		var lineScan Node
		switch testkit.Intn(rng, 3) {
		case 0:
			lineScan = &SeqScan{Table: "lineitem", Filter: linePred}
		case 1:
			lineScan = &IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_ship", Lo: sLo, Hi: sHi}}
		default:
			lineScan = &IndexIntersect{Table: "lineitem",
				Ranges: []KeyRange{{Column: "l_ship", Lo: sLo, Hi: sHi}}}
		}

		// Random join method over the filtered sides.
		var join Node
		switch testkit.Intn(rng, 3) {
		case 0:
			join = &HashJoin{Build: &SeqScan{Table: "orders", Filter: orderPred},
				Probe: lineScan, BuildCol: okey, ProbeCol: lkey}
		case 1:
			join = &MergeJoin{Left: &SeqScan{Table: "orders", Filter: orderPred},
				Right: lineScan, LeftCol: okey, RightCol: lkey}
		default:
			join = &INLJoin{Outer: lineScan, OuterCol: lkey,
				InnerTable: "orders", InnerCol: "o_orderkey", Residual: orderPred}
		}

		// Optional project and sort layers above the join. Column names
		// differ per join orientation, so project via qualified refs that
		// exist in every orientation.
		plan := join
		if testkit.Intn(rng, 2) == 0 {
			plan = &Project{Input: plan, Cols: []expr.ColumnRef{
				{Table: "lineitem", Column: "l_id"},
				{Table: "orders", Column: "o_total"},
				{Table: "lineitem", Column: "l_price"},
			}}
		}
		if testkit.Intn(rng, 2) == 0 {
			plan = &Sort{Input: plan, By: []SortKey{
				{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}, Desc: testkit.Intn(rng, 2) == 0}}}
		}

		label := fmt.Sprintf("trial %d ship[%d,%d] cut %.1f plan %s", trial, sLo, sHi, cut, plan.Describe())
		var sc, mc cost.Counters
		sres, err := plan.Execute(ctx, &sc)
		if err != nil {
			t.Fatalf("%s: streaming: %v", label, err)
		}
		mres, err := ExecuteMaterialized(ctx, plan, &mc)
		if err != nil {
			t.Fatalf("%s: materialized: %v", label, err)
		}
		if len(sres.Rows) != len(mres.Rows) {
			t.Fatalf("%s: streaming %d rows, materialized %d", label, len(sres.Rows), len(mres.Rows))
		}
		for i := range sres.Rows {
			if rowKey(sres.Rows[i]) != rowKey(mres.Rows[i]) {
				t.Fatalf("%s: row %d differs: streaming %v, materialized %v",
					label, i, sres.Rows[i], mres.Rows[i])
			}
		}
		if sc != mc {
			t.Fatalf("%s: counters diverged:\nstreaming    %+v\nmaterialized %+v", label, sc, mc)
		}
	}
}
