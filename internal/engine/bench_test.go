package engine

import (
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
)

// benchPlan is a scan→filter→limit pipeline: the shape where streaming
// execution wins, since the materialized path pays for the whole table
// before the limit discards it.
func benchPlan(n int) Node {
	return &Limit{N: n, Input: &Filter{
		Input: &SeqScan{Table: "lineitem"},
		Pred:  expr.Cmp{Op: expr.GE, L: expr.C("l_ship"), R: expr.IntLit(0)},
	}}
}

// BenchmarkExecStreamVsMaterialize compares the streaming pipeline against
// the materialized reference engine on the same plans, reporting rows/sec
// and allocations. The limit10 pair is the headline: streaming touches one
// batch where materialization builds every intermediate result.
func BenchmarkExecStreamVsMaterialize(b *testing.B) {
	_, ctx := testDB(b, 2000, 3, 10) // 6000 lineitem rows
	run := func(b *testing.B, plan Node, stream bool) {
		b.Helper()
		b.ReportAllocs()
		var rows int64
		for i := 0; i < b.N; i++ {
			var c cost.Counters
			var res *Result
			var err error
			if stream {
				res, err = plan.Execute(ctx, &c)
			} else {
				res, err = ExecuteMaterialized(ctx, plan, &c)
			}
			if err != nil {
				b.Fatal(err)
			}
			rows += int64(len(res.Rows))
		}
		b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
	}
	for _, bc := range []struct {
		name string
		n    int
	}{
		{"limit10", 10},
		{"fulldrain", 1 << 30},
	} {
		plan := benchPlan(bc.n)
		b.Run(bc.name+"/stream", func(b *testing.B) { run(b, plan, true) })
		b.Run(bc.name+"/materialized", func(b *testing.B) { run(b, plan, false) })
		// The obs wrapper must stay within a few percent of the bare
		// streaming path; cmd/benchobs records the overhead in
		// BENCH_obs.json.
		b.Run(bc.name+"/stream-instrumented", func(b *testing.B) { run(b, Instrument(benchPlan(bc.n)), true) })
	}
}

// TestStreamLimitAllocsFarBelowMaterialized pins the issue's acceptance
// bar as a test: the streaming path under LIMIT 10 must allocate at least
// 10x less than the materialized path on the same plan.
func TestStreamLimitAllocsFarBelowMaterialized(t *testing.T) {
	_, ctx := testDB(t, 2000, 3, 10)
	plan := benchPlan(10)
	stream := testing.AllocsPerRun(10, func() {
		var c cost.Counters
		if _, err := plan.Execute(ctx, &c); err != nil {
			t.Fatal(err)
		}
	})
	mat := testing.AllocsPerRun(10, func() {
		var c cost.Counters
		if _, err := ExecuteMaterialized(ctx, plan, &c); err != nil {
			t.Fatal(err)
		}
	})
	if stream*10 > mat {
		t.Errorf("streaming LIMIT 10 allocated %.0f/run vs materialized %.0f/run; want >=10x reduction",
			stream, mat)
	}
}
