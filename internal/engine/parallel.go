package engine

// Morsel-driven parallelism for the leaf scans. A morselizable source
// splits its streaming work into fixed-size contiguous morsels that an
// Exchange worker pool consumes; the blocking Open-phase work (catalog
// resolution, index seeks, RID intersection) stays on the coordinator and
// is charged to the shared counters exactly once, just as the serial
// operator's Open would charge it.
//
// Counter exactness is the load-bearing property: a full parallel drain
// must produce byte-identical cost.Counters to the serial pipeline. That
// holds because every per-morsel charge is tiling-invariant:
//
//   - SeqScan charges pages whose first tuple falls inside the current
//     row window; morsel boundaries are multiples of BatchSize, so the
//     windows are exactly the serial pipeline's windows, merely
//     partitioned across workers.
//   - RID fetches charge one random page and one tuple per RID, which is
//     independent of how the RID list is partitioned.
//
// int64 addition is commutative, so merging per-worker counters in any
// order reproduces the serial totals.

import (
	"fmt"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/index"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// MorselSize is the number of rows (or RIDs) one morsel covers. It is a
// multiple of BatchSize so parallel sub-batch windows coincide with the
// serial pipeline's windows, which is what keeps the per-window page
// charges byte-identical under any partitioning.
const MorselSize = 4 * BatchSize

// morselSource is implemented by nodes whose streaming phase can be
// partitioned into morsels. openMorsels performs the serial operator's
// blocking Open work — charged to the shared counters on the coordinator
// — and returns a runner over the remaining row-fetch work. dop is the
// worker count the Exchange will run; leaf scans ignore it, while
// HashJoin uses it to partition its build across that many workers before
// the probe morsels start.
type morselSource interface {
	Node
	openMorsels(ctx *Context, counters *cost.Counters, dop int) (morselRunner, error)
}

// morselRunner partitions a source's streaming work into numMorsels
// contiguous morsels. newWorker returns an independent worker context;
// workers run disjoint morsels concurrently, each charging its own
// counters (bound predicates carry per-evaluation scratch, so every
// worker binds its own copy).
type morselRunner interface {
	numMorsels() int
	newWorker() (morselWorker, error)
}

// morselWorker processes single morsels. runMorsel charges the morsel's
// page and tuple work into counters and returns the surviving rows,
// freshly cloned (they outlive the worker's scratch batch). release
// returns worker-owned scratch to the batch pool.
type morselWorker interface {
	runMorsel(m int, counters *cost.Counters) ([]value.Row, error)
	release()
}

// morselSourceOf unwraps instrumentation and reports whether a node can
// feed an Exchange worker pool.
func morselSourceOf(n Node) (morselSource, bool) {
	for {
		inst, ok := n.(*Instrumented)
		if !ok {
			break
		}
		n = inst.Inner
	}
	// A HashJoin is morselizable exactly when its probe side is: the
	// build is blocking Open-phase work either way. Checked before the
	// plain interface assertion so an ineligible probe disqualifies the
	// join instead of panicking later.
	if hj, ok := n.(*HashJoin); ok {
		if _, ok := morselSourceOf(hj.Probe); !ok {
			return nil, false
		}
		return hj, true
	}
	ms, ok := n.(morselSource)
	return ms, ok
}

// shardedRunner is implemented by runners that know which shard each
// morsel was tiled from; the Exchange uses it for the per-shard row-skew
// metric. Runners over unpartitioned sources simply don't implement it.
type shardedRunner interface {
	numShards() int
	shardOfMorsel(m int) int
}

// morselStatsFeeder is implemented by runners that bypass Instrumented
// wrappers inside their subtree (a HashJoin's probe runs through the
// worker pool, not through the probe node's own Stream). Exchange calls
// feedStats at its barrier so EXPLAIN ANALYZE still reports the bypassed
// operators' actual row counts.
type morselStatsFeeder interface {
	feedStats()
}

// --- SeqScan ---

// openMorsels implements morselSource. The serial SeqScan charges nothing
// at Open; the filter is bound once here so malformed predicates fail at
// Open exactly as they do serially.
func (s *SeqScan) openMorsels(ctx *Context, _ *cost.Counters, _ int) (morselRunner, error) {
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	if _, err := bindFilter(s.Filter, schema); err != nil {
		return nil, err
	}
	morsels, shards := spanMorselsShards(scanSpans(t, s.Partitions))
	return &seqMorselRunner{
		node: s, t: t, schema: schema,
		spec:    prepareEncScan(ctx, t, schema, s),
		morsels: morsels, shards: shards,
	}, nil
}

type seqMorselRunner struct {
	node *SeqScan
	t    *storage.Table
	// spec is the shared encoded-scan plan, nil on the row path; each
	// worker derives its own mutable encScan state from it.
	spec   *encScanSpec
	schema expr.RelSchema
	// morsels are the shard-major (shard, morsel) work units: ascending
	// row-id windows, each inside one surviving shard. The Exchange's
	// merge-by-morsel-index therefore reproduces global row-id order.
	morsels []rowSpan
	// shards[m] is the span (shard) index morsel m was tiled from.
	shards []int
}

func (r *seqMorselRunner) numMorsels() int { return len(r.morsels) }

// numShards and shardOfMorsel implement shardedRunner; shards are
// shard-major, so the last entry is the highest span index.
func (r *seqMorselRunner) numShards() int {
	if len(r.shards) == 0 {
		return 0
	}
	return r.shards[len(r.shards)-1] + 1
}

func (r *seqMorselRunner) shardOfMorsel(m int) int { return r.shards[m] }

func (r *seqMorselRunner) newWorker() (morselWorker, error) {
	pred, err := bindFilter(r.node.Filter, r.schema)
	if err != nil {
		return nil, err
	}
	w := &seqMorselWorker{r: r, pred: pred, out: getBatch(r.schema)}
	if r.spec != nil {
		if w.enc, err = r.spec.newState(r.schema); err != nil {
			return nil, err
		}
	}
	return w, nil
}

type seqMorselWorker struct {
	r    *seqMorselRunner
	pred *expr.Bound
	enc  *encScan
	out  *Batch
	sel  []int
}

// runMorsel loads, filters, and clones out the morsel's surviving rows.
// Survivors are copied into arena slabs rather than one allocation per
// row, so a full drain allocates per slab, not per tuple.
//
//qo:hotpath
func (w *seqMorselWorker) runMorsel(m int, counters *cost.Counters) ([]value.Row, error) {
	t := w.r.t
	lo, hi := w.r.morsels[m].lo, w.r.morsels[m].hi
	var rows []value.Row
	var arena []value.Value
	for next := lo; next < hi; {
		end := min(next+BatchSize, hi)
		if w.enc != nil {
			// Encoded columnar window — identical counters to the row path.
			if err := w.enc.window(w.out, w.pred, next, end, counters); err != nil {
				//qo:alloc-ok error path, cold
				return nil, fmt.Errorf("engine: SeqScan(%s): %v", w.r.node.Table, err)
			}
			rows, arena = appendArenaRows(rows, arena, w.out)
			next = end
			continue
		}
		w.out.Reset()
		// Column-wise load of the row window [next, end) — the same
		// windows, charges, and filter evaluation as seqScanOp.Next.
		for c := range w.out.cols {
			col := w.out.cols[c]
			for r := next; r < end; r++ {
				col = append(col, t.Value(r, c))
			}
			w.out.cols[c] = col
		}
		w.out.n = end - next
		const per = storage.TuplesPerPage
		counters.SeqPages += int64((end+per-1)/per - (next+per-1)/per)
		counters.Tuples += int64(end - next)
		w.sel = identSel(w.sel, w.out.Len())
		keep, err := w.pred.EvalBatch(w.out.Cols(), w.sel)
		if err != nil {
			//qo:alloc-ok error path, cold
			return nil, fmt.Errorf("engine: SeqScan(%s): %v", w.r.node.Table, err)
		}
		w.out.Gather(keep)
		rows, arena = appendArenaRows(rows, arena, w.out)
		next = end
	}
	return rows, nil
}

func (w *seqMorselWorker) release() {
	putBatch(w.out)
	w.out = nil
}

// --- RID-list scans (IndexRangeScan, IndexIntersect) ---

// openMorsels implements morselSource: the index seek happens here, on
// the coordinator, with the same charges as the serial Open.
func (s *IndexRangeScan) openMorsels(ctx *Context, counters *cost.Counters, _ int) (morselRunner, error) {
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	ix, ok := ctx.Indexes.Lookup(s.Table, s.Range.Column)
	if !ok {
		return nil, fmt.Errorf("engine: no index on %s.%s", s.Table, s.Range.Column)
	}
	if _, err := bindFilter(s.Residual, schema); err != nil {
		return nil, err
	}
	counters.IndexSeeks++
	rids, scanned := ix.Range(s.Range.Lo, s.Range.Hi)
	counters.IndexEntries += int64(scanned)
	rids = pruneRids(t, s.Partitions, rids)
	return &ridMorselRunner{
		t: t, schema: schema, residual: s.Residual, rids: rids,
		errCtx: fmt.Sprintf("IndexRangeScan(%s)", s.Table),
	}, nil
}

// openMorsels implements morselSource: all probes and the intersection
// happen here, on the coordinator, with the same charges as the serial
// Open.
func (s *IndexIntersect) openMorsels(ctx *Context, counters *cost.Counters, _ int) (morselRunner, error) {
	if len(s.Ranges) == 0 {
		return nil, fmt.Errorf("engine: IndexIntersect(%s) with no ranges", s.Table)
	}
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	if _, err := bindFilter(s.Residual, schema); err != nil {
		return nil, err
	}
	lists := make([][]int32, len(s.Ranges))
	for i, r := range s.Ranges {
		ix, ok := ctx.Indexes.Lookup(s.Table, r.Column)
		if !ok {
			return nil, fmt.Errorf("engine: no index on %s.%s", s.Table, r.Column)
		}
		counters.IndexSeeks++
		rids, scanned := ix.Range(r.Lo, r.Hi)
		counters.IndexEntries += int64(scanned)
		counters.Tuples += int64(scanned) // intersection CPU
		lists[i] = rids
	}
	rids := pruneRids(t, s.Partitions, index.Intersect(lists...))
	return &ridMorselRunner{
		t: t, schema: schema, residual: s.Residual, rids: rids,
		errCtx: fmt.Sprintf("IndexIntersect(%s)", s.Table),
	}, nil
}

// ridMorselRunner partitions a RID list; each RID costs one random page
// and one tuple wherever it lands, so any partition sums to the serial
// charges.
type ridMorselRunner struct {
	t        *storage.Table
	schema   expr.RelSchema
	residual expr.Expr
	rids     []int32
	errCtx   string
}

func (r *ridMorselRunner) numMorsels() int {
	return (len(r.rids) + MorselSize - 1) / MorselSize
}

func (r *ridMorselRunner) newWorker() (morselWorker, error) {
	pred, err := bindFilter(r.residual, r.schema)
	if err != nil {
		return nil, err
	}
	return &ridMorselWorker{
		r: r, pred: pred, out: getBatch(r.schema),
		buf: make(value.Row, len(r.schema.Fields)),
	}, nil
}

type ridMorselWorker struct {
	r    *ridMorselRunner
	pred *expr.Bound
	out  *Batch
	buf  value.Row
	sel  []int
}

// runMorsel fetches, filters, and clones out the morsel's surviving
// rows, copying survivors into arena slabs exactly as the SeqScan worker
// does.
//
//qo:hotpath
func (w *ridMorselWorker) runMorsel(m int, counters *cost.Counters) ([]value.Row, error) {
	rids := w.r.rids
	lo := m * MorselSize
	hi := min(lo+MorselSize, len(rids))
	var rows []value.Row
	var arena []value.Value
	for next := lo; next < hi; {
		end := min(next+BatchSize, hi)
		w.out.Reset()
		for _, rid := range rids[next:end] {
			counters.RandPages++
			counters.Tuples++
			w.r.t.ReadRow(int(rid), w.buf)
			w.out.AppendRow(w.buf)
		}
		w.sel = identSel(w.sel, w.out.Len())
		keep, err := w.pred.EvalBatch(w.out.Cols(), w.sel)
		if err != nil {
			//qo:alloc-ok error path, cold
			return nil, fmt.Errorf("engine: %s: %v", w.r.errCtx, err)
		}
		w.out.Gather(keep)
		rows, arena = appendArenaRows(rows, arena, w.out)
		next = end
	}
	return rows, nil
}

func (w *ridMorselWorker) release() {
	putBatch(w.out)
	w.out = nil
}
