package engine

import (
	"fmt"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/colstore"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// TestSegmentRowsMatchMorselSize pins the alignment contract the encoded
// scan path relies on: segments tile shard spans in MorselSize blocks,
// so every BatchSize window a scan operator or morsel worker processes
// lies inside exactly one segment at any DOP.
func TestSegmentRowsMatchMorselSize(t *testing.T) {
	if colstore.SegmentRows != MorselSize {
		t.Fatalf("colstore.SegmentRows = %d, engine.MorselSize = %d; the encoded scan's window/segment alignment depends on their equality", colstore.SegmentRows, MorselSize)
	}
}

// columnarTestDB builds a lineitem/orders pair where lineitem carries all
// four column kinds, with ship dates and status values clustered by row
// position so zone maps have real skipping power, range-partitioned on
// l_ship when shards > 1.
func columnarTestDB(t testing.TB, rows, shards int) (*storage.Database, *Context) {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int},
			{Name: "o_total", Type: catalog.Float},
		},
		PrimaryKey: "o_orderkey",
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := &catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_orderkey", Type: catalog.Int},
			{Name: "l_ship", Type: catalog.Date},
			{Name: "l_status", Type: catalog.String},
			{Name: "l_qty", Type: catalog.Int},
			{Name: "l_price", Type: catalog.Float},
		},
		PrimaryKey: "l_id",
		Foreign:    []catalog.ForeignKey{{Column: "l_orderkey", RefTable: "orders"}},
	}
	if shards > 1 {
		spec := &catalog.PartitionSpec{Column: "l_ship", Kind: catalog.RangePartition, Partitions: shards}
		for b := 1; b < shards; b++ {
			spec.Bounds = append(spec.Bounds, int64(b*100/shards))
		}
		schema.Partition = spec
	}
	lineitem, err := db.CreateTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	nOrders := 500
	rng := stats.NewRNG(777)
	for o := 0; o < nOrders; o++ {
		if err := orders.Append(value.Row{value.Int(int64(o)), value.Float(rng.Float64() * 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	statuses := []string{"fill", "open", "ship", "void"}
	for i := 0; i < rows; i++ {
		// Ship dates climb with row position (small jitter), so segment
		// zones are narrow slices of [0, 100) instead of the full range.
		ship := int64(i*100/rows) + int64(testkit.Intn(rng, 3))
		row := value.Row{
			value.Int(int64(i)),
			value.Int(int64(testkit.Intn(rng, nOrders))),
			value.Date(ship),
			value.Str(statuses[(i/700)%len(statuses)]),
			value.Int(int64(testkit.Intn(rng, 50))),
			value.Float(float64(testkit.Intn(rng, 10000)) / 100),
		}
		if err := lineitem.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

// TestColumnarDifferentialProperty extends the 40-query differential
// corpus across storage encodings: the same plans run with the lineitem
// scan on the row path, the eager encoded path, and the late-materialized
// encoded path, serial and behind Exchanges at DOP 1, 2, and 4, over both
// an unpartitioned and a 2-shard partitioned layout. Every leg must
// produce byte-identical rows in identical order AND byte-identical
// cost.Counters versus the row-path serial baseline — encoded scans are
// counter transparent even when zone maps skip whole segments. Run with
// -race this doubles as the proof that shared probe state and the
// columnar metrics are race-clean under the worker pool.
func TestColumnarDifferentialProperty(t *testing.T) {
	for _, shards := range []int{1, 2} {
		rows := 2*colstore.SegmentRows*max(shards, 1) + 1500
		db, ctx := columnarTestDB(t, rows, shards)
		encs, err := colstore.BuildAll(db)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Encodings = encs
		rng := stats.NewRNG(40104)
		okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
		lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
		statuses := []string{"fill", "open", "ship", "void"}
		for trial := 0; trial < 40; trial++ {
			sLo := int64(testkit.Intn(rng, 110)) - 5
			sHi := sLo + int64(testkit.Intn(rng, 40))
			status := statuses[testkit.Intn(rng, len(statuses))]
			cut := rng.Float64() * 100
			// The filter mixes pushable conjuncts (date range, string
			// equality/range) with residual-only ones (float compare,
			// substring match) in varying orders, so legs exercise full
			// pushdown, partial prefixes, and empty prefixes.
			var pred expr.Expr
			switch trial % 4 {
			case 0: // fully pushable prefix + float residual
				pred = expr.Conj(
					expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)},
					expr.Cmp{Op: expr.EQ, L: expr.C("l_status"), R: expr.StrLit(status)},
					expr.Cmp{Op: expr.LT, L: expr.C("l_price"), R: expr.FloatLit(cut)},
				)
			case 1: // residual first: prefix is empty, late mode degrades gracefully
				pred = expr.Conj(
					expr.Contains{E: expr.C("l_status"), Substr: "i"},
					expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)},
				)
			case 2: // string range + open int bound
				pred = expr.Conj(
					expr.Cmp{Op: expr.GE, L: expr.C("l_status"), R: expr.StrLit(status)},
					expr.Cmp{Op: expr.GT, L: expr.C("l_ship"), R: expr.IntLit(sLo)},
					expr.Cmp{Op: expr.NE, L: expr.C("l_qty"), R: expr.IntLit(7)},
				)
			default: // narrow date window only: the zone-skip showcase
				pred = expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)}
			}

			build := func(dop int, mode ScanMode) Node {
				wrap := func(n Node) Node {
					if dop == 0 {
						return n
					}
					return &Exchange{Source: n, DOP: dop}
				}
				var plan Node = wrap(&SeqScan{Table: "lineitem", Filter: pred, Mode: mode})
				if trial%3 == 0 {
					plan = &HashJoin{
						Build: wrap(&SeqScan{Table: "orders"}), Probe: plan,
						BuildCol: okey, ProbeCol: lkey,
					}
				}
				if trial%2 == 1 {
					plan = &Sort{Input: plan, By: []SortKey{
						{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}}}}
				}
				return plan
			}

			label := fmt.Sprintf("shards=%d trial %d ship[%d,%d] status %q", shards, trial, sLo, sHi, status)
			var bc cost.Counters
			base, err := build(0, ScanRows).Execute(ctx, &bc)
			if err != nil {
				t.Fatalf("%s: baseline: %v", label, err)
			}
			for _, mode := range []ScanMode{ScanRows, ScanEager, ScanLate} {
				for _, dop := range []int{0, 1, 2, 4} {
					if mode == ScanRows && dop == 0 {
						continue
					}
					var c cost.Counters
					res, err := build(dop, mode).Execute(ctx, &c)
					if err != nil {
						t.Fatalf("%s: mode=%s dop=%d: %v", label, mode, dop, err)
					}
					leg := fmt.Sprintf("mode=%s dop=%d", mode, dop)
					if len(res.Rows) != len(base.Rows) {
						t.Fatalf("%s: %s %d rows, want %d", label, leg, len(res.Rows), len(base.Rows))
					}
					for i := range res.Rows {
						if rowKey(res.Rows[i]) != rowKey(base.Rows[i]) {
							t.Fatalf("%s: %s row %d differs: %v vs %v", label, leg, i, res.Rows[i], base.Rows[i])
						}
					}
					if c != bc {
						t.Fatalf("%s: %s counters diverged:\n got %+v\nwant %+v", label, leg, c, bc)
					}
				}
			}
		}
	}
}

// TestColumnarStaleEncodingFallsBack pins the staleness guard: a table
// that grows after encoding silently serves from the row path instead of
// returning rows the encoding no longer covers.
func TestColumnarStaleEncodingFallsBack(t *testing.T) {
	db, ctx := columnarTestDB(t, 2000, 1)
	encs, err := colstore.BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Encodings = encs
	line := testkit.Table(db, "lineitem")
	if err := line.Append(value.Row{
		value.Int(2000), value.Int(1), value.Date(99), value.Str("tail"), value.Int(1), value.Float(1),
	}); err != nil {
		t.Fatal(err)
	}
	var c cost.Counters
	res, err := (&SeqScan{Table: "lineitem", Mode: ScanLate}).Execute(ctx, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2001 {
		t.Fatalf("stale-encoding scan returned %d rows, want 2001 (row-path fallback)", len(res.Rows))
	}
	if err := encs.Rebuild(db); err != nil {
		t.Fatal(err)
	}
	res, err = (&SeqScan{Table: "lineitem", Mode: ScanLate}).Execute(ctx, &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2001 {
		t.Fatalf("rebuilt-encoding scan returned %d rows, want 2001", len(res.Rows))
	}
}
