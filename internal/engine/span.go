package engine

// Partition-aware scan spans. A scan node carries an optional Partitions
// list (set by the optimizer's pruning pass); the engine resolves it to
// the global row-id intervals of the surviving shards. Because shards
// occupy contiguous, ascending row-id intervals (storage keeps row ids
// partition-major), a pruned scan is just the same scan restricted to a
// sequence of [lo, hi) windows — rows still stream in global row-id
// order, and the first-tuple-in-window page-charge formula stays
// tiling-invariant across any disjoint covering, so serial, materialized,
// and scatter-gather parallel drains all charge byte-identical counters.

import (
	"fmt"

	"robustqo/internal/storage"
)

// rowSpan is a half-open global row-id interval [lo, hi).
type rowSpan struct{ lo, hi int }

// scanSpans resolves a scan's surviving-partition list to row-id spans.
// A nil list means no pruning: one span covering the whole table, which
// reproduces the pre-partitioning behavior exactly. A non-nil list yields
// the listed shards' spans in the given (ascending) order; an empty list
// prunes everything.
func scanSpans(t *storage.Table, parts []int) []rowSpan {
	if parts == nil {
		return []rowSpan{{0, t.NumRows()}}
	}
	spans := make([]rowSpan, 0, len(parts))
	for _, p := range parts {
		lo, hi := t.PartitionSpan(p)
		if lo < hi {
			spans = append(spans, rowSpan{lo, hi})
		}
	}
	return spans
}

// spanMorsels tiles the spans into at-most-MorselSize morsels for the
// scatter-gather Exchange: shard-major (span order), each morsel fully
// inside one shard and offset a multiple of MorselSize from its shard's
// base, so each worker's sub-batch windows coincide with the serial
// pruned scan's windows and the merged counters stay byte-identical.
func spanMorsels(spans []rowSpan) []rowSpan {
	out, _ := spanMorselsShards(spans)
	return out
}

// spanMorselsShards is spanMorsels plus, per morsel, the index of the
// span (shard) it was tiled from — the mapping behind the Exchange's
// per-shard row-skew metric.
func spanMorselsShards(spans []rowSpan) ([]rowSpan, []int) {
	var out []rowSpan
	var shard []int
	for si, s := range spans {
		for lo := s.lo; lo < s.hi; lo += MorselSize {
			out = append(out, rowSpan{lo, min(lo+MorselSize, s.hi)})
			shard = append(shard, si)
		}
	}
	return out, shard
}

// filterRidsToSpans keeps the RIDs inside the surviving shards' spans.
// Index RID lists and span lists are both ascending, so a single linear
// merge filters the list; pruned shards' rows are never fetched, which is
// what keeps their random-page charges at zero.
func filterRidsToSpans(rids []int32, spans []rowSpan) []int32 {
	out := make([]int32, 0, len(rids))
	i := 0
	for _, s := range spans {
		for i < len(rids) && int(rids[i]) < s.lo {
			i++
		}
		for i < len(rids) && int(rids[i]) < s.hi {
			out = append(out, rids[i])
			i++
		}
	}
	return out
}

// pruneRids applies a scan's partition list to an index-produced RID
// list; nil parts passes the list through untouched.
func pruneRids(t *storage.Table, parts []int, rids []int32) []int32 {
	if parts == nil {
		return rids
	}
	return filterRidsToSpans(rids, scanSpans(t, parts))
}

// partsSuffix renders a scan's surviving-partition list for Describe;
// empty for unpruned scans so existing plan strings are unchanged.
func partsSuffix(parts []int) string {
	if parts == nil {
		return ""
	}
	return fmt.Sprintf(", partitions=%v", parts)
}
