package engine

// Encoded scan path: SeqScan over colstore compressed columnar segments.
//
// The encoded path slots in under the row path's window loop — both the
// serial operator and the morsel workers call encScan.window for each
// [next, end) row window instead of loading values through
// storage.Table.Value — and is counter transparent: every window charges
// the exact sequential-page and tuple counters the row path charges,
// including windows inside zone-skipped segments. The saving is
// wall-clock (no decode, no residual evaluation on rows the encoded
// probes eliminate) and resident bytes, never simulated I/O.
//
// Semantics parity is structural. ScanLate evaluates the pushable prefix
// of the filter's conjuncts exactly on encoded data (expr.SplitPushdown
// guarantees exactness), then runs the bound residual on exactly the
// rows the row path's left-to-right And short-circuit would reach with
// the prefix true — same rows, same order, same errors. ScanEager
// decodes every window fully and runs the caller's full bound filter,
// the direct analogue of the row path.

import (
	"robustqo/internal/colstore"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/storage"
)

// ScanMode selects how a SeqScan reads table data.
type ScanMode int

const (
	// ScanRows is the default row-storage path.
	ScanRows ScanMode = iota
	// ScanEager decodes encoded segments fully, then filters — profitable
	// when most rows survive and decode beats per-cell Value calls.
	ScanEager
	// ScanLate probes encoded data first — zone-map segment skipping plus
	// encoded-domain predicate evaluation — and materializes only the
	// surviving rows before the residual filter runs.
	ScanLate
)

func (m ScanMode) String() string {
	switch m {
	case ScanEager:
		return "eager"
	case ScanLate:
		return "late"
	default:
		return "rows"
	}
}

// encScanSpec is the cold, shareable half of an encoded scan: the table
// encoding, compiled probes (immutable, safe across workers), and the
// unbound residual. Built once at Open / openMorsels.
type encScanSpec struct {
	enc    *colstore.TableEncoding
	mode   ScanMode
	probes []colstore.Probe
	// residual is the filter minus the pushed prefix (ScanLate with
	// probes); each consumer binds its own copy.
	residual expr.Expr
	mScanned *obs.Counter
	mSkipped *obs.Counter
}

// prepareEncScan resolves a SeqScan's encoded path, returning nil when
// the scan must stay on the row path: row mode requested, no encodings
// in the context, the table missing from the set, or the encoding stale
// (built at a different row count than the table currently has — the
// silent-fallback staleness guard).
func prepareEncScan(ctx *Context, t *storage.Table, schema expr.RelSchema, s *SeqScan) *encScanSpec {
	if s.Mode == ScanRows || ctx.Encodings == nil {
		return nil
	}
	enc, ok := ctx.Encodings.For(s.Table)
	if !ok || enc.Rows() != t.NumRows() {
		return nil
	}
	spec := &encScanSpec{enc: enc, mode: s.Mode, residual: s.Filter}
	if s.Mode == ScanLate {
		bounds, residual := expr.SplitPushdown(s.Filter, schema)
		probes := make([]colstore.Probe, 0, len(bounds))
		for _, b := range bounds {
			pr, ok := enc.CompileProbe(colstore.Pred{
				Col: b.Col, Lo: b.Lo, Hi: b.Hi,
				StrLo: b.StrLo, StrHi: b.StrHi,
				HasStrLo: b.HasStrLo, HasStrHi: b.HasStrHi,
				IsStr: b.IsStr,
			})
			if !ok {
				// A bound the encoding cannot probe (defensive; SplitPushdown
				// and the encoder agree on kinds): keep the full filter.
				probes = nil
				break
			}
			probes = append(probes, pr)
		}
		if len(probes) > 0 {
			spec.probes, spec.residual = probes, residual
		}
	}
	if ctx.Metrics != nil {
		spec.mScanned = ctx.Metrics.Counter("robustqo_columnar_segments_scanned_total")
		spec.mSkipped = ctx.Metrics.Counter("robustqo_columnar_segments_skipped_total")
	}
	return spec
}

// late reports whether the spec runs the probe + late-materialize path.
func (spec *encScanSpec) late() bool {
	return spec.mode == ScanLate && len(spec.probes) > 0
}

// encScan is one consumer's mutable scan state over a shared spec: the
// bound residual plus selection-vector scratch. One per serial operator
// or per morsel worker — never shared.
type encScan struct {
	spec     *encScanSpec
	residual *expr.Bound
	sel      []int
	sel2     []int
	lastSeg  int
	segSkip  bool
}

// newState binds the residual for one consumer.
func (spec *encScanSpec) newState(schema expr.RelSchema) (*encScan, error) {
	e := &encScan{spec: spec, lastSeg: -1}
	if spec.late() {
		b, err := bindFilter(spec.residual, schema)
		if err != nil {
			return nil, err
		}
		e.residual = b
	}
	return e, nil
}

// window processes one row window [next, end): charges the row path's
// exact page and tuple counters, skips or probes encoded segments,
// materializes survivors into out, and applies the residual (ScanLate)
// or the caller's full bound filter (ScanEager). out holds the surviving
// rows on return.
//
//qo:hotpath
func (e *encScan) window(out *Batch, full *expr.Bound, next, end int, counters *cost.Counters) error {
	spec := e.spec
	enc := spec.enc
	out.Reset()
	// Identical charge arithmetic to the row path's window: pages whose
	// first tuple falls inside [next, end), and one tuple per row — also
	// for windows in zone-skipped segments, which a row scan would read.
	const per = storage.TuplesPerPage
	counters.SeqPages += int64((end+per-1)/per - (next+per-1)/per)
	counters.Tuples += int64(end - next)
	late := spec.late()
	for lo := next; lo < end; {
		si := enc.SegIndex(lo)
		seg := enc.Segment(si)
		stop := end
		if seg.Hi < stop {
			stop = seg.Hi
		}
		if si != e.lastSeg {
			// First window inside this segment: settle the zone-map verdict
			// once and meter the segment exactly once per consumer.
			e.lastSeg = si
			e.segSkip = false
			if late {
				for pi := range spec.probes {
					if spec.probes[pi].SkipSegment(si) {
						e.segSkip = true
						break
					}
				}
			}
			if e.segSkip {
				if spec.mSkipped != nil {
					spec.mSkipped.Inc()
				}
			} else if spec.mScanned != nil {
				spec.mScanned.Inc()
			}
		}
		if e.segSkip {
			lo = stop
			continue
		}
		if late {
			src := identSel(e.sel, stop-lo)
			e.sel = src
			dst := e.sel2
			for pi := range spec.probes {
				dst = spec.probes[pi].FilterWindow(si, lo, src, dst[:0])
				src, dst = dst, src
				if len(src) == 0 {
					break
				}
			}
			e.sel, e.sel2 = src, dst
			if len(src) > 0 {
				for c := range out.cols {
					out.cols[c] = enc.AppendColSel(out.cols[c], c, si, lo, src)
				}
				out.n += len(src)
			}
		} else {
			for c := range out.cols {
				out.cols[c] = enc.AppendColRange(out.cols[c], c, lo, stop)
			}
			out.n += stop - lo
		}
		lo = stop
	}
	if out.n == 0 {
		return nil
	}
	pred := full
	if late {
		pred = e.residual
	}
	e.sel = identSel(e.sel, out.n)
	keep, err := pred.EvalBatch(out.Cols(), e.sel)
	if err != nil {
		return err
	}
	out.Gather(keep)
	return nil
}
