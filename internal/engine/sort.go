package engine

import (
	"fmt"
	"sort"
	"strings"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	Col  expr.ColumnRef
	Desc bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.Col.String() + " DESC"
	}
	return k.Col.String()
}

// Sort materializes and orders its input by the sort keys. Ties preserve
// input order (stable sort).
type Sort struct {
	Input Node
	By    []SortKey
}

// Schema implements Node.
func (s *Sort) Schema(ctx *Context) (expr.RelSchema, error) { return s.Input.Schema(ctx) }

// Describe implements Node.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.By))
	for i, k := range s.By {
		parts[i] = k.String()
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

// Execute implements Node.
func (s *Sort) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(s.By) == 0 {
		return nil, fmt.Errorf("engine: Sort with no keys")
	}
	in, err := s.Input.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(s.By))
	for i, k := range s.By {
		idxs[i], err = in.Schema.Resolve(k.Col)
		if err != nil {
			return nil, fmt.Errorf("engine: Sort key: %v", err)
		}
	}
	// Validate comparability up front so sort.SliceStable cannot panic on
	// mixed types mid-comparison.
	for _, row := range in.Rows {
		for _, idx := range idxs {
			if len(in.Rows) > 0 {
				if _, err := value.Compare(row[idx], in.Rows[0][idx]); err != nil {
					return nil, fmt.Errorf("engine: Sort: %v", err)
				}
			}
		}
	}
	rows := make([]value.Row, len(in.Rows))
	copy(rows, in.Rows)
	counters.SortTuples += int64(len(rows))
	sort.SliceStable(rows, func(a, b int) bool {
		for ki, idx := range idxs {
			// Comparability was validated above, so the error is
			// impossible here (incomparable pairs sort as equal).
			c, _ := value.Compare(rows[a][idx], rows[b][idx])
			if c == 0 {
				continue
			}
			if s.By[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return &Result{Schema: in.Schema, Rows: rows}, nil
}

// Limit passes through at most N input rows.
type Limit struct {
	Input Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema(ctx *Context) (expr.RelSchema, error) { return l.Input.Schema(ctx) }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Execute implements Node.
func (l *Limit) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	if l.N < 0 {
		return nil, fmt.Errorf("engine: negative limit %d", l.N)
	}
	in, err := l.Input.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	rows := in.Rows
	if len(rows) > l.N {
		rows = rows[:l.N]
	}
	return &Result{Schema: in.Schema, Rows: rows}, nil
}
