package engine

import (
	"fmt"
	"sort"
	"strings"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	Col  expr.ColumnRef
	Desc bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.Col.String() + " DESC"
	}
	return k.Col.String()
}

// Sort materializes and orders its input by the sort keys. Ties preserve
// input order (stable sort).
type Sort struct {
	Input Node
	By    []SortKey
	// TopK, when positive, bounds the output to the first TopK rows of the
	// sorted order. The streaming path then keeps a bounded heap instead of
	// materializing the full sorted input; the optimizer sets it when the
	// query carries a LIMIT. Zero means sort everything.
	TopK int
}

// Schema implements Node.
func (s *Sort) Schema(ctx *Context) (expr.RelSchema, error) { return s.Input.Schema(ctx) }

// Describe implements Node.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.By))
	for i, k := range s.By {
		parts[i] = k.String()
	}
	d := "Sort(" + strings.Join(parts, ", ") + ")"
	if s.TopK > 0 {
		d += fmt.Sprintf(" top=%d", s.TopK)
	}
	return d
}

// Execute implements Node.
func (s *Sort) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, s, counters)
}

// Stream implements Node.
func (s *Sort) Stream() Operator { return &sortOp{node: s} }

// sortOp is a pipeline breaker: it drains its input at Open, then emits
// the ordered rows in batches. With TopK set it never holds more than
// TopK rows — a bounded max-heap ordered by (sort keys, input sequence)
// reproduces exactly the first TopK rows of the stable full sort.
type sortOp struct {
	node *Sort
	rows []value.Row
	next int
	out  *Batch
}

// sortKeyed pairs a row with its input sequence number; the sequence
// breaks ties exactly as a stable sort would.
type sortKeyed struct {
	row value.Row
	seq int
}

func (o *sortOp) Open(ctx *Context, counters *cost.Counters) error {
	s := o.node
	if len(s.By) == 0 {
		return fmt.Errorf("engine: Sort with no keys")
	}
	schema, err := s.Input.Schema(ctx)
	if err != nil {
		return err
	}
	idxs := make([]int, len(s.By))
	for i, k := range s.By {
		idxs[i], err = schema.Resolve(k.Col)
		if err != nil {
			return fmt.Errorf("engine: Sort key: %v", err)
		}
	}
	// before reports a strictly preceding b in the output order. All rows
	// are validated comparable against the first row during the drain, so
	// the Compare error is impossible here (incomparable pairs tie).
	before := func(a, b sortKeyed) bool {
		for ki, idx := range idxs {
			c, _ := value.Compare(a.row[idx], b.row[idx])
			if c == 0 {
				continue
			}
			if s.By[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return a.seq < b.seq
	}

	input := s.Input.Stream()
	defer input.Close()
	if err := input.Open(ctx, counters); err != nil {
		return err
	}
	var (
		first value.Row
		heap  []sortKeyed // max-heap: root is the worst retained row
		all   []sortKeyed
		total int64
	)
	seq := 0
	for {
		b, err := input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for r := 0; r < b.Len(); r++ {
			row := b.CloneRow(r)
			if first == nil {
				first = row
			}
			// Validate comparability so ordering cannot silently misfire on
			// mixed types (matching the materialized path's up-front check).
			for _, idx := range idxs {
				if _, err := value.Compare(row[idx], first[idx]); err != nil {
					return fmt.Errorf("engine: Sort: %v", err)
				}
			}
			total++
			item := sortKeyed{row: row, seq: seq}
			seq++
			if s.TopK <= 0 {
				all = append(all, item)
				continue
			}
			if len(heap) < s.TopK {
				heap = append(heap, item)
				siftUp(heap, len(heap)-1, before)
			} else if before(item, heap[0]) {
				heap[0] = item
				siftDown(heap, 0, before)
			}
		}
	}
	// Every input row participated in the ordering work, bounded heap or
	// not, so the sort charge matches the materialized path exactly.
	counters.SortTuples += total
	items := all
	if s.TopK > 0 {
		items = heap
	}
	sort.Slice(items, func(a, b int) bool { return before(items[a], items[b]) })
	o.rows = make([]value.Row, len(items))
	for i, it := range items {
		o.rows[i] = it.row
	}
	o.out = getBatch(schema)
	return nil
}

// siftUp restores the max-heap property after appending at position i:
// a parent must not precede its children under before.
func siftUp(h []sortKeyed, i int, before func(a, b sortKeyed) bool) {
	for i > 0 {
		parent := (i - 1) / 2
		if !before(h[parent], h[i]) {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the max-heap property after replacing the root.
func siftDown(h []sortKeyed, i int, before func(a, b sortKeyed) bool) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && before(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && before(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

func (o *sortOp) Next() (*Batch, error) {
	if o.next >= len(o.rows) {
		return nil, nil
	}
	end := o.next + BatchSize
	if end > len(o.rows) {
		end = len(o.rows)
	}
	o.out.Reset()
	for _, r := range o.rows[o.next:end] {
		o.out.AppendRow(r)
	}
	o.next = end
	return o.out, nil
}

func (o *sortOp) Close() {
	putBatch(o.out)
	o.out = nil
}

// Limit passes through at most N input rows. In the streaming pipeline it
// stops pulling its input as soon as N rows have been emitted, which is
// what spares a LIMIT 10 over a large scan from reading the whole table.
type Limit struct {
	Input Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema(ctx *Context) (expr.RelSchema, error) { return l.Input.Schema(ctx) }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Execute implements Node.
func (l *Limit) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, l, counters)
}

// Stream implements Node.
func (l *Limit) Stream() Operator { return &limitOp{node: l} }

type limitOp struct {
	node    *Limit
	input   Operator
	emitted int
}

func (o *limitOp) Open(ctx *Context, counters *cost.Counters) error {
	if o.node.N < 0 {
		return fmt.Errorf("engine: negative limit %d", o.node.N)
	}
	o.input = o.node.Input.Stream()
	return o.input.Open(ctx, counters)
}

func (o *limitOp) Next() (*Batch, error) {
	if o.emitted >= o.node.N {
		return nil, nil
	}
	b, err := o.input.Next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	b.Truncate(o.node.N - o.emitted)
	o.emitted += b.Len()
	return b, nil
}

func (o *limitOp) Close() {
	if o.input != nil {
		o.input.Close()
	}
}
