package engine

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// TestExchangeDifferentialDOPProperty extends the streaming/materialized
// differential corpus to parallel execution: the same random SPJ plans,
// with every base scan wrapped in an Exchange, run at DOP 1, 2, and 4 and
// must produce identical rows in identical order AND byte-identical
// cost.Counters versus both the serial streaming plan and the
// materialized reference. The fixture is sized so scans span several
// morsels and genuinely fan out. Run with -race, this is also the data
// race proof for the worker pool.
func TestExchangeDifferentialDOPProperty(t *testing.T) {
	_, ctx := testDB(t, 3000, 3, 10)
	rng := stats.NewRNG(9001)
	okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
	lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
	for trial := 0; trial < 40; trial++ {
		sLo := int64(testkit.Intn(rng, 110)) - 5
		sHi := sLo + int64(testkit.Intn(rng, 70))
		cut := rng.Float64() * 1000
		linePred := expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)}
		orderPred := expr.Cmp{Op: expr.LT, L: expr.TC("orders", "o_total"), R: expr.FloatLit(cut)}

		// Same plan shapes as TestStreamMaterializedSPJProperty, built
		// twice: once serial, once with each scan behind an Exchange.
		build := func(dop int) Node {
			wrap := func(n Node) Node {
				if dop == 0 {
					return n
				}
				return &Exchange{Source: n, DOP: dop}
			}
			var lineScan Node
			switch trial % 3 {
			case 0:
				lineScan = &SeqScan{Table: "lineitem", Filter: linePred}
			case 1:
				lineScan = &IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_ship", Lo: sLo, Hi: sHi}}
			default:
				lineScan = &IndexIntersect{Table: "lineitem",
					Ranges: []KeyRange{{Column: "l_ship", Lo: sLo, Hi: sHi}}}
			}
			lineScan = wrap(lineScan)
			ordersScan := wrap(&SeqScan{Table: "orders", Filter: orderPred})
			var join Node
			switch (trial / 3) % 3 {
			case 0:
				join = &HashJoin{Build: ordersScan, Probe: lineScan, BuildCol: okey, ProbeCol: lkey}
			case 1:
				join = &MergeJoin{Left: ordersScan, Right: lineScan, LeftCol: okey, RightCol: lkey}
			default:
				join = &INLJoin{Outer: lineScan, OuterCol: lkey,
					InnerTable: "orders", InnerCol: "o_orderkey", Residual: orderPred}
			}
			plan := join
			if trial%2 == 0 {
				plan = &Project{Input: plan, Cols: []expr.ColumnRef{
					{Table: "lineitem", Column: "l_id"},
					{Table: "orders", Column: "o_total"},
					{Table: "lineitem", Column: "l_price"},
				}}
			}
			if (trial/2)%2 == 0 {
				plan = &Sort{Input: plan, By: []SortKey{
					{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}}}}
			}
			return plan
		}

		serial := build(0)
		label := fmt.Sprintf("trial %d ship[%d,%d] cut %.1f plan %s", trial, sLo, sHi, cut, serial.Describe())
		var sc cost.Counters
		sres, err := serial.Execute(ctx, &sc)
		if err != nil {
			t.Fatalf("%s: serial: %v", label, err)
		}
		var mc cost.Counters
		mres, err := ExecuteMaterialized(ctx, build(4), &mc)
		if err != nil {
			t.Fatalf("%s: materialized: %v", label, err)
		}
		compare := func(res *Result, c cost.Counters, leg string) {
			t.Helper()
			if len(res.Rows) != len(sres.Rows) {
				t.Fatalf("%s: %s %d rows, serial %d", label, leg, len(res.Rows), len(sres.Rows))
			}
			for i := range res.Rows {
				if rowKey(res.Rows[i]) != rowKey(sres.Rows[i]) {
					t.Fatalf("%s: %s row %d differs: %v vs %v", label, leg, i, res.Rows[i], sres.Rows[i])
				}
			}
			if c != sc {
				t.Fatalf("%s: %s counters diverged:\n%s %+v\nserial %+v", label, leg, leg, c, sc)
			}
		}
		compare(mres, mc, "materialized")
		for _, dop := range []int{1, 2, 4} {
			var pc cost.Counters
			pres, err := build(dop).Execute(ctx, &pc)
			if err != nil {
				t.Fatalf("%s: dop=%d: %v", label, dop, err)
			}
			compare(pres, pc, fmt.Sprintf("dop=%d", dop))
		}
	}
}

// TestExchangeSerialFallback pins the degradation contract: DOP < 2, or a
// source that cannot be morselized, runs as a pure pass-through with the
// source's own serial operator.
func TestExchangeSerialFallback(t *testing.T) {
	_, ctx := testDB(t, 300, 3, 10)
	pred := expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(5), Hi: expr.IntLit(60)}
	serial := &SeqScan{Table: "lineitem", Filter: pred}
	var sc cost.Counters
	sres, err := serial.Execute(ctx, &sc)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Node{
		&Exchange{Source: &SeqScan{Table: "lineitem", Filter: pred}, DOP: 1},
		&Exchange{Source: &SeqScan{Table: "lineitem", Filter: pred}, DOP: 0},
		// Filter is not a morselSource, so this must fall back even at DOP 4.
		&Exchange{Source: &Filter{Input: &SeqScan{Table: "lineitem"}, Pred: pred}, DOP: 4},
	}
	for i, n := range cases[:2] {
		var c cost.Counters
		res, err := n.Execute(ctx, &c)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(res.Rows) != len(sres.Rows) || c != sc {
			t.Fatalf("case %d: rows %d vs %d, counters %+v vs %+v", i, len(res.Rows), len(sres.Rows), c, sc)
		}
	}
	var c cost.Counters
	res, err := cases[2].Execute(ctx, &c)
	if err != nil {
		t.Fatal(err)
	}
	sameRowMultiset(t, res.Rows, sres.Rows, "filter fallback")
}

// TestExchangeEarlyClose pins that a LIMIT above an Exchange — the
// pipeline stopping before the source is drained — shuts the worker pool
// down without leaking goroutines or deadlocking, and still returns the
// serial prefix of the output.
func TestExchangeEarlyClose(t *testing.T) {
	_, ctx := testDB(t, 3000, 3, 10)
	serial := &Limit{Input: &SeqScan{Table: "lineitem"}, N: 7}
	var sc cost.Counters
	sres, err := serial.Execute(ctx, &sc)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		plan := &Limit{Input: &Exchange{Source: &SeqScan{Table: "lineitem"}, DOP: 4}, N: 7}
		var pc cost.Counters
		pres, err := plan.Execute(ctx, &pc)
		if err != nil {
			t.Fatal(err)
		}
		if len(pres.Rows) != len(sres.Rows) {
			t.Fatalf("iter %d: %d rows, want %d", i, len(pres.Rows), len(sres.Rows))
		}
		for r := range pres.Rows {
			if rowKey(pres.Rows[r]) != rowKey(sres.Rows[r]) {
				t.Fatalf("iter %d: row %d differs", i, r)
			}
		}
	}
	// All pools were shut down at Close; allow the runtime a moment to
	// retire the exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestBatchPoolReuse pins the sync.Pool plumbing: a batch released with
// putBatch comes back from getBatch with its column capacity intact and
// its contents cleared.
func TestBatchPoolReuse(t *testing.T) {
	_, ctx := testDB(t, 50, 2, 5)
	schema, err := (&SeqScan{Table: "lineitem"}).Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b := getBatch(schema)
	if b.Len() != 0 || len(b.Cols()) != len(schema.Fields) {
		t.Fatalf("fresh batch: len=%d cols=%d", b.Len(), len(b.Cols()))
	}
	row := make(value.Row, len(schema.Fields))
	for i := 0; i < 10; i++ {
		b.AppendRow(row)
	}
	putBatch(b)
	b2 := getBatch(schema)
	if b2.Len() != 0 {
		t.Fatalf("pooled batch not cleared: len=%d", b2.Len())
	}
	if cap(b2.Cols()[0]) < BatchSize {
		t.Fatalf("pooled batch lost capacity: %d", cap(b2.Cols()[0]))
	}
	putBatch(b2)
	putBatch(nil) // must be a no-op
}
