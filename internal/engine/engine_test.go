package engine

import (
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// testDB builds a small orders(1:N)lineitem schema plus a part dimension:
//
//	part(p_partkey PK, p_size)
//	orders(o_orderkey PK, o_total)
//	lineitem(l_id PK, l_orderkey FK->orders, l_partkey FK->part,
//	         l_ship DATE indexed, l_receipt DATE indexed, l_price FLOAT)
func testDB(t testing.TB, nOrders, linesPerOrder, nParts int) (*storage.Database, *Context) {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	part, err := db.CreateTable(&catalog.TableSchema{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: catalog.Int},
			{Name: "p_size", Type: catalog.Int},
		},
		PrimaryKey: "p_partkey",
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int},
			{Name: "o_total", Type: catalog.Float},
		},
		PrimaryKey: "o_orderkey",
	})
	if err != nil {
		t.Fatal(err)
	}
	lineitem, err := db.CreateTable(&catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_orderkey", Type: catalog.Int},
			{Name: "l_partkey", Type: catalog.Int},
			{Name: "l_ship", Type: catalog.Date},
			{Name: "l_receipt", Type: catalog.Date},
			{Name: "l_price", Type: catalog.Float},
		},
		PrimaryKey: "l_id",
		Foreign: []catalog.ForeignKey{
			{Column: "l_orderkey", RefTable: "orders"},
			{Column: "l_partkey", RefTable: "part"},
		},
		Indexes: []catalog.Index{
			{Name: "ix_ship", Column: "l_ship", Kind: catalog.NonClustered},
			{Name: "ix_receipt", Column: "l_receipt", Kind: catalog.NonClustered},
			{Name: "ix_partkey", Column: "l_partkey", Kind: catalog.NonClustered},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(123)
	for p := 0; p < nParts; p++ {
		if err := part.Append(value.Row{value.Int(int64(p)), value.Int(int64(testkit.Intn(rng, 50)))}); err != nil {
			t.Fatal(err)
		}
	}
	id := int64(0)
	for o := 0; o < nOrders; o++ {
		if err := orders.Append(value.Row{value.Int(int64(o)), value.Float(rng.Float64() * 1000)}); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < linesPerOrder; l++ {
			ship := int64(testkit.Intn(rng, 100))
			receipt := ship + int64(testkit.Intn(rng, 10))
			row := value.Row{
				value.Int(id),
				value.Int(int64(o)),
				value.Int(int64(testkit.Intn(rng, nParts))),
				value.Date(ship),
				value.Date(receipt),
				value.Float(float64(testkit.Intn(rng, 10000)) / 100),
			}
			if err := lineitem.Append(row); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

// naiveSelect evaluates a filter over a full table without the engine, as
// the ground truth for operator tests.
func naiveSelect(t *testing.T, db *storage.Database, table string, pred expr.Expr) []value.Row {
	t.Helper()
	tab := testkit.Table(db, table)
	schema := expr.SchemaForTable(tab.Schema())
	b, err := expr.Bind(pred, schema)
	if err != nil {
		t.Fatal(err)
	}
	var out []value.Row
	for r := 0; r < tab.NumRows(); r++ {
		row := tab.Row(r)
		ok, err := b.Eval(row)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

func rowKey(r value.Row) string {
	var sb strings.Builder
	for _, v := range r {
		sb.WriteString(v.String())
		sb.WriteByte('|')
	}
	return sb.String()
}

func sameRowMultiset(t *testing.T, got, want []value.Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	counts := make(map[string]int)
	for _, r := range want {
		counts[rowKey(r)]++
	}
	for _, r := range got {
		counts[rowKey(r)]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("%s: row multiset mismatch at %q (delta %d)", label, k, c)
		}
	}
}

func TestSeqScanMatchesNaive(t *testing.T) {
	db, ctx := testDB(t, 50, 4, 20)
	pred := testkit.Expr("l_ship BETWEEN 10 AND 30 AND l_receipt <= l_ship + 3")
	res, counters, secs, err := Run(ctx, &SeqScan{Table: "lineitem", Filter: pred})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSelect(t, db, "lineitem", pred)
	sameRowMultiset(t, res.Rows, want, "seqscan")
	lt := testkit.Table(db, "lineitem")
	if counters.SeqPages != int64(lt.NumPages()) {
		t.Errorf("SeqPages = %d, want %d", counters.SeqPages, lt.NumPages())
	}
	if counters.RandPages != 0 {
		t.Errorf("SeqScan incurred %d random pages", counters.RandPages)
	}
	if secs <= 0 {
		t.Errorf("time = %g", secs)
	}
}

func TestSeqScanNilFilterReturnsAll(t *testing.T) {
	db, ctx := testDB(t, 10, 2, 5)
	res, _, _, err := Run(ctx, &SeqScan{Table: "orders"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != testkit.Table(db, "orders").NumRows() {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestSeqScanErrors(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	if _, _, _, err := Run(ctx, &SeqScan{Table: "ghost"}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, _, _, err := Run(ctx, &SeqScan{Table: "orders", Filter: testkit.Expr("nope = 1")}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestIndexRangeScanMatchesNaive(t *testing.T) {
	db, ctx := testDB(t, 60, 3, 10)
	node := &IndexRangeScan{
		Table:    "lineitem",
		Range:    KeyRange{Column: "l_ship", Lo: 20, Hi: 40},
		Residual: testkit.Expr("l_price > 20"),
	}
	res, counters, _, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSelect(t, db, "lineitem", testkit.Expr("l_ship BETWEEN 20 AND 40 AND l_price > 20"))
	sameRowMultiset(t, res.Rows, want, "indexrange")
	if counters.IndexSeeks != 1 {
		t.Errorf("IndexSeeks = %d", counters.IndexSeeks)
	}
	// One random page per index match (before the residual).
	matches := naiveSelect(t, db, "lineitem", testkit.Expr("l_ship BETWEEN 20 AND 40"))
	if counters.RandPages != int64(len(matches)) {
		t.Errorf("RandPages = %d, want %d", counters.RandPages, len(matches))
	}
	if counters.SeqPages != 0 {
		t.Errorf("SeqPages = %d", counters.SeqPages)
	}
}

func TestIndexIntersectMatchesNaive(t *testing.T) {
	db, ctx := testDB(t, 80, 3, 10)
	node := &IndexIntersect{
		Table: "lineitem",
		Ranges: []KeyRange{
			{Column: "l_ship", Lo: 10, Hi: 50},
			{Column: "l_receipt", Lo: 15, Hi: 55},
		},
	}
	res, counters, _, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSelect(t, db, "lineitem",
		testkit.Expr("l_ship BETWEEN 10 AND 50 AND l_receipt BETWEEN 15 AND 55"))
	sameRowMultiset(t, res.Rows, want, "intersect")
	if counters.IndexSeeks != 2 {
		t.Errorf("IndexSeeks = %d", counters.IndexSeeks)
	}
	// Random fetches only for the intersection, not the union.
	if counters.RandPages != int64(len(want)) {
		t.Errorf("RandPages = %d, want %d", counters.RandPages, len(want))
	}
}

func TestIndexIntersectRiskProfile(t *testing.T) {
	// The defining property from Section 2.1: at low selectivity the
	// intersection plan is much cheaper than the scan; at high selectivity
	// it is much more expensive. The table must be large enough that a
	// full scan costs well above the fixed index-seek overhead.
	_, ctx := testDB(t, 4000, 5, 10)
	scan := func(lo, hi int64) float64 {
		pred := expr.Conj(
			expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(lo), Hi: expr.IntLit(hi)},
			expr.Between{E: expr.C("l_receipt"), Lo: expr.IntLit(lo), Hi: expr.IntLit(hi)},
		)
		_, _, secs, err := Run(ctx, &SeqScan{Table: "lineitem", Filter: pred})
		if err != nil {
			t.Fatal(err)
		}
		return secs
	}
	ix := func(lo, hi int64) float64 {
		node := &IndexIntersect{Table: "lineitem", Ranges: []KeyRange{
			{Column: "l_ship", Lo: lo, Hi: hi},
			{Column: "l_receipt", Lo: lo, Hi: hi},
		}}
		_, _, secs, err := Run(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		return secs
	}
	// Empty range: index plan should beat the scan.
	if ix(1000, 1001) >= scan(1000, 1001) {
		t.Error("index intersection not cheaper at zero selectivity")
	}
	// Full range: scan should beat the index plan.
	if ix(0, 200) <= scan(0, 200) {
		t.Error("index intersection not more expensive at full selectivity")
	}
}

func TestIndexScanErrors(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	if _, _, _, err := Run(ctx, &IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_price", Lo: 0, Hi: 1}}); err == nil {
		t.Error("unindexed column accepted")
	}
	if _, _, _, err := Run(ctx, &IndexIntersect{Table: "lineitem"}); err == nil {
		t.Error("empty ranges accepted")
	}
	if _, _, _, err := Run(ctx, &IndexIntersect{Table: "ghost", Ranges: []KeyRange{{Column: "x"}}}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestHashJoinMatchesNaive(t *testing.T) {
	db, ctx := testDB(t, 40, 3, 10)
	join := &HashJoin{
		Build:    &SeqScan{Table: "orders"},
		Probe:    &SeqScan{Table: "lineitem"},
		BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	}
	res, counters, _, err := Run(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	// Every lineitem matches exactly one order.
	if want := testkit.Table(db, "lineitem").NumRows(); len(res.Rows) != want {
		t.Errorf("join rows = %d, want %d", len(res.Rows), want)
	}
	if counters.HashBuilds != int64(testkit.Table(db, "orders").NumRows()) {
		t.Errorf("HashBuilds = %d", counters.HashBuilds)
	}
	if counters.HashProbes != int64(testkit.Table(db, "lineitem").NumRows()) {
		t.Errorf("HashProbes = %d", counters.HashProbes)
	}
	// Verify key equality holds on every output row.
	schema, _ := join.Schema(ctx)
	okIdx, _ := schema.Resolve(expr.ColumnRef{Table: "orders", Column: "o_orderkey"})
	lkIdx, _ := schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"})
	for _, r := range res.Rows {
		if r[okIdx].I != r[lkIdx].I {
			t.Fatal("join produced mismatched keys")
		}
	}
}

func TestMergeJoinAgreesWithHashJoin(t *testing.T) {
	_, ctx := testDB(t, 30, 4, 10)
	hj := &HashJoin{
		Build:    &SeqScan{Table: "orders"},
		Probe:    &SeqScan{Table: "lineitem"},
		BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	}
	mj := &MergeJoin{
		Left:        &SeqScan{Table: "orders"},
		Right:       &SeqScan{Table: "lineitem"},
		LeftCol:     expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		RightCol:    expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		LeftSorted:  true,
		RightSorted: true,
	}
	hres, _, _, err := Run(ctx, hj)
	if err != nil {
		t.Fatal(err)
	}
	mres, mcounters, _, err := Run(ctx, mj)
	if err != nil {
		t.Fatal(err)
	}
	sameRowMultiset(t, mres.Rows, hres.Rows, "merge-vs-hash")
	if mcounters.SortTuples != 0 {
		t.Errorf("sorted merge join charged %d sort tuples", mcounters.SortTuples)
	}
}

func TestMergeJoinChargesSortWhenUnsorted(t *testing.T) {
	_, ctx := testDB(t, 10, 2, 5)
	mj := &MergeJoin{
		Left:     &SeqScan{Table: "orders"},
		Right:    &SeqScan{Table: "lineitem"},
		LeftCol:  expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		RightCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	}
	_, counters, _, err := Run(ctx, mj)
	if err != nil {
		t.Fatal(err)
	}
	if counters.SortTuples == 0 {
		t.Error("unsorted merge join charged no sort")
	}
}

func TestINLJoinViaPKAndViaSecondaryIndex(t *testing.T) {
	_, ctx := testDB(t, 30, 3, 12)
	// Outer lineitem probing orders PK.
	viaPK := &INLJoin{
		Outer:      &SeqScan{Table: "lineitem", Filter: testkit.Expr("l_ship < 20")},
		OuterCol:   expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		InnerTable: "orders",
		InnerCol:   "o_orderkey",
	}
	resPK, cntPK, _, err := Run(ctx, viaPK)
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent hash join.
	hj := &HashJoin{
		Build:    &SeqScan{Table: "lineitem", Filter: testkit.Expr("l_ship < 20")},
		Probe:    &SeqScan{Table: "orders"},
		BuildCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
	}
	resHJ, _, _, err := Run(ctx, hj)
	if err != nil {
		t.Fatal(err)
	}
	sameRowMultiset(t, resPK.Rows, resHJ.Rows, "inl-pk-vs-hash")
	if cntPK.RandPages == 0 {
		t.Error("PK probes charged no random pages")
	}

	// Outer part probing lineitem's secondary FK index.
	viaIx := &INLJoin{
		Outer:      &SeqScan{Table: "part", Filter: testkit.Expr("p_size < 10")},
		OuterCol:   expr.ColumnRef{Table: "part", Column: "p_partkey"},
		InnerTable: "lineitem",
		InnerCol:   "l_partkey",
	}
	resIx, cntIx, _, err := Run(ctx, viaIx)
	if err != nil {
		t.Fatal(err)
	}
	hj2 := &HashJoin{
		Build:    &SeqScan{Table: "part", Filter: testkit.Expr("p_size < 10")},
		Probe:    &SeqScan{Table: "lineitem"},
		BuildCol: expr.ColumnRef{Table: "part", Column: "p_partkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_partkey"},
	}
	resHJ2, _, _, err := Run(ctx, hj2)
	if err != nil {
		t.Fatal(err)
	}
	sameRowMultiset(t, resIx.Rows, resHJ2.Rows, "inl-ix-vs-hash")
	if cntIx.IndexSeeks == 0 || cntIx.RandPages == 0 {
		t.Errorf("secondary-index probes: %+v", cntIx)
	}
}

func TestINLJoinResidual(t *testing.T) {
	_, ctx := testDB(t, 20, 2, 8)
	join := &INLJoin{
		Outer:      &SeqScan{Table: "lineitem"},
		OuterCol:   expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		InnerTable: "orders",
		InnerCol:   "o_orderkey",
		Residual:   testkit.Expr("o_total > 500"),
	}
	res, _, _, err := Run(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := join.Schema(ctx)
	totIdx, _ := schema.Resolve(expr.ColumnRef{Table: "orders", Column: "o_total"})
	for _, r := range res.Rows {
		if r[totIdx].F <= 500 {
			t.Fatal("residual not applied")
		}
	}
}

func TestFilterProjectAggregate(t *testing.T) {
	db, ctx := testDB(t, 25, 4, 10)
	plan := &Aggregate{
		Input: &Project{
			Input: &Filter{
				Input: &SeqScan{Table: "lineitem"},
				Pred:  testkit.Expr("l_ship < 50"),
			},
			Cols: []expr.ColumnRef{
				{Table: "lineitem", Column: "l_partkey"},
				{Table: "lineitem", Column: "l_price"},
			},
		},
		GroupBy: []expr.ColumnRef{{Column: "l_partkey"}},
		Aggs: []AggSpec{
			{Func: Sum, Arg: expr.C("l_price"), As: "total"},
			{Func: Count, As: "cnt"},
			{Func: Min, Arg: expr.C("l_price"), As: "lo"},
			{Func: Max, Arg: expr.C("l_price"), As: "hi"},
			{Func: Avg, Arg: expr.C("l_price"), As: "avg"},
		},
	}
	res, _, _, err := Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check totals against a naive pass.
	want := make(map[int64]struct {
		sum float64
		n   int64
		lo  float64
		hi  float64
	})
	for _, r := range naiveSelect(t, db, "lineitem", testkit.Expr("l_ship < 50")) {
		pk, price := r[2].I, r[5].F
		e := want[pk]
		if e.n == 0 {
			e.lo, e.hi = price, price
		} else {
			if price < e.lo {
				e.lo = price
			}
			if price > e.hi {
				e.hi = price
			}
		}
		e.sum += price
		e.n++
		want[pk] = e
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		e, ok := want[r[0].I]
		if !ok {
			t.Fatalf("unexpected group %v", r[0])
		}
		if !almostEq(r[1].F, e.sum) || r[2].I != e.n || !almostEq(r[3].F, e.lo) ||
			!almostEq(r[4].F, e.hi) || !almostEq(r[5].F, e.sum/float64(e.n)) {
			t.Fatalf("group %v = %v, want %+v", r[0], r, e)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	plan := &Aggregate{
		Input: &SeqScan{Table: "orders", Filter: testkit.Expr("o_total < -1")},
		Aggs: []AggSpec{
			{Func: Count, As: "n"},
			{Func: Sum, Arg: expr.C("o_total"), As: "s"},
		},
	}
	res, _, _, err := Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || res.Rows[0][1].F != 0 {
		t.Errorf("empty aggregate = %v", res.Rows)
	}
}

func TestAggregateErrors(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	if _, _, _, err := Run(ctx, &Aggregate{Input: &SeqScan{Table: "orders"}}); err == nil {
		t.Error("no aggs and no groups accepted")
	}
	if _, _, _, err := Run(ctx, &Aggregate{
		Input: &SeqScan{Table: "orders"},
		Aggs:  []AggSpec{{Func: Sum}},
	}); err == nil {
		t.Error("SUM without argument accepted")
	}
}

func TestStarSemiJoinAgreesWithHashCascade(t *testing.T) {
	// Reuse lineitem as a small "fact" with part as one dimension and
	// orders as another.
	_, ctx := testDB(t, 50, 4, 10)
	star := &StarSemiJoin{
		Fact: "lineitem",
		Dims: []StarDim{
			{
				Scan:   &SeqScan{Table: "part", Filter: testkit.Expr("p_size < 25")},
				DimPK:  expr.ColumnRef{Table: "part", Column: "p_partkey"},
				FactFK: "l_partkey",
			},
		},
	}
	resStar, cnt, _, err := Run(ctx, star)
	if err != nil {
		t.Fatal(err)
	}
	hj := &HashJoin{
		Build:    &SeqScan{Table: "lineitem"},
		Probe:    &SeqScan{Table: "part", Filter: testkit.Expr("p_size < 25")},
		BuildCol: expr.ColumnRef{Table: "lineitem", Column: "l_partkey"},
		ProbeCol: expr.ColumnRef{Table: "part", Column: "p_partkey"},
	}
	resHJ, _, _, err := Run(ctx, hj)
	if err != nil {
		t.Fatal(err)
	}
	sameRowMultiset(t, resStar.Rows, resHJ.Rows, "star-vs-hash")
	if cnt.IndexSeeks == 0 {
		t.Error("star semijoin used no index seeks")
	}
}

func TestStarSemiJoinErrors(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	if _, _, _, err := Run(ctx, &StarSemiJoin{Fact: "lineitem"}); err == nil {
		t.Error("no dims accepted")
	}
	bad := &StarSemiJoin{
		Fact: "lineitem",
		Dims: []StarDim{{
			Scan:   &SeqScan{Table: "orders"},
			DimPK:  expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
			FactFK: "l_ship", // indexed but not an FK — join-back will drop rows
		}},
	}
	// Mis-declared FK is not an execution error per se, but an unknown
	// fact column is.
	bad2 := &StarSemiJoin{
		Fact: "lineitem",
		Dims: []StarDim{{
			Scan:   &SeqScan{Table: "orders"},
			DimPK:  expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
			FactFK: "nope",
		}},
	}
	if _, _, _, err := Run(ctx, bad2); err == nil {
		t.Error("unknown fact FK accepted")
	}
	_ = bad
}

func TestExplainRendersTree(t *testing.T) {
	plan := &Aggregate{
		Input: &HashJoin{
			Build:    &SeqScan{Table: "orders"},
			Probe:    &SeqScan{Table: "lineitem", Filter: testkit.Expr("l_ship < 10")},
			BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
			ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		},
		Aggs: []AggSpec{{Func: Count, As: "n"}},
	}
	s := Explain(plan)
	for _, want := range []string{"Aggregate", "HashJoin", "SeqScan(orders)", "SeqScan(lineitem"} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "\n  HashJoin") || !strings.Contains(s, "\n    SeqScan(orders)") {
		t.Errorf("Explain indentation wrong:\n%s", s)
	}
}

func TestRunChargesOutput(t *testing.T) {
	db, ctx := testDB(t, 10, 2, 5)
	_, counters, _, err := Run(ctx, &SeqScan{Table: "lineitem"})
	if err != nil {
		t.Fatal(err)
	}
	if counters.Output != int64(testkit.Table(db, "lineitem").NumRows()) {
		t.Errorf("Output = %d", counters.Output)
	}
}

func TestCountersAddAndModelTime(t *testing.T) {
	var a cost.Counters
	a.Add(cost.Counters{SeqPages: 1, RandPages: 2, Tuples: 3, IndexSeeks: 4,
		IndexEntries: 5, HashBuilds: 6, HashProbes: 7, SortTuples: 8, Output: 9})
	a.Add(cost.Counters{SeqPages: 1})
	if a.SeqPages != 2 || a.Output != 9 {
		t.Errorf("Add = %+v", a)
	}
	m := cost.Model{SeqPage: 1, RandPage: 10, Tuple: 100, IndexSeek: 1000,
		IndexEntry: 1e4, HashBuild: 1e5, HashProbe: 1e6, SortTuple: 1e7, Output: 1e8}
	want := 2.0 + 2*10 + 3*100 + 4*1000 + 5*1e4 + 6*1e5 + 7*1e6 + 8*1e7 + 9*1e8
	if got := m.Time(a); got != want {
		t.Errorf("Time = %g, want %g", got, want)
	}
	if s := a.String(); !strings.Contains(s, "seq=2") {
		t.Errorf("String = %q", s)
	}
}
