// Package engine implements the physical query execution layer: scans,
// index intersection, joins (indexed nested-loop, hash, merge), the
// semijoin-based star strategy, filters, projections, and aggregation.
//
// Operators execute for real over the in-memory tables — producing exact
// result rows — while recording the page- and tuple-level work they
// perform in cost.Counters. The simulated execution time of a query is the
// cost model applied to those counters; see package cost for how this
// substitutes for the paper's wall-clock measurements.
//
// Execution is a pull-based Open/Next/Close pipeline over column-oriented
// Batches (see Operator in batch.go): streaming operators charge work only
// as batches are actually pulled, so a LIMIT terminates its inputs early,
// while pipeline breakers (sort, aggregation, hash build, merge join, star
// dimension arms) consume their blocking inputs at Open. Node.Execute is a
// thin drain-to-Result wrapper kept for callers that want the whole output
// at once; ExecuteMaterialized in materialize.go preserves the original
// row-at-a-time engine as an equivalence reference.
package engine

import (
	"fmt"

	"robustqo/internal/colstore"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/index"
	"robustqo/internal/obs"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// Context carries the runtime environment plans execute against.
type Context struct {
	DB      *storage.Database
	Indexes *index.Set
	Model   cost.Model
	// Metrics, when non-nil, receives engine-level operational counters
	// (robustqo_hashjoin_* build pre-sizing outcomes, robustqo_columnar_*
	// segment skipping). Nil disables metering; it never affects results
	// or cost.Counters.
	Metrics *obs.Registry
	// Encodings, when non-nil, holds compressed columnar segment
	// encodings that SeqScans with Mode != ScanRows read instead of row
	// storage. Scans fall back to the row path silently when a table's
	// encoding is absent or stale.
	Encodings *colstore.Set
}

// NewContext builds a Context with the default cost model, constructing
// all catalog-declared indexes.
func NewContext(db *storage.Database) (*Context, error) {
	ixs, err := index.BuildAll(db)
	if err != nil {
		return nil, err
	}
	return &Context{DB: db, Indexes: ixs, Model: cost.Default}, nil
}

// Result is a fully materialized operator output.
type Result struct {
	Schema expr.RelSchema
	Rows   []value.Row
}

// Node is a physical plan operator.
type Node interface {
	// Schema returns the output schema without executing.
	Schema(ctx *Context) (expr.RelSchema, error)
	// Execute runs the operator to completion, accumulating work into
	// counters. It is a convenience wrapper that drains Stream into a
	// materialized Result.
	Execute(ctx *Context, counters *cost.Counters) (*Result, error)
	// Stream returns a fresh streaming iterator over the operator's
	// output; see Operator for the Open/Next/Close contract. Each call
	// returns an independent, unopened instance.
	Stream() Operator
	// Describe renders a one-line description for plan printing.
	Describe() string
}

// Run executes a plan root, charging output cost for the final result, and
// returns the result together with the counters and the simulated time.
func Run(ctx *Context, root Node) (*Result, cost.Counters, float64, error) {
	var counters cost.Counters
	res, err := root.Execute(ctx, &counters)
	if err != nil {
		return nil, counters, 0, err
	}
	counters.Output += int64(len(res.Rows))
	return res, counters, ctx.Model.Time(counters), nil
}

// Explain renders a plan tree as an indented multi-line string.
func Explain(root Node) string {
	var b []byte
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, n.Describe()...)
		b = append(b, '\n')
		for _, child := range children(n) {
			walk(child, depth+1)
		}
	}
	walk(root, 0)
	return string(b)
}

func children(n Node) []Node {
	switch t := n.(type) {
	case *Filter:
		return []Node{t.Input}
	case *Project:
		return []Node{t.Input}
	case *Aggregate:
		return []Node{t.Input}
	case *Sort:
		return []Node{t.Input}
	case *Limit:
		return []Node{t.Input}
	case *Exchange:
		return []Node{t.Source}
	case *HashJoin:
		return []Node{t.Build, t.Probe}
	case *MergeJoin:
		return []Node{t.Left, t.Right}
	case *INLJoin:
		return []Node{t.Outer}
	case *StarSemiJoin:
		out := make([]Node, 0, len(t.Dims))
		for _, d := range t.Dims {
			out = append(out, d.Scan)
		}
		return out
	case *Instrumented:
		out := make([]Node, 0, len(t.Kids))
		for _, k := range t.Kids {
			out = append(out, k)
		}
		return out
	default:
		return nil
	}
}

// bindFilter binds an optional predicate against a schema.
func bindFilter(pred expr.Expr, schema expr.RelSchema) (*expr.Bound, error) {
	return expr.Bind(pred, schema)
}

// tableAndSchema resolves a table and its qualified scan schema.
func tableAndSchema(ctx *Context, name string) (*storage.Table, expr.RelSchema, error) {
	t, ok := ctx.DB.Table(name)
	if !ok {
		return nil, expr.RelSchema{}, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, expr.SchemaForTable(t.Schema()), nil
}
