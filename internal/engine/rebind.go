package engine

import (
	"fmt"

	"robustqo/internal/expr"
)

// Rebind clones a plan tree with new literal bindings substituted in:
// every embedded predicate goes through Expr and every index key range
// through Range, while the tree shape, join order, access-path choices,
// DOP, and partition lists are preserved bit-for-bit. The plan cache
// uses it to serve a prepared statement with fresh parameters without
// re-running optimization — which is only sound because the caller has
// already verified (via the credible-interval re-bind rule) that the new
// literals do not move any estimate outside the region the plan was
// chosen under, and that the partition-pruning verdict is unchanged.
//
// The returned map sends each original node to its clone so callers can
// transplant node-keyed side tables (Plan.EstimateOf snapshots). Nodes
// are never mutated in place: the cached tree stays shared across
// concurrent executions.
func Rebind(root Node, opts RebindOptions) (Node, map[Node]Node, error) {
	r := &rebinder{opts: opts, remap: make(map[Node]Node)}
	nn, err := r.node(root)
	if err != nil {
		return nil, nil, err
	}
	return nn, r.remap, nil
}

// RebindOptions supplies the two substitutions a re-bind performs.
// Either may be nil, meaning identity.
type RebindOptions struct {
	// Expr rewrites an embedded predicate or scalar expression
	// (Filter.Pred, scan filters/residuals, aggregate arguments). It is
	// never called with nil.
	Expr func(expr.Expr) expr.Expr
	// Range rewrites an index key range of the named table — the re-bind
	// re-derives [Lo, Hi] from the new literals via the same sargable
	// analysis that planned the original range.
	Range func(table string, r KeyRange) KeyRange
}

type rebinder struct {
	opts  RebindOptions
	remap map[Node]Node
}

func (r *rebinder) expr(e expr.Expr) expr.Expr {
	if e == nil || r.opts.Expr == nil {
		return e
	}
	return r.opts.Expr(e)
}

func (r *rebinder) rng(table string, k KeyRange) KeyRange {
	if r.opts.Range == nil {
		return k
	}
	return r.opts.Range(table, k)
}

// node clones one node, recursing into children. The switch must cover
// every Node the optimizer can emit; an unknown type is a hard error so
// a future node kind cannot be silently served with stale literals.
func (r *rebinder) node(n Node) (Node, error) {
	var nn Node
	switch t := n.(type) {
	case *SeqScan:
		cp := *t
		cp.Filter = r.expr(t.Filter)
		nn = &cp
	case *IndexRangeScan:
		cp := *t
		cp.Range = r.rng(t.Table, t.Range)
		cp.Residual = r.expr(t.Residual)
		nn = &cp
	case *IndexIntersect:
		cp := *t
		cp.Ranges = make([]KeyRange, len(t.Ranges))
		for i, k := range t.Ranges {
			cp.Ranges[i] = r.rng(t.Table, k)
		}
		cp.Residual = r.expr(t.Residual)
		nn = &cp
	case *Filter:
		in, err := r.node(t.Input)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Input = in
		cp.Pred = r.expr(t.Pred)
		nn = &cp
	case *Project:
		in, err := r.node(t.Input)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Input = in
		nn = &cp
	case *Aggregate:
		in, err := r.node(t.Input)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Input = in
		cp.Aggs = make([]AggSpec, len(t.Aggs))
		for i, spec := range t.Aggs {
			spec.Arg = r.expr(spec.Arg)
			cp.Aggs[i] = spec
		}
		nn = &cp
	case *Sort:
		in, err := r.node(t.Input)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Input = in
		nn = &cp
	case *Limit:
		in, err := r.node(t.Input)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Input = in
		nn = &cp
	case *Exchange:
		src, err := r.node(t.Source)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Source = src
		nn = &cp
	case *HashJoin:
		build, err := r.node(t.Build)
		if err != nil {
			return nil, err
		}
		probe, err := r.node(t.Probe)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Build, cp.Probe = build, probe
		nn = &cp
	case *MergeJoin:
		left, err := r.node(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := r.node(t.Right)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Left, cp.Right = left, right
		nn = &cp
	case *INLJoin:
		outer, err := r.node(t.Outer)
		if err != nil {
			return nil, err
		}
		cp := *t
		cp.Outer = outer
		cp.Residual = r.expr(t.Residual)
		nn = &cp
	case *StarSemiJoin:
		cp := *t
		cp.Dims = make([]StarDim, len(t.Dims))
		for i, d := range t.Dims {
			scan, err := r.node(d.Scan)
			if err != nil {
				return nil, err
			}
			d.Scan = scan
			cp.Dims[i] = d
		}
		cp.Residual = r.expr(t.Residual)
		nn = &cp
	default:
		return nil, fmt.Errorf("engine: Rebind: unsupported node type %T", n)
	}
	r.remap[n] = nn
	return nn, nil
}
