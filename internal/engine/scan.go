package engine

import (
	"fmt"
	"strings"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/index"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// SeqScan reads every page of a table sequentially, applying an optional
// filter. Its cost is essentially independent of the filter's selectivity —
// it is the paper's archetypal "stable" plan.
type SeqScan struct {
	Table  string
	Filter expr.Expr // nil means no filter
}

// Schema implements Node.
func (s *SeqScan) Schema(ctx *Context) (expr.RelSchema, error) {
	_, schema, err := tableAndSchema(ctx, s.Table)
	return schema, err
}

// Describe implements Node.
func (s *SeqScan) Describe() string {
	if s.Filter == nil {
		return fmt.Sprintf("SeqScan(%s)", s.Table)
	}
	return fmt.Sprintf("SeqScan(%s, filter=%s)", s.Table, s.Filter)
}

// Execute implements Node.
func (s *SeqScan) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	pred, err := bindFilter(s.Filter, schema)
	if err != nil {
		return nil, err
	}
	counters.SeqPages += int64(t.NumPages())
	counters.Tuples += int64(t.NumRows())
	nCols := len(schema.Fields)
	buf := make(value.Row, nCols)
	var rows []value.Row
	for r := 0; r < t.NumRows(); r++ {
		t.ReadRow(r, buf)
		ok, err := pred.Eval(buf)
		if err != nil {
			return nil, fmt.Errorf("engine: SeqScan(%s): %v", s.Table, err)
		}
		if ok {
			rows = append(rows, buf.Clone())
		}
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

// KeyRange is one indexed range condition lo <= column <= hi over an Int
// or Date column.
type KeyRange struct {
	Column string
	Lo, Hi int64
}

func (k KeyRange) String() string {
	return fmt.Sprintf("%s in [%d, %d]", k.Column, k.Lo, k.Hi)
}

// IndexRangeScan probes a single secondary index for a key range, fetches
// the qualifying rows by RID (one random page read each), and applies an
// optional residual predicate.
type IndexRangeScan struct {
	Table    string
	Range    KeyRange
	Residual expr.Expr
}

// Schema implements Node.
func (s *IndexRangeScan) Schema(ctx *Context) (expr.RelSchema, error) {
	_, schema, err := tableAndSchema(ctx, s.Table)
	return schema, err
}

// Describe implements Node.
func (s *IndexRangeScan) Describe() string {
	d := fmt.Sprintf("IndexRangeScan(%s, %s", s.Table, s.Range)
	if s.Residual != nil {
		d += ", residual=" + s.Residual.String()
	}
	return d + ")"
}

// Execute implements Node.
func (s *IndexRangeScan) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	ix, ok := ctx.Indexes.Lookup(s.Table, s.Range.Column)
	if !ok {
		return nil, fmt.Errorf("engine: no index on %s.%s", s.Table, s.Range.Column)
	}
	pred, err := bindFilter(s.Residual, schema)
	if err != nil {
		return nil, err
	}
	counters.IndexSeeks++
	rids, scanned := ix.Range(s.Range.Lo, s.Range.Hi)
	counters.IndexEntries += int64(scanned)
	counters.RandPages += int64(len(rids))
	counters.Tuples += int64(len(rids))
	rows, err := fetchFiltered(t, schema, rids, pred)
	if err != nil {
		return nil, fmt.Errorf("engine: IndexRangeScan(%s): %v", s.Table, err)
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

// IndexIntersect is the paper's risky plan: probe one index per range
// condition, intersect the RID lists, fetch only the surviving rows (one
// random page read each), and apply an optional residual predicate. Very
// fast when few rows qualify; much slower than a scan when many do.
type IndexIntersect struct {
	Table    string
	Ranges   []KeyRange
	Residual expr.Expr
}

// Schema implements Node.
func (s *IndexIntersect) Schema(ctx *Context) (expr.RelSchema, error) {
	_, schema, err := tableAndSchema(ctx, s.Table)
	return schema, err
}

// Describe implements Node.
func (s *IndexIntersect) Describe() string {
	parts := make([]string, len(s.Ranges))
	for i, r := range s.Ranges {
		parts[i] = r.String()
	}
	d := fmt.Sprintf("IndexIntersect(%s, %s", s.Table, strings.Join(parts, " & "))
	if s.Residual != nil {
		d += ", residual=" + s.Residual.String()
	}
	return d + ")"
}

// Execute implements Node.
func (s *IndexIntersect) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(s.Ranges) == 0 {
		return nil, fmt.Errorf("engine: IndexIntersect(%s) with no ranges", s.Table)
	}
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	pred, err := bindFilter(s.Residual, schema)
	if err != nil {
		return nil, err
	}
	lists := make([][]int32, len(s.Ranges))
	for i, r := range s.Ranges {
		ix, ok := ctx.Indexes.Lookup(s.Table, r.Column)
		if !ok {
			return nil, fmt.Errorf("engine: no index on %s.%s", s.Table, r.Column)
		}
		counters.IndexSeeks++
		rids, scanned := ix.Range(r.Lo, r.Hi)
		counters.IndexEntries += int64(scanned)
		counters.Tuples += int64(scanned) // intersection CPU
		lists[i] = rids
	}
	rids := index.Intersect(lists...)
	counters.RandPages += int64(len(rids))
	counters.Tuples += int64(len(rids))
	rows, err := fetchFiltered(t, schema, rids, pred)
	if err != nil {
		return nil, fmt.Errorf("engine: IndexIntersect(%s): %v", s.Table, err)
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

// fetchFiltered materializes the rows behind rids and keeps those passing
// the (already bound) predicate.
func fetchFiltered(t *storage.Table, schema expr.RelSchema, rids []int32, pred *expr.Bound) ([]value.Row, error) {
	buf := make(value.Row, len(schema.Fields))
	var rows []value.Row
	for _, rid := range rids {
		t.ReadRow(int(rid), buf)
		ok, err := pred.Eval(buf)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, buf.Clone())
		}
	}
	return rows, nil
}
