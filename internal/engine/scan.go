package engine

import (
	"fmt"
	"strings"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/index"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// SeqScan reads every page of a table sequentially, applying an optional
// filter. Its cost is essentially independent of the filter's selectivity —
// it is the paper's archetypal "stable" plan.
type SeqScan struct {
	Table  string
	Filter expr.Expr // nil means no filter
	// Partitions, when non-nil, restricts the scan to the listed shards
	// of a partitioned table (the optimizer's pruning pass sets it). nil
	// scans everything; an empty list scans nothing.
	Partitions []int
	// Mode selects the storage path: the default row path, or the eager /
	// late-materializing encoded columnar paths (see colscan.go). The
	// optimizer's scan-strategy pass sets it when encodings are present.
	Mode ScanMode
}

// Schema implements Node.
func (s *SeqScan) Schema(ctx *Context) (expr.RelSchema, error) {
	_, schema, err := tableAndSchema(ctx, s.Table)
	return schema, err
}

// Describe implements Node.
func (s *SeqScan) Describe() string {
	mode := ""
	if s.Mode != ScanRows {
		mode = ", columnar=" + s.Mode.String()
	}
	if s.Filter == nil {
		return fmt.Sprintf("SeqScan(%s%s%s)", s.Table, mode, partsSuffix(s.Partitions))
	}
	return fmt.Sprintf("SeqScan(%s, filter=%s%s%s)", s.Table, s.Filter, mode, partsSuffix(s.Partitions))
}

// Execute implements Node.
func (s *SeqScan) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, s, counters)
}

// Stream implements Node.
func (s *SeqScan) Stream() Operator { return &seqScanOp{node: s} }

// seqScanOp streams the heap a batch of rows at a time, charging each
// sequential page and tuple as it is actually read so a LIMIT above it
// stops the scan before the tail of the table is touched.
type seqScanOp struct {
	node     *SeqScan
	counters *cost.Counters
	t        *storage.Table
	pred     *expr.Bound
	enc      *encScan
	spans    []rowSpan
	span     int
	next     int
	out      *Batch
	sel      []int
}

func (o *seqScanOp) Open(ctx *Context, counters *cost.Counters) error {
	t, schema, err := tableAndSchema(ctx, o.node.Table)
	if err != nil {
		return err
	}
	pred, err := bindFilter(o.node.Filter, schema)
	if err != nil {
		return err
	}
	if spec := prepareEncScan(ctx, t, schema, o.node); spec != nil {
		if o.enc, err = spec.newState(schema); err != nil {
			return err
		}
	}
	o.counters, o.t, o.pred = counters, t, pred
	o.spans = scanSpans(t, o.node.Partitions)
	o.out = getBatch(schema)
	return nil
}

// Next loads the next row window column-wise and filters it in place,
// walking the surviving shards' spans in global row-id order.
//
//qo:hotpath
func (o *seqScanOp) Next() (*Batch, error) {
	for o.span < len(o.spans) {
		s := o.spans[o.span]
		if o.next < s.lo {
			o.next = s.lo
		}
		if o.next >= s.hi {
			o.span++
			continue
		}
		end := o.next + BatchSize
		if end > s.hi {
			end = s.hi
		}
		if o.enc != nil {
			// Encoded columnar window: identical counters, filtered batch.
			if err := o.enc.window(o.out, o.pred, o.next, end, o.counters); err != nil {
				//qo:alloc-ok error path, cold
				return nil, fmt.Errorf("engine: SeqScan(%s): %v", o.node.Table, err)
			}
			o.next = end
			if o.out.Len() > 0 {
				return o.out, nil
			}
			continue
		}
		o.out.Reset()
		// Column-wise load of the row window [next, end).
		for c := range o.out.cols {
			col := o.out.cols[c]
			for r := o.next; r < end; r++ {
				col = append(col, o.t.Value(r, c))
			}
			o.out.cols[c] = col
		}
		o.out.n = end - o.next
		// Pages whose first tuple falls inside the window are charged now;
		// across a full scan this sums to exactly NumPages.
		const per = storage.TuplesPerPage
		o.counters.SeqPages += int64((end+per-1)/per - (o.next+per-1)/per)
		o.counters.Tuples += int64(end - o.next)
		o.next = end
		o.sel = identSel(o.sel, o.out.Len())
		keep, err := o.pred.EvalBatch(o.out.Cols(), o.sel)
		if err != nil {
			//qo:alloc-ok error path, cold
			return nil, fmt.Errorf("engine: SeqScan(%s): %v", o.node.Table, err)
		}
		o.out.Gather(keep)
		if o.out.Len() > 0 {
			return o.out, nil
		}
	}
	return nil, nil
}

func (o *seqScanOp) Close() {
	putBatch(o.out)
	o.out = nil
}

// KeyRange is one indexed range condition lo <= column <= hi over an Int
// or Date column.
type KeyRange struct {
	Column string
	Lo, Hi int64
}

func (k KeyRange) String() string {
	return fmt.Sprintf("%s in [%d, %d]", k.Column, k.Lo, k.Hi)
}

// IndexRangeScan probes a single secondary index for a key range, fetches
// the qualifying rows by RID (one random page read each), and applies an
// optional residual predicate.
type IndexRangeScan struct {
	Table    string
	Range    KeyRange
	Residual expr.Expr
	// Partitions, when non-nil, drops RIDs of pruned shards before any
	// row is fetched; the index seek itself stays global.
	Partitions []int
}

// Schema implements Node.
func (s *IndexRangeScan) Schema(ctx *Context) (expr.RelSchema, error) {
	_, schema, err := tableAndSchema(ctx, s.Table)
	return schema, err
}

// Describe implements Node.
func (s *IndexRangeScan) Describe() string {
	d := fmt.Sprintf("IndexRangeScan(%s, %s", s.Table, s.Range)
	if s.Residual != nil {
		d += ", residual=" + s.Residual.String()
	}
	return d + partsSuffix(s.Partitions) + ")"
}

// Execute implements Node.
func (s *IndexRangeScan) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, s, counters)
}

// Stream implements Node.
func (s *IndexRangeScan) Stream() Operator { return &indexRangeScanOp{node: s} }

// indexRangeScanOp seeks the index at Open (the probe is unavoidable) but
// defers the random-page fetches to Next, one batch of RIDs at a time.
type indexRangeScanOp struct {
	node  *IndexRangeScan
	fetch ridFetcher
}

func (o *indexRangeScanOp) Open(ctx *Context, counters *cost.Counters) error {
	t, schema, err := tableAndSchema(ctx, o.node.Table)
	if err != nil {
		return err
	}
	ix, ok := ctx.Indexes.Lookup(o.node.Table, o.node.Range.Column)
	if !ok {
		return fmt.Errorf("engine: no index on %s.%s", o.node.Table, o.node.Range.Column)
	}
	pred, err := bindFilter(o.node.Residual, schema)
	if err != nil {
		return err
	}
	counters.IndexSeeks++
	rids, scanned := ix.Range(o.node.Range.Lo, o.node.Range.Hi)
	counters.IndexEntries += int64(scanned)
	rids = pruneRids(t, o.node.Partitions, rids)
	o.fetch.init(counters, t, schema, pred, rids, fmt.Sprintf("IndexRangeScan(%s)", o.node.Table))
	return nil
}

func (o *indexRangeScanOp) Next() (*Batch, error) { return o.fetch.nextBatch() }

func (o *indexRangeScanOp) Close() { o.fetch.release() }

// IndexIntersect is the paper's risky plan: probe one index per range
// condition, intersect the RID lists, fetch only the surviving rows (one
// random page read each), and apply an optional residual predicate. Very
// fast when few rows qualify; much slower than a scan when many do.
type IndexIntersect struct {
	Table    string
	Ranges   []KeyRange
	Residual expr.Expr
	// Partitions, when non-nil, drops RIDs of pruned shards after the
	// intersection, before any row is fetched.
	Partitions []int
}

// Schema implements Node.
func (s *IndexIntersect) Schema(ctx *Context) (expr.RelSchema, error) {
	_, schema, err := tableAndSchema(ctx, s.Table)
	return schema, err
}

// Describe implements Node.
func (s *IndexIntersect) Describe() string {
	parts := make([]string, len(s.Ranges))
	for i, r := range s.Ranges {
		parts[i] = r.String()
	}
	d := fmt.Sprintf("IndexIntersect(%s, %s", s.Table, strings.Join(parts, " & "))
	if s.Residual != nil {
		d += ", residual=" + s.Residual.String()
	}
	return d + partsSuffix(s.Partitions) + ")"
}

// Execute implements Node.
func (s *IndexIntersect) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, s, counters)
}

// Stream implements Node.
func (s *IndexIntersect) Stream() Operator { return &indexIntersectOp{node: s} }

// indexIntersectOp performs all index probes and the RID intersection at
// Open — that work is inherently blocking — then streams the surviving
// row fetches.
type indexIntersectOp struct {
	node  *IndexIntersect
	fetch ridFetcher
}

func (o *indexIntersectOp) Open(ctx *Context, counters *cost.Counters) error {
	if len(o.node.Ranges) == 0 {
		return fmt.Errorf("engine: IndexIntersect(%s) with no ranges", o.node.Table)
	}
	t, schema, err := tableAndSchema(ctx, o.node.Table)
	if err != nil {
		return err
	}
	pred, err := bindFilter(o.node.Residual, schema)
	if err != nil {
		return err
	}
	lists := make([][]int32, len(o.node.Ranges))
	for i, r := range o.node.Ranges {
		ix, ok := ctx.Indexes.Lookup(o.node.Table, r.Column)
		if !ok {
			return fmt.Errorf("engine: no index on %s.%s", o.node.Table, r.Column)
		}
		counters.IndexSeeks++
		rids, scanned := ix.Range(r.Lo, r.Hi)
		counters.IndexEntries += int64(scanned)
		counters.Tuples += int64(scanned) // intersection CPU
		lists[i] = rids
	}
	rids := pruneRids(t, o.node.Partitions, index.Intersect(lists...))
	o.fetch.init(counters, t, schema, pred, rids, fmt.Sprintf("IndexIntersect(%s)", o.node.Table))
	return nil
}

func (o *indexIntersectOp) Next() (*Batch, error) { return o.fetch.nextBatch() }

func (o *indexIntersectOp) Close() { o.fetch.release() }

// ridFetcher streams the rows behind a RID list in batches, charging one
// random page and one tuple per RID as the row is actually fetched.
type ridFetcher struct {
	counters *cost.Counters
	t        *storage.Table
	pred     *expr.Bound
	rids     []int32
	next     int
	out      *Batch
	buf      value.Row
	sel      []int
	errCtx   string
}

func (f *ridFetcher) init(counters *cost.Counters, t *storage.Table, schema expr.RelSchema, pred *expr.Bound, rids []int32, errCtx string) {
	f.counters, f.t, f.pred, f.rids, f.errCtx = counters, t, pred, rids, errCtx
	f.out = getBatch(schema)
	f.buf = make(value.Row, len(schema.Fields))
}

// release returns the fetcher's batch to the pool; owners call it from
// Close.
func (f *ridFetcher) release() {
	putBatch(f.out)
	f.out = nil
}

// nextBatch materializes and filters the next window of the RID list.
//
//qo:hotpath
func (f *ridFetcher) nextBatch() (*Batch, error) {
	for f.next < len(f.rids) {
		end := f.next + BatchSize
		if end > len(f.rids) {
			end = len(f.rids)
		}
		f.out.Reset()
		for _, rid := range f.rids[f.next:end] {
			f.counters.RandPages++
			f.counters.Tuples++
			f.t.ReadRow(int(rid), f.buf)
			f.out.AppendRow(f.buf)
		}
		f.next = end
		f.sel = identSel(f.sel, f.out.Len())
		keep, err := f.pred.EvalBatch(f.out.Cols(), f.sel)
		if err != nil {
			//qo:alloc-ok error path, cold
			return nil, fmt.Errorf("engine: %s: %v", f.errCtx, err)
		}
		f.out.Gather(keep)
		if f.out.Len() > 0 {
			return f.out, nil
		}
	}
	return nil, nil
}

// fetchFiltered materializes the rows behind rids and keeps those passing
// the (already bound) predicate. Used by the materialized reference path.
func fetchFiltered(t *storage.Table, schema expr.RelSchema, rids []int32, pred *expr.Bound) ([]value.Row, error) {
	buf := make(value.Row, len(schema.Fields))
	var rows []value.Row
	for _, rid := range rids {
		t.ReadRow(int(rid), buf)
		ok, err := pred.Eval(buf)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, buf.Clone())
		}
	}
	return rows, nil
}
