package engine

import (
	"fmt"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
)

// TestJoinDifferentialDOPProperty extends the differential corpus with
// join-heavy pipelines: 40 randomized trials cycling through parallel
// hash-join pipelines (single joins, multi-way FK chains, serial joins
// over parallel inner pipelines), StarSemiJoin with parallel dimension
// arms, and MergeJoin over parallel pre-sorted inputs. Every trial runs
// serially, through ExecuteMaterialized at DOP 4, and streaming at DOP
// 1/2/4, and requires byte-identical row order and cost.Counters across
// all of them.
func TestJoinDifferentialDOPProperty(t *testing.T) {
	_, ctx := testDB(t, 3000, 3, 40)
	rng := stats.NewRNG(4242)
	col := func(tab, c string) expr.ColumnRef { return expr.ColumnRef{Table: tab, Column: c} }

	for trial := 0; trial < 40; trial++ {
		shipLo := int64(testkit.Intn(rng, 50))
		shipHi := shipLo + int64(testkit.Intn(rng, 50))
		total := float64(testkit.Intn(rng, 1000))
		size := int64(testkit.Intn(rng, 50))
		// Some trials carry a posterior-style build estimate (orders rows
		// that pass the total filter, roughly total/1000 selectivity) so
		// pre-sizing runs under the differential microscope too; others
		// leave it zero like a hand-built plan.
		var est float64
		if trial%2 == 0 {
			est = 3000 * total / 1000
		}

		lineFilter := testkit.Expr(fmt.Sprintf("l_ship BETWEEN %d AND %d", shipLo, shipHi))
		ordFilter := testkit.Expr(fmt.Sprintf("o_total < %g", total))
		partFilter := testkit.Expr(fmt.Sprintf("p_size < %d", size))

		build := func(dop int) Node {
			wrap := func(n Node) Node {
				if dop == 0 {
					return n
				}
				return &Exchange{Source: n, DOP: dop}
			}
			lineScan := &SeqScan{Table: "lineitem", Filter: lineFilter}
			ordScan := &SeqScan{Table: "orders", Filter: ordFilter}
			partScan := &SeqScan{Table: "part", Filter: partFilter}
			innerJoin := func() *HashJoin {
				return &HashJoin{
					Build: ordScan, Probe: lineScan,
					BuildCol: col("orders", "o_orderkey"), ProbeCol: col("lineitem", "l_orderkey"),
					BuildRowsEst: est,
				}
			}
			switch trial % 5 {
			case 0:
				// Whole scan→hashjoin pipeline under one Exchange.
				return wrap(innerJoin())
			case 1:
				// Multi-way FK chain: part ⋈ (orders ⋈ lineitem), the whole
				// chain morselized together.
				return wrap(&HashJoin{
					Build: partScan, Probe: innerJoin(),
					BuildCol: col("part", "p_partkey"), ProbeCol: col("lineitem", "l_partkey"),
				})
			case 2:
				// Serial outer join probing a parallel inner pipeline.
				return &HashJoin{
					Build: partScan, Probe: wrap(innerJoin()),
					BuildCol: col("part", "p_partkey"), ProbeCol: col("lineitem", "l_partkey"),
				}
			case 3:
				// Star strategy with a parallel dimension arm.
				return &StarSemiJoin{
					Fact: "lineitem",
					Dims: []StarDim{{
						Scan:   wrap(partScan),
						DimPK:  col("part", "p_partkey"),
						FactFK: "l_partkey",
					}},
					Residual: testkit.Expr("l_price >= 1"),
				}
			default:
				// MergeJoin over parallel inputs that genuinely are ordered
				// by their join keys (append order), so the alreadySorted
				// hints hold and no sort is charged.
				return &MergeJoin{
					Left:  wrap(ordScan),
					Right: wrap(lineScan),
					LeftCol: col("orders", "o_orderkey"), RightCol: col("lineitem", "l_orderkey"),
					LeftSorted: true, RightSorted: true,
				}
			}
		}

		var sc cost.Counters
		serial, err := build(0).Execute(ctx, &sc)
		if err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		var mc cost.Counters
		mat, err := ExecuteMaterialized(ctx, build(4), &mc)
		if err != nil {
			t.Fatalf("trial %d: materialized: %v", trial, err)
		}
		if len(mat.Rows) != len(serial.Rows) {
			t.Fatalf("trial %d: materialized %d rows, serial %d", trial, len(mat.Rows), len(serial.Rows))
		}
		for i := range mat.Rows {
			if rowKey(mat.Rows[i]) != rowKey(serial.Rows[i]) {
				t.Fatalf("trial %d: materialized row %d = %v, serial %v", trial, i, mat.Rows[i], serial.Rows[i])
			}
		}
		if mc != sc {
			t.Fatalf("trial %d: materialized counters diverged:\nmat    %+v\nserial %+v", trial, mc, sc)
		}
		for _, dop := range []int{1, 2, 4} {
			var c cost.Counters
			res, err := build(dop).Execute(ctx, &c)
			if err != nil {
				t.Fatalf("trial %d dop %d: %v", trial, dop, err)
			}
			if len(res.Rows) != len(serial.Rows) {
				t.Fatalf("trial %d dop %d: %d rows, serial %d", trial, dop, len(res.Rows), len(serial.Rows))
			}
			for i := range res.Rows {
				if rowKey(res.Rows[i]) != rowKey(serial.Rows[i]) {
					t.Fatalf("trial %d dop %d: row %d = %v, serial %v", trial, dop, i, res.Rows[i], serial.Rows[i])
				}
			}
			if c != sc {
				t.Fatalf("trial %d dop %d: counters diverged:\nparallel %+v\nserial   %+v", trial, dop, c, sc)
			}
		}
	}
}

// TestHashJoinPresizeMetrics pins the posterior-driven pre-sizing
// contract: an estimate within 2x of the actual build size records a
// pre-size hit and zero modeled rehashes; a wild underestimate (and an
// unsized hand-built plan) records rehashes; a DOP>1 pipeline over a
// build past the partition threshold records a partitioned build.
func TestHashJoinPresizeMetrics(t *testing.T) {
	_, ctx := testDB(t, 3000, 3, 40) // 3000 orders, 9000 lineitem
	col := func(tab, c string) expr.ColumnRef { return expr.ColumnRef{Table: tab, Column: c} }
	join := func(est float64) *HashJoin {
		return &HashJoin{
			Build: &SeqScan{Table: "orders"}, Probe: &SeqScan{Table: "lineitem"},
			BuildCol: col("orders", "o_orderkey"), ProbeCol: col("lineitem", "l_orderkey"),
			BuildRowsEst: est,
		}
	}
	run := func(n Node) *obs.Registry {
		t.Helper()
		reg := obs.NewRegistry()
		ctx.Metrics = reg
		defer func() { ctx.Metrics = nil }()
		var c cost.Counters
		if _, err := n.Execute(ctx, &c); err != nil {
			t.Fatal(err)
		}
		return reg
	}

	// Estimate at 0.6x actual: within the 2x headroom, so zero rehashes.
	reg := run(join(0.6 * 3000))
	if v := reg.Counter("robustqo_hashjoin_presize_hits_total").Value(); v != 1 {
		t.Errorf("presize hits = %d, want 1", v)
	}
	if v := reg.Counter("robustqo_hashjoin_rehashes_total").Value(); v != 0 {
		t.Errorf("rehashes = %d, want 0 with estimate within 2x", v)
	}
	if v := reg.Counter("robustqo_hashjoin_builds_total").Value(); v != 1 {
		t.Errorf("builds = %d, want 1", v)
	}

	// Wild underestimate: growth is modeled and exported.
	reg = run(join(10))
	if v := reg.Counter("robustqo_hashjoin_rehashes_total").Value(); v == 0 {
		t.Error("underestimated build recorded no rehashes")
	}
	if v := reg.Counter("robustqo_hashjoin_presize_hits_total").Value(); v != 0 {
		t.Errorf("presize hits = %d on an underestimated build, want 0", v)
	}

	// Unsized (hand-built) plan: grows from the minimum capacity.
	reg = run(join(0))
	if v := reg.Counter("robustqo_hashjoin_rehashes_total").Value(); v == 0 {
		t.Error("unsized build recorded no rehashes")
	}

	// A parallel pipeline whose build clears the partition threshold
	// records a partitioned build. lineitem (9000 rows) is the build here.
	big := &Exchange{
		Source: &HashJoin{
			Build: &SeqScan{Table: "lineitem"}, Probe: &SeqScan{Table: "orders"},
			BuildCol: col("lineitem", "l_orderkey"), ProbeCol: col("orders", "o_orderkey"),
			BuildRowsEst: 9000,
		},
		DOP: 4,
	}
	reg = run(big)
	if v := reg.Counter("robustqo_hashjoin_parallel_builds_total").Value(); v != 1 {
		t.Errorf("parallel builds = %d, want 1", v)
	}
	if v := reg.Counter("robustqo_hashjoin_rehashes_total").Value(); v != 0 {
		t.Errorf("rehashes = %d on an exact estimate, want 0", v)
	}
}

// TestMorselProbeAllocs pins the arena discipline of the parallel join
// path (found by qolint's hotalloc analyzer): hashJoinMorselWorker used
// to build one fresh value.Row per match, costing an allocation per
// output row across a drain. With slab-backed output rows and a
// pre-sized row-header slice, a full drain allocates per arena slab —
// the ceiling here is one allocation per eight output rows, and the
// old code exceeded one per row.
func TestMorselProbeAllocs(t *testing.T) {
	_, ctx := testDB(t, 4000, 4, 40)
	node := &HashJoin{
		Build:    &SeqScan{Table: "orders"},
		Probe:    &SeqScan{Table: "lineitem"},
		BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	}
	var c cost.Counters
	runner, err := node.openMorsels(ctx, &c, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := runner.newWorker()
	if err != nil {
		t.Fatal(err)
	}
	defer w.release()
	const wantRows = 4000 * 4
	allocs := testing.AllocsPerRun(5, func() {
		total := 0
		for m := 0; m < runner.numMorsels(); m++ {
			rows, err := w.runMorsel(m, &c)
			if err != nil {
				t.Fatal(err)
			}
			total += len(rows)
		}
		if total != wantRows {
			t.Fatalf("drained %d joined rows, want %d", total, wantRows)
		}
	})
	if ceiling := float64(wantRows) / 8; allocs > ceiling {
		t.Fatalf("parallel probe drain allocs %.0f, want <= %.0f (arena slabs, not per-row)", allocs, ceiling)
	}
	t.Logf("allocs per full drain: %.0f for %d joined rows", allocs, wantRows)
}
