package engine

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
)

var updateChromeGolden = flag.Bool("update-chrome-golden", false,
	"rewrite internal/engine/testdata/chrome_trace_*.json from current output")

// TestChromeTraceParallelPartitionedGolden pins the Chrome trace-event
// export of a parallel partitioned drain: a Sort over an Exchange at
// DOP 4 scanning lineitem range-partitioned into 2 shards. The trace
// uses a frozen clock, so every timestamp and duration exports as zero
// and the full document is deterministic except for the per-worker
// morsel/row attrs (workers race on the claim counter); those two attrs
// are normalized to "?" before the golden comparison. What the golden
// pins: one event per span, worker-N events on their own lanes
// (tid N+2) under the coordinator's tid 1, and the query ID stamped on
// every event.
func TestChromeTraceParallelPartitionedGolden(t *testing.T) {
	_, ctx := partTestDB(t, 6000, 3, 10, 2)

	tr := obs.NewTrace("q7")
	tr.QueryID = "q7"
	epoch := time.Unix(0, 0).UTC()
	tr.Now = func() time.Time { return epoch }

	pred := expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(10), Hi: expr.IntLit(90)}
	plan := &Sort{
		Input: &Exchange{
			Source: &SeqScan{Table: "lineitem", Filter: pred},
			DOP:    4,
			Trace:  tr,
		},
		By: []SortKey{{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}}},
	}
	inst := InstrumentOpts(plan, InstrumentOptions{Trace: tr, QueryID: "q7"})
	var c cost.Counters
	if _, err := inst.Execute(ctx, &c); err != nil {
		t.Fatal(err)
	}

	// Structural nesting, checked on the span records directly: the four
	// worker spans are all children of the Exchange operator span.
	recs := tr.Records()
	exchangeID := 0
	for _, r := range recs {
		if r.Name == "op:Exchange" {
			exchangeID = r.ID
		}
	}
	if exchangeID == 0 {
		t.Fatalf("no op:Exchange span in %v", recs)
	}
	workers := 0
	for _, r := range recs {
		if !strings.HasPrefix(r.Name, "worker-") {
			continue
		}
		workers++
		if r.Parent != exchangeID {
			t.Errorf("%s parented to span %d, want op:Exchange (%d)", r.Name, r.Parent, exchangeID)
		}
	}
	if workers != 4 {
		t.Fatalf("got %d worker spans, want 4 (DOP 4 over %d shards)", workers, 2)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	got := normalizeChromeTrace(t, buf.Bytes())

	golden := filepath.Join("testdata", "chrome_trace_dop4_shards2.json")
	if *updateChromeGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-chrome-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chrome trace diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// chromeTraceDoc mirrors the export shape of Trace.WriteChrome for the
// golden-test round trip.
type chromeTraceDoc struct {
	TraceEvents []chromeTraceEvent `json:"traceEvents"`
	DisplayUnit string             `json:"displayTimeUnit"`
}

type chromeTraceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// normalizeChromeTrace verifies the invariants every event must carry
// (complete events, pid 1, the trace's query ID) and masks the
// scheduling-dependent per-worker morsel/row totals so the rest of the
// document can be compared byte-for-byte against the golden file.
func normalizeChromeTrace(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc chromeTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, raw)
	}
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph != "X" || ev.Pid != 1 {
			t.Errorf("event %q: ph=%q pid=%d, want complete event on pid 1", ev.Name, ev.Ph, ev.Pid)
		}
		if ev.Args["qid"] != "q7" {
			t.Errorf("event %q missing qid=q7: args=%v", ev.Name, ev.Args)
		}
		if strings.HasPrefix(ev.Name, "worker-") {
			for _, volatile := range []string{"morsels", "rows"} {
				if _, ok := ev.Args[volatile]; !ok {
					t.Errorf("event %q missing %s attr", ev.Name, volatile)
				}
				ev.Args[volatile] = "?"
			}
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}
