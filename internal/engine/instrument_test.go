package engine

import (
	"fmt"
	"strings"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
)

// TestInstrumentedParityProperty is the obs wrapper's core safety
// property, over the same 40-plan random SPJ corpus as
// TestStreamMaterializedSPJProperty (same seed, same construction):
// instrumenting a plan must leave result rows, row order, and
// cost.Counters byte-identical to the uninstrumented streaming run.
func TestInstrumentedParityProperty(t *testing.T) {
	_, ctx := testDB(t, 200, 3, 10)
	rng := stats.NewRNG(9001)
	okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
	lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
	for trial := 0; trial < 40; trial++ {
		sLo := int64(testkit.Intn(rng, 110)) - 5
		sHi := sLo + int64(testkit.Intn(rng, 70))
		cut := rng.Float64() * 1000
		linePred := expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)}
		orderPred := expr.Cmp{Op: expr.LT, L: expr.TC("orders", "o_total"), R: expr.FloatLit(cut)}

		var lineScan Node
		switch testkit.Intn(rng, 3) {
		case 0:
			lineScan = &SeqScan{Table: "lineitem", Filter: linePred}
		case 1:
			lineScan = &IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_ship", Lo: sLo, Hi: sHi}}
		default:
			lineScan = &IndexIntersect{Table: "lineitem",
				Ranges: []KeyRange{{Column: "l_ship", Lo: sLo, Hi: sHi}}}
		}

		var join Node
		switch testkit.Intn(rng, 3) {
		case 0:
			join = &HashJoin{Build: &SeqScan{Table: "orders", Filter: orderPred},
				Probe: lineScan, BuildCol: okey, ProbeCol: lkey}
		case 1:
			join = &MergeJoin{Left: &SeqScan{Table: "orders", Filter: orderPred},
				Right: lineScan, LeftCol: okey, RightCol: lkey}
		default:
			join = &INLJoin{Outer: lineScan, OuterCol: lkey,
				InnerTable: "orders", InnerCol: "o_orderkey", Residual: orderPred}
		}

		plan := join
		if testkit.Intn(rng, 2) == 0 {
			plan = &Project{Input: plan, Cols: []expr.ColumnRef{
				{Table: "lineitem", Column: "l_id"},
				{Table: "orders", Column: "o_total"},
				{Table: "lineitem", Column: "l_price"},
			}}
		}
		if testkit.Intn(rng, 2) == 0 {
			plan = &Sort{Input: plan, By: []SortKey{
				{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}, Desc: testkit.Intn(rng, 2) == 0}}}
		}

		label := fmt.Sprintf("trial %d ship[%d,%d] cut %.1f plan %s", trial, sLo, sHi, cut, plan.Describe())
		var pc, ic cost.Counters
		pres, err := plan.Execute(ctx, &pc)
		if err != nil {
			t.Fatalf("%s: plain: %v", label, err)
		}
		inst := Instrument(plan)
		ires, err := inst.Execute(ctx, &ic)
		if err != nil {
			t.Fatalf("%s: instrumented: %v", label, err)
		}
		if len(pres.Rows) != len(ires.Rows) {
			t.Fatalf("%s: plain %d rows, instrumented %d", label, len(pres.Rows), len(ires.Rows))
		}
		for i := range pres.Rows {
			if rowKey(pres.Rows[i]) != rowKey(ires.Rows[i]) {
				t.Fatalf("%s: row %d differs: plain %v, instrumented %v",
					label, i, pres.Rows[i], ires.Rows[i])
			}
		}
		if pc != ic {
			t.Fatalf("%s: counters diverged:\nplain        %+v\ninstrumented %+v", label, pc, ic)
		}
		if inst.Stats.Rows != int64(len(pres.Rows)) {
			t.Fatalf("%s: root stats recorded %d rows, want %d", label, inst.Stats.Rows, len(pres.Rows))
		}
	}
}

// TestInstrumentLeavesOriginalUntouched checks that instrumenting
// rebuilds the tree via shallow copies: the original nodes keep their
// original children and remain executable.
func TestInstrumentLeavesOriginalUntouched(t *testing.T) {
	_, ctx := testDB(t, 100, 3, 10)
	scan := &SeqScan{Table: "lineitem"}
	filter := &Filter{Input: scan, Pred: expr.Cmp{Op: expr.GE, L: expr.C("l_ship"), R: expr.IntLit(0)}}
	plan := &Limit{N: 5, Input: filter}

	inst := Instrument(plan)
	if plan.Input != filter || filter.Input != scan {
		t.Fatal("instrumenting mutated the original tree")
	}
	if inst.Origin != Node(plan) {
		t.Error("root Origin does not point at the original node")
	}
	if inst.Inner == Node(plan) {
		t.Error("root Inner should be a copy with wrapped children, not the original")
	}
	var c cost.Counters
	if _, err := plan.Execute(ctx, &c); err != nil {
		t.Fatalf("original plan no longer executes: %v", err)
	}
	var ic cost.Counters
	res, err := inst.Execute(ctx, &ic)
	if err != nil {
		t.Fatalf("instrumented: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	// Kids mirror the children switch: Limit -> Filter -> SeqScan.
	if len(inst.Kids) != 1 || len(inst.Kids[0].Kids) != 1 {
		t.Fatalf("unexpected instrumented shape")
	}
	if inst.Kids[0].Kids[0].Origin != Node(scan) {
		t.Error("leaf Origin mismatch")
	}
}

// TestInstrumentedStarAndJoinShapes drives the multi-child rebuild
// paths (hash join, star semijoin) through replaceChildren.
func TestInstrumentedStarAndJoinShapes(t *testing.T) {
	_, ctx := testDB(t, 150, 4, 10)
	star := &StarSemiJoin{
		Fact: "lineitem",
		Dims: []StarDim{
			{Scan: &SeqScan{Table: "part", Filter: expr.Cmp{Op: expr.LT, L: expr.C("p_size"), R: expr.IntLit(25)}},
				DimPK:  expr.ColumnRef{Table: "part", Column: "p_partkey"},
				FactFK: "l_partkey"},
		},
	}
	var pc, ic cost.Counters
	pres, err := star.Execute(ctx, &pc)
	if err != nil {
		t.Fatal(err)
	}
	inst := Instrument(star)
	if len(inst.Kids) != 1 {
		t.Fatalf("star has %d kids, want 1", len(inst.Kids))
	}
	ires, err := inst.Execute(ctx, &ic)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Rows) != len(ires.Rows) || pc != ic {
		t.Fatalf("star parity broken: %d vs %d rows, %+v vs %+v", len(pres.Rows), len(ires.Rows), pc, ic)
	}
	if got := LeafTables(inst); fmt.Sprint(got) != "[lineitem part]" {
		t.Errorf("LeafTables = %v", got)
	}
}

func TestOpNameAndLeafTables(t *testing.T) {
	join := &HashJoin{
		Build:    &SeqScan{Table: "orders"},
		Probe:    &IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_ship", Lo: 0, Hi: 10}},
		BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	}
	if got := OpName(join); got != "HashJoin" {
		t.Errorf("OpName = %q", got)
	}
	if got := OpName(Instrument(join)); got != "HashJoin" {
		t.Errorf("OpName(instrumented) = %q", got)
	}
	if got := fmt.Sprint(LeafTables(join)); got != "[orders lineitem]" {
		t.Errorf("LeafTables = %v", got)
	}
	inl := &INLJoin{Outer: &SeqScan{Table: "lineitem"},
		OuterCol:   expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		InnerTable: "orders", InnerCol: "o_orderkey"}
	if got := fmt.Sprint(LeafTables(inl)); got != "[lineitem orders]" {
		t.Errorf("LeafTables(INL) = %v", got)
	}
}

// TestExplainAnalyzeRendering pins the deterministic (timings-off)
// annotation format and checks the per-operator trace spans.
func TestExplainAnalyzeRendering(t *testing.T) {
	_, ctx := testDB(t, 100, 3, 10)
	plan := &Limit{N: 7, Input: &Filter{
		Input: &SeqScan{Table: "lineitem"},
		Pred:  expr.Cmp{Op: expr.GE, L: expr.C("l_ship"), R: expr.IntLit(0)},
	}}
	tr := obs.NewTrace("q")
	inst := InstrumentTrace(plan, tr)
	var c cost.Counters
	if _, err := inst.Execute(ctx, &c); err != nil {
		t.Fatal(err)
	}

	est := map[Node]obs.EstimateSnapshot{
		plan:                       {Rows: 7, Percentile: 0.8, Estimator: "bayes"},
		plan.Input:                 {Rows: 280.5, Percentile: 0.8, Estimator: "bayes"},
		plan.Input.(*Filter).Input: {Rows: 300, Percentile: 0.8, Estimator: "bayes"},
	}
	out := ExplainAnalyze(inst, AnalyzeOptions{
		EstimateOf: func(n Node) (obs.EstimateSnapshot, bool) { s, ok := est[n]; return s, ok },
		Totals:     &c,
	})
	want := "Limit(7)  (est=7.0 act=7 q=1.00 T=80% batches=1)\n" +
		"  Filter((l_ship >= 0))  (est=280.5 act=300 q=1.07 T=80% batches=1)\n" +
		"    SeqScan(lineitem)  (est=300.0 act=300 q=1.00 T=80% batches=1)\n" +
		"counters: " + c.String() + "\n"
	if out != want {
		t.Errorf("ExplainAnalyze mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}

	// Unknown estimates render as est=?.
	out2 := ExplainAnalyze(inst, AnalyzeOptions{})
	if !strings.Contains(out2, "est=? act=7") {
		t.Errorf("actuals-only rendering wrong:\n%s", out2)
	}

	// With timings on, wall-clock fields appear.
	out3 := ExplainAnalyze(inst, AnalyzeOptions{Timings: true})
	if !strings.Contains(out3, "open=") || !strings.Contains(out3, "next=") {
		t.Errorf("timings missing:\n%s", out3)
	}

	// One span per operator, named by operator type.
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(recs), recs)
	}
	if recs[0].Name != "op:Limit" || recs[1].Name != "op:Filter" || recs[2].Name != "op:SeqScan" {
		t.Errorf("span names wrong: %+v", recs)
	}
	if recs[1].Parent != recs[0].ID || recs[2].Parent != recs[1].ID {
		t.Errorf("operator spans not nested: %+v", recs)
	}
	if recs[0].Attrs["rows"] != "7" {
		t.Errorf("root span rows attr = %q", recs[0].Attrs["rows"])
	}
}
