package engine

import (
	"fmt"
	"sort"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// HashJoin builds a hash table over the Build input keyed by BuildCol and
// probes it with the Probe input on ProbeCol. Output rows are build-row
// followed by probe-row values.
type HashJoin struct {
	Build    Node
	Probe    Node
	BuildCol expr.ColumnRef
	ProbeCol expr.ColumnRef
}

// Schema implements Node.
func (j *HashJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	ls, err := j.Build.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	rs, err := j.Probe.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return ls.Concat(rs), nil
}

// Describe implements Node.
func (j *HashJoin) Describe() string {
	return fmt.Sprintf("HashJoin(%s = %s)", j.BuildCol, j.ProbeCol)
}

// Execute implements Node.
func (j *HashJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	build, err := j.Build.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	probe, err := j.Probe.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	bIdx, err := build.Schema.Resolve(j.BuildCol)
	if err != nil {
		return nil, fmt.Errorf("engine: HashJoin build key: %v", err)
	}
	pIdx, err := probe.Schema.Resolve(j.ProbeCol)
	if err != nil {
		return nil, fmt.Errorf("engine: HashJoin probe key: %v", err)
	}
	table := make(map[any][]value.Row, len(build.Rows))
	for _, row := range build.Rows {
		k := row[bIdx].Key()
		table[k] = append(table[k], row)
	}
	counters.HashBuilds += int64(len(build.Rows))
	counters.HashProbes += int64(len(probe.Rows))
	outSchema := build.Schema.Concat(probe.Schema)
	var rows []value.Row
	for _, pRow := range probe.Rows {
		for _, bRow := range table[pRow[pIdx].Key()] {
			out := make(value.Row, 0, len(bRow)+len(pRow))
			out = append(out, bRow...)
			out = append(out, pRow...)
			rows = append(rows, out)
		}
	}
	counters.Tuples += int64(len(rows))
	return &Result{Schema: outSchema, Rows: rows}, nil
}

// MergeJoin sort-merges its inputs on integer-valued join keys. Inputs
// already ordered by their key (e.g. clustered primary-key order) should
// set LeftSorted/RightSorted to avoid the sort charge.
type MergeJoin struct {
	Left, Right             Node
	LeftCol, RightCol       expr.ColumnRef
	LeftSorted, RightSorted bool
}

// Schema implements Node.
func (j *MergeJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	ls, err := j.Left.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	rs, err := j.Right.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return ls.Concat(rs), nil
}

// Describe implements Node.
func (j *MergeJoin) Describe() string {
	return fmt.Sprintf("MergeJoin(%s = %s)", j.LeftCol, j.RightCol)
}

// Execute implements Node.
func (j *MergeJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	left, err := j.Left.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	lIdx, err := left.Schema.Resolve(j.LeftCol)
	if err != nil {
		return nil, fmt.Errorf("engine: MergeJoin left key: %v", err)
	}
	rIdx, err := right.Schema.Resolve(j.RightCol)
	if err != nil {
		return nil, fmt.Errorf("engine: MergeJoin right key: %v", err)
	}
	lRows, err := sortedByKey(left.Rows, lIdx, j.LeftSorted)
	if err != nil {
		return nil, err
	}
	if !j.LeftSorted {
		counters.SortTuples += int64(len(lRows))
	}
	rRows, err := sortedByKey(right.Rows, rIdx, j.RightSorted)
	if err != nil {
		return nil, err
	}
	if !j.RightSorted {
		counters.SortTuples += int64(len(rRows))
	}
	counters.Tuples += int64(len(lRows) + len(rRows))
	outSchema := left.Schema.Concat(right.Schema)
	var rows []value.Row
	i, k := 0, 0
	for i < len(lRows) && k < len(rRows) {
		lk := lRows[i][lIdx].I
		rk := rRows[k][rIdx].I
		switch {
		case lk < rk:
			i++
		case lk > rk:
			k++
		default:
			// Join the full equal-key groups.
			iEnd := i
			for iEnd < len(lRows) && lRows[iEnd][lIdx].I == lk {
				iEnd++
			}
			kEnd := k
			for kEnd < len(rRows) && rRows[kEnd][rIdx].I == lk {
				kEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := k; b < kEnd; b++ {
					out := make(value.Row, 0, len(lRows[a])+len(rRows[b]))
					out = append(out, lRows[a]...)
					out = append(out, rRows[b]...)
					rows = append(rows, out)
				}
			}
			i, k = iEnd, kEnd
		}
	}
	counters.Tuples += int64(len(rows))
	return &Result{Schema: outSchema, Rows: rows}, nil
}

// sortedByKey returns rows ordered by the integer key at idx. When
// alreadySorted, it verifies the order rather than trusting it blindly and
// sorts a copy if the claim is wrong (keeping results correct even if a
// plan mislabels its inputs).
func sortedByKey(rows []value.Row, idx int, alreadySorted bool) ([]value.Row, error) {
	for _, r := range rows {
		if !r[idx].Numeric() {
			return nil, fmt.Errorf("engine: merge join over non-numeric key %s", r[idx])
		}
	}
	inOrder := sort.SliceIsSorted(rows, func(a, b int) bool { return rows[a][idx].I < rows[b][idx].I })
	if inOrder {
		return rows, nil
	}
	if alreadySorted {
		// Mislabelled input: fall through to sorting (correctness first).
		cp := make([]value.Row, len(rows))
		copy(cp, rows)
		sort.SliceStable(cp, func(a, b int) bool { return cp[a][idx].I < cp[b][idx].I })
		return cp, nil
	}
	cp := make([]value.Row, len(rows))
	copy(cp, rows)
	sort.SliceStable(cp, func(a, b int) bool { return cp[a][idx].I < cp[b][idx].I })
	return cp, nil
}

// INLJoin is an indexed nested-loop join: for every outer row it probes an
// access path on the inner table. Two probe modes are supported, chosen by
// the inner column:
//
//   - inner primary key: one clustered lookup (one random page) per probe;
//   - inner secondary index: an index seek plus one random page per match.
//
// Output rows are outer-row followed by inner-row values.
type INLJoin struct {
	Outer      Node
	OuterCol   expr.ColumnRef
	InnerTable string
	InnerCol   string    // join column of the inner table
	Residual   expr.Expr // evaluated over the combined row
}

// Schema implements Node.
func (j *INLJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	os, err := j.Outer.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	_, is, err := tableAndSchema(ctx, j.InnerTable)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return os.Concat(is), nil
}

// Describe implements Node.
func (j *INLJoin) Describe() string {
	d := fmt.Sprintf("INLJoin(%s = %s.%s)", j.OuterCol, j.InnerTable, j.InnerCol)
	if j.Residual != nil {
		d += " residual=" + j.Residual.String()
	}
	return d
}

// Execute implements Node.
func (j *INLJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	outer, err := j.Outer.Execute(ctx, counters)
	if err != nil {
		return nil, err
	}
	inner, innerSchema, err := tableAndSchema(ctx, j.InnerTable)
	if err != nil {
		return nil, err
	}
	oIdx, err := outer.Schema.Resolve(j.OuterCol)
	if err != nil {
		return nil, fmt.Errorf("engine: INLJoin outer key: %v", err)
	}
	outSchema := outer.Schema.Concat(innerSchema)
	pred, err := bindFilter(j.Residual, outSchema)
	if err != nil {
		return nil, err
	}
	usePK := inner.Schema().PrimaryKey == j.InnerCol
	var rows []value.Row
	innerBuf := make(value.Row, len(innerSchema.Fields))
	emit := func(oRow value.Row, rid int) error {
		inner.ReadRow(rid, innerBuf)
		out := make(value.Row, 0, len(oRow)+len(innerBuf))
		out = append(out, oRow...)
		out = append(out, innerBuf...)
		ok, err := pred.Eval(out)
		if err != nil {
			return err
		}
		if ok {
			rows = append(rows, out)
		}
		return nil
	}
	if usePK {
		for _, oRow := range outer.Rows {
			key := oRow[oIdx]
			if !key.Numeric() {
				return nil, fmt.Errorf("engine: INLJoin over non-numeric key %s", key)
			}
			counters.RandPages++
			counters.Tuples++
			rid, ok := inner.LookupPK(key.I)
			if !ok {
				continue
			}
			if err := emit(oRow, rid); err != nil {
				return nil, err
			}
		}
	} else {
		ix, ok := ctx.Indexes.Lookup(j.InnerTable, j.InnerCol)
		if !ok {
			return nil, fmt.Errorf("engine: INLJoin: no index on %s.%s", j.InnerTable, j.InnerCol)
		}
		for _, oRow := range outer.Rows {
			key := oRow[oIdx]
			if !key.Numeric() {
				return nil, fmt.Errorf("engine: INLJoin over non-numeric key %s", key)
			}
			counters.IndexSeeks++
			rids, scanned := ix.Equal(key.I)
			counters.IndexEntries += int64(scanned)
			counters.RandPages += int64(len(rids))
			counters.Tuples += int64(len(rids))
			for _, rid := range rids {
				if err := emit(oRow, int(rid)); err != nil {
					return nil, err
				}
			}
		}
	}
	counters.Tuples += int64(len(rows))
	return &Result{Schema: outSchema, Rows: rows}, nil
}

// StarDim describes one dimension arm of a StarSemiJoin: the (filtered)
// dimension scan, the dimension's primary-key column, and the fact-table
// foreign-key column pointing at it.
type StarDim struct {
	Scan   Node // produces the selected dimension rows
	DimPK  expr.ColumnRef
	FactFK string // fact column with a secondary index
}

// StarSemiJoin is the sophisticated star-query strategy of Experiment 3:
// for each dimension, the fact table's foreign-key index converts the
// selected dimension keys into a fact RID list (a semijoin); the per-
// dimension RID lists are intersected; only the surviving fact rows are
// fetched; finally each fact row is joined back to its dimension rows.
// Output rows are fact-row values followed by each dimension's row values
// in Dims order.
type StarSemiJoin struct {
	Fact     string
	Dims     []StarDim
	Residual expr.Expr // over the combined row
}

// Schema implements Node.
func (j *StarSemiJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	_, fs, err := tableAndSchema(ctx, j.Fact)
	if err != nil {
		return expr.RelSchema{}, err
	}
	out := fs
	for _, d := range j.Dims {
		ds, err := d.Scan.Schema(ctx)
		if err != nil {
			return expr.RelSchema{}, err
		}
		out = out.Concat(ds)
	}
	return out, nil
}

// Describe implements Node.
func (j *StarSemiJoin) Describe() string {
	return fmt.Sprintf("StarSemiJoin(%s, %d dims)", j.Fact, len(j.Dims))
}

// Execute implements Node.
func (j *StarSemiJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(j.Dims) == 0 {
		return nil, fmt.Errorf("engine: StarSemiJoin(%s) with no dimensions", j.Fact)
	}
	fact, factSchema, err := tableAndSchema(ctx, j.Fact)
	if err != nil {
		return nil, err
	}
	outSchema := factSchema
	type dimState struct {
		rowsByPK map[int64]value.Row
		fkIdx    int // fact column ordinal of the FK
	}
	states := make([]dimState, len(j.Dims))
	ridLists := make([][]int32, len(j.Dims))
	for i, d := range j.Dims {
		dimRes, err := d.Scan.Execute(ctx, counters)
		if err != nil {
			return nil, err
		}
		pkIdx, err := dimRes.Schema.Resolve(d.DimPK)
		if err != nil {
			return nil, fmt.Errorf("engine: StarSemiJoin dim %d key: %v", i, err)
		}
		ix, ok := ctx.Indexes.Lookup(j.Fact, d.FactFK)
		if !ok {
			return nil, fmt.Errorf("engine: StarSemiJoin: no index on %s.%s", j.Fact, d.FactFK)
		}
		byPK := make(map[int64]value.Row, len(dimRes.Rows))
		var rids []int32
		for _, row := range dimRes.Rows {
			pk := row[pkIdx].I
			byPK[pk] = row
			counters.IndexSeeks++
			matches, scanned := ix.Equal(pk)
			counters.IndexEntries += int64(scanned)
			rids = append(rids, matches...)
		}
		sort.Slice(rids, func(a, b int) bool { return rids[a] < rids[b] })
		counters.Tuples += int64(len(rids)) // RID list construction CPU
		fkIdx := fact.Schema().ColumnIndex(d.FactFK)
		if fkIdx < 0 {
			return nil, fmt.Errorf("engine: fact table %q has no column %q", j.Fact, d.FactFK)
		}
		states[i] = dimState{rowsByPK: byPK, fkIdx: fkIdx}
		ridLists[i] = rids
		outSchema = outSchema.Concat(dimRes.Schema)
	}
	pred, err := bindFilter(j.Residual, outSchema)
	if err != nil {
		return nil, err
	}
	surviving := intersectSorted(ridLists)
	counters.RandPages += int64(len(surviving))
	counters.Tuples += int64(len(surviving))
	factBuf := make(value.Row, len(factSchema.Fields))
	var rows []value.Row
	for _, rid := range surviving {
		fact.ReadRow(int(rid), factBuf)
		out := make(value.Row, 0, len(outSchema.Fields))
		out = append(out, factBuf...)
		complete := true
		for _, st := range states {
			dimRow, ok := st.rowsByPK[factBuf[st.fkIdx].I]
			if !ok {
				complete = false
				break
			}
			out = append(out, dimRow...)
		}
		if !complete {
			continue
		}
		ok, err := pred.Eval(out)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, out)
		}
	}
	return &Result{Schema: outSchema, Rows: rows}, nil
}

func intersectSorted(lists [][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	result := lists[0]
	for _, l := range lists[1:] {
		var out []int32
		i, j := 0, 0
		for i < len(result) && j < len(l) {
			switch {
			case result[i] < l[j]:
				i++
			case result[i] > l[j]:
				j++
			default:
				out = append(out, result[i])
				i++
				j++
			}
		}
		result = out
		if len(result) == 0 {
			break
		}
	}
	return result
}
