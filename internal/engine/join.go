package engine

import (
	"fmt"
	"sort"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/index"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// HashJoin builds a hash table over the Build input keyed by BuildCol and
// probes it with the Probe input on ProbeCol. Output rows are build-row
// followed by probe-row values.
type HashJoin struct {
	Build    Node
	Probe    Node
	BuildCol expr.ColumnRef
	ProbeCol expr.ColumnRef
	// BuildRowsEst is the optimizer's posterior T-quantile estimate of the
	// build cardinality, used to pre-size the hash table. Zero (a
	// hand-built plan) falls back to growing from the minimum capacity; it
	// never affects results.
	BuildRowsEst float64
}

// Schema implements Node.
func (j *HashJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	ls, err := j.Build.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	rs, err := j.Probe.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return ls.Concat(rs), nil
}

// Describe implements Node.
func (j *HashJoin) Describe() string {
	return fmt.Sprintf("HashJoin(%s = %s)", j.BuildCol, j.ProbeCol)
}

// Execute implements Node.
func (j *HashJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, j, counters)
}

// Stream implements Node.
func (j *HashJoin) Stream() Operator { return &hashJoinOp{node: j} }

// hashJoinOp drains the build side into a hash table at Open (the build is
// inherently blocking) and then streams the probe side, emitting matches a
// probe batch at a time. The probe is vectorized: it walks the probe
// batch's key column directly — no per-row materialization into a scratch
// row, and no boxing the key into an interface — and copies matching rows
// column-wise out of the batch.
type hashJoinOp struct {
	node     *HashJoin
	counters *cost.Counters
	probe    Operator
	table    *joinTable
	pIdx     int
	out      *Batch
}

func (o *hashJoinOp) Open(ctx *Context, counters *cost.Counters) error {
	j := o.node
	buildSchema, err := j.Build.Schema(ctx)
	if err != nil {
		return err
	}
	probeSchema, err := j.Probe.Schema(ctx)
	if err != nil {
		return err
	}
	bIdx, err := buildSchema.Resolve(j.BuildCol)
	if err != nil {
		return fmt.Errorf("engine: HashJoin build key: %v", err)
	}
	o.pIdx, err = probeSchema.Resolve(j.ProbeCol)
	if err != nil {
		return fmt.Errorf("engine: HashJoin probe key: %v", err)
	}
	buildRows, err := openAndDrainArena(ctx, j.Build, counters)
	if err != nil {
		return err
	}
	o.table = buildJoinTable(buildRows, bIdx, j.BuildRowsEst, 1)
	o.table.recordMetrics(ctx.Metrics)
	counters.HashBuilds += int64(len(buildRows))
	o.counters = counters
	o.probe = j.Probe.Stream()
	if err := o.probe.Open(ctx, counters); err != nil {
		return err
	}
	o.out = getBatch(buildSchema.Concat(probeSchema))
	return nil
}

// Next probes the table with each surviving probe row, emitting matches
// column-wise into the operator's pooled batch.
//
//qo:hotpath
func (o *hashJoinOp) Next() (*Batch, error) {
	for {
		b, err := o.probe.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		o.counters.HashProbes += int64(b.Len())
		o.out.Reset()
		keys := b.Cols()[o.pIdx]
		for r := 0; r < b.Len(); r++ {
			for idx := o.table.first(keys[r]); idx >= 0; idx = o.table.next[idx] {
				o.counters.Tuples++
				o.out.appendConcatFrom(o.table.rows[idx], b, r)
			}
		}
		if o.out.Len() > 0 {
			return o.out, nil
		}
	}
}

func (o *hashJoinOp) Close() {
	if o.probe != nil {
		o.probe.Close()
	}
	putBatch(o.out)
	o.out = nil
}

// MergeJoin sort-merges its inputs on integer-valued join keys. Inputs
// already ordered by their key (e.g. clustered primary-key order) should
// set LeftSorted/RightSorted to avoid the sort charge.
type MergeJoin struct {
	Left, Right             Node
	LeftCol, RightCol       expr.ColumnRef
	LeftSorted, RightSorted bool
}

// Schema implements Node.
func (j *MergeJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	ls, err := j.Left.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	rs, err := j.Right.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return ls.Concat(rs), nil
}

// Describe implements Node.
func (j *MergeJoin) Describe() string {
	return fmt.Sprintf("MergeJoin(%s = %s)", j.LeftCol, j.RightCol)
}

// Execute implements Node.
func (j *MergeJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, j, counters)
}

// Stream implements Node.
func (j *MergeJoin) Stream() Operator { return &mergeJoinOp{node: j} }

// mergeJoinOp is a pipeline breaker on both sides: it drains and sorts at
// Open, then merges incrementally as batches are pulled — output tuples
// are concatenated straight into the pooled output batch, never
// materialized as standalone rows, and the tuple charge lands only as
// rows are actually pulled. (ExecuteMaterialized still uses mergeRows,
// which builds the full row slice; their outputs and charges are
// identical.)
//
// Merge cursor state between pulls: [i, iEnd) x [k, kEnd) is the current
// equal-key group, and (a, b) is the next pair to emit within it.
type mergeJoinOp struct {
	node       *MergeJoin
	counters   *cost.Counters
	lRows      []value.Row
	rRows      []value.Row
	lIdx, rIdx int
	i, k       int
	iEnd, kEnd int
	a, b       int
	out        *Batch
}

func (o *mergeJoinOp) Open(ctx *Context, counters *cost.Counters) error {
	j := o.node
	lSchema, err := j.Left.Schema(ctx)
	if err != nil {
		return err
	}
	rSchema, err := j.Right.Schema(ctx)
	if err != nil {
		return err
	}
	lIdx, err := lSchema.Resolve(j.LeftCol)
	if err != nil {
		return fmt.Errorf("engine: MergeJoin left key: %v", err)
	}
	rIdx, err := rSchema.Resolve(j.RightCol)
	if err != nil {
		return fmt.Errorf("engine: MergeJoin right key: %v", err)
	}
	left, err := openAndDrain(ctx, j.Left, counters)
	if err != nil {
		return err
	}
	right, err := openAndDrain(ctx, j.Right, counters)
	if err != nil {
		return err
	}
	lRows, err := sortedByKey(left, lIdx, j.LeftSorted)
	if err != nil {
		return err
	}
	if !j.LeftSorted {
		counters.SortTuples += int64(len(lRows))
	}
	rRows, err := sortedByKey(right, rIdx, j.RightSorted)
	if err != nil {
		return err
	}
	if !j.RightSorted {
		counters.SortTuples += int64(len(rRows))
	}
	counters.Tuples += int64(len(lRows) + len(rRows))
	o.counters = counters
	o.lRows, o.rRows = lRows, rRows
	o.lIdx, o.rIdx = lIdx, rIdx
	o.out = getBatch(lSchema.Concat(rSchema))
	return nil
}

// Next emits the sorted groups' cross products into the pooled batch.
//
//qo:hotpath
func (o *mergeJoinOp) Next() (*Batch, error) {
	o.out.Reset()
	for o.out.Len() < BatchSize {
		if o.a < o.iEnd {
			// Emit the next pair of the current equal-key group: the
			// cross product in left-major order, exactly as mergeRows
			// enumerates it.
			o.counters.Tuples++
			o.out.appendConcat(o.lRows[o.a], o.rRows[o.b])
			if o.b++; o.b == o.kEnd {
				o.b = o.k
				o.a++
			}
			continue
		}
		// Current group exhausted: advance both cursors past it and find
		// the next key match.
		o.i, o.k = o.iEnd, o.kEnd
		found := false
		for o.i < len(o.lRows) && o.k < len(o.rRows) {
			lk, rk := o.lRows[o.i][o.lIdx].I, o.rRows[o.k][o.rIdx].I
			if lk < rk {
				o.i++
				continue
			}
			if lk > rk {
				o.k++
				continue
			}
			o.iEnd = o.i
			for o.iEnd < len(o.lRows) && o.lRows[o.iEnd][o.lIdx].I == lk {
				o.iEnd++
			}
			o.kEnd = o.k
			for o.kEnd < len(o.rRows) && o.rRows[o.kEnd][o.rIdx].I == lk {
				o.kEnd++
			}
			o.a, o.b = o.i, o.k
			found = true
			break
		}
		if !found {
			// No further matches: park every cursor at the scan position so
			// the emit branch stays dead on later pulls.
			o.iEnd, o.kEnd = o.i, o.k
			o.a, o.b = o.i, o.k
			break
		}
	}
	if o.out.Len() == 0 {
		return nil, nil
	}
	return o.out, nil
}

func (o *mergeJoinOp) Close() {
	putBatch(o.out)
	o.out = nil
}

// mergeRows joins two inputs already ordered by their integer keys,
// pairing the full equal-key groups. Output rows are left-row followed by
// right-row values.
func mergeRows(lRows, rRows []value.Row, lIdx, rIdx int) []value.Row {
	var rows []value.Row
	i, k := 0, 0
	for i < len(lRows) && k < len(rRows) {
		lk := lRows[i][lIdx].I
		rk := rRows[k][rIdx].I
		switch {
		case lk < rk:
			i++
		case lk > rk:
			k++
		default:
			// Join the full equal-key groups.
			iEnd := i
			for iEnd < len(lRows) && lRows[iEnd][lIdx].I == lk {
				iEnd++
			}
			kEnd := k
			for kEnd < len(rRows) && rRows[kEnd][rIdx].I == lk {
				kEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := k; b < kEnd; b++ {
					out := make(value.Row, 0, len(lRows[a])+len(rRows[b]))
					out = append(out, lRows[a]...)
					out = append(out, rRows[b]...)
					rows = append(rows, out)
				}
			}
			i, k = iEnd, kEnd
		}
	}
	return rows
}

// sortedByKey returns rows ordered by the integer key at idx. The order
// check is fused into the numeric-validation pass the function must make
// anyway, so a genuinely sorted input (whether or not alreadySorted says
// so) costs exactly one scan and zero allocations; an out-of-order input
// is sorted in place — callers own the drained row slices — which keeps
// results correct even when a plan mislabels its inputs, while the
// alreadySorted flag only controls the caller's SortTuples charge.
func sortedByKey(rows []value.Row, idx int, alreadySorted bool) ([]value.Row, error) {
	_ = alreadySorted // cost attribution only; see above
	inOrder := true
	for i, r := range rows {
		if !r[idx].Numeric() {
			return nil, fmt.Errorf("engine: merge join over non-numeric key %s", r[idx])
		}
		if inOrder && i > 0 && rows[i-1][idx].I > r[idx].I {
			inOrder = false
		}
	}
	if inOrder {
		return rows, nil
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a][idx].I < rows[b][idx].I })
	return rows, nil
}

// INLJoin is an indexed nested-loop join: for every outer row it probes an
// access path on the inner table. Two probe modes are supported, chosen by
// the inner column:
//
//   - inner primary key: one clustered lookup (one random page) per probe;
//   - inner secondary index: an index seek plus one random page per match.
//
// Output rows are outer-row followed by inner-row values.
type INLJoin struct {
	Outer      Node
	OuterCol   expr.ColumnRef
	InnerTable string
	InnerCol   string    // join column of the inner table
	Residual   expr.Expr // evaluated over the combined row
}

// Schema implements Node.
func (j *INLJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	os, err := j.Outer.Schema(ctx)
	if err != nil {
		return expr.RelSchema{}, err
	}
	_, is, err := tableAndSchema(ctx, j.InnerTable)
	if err != nil {
		return expr.RelSchema{}, err
	}
	return os.Concat(is), nil
}

// Describe implements Node.
func (j *INLJoin) Describe() string {
	d := fmt.Sprintf("INLJoin(%s = %s.%s)", j.OuterCol, j.InnerTable, j.InnerCol)
	if j.Residual != nil {
		d += " residual=" + j.Residual.String()
	}
	return d
}

// Execute implements Node.
func (j *INLJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, j, counters)
}

// Stream implements Node.
func (j *INLJoin) Stream() Operator { return &inlJoinOp{node: j} }

// inlJoinOp streams its outer input, probing the inner access path for
// each outer row as the row flows past. Nothing is buffered, so a LIMIT
// above stops both the outer scan and the inner probes early.
type inlJoinOp struct {
	node     *INLJoin
	counters *cost.Counters
	outer    Operator
	inner    *storage.Table
	pred     *expr.Bound
	oIdx     int
	usePK    bool
	ix       *index.Index
	oBuf     value.Row
	innerBuf value.Row
	combined value.Row
	out      *Batch
}

func (o *inlJoinOp) Open(ctx *Context, counters *cost.Counters) error {
	j := o.node
	outerSchema, err := j.Outer.Schema(ctx)
	if err != nil {
		return err
	}
	inner, innerSchema, err := tableAndSchema(ctx, j.InnerTable)
	if err != nil {
		return err
	}
	o.oIdx, err = outerSchema.Resolve(j.OuterCol)
	if err != nil {
		return fmt.Errorf("engine: INLJoin outer key: %v", err)
	}
	outSchema := outerSchema.Concat(innerSchema)
	o.pred, err = bindFilter(j.Residual, outSchema)
	if err != nil {
		return err
	}
	o.usePK = inner.Schema().PrimaryKey == j.InnerCol
	if !o.usePK {
		ix, ok := ctx.Indexes.Lookup(j.InnerTable, j.InnerCol)
		if !ok {
			return fmt.Errorf("engine: INLJoin: no index on %s.%s", j.InnerTable, j.InnerCol)
		}
		o.ix = ix
	}
	o.inner = inner
	o.counters = counters
	o.outer = j.Outer.Stream()
	if err := o.outer.Open(ctx, counters); err != nil {
		return err
	}
	o.oBuf = make(value.Row, len(outerSchema.Fields))
	o.innerBuf = make(value.Row, len(innerSchema.Fields))
	o.combined = make(value.Row, 0, len(outSchema.Fields))
	o.out = getBatch(outSchema)
	return nil
}

// probe fetches one inner row by RID, applies the residual over the
// combined row, and appends it to the output batch if it passes.
func (o *inlJoinOp) probe(oRow value.Row, rid int) error {
	o.inner.ReadRow(rid, o.innerBuf)
	combined := append(o.combined[:0], oRow...)
	combined = append(combined, o.innerBuf...)
	ok, err := o.pred.Eval(combined)
	if err != nil {
		return err
	}
	if ok {
		o.counters.Tuples++
		o.out.AppendRow(combined)
	}
	return nil
}

func (o *inlJoinOp) Next() (*Batch, error) {
	for {
		b, err := o.outer.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		o.out.Reset()
		for r := 0; r < b.Len(); r++ {
			b.Row(r, o.oBuf)
			key := o.oBuf[o.oIdx]
			if !key.Numeric() {
				return nil, fmt.Errorf("engine: INLJoin over non-numeric key %s", key)
			}
			if o.usePK {
				o.counters.RandPages++
				o.counters.Tuples++
				rid, ok := o.inner.LookupPK(key.I)
				if !ok {
					continue
				}
				if err := o.probe(o.oBuf, rid); err != nil {
					return nil, err
				}
			} else {
				o.counters.IndexSeeks++
				rids, scanned := o.ix.Equal(key.I)
				o.counters.IndexEntries += int64(scanned)
				o.counters.RandPages += int64(len(rids))
				o.counters.Tuples += int64(len(rids))
				for _, rid := range rids {
					if err := o.probe(o.oBuf, int(rid)); err != nil {
						return nil, err
					}
				}
			}
		}
		if o.out.Len() > 0 {
			return o.out, nil
		}
	}
}

func (o *inlJoinOp) Close() {
	if o.outer != nil {
		o.outer.Close()
	}
	putBatch(o.out)
	o.out = nil
}

// StarDim describes one dimension arm of a StarSemiJoin: the (filtered)
// dimension scan, the dimension's primary-key column, and the fact-table
// foreign-key column pointing at it.
type StarDim struct {
	Scan   Node // produces the selected dimension rows
	DimPK  expr.ColumnRef
	FactFK string // fact column with a secondary index
}

// StarSemiJoin is the sophisticated star-query strategy of Experiment 3:
// for each dimension, the fact table's foreign-key index converts the
// selected dimension keys into a fact RID list (a semijoin); the per-
// dimension RID lists are intersected; only the surviving fact rows are
// fetched; finally each fact row is joined back to its dimension rows.
// Output rows are fact-row values followed by each dimension's row values
// in Dims order.
type StarSemiJoin struct {
	Fact     string
	Dims     []StarDim
	Residual expr.Expr // over the combined row
}

// Schema implements Node.
func (j *StarSemiJoin) Schema(ctx *Context) (expr.RelSchema, error) {
	_, fs, err := tableAndSchema(ctx, j.Fact)
	if err != nil {
		return expr.RelSchema{}, err
	}
	out := fs
	for _, d := range j.Dims {
		ds, err := d.Scan.Schema(ctx)
		if err != nil {
			return expr.RelSchema{}, err
		}
		out = out.Concat(ds)
	}
	return out, nil
}

// Describe implements Node.
func (j *StarSemiJoin) Describe() string {
	return fmt.Sprintf("StarSemiJoin(%s, %d dims)", j.Fact, len(j.Dims))
}

// Execute implements Node.
func (j *StarSemiJoin) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, j, counters)
}

// Stream implements Node.
func (j *StarSemiJoin) Stream() Operator { return &starSemiJoinOp{node: j} }

// starDimState carries what the fetch phase needs from one dimension arm:
// the selected dimension rows keyed by primary key, and the fact column
// ordinal of the foreign key pointing at them.
type starDimState struct {
	rowsByPK map[int64]value.Row
	fkIdx    int
}

// semijoinDim converts one dimension's selected rows into a sorted fact
// RID list via the fact table's foreign-key index, charging the index
// seeks and RID-list construction. Shared by the streaming and
// materialized paths; i is the dimension ordinal for error messages.
func (j *StarSemiJoin) semijoinDim(ctx *Context, i int, d StarDim, fact *storage.Table, dimSchema expr.RelSchema, dimRows []value.Row, counters *cost.Counters) (starDimState, []int32, error) {
	pkIdx, err := dimSchema.Resolve(d.DimPK)
	if err != nil {
		return starDimState{}, nil, fmt.Errorf("engine: StarSemiJoin dim %d key: %v", i, err)
	}
	ix, ok := ctx.Indexes.Lookup(j.Fact, d.FactFK)
	if !ok {
		return starDimState{}, nil, fmt.Errorf("engine: StarSemiJoin: no index on %s.%s", j.Fact, d.FactFK)
	}
	byPK := make(map[int64]value.Row, len(dimRows))
	var rids []int32
	for _, row := range dimRows {
		pk := row[pkIdx].I
		byPK[pk] = row
		counters.IndexSeeks++
		matches, scanned := ix.Equal(pk)
		counters.IndexEntries += int64(scanned)
		rids = append(rids, matches...)
	}
	sort.Slice(rids, func(a, b int) bool { return rids[a] < rids[b] })
	counters.Tuples += int64(len(rids)) // RID list construction CPU
	fkIdx := fact.Schema().ColumnIndex(d.FactFK)
	if fkIdx < 0 {
		return starDimState{}, nil, fmt.Errorf("engine: fact table %q has no column %q", j.Fact, d.FactFK)
	}
	return starDimState{rowsByPK: byPK, fkIdx: fkIdx}, rids, nil
}

// starSemiJoinOp runs every dimension semijoin and the RID intersection at
// Open (the semijoins are inherently blocking), then streams the surviving
// fact-row fetches, charging each random page as the row is pulled.
type starSemiJoinOp struct {
	node      *StarSemiJoin
	counters  *cost.Counters
	fact      *storage.Table
	states    []starDimState
	surviving []int32
	next      int
	pred      *expr.Bound
	factBuf   value.Row
	combined  value.Row
	out       *Batch
}

func (o *starSemiJoinOp) Open(ctx *Context, counters *cost.Counters) error {
	j := o.node
	if len(j.Dims) == 0 {
		return fmt.Errorf("engine: StarSemiJoin(%s) with no dimensions", j.Fact)
	}
	fact, factSchema, err := tableAndSchema(ctx, j.Fact)
	if err != nil {
		return err
	}
	outSchema := factSchema
	states := make([]starDimState, len(j.Dims))
	ridLists := make([][]int32, len(j.Dims))
	for i, d := range j.Dims {
		dimSchema, err := d.Scan.Schema(ctx)
		if err != nil {
			return err
		}
		dimRows, err := openAndDrain(ctx, d.Scan, counters)
		if err != nil {
			return err
		}
		st, rids, err := j.semijoinDim(ctx, i, d, fact, dimSchema, dimRows, counters)
		if err != nil {
			return err
		}
		states[i] = st
		ridLists[i] = rids
		outSchema = outSchema.Concat(dimSchema)
	}
	o.pred, err = bindFilter(j.Residual, outSchema)
	if err != nil {
		return err
	}
	o.counters = counters
	o.fact = fact
	o.states = states
	o.surviving = intersectSorted(ridLists)
	o.factBuf = make(value.Row, len(factSchema.Fields))
	o.combined = make(value.Row, 0, len(outSchema.Fields))
	o.out = getBatch(outSchema)
	return nil
}

func (o *starSemiJoinOp) Next() (*Batch, error) {
	for o.next < len(o.surviving) {
		end := o.next + BatchSize
		if end > len(o.surviving) {
			end = len(o.surviving)
		}
		o.out.Reset()
		for _, rid := range o.surviving[o.next:end] {
			o.counters.RandPages++
			o.counters.Tuples++
			o.fact.ReadRow(int(rid), o.factBuf)
			combined := append(o.combined[:0], o.factBuf...)
			complete := true
			for _, st := range o.states {
				dimRow, ok := st.rowsByPK[o.factBuf[st.fkIdx].I]
				if !ok {
					complete = false
					break
				}
				combined = append(combined, dimRow...)
			}
			if !complete {
				continue
			}
			ok, err := o.pred.Eval(combined)
			if err != nil {
				return nil, err
			}
			if ok {
				o.out.AppendRow(combined)
			}
		}
		o.next = end
		if o.out.Len() > 0 {
			return o.out, nil
		}
	}
	return nil, nil
}

func (o *starSemiJoinOp) Close() {
	putBatch(o.out)
	o.out = nil
}

func intersectSorted(lists [][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	result := lists[0]
	for _, l := range lists[1:] {
		var out []int32
		i, j := 0, 0
		for i < len(result) && j < len(l) {
			switch {
			case result[i] < l[j]:
				i++
			case result[i] > l[j]:
				j++
			default:
				out = append(out, result[i])
				i++
				j++
			}
		}
		result = out
		if len(result) == 0 {
			break
		}
	}
	return result
}
