package engine

import (
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/testkit"
)

// TestCountersAccumulateAcrossNestedOperators executes a three-deep plan
// (Sort over Filter over SeqScan) with one shared Counters and checks that
// every level contributed: the scan its pages and tuples, the filter its
// CPU on the scan's survivors, the sort its sorted tuples.
func TestCountersAccumulateAcrossNestedOperators(t *testing.T) {
	db, ctx := testDB(t, 10, 6, 5) // 60 lineitems
	lt := testkit.Table(db, "lineitem")

	pred := testkit.Expr("l_ship < 50")
	plan := &Sort{
		Input: &Filter{Input: &SeqScan{Table: "lineitem"}, Pred: pred},
		By:    []SortKey{{Col: expr.ColumnRef{Column: "l_price"}}},
	}
	res, c, elapsed, err := Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	matching := len(naiveSelect(t, db, "lineitem", pred))
	if matching == 0 || matching == lt.NumRows() {
		t.Fatalf("degenerate predicate: %d of %d rows match", matching, lt.NumRows())
	}

	// Scan level: every page read once, every tuple touched once.
	if c.SeqPages != int64(lt.NumPages()) {
		t.Errorf("SeqPages = %d, want %d", c.SeqPages, lt.NumPages())
	}
	// CPU: the scan touches every row, and the unfiltered scan output is
	// the filter's input, so the filter touches every row again.
	wantTuples := int64(2 * lt.NumRows())
	if c.Tuples != wantTuples {
		t.Errorf("Tuples = %d, want %d (scan + filter over %d rows each)",
			c.Tuples, wantTuples, lt.NumRows())
	}
	// Sort level: exactly the filtered rows pass through the sort.
	if c.SortTuples != int64(matching) {
		t.Errorf("SortTuples = %d, want %d", c.SortTuples, matching)
	}
	// Root: Run charges output for the final result only.
	if c.Output != int64(len(res.Rows)) || len(res.Rows) != matching {
		t.Errorf("Output = %d, rows = %d, want %d", c.Output, len(res.Rows), matching)
	}
	if elapsed != ctx.Model.Time(c) {
		t.Errorf("elapsed %g != Model.Time(counters) %g", elapsed, ctx.Model.Time(c))
	}
	if !(elapsed > 0) {
		t.Errorf("elapsed = %g, want positive", elapsed)
	}
}

// TestCountersNestedEqualsSumOfParts runs a join plan whole, then runs its
// two inputs separately, and checks the whole's counters are the inputs'
// sum plus the join's own work — the invariant the counterthread analyzer
// exists to protect.
func TestCountersNestedEqualsSumOfParts(t *testing.T) {
	_, ctx := testDB(t, 8, 4, 5)

	build := &SeqScan{Table: "orders"}
	probe := &SeqScan{Table: "lineitem"}
	join := &HashJoin{
		Build:    build,
		Probe:    probe,
		BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	}

	var whole cost.Counters
	jRes, err := join.Execute(ctx, &whole)
	if err != nil {
		t.Fatal(err)
	}
	if len(jRes.Rows) == 0 {
		t.Fatal("join produced no rows")
	}

	var parts cost.Counters
	bRes, err := build.Execute(ctx, &parts)
	if err != nil {
		t.Fatal(err)
	}
	pRes, err := probe.Execute(ctx, &parts)
	if err != nil {
		t.Fatal(err)
	}

	// The join's own contribution on top of its inputs: one hash insert
	// per build row, one probe per probe row, one CPU charge per output.
	parts.Add(cost.Counters{
		HashBuilds: int64(len(bRes.Rows)),
		HashProbes: int64(len(pRes.Rows)),
		Tuples:     int64(len(jRes.Rows)),
	})
	if whole != parts {
		t.Errorf("nested counters %v != sum of parts %v", whole, parts)
	}
}
