package engine

// HashJoin as a morsel source: how an entire scan→hashjoin pipeline runs
// under one Exchange instead of parallelizing only the leaf.
//
// The split follows the same blocking/streaming line the serial operator
// draws. Everything hashJoinOp.Open does — schema resolution, draining
// the build side, building the hash table — happens once on the
// coordinator in openMorsels, charged to the shared counters exactly as
// the serial Open charges them (the table build itself is partitioned
// across dop workers when large enough, but it completes before any
// morsel runs and charges nothing from worker goroutines). The streaming
// phase — probe and emit — becomes the morsel work: each probe morsel's
// surviving rows are joined against the finished table, which is
// read-only by then and safe to share across workers.
//
// Counter exactness holds because the join's per-morsel charges are
// tiling-invariant on top of the probe's own (already tiling-invariant)
// charges: HashProbes counts surviving probe rows and Tuples counts
// matches, and both are per-row properties independent of how the rows
// are split into morsels. Row order is preserved because Exchange
// re-sequences morsels by index and, within a morsel, probe rows are
// joined in probe order with each key's build rows in build-input order —
// the serial nesting exactly.

import (
	"fmt"
	"sync/atomic"

	"robustqo/internal/cost"
	"robustqo/internal/value"
)

// openMorsels implements morselSource. It performs the serial operator's
// blocking Open work on the coordinator — including the (possibly
// partitioned) build — and returns a runner that joins the probe side's
// morsels against the finished table.
func (j *HashJoin) openMorsels(ctx *Context, counters *cost.Counters, dop int) (morselRunner, error) {
	buildSchema, err := j.Build.Schema(ctx)
	if err != nil {
		return nil, err
	}
	probeSchema, err := j.Probe.Schema(ctx)
	if err != nil {
		return nil, err
	}
	bIdx, err := buildSchema.Resolve(j.BuildCol)
	if err != nil {
		return nil, fmt.Errorf("engine: HashJoin build key: %v", err)
	}
	pIdx, err := probeSchema.Resolve(j.ProbeCol)
	if err != nil {
		return nil, fmt.Errorf("engine: HashJoin probe key: %v", err)
	}
	probeSrc, ok := morselSourceOf(j.Probe)
	if !ok {
		return nil, fmt.Errorf("engine: HashJoin probe %s is not morselizable", j.Probe.Describe())
	}
	buildRows, err := openAndDrainArena(ctx, j.Build, counters)
	if err != nil {
		return nil, err
	}
	table := buildJoinTable(buildRows, bIdx, j.BuildRowsEst, dop)
	table.recordMetrics(ctx.Metrics)
	counters.HashBuilds += int64(len(buildRows))
	probeRunner, err := probeSrc.openMorsels(ctx, counters, dop)
	if err != nil {
		return nil, err
	}
	return &hashJoinMorselRunner{node: j, table: table, pIdx: pIdx, probe: probeRunner}, nil
}

// hashJoinMorselRunner joins each probe morsel against the shared,
// read-only build table. probeRows/probeMorsels accumulate the bypassed
// probe node's actuals for feedStats.
type hashJoinMorselRunner struct {
	node  *HashJoin
	table *joinTable
	pIdx  int
	probe morselRunner

	probeRows    atomic.Int64
	probeMorsels atomic.Int64
}

func (r *hashJoinMorselRunner) numMorsels() int { return r.probe.numMorsels() }

func (r *hashJoinMorselRunner) newWorker() (morselWorker, error) {
	pw, err := r.probe.newWorker()
	if err != nil {
		return nil, err
	}
	return &hashJoinMorselWorker{r: r, probe: pw}, nil
}

// feedStats implements morselStatsFeeder: the probe node's own Stream was
// bypassed by the worker pool, so an Instrumented probe gets its actual
// row and morsel totals here, at the Exchange barrier.
func (r *hashJoinMorselRunner) feedStats() {
	if inst, ok := r.node.Probe.(*Instrumented); ok && inst.Stats != nil {
		inst.Stats.Rows += r.probeRows.Load()
		inst.Stats.Batches += r.probeMorsels.Load()
	}
	if f, ok := r.probe.(morselStatsFeeder); ok {
		f.feedStats()
	}
}

type hashJoinMorselWorker struct {
	r     *hashJoinMorselRunner
	probe morselWorker
}

// runMorsel joins one probe morsel against the shared table. Output rows
// are concatenated into arena slabs — one allocation per arenaChunk
// values rather than one per match — and the row-header slice is sized
// to the probe count up front, which covers the common at-most-one-match
// joins without a single growth step.
//
//qo:hotpath
func (w *hashJoinMorselWorker) runMorsel(m int, counters *cost.Counters) ([]value.Row, error) {
	probeRows, err := w.probe.runMorsel(m, counters)
	if err != nil {
		return nil, err
	}
	w.r.probeRows.Add(int64(len(probeRows)))
	w.r.probeMorsels.Add(1)
	// Same charges as hashJoinOp.Next: one probe per surviving probe row,
	// one tuple per match; totals are independent of the morsel tiling.
	counters.HashProbes += int64(len(probeRows))
	table := w.r.table
	rows := make([]value.Row, 0, len(probeRows))
	var arena []value.Value
	for _, pRow := range probeRows {
		for idx := table.first(pRow[w.r.pIdx]); idx >= 0; idx = table.next[idx] {
			counters.Tuples++
			bRow := table.rows[idx]
			if need := len(bRow) + len(pRow); cap(arena)-len(arena) < need {
				//qo:alloc-ok one slab per arenaChunk values, amortized across matches
				arena = make([]value.Value, 0, max(arenaChunk, need))
			}
			start := len(arena)
			arena = append(arena, bRow...)
			arena = append(arena, pRow...)
			rows = append(rows, arena[start:len(arena):len(arena)])
		}
	}
	return rows, nil
}

func (w *hashJoinMorselWorker) release() { w.probe.release() }
