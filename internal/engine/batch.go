package engine

import (
	"sync"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// BatchSize is the target number of rows per Batch. Operators may return
// smaller batches (the tail of a table, heavily filtered input) and joins
// may exceed it when a single input batch fans out, but pulls advance the
// pipeline roughly this many rows at a time.
const BatchSize = 1024

// Batch is a column-oriented slice of up to ~BatchSize rows flowing
// between streaming operators. Column c of row r lives at Cols()[c][r];
// every column slice has length Len().
//
// A batch returned by Operator.Next is owned by the producer and is valid
// only until the producer's next Next or Close call. Consumers may mutate
// it in place (Gather, Truncate) but must not retain references across
// pulls; rows that outlive the pull must be copied out (CloneRow).
type Batch struct {
	Schema expr.RelSchema
	cols   [][]value.Value
	n      int
}

// NewBatch returns an empty batch for the schema with capacity for
// BatchSize rows per column.
func NewBatch(schema expr.RelSchema) *Batch {
	cols := make([][]value.Value, len(schema.Fields))
	for i := range cols {
		cols[i] = make([]value.Value, 0, BatchSize)
	}
	return &Batch{Schema: schema, cols: cols}
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Cols exposes the column vectors for batch expression evaluation. The
// slices are owned by the batch; callers must not grow them.
func (b *Batch) Cols() [][]value.Value { return b.cols }

// Reset empties the batch, keeping column capacity.
func (b *Batch) Reset() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.n = 0
}

// AppendRow appends one row, copying its values into the columns.
//
//qo:hotpath
func (b *Batch) AppendRow(row value.Row) {
	for i, v := range row {
		b.cols[i] = append(b.cols[i], v)
	}
	b.n++
}

// appendConcat appends the concatenation of two row fragments as one row.
//
//qo:hotpath
func (b *Batch) appendConcat(left, right value.Row) {
	for i, v := range left {
		b.cols[i] = append(b.cols[i], v)
	}
	for i, v := range right {
		b.cols[len(left)+i] = append(b.cols[len(left)+i], v)
	}
	b.n++
}

// appendConcatFrom appends the concatenation of a row fragment and row r
// of src as one row, reading src's columns directly so the right-hand
// fragment never has to be materialized as a value.Row first.
//
//qo:hotpath
func (b *Batch) appendConcatFrom(left value.Row, src *Batch, r int) {
	for i, v := range left {
		b.cols[i] = append(b.cols[i], v)
	}
	n := len(left)
	for c := range src.cols {
		b.cols[n+c] = append(b.cols[n+c], src.cols[c][r])
	}
	b.n++
}

// Row copies row i into dst, which must have one slot per column.
func (b *Batch) Row(i int, dst value.Row) {
	for c := range b.cols {
		dst[c] = b.cols[c][i]
	}
}

// CloneRow returns a freshly allocated copy of row i.
func (b *Batch) CloneRow(i int) value.Row {
	out := make(value.Row, len(b.cols))
	b.Row(i, out)
	return out
}

// Gather compacts the batch in place to the rows named by the selection
// vector sel, which must be strictly increasing row indices < Len().
//
//qo:hotpath
func (b *Batch) Gather(sel []int) {
	for c := range b.cols {
		col := b.cols[c]
		for out, in := range sel {
			col[out] = col[in]
		}
		b.cols[c] = col[:len(sel)]
	}
	b.n = len(sel)
}

// Truncate drops all rows past the first n.
func (b *Batch) Truncate(n int) {
	if n >= b.n {
		return
	}
	for c := range b.cols {
		b.cols[c] = b.cols[c][:n]
	}
	b.n = n
}

// batchPool recycles Batch structs and their column backing arrays
// between operator lifetimes. An operator that owns its output batch
// takes one with getBatch at Open and returns it with putBatch at Close;
// batches that merely alias a child's columns (Filter, the non-duplicating
// Project view) are never pooled. Pooled columns keep their last values
// until overwritten, so retention is bounded by the pool's own lifetime —
// the same bound NewBatch-per-Open had, minus the reallocations.
var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// getBatch returns an empty batch for the schema, reusing pooled column
// storage when available. Pair with putBatch at operator Close.
func getBatch(schema expr.RelSchema) *Batch {
	b, ok := batchPool.Get().(*Batch)
	if !ok {
		b = &Batch{}
	}
	b.Schema = schema
	n := len(schema.Fields)
	if cap(b.cols) < n {
		old := b.cols
		b.cols = make([][]value.Value, n)
		copy(b.cols, old)
	}
	b.cols = b.cols[:n]
	for i := range b.cols {
		if b.cols[i] == nil {
			b.cols[i] = make([]value.Value, 0, BatchSize)
		} else {
			b.cols[i] = b.cols[i][:0]
		}
	}
	b.n = 0
	return b
}

// putBatch returns a batch to the pool. Safe on nil, so Close paths can
// call it unconditionally.
func putBatch(b *Batch) {
	if b == nil {
		return
	}
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.n = 0
	b.Schema = expr.RelSchema{}
	batchPool.Put(b)
}

// identSel returns the identity selection vector [0, n), reusing buf's
// storage when it is large enough. The make runs once per high-water
// mark, not per call.
//
//qo:hotpath
func identSel(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// Operator is the streaming execution contract every physical operator
// implements: a pull-based Open/Next/Close iterator over Batches.
//
// Open binds the operator against the runtime context and captures the
// counters pointer all subsequent work is charged to; pipeline breakers
// (hash-join build, merge join, sort, aggregation, star dimension arms)
// consume their blocking inputs during Open. Next returns the next
// non-empty batch, or nil when the stream is exhausted; streaming
// operators charge page and tuple work incrementally as batches are
// actually pulled, which is what lets a LIMIT above them terminate the
// pipeline early. Close releases held inputs; it is safe to call after a
// failed Open and more than once.
type Operator interface {
	Open(ctx *Context, counters *cost.Counters) error
	Next() (*Batch, error)
	Close()
}

// execStream drains a node's streaming operator into a materialized
// Result. It is the shared body of every Node.Execute, keeping the public
// execute-to-Result API while the real work happens batch-at-a-time.
func execStream(ctx *Context, n Node, counters *cost.Counters) (*Result, error) {
	schema, err := n.Schema(ctx)
	if err != nil {
		return nil, err
	}
	op := n.Stream()
	defer op.Close()
	if err := op.Open(ctx, counters); err != nil {
		return nil, err
	}
	rows, err := drainRows(op)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

// drainRows pulls an opened operator to exhaustion, cloning every row out
// of the transient batches.
func drainRows(op Operator) ([]value.Row, error) {
	var rows []value.Row
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.CloneRow(i))
		}
	}
}

// openAndDrain runs a blocking child to completion for pipeline breakers:
// it opens the child against the shared counters, drains it, and closes it
// before returning.
func openAndDrain(ctx *Context, n Node, counters *cost.Counters) ([]value.Row, error) {
	op := n.Stream()
	defer op.Close()
	if err := op.Open(ctx, counters); err != nil {
		return nil, err
	}
	return drainRows(op)
}

// arenaChunk is the value count of one arena slab in openAndDrainArena.
const arenaChunk = 8192

// openAndDrainArena is openAndDrain for consumers that keep the whole row
// set alive together (the hash-join build side): instead of one heap
// allocation per row, row storage comes from shared arena slabs — one
// allocation per arenaChunk values. Rows are views into a slab and must be
// treated as immutable; a slab is never grown once rows point into it.
func openAndDrainArena(ctx *Context, n Node, counters *cost.Counters) ([]value.Row, error) {
	op := n.Stream()
	defer op.Close()
	if err := op.Open(ctx, counters); err != nil {
		return nil, err
	}
	var rows []value.Row
	var arena []value.Value
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		rows, arena = appendArenaRows(rows, arena, b)
	}
}

// appendArenaRows clones the batch's rows onto rows, drawing row storage
// from shared arena slabs — one allocation per arenaChunk values instead
// of one per row. The appended rows are immutable views into the slab;
// callers thread the returned arena through successive calls so a slab's
// free tail carries across batches.
//
//qo:hotpath
func appendArenaRows(rows []value.Row, arena []value.Value, b *Batch) ([]value.Row, []value.Value) {
	cols := b.Cols()
	w := len(cols)
	if need := b.Len() * w; cap(arena)-len(arena) < need {
		arena = make([]value.Value, 0, max(arenaChunk, need))
	}
	for i := 0; i < b.Len(); i++ {
		start := len(arena)
		for c := 0; c < w; c++ {
			arena = append(arena, cols[c][i])
		}
		rows = append(rows, arena[start:len(arena):len(arena)])
	}
	return rows, arena
}
