package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/index"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// This file preserves the pre-streaming row-at-a-time engine verbatim as a
// reference implementation. The streaming pipeline (batch.go and the
// per-operator *Op types) must produce identical rows and, on full drains,
// byte-identical cost.Counters; the equivalence tests and
// BenchmarkExecStreamVsMaterialize hold the two paths against each other.

// ExecuteMaterialized runs a plan with the materialize-everything engine:
// every operator fully computes its input before doing any work of its
// own. It exists for equivalence testing and allocation benchmarking; the
// production path is Node.Execute, which streams.
func ExecuteMaterialized(ctx *Context, n Node, counters *cost.Counters) (*Result, error) {
	switch t := n.(type) {
	case *SeqScan:
		return t.runMaterialized(ctx, counters)
	case *IndexRangeScan:
		return t.runMaterialized(ctx, counters)
	case *IndexIntersect:
		return t.runMaterialized(ctx, counters)
	case *Filter:
		return t.runMaterialized(ctx, counters)
	case *Project:
		return t.runMaterialized(ctx, counters)
	case *Aggregate:
		return t.runMaterialized(ctx, counters)
	case *Sort:
		return t.runMaterialized(ctx, counters)
	case *Limit:
		return t.runMaterialized(ctx, counters)
	case *HashJoin:
		return t.runMaterialized(ctx, counters)
	case *MergeJoin:
		return t.runMaterialized(ctx, counters)
	case *INLJoin:
		return t.runMaterialized(ctx, counters)
	case *StarSemiJoin:
		return t.runMaterialized(ctx, counters)
	case *Exchange:
		// Exchange only changes who executes the source, never what it
		// computes; the materialized reference has no parallel analogue.
		return ExecuteMaterialized(ctx, t.Source, counters)
	default:
		return nil, fmt.Errorf("engine: no materialized implementation for %T", n)
	}
}

func (s *SeqScan) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	pred, err := bindFilter(s.Filter, schema)
	if err != nil {
		return nil, err
	}
	nCols := len(schema.Fields)
	buf := make(value.Row, nCols)
	var rows []value.Row
	// Walk the surviving shards' spans; the per-span first-tuple-in-window
	// page charge sums to exactly NumPages when nothing is pruned.
	const per = storage.TuplesPerPage
	for _, sp := range scanSpans(t, s.Partitions) {
		counters.SeqPages += int64((sp.hi+per-1)/per - (sp.lo+per-1)/per)
		counters.Tuples += int64(sp.hi - sp.lo)
		for r := sp.lo; r < sp.hi; r++ {
			t.ReadRow(r, buf)
			ok, err := pred.Eval(buf)
			if err != nil {
				return nil, fmt.Errorf("engine: SeqScan(%s): %v", s.Table, err)
			}
			if ok {
				rows = append(rows, buf.Clone())
			}
		}
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

func (s *IndexRangeScan) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	ix, ok := ctx.Indexes.Lookup(s.Table, s.Range.Column)
	if !ok {
		return nil, fmt.Errorf("engine: no index on %s.%s", s.Table, s.Range.Column)
	}
	pred, err := bindFilter(s.Residual, schema)
	if err != nil {
		return nil, err
	}
	counters.IndexSeeks++
	rids, scanned := ix.Range(s.Range.Lo, s.Range.Hi)
	counters.IndexEntries += int64(scanned)
	rids = pruneRids(t, s.Partitions, rids)
	counters.RandPages += int64(len(rids))
	counters.Tuples += int64(len(rids))
	rows, err := fetchFiltered(t, schema, rids, pred)
	if err != nil {
		return nil, fmt.Errorf("engine: IndexRangeScan(%s): %v", s.Table, err)
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

func (s *IndexIntersect) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(s.Ranges) == 0 {
		return nil, fmt.Errorf("engine: IndexIntersect(%s) with no ranges", s.Table)
	}
	t, schema, err := tableAndSchema(ctx, s.Table)
	if err != nil {
		return nil, err
	}
	pred, err := bindFilter(s.Residual, schema)
	if err != nil {
		return nil, err
	}
	lists := make([][]int32, len(s.Ranges))
	for i, r := range s.Ranges {
		ix, ok := ctx.Indexes.Lookup(s.Table, r.Column)
		if !ok {
			return nil, fmt.Errorf("engine: no index on %s.%s", s.Table, r.Column)
		}
		counters.IndexSeeks++
		rids, scanned := ix.Range(r.Lo, r.Hi)
		counters.IndexEntries += int64(scanned)
		counters.Tuples += int64(scanned) // intersection CPU
		lists[i] = rids
	}
	rids := pruneRids(t, s.Partitions, index.Intersect(lists...))
	counters.RandPages += int64(len(rids))
	counters.Tuples += int64(len(rids))
	rows, err := fetchFiltered(t, schema, rids, pred)
	if err != nil {
		return nil, fmt.Errorf("engine: IndexIntersect(%s): %v", s.Table, err)
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

func (f *Filter) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	in, err := ExecuteMaterialized(ctx, f.Input, counters)
	if err != nil {
		return nil, err
	}
	pred, err := bindFilter(f.Pred, in.Schema)
	if err != nil {
		return nil, err
	}
	counters.Tuples += int64(len(in.Rows))
	var rows []value.Row
	for _, r := range in.Rows {
		ok, err := pred.Eval(r)
		if err != nil {
			return nil, fmt.Errorf("engine: Filter: %v", err)
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return &Result{Schema: in.Schema, Rows: rows}, nil
}

func (p *Project) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	in, err := ExecuteMaterialized(ctx, p.Input, counters)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(p.Cols))
	fields := make([]expr.Field, len(p.Cols))
	for i, c := range p.Cols {
		idx, err := in.Schema.Resolve(c)
		if err != nil {
			return nil, fmt.Errorf("engine: Project: %v", err)
		}
		idxs[i] = idx
		fields[i] = in.Schema.Fields[idx]
	}
	counters.Tuples += int64(len(in.Rows))
	rows := make([]value.Row, len(in.Rows))
	for r, row := range in.Rows {
		out := make(value.Row, len(idxs))
		for i, idx := range idxs {
			out[i] = row[idx]
		}
		rows[r] = out
	}
	return &Result{Schema: expr.RelSchema{Fields: fields}, Rows: rows}, nil
}

func (a *Aggregate) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(a.Aggs) == 0 && len(a.GroupBy) == 0 {
		return nil, fmt.Errorf("engine: Aggregate with no aggregates and no group keys")
	}
	in, err := ExecuteMaterialized(ctx, a.Input, counters)
	if err != nil {
		return nil, err
	}
	outSchema, err := a.outSchema(in.Schema)
	if err != nil {
		return nil, err
	}
	groupIdxs := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groupIdxs[i], err = in.Schema.Resolve(g)
		if err != nil {
			return nil, fmt.Errorf("engine: Aggregate group key: %v", err)
		}
	}
	argFns := make([]*expr.BoundScalar, len(a.Aggs))
	for i, spec := range a.Aggs {
		if spec.Arg == nil {
			if spec.Func != Count {
				return nil, fmt.Errorf("engine: %s requires an argument", spec.Func)
			}
			continue
		}
		argFns[i], err = expr.BindScalar(spec.Arg, in.Schema)
		if err != nil {
			return nil, fmt.Errorf("engine: Aggregate arg: %v", err)
		}
	}
	counters.Tuples += int64(len(in.Rows))
	counters.HashBuilds += int64(len(in.Rows))

	groups := make(map[string]*aggState)
	var order []string
	keyOf := func(row value.Row) string {
		if len(groupIdxs) == 0 {
			return ""
		}
		var sb strings.Builder
		for _, gi := range groupIdxs {
			sb.WriteString(row[gi].String())
			sb.WriteByte('\x00')
		}
		return sb.String()
	}
	for _, row := range in.Rows {
		k := keyOf(row)
		st, ok := groups[k]
		if !ok {
			st = a.newAggState(groupIdxs, row)
			groups[k] = st
			order = append(order, k)
		}
		st.count++
		for i, spec := range a.Aggs {
			if spec.Func == Count && spec.Arg == nil {
				continue
			}
			v, err := argFns[i].Eval(row)
			if err != nil {
				return nil, fmt.Errorf("engine: Aggregate: %v", err)
			}
			if err := st.accumulate(i, spec.Func, v); err != nil {
				return nil, err
			}
		}
	}
	// A global aggregate over empty input still yields one row.
	if len(groupIdxs) == 0 && len(groups) == 0 {
		groups[""] = a.newAggState(groupIdxs, nil)
		order = append(order, "")
	}
	sort.Strings(order) // deterministic output order
	rows := make([]value.Row, 0, len(order))
	for _, k := range order {
		rows = append(rows, a.finalize(groups[k], len(outSchema.Fields)))
	}
	return &Result{Schema: outSchema, Rows: rows}, nil
}

func (s *Sort) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(s.By) == 0 {
		return nil, fmt.Errorf("engine: Sort with no keys")
	}
	in, err := ExecuteMaterialized(ctx, s.Input, counters)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(s.By))
	for i, k := range s.By {
		idxs[i], err = in.Schema.Resolve(k.Col)
		if err != nil {
			return nil, fmt.Errorf("engine: Sort key: %v", err)
		}
	}
	// Validate comparability up front so sort.SliceStable cannot panic on
	// mixed types mid-comparison.
	for _, row := range in.Rows {
		for _, idx := range idxs {
			if len(in.Rows) > 0 {
				if _, err := value.Compare(row[idx], in.Rows[0][idx]); err != nil {
					return nil, fmt.Errorf("engine: Sort: %v", err)
				}
			}
		}
	}
	rows := make([]value.Row, len(in.Rows))
	copy(rows, in.Rows)
	counters.SortTuples += int64(len(rows))
	sort.SliceStable(rows, func(a, b int) bool {
		for ki, idx := range idxs {
			// Comparability was validated above, so the error is
			// impossible here (incomparable pairs sort as equal).
			c, _ := value.Compare(rows[a][idx], rows[b][idx])
			if c == 0 {
				continue
			}
			if s.By[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	// The materialized path pays the full sort regardless; TopK only trims
	// the output so both paths return the same rows.
	if s.TopK > 0 && len(rows) > s.TopK {
		rows = rows[:s.TopK]
	}
	return &Result{Schema: in.Schema, Rows: rows}, nil
}

func (l *Limit) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	if l.N < 0 {
		return nil, fmt.Errorf("engine: negative limit %d", l.N)
	}
	in, err := ExecuteMaterialized(ctx, l.Input, counters)
	if err != nil {
		return nil, err
	}
	rows := in.Rows
	if len(rows) > l.N {
		rows = rows[:l.N]
	}
	return &Result{Schema: in.Schema, Rows: rows}, nil
}

func (j *HashJoin) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	build, err := ExecuteMaterialized(ctx, j.Build, counters)
	if err != nil {
		return nil, err
	}
	probe, err := ExecuteMaterialized(ctx, j.Probe, counters)
	if err != nil {
		return nil, err
	}
	bIdx, err := build.Schema.Resolve(j.BuildCol)
	if err != nil {
		return nil, fmt.Errorf("engine: HashJoin build key: %v", err)
	}
	pIdx, err := probe.Schema.Resolve(j.ProbeCol)
	if err != nil {
		return nil, fmt.Errorf("engine: HashJoin probe key: %v", err)
	}
	table := make(map[any][]value.Row, len(build.Rows))
	for _, row := range build.Rows {
		k := row[bIdx].Key()
		table[k] = append(table[k], row)
	}
	counters.HashBuilds += int64(len(build.Rows))
	counters.HashProbes += int64(len(probe.Rows))
	outSchema := build.Schema.Concat(probe.Schema)
	var rows []value.Row
	for _, pRow := range probe.Rows {
		for _, bRow := range table[pRow[pIdx].Key()] {
			out := make(value.Row, 0, len(bRow)+len(pRow))
			out = append(out, bRow...)
			out = append(out, pRow...)
			rows = append(rows, out)
		}
	}
	counters.Tuples += int64(len(rows))
	return &Result{Schema: outSchema, Rows: rows}, nil
}

func (j *MergeJoin) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	left, err := ExecuteMaterialized(ctx, j.Left, counters)
	if err != nil {
		return nil, err
	}
	right, err := ExecuteMaterialized(ctx, j.Right, counters)
	if err != nil {
		return nil, err
	}
	lIdx, err := left.Schema.Resolve(j.LeftCol)
	if err != nil {
		return nil, fmt.Errorf("engine: MergeJoin left key: %v", err)
	}
	rIdx, err := right.Schema.Resolve(j.RightCol)
	if err != nil {
		return nil, fmt.Errorf("engine: MergeJoin right key: %v", err)
	}
	lRows, err := sortedByKey(left.Rows, lIdx, j.LeftSorted)
	if err != nil {
		return nil, err
	}
	if !j.LeftSorted {
		counters.SortTuples += int64(len(lRows))
	}
	rRows, err := sortedByKey(right.Rows, rIdx, j.RightSorted)
	if err != nil {
		return nil, err
	}
	if !j.RightSorted {
		counters.SortTuples += int64(len(rRows))
	}
	counters.Tuples += int64(len(lRows) + len(rRows))
	outSchema := left.Schema.Concat(right.Schema)
	rows := mergeRows(lRows, rRows, lIdx, rIdx)
	counters.Tuples += int64(len(rows))
	return &Result{Schema: outSchema, Rows: rows}, nil
}

func (j *INLJoin) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	outer, err := ExecuteMaterialized(ctx, j.Outer, counters)
	if err != nil {
		return nil, err
	}
	inner, innerSchema, err := tableAndSchema(ctx, j.InnerTable)
	if err != nil {
		return nil, err
	}
	oIdx, err := outer.Schema.Resolve(j.OuterCol)
	if err != nil {
		return nil, fmt.Errorf("engine: INLJoin outer key: %v", err)
	}
	outSchema := outer.Schema.Concat(innerSchema)
	pred, err := bindFilter(j.Residual, outSchema)
	if err != nil {
		return nil, err
	}
	usePK := inner.Schema().PrimaryKey == j.InnerCol
	var rows []value.Row
	innerBuf := make(value.Row, len(innerSchema.Fields))
	emit := func(oRow value.Row, rid int) error {
		inner.ReadRow(rid, innerBuf)
		out := make(value.Row, 0, len(oRow)+len(innerBuf))
		out = append(out, oRow...)
		out = append(out, innerBuf...)
		ok, err := pred.Eval(out)
		if err != nil {
			return err
		}
		if ok {
			rows = append(rows, out)
		}
		return nil
	}
	if usePK {
		for _, oRow := range outer.Rows {
			key := oRow[oIdx]
			if !key.Numeric() {
				return nil, fmt.Errorf("engine: INLJoin over non-numeric key %s", key)
			}
			counters.RandPages++
			counters.Tuples++
			rid, ok := inner.LookupPK(key.I)
			if !ok {
				continue
			}
			if err := emit(oRow, rid); err != nil {
				return nil, err
			}
		}
	} else {
		ix, ok := ctx.Indexes.Lookup(j.InnerTable, j.InnerCol)
		if !ok {
			return nil, fmt.Errorf("engine: INLJoin: no index on %s.%s", j.InnerTable, j.InnerCol)
		}
		for _, oRow := range outer.Rows {
			key := oRow[oIdx]
			if !key.Numeric() {
				return nil, fmt.Errorf("engine: INLJoin over non-numeric key %s", key)
			}
			counters.IndexSeeks++
			rids, scanned := ix.Equal(key.I)
			counters.IndexEntries += int64(scanned)
			counters.RandPages += int64(len(rids))
			counters.Tuples += int64(len(rids))
			for _, rid := range rids {
				if err := emit(oRow, int(rid)); err != nil {
					return nil, err
				}
			}
		}
	}
	counters.Tuples += int64(len(rows))
	return &Result{Schema: outSchema, Rows: rows}, nil
}

func (j *StarSemiJoin) runMaterialized(ctx *Context, counters *cost.Counters) (*Result, error) {
	if len(j.Dims) == 0 {
		return nil, fmt.Errorf("engine: StarSemiJoin(%s) with no dimensions", j.Fact)
	}
	fact, factSchema, err := tableAndSchema(ctx, j.Fact)
	if err != nil {
		return nil, err
	}
	outSchema := factSchema
	states := make([]starDimState, len(j.Dims))
	ridLists := make([][]int32, len(j.Dims))
	for i, d := range j.Dims {
		dimRes, err := ExecuteMaterialized(ctx, d.Scan, counters)
		if err != nil {
			return nil, err
		}
		st, rids, err := j.semijoinDim(ctx, i, d, fact, dimRes.Schema, dimRes.Rows, counters)
		if err != nil {
			return nil, err
		}
		states[i] = st
		ridLists[i] = rids
		outSchema = outSchema.Concat(dimRes.Schema)
	}
	pred, err := bindFilter(j.Residual, outSchema)
	if err != nil {
		return nil, err
	}
	surviving := intersectSorted(ridLists)
	counters.RandPages += int64(len(surviving))
	counters.Tuples += int64(len(surviving))
	factBuf := make(value.Row, len(factSchema.Fields))
	var rows []value.Row
	for _, rid := range surviving {
		fact.ReadRow(int(rid), factBuf)
		out := make(value.Row, 0, len(outSchema.Fields))
		out = append(out, factBuf...)
		complete := true
		for _, st := range states {
			dimRow, ok := st.rowsByPK[factBuf[st.fkIdx].I]
			if !ok {
				complete = false
				break
			}
			out = append(out, dimRow...)
		}
		if !complete {
			continue
		}
		ok, err := pred.Eval(out)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, out)
		}
	}
	return &Result{Schema: outSchema, Rows: rows}, nil
}

func zeroIfInf(f float64) float64 {
	if math.IsInf(f, 0) {
		return 0
	}
	return f
}
