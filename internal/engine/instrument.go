package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
)

// Instrumented wraps one plan node with execution-feedback recording:
// per-operator batch and row counts plus Open/Next/Close wall time,
// accumulated into Stats. The wrapper is a pure pass-through for both
// batches and cost counters — instrumenting a plan never changes its
// results or its cost.Counters, a property pinned by a differential
// test over the random SPJ corpus.
type Instrumented struct {
	// Origin is the node exactly as the optimizer built it; estimate
	// lookups (optimizer.Plan.EstimateOf) key on this pointer.
	Origin Node
	// Inner is a shallow copy of Origin whose children were replaced by
	// the wrapped Kids, so every pull through this subtree crosses the
	// wrappers. Leaves keep Inner == Origin.
	Inner Node
	Kids  []*Instrumented
	Stats *obs.OpStats
	// Trace, when non-nil, receives one span per operator lifetime
	// (Open through Close).
	Trace *obs.Trace
}

// Instrument returns an instrumented copy of the plan rooted at root.
// The original tree is left untouched and remains executable.
func Instrument(root Node) *Instrumented { return instrument(root, nil) }

// InstrumentTrace is Instrument with per-operator spans emitted to tr.
func InstrumentTrace(root Node, tr *obs.Trace) *Instrumented { return instrument(root, tr) }

func instrument(n Node, tr *obs.Trace) *Instrumented {
	kids := children(n)
	wrapped := make([]*Instrumented, len(kids))
	asNodes := make([]Node, len(kids))
	for i, k := range kids {
		wrapped[i] = instrument(k, tr)
		asNodes[i] = wrapped[i]
	}
	inner := n
	if len(kids) > 0 {
		inner = replaceChildren(n, asNodes)
	}
	return &Instrumented{Origin: n, Inner: inner, Kids: wrapped, Stats: &obs.OpStats{}, Trace: tr}
}

// replaceChildren returns a shallow copy of n with its children — in
// the order reported by children — replaced by kids. Nodes without
// children are returned unchanged. The switch must mirror children.
func replaceChildren(n Node, kids []Node) Node {
	switch t := n.(type) {
	case *Filter:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Project:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Aggregate:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Sort:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Limit:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Exchange:
		cp := *t
		cp.Source = kids[0]
		return &cp
	case *HashJoin:
		cp := *t
		cp.Build, cp.Probe = kids[0], kids[1]
		return &cp
	case *MergeJoin:
		cp := *t
		cp.Left, cp.Right = kids[0], kids[1]
		return &cp
	case *INLJoin:
		cp := *t
		cp.Outer = kids[0]
		return &cp
	case *StarSemiJoin:
		cp := *t
		cp.Dims = append([]StarDim(nil), t.Dims...)
		for i := range cp.Dims {
			cp.Dims[i].Scan = kids[i]
		}
		return &cp
	default:
		return n
	}
}

// OpName returns the operator-type name of a plan node, used as the
// label for per-operator-type metrics and trace spans.
func OpName(n Node) string {
	switch t := n.(type) {
	case *SeqScan:
		return "SeqScan"
	case *IndexRangeScan:
		return "IndexRangeScan"
	case *IndexIntersect:
		return "IndexIntersect"
	case *HashJoin:
		return "HashJoin"
	case *MergeJoin:
		return "MergeJoin"
	case *INLJoin:
		return "INLJoin"
	case *StarSemiJoin:
		return "StarSemiJoin"
	case *Filter:
		return "Filter"
	case *Project:
		return "Project"
	case *Aggregate:
		return "Aggregate"
	case *Sort:
		return "Sort"
	case *Limit:
		return "Limit"
	case *Exchange:
		return "Exchange"
	case *Instrumented:
		return OpName(t.Inner)
	default:
		d := n.Describe()
		if i := strings.IndexByte(d, '('); i > 0 {
			return d[:i]
		}
		return d
	}
}

// LeafTables returns the base tables of a plan in left-to-right leaf
// order — the join-order signature used for plan-choice metrics.
func LeafTables(root Node) []string {
	switch t := root.(type) {
	case *SeqScan:
		return []string{t.Table}
	case *IndexRangeScan:
		return []string{t.Table}
	case *IndexIntersect:
		return []string{t.Table}
	case *INLJoin:
		return append(LeafTables(t.Outer), t.InnerTable)
	case *StarSemiJoin:
		out := []string{t.Fact}
		for _, d := range t.Dims {
			out = append(out, LeafTables(d.Scan)...)
		}
		return out
	case *Instrumented:
		return LeafTables(t.Inner)
	default:
		var out []string
		for _, c := range children(root) {
			out = append(out, LeafTables(c)...)
		}
		return out
	}
}

// Schema implements Node.
func (n *Instrumented) Schema(ctx *Context) (expr.RelSchema, error) {
	return n.Inner.Schema(ctx)
}

// Execute implements Node.
func (n *Instrumented) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, n, counters)
}

// Stream implements Node.
func (n *Instrumented) Stream() Operator { return &instrumentedOp{node: n} }

// Describe implements Node.
func (n *Instrumented) Describe() string { return n.Inner.Describe() }

// instrumentedOp is the pass-through streaming wrapper: it forwards
// every call to the wrapped operator unchanged — same context, same
// counters pointer, same batches — while timing the calls and counting
// what flows through.
type instrumentedOp struct {
	node   *Instrumented
	inner  Operator
	span   *obs.Span
	closed bool
}

func (o *instrumentedOp) Open(ctx *Context, counters *cost.Counters) error {
	o.span = o.node.Trace.StartSpan("op:" + OpName(o.node.Inner))
	start := time.Now()
	o.inner = o.node.Inner.Stream()
	err := o.inner.Open(ctx, counters)
	o.node.Stats.OpenTime += time.Since(start)
	o.node.Stats.Opens++
	return err
}

func (o *instrumentedOp) Next() (*Batch, error) {
	start := time.Now()
	b, err := o.inner.Next()
	st := o.node.Stats
	st.NextTime += time.Since(start)
	if b != nil {
		st.Batches++
		st.Rows += int64(b.Len())
	}
	return b, err
}

func (o *instrumentedOp) Close() {
	if o.inner != nil {
		start := time.Now()
		o.inner.Close()
		if !o.closed {
			o.closed = true
			o.node.Stats.CloseTime += time.Since(start)
			if o.span != nil {
				o.span.SetAttr("rows", fmt.Sprintf("%d", o.node.Stats.Rows))
				o.span.SetAttr("batches", fmt.Sprintf("%d", o.node.Stats.Batches))
			}
		}
	}
	o.span.End()
}

// AnalyzeOptions configures ExplainAnalyze rendering.
type AnalyzeOptions struct {
	// EstimateOf returns the optimizer's planning-time snapshot for an
	// original (pre-instrumentation) node; typically
	// optimizer.Plan.EstimateOf. Nil renders actuals only.
	EstimateOf func(Node) (obs.EstimateSnapshot, bool)
	// Timings appends wall-clock open/next/close times per operator.
	// Leave it off for deterministic output (golden tests).
	Timings bool
	// Totals, when non-nil, appends the plan-wide cost counters as a
	// trailing line.
	Totals *cost.Counters
}

// ExplainAnalyze renders the instrumented plan tree with, per operator,
// the estimated rows, actual rows, and Q-error — the EXPLAIN ANALYZE
// output. When the estimate carries a posterior percentile T, it is
// shown so runs at different confidence thresholds are comparable.
func ExplainAnalyze(root *Instrumented, opts AnalyzeOptions) string {
	var b strings.Builder
	var walk func(n *Instrumented, depth int)
	walk = func(n *Instrumented, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		b.WriteString(n.Describe())
		st := n.Stats
		b.WriteString("  (")
		wroteEst := false
		if opts.EstimateOf != nil {
			if est, ok := opts.EstimateOf(n.Origin); ok {
				fmt.Fprintf(&b, "est=%.1f act=%d q=%.2f", est.Rows, st.Rows, obs.QError(est.Rows, float64(st.Rows)))
				if est.Percentile > 0 {
					fmt.Fprintf(&b, " T=%g%%", math.Round(est.Percentile*10000)/100)
				}
				if est.PartsTotal > 0 {
					fmt.Fprintf(&b, " partitions: %d/%d", est.PartsScanned, est.PartsTotal)
				}
				wroteEst = true
			}
		}
		if !wroteEst {
			fmt.Fprintf(&b, "est=? act=%d", st.Rows)
		}
		fmt.Fprintf(&b, " batches=%d", st.Batches)
		if opts.Timings {
			fmt.Fprintf(&b, " open=%s next=%s close=%s",
				st.OpenTime.Round(time.Microsecond),
				st.NextTime.Round(time.Microsecond),
				st.CloseTime.Round(time.Microsecond))
		}
		b.WriteString(")\n")
		for _, kid := range n.Kids {
			walk(kid, depth+1)
		}
	}
	walk(root, 0)
	if opts.Totals != nil {
		fmt.Fprintf(&b, "counters: %s\n", opts.Totals)
	}
	return b.String()
}
