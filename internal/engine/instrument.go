package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/obs/ledger"
)

// Instrumented wraps one plan node with execution-feedback recording:
// per-operator batch and row counts plus Open/Next/Close wall time,
// accumulated into Stats. The wrapper is a pure pass-through for both
// batches and cost counters — instrumenting a plan never changes its
// results or its cost.Counters, a property pinned by a differential
// test over the random SPJ corpus.
type Instrumented struct {
	// Origin is the node exactly as the optimizer built it; estimate
	// lookups (optimizer.Plan.EstimateOf) key on this pointer.
	Origin Node
	// Inner is a shallow copy of Origin whose children were replaced by
	// the wrapped Kids, so every pull through this subtree crosses the
	// wrappers. Leaves keep Inner == Origin.
	Inner Node
	Kids  []*Instrumented
	Stats *obs.OpStats
	// Trace, when non-nil, receives one span per operator lifetime
	// (Open through Close).
	Trace *obs.Trace

	// opts is set only on the root wrapper (by InstrumentOpts); it holds
	// the query-lifecycle sinks the root drives for the whole tree.
	opts *InstrumentOptions
	// ledgerRows is the Stats.Rows watermark already fed to the ledger,
	// so repeated executions of the same instrumented tree append the
	// per-execution delta, not the cumulative total.
	ledgerRows int64
}

// InstrumentOptions bundles the query-lifecycle sinks an instrumented
// execution feeds. Every field is optional; the zero value reproduces
// plain Instrument behavior exactly.
type InstrumentOptions struct {
	// Trace receives one span per operator lifetime.
	Trace *obs.Trace
	// EstimateOf resolves the optimizer's planning-time snapshot for an
	// original node (optimizer.Plan.EstimateOf). Required for ledger
	// feedback: only estimates carrying a fingerprint are appended.
	EstimateOf func(Node) (obs.EstimateSnapshot, bool)
	// Ledger, when non-nil, receives one cardinality feedback observation
	// per fingerprinted operator when the root closes.
	Ledger *ledger.Ledger
	// QueryID, when non-empty, is stamped on the root operator's span so
	// traces correlate with the event and slow-query logs.
	QueryID string
	// Live, when non-nil, receives the rows produced by the plan root as
	// they stream out — the numerator of /debug/queries progress.
	Live *obs.QueryLive
}

// InstrumentOpts is Instrument with the full set of query-lifecycle
// sinks. The returned root drives them; the wrappers below it behave
// exactly as plain Instrument wrappers.
func InstrumentOpts(root Node, opts InstrumentOptions) *Instrumented {
	n := instrument(root, opts.Trace)
	n.opts = &opts
	return n
}

// Instrument returns an instrumented copy of the plan rooted at root.
// The original tree is left untouched and remains executable.
func Instrument(root Node) *Instrumented { return instrument(root, nil) }

// InstrumentTrace is Instrument with per-operator spans emitted to tr.
func InstrumentTrace(root Node, tr *obs.Trace) *Instrumented { return instrument(root, tr) }

func instrument(n Node, tr *obs.Trace) *Instrumented {
	kids := children(n)
	wrapped := make([]*Instrumented, len(kids))
	asNodes := make([]Node, len(kids))
	for i, k := range kids {
		wrapped[i] = instrument(k, tr)
		asNodes[i] = wrapped[i]
	}
	inner := n
	if len(kids) > 0 {
		inner = replaceChildren(n, asNodes)
	}
	return &Instrumented{Origin: n, Inner: inner, Kids: wrapped, Stats: &obs.OpStats{}, Trace: tr}
}

// replaceChildren returns a shallow copy of n with its children — in
// the order reported by children — replaced by kids. Nodes without
// children are returned unchanged. The switch must mirror children.
func replaceChildren(n Node, kids []Node) Node {
	switch t := n.(type) {
	case *Filter:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Project:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Aggregate:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Sort:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Limit:
		cp := *t
		cp.Input = kids[0]
		return &cp
	case *Exchange:
		cp := *t
		cp.Source = kids[0]
		return &cp
	case *HashJoin:
		cp := *t
		cp.Build, cp.Probe = kids[0], kids[1]
		return &cp
	case *MergeJoin:
		cp := *t
		cp.Left, cp.Right = kids[0], kids[1]
		return &cp
	case *INLJoin:
		cp := *t
		cp.Outer = kids[0]
		return &cp
	case *StarSemiJoin:
		cp := *t
		cp.Dims = append([]StarDim(nil), t.Dims...)
		for i := range cp.Dims {
			cp.Dims[i].Scan = kids[i]
		}
		return &cp
	default:
		return n
	}
}

// OpName returns the operator-type name of a plan node, used as the
// label for per-operator-type metrics and trace spans.
func OpName(n Node) string {
	switch t := n.(type) {
	case *SeqScan:
		return "SeqScan"
	case *IndexRangeScan:
		return "IndexRangeScan"
	case *IndexIntersect:
		return "IndexIntersect"
	case *HashJoin:
		return "HashJoin"
	case *MergeJoin:
		return "MergeJoin"
	case *INLJoin:
		return "INLJoin"
	case *StarSemiJoin:
		return "StarSemiJoin"
	case *Filter:
		return "Filter"
	case *Project:
		return "Project"
	case *Aggregate:
		return "Aggregate"
	case *Sort:
		return "Sort"
	case *Limit:
		return "Limit"
	case *Exchange:
		return "Exchange"
	case *Instrumented:
		return OpName(t.Inner)
	default:
		d := n.Describe()
		if i := strings.IndexByte(d, '('); i > 0 {
			return d[:i]
		}
		return d
	}
}

// LeafTables returns the base tables of a plan in left-to-right leaf
// order — the join-order signature used for plan-choice metrics.
func LeafTables(root Node) []string {
	switch t := root.(type) {
	case *SeqScan:
		return []string{t.Table}
	case *IndexRangeScan:
		return []string{t.Table}
	case *IndexIntersect:
		return []string{t.Table}
	case *INLJoin:
		return append(LeafTables(t.Outer), t.InnerTable)
	case *StarSemiJoin:
		out := []string{t.Fact}
		for _, d := range t.Dims {
			out = append(out, LeafTables(d.Scan)...)
		}
		return out
	case *Instrumented:
		return LeafTables(t.Inner)
	default:
		var out []string
		for _, c := range children(root) {
			out = append(out, LeafTables(c)...)
		}
		return out
	}
}

// Schema implements Node.
func (n *Instrumented) Schema(ctx *Context) (expr.RelSchema, error) {
	return n.Inner.Schema(ctx)
}

// Execute implements Node.
func (n *Instrumented) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, n, counters)
}

// Stream implements Node.
func (n *Instrumented) Stream() Operator { return &instrumentedOp{node: n} }

// Describe implements Node.
func (n *Instrumented) Describe() string { return n.Inner.Describe() }

// instrumentedOp is the pass-through streaming wrapper: it forwards
// every call to the wrapped operator unchanged — same context, same
// counters pointer, same batches — while timing the calls and counting
// what flows through.
type instrumentedOp struct {
	node   *Instrumented
	inner  Operator
	span   *obs.Span
	closed bool
}

func (o *instrumentedOp) Open(ctx *Context, counters *cost.Counters) error {
	o.span = o.node.Trace.StartSpan("op:" + OpName(o.node.Inner))
	if o.node.opts != nil && o.node.opts.QueryID != "" {
		o.span.SetAttr("qid", o.node.opts.QueryID)
	}
	start := time.Now()
	o.inner = o.node.Inner.Stream()
	err := o.inner.Open(ctx, counters)
	o.node.Stats.OpenTime += time.Since(start)
	o.node.Stats.Opens++
	return err
}

func (o *instrumentedOp) Next() (*Batch, error) {
	start := time.Now()
	b, err := o.inner.Next()
	st := o.node.Stats
	st.NextTime += time.Since(start)
	if b != nil {
		st.Batches++
		st.Rows += int64(b.Len())
		if o.node.opts != nil {
			o.node.opts.Live.AddRows(int64(b.Len()))
		}
	}
	return b, err
}

func (o *instrumentedOp) Close() {
	if o.inner != nil {
		start := time.Now()
		o.inner.Close()
		if !o.closed {
			o.closed = true
			o.node.Stats.CloseTime += time.Since(start)
			if o.span != nil {
				o.span.SetAttr("rows", fmt.Sprintf("%d", o.node.Stats.Rows))
				o.span.SetAttr("batches", fmt.Sprintf("%d", o.node.Stats.Batches))
			}
			// The root wrapper flushes cardinality feedback once the whole
			// tree has closed: by then every bypassed wrapper's stats have
			// been fed (Exchange merges at its barrier, inside the inner
			// Close above).
			o.node.flushLedger()
		}
	}
	o.span.End()
}

// flushLedger appends one cardinality feedback observation per
// fingerprinted operator of the tree rooted here. A no-op unless this is
// the root wrapper of an InstrumentOpts tree with a ledger and an
// estimate source. Appends happen leaf-first, mirroring the order
// operators finish producing.
func (n *Instrumented) flushLedger() {
	opts := n.opts
	if opts == nil || opts.Ledger == nil || opts.EstimateOf == nil {
		return
	}
	var walk func(m *Instrumented)
	walk = func(m *Instrumented) {
		for _, k := range m.Kids {
			walk(k)
		}
		est, ok := opts.EstimateOf(m.Origin)
		if !ok || est.Fingerprint == "" {
			return
		}
		actual := m.Stats.Rows - m.ledgerRows
		m.ledgerRows = m.Stats.Rows
		table := ""
		if lt := LeafTables(m.Inner); len(lt) > 0 {
			table = lt[0]
		}
		opts.Ledger.Append(ledger.Observation{
			Fingerprint:  est.Fingerprint,
			Table:        table,
			EstRows:      est.Rows,
			ActualRows:   actual,
			Percentile:   est.Percentile,
			PartsScanned: est.PartsScanned,
			PartsTotal:   est.PartsTotal,
		})
	}
	walk(n)
}

// AnalyzeOptions configures ExplainAnalyze rendering.
type AnalyzeOptions struct {
	// EstimateOf returns the optimizer's planning-time snapshot for an
	// original (pre-instrumentation) node; typically
	// optimizer.Plan.EstimateOf. Nil renders actuals only.
	EstimateOf func(Node) (obs.EstimateSnapshot, bool)
	// Timings appends wall-clock open/next/close times per operator.
	// Leave it off for deterministic output (golden tests).
	Timings bool
	// Totals, when non-nil, appends the plan-wide cost counters as a
	// trailing line.
	Totals *cost.Counters
}

// ExplainAnalyze renders the instrumented plan tree with, per operator,
// the estimated rows, actual rows, and Q-error — the EXPLAIN ANALYZE
// output. When the estimate carries a posterior percentile T, it is
// shown so runs at different confidence thresholds are comparable.
func ExplainAnalyze(root *Instrumented, opts AnalyzeOptions) string {
	var b strings.Builder
	var walk func(n *Instrumented, depth int)
	walk = func(n *Instrumented, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		b.WriteString(n.Describe())
		st := n.Stats
		b.WriteString("  (")
		wroteEst := false
		if opts.EstimateOf != nil {
			if est, ok := opts.EstimateOf(n.Origin); ok {
				fmt.Fprintf(&b, "est=%.1f act=%d q=%.2f", est.Rows, st.Rows, obs.QError(est.Rows, float64(st.Rows)))
				if est.Percentile > 0 {
					fmt.Fprintf(&b, " T=%g%%", math.Round(est.Percentile*10000)/100)
				}
				if est.PartsTotal > 0 {
					fmt.Fprintf(&b, " partitions: %d/%d", est.PartsScanned, est.PartsTotal)
				}
				if est.SegsTotal > 0 {
					fmt.Fprintf(&b, " segments: %d/%d skipped", est.SegsSkipped, est.SegsTotal)
					if est.Strategy != "" {
						fmt.Fprintf(&b, " (%s)", est.Strategy)
					}
				}
				wroteEst = true
			}
		}
		if !wroteEst {
			fmt.Fprintf(&b, "est=? act=%d", st.Rows)
		}
		fmt.Fprintf(&b, " batches=%d", st.Batches)
		if opts.Timings {
			fmt.Fprintf(&b, " open=%s next=%s close=%s",
				st.OpenTime.Round(time.Microsecond),
				st.NextTime.Round(time.Microsecond),
				st.CloseTime.Round(time.Microsecond))
		}
		b.WriteString(")\n")
		for _, kid := range n.Kids {
			walk(kid, depth+1)
		}
	}
	walk(root, 0)
	if opts.Totals != nil {
		fmt.Fprintf(&b, "counters: %s\n", opts.Totals)
	}
	return b.String()
}
