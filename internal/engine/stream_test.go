package engine

import (
	"fmt"
	"testing"

	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/storage"
)

// TestLimitStopsScanEarly is the point of the streaming refactor: a LIMIT
// above a sequential scan must stop pulling batches once it has its rows,
// leaving the tail of the table unread and uncharged.
func TestLimitStopsScanEarly(t *testing.T) {
	// 3000 lineitem rows — several BatchSize pulls worth.
	db, ctx := testDB(t, 1000, 3, 10)
	_ = db
	plan := &Limit{N: 10, Input: &SeqScan{Table: "lineitem"}}
	res, counters, _, err := Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
	// One batch pull covers at most BatchSize rows and their pages.
	maxPages := int64((BatchSize + storage.TuplesPerPage - 1) / storage.TuplesPerPage)
	if counters.SeqPages > maxPages {
		t.Errorf("limit pulled %d sequential pages, want <= %d (one batch)", counters.SeqPages, maxPages)
	}
	if counters.Tuples > BatchSize {
		t.Errorf("limit read %d tuples, want <= %d (one batch)", counters.Tuples, BatchSize)
	}
	// The materialized engine, by construction, pays for the whole table.
	var full cost.Counters
	if _, err := ExecuteMaterialized(ctx, plan, &full); err != nil {
		t.Fatal(err)
	}
	if full.SeqPages <= counters.SeqPages {
		t.Errorf("materialized scanned %d pages, streaming %d; expected streaming to read strictly less",
			full.SeqPages, counters.SeqPages)
	}
}

// TestLimitZeroPullsNothing: LIMIT 0 must not open-charge any scan work.
func TestLimitZeroPullsNothing(t *testing.T) {
	_, ctx := testDB(t, 50, 2, 5)
	res, counters, _, err := Run(ctx, &Limit{N: 0, Input: &SeqScan{Table: "lineitem"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("got %d rows, want 0", len(res.Rows))
	}
	if counters.SeqPages != 0 || counters.Tuples != 0 {
		t.Errorf("limit 0 still charged SeqPages=%d Tuples=%d", counters.SeqPages, counters.Tuples)
	}
}

// TestLimitEarlyTerminationThroughJoin: the early stop must propagate
// through streaming (non-breaking) operators, here an indexed nested-loop
// join, so only a prefix of the outer side is probed.
func TestLimitEarlyTerminationThroughJoin(t *testing.T) {
	_, ctx := testDB(t, 2000, 2, 10)
	plan := func() *INLJoin {
		return &INLJoin{
			Outer:      &SeqScan{Table: "lineitem"},
			OuterCol:   expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
			InnerTable: "orders",
			InnerCol:   "o_orderkey",
		}
	}
	var full cost.Counters
	if _, err := plan().Execute(ctx, &full); err != nil {
		t.Fatal(err)
	}
	res, limited, _, err := Run(ctx, &Limit{N: 5, Input: plan()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	if limited.RandPages >= full.RandPages {
		t.Errorf("limited join probed %d random pages, full drain %d; expected strictly fewer",
			limited.RandPages, full.RandPages)
	}
}

// TestTopKMatchesFullSort: a bounded top-K sort must return exactly the
// first K rows of the full stable sort — including tie order — while
// charging the same SortTuples (every input row participates either way).
func TestTopKMatchesFullSort(t *testing.T) {
	_, ctx := testDB(t, 200, 3, 10)
	// l_ship has ~100 distinct values over 600 rows: plenty of ties.
	by := [][]SortKey{
		{{Col: expr.C("l_ship").Ref}},
		{{Col: expr.C("l_ship").Ref, Desc: true}},
		{{Col: expr.C("l_ship").Ref}, {Col: expr.C("l_receipt").Ref, Desc: true}},
	}
	for bi, keys := range by {
		for _, k := range []int{1, 7, 64, 600, 5000} {
			input := func() Node { return &SeqScan{Table: "lineitem"} }
			var fullC, topC cost.Counters
			full, err := (&Sort{Input: input(), By: keys}).Execute(ctx, &fullC)
			if err != nil {
				t.Fatal(err)
			}
			top, err := (&Sort{Input: input(), By: keys, TopK: k}).Execute(ctx, &topC)
			if err != nil {
				t.Fatal(err)
			}
			want := full.Rows
			if len(want) > k {
				want = want[:k]
			}
			label := fmt.Sprintf("keys %d top %d", bi, k)
			if len(top.Rows) != len(want) {
				t.Fatalf("%s: got %d rows, want %d", label, len(top.Rows), len(want))
			}
			for i := range want {
				if rowKey(top.Rows[i]) != rowKey(want[i]) {
					t.Fatalf("%s: row %d = %v, want %v (tie order must match the stable sort)",
						label, i, top.Rows[i], want[i])
				}
			}
			if fullC != topC {
				t.Errorf("%s: counters diverged: full %+v top-k %+v", label, fullC, topC)
			}
		}
	}
}

// streamEquivalencePlans enumerates one plan per operator shape for the
// streaming-vs-materialized drains.
func streamEquivalencePlans(cut float64) map[string]Node {
	okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
	lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
	filter := expr.Cmp{Op: expr.LT, L: expr.TC("orders", "o_total"), R: expr.FloatLit(cut)}
	ship := expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(10), Hi: expr.IntLit(40)}
	return map[string]Node{
		"seqscan":   &SeqScan{Table: "lineitem", Filter: ship},
		"rangescan": &IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_ship", Lo: 10, Hi: 40}},
		"intersect": &IndexIntersect{Table: "lineitem", Ranges: []KeyRange{
			{Column: "l_ship", Lo: 10, Hi: 40}, {Column: "l_receipt", Lo: 12, Hi: 45}}},
		"filter":  &Filter{Input: &SeqScan{Table: "orders"}, Pred: filter},
		"project": &Project{Input: &SeqScan{Table: "lineitem", Filter: ship}, Cols: []expr.ColumnRef{expr.C("l_price").Ref, expr.C("l_ship").Ref}},
		"hashjoin": &HashJoin{Build: &SeqScan{Table: "orders", Filter: filter},
			Probe: &SeqScan{Table: "lineitem"}, BuildCol: okey, ProbeCol: lkey},
		"mergejoin": &MergeJoin{Left: &SeqScan{Table: "orders", Filter: filter},
			Right: &SeqScan{Table: "lineitem", Filter: ship}, LeftCol: okey, RightCol: lkey},
		"inljoin": &INLJoin{Outer: &SeqScan{Table: "lineitem", Filter: ship},
			OuterCol: lkey, InnerTable: "orders", InnerCol: "o_orderkey", Residual: filter},
		"sort": &Sort{Input: &SeqScan{Table: "lineitem", Filter: ship},
			By: []SortKey{{Col: expr.C("l_receipt").Ref}, {Col: expr.C("l_id").Ref, Desc: true}}},
		"aggregate": &Aggregate{Input: &SeqScan{Table: "lineitem"},
			GroupBy: []expr.ColumnRef{expr.C("l_orderkey").Ref},
			Aggs: []AggSpec{{Func: Count}, {Func: Sum, Arg: expr.C("l_price")},
				{Func: Min, Arg: expr.C("l_ship")}, {Func: Max, Arg: expr.C("l_receipt")}}},
		"limit": &Limit{N: 1 << 30, Input: &SeqScan{Table: "lineitem"}},
		"star": &StarSemiJoin{Fact: "lineitem", Dims: []StarDim{{
			Scan:  &SeqScan{Table: "part", Filter: expr.Cmp{Op: expr.LT, L: expr.C("p_size"), R: expr.IntLit(25)}},
			DimPK: expr.ColumnRef{Table: "part", Column: "p_partkey"},
			FactFK: "l_partkey"}}},
	}
}

// TestFullDrainCountersByteIdentical holds the streaming engine to the
// issue's acceptance bar: on full drains every operator must produce the
// same rows, in the same order, with byte-identical cost.Counters as the
// materialized reference engine.
func TestFullDrainCountersByteIdentical(t *testing.T) {
	_, ctx := testDB(t, 300, 4, 10)
	for name, plan := range streamEquivalencePlans(500) {
		t.Run(name, func(t *testing.T) {
			var sc, mc cost.Counters
			sres, err := plan.Execute(ctx, &sc)
			if err != nil {
				t.Fatal(err)
			}
			mres, err := ExecuteMaterialized(ctx, plan, &mc)
			if err != nil {
				t.Fatal(err)
			}
			if len(sres.Rows) != len(mres.Rows) {
				t.Fatalf("streaming %d rows, materialized %d", len(sres.Rows), len(mres.Rows))
			}
			for i := range sres.Rows {
				if rowKey(sres.Rows[i]) != rowKey(mres.Rows[i]) {
					t.Fatalf("row %d differs: streaming %v, materialized %v", i, sres.Rows[i], mres.Rows[i])
				}
			}
			if sc != mc {
				t.Errorf("counters diverged:\nstreaming    %+v\nmaterialized %+v", sc, mc)
			}
		})
	}
}

// TestOperatorStreamsAreIndependent: Stream must hand out fresh iterator
// state each call, so re-executing a plan node cannot observe a prior
// run's cursor.
func TestOperatorStreamsAreIndependent(t *testing.T) {
	_, ctx := testDB(t, 40, 2, 5)
	plan := &SeqScan{Table: "lineitem"}
	var c1, c2 cost.Counters
	r1, err := plan.Execute(ctx, &c1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plan.Execute(ctx, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) || c1 != c2 {
		t.Fatalf("re-execution diverged: %d vs %d rows, %+v vs %+v", len(r1.Rows), len(r2.Rows), c1, c2)
	}
}
