package engine

import (
	"fmt"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// partTestDB is testDB with lineitem range-partitioned on l_ship into the
// given number of shards. The data generation is byte-for-byte the same
// as testDB's (same seed, same draw order), so the only difference
// between layouts is the physical placement of lineitem rows.
func partTestDB(t testing.TB, nOrders, linesPerOrder, nParts, shards int) (*storage.Database, *Context) {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	part, err := db.CreateTable(&catalog.TableSchema{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: catalog.Int},
			{Name: "p_size", Type: catalog.Int},
		},
		PrimaryKey: "p_partkey",
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int},
			{Name: "o_total", Type: catalog.Float},
		},
		PrimaryKey: "o_orderkey",
	})
	if err != nil {
		t.Fatal(err)
	}
	// l_ship is drawn from [0,100); equal-width range shards over that.
	spec := &catalog.PartitionSpec{Column: "l_ship", Kind: catalog.RangePartition, Partitions: shards}
	for b := 1; b < shards; b++ {
		spec.Bounds = append(spec.Bounds, int64(b*100/shards))
	}
	lineitem, err := db.CreateTable(&catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_orderkey", Type: catalog.Int},
			{Name: "l_partkey", Type: catalog.Int},
			{Name: "l_ship", Type: catalog.Date},
			{Name: "l_receipt", Type: catalog.Date},
			{Name: "l_price", Type: catalog.Float},
		},
		PrimaryKey: "l_id",
		Foreign: []catalog.ForeignKey{
			{Column: "l_orderkey", RefTable: "orders"},
			{Column: "l_partkey", RefTable: "part"},
		},
		Indexes: []catalog.Index{
			{Name: "ix_ship", Column: "l_ship", Kind: catalog.NonClustered},
			{Name: "ix_receipt", Column: "l_receipt", Kind: catalog.NonClustered},
			{Name: "ix_partkey", Column: "l_partkey", Kind: catalog.NonClustered},
		},
		Partition: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(123)
	for p := 0; p < nParts; p++ {
		if err := part.Append(value.Row{value.Int(int64(p)), value.Int(int64(testkit.Intn(rng, 50)))}); err != nil {
			t.Fatal(err)
		}
	}
	id := int64(0)
	for o := 0; o < nOrders; o++ {
		if err := orders.Append(value.Row{value.Int(int64(o)), value.Float(rng.Float64() * 1000)}); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < linesPerOrder; l++ {
			ship := int64(testkit.Intn(rng, 100))
			receipt := ship + int64(testkit.Intn(rng, 10))
			row := value.Row{
				value.Int(id),
				value.Int(int64(o)),
				value.Int(int64(testkit.Intn(rng, nParts))),
				value.Date(ship),
				value.Date(receipt),
				value.Float(float64(testkit.Intn(rng, 10000)) / 100),
			}
			if err := lineitem.Append(row); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

// departition rebuilds src as an unpartitioned database holding every
// table's rows in src's global row-id order. A full scan of either
// database therefore visits identical tuples in identical order, which
// makes the unpartitioned copy the byte-level baseline for the
// partitioned layouts.
func departition(t testing.TB, src *storage.Database) (*storage.Database, *Context) {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	for _, name := range src.Catalog.TableNames() {
		schema, _ := src.Catalog.Table(name)
		flat := *schema
		flat.Partition = nil
		nt, err := db.CreateTable(&flat)
		if err != nil {
			t.Fatal(err)
		}
		st := testkit.Table(src, name)
		for r := 0; r < st.NumRows(); r++ {
			if err := nt.Append(st.Row(r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

// TestPartitionedExchangeDifferentialProperty extends the 40-query
// differential corpus across physical layouts: the same random SPJ plans
// run against lineitem partitioned into 1, 2, and 4 range shards, serial
// and behind Exchanges at DOP 1, 2, and 4, and every leg must produce
// byte-identical rows in identical order AND byte-identical cost.Counters
// versus the unpartitioned serial baseline (the departitioned copy of the
// same data). For layouts with real pruning opportunities the corpus also
// runs each scan with its partition list restricted to the shards the
// ship window intersects: rows must still match the baseline exactly
// (pruning is semantically lossless for the predicate that induced it),
// and serial and parallel pruned legs must agree with each other on
// counters. Run with -race this doubles as the scatter-gather data-race
// proof across layouts.
func TestPartitionedExchangeDifferentialProperty(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		pdb, pctx := partTestDB(t, 3000, 3, 10, shards)
		_, bctx := departition(t, pdb)
		line := testkit.Table(pdb, "lineitem")
		rng := stats.NewRNG(9001)
		okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
		lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
		for trial := 0; trial < 40; trial++ {
			sLo := int64(testkit.Intn(rng, 110)) - 5
			sHi := sLo + int64(testkit.Intn(rng, 70))
			cut := rng.Float64() * 1000
			linePred := expr.Between{E: expr.C("l_ship"), Lo: expr.IntLit(sLo), Hi: expr.IntLit(sHi)}
			orderPred := expr.Cmp{Op: expr.LT, L: expr.TC("orders", "o_total"), R: expr.FloatLit(cut)}

			// parts=nil builds the full-table plan; a non-nil list pins the
			// lineitem scan to those shards.
			build := func(dop int, parts []int) Node {
				wrap := func(n Node) Node {
					if dop == 0 {
						return n
					}
					return &Exchange{Source: n, DOP: dop}
				}
				var lineScan Node
				switch trial % 3 {
				case 0:
					lineScan = &SeqScan{Table: "lineitem", Filter: linePred, Partitions: parts}
				case 1:
					lineScan = &IndexRangeScan{Table: "lineitem",
						Range: KeyRange{Column: "l_ship", Lo: sLo, Hi: sHi}, Partitions: parts}
				default:
					lineScan = &IndexIntersect{Table: "lineitem",
						Ranges: []KeyRange{{Column: "l_ship", Lo: sLo, Hi: sHi}}, Partitions: parts}
				}
				lineScan = wrap(lineScan)
				ordersScan := wrap(&SeqScan{Table: "orders", Filter: orderPred})
				var join Node
				switch (trial / 3) % 3 {
				case 0:
					join = &HashJoin{Build: ordersScan, Probe: lineScan, BuildCol: okey, ProbeCol: lkey}
				case 1:
					join = &MergeJoin{Left: ordersScan, Right: lineScan, LeftCol: okey, RightCol: lkey}
				default:
					join = &INLJoin{Outer: lineScan, OuterCol: lkey,
						InnerTable: "orders", InnerCol: "o_orderkey", Residual: orderPred}
				}
				plan := join
				if trial%2 == 0 {
					plan = &Project{Input: plan, Cols: []expr.ColumnRef{
						{Table: "lineitem", Column: "l_id"},
						{Table: "orders", Column: "o_total"},
						{Table: "lineitem", Column: "l_price"},
					}}
				}
				if (trial/2)%2 == 0 {
					plan = &Sort{Input: plan, By: []SortKey{
						{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}}}}
				}
				return plan
			}

			label := fmt.Sprintf("shards=%d trial %d ship[%d,%d] cut %.1f", shards, trial, sLo, sHi, cut)
			// The baseline: unpartitioned, serial, streaming.
			var sc cost.Counters
			sres, err := build(0, nil).Execute(bctx, &sc)
			if err != nil {
				t.Fatalf("%s: baseline: %v", label, err)
			}
			compare := func(res *Result, c cost.Counters, ref *Result, rc cost.Counters, leg string) {
				t.Helper()
				if len(res.Rows) != len(ref.Rows) {
					t.Fatalf("%s: %s %d rows, want %d", label, leg, len(res.Rows), len(ref.Rows))
				}
				for i := range res.Rows {
					if rowKey(res.Rows[i]) != rowKey(ref.Rows[i]) {
						t.Fatalf("%s: %s row %d differs: %v vs %v", label, leg, i, res.Rows[i], ref.Rows[i])
					}
				}
				if c != rc {
					t.Fatalf("%s: %s counters diverged:\n%s %+v\nwant %+v", label, leg, leg, c, rc)
				}
			}
			// Partitioned serial, materialized reference, and DOP 1/2/4 all
			// reproduce the unpartitioned baseline byte for byte.
			var mc cost.Counters
			mres, err := ExecuteMaterialized(pctx, build(4, nil), &mc)
			if err != nil {
				t.Fatalf("%s: materialized: %v", label, err)
			}
			compare(mres, mc, sres, sc, "materialized")
			for _, dop := range []int{0, 1, 2, 4} {
				var pc cost.Counters
				pres, err := build(dop, nil).Execute(pctx, &pc)
				if err != nil {
					t.Fatalf("%s: dop=%d: %v", label, dop, err)
				}
				compare(pres, pc, sres, sc, fmt.Sprintf("dop=%d", dop))
			}

			// Pruned legs: restrict the lineitem scan to the shards the ship
			// window can touch. Same rows as the baseline (the filter already
			// excludes everything outside the window); serial and parallel
			// pruned legs must agree with each other exactly.
			if shards < 2 {
				continue
			}
			parts, ok := line.PrunePartitions("l_ship", sLo, sHi)
			if !ok {
				t.Fatalf("%s: pruning refused", label)
			}
			var prunedSC cost.Counters
			prunedSerial, err := build(0, parts).Execute(pctx, &prunedSC)
			if err != nil {
				t.Fatalf("%s: pruned serial: %v", label, err)
			}
			// Rows match the baseline; counters legitimately differ (fewer
			// pages), so only the row content is compared here.
			if len(prunedSerial.Rows) != len(sres.Rows) {
				t.Fatalf("%s: pruned serial %d rows, baseline %d", label, len(prunedSerial.Rows), len(sres.Rows))
			}
			for i := range prunedSerial.Rows {
				if rowKey(prunedSerial.Rows[i]) != rowKey(sres.Rows[i]) {
					t.Fatalf("%s: pruned serial row %d differs", label, i)
				}
			}
			for _, dop := range []int{2, 4} {
				var pc cost.Counters
				pres, err := build(dop, parts).Execute(pctx, &pc)
				if err != nil {
					t.Fatalf("%s: pruned dop=%d: %v", label, dop, err)
				}
				compare(pres, pc, prunedSerial, prunedSC, fmt.Sprintf("pruned-dop=%d", dop))
			}
		}
	}
}
