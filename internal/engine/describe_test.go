package engine

import (
	"strings"
	"testing"

	"robustqo/internal/expr"
	"robustqo/internal/testkit"
)

// TestSchemasAndDescriptions exercises Schema and Describe on every node
// type, plus Explain's child traversal, over one composite plan.
func TestSchemasAndDescriptions(t *testing.T) {
	_, ctx := testDB(t, 10, 2, 5)
	okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
	lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
	pkey := expr.ColumnRef{Table: "part", Column: "p_partkey"}

	nodes := []struct {
		node      Node
		describe  string
		schemaLen int
	}{
		{&SeqScan{Table: "orders"}, "SeqScan(orders)", 2},
		{&SeqScan{Table: "orders", Filter: testkit.Expr("o_total > 1")}, "filter=", 2},
		{&IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_ship", Lo: 1, Hi: 2}},
			"IndexRangeScan(lineitem, l_ship in [1, 2])", 6},
		{&IndexRangeScan{Table: "lineitem", Range: KeyRange{Column: "l_ship", Lo: 1, Hi: 2},
			Residual: testkit.Expr("l_price > 0")}, "residual=", 6},
		{&IndexIntersect{Table: "lineitem", Ranges: []KeyRange{
			{Column: "l_ship", Lo: 1, Hi: 2}, {Column: "l_receipt", Lo: 3, Hi: 4}},
			Residual: testkit.Expr("l_price > 0")}, "l_ship in [1, 2] & l_receipt in [3, 4]", 6},
		{&HashJoin{Build: &SeqScan{Table: "orders"}, Probe: &SeqScan{Table: "lineitem"},
			BuildCol: okey, ProbeCol: lkey}, "HashJoin(orders.o_orderkey = lineitem.l_orderkey)", 8},
		{&MergeJoin{Left: &SeqScan{Table: "orders"}, Right: &SeqScan{Table: "lineitem"},
			LeftCol: okey, RightCol: lkey}, "MergeJoin(orders.o_orderkey = lineitem.l_orderkey)", 8},
		{&INLJoin{Outer: &SeqScan{Table: "lineitem"}, OuterCol: lkey,
			InnerTable: "orders", InnerCol: "o_orderkey",
			Residual: testkit.Expr("o_total > 5")}, "INLJoin(lineitem.l_orderkey = orders.o_orderkey)", 8},
		{&StarSemiJoin{Fact: "lineitem", Dims: []StarDim{{
			Scan: &SeqScan{Table: "part"}, DimPK: pkey, FactFK: "l_partkey"}}},
			"StarSemiJoin(lineitem, 1 dims)", 8},
		{&Filter{Input: &SeqScan{Table: "orders"}, Pred: testkit.Expr("o_total > 1")},
			"Filter(", 2},
		{&Project{Input: &SeqScan{Table: "orders"}, Cols: []expr.ColumnRef{okey}},
			"Project(orders.o_orderkey)", 1},
		{&Aggregate{Input: &SeqScan{Table: "orders"},
			GroupBy: []expr.ColumnRef{okey},
			Aggs: []AggSpec{{Func: Sum, Arg: expr.C("o_total"), As: "s"},
				{Func: Count}}}, "Aggregate(SUM(o_total), COUNT(*) BY orders.o_orderkey)", 3},
		{&Sort{Input: &SeqScan{Table: "orders"},
			By: []SortKey{{Col: okey}, {Col: expr.ColumnRef{Table: "orders", Column: "o_total"}, Desc: true}}},
			"Sort(orders.o_orderkey, orders.o_total DESC)", 2},
		{&Limit{Input: &SeqScan{Table: "orders"}, N: 4}, "Limit(4)", 2},
	}
	for _, c := range nodes {
		if got := c.node.Describe(); !strings.Contains(got, c.describe) {
			t.Errorf("Describe = %q, want substring %q", got, c.describe)
		}
		schema, err := c.node.Schema(ctx)
		if err != nil {
			t.Fatalf("%s: Schema: %v", c.node.Describe(), err)
		}
		if len(schema.Fields) != c.schemaLen {
			t.Errorf("%s: schema width %d, want %d", c.node.Describe(), len(schema.Fields), c.schemaLen)
		}
	}
}

func TestSchemaErrorsPropagate(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	ghost := &SeqScan{Table: "ghost"}
	bad := []Node{
		ghost,
		&IndexRangeScan{Table: "ghost"},
		&IndexIntersect{Table: "ghost"},
		&HashJoin{Build: ghost, Probe: &SeqScan{Table: "orders"}},
		&HashJoin{Build: &SeqScan{Table: "orders"}, Probe: ghost},
		&MergeJoin{Left: ghost, Right: &SeqScan{Table: "orders"}},
		&MergeJoin{Left: &SeqScan{Table: "orders"}, Right: ghost},
		&INLJoin{Outer: ghost, InnerTable: "orders"},
		&INLJoin{Outer: &SeqScan{Table: "orders"}, InnerTable: "ghost"},
		&StarSemiJoin{Fact: "ghost"},
		&StarSemiJoin{Fact: "lineitem", Dims: []StarDim{{Scan: ghost}}},
		&Filter{Input: ghost},
		&Project{Input: ghost},
		&Project{Input: &SeqScan{Table: "orders"}, Cols: []expr.ColumnRef{{Column: "zz"}}},
		&Aggregate{Input: ghost},
		&Aggregate{Input: &SeqScan{Table: "orders"}, GroupBy: []expr.ColumnRef{{Column: "zz"}}},
		&Sort{Input: ghost},
		&Limit{Input: ghost},
	}
	for i, n := range bad {
		if _, err := n.Schema(ctx); err == nil {
			t.Errorf("case %d (%T): Schema succeeded", i, n)
		}
	}
}

func TestExplainCoversAllChildren(t *testing.T) {
	okey := expr.ColumnRef{Table: "orders", Column: "o_orderkey"}
	lkey := expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"}
	pkey := expr.ColumnRef{Table: "part", Column: "p_partkey"}
	plan := &Limit{N: 1, Input: &Sort{
		By: []SortKey{{Col: okey}},
		Input: &Project{Cols: []expr.ColumnRef{okey}, Input: &Filter{
			Pred: testkit.Expr("o_total > 0"),
			Input: &MergeJoin{
				LeftCol: okey, RightCol: lkey,
				Left: &SeqScan{Table: "orders"},
				Right: &INLJoin{
					Outer:      &StarSemiJoin{Fact: "lineitem", Dims: []StarDim{{Scan: &SeqScan{Table: "part"}, DimPK: pkey, FactFK: "l_partkey"}}},
					OuterCol:   lkey,
					InnerTable: "orders",
					InnerCol:   "o_orderkey",
				},
			},
		}},
	}}
	s := Explain(plan)
	for _, want := range []string{"Limit", "Sort", "Project", "Filter", "MergeJoin", "INLJoin", "StarSemiJoin", "SeqScan(part)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
}

func TestMergeJoinToleratesMislabelledOrder(t *testing.T) {
	// A plan claiming sorted inputs that are not sorted must still return
	// correct results (correctness over cost attribution).
	_, ctx := testDB(t, 30, 2, 5)
	shuffled := &Sort{ // sort by total to destroy key order
		Input: &SeqScan{Table: "orders"},
		By:    []SortKey{{Col: expr.ColumnRef{Table: "orders", Column: "o_total"}}},
	}
	mj := &MergeJoin{
		Left: shuffled, Right: &SeqScan{Table: "lineitem"},
		LeftCol:    expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		RightCol:   expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
		LeftSorted: true, RightSorted: true, // a lie for the left side
	}
	res, _, _, err := Run(ctx, mj)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, _, err := Run(ctx, &HashJoin{
		Build: &SeqScan{Table: "orders"}, Probe: &SeqScan{Table: "lineitem"},
		BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameRowMultiset(t, res.Rows, ref.Rows, "mislabelled merge")
}

func TestMergeJoinNonNumericKeyRejected(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	mj := &MergeJoin{
		Left: &SeqScan{Table: "orders"}, Right: &SeqScan{Table: "orders"},
		LeftCol:  expr.ColumnRef{Table: "orders", Column: "o_total"},
		RightCol: expr.ColumnRef{Table: "orders", Column: "o_total"},
	}
	// o_total is Float: merge join keys must be integer-valued. The
	// engine resolves .I on them, so floats are formally "numeric" — the
	// guard rejects strings only. Verify strings are rejected via a
	// synthetic schema is impractical here; instead verify unknown
	// columns error.
	mj.LeftCol = expr.ColumnRef{Column: "ghost"}
	if _, _, _, err := Run(ctx, mj); err == nil {
		t.Error("unknown merge key accepted")
	}
	hj := &HashJoin{Build: &SeqScan{Table: "orders"}, Probe: &SeqScan{Table: "orders"},
		BuildCol: expr.ColumnRef{Column: "ghost"}, ProbeCol: expr.ColumnRef{Column: "ghost"}}
	if _, _, _, err := Run(ctx, hj); err == nil {
		t.Error("unknown hash key accepted")
	}
	inl := &INLJoin{Outer: &SeqScan{Table: "orders"}, OuterCol: expr.ColumnRef{Column: "ghost"},
		InnerTable: "lineitem", InnerCol: "l_orderkey"}
	if _, _, _, err := Run(ctx, inl); err == nil {
		t.Error("unknown INL outer key accepted")
	}
}

func TestAggFuncAndKindStrings(t *testing.T) {
	wants := map[AggFunc]string{Sum: "SUM", Count: "COUNT", Min: "MIN", Max: "MAX", Avg: "AVG"}
	for f, w := range wants {
		if f.String() != w {
			t.Errorf("%v.String() = %q", w, f.String())
		}
	}
	if !strings.Contains(AggFunc(42).String(), "42") {
		t.Error("unknown AggFunc string")
	}
	if (KeyRange{Column: "c", Lo: 1, Hi: 2}).String() != "c in [1, 2]" {
		t.Error("KeyRange string")
	}
}
