package engine

// The hash-join build table: partitioned, type-specialized, chained, and
// pre-sized.
//
// Four properties matter and each is pinned by a test:
//
//   - Type specialization. value.Value keys fall into exactly three key
//     classes — string, float64, and int64 (Int, Date, and everything
//     else share the I payload, mirroring value.Key) — so each partition
//     keeps one native-keyed map per class and probes never box a key
//     into an interface. Key equality is exactly the old map[any]
//     table's: Int and Date share the int64 class, floats compare as
//     float64 map keys (NaN matches nothing, -0 equals +0), numeric keys
//     never match strings.
//   - Chained storage. Rows live once in a flat build-order slice; each
//     key maps to a (head, tail) chain threaded through a next-index
//     array. Inserting N rows costs zero per-key slice allocations, and
//     walking a chain yields the key's rows in build-input order — the
//     order the per-key slices used to preserve.
//   - Partitioning. The table is split into a power-of-two number of
//     partitions by a hash of the key, so a parallel build can scatter
//     row indices morsel-by-morsel and then let each worker own whole
//     partitions, lock-free: a partition's chains only ever touch next[]
//     slots of its own rows. Equal keys always land in the same
//     partition, so the partition count can never change join output.
//   - Pre-sizing. The optimizer's posterior T-quantile estimate of the
//     build cardinality (HashJoin.BuildRowsEst) sizes the table before
//     the first insert, with 2x headroom: an estimate within a factor of
//     two of the actual build size never triggers modeled growth. Go maps
//     do not expose their rehash count, so growth is modeled — the number
//     of capacity doublings a pre-sized table would need to reach the
//     rows actually inserted — and exported as robustqo_hashjoin_*
//     metrics when a registry is attached to the Context.

import (
	"math"
	"sync"
	"sync/atomic"

	"robustqo/internal/catalog"
	"robustqo/internal/obs"
	"robustqo/internal/value"
)

// minJoinTableCap is the modeled capacity of an unsized table; it matches
// the scale at which Go map growth starts to matter.
const minJoinTableCap = 16

// maxJoinTablePresize bounds how far a wild overestimate can pre-allocate.
const maxJoinTablePresize = 1 << 22

// joinPartitionThreshold is the build size below which a parallel
// partitioned build is not worth its scatter pass; smaller builds insert
// serially even when the join runs at DOP > 1.
const joinPartitionThreshold = 2 * MorselSize

// joinChain is one key's row list: indices into joinTable.rows threaded
// through joinTable.next, walked head-first in build-input order.
type joinChain struct {
	head, tail int32
}

// joinPart is one partition of a joinTable: lazily-created native-keyed
// chain maps, one per key class. A build column is homogeneous in
// practice, so usually exactly one of the three is non-nil.
type joinPart struct {
	ints map[int64]joinChain
	flts map[float64]joinChain
	strs map[string]joinChain
}

// joinTable is the build side of a hash join. Built once (serially or by
// a partitioned worker pool), then read-only: lookups are safe from any
// number of goroutines.
type joinTable struct {
	parts []joinPart
	mask  uint64 // len(parts)-1; 0 means unpartitioned
	// rows holds every build row in input order; next[i] is the index of
	// the next row sharing row i's key, or -1 at the end of a chain.
	rows []value.Row
	next []int32
	// capRows is the modeled row capacity the table was pre-sized to;
	// hint is the per-partition make() hint derived from it.
	capRows  int
	hint     int
	presized bool
}

// newJoinTable returns an empty table with nParts partitions (a power of
// two) pre-sized for est build rows. The 2x headroom means an estimate no
// worse than 2x under the actual build size still avoids modeled growth.
func newJoinTable(est float64, nParts int) *joinTable {
	if nParts < 1 {
		nParts = 1
	}
	t := &joinTable{parts: make([]joinPart, nParts), mask: uint64(nParts - 1), capRows: minJoinTableCap}
	if est > 0 {
		t.presized = true
		need := 2 * est
		for float64(t.capRows) < need && t.capRows < maxJoinTablePresize {
			t.capRows <<= 1
		}
	}
	t.hint = t.capRows / nParts
	if t.hint < 8 {
		t.hint = 8
	}
	return t
}

// insert links row index i (whose key is v) onto its chain in partition
// p. The lazily created per-kind maps allocate once per partition, not
// per row; the chains themselves live in the shared next array.
//
//qo:hotpath
func (p *joinPart) insert(t *joinTable, v value.Value, i int32) {
	switch v.Kind {
	case catalog.String:
		if p.strs == nil {
			p.strs = make(map[string]joinChain, t.hint)
		}
		if c, ok := p.strs[v.S]; ok {
			t.next[c.tail] = i
			c.tail = i
			p.strs[v.S] = c
		} else {
			p.strs[v.S] = joinChain{head: i, tail: i}
		}
	case catalog.Float:
		if p.flts == nil {
			p.flts = make(map[float64]joinChain, t.hint)
		}
		if c, ok := p.flts[v.F]; ok {
			t.next[c.tail] = i
			c.tail = i
			p.flts[v.F] = c
		} else {
			p.flts[v.F] = joinChain{head: i, tail: i}
		}
	default:
		if p.ints == nil {
			p.ints = make(map[int64]joinChain, t.hint)
		}
		if c, ok := p.ints[v.I]; ok {
			t.next[c.tail] = i
			c.tail = i
			p.ints[v.I] = c
		} else {
			p.ints[v.I] = joinChain{head: i, tail: i}
		}
	}
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer for the partition hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64str hashes a string key for partitioning (FNV-1a).
func fnv64str(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// partIndex maps a key to its partition. Values that compare equal as map
// keys must hash equally: -0 and +0 are the same float64 map key, so they
// are folded before hashing. (NaN never equals anything, so any partition
// is correct for it.)
//
//qo:hotpath
func (t *joinTable) partIndex(v value.Value) int {
	if t.mask == 0 {
		return 0
	}
	var h uint64
	switch v.Kind {
	case catalog.String:
		h = fnv64str(v.S)
	case catalog.Float:
		f := v.F
		if f == 0 {
			f = 0
		}
		h = mix64(math.Float64bits(f))
	default:
		h = mix64(uint64(v.I))
	}
	return int(h & t.mask)
}

// first returns the head row index of v's chain, or -1 when no build row
// has that key. Continue with t.next[idx]; rows come out in build-input
// order.
//
//qo:hotpath
func (t *joinTable) first(v value.Value) int32 {
	p := &t.parts[t.partIndex(v)]
	switch v.Kind {
	case catalog.String:
		if c, ok := p.strs[v.S]; ok {
			return c.head
		}
	case catalog.Float:
		if c, ok := p.flts[v.F]; ok {
			return c.head
		}
	default:
		if c, ok := p.ints[v.I]; ok {
			return c.head
		}
	}
	return -1
}

// growCount returns the modeled number of hash-table doublings the build
// incurred: how many times the pre-sized capacity had to double to hold
// the rows actually inserted. Zero when the pre-size (or the minimum
// capacity) covered the build.
func (t *joinTable) growCount() int {
	g := 0
	for c := t.capRows; c < len(t.rows); c <<= 1 {
		g++
	}
	return g
}

// recordMetrics exports the build's pre-size outcome. Nil registries cost
// nothing, so hand-built plans and tests run unmetered.
func (t *joinTable) recordMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("robustqo_hashjoin_builds_total").Inc()
	if len(t.parts) > 1 {
		reg.Counter("robustqo_hashjoin_parallel_builds_total").Inc()
	}
	if g := t.growCount(); g > 0 {
		reg.Counter("robustqo_hashjoin_rehashes_total").Add(int64(g))
	} else if t.presized {
		reg.Counter("robustqo_hashjoin_presize_hits_total").Inc()
	}
}

// buildJoinTable builds the join table over buildRows keyed by column
// bIdx. est is the optimizer's posterior T-quantile estimate of the build
// cardinality (zero when the plan was built by hand); dop > 1 partitions
// the build across a worker pool once it is large enough to pay for the
// scatter pass. The resulting table is identical — same keys, same
// per-key chain order — whichever path built it.
func buildJoinTable(buildRows []value.Row, bIdx int, est float64, dop int) *joinTable {
	if dop > 1 && len(buildRows) >= joinPartitionThreshold {
		return buildJoinTableParallel(buildRows, bIdx, est, dop)
	}
	t := newJoinTable(est, 1)
	t.rows = buildRows
	t.next = newChainArray(len(buildRows))
	p := &t.parts[0]
	for i, r := range buildRows {
		p.insert(t, r[bIdx], int32(i))
	}
	return t
}

// newChainArray returns a next-index array with every slot at -1 (end of
// chain).
func newChainArray(n int) []int32 {
	next := make([]int32, n)
	for i := range next {
		next[i] = -1
	}
	return next
}

// buildJoinTableParallel partitions the build across dop workers in two
// phases. Phase 1 (scatter): workers claim fixed-size morsels of the
// build rows off an atomic counter and bucket each morsel's row indices
// by partition into a per-morsel slot — every slot is written by exactly
// one worker, so the phase is lock-free. Phase 2 (build): workers claim
// whole partitions off a second counter; the owning worker walks the
// morsel slots in order, chaining its partition's rows into the
// partition-local maps. A chain only ever writes next[] slots of rows in
// its own partition, so the phase is lock-free too, and walking morsels
// in order preserves build-input order per key — which is what keeps
// parallel join output byte-identical to serial.
//
// The workers charge no counters: the build work is the serial operator's
// HashBuilds charge, which the coordinator applies once, outside this
// function — exactly as the serial Open does.
func buildJoinTableParallel(buildRows []value.Row, bIdx int, est float64, dop int) *joinTable {
	nParts := 1
	for nParts < dop {
		nParts <<= 1
	}
	t := newJoinTable(est, nParts)
	t.rows = buildRows
	t.next = newChainArray(len(buildRows))
	nMorsels := (len(buildRows) + MorselSize - 1) / MorselSize
	scattered := make([][][]int32, nMorsels)
	var claim atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(dop, nMorsels); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(claim.Add(1)) - 1
				if m >= nMorsels {
					return
				}
				lo := m * MorselSize
				hi := min(lo+MorselSize, len(buildRows))
				buckets := make([][]int32, nParts)
				for i := lo; i < hi; i++ {
					p := t.partIndex(buildRows[i][bIdx])
					buckets[p] = append(buckets[p], int32(i))
				}
				scattered[m] = buckets
			}
		}()
	}
	wg.Wait()
	var pclaim atomic.Int64
	for w := 0; w < min(dop, nParts); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pi := int(pclaim.Add(1)) - 1
				if pi >= nParts {
					return
				}
				part := &t.parts[pi]
				for m := 0; m < nMorsels; m++ {
					for _, i := range scattered[m][pi] {
						part.insert(t, buildRows[i][bIdx], i)
					}
				}
			}
		}()
	}
	wg.Wait()
	return t
}
