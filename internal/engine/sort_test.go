package engine

import (
	"testing"

	"robustqo/internal/expr"
	"robustqo/internal/testkit"
)

func TestSortAscendingAndDescending(t *testing.T) {
	_, ctx := testDB(t, 20, 3, 8)
	asc := &Sort{
		Input: &SeqScan{Table: "lineitem"},
		By:    []SortKey{{Col: expr.ColumnRef{Table: "lineitem", Column: "l_ship"}}},
	}
	res, counters, _, err := Run(ctx, asc)
	if err != nil {
		t.Fatal(err)
	}
	shipIdx, _ := res.Schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_ship"})
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][shipIdx].I < res.Rows[i-1][shipIdx].I {
			t.Fatal("ascending sort violated")
		}
	}
	if counters.SortTuples != int64(len(res.Rows)) {
		t.Errorf("SortTuples = %d", counters.SortTuples)
	}
	desc := &Sort{
		Input: &SeqScan{Table: "lineitem"},
		By:    []SortKey{{Col: expr.ColumnRef{Table: "lineitem", Column: "l_ship"}, Desc: true}},
	}
	res, _, _, err = Run(ctx, desc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][shipIdx].I > res.Rows[i-1][shipIdx].I {
			t.Fatal("descending sort violated")
		}
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	_, ctx := testDB(t, 20, 3, 4)
	node := &Sort{
		Input: &SeqScan{Table: "lineitem"},
		By: []SortKey{
			{Col: expr.ColumnRef{Table: "lineitem", Column: "l_partkey"}},
			{Col: expr.ColumnRef{Table: "lineitem", Column: "l_price"}, Desc: true},
		},
	}
	res, _, _, err := Run(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	pkIdx, _ := res.Schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_partkey"})
	prIdx, _ := res.Schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_price"})
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[pkIdx].I > b[pkIdx].I {
			t.Fatal("primary key order violated")
		}
		if a[pkIdx].I == b[pkIdx].I && a[prIdx].F < b[prIdx].F {
			t.Fatal("secondary descending order violated")
		}
	}
}

func TestSortErrors(t *testing.T) {
	_, ctx := testDB(t, 5, 1, 3)
	if _, _, _, err := Run(ctx, &Sort{Input: &SeqScan{Table: "orders"}}); err == nil {
		t.Error("no sort keys accepted")
	}
	bad := &Sort{
		Input: &SeqScan{Table: "orders"},
		By:    []SortKey{{Col: expr.ColumnRef{Column: "ghost"}}},
	}
	if _, _, _, err := Run(ctx, bad); err == nil {
		t.Error("unknown sort column accepted")
	}
	if got := (SortKey{Col: expr.ColumnRef{Column: "x"}, Desc: true}).String(); got != "x DESC" {
		t.Errorf("SortKey string = %q", got)
	}
}

func TestLimit(t *testing.T) {
	db, ctx := testDB(t, 10, 2, 3)
	res, _, _, err := Run(ctx, &Limit{Input: &SeqScan{Table: "lineitem"}, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("limit rows = %d", len(res.Rows))
	}
	// Limit larger than input passes everything.
	res, _, _, err = Run(ctx, &Limit{Input: &SeqScan{Table: "lineitem"}, N: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != testkit.Table(db, "lineitem").NumRows() {
		t.Errorf("oversize limit rows = %d", len(res.Rows))
	}
	// Zero keeps nothing; negative errors.
	res, _, _, err = Run(ctx, &Limit{Input: &SeqScan{Table: "lineitem"}, N: 0})
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("zero limit = %d rows, %v", len(res.Rows), err)
	}
	if _, _, _, err := Run(ctx, &Limit{Input: &SeqScan{Table: "lineitem"}, N: -1}); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestSortLimitExplain(t *testing.T) {
	plan := &Limit{
		N: 3,
		Input: &Sort{
			Input: &SeqScan{Table: "orders"},
			By:    []SortKey{{Col: expr.ColumnRef{Table: "orders", Column: "o_total"}, Desc: true}},
		},
	}
	s := Explain(plan)
	for _, want := range []string{"Limit(3)", "Sort(orders.o_total DESC)", "SeqScan(orders)"} {
		if !contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
