package engine

// Pins the vectorized-probe acceptance criterion: the vectorized
// hashJoinOp must allocate at least 3x less per operation than the
// row-at-a-time operator it replaced. The old operator is preserved below
// verbatim (map[any] table keyed by Value.Key, per-row scratch-row
// materialization, one heap clone plus one interface box plus a per-key
// slice per build row) as the measured baseline. The replacement removes
// every one of those per-row costs: build rows land in shared arena
// slabs, keys go into native-keyed chain maps with no boxing, and per-key
// row lists are chains through one next-index array instead of individual
// slices.
//
// Keys are offset well past 255 because the Go runtime interns small
// boxed integers — a baseline over keys 0..255 would look allocation
// free and make the comparison meaningless.

import (
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/cost"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

const benchKeyBase = 10_000_000

// benchRowsNode is a Node serving canned rows, so probe measurements see
// only join work — no storage access, no filter evaluation.
type benchRowsNode struct {
	schema expr.RelSchema
	rows   []value.Row
}

func benchInts(name string, n, fanIn int) *benchRowsNode {
	schema := expr.RelSchema{Fields: []expr.Field{
		{Table: name, Column: "key", Type: catalog.Int},
		{Table: name, Column: "val", Type: catalog.Int},
	}}
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.Int(benchKeyBase + int64(i/fanIn)), value.Int(int64(i))}
	}
	return &benchRowsNode{schema: schema, rows: rows}
}

func (n *benchRowsNode) Schema(*Context) (expr.RelSchema, error) { return n.schema, nil }
func (n *benchRowsNode) Describe() string                        { return "benchRows" }
func (n *benchRowsNode) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return execStream(ctx, n, counters)
}
func (n *benchRowsNode) Stream() Operator { return &benchRowsOp{node: n} }

type benchRowsOp struct {
	node *benchRowsNode
	next int
	out  *Batch
}

func (o *benchRowsOp) Open(ctx *Context, counters *cost.Counters) error {
	o.next = 0
	o.out = getBatch(o.node.schema)
	return nil
}

func (o *benchRowsOp) Next() (*Batch, error) {
	rows := o.node.rows
	if o.next >= len(rows) {
		return nil, nil
	}
	end := min(o.next+BatchSize, len(rows))
	o.out.Reset()
	for _, r := range rows[o.next:end] {
		o.out.AppendRow(r)
	}
	o.next = end
	return o.out, nil
}

func (o *benchRowsOp) Close() {
	putBatch(o.out)
	o.out = nil
}

// rowAtATimeJoinOp is the pre-vectorization hashJoinOp, kept verbatim as
// the benchmark baseline: build into map[any] via Key() boxing, probe by
// materializing each row into a scratch buffer and boxing its key.
type rowAtATimeJoinOp struct {
	node     *HashJoin
	counters *cost.Counters
	probe    Operator
	table    map[any][]value.Row
	pIdx     int
	pBuf     value.Row
	out      *Batch
}

func (o *rowAtATimeJoinOp) Open(ctx *Context, counters *cost.Counters) error {
	j := o.node
	buildSchema, err := j.Build.Schema(ctx)
	if err != nil {
		return err
	}
	probeSchema, err := j.Probe.Schema(ctx)
	if err != nil {
		return err
	}
	bIdx, err := buildSchema.Resolve(j.BuildCol)
	if err != nil {
		return err
	}
	o.pIdx, err = probeSchema.Resolve(j.ProbeCol)
	if err != nil {
		return err
	}
	buildRows, err := openAndDrain(ctx, j.Build, counters)
	if err != nil {
		return err
	}
	o.table = make(map[any][]value.Row, len(buildRows))
	for _, row := range buildRows {
		k := row[bIdx].Key()
		o.table[k] = append(o.table[k], row)
	}
	counters.HashBuilds += int64(len(buildRows))
	o.counters = counters
	o.probe = j.Probe.Stream()
	if err := o.probe.Open(ctx, counters); err != nil {
		return err
	}
	o.pBuf = make(value.Row, len(probeSchema.Fields))
	o.out = getBatch(buildSchema.Concat(probeSchema))
	return nil
}

func (o *rowAtATimeJoinOp) Next() (*Batch, error) {
	for {
		b, err := o.probe.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		o.counters.HashProbes += int64(b.Len())
		o.out.Reset()
		for r := 0; r < b.Len(); r++ {
			b.Row(r, o.pBuf)
			for _, bRow := range o.table[o.pBuf[o.pIdx].Key()] {
				o.counters.Tuples++
				o.out.appendConcat(bRow, o.pBuf)
			}
		}
		if o.out.Len() > 0 {
			return o.out, nil
		}
	}
}

func (o *rowAtATimeJoinOp) Close() {
	if o.probe != nil {
		o.probe.Close()
	}
	putBatch(o.out)
	o.out = nil
}

// benchJoinFixture builds the shared probe scenario: 2k build rows, 16k
// probe rows, every probe matching exactly one build row.
func benchJoinFixture() (*Context, *HashJoin) {
	ctx := &Context{}
	node := &HashJoin{
		Build:    benchInts("b", 2048, 1),
		Probe:    benchInts("p", 16384, 8),
		BuildCol: expr.ColumnRef{Table: "b", Column: "key"},
		ProbeCol: expr.ColumnRef{Table: "p", Column: "key"},
	}
	return ctx, node
}

// drainJoin opens op and pulls it dry without cloning rows out, so the
// measurement isolates build+probe from output materialization. Returns
// the number of output rows seen.
func drainJoin(ctx *Context, op Operator) (int, error) {
	defer op.Close()
	var c cost.Counters
	if err := op.Open(ctx, &c); err != nil {
		return 0, err
	}
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Len()
	}
}

// TestVectorizedProbeAllocs pins the >=3x allocation reduction of the
// vectorized probe against the row-at-a-time baseline.
func TestVectorizedProbeAllocs(t *testing.T) {
	ctx, node := benchJoinFixture()
	check := func(n int, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if n != 16384 {
			t.Fatalf("join produced %d rows, want 16384", n)
		}
	}
	vec := testing.AllocsPerRun(5, func() {
		check(drainJoin(ctx, &hashJoinOp{node: node}))
	})
	base := testing.AllocsPerRun(5, func() {
		check(drainJoin(ctx, &rowAtATimeJoinOp{node: node}))
	})
	if vec < 1 {
		vec = 1
	}
	if ratio := base / vec; ratio < 3 {
		t.Fatalf("vectorized probe allocs %.0f vs row-at-a-time %.0f: ratio %.2f, want >= 3", vec, base, ratio)
	}
	t.Logf("allocs/op: vectorized %.0f, row-at-a-time %.0f (%.1fx)", vec, base, base/vec)
}

// TestRowAtATimeBaselineEquivalence keeps the baseline honest: it must
// still produce the vectorized operator's exact rows and counters, or the
// allocation comparison above measures two different joins.
func TestRowAtATimeBaselineEquivalence(t *testing.T) {
	ctx, node := benchJoinFixture()
	drain := func(op Operator) ([]value.Row, cost.Counters) {
		t.Helper()
		defer op.Close()
		var c cost.Counters
		if err := op.Open(ctx, &c); err != nil {
			t.Fatal(err)
		}
		rows, err := drainRows(op)
		if err != nil {
			t.Fatal(err)
		}
		return rows, c
	}
	vRows, vc := drain(&hashJoinOp{node: node})
	bRows, bc := drain(&rowAtATimeJoinOp{node: node})
	if len(vRows) != len(bRows) {
		t.Fatalf("vectorized %d rows, baseline %d", len(vRows), len(bRows))
	}
	for i := range vRows {
		if rowKey(vRows[i]) != rowKey(bRows[i]) {
			t.Fatalf("row %d: vectorized %v, baseline %v", i, vRows[i], bRows[i])
		}
	}
	if vc != bc {
		t.Fatalf("counters diverged:\nvectorized %+v\nbaseline   %+v", vc, bc)
	}
}

// BenchmarkHashJoinProbe compares the two probe implementations over the
// same canned inputs; run with -benchmem to see the allocation gap the
// test above pins.
func BenchmarkHashJoinProbe(b *testing.B) {
	ctx, node := benchJoinFixture()
	for _, bench := range []struct {
		name string
		mk   func() Operator
	}{
		{"vectorized", func() Operator { return &hashJoinOp{node: node} }},
		{"rowAtATime", func() Operator { return &rowAtATimeJoinOp{node: node} }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := drainJoin(ctx, bench.mk())
				if err != nil {
					b.Fatal(err)
				}
				if n != 16384 {
					b.Fatalf("join produced %d rows, want 16384", n)
				}
			}
		})
	}
}
