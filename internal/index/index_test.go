package index

import (
	"testing"
	"testing/quick"

	"robustqo/internal/catalog"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

func buildTestTable(t *testing.T, keys []int64) *storage.Table {
	t.Helper()
	tab, err := storage.NewTable(&catalog.TableSchema{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: catalog.Int},
			{Name: "s", Type: catalog.String},
		},
		Indexes: []catalog.Index{{Name: "ix_k", Column: "k", Kind: catalog.NonClustered}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := tab.Append(value.Row{value.Int(k), value.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestBuildAndRange(t *testing.T) {
	tab := buildTestTable(t, []int64{5, 3, 8, 3, 1, 9, 3})
	ix, err := Build(tab, tab.Schema().Indexes[0])
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 7 || ix.Table() != "t" || ix.Meta().Column != "k" {
		t.Errorf("metadata wrong: len=%d table=%s", ix.Len(), ix.Table())
	}
	rids, scanned := ix.Range(3, 5)
	if scanned != 4 {
		t.Errorf("scanned = %d", scanned)
	}
	// Keys 3 at rids {1,3,6}, key 5 at rid 0 -> ascending rids {0,1,3,6}.
	want := []int32{0, 1, 3, 6}
	if len(rids) != len(want) {
		t.Fatalf("rids = %v", rids)
	}
	for i := range want {
		if rids[i] != want[i] {
			t.Errorf("rids[%d] = %d, want %d", i, rids[i], want[i])
		}
	}
}

func TestRangeEmptyAndInverted(t *testing.T) {
	tab := buildTestTable(t, []int64{1, 2, 3})
	ix, _ := Build(tab, tab.Schema().Indexes[0])
	if rids, n := ix.Range(10, 20); rids != nil || n != 0 {
		t.Errorf("out-of-range = %v, %d", rids, n)
	}
	if rids, n := ix.Range(3, 1); rids != nil || n != 0 {
		t.Errorf("inverted = %v, %d", rids, n)
	}
	if n := ix.CountRange(5, 2); n != 0 {
		t.Errorf("CountRange inverted = %d", n)
	}
}

func TestEqualAndCount(t *testing.T) {
	tab := buildTestTable(t, []int64{7, 7, 2, 7})
	ix, _ := Build(tab, tab.Schema().Indexes[0])
	rids, scanned := ix.Equal(7)
	if scanned != 3 || len(rids) != 3 {
		t.Errorf("Equal(7) = %v, %d", rids, scanned)
	}
	if n := ix.CountRange(2, 7); n != 4 {
		t.Errorf("CountRange = %d", n)
	}
	if rids, _ := ix.Equal(99); rids != nil {
		t.Errorf("Equal(99) = %v", rids)
	}
}

func TestMinMaxKey(t *testing.T) {
	tab := buildTestTable(t, []int64{4, -2, 10})
	ix, _ := Build(tab, tab.Schema().Indexes[0])
	if k, ok := ix.MinKey(); !ok || k != -2 {
		t.Errorf("MinKey = %d, %v", k, ok)
	}
	if k, ok := ix.MaxKey(); !ok || k != 10 {
		t.Errorf("MaxKey = %d, %v", k, ok)
	}
	empty := buildTestTable(t, nil)
	ixe, _ := Build(empty, empty.Schema().Indexes[0])
	if _, ok := ixe.MinKey(); ok {
		t.Error("empty MinKey ok")
	}
	if _, ok := ixe.MaxKey(); ok {
		t.Error("empty MaxKey ok")
	}
}

func TestBuildErrors(t *testing.T) {
	tab := buildTestTable(t, []int64{1})
	if _, err := Build(tab, catalog.Index{Name: "bad", Column: "missing"}); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := Build(tab, catalog.Index{Name: "bad", Column: "s"}); err == nil {
		t.Error("string column accepted")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		lists [][]int32
		want  []int32
	}{
		{nil, nil},
		{[][]int32{{1, 2, 3}}, []int32{1, 2, 3}},
		{[][]int32{{1, 2, 3}, {2, 3, 4}}, []int32{2, 3}},
		{[][]int32{{1, 2, 3}, {2, 3, 4}, {3}}, []int32{3}},
		{[][]int32{{1, 2}, {3, 4}}, nil},
		{[][]int32{{}, {1}}, nil},
	}
	for _, c := range cases {
		got := Intersect(c.lists...)
		if len(got) != len(c.want) {
			t.Errorf("Intersect(%v) = %v, want %v", c.lists, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Intersect(%v)[%d] = %d, want %d", c.lists, i, got[i], c.want[i])
			}
		}
	}
}

func TestIntersectDoesNotAliasInput(t *testing.T) {
	a := []int32{1, 2, 3}
	got := Intersect(a, []int32{1, 2, 3})
	got[0] = 99
	if a[0] != 1 {
		t.Error("Intersect aliased its input")
	}
}

func TestRangeMatchesNaiveProperty(t *testing.T) {
	f := func(rawKeys []int16, loRaw, hiRaw int16) bool {
		keys := make([]int64, len(rawKeys))
		for i, k := range rawKeys {
			keys[i] = int64(k % 100)
		}
		lo, hi := int64(loRaw%100), int64(hiRaw%100)
		if lo > hi {
			lo, hi = hi, lo
		}
		tab, err := storage.NewTable(&catalog.TableSchema{
			Name:    "q",
			Columns: []catalog.Column{{Name: "k", Type: catalog.Int}},
		})
		if err != nil {
			return false
		}
		for _, k := range keys {
			if err := tab.Append(value.Row{value.Int(k)}); err != nil {
				return false
			}
		}
		ix, err := Build(tab, catalog.Index{Name: "ix", Column: "k"})
		if err != nil {
			return false
		}
		rids, scanned := ix.Range(lo, hi)
		wantSet := make(map[int32]bool)
		for i, k := range keys {
			if k >= lo && k <= hi {
				wantSet[int32(i)] = true
			}
		}
		if len(rids) != len(wantSet) || scanned != len(wantSet) {
			return false
		}
		prev := int32(-1)
		for _, r := range rids {
			if !wantSet[r] || r <= prev {
				return false
			}
			prev = r
		}
		return ix.CountRange(lo, hi) == len(wantSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntersectAgainstMapProperty(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 100; trial++ {
		mk := func() []int32 {
			n := testkit.Intn(rng, 30)
			set := make(map[int32]bool)
			for i := 0; i < n; i++ {
				set[int32(testkit.Intn(rng, 40))] = true
			}
			out := make([]int32, 0, len(set))
			for k := int32(0); k < 40; k++ {
				if set[k] {
					out = append(out, k)
				}
			}
			return out
		}
		a, b, c := mk(), mk(), mk()
		got := Intersect(a, b, c)
		inAll := func(x int32, lists ...[]int32) bool {
			for _, l := range lists {
				found := false
				for _, v := range l {
					if v == x {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		want := 0
		for k := int32(0); k < 40; k++ {
			if inAll(k, a, b, c) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: |intersect| = %d, want %d", trial, len(got), want)
		}
		for _, x := range got {
			if !inAll(x, a, b, c) {
				t.Fatalf("trial %d: %d not in all inputs", trial, x)
			}
		}
	}
}

func TestSetLookupAndBuildAll(t *testing.T) {
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	tab, err := db.CreateTable(&catalog.TableSchema{
		Name: "z",
		Columns: []catalog.Column{
			{Name: "a", Type: catalog.Int},
			{Name: "b", Type: catalog.Date},
		},
		Indexes: []catalog.Index{
			{Name: "ix_a", Column: "a", Kind: catalog.NonClustered},
			{Name: "ix_b", Column: "b", Kind: catalog.NonClustered},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tab.Append(value.Row{value.Int(1), value.Date(2)})
	set, err := BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.Lookup("z", "a"); !ok {
		t.Error("Lookup(z, a) missing")
	}
	if _, ok := set.Lookup("z", "b"); !ok {
		t.Error("Lookup(z, b) missing")
	}
	if _, ok := set.Lookup("z", "c"); ok {
		t.Error("Lookup(z, c) found")
	}
	if _, ok := set.Lookup("y", "a"); ok {
		t.Error("Lookup(y, a) found")
	}
}

func TestBuildAllPropagatesError(t *testing.T) {
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	_, err := db.CreateTable(&catalog.TableSchema{
		Name: "bad",
		Columns: []catalog.Column{
			{Name: "s", Type: catalog.String},
		},
		Indexes: []catalog.Index{{Name: "ix_s", Column: "s"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAll(db); err == nil {
		t.Error("string index build succeeded")
	}
}
