// Package index implements secondary indexes over integer-valued (Int and
// Date) columns: a sorted (key, rid) array supporting point and range
// lookups, plus RID-list intersection — the primitive behind the paper's
// "index intersection" access path.
package index

import (
	"fmt"
	"sort"

	"robustqo/internal/catalog"
	"robustqo/internal/storage"
)

// Entry is one leaf entry of an index.
type Entry struct {
	Key int64
	RID int32
}

// Index is a read-only secondary index over one column of a table,
// physically a (key, rid) array sorted by key then rid.
type Index struct {
	meta    catalog.Index
	table   string
	entries []Entry
}

// Build constructs an index over the given column of the table. Only Int
// and Date columns can be indexed.
func Build(t *storage.Table, meta catalog.Index) (*Index, error) {
	colIdx := t.Schema().ColumnIndex(meta.Column)
	if colIdx < 0 {
		return nil, fmt.Errorf("index: table %q has no column %q", t.Name(), meta.Column)
	}
	col, _ := t.Schema().Column(meta.Column)
	if col.Type != catalog.Int && col.Type != catalog.Date {
		return nil, fmt.Errorf("index: column %q of table %q has unindexable type %s", meta.Column, t.Name(), col.Type)
	}
	keys := t.Ints(colIdx)
	entries := make([]Entry, len(keys))
	for i, k := range keys {
		entries[i] = Entry{Key: k, RID: int32(i)}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].RID < entries[j].RID
	})
	return &Index{meta: meta, table: t.Name(), entries: entries}, nil
}

// Meta returns the catalog descriptor of the index.
func (ix *Index) Meta() catalog.Index { return ix.meta }

// Table returns the indexed table's name.
func (ix *Index) Table() string { return ix.table }

// Len returns the number of leaf entries.
func (ix *Index) Len() int { return len(ix.entries) }

// Range returns the RIDs of rows whose key lies in [lo, hi], in ascending
// RID order, along with the number of leaf entries scanned (equal to the
// number of matches; the cost model charges IndexEntry per scanned entry).
func (ix *Index) Range(lo, hi int64) (rids []int32, scanned int) {
	if hi < lo {
		return nil, 0
	}
	start := sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].Key >= lo })
	end := sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].Key > hi })
	if start >= end {
		return nil, 0
	}
	rids = make([]int32, end-start)
	for i := start; i < end; i++ {
		rids[i-start] = ix.entries[i].RID
	}
	sortRIDs(rids)
	return rids, end - start
}

// Equal returns the RIDs of rows whose key equals k, in ascending RID
// order, and the number of leaf entries scanned.
func (ix *Index) Equal(k int64) ([]int32, int) {
	return ix.Range(k, k)
}

// CountRange returns how many leaf entries fall in [lo, hi] without
// materializing the RID list.
func (ix *Index) CountRange(lo, hi int64) int {
	if hi < lo {
		return 0
	}
	start := sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].Key >= lo })
	end := sort.Search(len(ix.entries), func(i int) bool { return ix.entries[i].Key > hi })
	return end - start
}

// MinKey and MaxKey return the extreme keys; ok is false for an empty
// index.
func (ix *Index) MinKey() (int64, bool) {
	if len(ix.entries) == 0 {
		return 0, false
	}
	return ix.entries[0].Key, true
}

// MaxKey returns the largest key in the index.
func (ix *Index) MaxKey() (int64, bool) {
	if len(ix.entries) == 0 {
		return 0, false
	}
	return ix.entries[len(ix.entries)-1].Key, true
}

func sortRIDs(rids []int32) {
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
}

// Intersect returns the RIDs common to every input list. Inputs must each
// be in ascending order (as returned by Range and Equal); the output is
// ascending as well. Intersecting zero lists yields nil.
func Intersect(lists ...[]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	// Start from the smallest list to bound the output early.
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	result := lists[smallest]
	for i, l := range lists {
		if i == smallest {
			continue
		}
		result = intersect2(result, l)
		if len(result) == 0 {
			return nil
		}
	}
	// Clone so callers cannot alias an input list.
	out := make([]int32, len(result))
	copy(out, result)
	return out
}

func intersect2(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Set is a collection of indexes keyed by table and column, the engine's
// runtime view of the catalog's index metadata.
type Set struct {
	byKey map[string]*Index
}

// NewSet returns an empty index set.
func NewSet() *Set { return &Set{byKey: make(map[string]*Index)} }

// BuildAll constructs every index declared in the database's catalog.
func BuildAll(db *storage.Database) (*Set, error) {
	s := NewSet()
	for _, name := range db.Catalog.TableNames() {
		t, ok := db.Table(name)
		if !ok {
			continue
		}
		for _, meta := range t.Schema().Indexes {
			ix, err := Build(t, meta)
			if err != nil {
				return nil, err
			}
			s.Add(ix)
		}
	}
	return s, nil
}

// Add registers an index, replacing any previous index on the same column.
func (s *Set) Add(ix *Index) {
	s.byKey[ix.Table()+"\x00"+ix.Meta().Column] = ix
}

// Lookup returns the index over table.column, if one exists.
func (s *Set) Lookup(table, column string) (*Index, bool) {
	ix, ok := s.byKey[table+"\x00"+column]
	return ix, ok
}
