package core

import (
	"fmt"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/histogram"
	"robustqo/internal/sample"
)

// IndependentSamplesEstimator is the paper's first fallback when a join
// synopsis is unavailable for an expression (Section 3.5, "No statistics
// available"): estimate the selectivity of each table's own predicates
// from that table's sample, then combine under the attribute value
// independence and containment assumptions. Predicates that cannot be
// attributed to a single sampled table contribute magic constants.
//
// Each per-table estimate still goes through the Bayesian posterior and
// the confidence threshold, so even the degraded path responds to the
// robustness knob — only the cross-table combination reintroduces the
// independence assumption (and with it the compounding error the paper
// warns about).
type IndependentSamplesEstimator struct {
	Samples   *sample.Set
	Catalog   *catalog.Catalog
	Prior     Prior
	Threshold ConfidenceThreshold
}

// Name implements Estimator.
func (e *IndependentSamplesEstimator) Name() string {
	return fmt.Sprintf("independent-samples(%s)", e.Threshold)
}

// Estimate implements Estimator.
func (e *IndependentSamplesEstimator) Estimate(req Request) (Estimate, error) {
	if e.Samples == nil || e.Catalog == nil {
		return Estimate{}, fmt.Errorf("core: independent-samples estimator needs samples and a catalog")
	}
	if err := e.Threshold.Validate(); err != nil {
		return Estimate{}, err
	}
	if len(req.Tables) == 0 {
		return Estimate{}, fmt.Errorf("core: estimate over no tables")
	}
	root, err := e.Catalog.RootOf(req.Tables)
	if err != nil {
		return Estimate{}, err
	}
	rootSample, ok := e.Samples.Synopsis(root)
	if !ok {
		return Estimate{}, fmt.Errorf("core: no sample for root table %q", root)
	}
	// Attribute each top-level conjunct to the single query table owning
	// all its columns; group per table.
	perTable := make(map[string][]expr.Expr)
	sel := 1.0
	for _, term := range expr.SplitConjuncts(req.Pred) {
		owner, ok := e.ownerOf(req.Tables, term)
		if !ok {
			sel *= magicFor(term)
			continue
		}
		perTable[owner] = append(perTable[owner], term)
	}
	// One robust estimate per table over its own conjunct conjunction,
	// combined multiplicatively (AVI across tables + containment).
	for table, terms := range perTable {
		syn, ok := e.Samples.Synopsis(table)
		if !ok {
			for _, term := range terms {
				sel *= magicFor(term)
			}
			continue
		}
		k, err := syn.Count(expr.Conj(terms...))
		if err != nil {
			return Estimate{}, fmt.Errorf("core: table %q sample: %v", table, err)
		}
		s, err := RobustSelectivity(k, syn.Size(), e.Prior, e.Threshold)
		if err != nil {
			return Estimate{}, err
		}
		sel *= s
	}
	if sel > 1 {
		sel = 1
	}
	return Estimate{Selectivity: sel, Rows: sel * float64(rootSample.N)}, nil
}

// ownerOf finds the unique query table owning every column of the term.
func (e *IndependentSamplesEstimator) ownerOf(tables []string, term expr.Expr) (string, bool) {
	owner := ""
	for _, ref := range expr.Columns(term) {
		var t string
		if ref.Table != "" {
			found := false
			for _, qt := range tables {
				if qt == ref.Table {
					found = true
					break
				}
			}
			if !found {
				return "", false
			}
			s, ok := e.Catalog.Table(ref.Table)
			if !ok || s.ColumnIndex(ref.Column) < 0 {
				return "", false
			}
			t = ref.Table
		} else {
			matches := 0
			for _, qt := range tables {
				s, ok := e.Catalog.Table(qt)
				if ok && s.ColumnIndex(ref.Column) >= 0 {
					t = qt
					matches++
				}
			}
			if matches != 1 {
				return "", false
			}
		}
		if owner == "" {
			owner = t
		} else if owner != t {
			return "", false
		}
	}
	return owner, owner != ""
}

// magicFor picks the System-R magic constant matching a predicate shape.
func magicFor(term expr.Expr) float64 {
	switch n := term.(type) {
	case expr.Cmp:
		if n.Op == expr.EQ {
			return histogram.MagicEq
		}
		return histogram.MagicRange
	case expr.Between:
		return histogram.MagicRange
	default:
		return histogram.MagicOther
	}
}

var _ Estimator = (*IndependentSamplesEstimator)(nil)
