package core

import (
	"sync"
	"testing"

	"robustqo/internal/stats"
)

func TestQuantileCacheMemoizes(t *testing.T) {
	c := NewQuantileCache()
	d, err := stats.NewBeta(3.5, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Quantile(0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := c.Quantile(d, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cached quantile %g, want %g", got, want)
		}
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 4/1", hits, misses)
	}
	// Distinct keys miss independently.
	if _, err := c.Quantile(d, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Quantile(stats.Beta{Alpha: 1, Beta: 1}, 0.8); err != nil {
		t.Fatal(err)
	}
	hits, misses = c.Stats()
	if hits != 4 || misses != 3 {
		t.Fatalf("after new keys: hits=%d misses=%d, want 4/3", hits, misses)
	}
}

func TestQuantileCacheNilSafe(t *testing.T) {
	var c *QuantileCache
	d := stats.Beta{Alpha: 2, Beta: 2}
	got, err := c.Quantile(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("nil cache quantile %g, want %g", got, want)
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats %d/%d", h, m)
	}
}

func TestQuantileCacheConcurrent(t *testing.T) {
	c := NewQuantileCache()
	d := stats.Beta{Alpha: 4, Beta: 9}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Quantile(d, 0.8); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 400 {
		t.Fatalf("hits+misses = %d, want 400", hits+misses)
	}
	if misses < 1 || misses > 8 {
		// Racing first fills may each compute once, but the steady state
		// must be hits.
		t.Fatalf("misses = %d, want a handful at most", misses)
	}
}

// TestWithThresholdSharesCache pins the sharing property the optimizer
// relies on: per-query threshold copies reuse the same memoization.
func TestWithThresholdSharesCache(t *testing.T) {
	base := &BayesEstimator{Prior: Jeffreys, Threshold: 0.8, Quantiles: NewQuantileCache()}
	cp, err := base.WithThreshold(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Quantiles != base.Quantiles {
		t.Fatal("WithThreshold copy does not share the quantile cache")
	}
}
