package core

import (
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// partFactDB builds a fact table range-partitioned on f_key into 4 equal
// shards (keys 0..399, bounds 100/200/300), with a payload column f_a the
// test predicates filter on.
func partFactDB(t *testing.T, n int) *storage.Database {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	fact, err := db.CreateTable(&catalog.TableSchema{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_id", Type: catalog.Int},
			{Name: "f_key", Type: catalog.Int},
			{Name: "f_a", Type: catalog.Int},
		},
		PrimaryKey: "f_id",
		Partition: &catalog.PartitionSpec{
			Column: "f_key", Kind: catalog.RangePartition, Partitions: 4, Bounds: []int64{100, 200, 300},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(77)
	for i := 0; i < n; i++ {
		_ = fact.Append(value.Row{
			value.Int(int64(i)),
			value.Int(int64(testkit.Intn(rng, 400))),
			value.Int(int64(testkit.Intn(rng, 100))),
		})
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestObserveSumsShardPseudoCounts pins the posterior combination rule:
// observing over all shards must reproduce the sum of the per-shard
// observations, and observing a subset sums only that subset.
func TestObserveSumsShardPseudoCounts(t *testing.T) {
	db := partFactDB(t, 4000)
	syns, err := sample.BuildAll(db, 400, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewBayesEstimator(syns, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pred := testkit.Expr("f_a < 30")
	shards, ok := syns.Partitioned("fact")
	if !ok {
		t.Fatal("fact has no per-shard synopses")
	}
	wantK, wantN, wantPop := 0, 0, 0
	for _, syn := range shards {
		if syn == nil {
			continue
		}
		kp, err := syn.Count(pred)
		if err != nil {
			t.Fatal(err)
		}
		wantK += kp
		wantN += syn.Size()
		wantPop += syn.N
	}
	if wantPop != 4000 {
		t.Fatalf("shard populations sum to %d", wantPop)
	}
	k, n, pop, err := e.Observe(Request{Tables: []string{"fact"}, Pred: pred, Partitions: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if k != wantK || n != wantN || pop != wantPop {
		t.Fatalf("all-shard observe (%d,%d,%d), want (%d,%d,%d)", k, n, pop, wantK, wantN, wantPop)
	}
	// A subset sums only the listed shards.
	k1, n1, pop1, err := e.Observe(Request{Tables: []string{"fact"}, Pred: pred, Partitions: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if shards[1] == nil {
		t.Fatal("shard 1 unexpectedly empty")
	}
	k1want, _ := shards[1].Count(pred)
	if k1 != k1want || n1 != shards[1].Size() || pop1 != shards[1].N {
		t.Fatalf("single-shard observe (%d,%d,%d), want (%d,%d,%d)",
			k1, n1, pop1, k1want, shards[1].Size(), shards[1].N)
	}
	// nil Partitions uses the global synopsis unchanged.
	_, nGlobal, popGlobal, err := e.Observe(Request{Tables: []string{"fact"}, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if popGlobal != 4000 || nGlobal != 400 {
		t.Fatalf("global observe n=%d pop=%d", nGlobal, popGlobal)
	}
}

// TestPruningTightensEstimate is the gating property from the issue: with
// a predicate that constrains the partition key, the combined posterior's
// T-quantile row estimate over the surviving shards must be <= the
// unpruned (all-shard) estimate. Pruned shards cannot contribute matches
// (the key predicate excludes them), so pruning removes only non-matching
// samples: same k, smaller n and smaller population.
func TestPruningTightensEstimate(t *testing.T) {
	db := partFactDB(t, 4000)
	syns, err := sample.BuildAll(db, 400, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []ConfidenceThreshold{0.5, 0.8, 0.95} {
		e, err := NewBayesEstimator(syns, threshold)
		if err != nil {
			t.Fatal(err)
		}
		// Equality on the partition key: only shard 1 can match.
		pred := testkit.Expr("f_key = 150 AND f_a < 50")
		pruned, err := e.Estimate(Request{Tables: []string{"fact"}, Pred: pred, Partitions: []int{1}})
		if err != nil {
			t.Fatal(err)
		}
		unpruned, err := e.Estimate(Request{Tables: []string{"fact"}, Pred: pred, Partitions: []int{0, 1, 2, 3}})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Rows > unpruned.Rows {
			t.Errorf("T=%v: pruned estimate %.2f rows exceeds unpruned %.2f", threshold, pruned.Rows, unpruned.Rows)
		}
		// The posterior itself must reflect the reduced sample: fewer
		// observations, same or fewer matches.
		if pruned.Posterior.Alpha > unpruned.Posterior.Alpha {
			t.Errorf("T=%v: pruned posterior alpha %.1f exceeds unpruned %.1f", threshold, pruned.Posterior.Alpha, unpruned.Posterior.Alpha)
		}
		if pruned.Posterior.Beta >= unpruned.Posterior.Beta {
			t.Errorf("T=%v: pruning did not drop non-matching pseudo-counts (beta %.1f vs %.1f)",
				threshold, pruned.Posterior.Beta, unpruned.Posterior.Beta)
		}
	}
}

// TestObserveFallsBackWithoutShardSynopses: naming partitions on a table
// without per-shard synopses degrades to the global synopsis.
func TestObserveFallsBackWithoutShardSynopses(t *testing.T) {
	db := corrDB(t, 500, 10)
	syns, err := sample.BuildAll(db, 200, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewBayesEstimator(syns, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pred := testkit.Expr("f_a < 10")
	k1, n1, p1, err := e.Observe(Request{Tables: []string{"fact"}, Pred: pred, Partitions: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	k2, n2, p2, err := e.Observe(Request{Tables: []string{"fact"}, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || n1 != n2 || p1 != p2 {
		t.Fatalf("fallback observe (%d,%d,%d) != global (%d,%d,%d)", k1, n1, p1, k2, n2, p2)
	}
}
