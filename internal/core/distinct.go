package core

import (
	"fmt"
	"math"
	"strings"

	"robustqo/internal/expr"
	"robustqo/internal/sample"
)

// EstimateDistinct estimates the number of distinct values in a population
// of size total from a uniform sample of the values, using the GEE
// (Guaranteed-Error Estimator) of Charikar et al., an instance of the
// sampling-based distinct-value techniques the paper points to
// (Haas et al. [13]) for extending the procedure to GROUP BY cardinality:
//
//	D̂ = sqrt(total/n) · f1 + Σ_{j≥2} fj
//
// where fj is the number of distinct values appearing exactly j times in
// the sample. The estimate is clamped to [distinct-in-sample, total].
func EstimateDistinct(keys []string, total int) (float64, error) {
	n := len(keys)
	if n == 0 {
		return 0, fmt.Errorf("core: distinct estimation from an empty sample")
	}
	if total < n {
		total = n
	}
	freq := make(map[string]int, n)
	for _, k := range keys {
		freq[k]++
	}
	f1 := 0
	rest := 0
	for _, c := range freq {
		if c == 1 {
			f1++
		} else {
			rest++
		}
	}
	est := math.Sqrt(float64(total)/float64(n))*float64(f1) + float64(rest)
	if est < float64(len(freq)) {
		est = float64(len(freq))
	}
	if est > float64(total) {
		est = float64(total)
	}
	return est, nil
}

// GroupByCardinality estimates the number of distinct combinations of the
// given grouping columns in a synopsis's underlying population — the
// result cardinality of a GROUP BY over the synopsis's root expression
// (Section 3.5, "Incorporating other operators").
func GroupByCardinality(syn *sample.Synopsis, groupBy []expr.ColumnRef) (float64, error) {
	if syn == nil || len(groupBy) == 0 {
		return 0, fmt.Errorf("core: group-by cardinality needs a synopsis and grouping columns")
	}
	idxs := make([]int, len(groupBy))
	for i, g := range groupBy {
		idx, err := syn.Schema.Resolve(g)
		if err != nil {
			return 0, err
		}
		idxs[i] = idx
	}
	keys := make([]string, len(syn.Rows))
	for r, row := range syn.Rows {
		var sb strings.Builder
		for _, idx := range idxs {
			sb.WriteString(row[idx].String())
			sb.WriteByte('\x00')
		}
		keys[r] = sb.String()
	}
	return EstimateDistinct(keys, syn.N)
}

// GroupsEstimator is an optional interface a cardinality estimator can
// implement to predict GROUP BY output cardinalities. The optimizer uses
// it, when available, to cost aggregation and size aggregate results
// (Section 3.5, "Incorporating other operators").
type GroupsEstimator interface {
	// EstimateGroups predicts the number of distinct combinations of the
	// grouping columns over the foreign-key join of tables.
	EstimateGroups(tables []string, groupBy []expr.ColumnRef) (float64, error)
}

// EstimateGroups implements GroupsEstimator for the robust estimator via
// the GEE distinct-value estimator over the join synopsis.
func (e *BayesEstimator) EstimateGroups(tables []string, groupBy []expr.ColumnRef) (float64, error) {
	syn, err := e.Synopses.For(tables)
	if err != nil {
		return 0, err
	}
	return GroupByCardinality(syn, groupBy)
}
