package core

import (
	"math"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/histogram"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// corrDB builds a fact table with two perfectly correlated columns and a
// filtered dimension, so the histogram and Bayes estimators diverge.
func corrDB(t *testing.T, nFact, nDim int) *storage.Database {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	dim, err := db.CreateTable(&catalog.TableSchema{
		Name: "dim",
		Columns: []catalog.Column{
			{Name: "d_id", Type: catalog.Int},
			{Name: "d_attr", Type: catalog.Int},
		},
		PrimaryKey: "d_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := db.CreateTable(&catalog.TableSchema{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_id", Type: catalog.Int},
			{Name: "f_dim", Type: catalog.Int},
			{Name: "f_a", Type: catalog.Int},
			{Name: "f_b", Type: catalog.Int},
		},
		PrimaryKey: "f_id",
		Foreign:    []catalog.ForeignKey{{Column: "f_dim", RefTable: "dim"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(21)
	for d := 0; d < nDim; d++ {
		_ = dim.Append(value.Row{value.Int(int64(d)), value.Int(int64(d % 10))})
	}
	for i := 0; i < nFact; i++ {
		a := int64(testkit.Intn(rng, 100))
		_ = fact.Append(value.Row{
			value.Int(int64(i)),
			value.Int(int64(testkit.Intn(rng, nDim))),
			value.Int(a),
			value.Int(a), // perfectly correlated with f_a
		})
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func buildEstimators(t *testing.T, db *storage.Database, threshold ConfidenceThreshold) (*BayesEstimator, *HistogramEstimator) {
	t.Helper()
	syn, err := sample.BuildAll(db, 500, stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	bayes, err := NewBayesEstimator(syn, threshold)
	if err != nil {
		t.Fatal(err)
	}
	hists, err := histogram.BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := NewHistogramEstimator(hists, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	return bayes, hist
}

func TestNewBayesEstimatorValidation(t *testing.T) {
	db := corrDB(t, 100, 10)
	syn, _ := sample.BuildAll(db, 50, stats.NewRNG(1))
	if _, err := NewBayesEstimator(nil, 0.5); err == nil {
		t.Error("nil synopses accepted")
	}
	if _, err := NewBayesEstimator(syn, 0); err == nil {
		t.Error("bad threshold accepted")
	}
	e, err := NewBayesEstimator(syn, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Prior != Jeffreys {
		t.Error("default prior not Jeffreys")
	}
	if !containsAll(e.Name(), "bayes", "80") {
		t.Errorf("Name = %q", e.Name())
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestBayesSeesCorrelationHistogramDoesNot(t *testing.T) {
	db := corrDB(t, 20000, 100)
	bayes, hist := buildEstimators(t, db, 0.5)
	req := Request{
		Tables: []string{"fact"},
		Pred:   testkit.Expr("f_a < 50 AND f_b < 50"),
	}
	// Truth is ~0.5 (columns identical).
	bEst, err := bayes.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bEst.Selectivity-0.5) > 0.08 {
		t.Errorf("bayes = %g, want ~0.5", bEst.Selectivity)
	}
	hEst, err := hist.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hEst.Selectivity-0.25) > 0.05 {
		t.Errorf("hist = %g, want ~0.25 (the AVI error)", hEst.Selectivity)
	}
	if bEst.Posterior == nil {
		t.Error("bayes estimate missing posterior")
	}
	if hEst.Posterior != nil {
		t.Error("hist estimate has posterior")
	}
	if math.Abs(bEst.Rows-bEst.Selectivity*20000) > 1e-6 {
		t.Errorf("bayes Rows = %g", bEst.Rows)
	}
}

func TestBayesJoinEstimateUsesRootSynopsis(t *testing.T) {
	db := corrDB(t, 10000, 100)
	bayes, _ := buildEstimators(t, db, 0.5)
	req := Request{
		Tables: []string{"fact", "dim"},
		Pred:   testkit.Expr("d_attr = 3 AND f_a < 50"),
	}
	est, err := bayes.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	// d_attr = 3 selects 10% of dims; f_a < 50 selects ~50% of facts;
	// independent by construction, so joint ~5%.
	if math.Abs(est.Selectivity-0.05) > 0.03 {
		t.Errorf("join selectivity = %g, want ~0.05", est.Selectivity)
	}
	k, n, pop, err := bayes.Observe(req)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 || pop != 10000 || k < 0 || k > n {
		t.Errorf("Observe = %d/%d pop %d", k, n, pop)
	}
	dist, err := bayes.Distribution(req)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Alpha != float64(k)+0.5 || dist.Beta != float64(n-k)+0.5 {
		t.Errorf("Distribution = Beta(%g,%g), k=%d", dist.Alpha, dist.Beta, k)
	}
}

func TestBayesThresholdShiftsEstimate(t *testing.T) {
	db := corrDB(t, 5000, 50)
	bayes, _ := buildEstimators(t, db, 0.05)
	req := Request{Tables: []string{"fact"}, Pred: testkit.Expr("f_a < 10")}
	low, err := bayes.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	high, err := bayes.WithThreshold(0.95)
	if err != nil {
		t.Fatal(err)
	}
	hEst, err := high.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if low.Selectivity >= hEst.Selectivity {
		t.Errorf("T=5%% (%g) should be below T=95%% (%g)", low.Selectivity, hEst.Selectivity)
	}
	if _, err := bayes.WithThreshold(2); err == nil {
		t.Error("WithThreshold(2) accepted")
	}
}

func TestBayesEstimateErrors(t *testing.T) {
	db := corrDB(t, 1000, 10)
	bayes, _ := buildEstimators(t, db, 0.5)
	if _, err := bayes.Estimate(Request{Tables: []string{"ghost"}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := bayes.Estimate(Request{Tables: []string{"fact"}, Pred: testkit.Expr("nope = 1")}); err == nil {
		t.Error("unknown column accepted")
	}
	bad := &BayesEstimator{Synopses: bayes.Synopses, Prior: Jeffreys, Threshold: 0}
	if _, err := bad.Estimate(Request{Tables: []string{"fact"}}); err == nil {
		t.Error("invalid threshold accepted")
	}
}

func TestHistogramEstimatorBasics(t *testing.T) {
	db := corrDB(t, 5000, 50)
	_, hist := buildEstimators(t, db, 0.5)
	if hist.Name() == "" {
		t.Error("empty name")
	}
	est, err := hist.Estimate(Request{Tables: []string{"fact"}, Pred: testkit.Expr("f_a < 50")})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Selectivity-0.5) > 0.05 {
		t.Errorf("marginal = %g", est.Selectivity)
	}
	if math.Abs(est.Rows-est.Selectivity*5000) > 1e-6 {
		t.Errorf("Rows = %g", est.Rows)
	}
	if _, err := hist.Estimate(Request{Tables: []string{"ghost"}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := NewHistogramEstimator(nil, db.Catalog); err == nil {
		t.Error("nil stats accepted")
	}
}

func TestMagicEstimator(t *testing.T) {
	db := corrDB(t, 1000, 10)
	m := &MagicEstimator{
		Selectivity: 0.1,
		Catalog:     db.Catalog,
		RowsFor: func(table string) (int, bool) {
			if tab, ok := db.Table(table); ok {
				return tab.NumRows(), true
			}
			return 0, false
		},
	}
	if m.Name() != "magic" {
		t.Errorf("Name = %q", m.Name())
	}
	est, err := m.Estimate(Request{Tables: []string{"fact"}})
	if err != nil {
		t.Fatal(err)
	}
	if est.Selectivity != 0.1 || est.Rows != 100 {
		t.Errorf("magic = %+v", est)
	}
	if _, err := m.Estimate(Request{}); err == nil {
		t.Error("no tables accepted")
	}
	bad := &MagicEstimator{Selectivity: 2}
	if _, err := bad.Estimate(Request{Tables: []string{"fact"}}); err == nil {
		t.Error("selectivity 2 accepted")
	}
}

func TestMagicDistribution(t *testing.T) {
	d, _ := stats.NewBeta(2, 8)
	m := &MagicEstimator{Distribution: &d, Threshold: 0.8}
	est, err := m.Estimate(Request{Tables: []string{"t"}})
	if err != nil {
		t.Fatal(err)
	}
	want := testkit.Quantile(d, 0.8)
	if math.Abs(est.Selectivity-want) > 1e-9 {
		t.Errorf("magic distribution = %g, want %g", est.Selectivity, want)
	}
	mBad := &MagicEstimator{Distribution: &d, Threshold: 0}
	if _, err := mBad.Estimate(Request{Tables: []string{"t"}}); err == nil {
		t.Error("invalid threshold accepted")
	}
}

func TestChainFallsBack(t *testing.T) {
	db := corrDB(t, 2000, 20)
	bayes, hist := buildEstimators(t, db, 0.5)
	chain := &Chain{Estimators: []Estimator{bayes, hist, &MagicEstimator{Selectivity: 0.1}}}
	// A request the Bayes estimator can answer.
	est, err := chain.Estimate(Request{Tables: []string{"fact"}, Pred: testkit.Expr("f_a < 50")})
	if err != nil {
		t.Fatal(err)
	}
	if est.Posterior == nil {
		t.Error("chain did not use bayes first")
	}
	// A request only the magic estimator survives (unknown column for
	// sampling and histograms alike — histograms magic-fallback first).
	est, err = chain.Estimate(Request{Tables: []string{"fact"}, Pred: testkit.Expr("mystery_column = 1")})
	if err != nil {
		t.Fatal(err)
	}
	if est.Posterior != nil {
		t.Error("fallback estimate carries a posterior")
	}
	empty := &Chain{}
	if _, err := empty.Estimate(Request{Tables: []string{"fact"}}); err == nil {
		t.Error("empty chain succeeded")
	}
	if empty.Name() != "chain()" {
		t.Errorf("empty chain name = %q", empty.Name())
	}
	if !containsAll(chain.Name(), "chain", "bayes") {
		t.Errorf("chain name = %q", chain.Name())
	}
}

func TestGroupByCardinality(t *testing.T) {
	db := corrDB(t, 5000, 50)
	syns, _ := sample.BuildAll(db, 400, stats.NewRNG(5))
	syn, _ := syns.Synopsis("fact")
	est, err := GroupByCardinality(syn, []expr.ColumnRef{{Table: "fact", Column: "f_a"}})
	if err != nil {
		t.Fatal(err)
	}
	// f_a has 100 distinct values.
	if est < 50 || est > 300 {
		t.Errorf("group-by cardinality = %g, want near 100", est)
	}
	if _, err := GroupByCardinality(syn, nil); err == nil {
		t.Error("no group columns accepted")
	}
	if _, err := GroupByCardinality(nil, []expr.ColumnRef{{Column: "x"}}); err == nil {
		t.Error("nil synopsis accepted")
	}
	if _, err := GroupByCardinality(syn, []expr.ColumnRef{{Column: "ghost"}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestEstimationRules(t *testing.T) {
	db := corrDB(t, 5000, 50)
	syn, err := sample.BuildAll(db, 500, stats.NewRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Tables: []string{"fact"}, Pred: testkit.Expr("f_a < 10")}
	base, err := NewBayesEstimator(syn, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	k, n, _, err := base.Observe(req)
	if err != nil {
		t.Fatal(err)
	}
	mean := *base
	mean.Rule = RuleMean
	ml := *base
	ml.Rule = RuleML
	eMean, err := mean.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eMean.Selectivity-(float64(k)+0.5)/(float64(n)+1)) > 1e-12 {
		t.Errorf("mean rule = %g", eMean.Selectivity)
	}
	eML, err := ml.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if eML.Selectivity != float64(k)/float64(n) {
		t.Errorf("ML rule = %g, want %g", eML.Selectivity, float64(k)/float64(n))
	}
	// Non-quantile rules ignore an invalid threshold.
	mlBadT := ml
	mlBadT.Threshold = 0
	if _, err := mlBadT.Estimate(req); err != nil {
		t.Errorf("ML with unset threshold failed: %v", err)
	}
	// Unknown rules error.
	bad := *base
	bad.Rule = EstimationRule(9)
	if _, err := bad.Estimate(req); err == nil {
		t.Error("unknown rule accepted")
	}
	// Names distinguish the rules.
	if !containsAll(mean.Name(), "posterior-mean") || !containsAll(ml.Name(), "max-likelihood") {
		t.Errorf("names: %q, %q", mean.Name(), ml.Name())
	}
	if !containsAll(EstimationRule(9).String(), "9") {
		t.Error("unknown rule string")
	}
}
