package core

import (
	"testing"

	"robustqo/internal/testkit"
)

// TestBayesMaxSelectivityConditioning pins the zone-map bound semantics:
// conditioning the posterior on an exact upper bound sel ≤ f never
// raises the estimate (at T=50% and T=95%), never exceeds the bound, and
// is a no-op when the bound is absent or vacuous. The true selectivity
// of the probe predicate is ~0.10, so the bound grid brackets it from
// both sides.
func TestBayesMaxSelectivityConditioning(t *testing.T) {
	db := corrDB(t, 5000, 50)
	for _, thr := range []ConfidenceThreshold{0.50, 0.95} {
		bayes, _ := buildEstimators(t, db, thr)
		req := Request{Tables: []string{"fact"}, Pred: testkit.Expr("f_a < 10")}
		free, err := bayes.Estimate(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []float64{0.5, 0.12, 0.05, 0.01} {
			req.MaxSelectivity = f
			got, err := bayes.Estimate(req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Selectivity > free.Selectivity+1e-12 {
				t.Errorf("T=%v f=%g: conditioned %g exceeds unconditioned %g", thr, f, got.Selectivity, free.Selectivity)
			}
			if got.Selectivity > f {
				t.Errorf("T=%v f=%g: estimate %g violates the hard bound", thr, f, got.Selectivity)
			}
			if got.Posterior == nil || *got.Posterior != *free.Posterior {
				t.Errorf("T=%v f=%g: posterior should stay unconditioned", thr, f)
			}
		}
		// A bound well below the posterior mass pins the estimate near it.
		req.MaxSelectivity = 0.01
		got, err := bayes.Estimate(req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Selectivity < 0.001 {
			t.Errorf("T=%v: tight bound collapsed the estimate to %g", thr, got.Selectivity)
		}
		// Absent / vacuous bounds change nothing.
		for _, f := range []float64{0, 1, 1.5} {
			req.MaxSelectivity = f
			got, err := bayes.Estimate(req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Selectivity != free.Selectivity {
				t.Errorf("T=%v f=%g: vacuous bound moved estimate %g -> %g", thr, f, free.Selectivity, got.Selectivity)
			}
		}
	}

	// The bound caps the non-quantile rules too.
	bayes, _ := buildEstimators(t, db, 0.5)
	for _, rule := range []EstimationRule{RuleMean, RuleML} {
		e := &BayesEstimator{Synopses: bayes.Synopses, Prior: Jeffreys, Rule: rule, Quantiles: bayes.Quantiles}
		got, err := e.Estimate(Request{Tables: []string{"fact"}, Pred: testkit.Expr("f_a < 10"), MaxSelectivity: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if got.Selectivity > 0.02 {
			t.Errorf("%s: estimate %g violates the bound", rule, got.Selectivity)
		}
	}
}
