package core

import (
	"sync"

	"robustqo/internal/stats"
)

// QuantileCache memoizes Beta posterior quantile inversions. The inverse
// CDF is by far the most expensive step of a quantile-rule estimate
// (bisection plus Newton refinement per call), and join enumeration asks
// for the same (k, n, T) combinations over and over — every subexpression
// sharing a synopsis observation repeats the identical inversion. The key
// is the posterior's (alpha, beta) pair plus the probability: alpha and
// beta are k+a and n-k+b, so for a fixed prior this is exactly the
// (sample hits, sample size, threshold) triple.
//
// The cache is safe for concurrent use and is shared across estimator
// copies: WithThreshold clones the estimator struct but keeps the same
// cache pointer, so per-query threshold hints still reuse whatever
// overlapping inversions exist.
type QuantileCache struct {
	mu     sync.Mutex
	m      map[quantKey]float64
	hits   int64
	misses int64
}

type quantKey struct {
	alpha, beta, p float64
}

// NewQuantileCache returns an empty cache.
func NewQuantileCache() *QuantileCache {
	return &QuantileCache{m: make(map[quantKey]float64)}
}

// Quantile returns d.Quantile(p), memoized. A nil cache degrades to the
// uncached computation.
func (c *QuantileCache) Quantile(d stats.Beta, p float64) (float64, error) {
	if c == nil {
		return d.Quantile(p)
	}
	k := quantKey{alpha: d.Alpha, beta: d.Beta, p: p}
	c.mu.Lock()
	if v, ok := c.m[k]; ok {
		c.hits++
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()
	v, err := d.Quantile(p)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[quantKey]float64)
	}
	c.m[k] = v
	c.misses++
	c.mu.Unlock()
	return v, nil
}

// Stats returns the cumulative hit and miss counts.
func (c *QuantileCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
