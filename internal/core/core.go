// Package core implements the paper's primary contribution: robust
// cardinality estimation by Bayesian inference from precomputed random
// samples, condensed to a single value through a user-chosen confidence
// threshold.
//
// The procedure (Section 3.4 of the paper):
//
//  1. Pick the precomputed join synopsis matching the relations of the
//     query expression (package sample).
//  2. Evaluate the predicate on the sample: k of n tuples match. Under a
//     Beta(a, b) prior the posterior selectivity distribution is
//     Beta(k+a, n-k+b) — Equation (2) with the Jeffreys prior a = b = ½.
//  3. Return cdf⁻¹(T) of the posterior, where T is the confidence
//     threshold expressing the application's predictability/performance
//     preference.
//
// Because operator cost is monotone in input cardinality, feeding this
// percentile estimate to an unmodified cost-based optimizer makes the
// optimizer rank plans by the T-th percentile of their cost distributions
// (Section 3.1.1), with no other changes to the optimizer.
package core

import (
	"fmt"

	"robustqo/internal/stats"
)

// ConfidenceThreshold is the probability level T at which the posterior
// selectivity cdf is inverted. Higher values make the optimizer more
// conservative (Section 3.1); it must lie strictly between 0 and 1.
type ConfidenceThreshold float64

// Named thresholds corresponding to the paper's recommended system
// configuration settings (Section 6.2.5).
const (
	// Aggressive optimizes for expected performance (the median).
	Aggressive ConfidenceThreshold = 0.50
	// Moderate is the paper's recommended general-purpose default: good
	// average time and good predictability.
	Moderate ConfidenceThreshold = 0.80
	// Conservative yields very stable plans and few surprises.
	Conservative ConfidenceThreshold = 0.95
)

// Validate returns an error unless the threshold lies in (0, 1).
func (t ConfidenceThreshold) Validate() error {
	if !(t > 0 && t < 1) {
		return fmt.Errorf("core: confidence threshold %g outside (0, 1)", float64(t))
	}
	return nil
}

// String renders the threshold as a percentage.
func (t ConfidenceThreshold) String() string {
	return fmt.Sprintf("T=%g%%", float64(t)*100)
}

// Prior is a Beta(A, B) prior over selectivity.
type Prior struct {
	A, B float64
}

// The two priors discussed in Section 3.3. Jeffreys is the paper's
// default; Figure 4 shows the choice barely matters.
var (
	Jeffreys = Prior{A: 0.5, B: 0.5}
	Uniform  = Prior{A: 1, B: 1}
)

// Validate returns an error unless both shape parameters are positive.
func (p Prior) Validate() error {
	if !(p.A > 0) || !(p.B > 0) {
		return fmt.Errorf("core: prior Beta(%g, %g) has non-positive shape", p.A, p.B)
	}
	return nil
}

// Dist returns the prior as a Beta distribution.
func (p Prior) Dist() (stats.Beta, error) { return stats.NewBeta(p.A, p.B) }

// Posterior returns the selectivity distribution after observing k
// matches in a uniform with-replacement sample of n tuples:
// Beta(k + A, n - k + B).
func (p Prior) Posterior(k, n int) (stats.Beta, error) {
	if err := p.Validate(); err != nil {
		return stats.Beta{}, err
	}
	if n < 0 || k < 0 || k > n {
		return stats.Beta{}, fmt.Errorf("core: invalid sample outcome k=%d of n=%d", k, n)
	}
	return stats.NewBeta(float64(k)+p.A, float64(n-k)+p.B)
}

// RobustSelectivity is the complete point-estimation rule: the T-th
// quantile of the posterior after observing k of n sample matches.
//
// For the paper's worked example (Section 3.4: k=10, n=100, Jeffreys
// prior), thresholds of 20%, 50%, and 80% yield approximately 0.078,
// 0.101, and 0.128.
func RobustSelectivity(k, n int, prior Prior, t ConfidenceThreshold) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	post, err := prior.Posterior(k, n)
	if err != nil {
		return 0, err
	}
	return post.Quantile(float64(t))
}

// MLSelectivity is the classical maximum-likelihood estimate k/n, the
// rule used by prior sampling-based estimators (Acharya et al. [1]) and
// the natural ablation baseline for the Bayesian rule.
func MLSelectivity(k, n int) (float64, error) {
	if n <= 0 || k < 0 || k > n {
		return 0, fmt.Errorf("core: invalid sample outcome k=%d of n=%d", k, n)
	}
	return float64(k) / float64(n), nil
}

// ExpectedSelectivity is the posterior mean (k+A)/(n+A+B) — the estimate
// a least-expected-cost optimizer would use when cost is linear in
// cardinality. Another ablation baseline.
func ExpectedSelectivity(k, n int, prior Prior) (float64, error) {
	post, err := prior.Posterior(k, n)
	if err != nil {
		return 0, err
	}
	return post.Mean(), nil
}
