package core

import (
	"math"
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/histogram"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// diamondDB builds a -> {b, c} -> d: the diamond that makes a's join
// synopsis ill-defined, forcing multi-table estimates rooted at a onto
// the independent-samples fallback.
func diamondDB(t *testing.T, nRoot int) *storage.Database {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	d, err := db.CreateTable(&catalog.TableSchema{
		Name:       "d",
		Columns:    []catalog.Column{{Name: "d_id", Type: catalog.Int}},
		PrimaryKey: "d_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	mkMid := func(name string) *storage.Table {
		tab, err := db.CreateTable(&catalog.TableSchema{
			Name: name,
			Columns: []catalog.Column{
				{Name: name + "_id", Type: catalog.Int},
				{Name: name + "_attr", Type: catalog.Int},
				{Name: name + "_d", Type: catalog.Int},
			},
			PrimaryKey: name + "_id",
			Foreign:    []catalog.ForeignKey{{Column: name + "_d", RefTable: "d"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	b := mkMid("b")
	c := mkMid("c")
	a, err := db.CreateTable(&catalog.TableSchema{
		Name: "a",
		Columns: []catalog.Column{
			{Name: "a_id", Type: catalog.Int},
			{Name: "a_attr", Type: catalog.Int},
			{Name: "a_b", Type: catalog.Int},
			{Name: "a_c", Type: catalog.Int},
		},
		PrimaryKey: "a_id",
		Foreign: []catalog.ForeignKey{
			{Column: "a_b", RefTable: "b"},
			{Column: "a_c", RefTable: "c"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	const nMid = 200
	_ = d.Append(value.Row{value.Int(0)})
	for i := int64(1); i < 10; i++ {
		_ = d.Append(value.Row{value.Int(i)})
	}
	for i := int64(0); i < nMid; i++ {
		_ = b.Append(value.Row{value.Int(i), value.Int(int64(testkit.Intn(rng, 100))), value.Int(int64(testkit.Intn(rng, 10)))})
		_ = c.Append(value.Row{value.Int(i), value.Int(int64(testkit.Intn(rng, 100))), value.Int(int64(testkit.Intn(rng, 10)))})
	}
	for i := int64(0); i < int64(nRoot); i++ {
		_ = a.Append(value.Row{
			value.Int(i),
			value.Int(int64(testkit.Intn(rng, 100))),
			value.Int(int64(testkit.Intn(rng, nMid))),
			value.Int(int64(testkit.Intn(rng, nMid))),
		})
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestIndependentSamplesOnDiamond(t *testing.T) {
	db := diamondDB(t, 5000)
	set, err := sample.BuildAll(db, 500, stats.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	bayes, err := NewBayesEstimator(set, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	indep := &IndependentSamplesEstimator{
		Samples: set, Catalog: db.Catalog, Prior: Jeffreys, Threshold: 0.5,
	}
	req := Request{
		Tables: []string{"a", "b", "c"},
		Pred:   testkit.Expr("a_attr < 50 AND b_attr < 50 AND c_attr < 50"),
	}
	// The join synopsis path fails on the diamond.
	if _, err := bayes.Estimate(req); err == nil {
		t.Fatal("bayes succeeded over a diamond join")
	}
	// The fallback succeeds and, with independent-by-construction data,
	// lands near the true joint selectivity.
	est, err := indep.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.5 * 0.5 * 0.5 // attributes independent by construction
	if math.Abs(est.Selectivity-truth) > 0.05 {
		t.Errorf("independent estimate = %g, want ~%g", est.Selectivity, truth)
	}
	if math.Abs(est.Rows-est.Selectivity*5000) > 1e-6 {
		t.Errorf("rows = %g", est.Rows)
	}
	// The chain glues them together.
	chain := &Chain{Estimators: []Estimator{bayes, indep}}
	chained, err := chain.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if chained.Selectivity != est.Selectivity {
		t.Error("chain did not fall through to the independent estimator")
	}
}

func TestIndependentSamplesSingleTableStillRobust(t *testing.T) {
	db := diamondDB(t, 5000)
	set, err := sample.BuildAll(db, 500, stats.NewRNG(29))
	if err != nil {
		t.Fatal(err)
	}
	lo := &IndependentSamplesEstimator{Samples: set, Catalog: db.Catalog, Prior: Jeffreys, Threshold: 0.05}
	hi := &IndependentSamplesEstimator{Samples: set, Catalog: db.Catalog, Prior: Jeffreys, Threshold: 0.95}
	req := Request{Tables: []string{"a"}, Pred: testkit.Expr("a_attr = 7")}
	eLo, err := lo.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	eHi, err := hi.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if eLo.Selectivity >= eHi.Selectivity {
		t.Errorf("threshold not respected: %g vs %g", eLo.Selectivity, eHi.Selectivity)
	}
}

func TestIndependentSamplesMagicContributions(t *testing.T) {
	db := diamondDB(t, 1000)
	set, err := sample.BuildAll(db, 200, stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	e := &IndependentSamplesEstimator{Samples: set, Catalog: db.Catalog, Prior: Jeffreys, Threshold: 0.5}
	// A cross-table comparison cannot be attributed to one table: it
	// contributes the magic range constant.
	est, err := e.Estimate(Request{
		Tables: []string{"a", "b"},
		Pred:   testkit.Expr("a_attr < b_attr"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Selectivity-1.0/3) > 1e-9 {
		t.Errorf("cross-table magic = %g, want 1/3", est.Selectivity)
	}
	// Equality and other shapes use their own constants.
	est, err = e.Estimate(Request{Tables: []string{"a", "b"}, Pred: testkit.Expr("a_attr = b_attr")})
	if err != nil {
		t.Fatal(err)
	}
	if est.Selectivity != 0.10 {
		t.Errorf("eq magic = %g", est.Selectivity)
	}
	est, err = e.Estimate(Request{
		Tables: []string{"a", "b"},
		Pred:   testkit.Expr("a_attr < 10 OR b_attr < 10"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Selectivity != 0.10 { // OR term spans tables -> MagicOther
		t.Errorf("or magic = %g", est.Selectivity)
	}
}

func TestIndependentSamplesValidation(t *testing.T) {
	db := diamondDB(t, 100)
	set, _ := sample.BuildAll(db, 50, stats.NewRNG(3))
	cases := []*IndependentSamplesEstimator{
		{Samples: nil, Catalog: db.Catalog, Prior: Jeffreys, Threshold: 0.5},
		{Samples: set, Catalog: nil, Prior: Jeffreys, Threshold: 0.5},
		{Samples: set, Catalog: db.Catalog, Prior: Jeffreys, Threshold: 0},
	}
	for i, e := range cases {
		if _, err := e.Estimate(Request{Tables: []string{"a"}}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := &IndependentSamplesEstimator{Samples: set, Catalog: db.Catalog, Prior: Jeffreys, Threshold: 0.5}
	if _, err := good.Estimate(Request{}); err == nil {
		t.Error("no tables accepted")
	}
	if _, err := good.Estimate(Request{Tables: []string{"ghost"}}); err == nil {
		t.Error("unknown table accepted")
	}
	if !strings.Contains(good.Name(), "independent-samples") {
		t.Errorf("Name = %q", good.Name())
	}
	// A predicate over a known table but bad column errors at Count.
	if _, err := good.Estimate(Request{Tables: []string{"a"}, Pred: expr.Cmp{
		Op: expr.EQ, L: expr.TC("a", "a_attr"), R: expr.Arith{Op: expr.Div, L: expr.IntLit(1), R: expr.IntLit(0)},
	}}); err == nil {
		t.Error("runtime eval error not propagated")
	}
}

func TestGroupsEstimators(t *testing.T) {
	db := diamondDB(t, 5000)
	set, err := sample.BuildAll(db, 500, stats.NewRNG(41))
	if err != nil {
		t.Fatal(err)
	}
	bayes, _ := NewBayesEstimator(set, 0.5)
	groups, err := bayes.EstimateGroups([]string{"b"}, []expr.ColumnRef{{Table: "b", Column: "b_attr"}})
	if err != nil {
		t.Fatal(err)
	}
	// b_attr has up to 100 distinct values over 200 rows.
	if groups < 30 || groups > 200 {
		t.Errorf("bayes groups = %g", groups)
	}
	if _, err := bayes.EstimateGroups([]string{"a", "b", "c"}, []expr.ColumnRef{{Column: "b_attr"}}); err == nil {
		t.Error("diamond group estimate succeeded")
	}

	hists, err := histogram.BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	hist, _ := NewHistogramEstimator(hists, db.Catalog)
	groups, err = hist.EstimateGroups([]string{"b"}, []expr.ColumnRef{{Table: "b", Column: "b_attr"}})
	if err != nil {
		t.Fatal(err)
	}
	if groups < 30 || groups > 200 {
		t.Errorf("hist groups = %g", groups)
	}
	// Multi-column product capped at the table cardinality.
	groups, err = hist.EstimateGroups([]string{"a"}, []expr.ColumnRef{
		{Table: "a", Column: "a_attr"}, {Table: "a", Column: "a_b"}, {Table: "a", Column: "a_c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if groups > 5000 {
		t.Errorf("capped groups = %g", groups)
	}
	if _, err := hist.EstimateGroups([]string{"a"}, nil); err == nil {
		t.Error("no group columns accepted")
	}
}
