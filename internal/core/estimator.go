package core

import (
	"fmt"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/histogram"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
)

// Request asks for the cardinality of one SPJ expression: the foreign-key
// join of Tables filtered by Pred (a conjunction of non-join predicates
// with, when needed, table-qualified column references). Pred may be nil.
type Request struct {
	Tables []string
	Pred   expr.Expr
	// Partitions, when non-nil, restricts the expression's partitioned
	// root relation to the listed shards (the optimizer's pruning pass
	// sets it). The Bayesian estimator then combines the surviving
	// shards' posteriors — pruning happens before quantiling, so the
	// estimate tightens as shards drop. nil means the whole table.
	Partitions []int
	// MaxSelectivity, when in (0, 1), is an exact upper bound on the
	// root's selectivity established outside the sample — the optimizer's
	// zone-map pass sets it to the unskippable fraction of the root's
	// segments. The Bayesian estimator conditions its quantile on the
	// bound (sel ≤ f with certainty), which tightens the estimate the
	// same way dropping pruned shards does. Zero (or ≥ 1) means no bound.
	MaxSelectivity float64
}

// Estimate is a cardinality answer. Selectivity is the estimated fraction
// of the expression's root relation that survives; Rows is the estimated
// result cardinality (for foreign-key joins, row count of the root times
// Selectivity). Posterior carries the full selectivity distribution when
// the technique provides one, for callers that need more than the point
// estimate.
type Estimate struct {
	Selectivity float64
	Rows        float64
	Posterior   *stats.Beta
}

// Estimator is the cardinality estimation module interface the optimizer
// calls. Implementations: BayesEstimator (the paper's technique),
// HistogramEstimator (the conventional baseline), MagicEstimator (the
// no-statistics fallback), and Chain.
type Estimator interface {
	Estimate(req Request) (Estimate, error)
	// Name identifies the technique in reports and experiment output.
	Name() string
}

// EstimationRule selects how a BayesEstimator condenses the posterior to
// the single value the optimizer consumes.
type EstimationRule int

const (
	// RuleQuantile is the paper's rule: cdf⁻¹(T) of the posterior.
	RuleQuantile EstimationRule = iota
	// RuleMean returns the posterior mean (k+a)/(n+a+b) — what a
	// least-expected-cost optimizer uses when cost is linear in
	// cardinality (Chu et al. [6, 7]). Ignores the threshold.
	RuleMean
	// RuleML returns the classical maximum-likelihood estimate k/n
	// (Acharya et al. [1]). Ignores the threshold and the prior.
	RuleML
)

func (r EstimationRule) String() string {
	switch r {
	case RuleQuantile:
		return "quantile"
	case RuleMean:
		return "posterior-mean"
	case RuleML:
		return "max-likelihood"
	default:
		return fmt.Sprintf("EstimationRule(%d)", int(r))
	}
}

// BayesEstimator is the robust estimator of Sections 3.2–3.4: it counts
// predicate matches on the join synopsis of the expression's root
// relation, forms the Beta posterior, and condenses it by Rule — by
// default inverting its cdf at the confidence threshold.
type BayesEstimator struct {
	Synopses  *sample.Set
	Prior     Prior
	Threshold ConfidenceThreshold
	Rule      EstimationRule
	// Quantiles memoizes posterior inverse-CDF evaluations across
	// estimates (and across WithThreshold copies, which share the
	// pointer). Nil disables memoization.
	Quantiles *QuantileCache
}

// NewBayesEstimator returns a robust estimator with the paper's defaults
// (Jeffreys prior) at the given threshold.
func NewBayesEstimator(synopses *sample.Set, t ConfidenceThreshold) (*BayesEstimator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if synopses == nil {
		return nil, fmt.Errorf("core: nil synopsis set")
	}
	return &BayesEstimator{Synopses: synopses, Prior: Jeffreys, Threshold: t, Quantiles: NewQuantileCache()}, nil
}

// Name implements Estimator.
func (e *BayesEstimator) Name() string {
	if e.Rule != RuleQuantile {
		return fmt.Sprintf("bayes(%s, prior=Beta(%g,%g))", e.Rule, e.Prior.A, e.Prior.B)
	}
	return fmt.Sprintf("bayes(%s, prior=Beta(%g,%g))", e.Threshold, e.Prior.A, e.Prior.B)
}

// ConfidenceReporter is implemented by estimators whose point estimates
// are posterior quantiles at a confidence threshold T. Consumers — the
// optimizer tagging EXPLAIN ANALYZE snapshots, the parallelize post-pass
// gating DOP decisions — use it to learn which T an estimate was produced
// under without knowing the concrete estimator type.
type ConfidenceReporter interface {
	// ConfidenceLevel returns the posterior percentile point estimates are
	// taken at; the bool is false when the estimator does not condense
	// through a quantile.
	ConfidenceLevel() (float64, bool)
}

// ConfidenceLevel reports the posterior percentile the estimator takes
// its point estimates at, for observability snapshots (EXPLAIN ANALYZE
// tags every estimate with the T it was produced under). The bool is
// false when the estimator does not condense through a quantile.
func (e *BayesEstimator) ConfidenceLevel() (float64, bool) {
	if e.Rule != RuleQuantile {
		return 0, false
	}
	return float64(e.Threshold), true
}

// ConfidenceLevel reports the percentile of the first chained estimator
// that exposes one.
func (c *Chain) ConfidenceLevel() (float64, bool) {
	for _, e := range c.Estimators {
		if cl, ok := e.(ConfidenceReporter); ok {
			if t, ok := cl.ConfidenceLevel(); ok {
				return t, true
			}
		}
	}
	return 0, false
}

// WithThreshold returns a copy of the estimator using a different
// confidence threshold — the mechanism behind per-query hints
// (Section 6.2.5).
func (e *BayesEstimator) WithThreshold(t ConfidenceThreshold) (*BayesEstimator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cp := *e
	cp.Threshold = t
	return &cp, nil
}

// Observe evaluates the request's predicate on the appropriate synopsis
// and returns the observation (k matches of n) along with the root
// population size. Exposed for analysis and experiment code.
//
// When the request names partitions and the root has per-shard synopses,
// the observation is summed over the listed shards only: k = Σ k_p,
// n = Σ n_p, population = Σ N_p. Because the per-shard samples are a
// stratified sample with proportional allocation, adding the per-shard
// Beta pseudo-counts is the principled combination — Beta(Σk_p + a,
// Σ(n_p−k_p) + b) — and dropping pruned shards removes their samples
// from the posterior before the quantile is taken.
func (e *BayesEstimator) Observe(req Request) (k, n, population int, err error) {
	if req.Partitions != nil {
		if shards, ok := e.Synopses.ForShards(req.Tables); ok {
			for _, p := range req.Partitions {
				if p < 0 || p >= len(shards) || shards[p] == nil {
					continue // empty shard: nothing to observe
				}
				kp, err := shards[p].Count(req.Pred)
				if err != nil {
					return 0, 0, 0, err
				}
				k += kp
				n += shards[p].Size()
				population += shards[p].N
			}
			return k, n, population, nil
		}
		// No per-shard synopses: fall through to the global synopsis,
		// which over-covers the surviving shards (a sound, looser bound).
	}
	syn, err := e.Synopses.For(req.Tables)
	if err != nil {
		return 0, 0, 0, err
	}
	k, err = syn.Count(req.Pred)
	if err != nil {
		return 0, 0, 0, err
	}
	return k, syn.Size(), syn.N, nil
}

// Distribution returns the full posterior selectivity distribution for a
// request, for callers that reason about uncertainty directly (e.g. the
// cost pdf/cdf derivations behind Figures 2 and 3).
func (e *BayesEstimator) Distribution(req Request) (stats.Beta, error) {
	k, n, _, err := e.Observe(req)
	if err != nil {
		return stats.Beta{}, err
	}
	return e.Prior.Posterior(k, n)
}

// Estimate implements Estimator.
func (e *BayesEstimator) Estimate(req Request) (Estimate, error) {
	if e.Rule == RuleQuantile {
		if err := e.Threshold.Validate(); err != nil {
			return Estimate{}, err
		}
	}
	k, n, population, err := e.Observe(req)
	if err != nil {
		return Estimate{}, err
	}
	post, err := e.Prior.Posterior(k, n)
	if err != nil {
		return Estimate{}, err
	}
	f := req.MaxSelectivity
	bounded := f > 0 && f < 1
	var sel float64
	switch e.Rule {
	case RuleQuantile:
		p := float64(e.Threshold)
		if bounded {
			// Condition the posterior on the exact bound sel ≤ f: the
			// truncated distribution's T-quantile is the unconditioned
			// posterior's quantile at p = T · CDF(f). CDF(f) ≤ 1 and the
			// quantile function is monotone, so the conditioned estimate
			// never exceeds the unconditioned one — zone-map evidence only
			// ever tightens.
			p *= post.CDF(f)
			if p <= 0 {
				// Degenerate truncation (CDF underflow): the bound itself is
				// the tightest defensible estimate.
				sel = f
				break
			}
		}
		sel, err = e.Quantiles.Quantile(post, p)
	case RuleMean:
		sel = post.Mean()
	case RuleML:
		sel, err = MLSelectivity(k, n)
	default:
		return Estimate{}, fmt.Errorf("core: unknown estimation rule %d", int(e.Rule))
	}
	if err != nil {
		return Estimate{}, err
	}
	if bounded && sel > f { //qolint:allow-floatcmp — hard clamp at an exact bound, not a ranking
		// Mean/ML (and quantile rounding) respect the hard bound too.
		sel = f
	}
	// Posterior stays unconditioned: interval consumers (plan-cache
	// validity ranges) reason about the sample evidence itself.
	return Estimate{
		Selectivity: sel,
		Rows:        sel * float64(population),
		Posterior:   &post,
	}, nil
}

// HistogramEstimator is the conventional baseline: equi-depth histograms
// combined under the attribute value independence assumption, with
// result cardinality from the containment assumption (each root row joins
// exactly one row of each foreign-key-referenced table).
type HistogramEstimator struct {
	Stats   *histogram.Collection
	Catalog *catalog.Catalog
}

// NewHistogramEstimator returns the baseline estimator.
func NewHistogramEstimator(stats *histogram.Collection, cat *catalog.Catalog) (*HistogramEstimator, error) {
	if stats == nil || cat == nil {
		return nil, fmt.Errorf("core: histogram estimator needs statistics and a catalog")
	}
	return &HistogramEstimator{Stats: stats, Catalog: cat}, nil
}

// Name implements Estimator.
func (e *HistogramEstimator) Name() string { return "histograms(AVI)" }

// Estimate implements Estimator.
func (e *HistogramEstimator) Estimate(req Request) (Estimate, error) {
	root, err := e.Catalog.RootOf(req.Tables)
	if err != nil {
		return Estimate{}, err
	}
	rows, ok := e.Stats.Rows(root)
	if !ok {
		return Estimate{}, fmt.Errorf("core: no statistics for table %q", root)
	}
	sel := histogram.Estimate(e.Stats, e.Catalog, req.Tables, req.Pred)
	return Estimate{Selectivity: sel, Rows: sel * float64(rows)}, nil
}

// MagicEstimator answers every request with a fixed "magic" value — the
// no-statistics fallback of Section 3.5. When Distribution is non-nil it
// acts as the paper's "magic distribution" extension: the returned
// selectivity is the distribution's quantile at Threshold, so the
// fallback too responds to the robustness knob.
type MagicEstimator struct {
	Selectivity  float64
	Distribution *stats.Beta
	Threshold    ConfidenceThreshold
	// RowsFor, if set, supplies root-table cardinalities so Rows can be
	// populated; otherwise Rows is reported as 0 and callers must scale.
	RowsFor func(table string) (int, bool)
	// Root resolves the request's root table; defaults to the first table.
	Catalog *catalog.Catalog
}

// Name implements Estimator.
func (e *MagicEstimator) Name() string { return "magic" }

// Estimate implements Estimator.
func (e *MagicEstimator) Estimate(req Request) (Estimate, error) {
	if len(req.Tables) == 0 {
		return Estimate{}, fmt.Errorf("core: magic estimate over no tables")
	}
	sel := e.Selectivity
	if e.Distribution != nil {
		if err := e.Threshold.Validate(); err != nil {
			return Estimate{}, err
		}
		q, err := e.Distribution.Quantile(float64(e.Threshold))
		if err != nil {
			return Estimate{}, err
		}
		sel = q
	}
	if sel < 0 || sel > 1 {
		return Estimate{}, fmt.Errorf("core: magic selectivity %g outside [0, 1]", sel)
	}
	root := req.Tables[0]
	if e.Catalog != nil {
		if r, err := e.Catalog.RootOf(req.Tables); err == nil {
			root = r
		}
	}
	est := Estimate{Selectivity: sel}
	if e.RowsFor != nil {
		if n, ok := e.RowsFor(root); ok {
			est.Rows = sel * float64(n)
		}
	}
	return est, nil
}

// Chain tries estimators in order and returns the first success — the
// paper's degradation story: per-expression fallback from join synopses
// to single-table statistics to magic numbers, with errors confined to
// the subexpressions lacking samples (Section 3.5).
type Chain struct {
	Estimators []Estimator
}

// Name implements Estimator.
func (c *Chain) Name() string {
	if len(c.Estimators) == 0 {
		return "chain()"
	}
	return "chain(" + c.Estimators[0].Name() + ", ...)"
}

// Estimate implements Estimator.
func (c *Chain) Estimate(req Request) (Estimate, error) {
	var firstErr error
	for _, e := range c.Estimators {
		est, err := e.Estimate(req)
		if err == nil {
			return est, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("core: empty estimator chain")
	}
	return Estimate{}, firstErr
}

// EstimateGroups implements GroupsEstimator for the baseline using the
// histograms' per-bucket distinct counts: the estimate is the product of
// per-column distinct counts (the independence assumption again), capped
// by the root table's cardinality.
func (e *HistogramEstimator) EstimateGroups(tables []string, groupBy []expr.ColumnRef) (float64, error) {
	if len(groupBy) == 0 {
		return 0, fmt.Errorf("core: no grouping columns")
	}
	root, err := e.Catalog.RootOf(tables)
	if err != nil {
		return 0, err
	}
	rows, ok := e.Stats.Rows(root)
	if !ok {
		return 0, fmt.Errorf("core: no statistics for table %q", root)
	}
	product := 1.0
	for _, g := range groupBy {
		d, ok := e.distinctOf(tables, g)
		if !ok {
			// No histogram (e.g. a string column): assume a tenth of the
			// rows are distinct, the usual magic guess.
			d = float64(rows) / 10
		}
		product *= d
		if product > float64(rows) {
			return float64(rows), nil
		}
	}
	return product, nil
}

func (e *HistogramEstimator) distinctOf(tables []string, ref expr.ColumnRef) (float64, bool) {
	candidates := tables
	if ref.Table != "" {
		candidates = []string{ref.Table}
	}
	for _, t := range candidates {
		if h, ok := e.Stats.Lookup(t, ref.Column); ok {
			return float64(h.DistinctTotal()), true
		}
	}
	return 0, false
}

// Compile-time checks that both estimators support group estimation.
var (
	_ GroupsEstimator = (*BayesEstimator)(nil)
	_ GroupsEstimator = (*HistogramEstimator)(nil)
)
