package core

import (
	"math"
	"robustqo/internal/testkit"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfidenceThresholdValidate(t *testing.T) {
	for _, ok := range []ConfidenceThreshold{0.05, 0.5, 0.8, 0.95, Aggressive, Moderate, Conservative} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", ok, err)
		}
	}
	for _, bad := range []ConfidenceThreshold{0, 1, -0.5, 1.5, ConfidenceThreshold(math.NaN())} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%v) succeeded", float64(bad))
		}
	}
	if s := Moderate.String(); !strings.Contains(s, "80") {
		t.Errorf("String = %q", s)
	}
}

func TestPriorValidateAndDist(t *testing.T) {
	if err := Jeffreys.Validate(); err != nil {
		t.Error(err)
	}
	if err := Uniform.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Prior{A: 0, B: 1}).Validate(); err == nil {
		t.Error("zero shape accepted")
	}
	d, err := Jeffreys.Dist()
	if err != nil || d.Alpha != 0.5 || d.Beta != 0.5 {
		t.Errorf("Dist = %v, %v", d, err)
	}
}

func TestPosteriorShapes(t *testing.T) {
	post, err := Jeffreys.Posterior(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if post.Alpha != 10.5 || post.Beta != 90.5 {
		t.Errorf("posterior = Beta(%g, %g)", post.Alpha, post.Beta)
	}
	post, err = Uniform.Posterior(50, 500)
	if err != nil {
		t.Fatal(err)
	}
	if post.Alpha != 51 || post.Beta != 451 {
		t.Errorf("uniform posterior = Beta(%g, %g)", post.Alpha, post.Beta)
	}
	for _, bad := range [][2]int{{-1, 10}, {11, 10}, {0, -1}} {
		if _, err := Jeffreys.Posterior(bad[0], bad[1]); err == nil {
			t.Errorf("Posterior(%d, %d) succeeded", bad[0], bad[1])
		}
	}
	if _, err := (Prior{}).Posterior(1, 2); err == nil {
		t.Error("invalid prior accepted")
	}
}

func TestRobustSelectivityPaperExample(t *testing.T) {
	// Section 3.4: k=10, n=100, Jeffreys prior -> 7.8%, 10.1%, 12.8% at
	// thresholds 20%, 50%, 80%.
	cases := []struct {
		t    ConfidenceThreshold
		want float64
	}{
		{0.20, 0.078},
		{0.50, 0.101},
		{0.80, 0.128},
	}
	for _, c := range cases {
		got, err := RobustSelectivity(10, 100, Jeffreys, c.t)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.0015 {
			t.Errorf("RobustSelectivity at %v = %.4f, want ~%.3f", c.t, got, c.want)
		}
	}
}

func TestRobustSelectivityValidation(t *testing.T) {
	if _, err := RobustSelectivity(10, 100, Jeffreys, 0); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := RobustSelectivity(-1, 100, Jeffreys, 0.5); err == nil {
		t.Error("negative k accepted")
	}
}

func TestRobustSelectivityMonotoneInThreshold(t *testing.T) {
	f := func(kRaw, nRaw uint16, t1Raw, t2Raw uint16) bool {
		n := 1 + int(nRaw%2000)
		k := int(kRaw) % (n + 1)
		t1 := ConfidenceThreshold(0.001 + 0.998*float64(t1Raw)/65535)
		t2 := ConfidenceThreshold(0.001 + 0.998*float64(t2Raw)/65535)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		s1, err1 := RobustSelectivity(k, n, Jeffreys, t1)
		s2, err2 := RobustSelectivity(k, n, Jeffreys, t2)
		return err1 == nil && err2 == nil && s1 <= s2+1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMoreEvidenceTightensPosterior(t *testing.T) {
	// Property: with the same observed fraction, a larger sample yields a
	// narrower posterior (Figure 4's "sample size matters").
	small, _ := Jeffreys.Posterior(10, 100)
	large, _ := Jeffreys.Posterior(50, 500)
	if large.StdDev() >= small.StdDev() {
		t.Errorf("stddev small=%g large=%g", small.StdDev(), large.StdDev())
	}
	// And the priors barely matter (Figure 4's other message): medians
	// under Jeffreys and uniform differ by far less than a stddev.
	ju, _ := Uniform.Posterior(10, 100)
	mJ := testkit.Quantile(small, 0.5)
	mU := testkit.Quantile(ju, 0.5)
	if math.Abs(mJ-mU) > small.StdDev()/5 {
		t.Errorf("prior sensitivity too high: %g vs %g", mJ, mU)
	}
}

func TestZeroMatchesStillAllowsHighSelectivity(t *testing.T) {
	// Section 5.2.1's T=95% observation: even with k=0 out of n=1000,
	// the 95th percentile exceeds the 0.14% crossover, so a conservative
	// optimizer never picks the risky plan.
	sel, err := RobustSelectivity(0, 1000, Jeffreys, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if sel <= 0.0014 {
		t.Errorf("k=0, n=1000 at T=95%% = %g, want > 0.0014", sel)
	}
	// And the Experiment-4 self-adjustment: with a 50-tuple sample even
	// the median exceeds the crossover.
	sel, err = RobustSelectivity(0, 50, Jeffreys, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sel <= 0.0014 {
		t.Errorf("k=0, n=50 at T=50%% = %g, want > 0.0014", sel)
	}
}

func TestMLAndExpectedSelectivity(t *testing.T) {
	ml, err := MLSelectivity(10, 100)
	if err != nil || ml != 0.1 {
		t.Errorf("ML = %g, %v", ml, err)
	}
	if _, err := MLSelectivity(1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MLSelectivity(5, 4); err == nil {
		t.Error("k>n accepted")
	}
	exp, err := ExpectedSelectivity(10, 100, Jeffreys)
	if err != nil || math.Abs(exp-10.5/101) > 1e-12 {
		t.Errorf("Expected = %g, %v", exp, err)
	}
}

func TestEstimateDistinct(t *testing.T) {
	// All-unique sample scales up by sqrt(N/n).
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = string(rune('a' + i%26)) // duplicates within 26 letters
	}
	est, err := EstimateDistinct(keys, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if est < 26 || est > 10000 {
		t.Errorf("distinct = %g", est)
	}
	if _, err := EstimateDistinct(nil, 100); err == nil {
		t.Error("empty sample accepted")
	}
	// A sample where every value appears many times: estimate is close to
	// the sample-distinct count, not inflated.
	rep := make([]string, 100)
	for i := range rep {
		rep[i] = []string{"x", "y"}[i%2]
	}
	est, _ = EstimateDistinct(rep, 1000000)
	if est != 2 {
		t.Errorf("repeated distinct = %g, want 2", est)
	}
	// All-singleton sample: pure sqrt scaling, clamped by total.
	uniq := make([]string, 4)
	for i := range uniq {
		uniq[i] = string(rune('a' + i))
	}
	est, _ = EstimateDistinct(uniq, 16)
	if math.Abs(est-8) > 1e-9 { // sqrt(16/4)*4 = 8
		t.Errorf("singleton estimate = %g, want 8", est)
	}
}
