package core

import "fmt"

// Credible intervals are the plan cache's re-bind rule (DESIGN.md §13):
// when a prepared statement is re-executed with new parameter values, the
// serving layer must decide — cheaply — whether the plan optimized for the
// old values is still trustworthy. The paper's machinery answers this
// directly: every estimate the optimizer consumed was a quantile of a Beta
// posterior, so the posterior itself delimits the selectivity region the
// plan was chosen under. A new binding whose point estimate stays inside
// that credible region cannot move any cost comparison by more than the
// uncertainty the optimizer already priced in at threshold T; a binding
// that leaves the region invalidates the plan choice and forces
// re-optimization. This is the parametric-query-optimization rule of
// Trummer & Koch (arXiv:1511.01782) expressed in the paper's Bayesian
// terms.

// DefaultIntervalWidth is the central credible mass the plan cache
// records per planned estimate: 0.95 leaves a 2.5% tail on each side.
const DefaultIntervalWidth = 0.95

// IntervalEstimator is the contract the plan cache needs from an
// estimator to support parameter re-binding: a (relatively expensive)
// credible interval at plan time, and a cheap point estimate — no
// quantile inversion — at re-bind time. BayesEstimator implements it;
// estimators without posteriors simply don't, and the cache treats any
// parameter change as a miss for them.
type IntervalEstimator interface {
	CredibleInterval(req Request, width float64) (lo, hi float64, err error)
	PointEstimate(req Request) (float64, error)
}

// CredibleInterval returns the central credible interval containing
// `width` posterior mass for the request's selectivity: the posterior
// quantiles at (1-width)/2 and 1-(1-width)/2. Both inversions go through
// the shared QuantileCache, so repeated plans over the same synopsis
// observations pay the bisection only once.
func (e *BayesEstimator) CredibleInterval(req Request, width float64) (lo, hi float64, err error) {
	if !(width > 0 && width < 1) {
		return 0, 0, fmt.Errorf("core: credible interval width %g outside (0, 1)", width)
	}
	k, n, _, err := e.Observe(req)
	if err != nil {
		return 0, 0, err
	}
	post, err := e.Prior.Posterior(k, n)
	if err != nil {
		return 0, 0, err
	}
	tail := (1 - width) / 2
	lo, err = e.Quantiles.Quantile(post, tail)
	if err != nil {
		return 0, 0, err
	}
	hi, err = e.Quantiles.Quantile(post, 1-tail)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// PointEstimate returns the posterior-mean selectivity (k+a)/(n+a+b) for
// the request — the cheap re-bind check. It evaluates the predicate on
// the synopsis (the same Observe the full estimate performs) but skips
// the inverse-CDF entirely, which is what makes the plan-cache hit path
// quantiling-free.
func (e *BayesEstimator) PointEstimate(req Request) (float64, error) {
	k, n, _, err := e.Observe(req)
	if err != nil {
		return 0, err
	}
	return (float64(k) + e.Prior.A) / (float64(n) + e.Prior.A + e.Prior.B), nil
}

// Compile-time check that the robust estimator supports re-binding.
var _ IntervalEstimator = (*BayesEstimator)(nil)
