package sqlparse

import "testing"

// fuzzSeeds covers every statement shape the unit tests exercise plus the
// syntax corners (quoting, nesting, case, aggregates) a mutator should
// start from.
var fuzzSeeds = []string{
	"SELECT * FROM lineitem",
	"SELECT lineitem.l_id, l_price FROM lineitem WHERE l_price > 10 ORDER BY l_price ASC",
	"SELECT l_partkey FROM lineitem GROUP BY l_partkey",
	"SELECT SUM(l_price * l_quantity) FROM lineitem",
	"select count(*) from lineitem where l_price > 1 group by l_partkey order by l_partkey limit 3",
	"SELECT * FROM notes WHERE body CONTAINS 'select from where group by' AND (qty + 1) > 2",
	"SELECT AVG(l_price), MIN(orders.o_total) FROM lineitem, orders",
	"SELECT * FROM t WHERE d BETWEEN DATE '1997-07-01' AND DATE '1997-09-30'",
	"SELECT * FROM t WHERE a IN (1, -2.5, 3) OR NOT s LIKE '%x%'",
	"SELECT * FROM t WHERE s = 'it''s'",
	"SELECT COUNT(*) AS n, a FROM t GROUP BY a ORDER BY a DESC LIMIT 10",
	"SELECT * FROM t WHERE ((a = 1))",
	"not sql",
	"SELECT",
	"SELECT * FROM",
	"SELECT * FROM t WHERE 'unterminated",
	"SELECT * FROM t LIMIT 99999999999999999999",
}

// FuzzParse asserts Parse never panics, and that its result contract holds:
// exactly one of (query, error) is non-nil and a parsed query names at
// least one table.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			if q != nil {
				t.Errorf("Parse(%q) returned both a query and an error", sql)
			}
			return
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned nil query without error", sql)
		}
		if len(q.Tables) == 0 {
			t.Errorf("Parse(%q) accepted a query with no tables", sql)
		}
	})
}

// TestParseCrasherRegressions pins inputs that stress the paths most
// likely to crash or hang (keyword splitting against quotes, top-level
// comma scanning, numeric overflow, stray unicode). Each must return —
// accepting or rejecting is fine, panicking or looping is not.
func TestParseCrasherRegressions(t *testing.T) {
	crashers := []string{
		"",
		"SELECT * FROM t WHERE s = 'FROM WHERE GROUP BY ORDER BY LIMIT'",
		"SELECT * FROM t,,u",
		"SELECT (((((((((( FROM t",
		"SELECT * FROM t LIMIT 18446744073709551616",
		"SELECT * FROM t ORDER BY",
		"SELECT \x00 FROM \xff",
		"SELECT * FROM t WHERE a = DATE ''",
		"SELECT SUM( FROM t",
		"SELECT * FROM t GROUP BY ORDER BY LIMIT",
	}
	for _, sql := range crashers {
		q, err := Parse(sql)
		if err == nil && (q == nil || len(q.Tables) == 0) {
			t.Errorf("Parse(%q) = %v with nil error", sql, q)
		}
	}
}
