// Package sqlparse parses a single-statement SQL SELECT into an
// optimizer.Query:
//
//	SELECT <list> FROM <tables> [WHERE <pred>] [GROUP BY <cols>]
//	    [ORDER BY <key> [ASC|DESC], ...] [LIMIT <n>]
//
// The select list holds '*', column references, or aggregate calls
// (SUM/COUNT/MIN/MAX/AVG) with optional AS aliases; FROM lists the tables
// of the foreign-key join (join predicates are implicit, per the paper's
// query model); WHERE uses the predicate grammar of package expr.
//
// Semantics notes: with aggregates or GROUP BY present, every plain
// select item must appear in GROUP BY, and the output is the group
// columns followed by the aggregates. GROUP BY without aggregates yields
// the distinct group combinations.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
)

// Parse converts the SELECT statement into a Query ready for the
// optimizer. Name and type resolution happens later, at optimization
// time, against the database's catalog.
func Parse(sql string) (*optimizer.Query, error) {
	sections, err := split(sql)
	if err != nil {
		return nil, err
	}
	q := &optimizer.Query{}

	// FROM
	fromText, ok := sections["FROM"]
	if !ok {
		return nil, fmt.Errorf("sqlparse: missing FROM clause")
	}
	for _, part := range splitTopLevel(fromText) {
		name := strings.TrimSpace(part)
		if name == "" || !isIdentifier(name) {
			return nil, fmt.Errorf("sqlparse: bad table name %q", name)
		}
		q.Tables = append(q.Tables, name)
	}
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("sqlparse: FROM lists no tables")
	}

	// WHERE
	if text, ok := sections["WHERE"]; ok {
		pred, err := expr.Parse(text)
		if err != nil {
			return nil, err
		}
		q.Pred = pred
	}

	// GROUP BY
	if text, ok := sections["GROUP BY"]; ok {
		for _, part := range splitTopLevel(text) {
			ref, err := columnRef(part)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: GROUP BY: %v", err)
			}
			q.GroupBy = append(q.GroupBy, ref)
		}
		if len(q.GroupBy) == 0 {
			return nil, fmt.Errorf("sqlparse: empty GROUP BY")
		}
	}

	// SELECT list
	selText, ok := sections["SELECT"]
	if !ok {
		return nil, fmt.Errorf("sqlparse: statement must start with SELECT")
	}
	var plainCols []expr.ColumnRef
	star := false
	for _, part := range splitTopLevel(selText) {
		item := strings.TrimSpace(part)
		if item == "" {
			return nil, fmt.Errorf("sqlparse: empty select item")
		}
		if item == "*" {
			star = true
			continue
		}
		if agg, ok, err := aggItem(item); err != nil {
			return nil, err
		} else if ok {
			q.Aggs = append(q.Aggs, agg)
			continue
		}
		ref, err := columnRef(item)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: select item %q: %v", item, err)
		}
		plainCols = append(plainCols, ref)
	}
	if star && (len(plainCols) > 0 || len(q.Aggs) > 0) {
		return nil, fmt.Errorf("sqlparse: '*' cannot be combined with other select items")
	}
	if len(q.Aggs) > 0 || len(q.GroupBy) > 0 {
		if star {
			return nil, fmt.Errorf("sqlparse: '*' is not valid with aggregation")
		}
		for _, c := range plainCols {
			if !refInList(c, q.GroupBy) {
				return nil, fmt.Errorf("sqlparse: select column %s must appear in GROUP BY", c)
			}
		}
	} else if !star {
		if len(plainCols) == 0 {
			return nil, fmt.Errorf("sqlparse: empty select list")
		}
		q.Project = plainCols
	}

	// ORDER BY
	if text, ok := sections["ORDER BY"]; ok {
		for _, part := range splitTopLevel(text) {
			key, err := sortKey(part)
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, key)
		}
		if len(q.OrderBy) == 0 {
			return nil, fmt.Errorf("sqlparse: empty ORDER BY")
		}
	}

	// LIMIT
	if text, ok := sections["LIMIT"]; ok {
		n, err := strconv.Atoi(strings.TrimSpace(text))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", strings.TrimSpace(text))
		}
		q.Limit = n
	}
	return q, nil
}

// sectionOrder lists clause keywords in their mandatory order.
var sectionOrder = []string{"SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY", "LIMIT"}

// split carves the statement into its clauses, honoring string literals
// and parentheses so keywords inside them don't terminate a clause.
func split(sql string) (map[string]string, error) {
	words, spans, err := topLevelWords(sql)
	if err != nil {
		return nil, err
	}
	type mark struct {
		keyword string
		from    int // byte offset where the clause body starts
		at      int // byte offset of the keyword itself
	}
	var marks []mark
	for i := 0; i < len(words); i++ {
		upper := strings.ToUpper(words[i])
		switch upper {
		case "SELECT", "FROM", "WHERE", "LIMIT":
			marks = append(marks, mark{keyword: upper, from: spans[i][1], at: spans[i][0]})
		case "GROUP", "ORDER":
			if i+1 < len(words) && strings.EqualFold(words[i+1], "BY") {
				marks = append(marks, mark{keyword: upper + " BY", from: spans[i+1][1], at: spans[i][0]})
				i++
			}
		}
	}
	if len(marks) == 0 || marks[0].keyword != "SELECT" {
		return nil, fmt.Errorf("sqlparse: statement must start with SELECT")
	}
	if strings.TrimSpace(sql[:marks[0].at]) != "" {
		return nil, fmt.Errorf("sqlparse: unexpected text before SELECT")
	}
	sections := make(map[string]string, len(marks))
	orderIdx := -1
	for i, m := range marks {
		idx := indexOf(sectionOrder, m.keyword)
		if idx < 0 {
			return nil, fmt.Errorf("sqlparse: unexpected clause %q", m.keyword)
		}
		if idx <= orderIdx {
			return nil, fmt.Errorf("sqlparse: clause %s out of order or repeated", m.keyword)
		}
		orderIdx = idx
		end := len(sql)
		if i+1 < len(marks) {
			end = marks[i+1].at
		}
		sections[m.keyword] = strings.TrimSpace(sql[m.from:end])
	}
	return sections, nil
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// topLevelWords lexes the statement into bare words (identifiers and
// keywords) outside parentheses and string literals, with byte spans.
func topLevelWords(sql string) (words []string, spans [][2]int, err error) {
	depth := 0
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == '\'':
			j := i + 1
			for j < len(sql) && sql[j] != '\'' {
				j++
			}
			if j >= len(sql) {
				return nil, nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			i = j + 1
		case c == '(':
			depth++
			i++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, nil, fmt.Errorf("sqlparse: unbalanced ')' at offset %d", i)
			}
			i++
		case isWordByte(c):
			j := i
			for j < len(sql) && isWordByte(sql[j]) {
				j++
			}
			if depth == 0 {
				words = append(words, sql[i:j])
				spans = append(spans, [2]int{i, j})
			}
			i = j
		default:
			i++
		}
	}
	if depth != 0 {
		return nil, nil, fmt.Errorf("sqlparse: unbalanced '('")
	}
	return words, spans, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// splitTopLevel splits on commas outside parentheses and strings.
func splitTopLevel(s string) []string {
	var parts []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// columnRef parses "col" or "table.col".
func columnRef(s string) (expr.ColumnRef, error) {
	s = strings.TrimSpace(s)
	e, err := expr.Parse(s)
	if err != nil {
		return expr.ColumnRef{}, err
	}
	col, ok := e.(expr.Col)
	if !ok {
		return expr.ColumnRef{}, fmt.Errorf("%q is not a column reference", s)
	}
	return col.Ref, nil
}

var aggFuncs = map[string]engine.AggFunc{
	"SUM": engine.Sum, "COUNT": engine.Count, "MIN": engine.Min,
	"MAX": engine.Max, "AVG": engine.Avg,
}

// aggItem recognizes "FUNC(arg) [AS alias]". ok is false when the item is
// not an aggregate call at all.
func aggItem(item string) (engine.AggSpec, bool, error) {
	trimmed := strings.TrimSpace(item)
	open := strings.IndexByte(trimmed, '(')
	if open <= 0 {
		return engine.AggSpec{}, false, nil
	}
	fn, isAgg := aggFuncs[strings.ToUpper(strings.TrimSpace(trimmed[:open]))]
	if !isAgg {
		return engine.AggSpec{}, false, nil
	}
	close := strings.LastIndexByte(trimmed, ')')
	if close < open {
		return engine.AggSpec{}, false, fmt.Errorf("sqlparse: unbalanced parentheses in %q", item)
	}
	arg := strings.TrimSpace(trimmed[open+1 : close])
	rest := strings.TrimSpace(trimmed[close+1:])
	spec := engine.AggSpec{Func: fn}
	if arg == "*" {
		if fn != engine.Count {
			return engine.AggSpec{}, false, fmt.Errorf("sqlparse: %s(*) is not valid; only COUNT(*)", fn)
		}
	} else {
		e, err := expr.Parse(arg)
		if err != nil {
			return engine.AggSpec{}, false, fmt.Errorf("sqlparse: aggregate argument %q: %v", arg, err)
		}
		spec.Arg = e
	}
	if rest != "" {
		fields := strings.Fields(rest)
		if len(fields) != 2 || !strings.EqualFold(fields[0], "AS") || !isIdentifier(fields[1]) {
			return engine.AggSpec{}, false, fmt.Errorf("sqlparse: bad alias clause %q", rest)
		}
		spec.As = fields[1]
	} else {
		spec.As = defaultAlias(fn, arg)
	}
	return spec, true, nil
}

func defaultAlias(fn engine.AggFunc, arg string) string {
	name := strings.ToLower(fn.String())
	if arg == "*" || arg == "" {
		return name
	}
	clean := strings.Map(func(r rune) rune {
		switch {
		case r == '_' || r == '.':
			return '_'
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			return r
		default:
			return -1
		}
	}, arg)
	return name + "_" + clean
}

// sortKey parses "ref [ASC|DESC]".
func sortKey(s string) (engine.SortKey, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) == 0 {
		return engine.SortKey{}, fmt.Errorf("sqlparse: empty ORDER BY key")
	}
	desc := false
	refText := fields[0]
	switch {
	case len(fields) == 2 && strings.EqualFold(fields[1], "DESC"):
		desc = true
	case len(fields) == 2 && strings.EqualFold(fields[1], "ASC"):
	case len(fields) == 1:
	default:
		return engine.SortKey{}, fmt.Errorf("sqlparse: bad ORDER BY key %q", s)
	}
	ref, err := columnRef(refText)
	if err != nil {
		return engine.SortKey{}, fmt.Errorf("sqlparse: ORDER BY: %v", err)
	}
	return engine.SortKey{Col: ref, Desc: desc}, nil
}

// refInList reports whether ref matches one of the group-by references,
// treating an unqualified reference as matching any qualification of the
// same column name.
func refInList(ref expr.ColumnRef, list []expr.ColumnRef) bool {
	for _, g := range list {
		if g == ref {
			return true
		}
		if g.Column == ref.Column && (g.Table == "" || ref.Table == "") {
			return true
		}
	}
	return false
}
