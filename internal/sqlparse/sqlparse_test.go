package sqlparse

import (
	"strings"
	"testing"

	"robustqo/internal/engine"
	"robustqo/internal/expr"
)

func TestParseBasicSelectStar(t *testing.T) {
	q, err := Parse("SELECT * FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 || q.Tables[0] != "lineitem" {
		t.Errorf("tables = %v", q.Tables)
	}
	if q.Pred != nil || q.Project != nil || q.Aggs != nil || q.Limit != 0 {
		t.Errorf("unexpected extras: %+v", q)
	}
}

func TestParseFullStatement(t *testing.T) {
	q, err := Parse(`SELECT l_partkey, SUM(l_extendedprice) AS revenue, COUNT(*)
		FROM lineitem, orders, part
		WHERE l_shipdate BETWEEN DATE '1997-07-01' AND DATE '1997-09-30' AND p_size < 10
		GROUP BY l_partkey
		ORDER BY l_partkey DESC
		LIMIT 25`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 3 || q.Tables[2] != "part" {
		t.Errorf("tables = %v", q.Tables)
	}
	if q.Pred == nil || !strings.Contains(q.Pred.String(), "BETWEEN") {
		t.Errorf("pred = %v", q.Pred)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "l_partkey" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if len(q.Aggs) != 2 {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	if q.Aggs[0].Func != engine.Sum || q.Aggs[0].As != "revenue" {
		t.Errorf("agg0 = %+v", q.Aggs[0])
	}
	if q.Aggs[1].Func != engine.Count || q.Aggs[1].Arg != nil || q.Aggs[1].As != "count" {
		t.Errorf("agg1 = %+v", q.Aggs[1])
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.OrderBy[0].Col.Column != "l_partkey" {
		t.Errorf("order by = %v", q.OrderBy)
	}
	if q.Limit != 25 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseProjection(t *testing.T) {
	q, err := Parse("SELECT lineitem.l_id, l_price FROM lineitem WHERE l_price > 10 ORDER BY l_price ASC")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Project) != 2 || q.Project[0] != (expr.ColumnRef{Table: "lineitem", Column: "l_id"}) {
		t.Errorf("project = %v", q.Project)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Desc {
		t.Errorf("order by = %v", q.OrderBy)
	}
}

func TestParseGroupByWithoutAggs(t *testing.T) {
	// SELECT DISTINCT-style: group columns only.
	q, err := Parse("SELECT l_partkey FROM lineitem GROUP BY l_partkey")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || len(q.Aggs) != 0 || q.Project != nil {
		t.Errorf("query = %+v", q)
	}
}

func TestParseAggregateArgExpression(t *testing.T) {
	q, err := Parse("SELECT SUM(l_price * l_quantity) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Arg == nil {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
	if q.Aggs[0].As != "sum_l_price__l_quantity" && !strings.HasPrefix(q.Aggs[0].As, "sum_") {
		t.Errorf("alias = %q", q.Aggs[0].As)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select count(*) from lineitem where l_price > 1 group by l_partkey order by l_partkey limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 1 || q.Limit != 3 {
		t.Errorf("query = %+v", q)
	}
}

func TestKeywordsInsideStringsAndParens(t *testing.T) {
	// The words FROM/WHERE inside a string literal or parentheses must
	// not terminate clauses.
	q, err := Parse("SELECT * FROM notes WHERE body CONTAINS 'select from where group by' AND (qty + 1) > 2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Pred == nil || len(q.Tables) != 1 || q.Tables[0] != "notes" {
		t.Errorf("query = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT *",                   // no FROM
		"SELECT FROM t",              // empty select list
		"SELECT * FROM",              // no tables
		"SELECT * FROM t WHERE",      // empty predicate
		"SELECT * FROM t LIMIT x",    // bad limit
		"SELECT * FROM t LIMIT -1",   // negative limit
		"SELECT * FROM 123",          // bad table name
		"SELECT *, l_id FROM t",      // star plus items
		"SELECT a FROM t GROUP BY b", // non-grouped column
		"SELECT SUM(*) FROM t",       // SUM(*)
		"SELECT SUM(x) wat alias FROM t",
		"SELECT x FROM t ORDER BY", // empty order by
		"SELECT x FROM t ORDER BY x SIDEWAYS",
		"SELECT x FROM t GROUP BY", // empty group by
		"FROM t SELECT *",          // out of order
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE (a = 1", // unbalanced
		"SELECT * FROM t WHERE a = 1)", // unbalanced
		"junk SELECT * FROM t",         // leading text
		"SELECT * FROM t LIMIT 1 LIMIT 2",
		"SELECT COUNT(( FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded", sql)
		}
	}
}

func TestParseStarWithAggregationRejected(t *testing.T) {
	if _, err := Parse("SELECT * FROM t GROUP BY a"); err == nil {
		t.Error("star with GROUP BY accepted")
	}
	if _, err := Parse("SELECT *, COUNT(*) FROM t"); err == nil {
		t.Error("star with aggregate accepted")
	}
}

func TestParseRejectsNonSQL(t *testing.T) {
	if _, err := Parse("not sql"); err == nil {
		t.Error("Parse(\"not sql\") succeeded")
	}
}

func TestDefaultAliases(t *testing.T) {
	q, err := Parse("SELECT AVG(l_price), MIN(orders.o_total) FROM lineitem, orders")
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggs[0].As != "avg_l_price" {
		t.Errorf("alias0 = %q", q.Aggs[0].As)
	}
	if q.Aggs[1].As != "min_orders_o_total" {
		t.Errorf("alias1 = %q", q.Aggs[1].As)
	}
}
