package tpch

import (
	"math"
	"testing"

	"robustqo/internal/expr"
	"robustqo/internal/sample"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// splitSecond extracts the second top-level conjunct of a predicate.
func splitSecond(pred expr.Expr) expr.Expr {
	return expr.SplitConjuncts(pred)[1]
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero Lines accepted")
	}
	if _, err := Generate(Config{Lines: 100, PartCorrelation: 1.5}); err == nil {
		t.Error("correlation > 1 accepted")
	}
}

func TestGenerateIntegrity(t *testing.T) {
	db, err := Generate(Config{Lines: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("referential integrity: %v", err)
	}
	li := testkit.Table(db, "lineitem")
	if li.NumRows() != 5000 {
		t.Errorf("lineitem rows = %d", li.NumRows())
	}
	if testkit.Table(db, "orders").NumRows() != 1250 {
		t.Errorf("orders rows = %d", testkit.Table(db, "orders").NumRows())
	}
	// Every receipt date trails its ship date by 1..MaxReceiptDelay days.
	shipIdx := li.Schema().ColumnIndex("l_shipdate")
	rcptIdx := li.Schema().ColumnIndex("l_receiptdate")
	ships := li.Ints(shipIdx)
	rcpts := li.Ints(rcptIdx)
	for i := range ships {
		d := rcpts[i] - ships[i]
		if d < 1 || d > MaxReceiptDelay {
			t.Fatalf("row %d: receipt delay %d", i, d)
		}
	}
}

// TestGenerateClusteredDates: ClusterDates preserves every integrity
// property (same marginal distribution, receipt-trails-ship invariant,
// referential integrity) while laying rows out in ship-date order.
func TestGenerateClusteredDates(t *testing.T) {
	db, err := Generate(Config{Lines: 5000, Seed: 1, ClusterDates: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("referential integrity: %v", err)
	}
	li := testkit.Table(db, "lineitem")
	shipIdx := li.Schema().ColumnIndex("l_shipdate")
	rcptIdx := li.Schema().ColumnIndex("l_receiptdate")
	ships := li.Ints(shipIdx)
	rcpts := li.Ints(rcptIdx)
	for i := range ships {
		if i > 0 && ships[i] < ships[i-1] {
			t.Fatalf("row %d: ship date %d precedes row %d's %d", i, ships[i], i-1, ships[i-1])
		}
		if d := rcpts[i] - ships[i]; d < 1 || d > MaxReceiptDelay {
			t.Fatalf("row %d: receipt delay %d", i, d)
		}
	}
	if ships[0] < ShipDateLo || ships[len(ships)-1] >= ShipDateHi {
		t.Errorf("ship dates [%d, %d] outside the generation window", ships[0], ships[len(ships)-1])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Lines: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Lines: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	la, lb := testkit.Table(a, "lineitem"), testkit.Table(b, "lineitem")
	for r := 0; r < la.NumRows(); r++ {
		for c := range la.Schema().Columns {
			if !value.Equal(la.Value(r, c), lb.Value(r, c)) {
				t.Fatalf("row %d col %d differs", r, c)
			}
		}
	}
	c, _ := Generate(Config{Lines: 500, Seed: 8})
	diff := 0
	lc := testkit.Table(c, "lineitem")
	for r := 0; r < 100; r++ {
		if !value.Equal(la.Value(r, 3), lc.Value(r, 3)) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical ship dates")
	}
}

func TestExperiment1SelectivityDecreasesWithShift(t *testing.T) {
	db, err := Generate(Config{Lines: 30000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The joint selectivity peaks near the mean receipt delay (~15 days)
	// and decays monotonically for larger shifts, reaching zero once the
	// windows cannot overlap.
	prev := 1.0
	var at15, at200 float64
	for _, shift := range []int64{15, 40, 80, 122, 200} {
		sel, err := sample.ExactFraction(db, []string{"lineitem"}, Experiment1Predicate(shift))
		if err != nil {
			t.Fatal(err)
		}
		if sel > prev+1e-9 {
			t.Errorf("shift %d: selectivity %g rose above %g", shift, sel, prev)
		}
		prev = sel
		switch shift {
		case 15:
			at15 = sel
		case 200:
			at200 = sel
		}
	}
	// Near the delay mode the joint approaches the ~3.8% marginal.
	if at15 < 0.02 || at15 > 0.05 {
		t.Errorf("joint at shift 15 = %g", at15)
	}
	// Far shifts have zero overlap.
	if at200 != 0 {
		t.Errorf("joint at shift 200 = %g", at200)
	}
}

func TestExperiment1MarginalsConstant(t *testing.T) {
	// The receipt-window marginal must not depend on the shift (this is
	// what blinds histograms to the parameter).
	db, err := Generate(Config{Lines: 30000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	marginal := func(shift int64) float64 {
		q := Experiment1Query(shift)
		terms := q.Pred.(interface{ String() string })
		_ = terms
		// Rebuild just the receipt-date term.
		pred := Experiment1Query(shift).Pred
		// The second conjunct is the receipt window.
		sel, err := sample.ExactFraction(db, []string{"lineitem"}, splitSecond(pred))
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	m0 := marginal(0)
	m60 := marginal(60)
	m120 := marginal(120)
	if math.Abs(m0-m60) > 0.005 || math.Abs(m0-m120) > 0.005 {
		t.Errorf("marginals vary: %g, %g, %g", m0, m60, m120)
	}
}

func TestExperiment2JointSweepsWhileMarginalsFixed(t *testing.T) {
	db, err := Generate(Config{Lines: 2000, Parts: 20000, PartCorrelation: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	joint := func(x int64) float64 {
		sel, err := sample.ExactFraction(db, []string{"part"}, Experiment2Query(x).Pred)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	aligned := joint(0)
	disjoint := joint(500)
	// Aligned: ~phi*2% + (1-phi)*0.04% ≈ 1.02%. Disjoint: ≈ 0.02%.
	if aligned < 0.006 || aligned > 0.016 {
		t.Errorf("aligned joint = %g", aligned)
	}
	if disjoint > 0.002 {
		t.Errorf("disjoint joint = %g", disjoint)
	}
	if aligned <= disjoint {
		t.Error("correlation sweep has no effect")
	}
	// Marginal of the sliding window is constant.
	m1, _ := sample.ExactFraction(db, []string{"part"}, splitSecond(Experiment2Query(0).Pred))
	m2, _ := sample.ExactFraction(db, []string{"part"}, splitSecond(Experiment2Query(500).Pred))
	if math.Abs(m1-0.02) > 0.01 || math.Abs(m2-0.02) > 0.01 {
		t.Errorf("window marginals = %g, %g, want ~0.02", m1, m2)
	}
}

func TestQueriesAreWellFormed(t *testing.T) {
	q1 := Experiment1Query(30)
	if len(q1.Tables) != 1 || q1.Tables[0] != "lineitem" || len(q1.Aggs) != 1 {
		t.Errorf("Experiment1Query = %+v", q1)
	}
	q2 := Experiment2Query(10)
	if len(q2.Tables) != 3 || len(q2.Aggs) != 2 {
		t.Errorf("Experiment2Query = %+v", q2)
	}
}
