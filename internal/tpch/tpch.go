// Package tpch generates the TPC-H-like data used by Experiments 1 and 2
// of the paper: a lineitem fact table with correlated ship/receipt dates,
// an orders table, and a part table with a tunable correlated attribute
// pair.
//
// The paper ran against TPC-H at scale factor 1 (6,000,000 lineitem rows)
// on a commercial DBMS; this generator reproduces the two statistical
// properties the experiments depend on — date correlation for the
// two-predicate query, attribute correlation in part for the join query —
// at a configurable scale (DESIGN.md, substitutions table).
package tpch

import (
	"fmt"
	"sort"

	"robustqo/internal/catalog"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// Date span covered by l_shipdate, mirroring TPC-H's 1992-01-01 through
// 1998-08-02 generation window.
var (
	ShipDateLo = value.DateFromCivil(1992, 1, 1)
	ShipDateHi = value.DateFromCivil(1998, 8, 2)
)

// MaxReceiptDelay is the largest l_receiptdate - l_shipdate gap, matching
// TPC-H's 1..30 day shipping delay. The delay drives the correlation the
// single-table experiment exploits.
const MaxReceiptDelay = 30

// Config controls generation.
type Config struct {
	// Lines is the number of lineitem rows (the paper's SF1 has 6e6).
	Lines int
	// Parts is the number of part rows; defaults to Lines/30 (min 200).
	Parts int
	// Orders is the number of orders rows; defaults to Lines/4 (min 1).
	Orders int
	// PartCorrelation is the fraction of part rows whose p_attr2 is set
	// equal to p_attr1 (Experiment 2's "correlated data distribution");
	// the rest draw p_attr2 independently. In [0, 1].
	PartCorrelation float64
	// Partitions, when > 1, range-partitions lineitem on l_shipdate into
	// that many equal-width date shards. Partitioned lineitem loses its
	// Ordered declaration: rows live in partition-major order, which is
	// not l_id order.
	Partitions int
	// ClusterDates lays lineitem out in l_shipdate order: the same
	// marginal date distribution, assigned to rows ascending. Real
	// warehouses are loaded roughly in ship order, which is what makes
	// per-segment zone maps selective; the default random layout leaves
	// every segment's date zone spanning the full range, so zone-map
	// skipping is inert on it. l_id stays sequential and l_orderkey keeps
	// its cyclic assignment, so the Ordered declarations are unaffected.
	ClusterDates bool
	// Seed makes generation reproducible.
	Seed uint64
}

func (c *Config) fill() error {
	if c.Lines <= 0 {
		return fmt.Errorf("tpch: Lines must be positive, got %d", c.Lines)
	}
	if c.PartCorrelation < 0 || c.PartCorrelation > 1 {
		return fmt.Errorf("tpch: PartCorrelation %g outside [0, 1]", c.PartCorrelation)
	}
	if c.Parts == 0 {
		c.Parts = c.Lines / 30
		if c.Parts < 200 {
			c.Parts = 200
		}
	}
	if c.Orders == 0 {
		c.Orders = c.Lines / 4
		if c.Orders < 1 {
			c.Orders = 1
		}
	}
	return nil
}

// PartAttrRange is the value range of p_attr1/p_attr2 (0..999); the
// Experiment-2 predicates select 20-wide windows (2% marginals).
const PartAttrRange = 1000

// PartWindow is the width of the Experiment-2 attribute windows.
const PartWindow = 20

// Generate builds the database.
func Generate(cfg Config) (*storage.Database, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	part, err := db.CreateTable(&catalog.TableSchema{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: catalog.Int},
			{Name: "p_attr1", Type: catalog.Int},
			{Name: "p_attr2", Type: catalog.Int},
			{Name: "p_size", Type: catalog.Int},
		},
		PrimaryKey: "p_partkey",
		Ordered:    []string{"p_partkey"},
	})
	if err != nil {
		return nil, err
	}
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int},
			{Name: "o_orderdate", Type: catalog.Date},
			{Name: "o_totalprice", Type: catalog.Float},
		},
		PrimaryKey: "o_orderkey",
		Ordered:    []string{"o_orderkey"},
	})
	if err != nil {
		return nil, err
	}
	lineSchema := &catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_orderkey", Type: catalog.Int},
			{Name: "l_partkey", Type: catalog.Int},
			{Name: "l_shipdate", Type: catalog.Date},
			{Name: "l_receiptdate", Type: catalog.Date},
			{Name: "l_quantity", Type: catalog.Int},
			{Name: "l_extendedprice", Type: catalog.Float},
		},
		PrimaryKey: "l_id",
		Foreign: []catalog.ForeignKey{
			{Column: "l_orderkey", RefTable: "orders"},
			{Column: "l_partkey", RefTable: "part"},
		},
		Indexes: []catalog.Index{
			{Name: "ix_l_shipdate", Column: "l_shipdate", Kind: catalog.NonClustered},
			{Name: "ix_l_receiptdate", Column: "l_receiptdate", Kind: catalog.NonClustered},
			{Name: "ix_l_partkey", Column: "l_partkey", Kind: catalog.NonClustered},
		},
		Ordered: []string{"l_id", "l_orderkey"},
	}
	if cfg.Partitions > 1 {
		spec := &catalog.PartitionSpec{
			Column: "l_shipdate", Kind: catalog.RangePartition, Partitions: cfg.Partitions,
		}
		span := ShipDateHi - ShipDateLo
		for b := 1; b < cfg.Partitions; b++ {
			spec.Bounds = append(spec.Bounds, ShipDateLo+span*int64(b)/int64(cfg.Partitions))
		}
		lineSchema.Partition = spec
		// Partition-major physical order is not l_id order; the merge-join
		// shortcut the Ordered declaration enables would be wrong.
		lineSchema.Ordered = nil
	}
	lineitem, err := db.CreateTable(lineSchema)
	if err != nil {
		return nil, err
	}

	rng := stats.NewRNG(cfg.Seed)
	partRNG := stats.NewSticky(rng.Split())
	for p := 0; p < cfg.Parts; p++ {
		a1 := int64(partRNG.Intn(PartAttrRange))
		a2 := a1
		if partRNG.Float64() >= cfg.PartCorrelation {
			a2 = int64(partRNG.Intn(PartAttrRange))
		}
		row := value.Row{
			value.Int(int64(p)),
			value.Int(a1),
			value.Int(a2),
			value.Int(int64(partRNG.Intn(50) + 1)),
		}
		if err := part.Append(row); err != nil {
			return nil, err
		}
	}
	if err := partRNG.Err(); err != nil {
		return nil, err
	}
	orderRNG := stats.NewSticky(rng.Split())
	dateSpan := int(ShipDateHi - ShipDateLo)
	for o := 0; o < cfg.Orders; o++ {
		row := value.Row{
			value.Int(int64(o)),
			value.Date(ShipDateLo + int64(orderRNG.Intn(dateSpan))),
			value.Float(1000 + orderRNG.Float64()*100000),
		}
		if err := orders.Append(row); err != nil {
			return nil, err
		}
	}
	if err := orderRNG.Err(); err != nil {
		return nil, err
	}
	lineRNG := stats.NewSticky(rng.Split())
	var ships []int64
	if cfg.ClusterDates {
		ships = make([]int64, cfg.Lines)
		for l := range ships {
			ships[l] = ShipDateLo + int64(lineRNG.Intn(dateSpan))
		}
		sort.Slice(ships, func(i, j int) bool { return ships[i] < ships[j] })
	}
	for l := 0; l < cfg.Lines; l++ {
		var ship int64
		if ships != nil {
			ship = ships[l]
		} else {
			ship = ShipDateLo + int64(lineRNG.Intn(dateSpan))
		}
		receipt := ship + 1 + int64(lineRNG.Intn(MaxReceiptDelay))
		row := value.Row{
			value.Int(int64(l)),
			value.Int(int64(l % cfg.Orders)), // clustered by order, like dbgen
			value.Int(int64(lineRNG.Intn(cfg.Parts))),
			value.Date(ship),
			value.Date(receipt),
			value.Int(int64(lineRNG.Intn(50) + 1)),
			value.Float(900 + lineRNG.Float64()*100000),
		}
		if err := lineitem.Append(row); err != nil {
			return nil, err
		}
	}
	if err := lineRNG.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// Experiment1Query builds the Section 6.2.1 template:
//
//	SELECT SUM(l_extendedprice) FROM lineitem
//	WHERE l_shipdate    BETWEEN '1997-07-01'       AND '1997-09-30'
//	  AND l_receiptdate BETWEEN '1997-07-01' + ?   AND '1997-09-30' + ?
//
// shift is the "?" parameter in days; it controls the overlap of the two
// windows and hence the joint selectivity, while both marginal
// selectivities stay constant.
func Experiment1Query(shift int64) *optimizer.Query {
	lo := value.DateFromCivil(1997, 7, 1)
	hi := value.DateFromCivil(1997, 9, 30)
	pred := expr.Conj(
		expr.Between{
			E:  expr.TC("lineitem", "l_shipdate"),
			Lo: expr.DateLit(lo),
			Hi: expr.DateLit(hi),
		},
		expr.Between{
			E:  expr.TC("lineitem", "l_receiptdate"),
			Lo: expr.DateLit(lo + shift),
			Hi: expr.DateLit(hi + shift),
		},
	)
	return &optimizer.Query{
		Tables: []string{"lineitem"},
		Pred:   pred,
		Aggs: []engine.AggSpec{
			{Func: engine.Sum, Arg: expr.TC("lineitem", "l_extendedprice"), As: "revenue"},
		},
	}
}

// Experiment1Predicate returns just the WHERE clause of the Experiment-1
// template, for selectivity measurement.
func Experiment1Predicate(shift int64) expr.Expr {
	return Experiment1Query(shift).Pred
}

// Experiment2Query builds the Section 6.2.2 template: the natural join
// lineitem ⋈ orders ⋈ part with a two-attribute selection on part whose
// window position x is the free parameter. Both part predicates keep a
// fixed 2% marginal selectivity; sliding x from 0 (aligned with the
// p_attr1 window, maximal correlation) past PartWindow (disjoint) sweeps
// the joint selectivity downward.
func Experiment2Query(x int64) *optimizer.Query {
	pred := expr.Conj(
		expr.Cmp{Op: expr.LT, L: expr.TC("part", "p_attr1"), R: expr.IntLit(PartWindow)},
		expr.Between{
			E:  expr.TC("part", "p_attr2"),
			Lo: expr.IntLit(x),
			Hi: expr.IntLit(x + PartWindow - 1),
		},
	)
	return &optimizer.Query{
		Tables: []string{"lineitem", "orders", "part"},
		Pred:   pred,
		Aggs: []engine.AggSpec{
			{Func: engine.Sum, Arg: expr.TC("lineitem", "l_extendedprice"), As: "revenue"},
			{Func: engine.Count, As: "n"},
		},
	}
}
