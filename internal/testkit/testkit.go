//qolint:allow-panic — test support; a panic here is a test failure, not library behavior.

// Package testkit provides panicking convenience wrappers for tests.
// Library code under internal/ returns errors instead of panicking
// (enforced by the qolint nopanic analyzer); tests constructing
// fixtures from compile-time-constant inputs use these wrappers to
// keep the arrange phase readable. It may import only leaf packages
// (value, expr, storage, stats) so that any internal test package can
// use it without an import cycle.
package testkit

import (
	"fmt"

	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// Expr parses a predicate, panicking on syntax errors.
func Expr(input string) expr.Expr {
	e, err := expr.Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

// Date converts "YYYY-MM-DD" to a day number, panicking on malformed input.
func Date(s string) int64 {
	d, err := value.ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Compare orders two values, panicking on incomparable types.
func Compare(a, b value.Value) int {
	c, err := value.Compare(a, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Table fetches a table by name, panicking if it does not exist.
func Table(db *storage.Database, name string) *storage.Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("testkit: unknown table %q", name))
	}
	return t
}

// Intn draws from [0, n), panicking on a non-positive bound.
func Intn(rng *stats.RNG, n int) int {
	v, err := rng.Intn(n)
	if err != nil {
		panic(err)
	}
	return v
}

// Quantile inverts the Beta CDF, panicking on p outside [0, 1].
func Quantile(b stats.Beta, p float64) float64 {
	q, err := b.Quantile(p)
	if err != nil {
		panic(err)
	}
	return q
}
