package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// exactEstimator answers every request with the true selectivity by full
// enumeration — the "perfect statistics" oracle.
type exactEstimator struct{ db *storage.Database }

func (e *exactEstimator) Name() string { return "exact" }

func (e *exactEstimator) Estimate(req core.Request) (core.Estimate, error) {
	sel, err := sample.ExactFraction(e.db, req.Tables, req.Pred)
	if err != nil {
		return core.Estimate{}, err
	}
	root, err := e.db.Catalog.RootOf(req.Tables)
	if err != nil {
		return core.Estimate{}, err
	}
	return core.Estimate{Selectivity: sel, Rows: sel * float64(testkit.Table(e.db, root).NumRows())}, nil
}

// optDB builds a correlated lineitem/orders/part database large enough
// that the scan-vs-index crossover sits at a low selectivity.
func optDB(t *testing.T, nLines int, corrWindow int64) (*storage.Database, *engine.Context) {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	part, err := db.CreateTable(&catalog.TableSchema{
		Name: "part",
		Columns: []catalog.Column{
			{Name: "p_partkey", Type: catalog.Int},
			{Name: "p_size", Type: catalog.Int},
		},
		PrimaryKey: "p_partkey",
		Ordered:    []string{"p_partkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_orderkey", Type: catalog.Int},
			{Name: "o_total", Type: catalog.Float},
		},
		PrimaryKey: "o_orderkey",
		Ordered:    []string{"o_orderkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lineitem, err := db.CreateTable(&catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_orderkey", Type: catalog.Int},
			{Name: "l_partkey", Type: catalog.Int},
			{Name: "l_ship", Type: catalog.Date},
			{Name: "l_receipt", Type: catalog.Date},
			{Name: "l_price", Type: catalog.Float},
		},
		PrimaryKey: "l_id",
		Foreign: []catalog.ForeignKey{
			{Column: "l_orderkey", RefTable: "orders"},
			{Column: "l_partkey", RefTable: "part"},
		},
		Indexes: []catalog.Index{
			{Name: "ix_ship", Column: "l_ship", Kind: catalog.NonClustered},
			{Name: "ix_receipt", Column: "l_receipt", Kind: catalog.NonClustered},
			{Name: "ix_partkey", Column: "l_partkey", Kind: catalog.NonClustered},
		},
		Ordered: []string{"l_id", "l_orderkey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	const nParts = 200
	rng := stats.NewRNG(99)
	for p := 0; p < nParts; p++ {
		if err := part.Append(value.Row{value.Int(int64(p)), value.Int(int64(p % 50))}); err != nil {
			t.Fatal(err)
		}
	}
	nOrders := nLines / 4
	if nOrders == 0 {
		nOrders = 1
	}
	for o := 0; o < nOrders; o++ {
		if err := orders.Append(value.Row{value.Int(int64(o)), value.Float(rng.Float64() * 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nLines; i++ {
		ship := int64(testkit.Intn(rng, 1000))
		// receipt correlated with ship within corrWindow days.
		receipt := ship + int64(testkit.Intn(rng, int(corrWindow)))
		row := value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % nOrders)),
			value.Int(int64(testkit.Intn(rng, nParts))),
			value.Date(ship),
			value.Date(receipt),
			value.Float(float64(testkit.Intn(rng, 10000)) / 100),
		}
		if err := lineitem.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

func exactOpt(t *testing.T, db *storage.Database, ctx *engine.Context) *Optimizer {
	t.Helper()
	o, err := New(ctx, &exactEstimator{db: db})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	db, ctx := optDB(t, 200, 10)
	o := exactOpt(t, db, ctx)
	cases := []*Query{
		nil,
		{},
		{Tables: []string{"ghost"}},
		{Tables: []string{"lineitem", "lineitem"}},
		{Tables: []string{"orders", "part"}}, // disconnected
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("ghost_col = 1")},
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("ghost.l_ship = 1")},
		{Tables: []string{"lineitem", "orders"}, Pred: testkit.Expr("orders.nope = 1")},
	}
	for i, q := range cases {
		if _, err := o.Optimize(q); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSingleTablePicksScanVsIntersection(t *testing.T) {
	db, ctx := optDB(t, 20000, 40)
	o := exactOpt(t, db, ctx)
	// High selectivity: both date windows wide -> scan must win.
	wide := &Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 0 AND 900 AND l_receipt BETWEEN 0 AND 900"),
	}
	plan, err := o.Optimize(wide)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.Root.(*engine.SeqScan); !ok {
		t.Errorf("wide predicate chose %s", plan.Root.Describe())
	}
	// Low selectivity: narrow windows -> index plan must win.
	narrow := &Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 100 AND 104 AND l_receipt BETWEEN 500 AND 505"),
	}
	plan, err = o.Optimize(narrow)
	if err != nil {
		t.Fatal(err)
	}
	switch plan.Root.(type) {
	case *engine.IndexIntersect, *engine.IndexRangeScan:
	default:
		t.Errorf("narrow predicate chose %s", plan.Root.Describe())
	}
}

func TestEstimatedCostTracksActual(t *testing.T) {
	db, ctx := optDB(t, 10000, 40)
	o := exactOpt(t, db, ctx)
	queries := []*Query{
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_ship BETWEEN 100 AND 300")},
		{Tables: []string{"lineitem"}, Pred: testkit.Expr("l_ship BETWEEN 100 AND 104 AND l_receipt BETWEEN 100 AND 110")},
		{Tables: []string{"lineitem", "orders"}, Pred: testkit.Expr("l_price < 10")},
	}
	for i, q := range queries {
		plan, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		_, _, actual, err := engine.Run(ctx, plan.Root)
		if err != nil {
			t.Fatalf("query %d execute: %v", i, err)
		}
		// With an exact estimator the predicted cost should be within a
		// small factor of the measured cost (formulas approximate some
		// CPU terms).
		ratio := plan.EstCost / actual
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("query %d: est %g vs actual %g (ratio %g)\n%s", i, plan.EstCost, actual, ratio, plan.Explain())
		}
	}
}

func TestJoinPlanCorrectness(t *testing.T) {
	db, ctx := optDB(t, 4000, 40)
	o := exactOpt(t, db, ctx)
	q := &Query{
		Tables: []string{"lineitem", "orders", "part"},
		Pred:   testkit.Expr("p_size = 7 AND l_price < 50"),
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: count matching lineitems by direct expansion.
	truth, err := sample.ExactFraction(db, q.Tables, q.Pred)
	if err != nil {
		t.Fatal(err)
	}
	want := int(truth*float64(testkit.Table(db, "lineitem").NumRows()) + 0.5)
	if len(res.Rows) != want {
		t.Errorf("join plan returned %d rows, want %d\n%s", len(res.Rows), want, plan.Explain())
	}
	// The combined schema must expose all three tables' columns.
	schema, err := plan.Root.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []expr.ColumnRef{
		{Table: "lineitem", Column: "l_id"},
		{Table: "orders", Column: "o_total"},
		{Table: "part", Column: "p_size"},
	} {
		if _, err := schema.Resolve(col); err != nil {
			t.Errorf("output schema missing %s", col)
		}
	}
}

func TestJoinPlanChoosesINLAtLowSelectivity(t *testing.T) {
	db, ctx := optDB(t, 20000, 40)
	o := exactOpt(t, db, ctx)
	// A part predicate selecting (almost) nothing: indexed nested loops
	// from part into lineitem's FK index beats scanning the whole
	// lineitem table for the hash join. (At ~0.5% selectivity the random
	// fetches already cost more than the scan — the same risk/stability
	// trade as the single-table case — so the near-empty outer is the
	// regime where INL must win.)
	q := &Query{
		Tables: []string{"lineitem", "part"},
		Pred:   testkit.Expr("p_partkey = 11 AND p_size = 999"),
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "INLJoin") {
		t.Errorf("low-selectivity join chose:\n%s", plan.Explain())
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := sample.ExactFraction(db, q.Tables, q.Pred)
	want := int(truth*20000 + 0.5)
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestAggregationQuery(t *testing.T) {
	db, ctx := optDB(t, 2000, 40)
	o := exactOpt(t, db, ctx)
	q := &Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 0 AND 499"),
		Aggs: []engine.AggSpec{
			{Func: engine.Sum, Arg: expr.C("l_price"), As: "revenue"},
			{Func: engine.Count, As: "n"},
		},
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("agg rows = %d", len(res.Rows))
	}
	truth, _ := sample.ExactFraction(db, []string{"lineitem"}, q.Pred)
	wantN := int64(truth*float64(testkit.Table(db, "lineitem").NumRows()) + 0.5)
	if res.Rows[0][1].I != wantN {
		t.Errorf("COUNT = %d, want %d", res.Rows[0][1].I, wantN)
	}
}

func TestProjectionQuery(t *testing.T) {
	db, ctx := optDB(t, 500, 40)
	o := exactOpt(t, db, ctx)
	q := &Query{
		Tables:  []string{"lineitem"},
		Pred:    testkit.Expr("l_ship < 100"),
		Project: []expr.ColumnRef{{Table: "lineitem", Column: "l_id"}},
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schema.Fields) != 1 || res.Schema.Fields[0].Column != "l_id" {
		t.Errorf("projected schema = %v", res.Schema)
	}
	_ = db
}

func TestThresholdFlipsPlanChoice(t *testing.T) {
	// The paper's central behavior: near the crossover, a low confidence
	// threshold picks the risky index plan while a high threshold picks
	// the stable scan — from the same sample.
	db, ctx := optDB(t, 30000, 1000) // uncorrelated dates
	syns, err := sample.BuildAll(db, 500, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// A query whose true joint selectivity is a little below the
	// crossover: find windows where roughly 0.15% of rows qualify.
	pred := testkit.Expr("l_ship BETWEEN 0 AND 120 AND l_receipt BETWEEN 0 AND 120")
	truth, err := sample.ExactFraction(db, []string{"lineitem"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 || truth > 0.02 == false {
		// Just informational; the flip assertions below are what matter.
		t.Logf("true selectivity = %g", truth)
	}
	planFor := func(threshold core.ConfidenceThreshold) string {
		est, err := core.NewBayesEstimator(syns, threshold)
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(ctx, est)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := o.Optimize(&Query{Tables: []string{"lineitem"}, Pred: pred})
		if err != nil {
			t.Fatal(err)
		}
		return plan.Root.Describe()
	}
	low := planFor(0.05)
	high := planFor(0.99)
	if !strings.Contains(low, "IndexIntersect") && !strings.Contains(low, "IndexRangeScan") {
		t.Errorf("T=5%% chose %s, want an index plan", low)
	}
	if !strings.Contains(high, "SeqScan") {
		t.Errorf("T=99%% chose %s, want the sequential scan", high)
	}
}

func TestOptimizerPicksMinEstimatedCost(t *testing.T) {
	// Degenerate estimator that claims everything is empty: the index
	// plan should always be chosen (its estimated cost collapses).
	db, ctx := optDB(t, 5000, 40)
	zero := &core.MagicEstimator{Selectivity: 0, Catalog: db.Catalog,
		RowsFor: func(tab string) (int, bool) {
			if tt, ok := db.Table(tab); ok {
				return tt.NumRows(), true
			}
			return 0, false
		}}
	o, err := New(ctx, zero)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Optimize(&Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 0 AND 999 AND l_receipt BETWEEN 0 AND 999"),
	})
	if err != nil {
		t.Fatal(err)
	}
	switch plan.Root.(type) {
	case *engine.IndexIntersect, *engine.IndexRangeScan:
		// Either index plan is consistent with zero estimates; a single
		// range scan wins by paying one seek instead of two.
	default:
		t.Errorf("zero estimator chose %s", plan.Root.Describe())
	}
	// And an all-ones estimator must choose the scan.
	one := &core.MagicEstimator{Selectivity: 1, Catalog: db.Catalog, RowsFor: zero.RowsFor}
	o2, _ := New(ctx, one)
	plan2, err := o2.Optimize(&Query{
		Tables: []string{"lineitem"},
		Pred:   testkit.Expr("l_ship BETWEEN 0 AND 999 AND l_receipt BETWEEN 0 AND 999"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan2.Root.(*engine.SeqScan); !ok {
		t.Errorf("ones estimator chose %s", plan2.Root.Describe())
	}
}

func TestIntRangeFromConjunct(t *testing.T) {
	cases := []struct {
		in     string
		ok     bool
		lo, hi int64
	}{
		{"a BETWEEN 3 AND 9", true, 3, 9},
		{"a = 5", true, 5, 5},
		{"a < 5", true, 0, 4},
		{"a <= 5", true, 0, 5},
		{"a > 5", true, 6, 0},
		{"a >= 5", true, 5, 0},
		{"5 > a", true, 0, 4},
		{"5 <= a", true, 5, 0},
		{"a <> 5", false, 0, 0},
		{"a + 1 < 5", false, 0, 0},
		{"a < 5.5", false, 0, 0},
		{"a = 5.0", true, 5, 5},
		{"a BETWEEN b AND 9", false, 0, 0},
		{"a CONTAINS 'x'", false, 0, 0},
	}
	for _, c := range cases {
		_, lo, hi, ok := intRangeFromConjunct(testkit.Expr(c.in))
		if ok != c.ok {
			t.Errorf("%q: ok = %v", c.in, ok)
			continue
		}
		if !ok {
			continue
		}
		if c.lo != 0 && lo != c.lo {
			t.Errorf("%q: lo = %d, want %d", c.in, lo, c.lo)
		}
		if c.hi != 0 && hi != c.hi {
			t.Errorf("%q: hi = %d, want %d", c.in, hi, c.hi)
		}
	}
}

func TestConnectedSubsets(t *testing.T) {
	db, ctx := optDB(t, 100, 40)
	o := exactOpt(t, db, ctx)
	a, err := analyze(db.Catalog, &Query{Tables: []string{"lineitem", "orders", "part"}})
	if err != nil {
		t.Fatal(err)
	}
	// lineitem=0, orders=1, part=2. orders+part is disconnected.
	if a.connected(0b110) {
		t.Error("orders+part reported connected")
	}
	if !a.connected(0b011) || !a.connected(0b101) || !a.connected(0b111) {
		t.Error("connected subsets reported disconnected")
	}
	if a.connected(0) {
		t.Error("empty mask connected")
	}
	_ = o
}

func TestCrossTableConjunctGetsFiltered(t *testing.T) {
	db, ctx := optDB(t, 3000, 40)
	o := exactOpt(t, db, ctx)
	// o_total > l_price is a non-join cross-table predicate: it must be
	// enforced by a Filter above the join.
	q := &Query{
		Tables: []string{"lineitem", "orders"},
		Pred:   testkit.Expr("o_total > l_price AND l_ship < 500"),
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sample.ExactFraction(db, q.Tables, q.Pred)
	if err != nil {
		t.Fatal(err)
	}
	want := int(truth*float64(testkit.Table(db, "lineitem").NumRows()) + 0.5)
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d\n%s", len(res.Rows), want, plan.Explain())
	}
}

func TestTooManyTables(t *testing.T) {
	db, ctx := optDB(t, 10, 5)
	o := exactOpt(t, db, ctx)
	tables := make([]string, 17)
	for i := range tables {
		tables[i] = "t"
	}
	if _, err := o.Optimize(&Query{Tables: tables}); err == nil {
		t.Error("17 tables accepted")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db, ctx := optDB(t, 2000, 40)
	o := exactOpt(t, db, ctx)
	q := &Query{
		Tables:  []string{"lineitem"},
		Pred:    testkit.Expr("l_ship < 500"),
		OrderBy: []engine.SortKey{{Col: expr.ColumnRef{Table: "lineitem", Column: "l_price"}, Desc: true}},
		Limit:   10,
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstRows > 10 {
		t.Errorf("EstRows = %g, want <= limit", plan.EstRows)
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prIdx, _ := res.Schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_price"})
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][prIdx].F > res.Rows[i-1][prIdx].F {
			t.Fatal("descending order violated")
		}
	}
	if !strings.Contains(plan.Explain(), "Sort") || !strings.Contains(plan.Explain(), "Limit") {
		t.Errorf("plan missing sort/limit:\n%s", plan.Explain())
	}
}

func TestOrderBySkippedWhenAlreadyOrdered(t *testing.T) {
	db, ctx := optDB(t, 2000, 40)
	o := exactOpt(t, db, ctx)
	// lineitem is declared Ordered by l_id; a bare ascending ORDER BY on
	// it over a plan preserving heap order needs no sort.
	q := &Query{
		Tables:  []string{"lineitem"},
		Pred:    testkit.Expr("l_price < 50"),
		OrderBy: []engine.SortKey{{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}}},
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "Sort") {
		t.Errorf("unnecessary sort:\n%s", plan.Explain())
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	idIdx, _ := res.Schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_id"})
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][idIdx].I < res.Rows[i-1][idIdx].I {
			t.Fatal("order violated without sort")
		}
	}
}

func TestGroupByCardinalityFeedsEstimate(t *testing.T) {
	db, ctx := optDB(t, 5000, 40)
	syns, err := sample.BuildAll(db, 500, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewBayesEstimator(syns, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Tables:  []string{"lineitem"},
		GroupBy: []expr.ColumnRef{{Table: "lineitem", Column: "l_partkey"}},
		Aggs:    []engine.AggSpec{{Func: engine.Count, As: "n"}},
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// l_partkey has 200 distinct values; the GEE estimate should land in
	// the right order of magnitude, far below the 5000 input rows.
	if plan.EstRows < 50 || plan.EstRows > 1000 {
		t.Errorf("group estimate = %g, want near 200", plan.EstRows)
	}
	res, _, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Errorf("actual groups = %d", len(res.Rows))
	}
}

func TestGrandTotalEstimatesOneRow(t *testing.T) {
	db, ctx := optDB(t, 500, 40)
	o := exactOpt(t, db, ctx)
	plan, err := o.Optimize(&Query{
		Tables: []string{"lineitem"},
		Aggs:   []engine.AggSpec{{Func: engine.Count, As: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstRows != 1 {
		t.Errorf("grand total EstRows = %g", plan.EstRows)
	}
	_ = db
}
