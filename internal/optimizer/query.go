// Package optimizer implements a cost-based query optimizer for
// select-project-join queries over foreign-key joins, the optimizer
// architecture the paper's estimation procedure plugs into.
//
// Plan enumeration (access-path selection, dynamic programming over join
// orders, a semijoin-based star strategy) and cost estimation are entirely
// conventional; every data-dependent quantity flows through a single
// core.Estimator, so swapping the robust sampling-based estimator for the
// histogram baseline changes nothing but the cardinality answers — the
// paper's "changes are isolated within the cardinality estimation module"
// claim (Section 3.1.1).
package optimizer

import (
	"fmt"
	"math"

	"robustqo/internal/catalog"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
)

// Query is a logical SPJ query: the named tables joined along their
// foreign keys, filtered by Pred, optionally grouped/aggregated, ordered,
// limited, and projected. Evaluation order follows SQL: joins and Pred,
// then GroupBy/Aggs, then OrderBy, then Limit, then Project (so OrderBy
// may reference columns the projection drops).
type Query struct {
	Tables  []string
	Pred    expr.Expr // conjunction of non-join predicates; may be nil
	GroupBy []expr.ColumnRef
	Aggs    []engine.AggSpec
	OrderBy []engine.SortKey
	Limit   int              // 0 means no limit
	Project []expr.ColumnRef // ignored when Aggs is non-empty
}

// joinEdge is one foreign-key join between two query tables: child.FKCol
// references parent's primary key.
type joinEdge struct {
	child  int // table index within Query.Tables
	parent int
	fkCol  string // column of child
	pkCol  string // primary key of parent
}

// conjunct is one top-level AND term of the predicate together with the
// set of query tables it references (as a bitmask).
type conjunct struct {
	pred expr.Expr
	mask uint32
}

// analysis is the prepared form of a query.
type analysis struct {
	q         *Query
	tables    []string
	edges     []joinEdge
	conjuncts []conjunct
}

// analyze validates the query against the catalog and decomposes the
// predicate.
func analyze(cat *catalog.Catalog, q *Query) (*analysis, error) {
	if q == nil || len(q.Tables) == 0 {
		return nil, fmt.Errorf("optimizer: query must name at least one table")
	}
	if len(q.Tables) > 16 {
		return nil, fmt.Errorf("optimizer: %d tables exceeds the supported maximum of 16", len(q.Tables))
	}
	seen := make(map[string]int, len(q.Tables))
	for i, t := range q.Tables {
		if _, ok := cat.Table(t); !ok {
			return nil, fmt.Errorf("optimizer: unknown table %q", t)
		}
		if _, dup := seen[t]; dup {
			return nil, fmt.Errorf("optimizer: table %q listed twice (self joins are unsupported)", t)
		}
		seen[t] = i
	}
	a := &analysis{q: q, tables: q.Tables}
	for i, t := range q.Tables {
		s, _ := cat.Table(t)
		for _, fk := range s.Foreign {
			j, ok := seen[fk.RefTable]
			if !ok {
				continue
			}
			parent, _ := cat.Table(fk.RefTable)
			a.edges = append(a.edges, joinEdge{child: i, parent: j, fkCol: fk.Column, pkCol: parent.PrimaryKey})
		}
	}
	if len(q.Tables) > 1 {
		if _, err := cat.RootOf(q.Tables); err != nil {
			return nil, err
		}
		if !a.connected(uint32(1<<len(q.Tables)) - 1) {
			return nil, fmt.Errorf("optimizer: tables %v are not connected by foreign keys", q.Tables)
		}
	}
	for _, term := range expr.SplitConjuncts(q.Pred) {
		mask, err := a.maskOf(cat, term)
		if err != nil {
			return nil, err
		}
		a.conjuncts = append(a.conjuncts, conjunct{pred: term, mask: mask})
	}
	return a, nil
}

// maskOf computes which query tables a predicate term references.
func (a *analysis) maskOf(cat *catalog.Catalog, term expr.Expr) (uint32, error) {
	var mask uint32
	for _, ref := range expr.Columns(term) {
		idx := -1
		if ref.Table != "" {
			for i, t := range a.tables {
				if t == ref.Table {
					idx = i
					break
				}
			}
			if idx < 0 {
				return 0, fmt.Errorf("optimizer: predicate references table %q not in query", ref.Table)
			}
			s, _ := cat.Table(ref.Table)
			if s.ColumnIndex(ref.Column) < 0 {
				return 0, fmt.Errorf("optimizer: table %q has no column %q", ref.Table, ref.Column)
			}
		} else {
			matches := 0
			for i, t := range a.tables {
				s, _ := cat.Table(t)
				if s.ColumnIndex(ref.Column) >= 0 {
					idx = i
					matches++
				}
			}
			if matches == 0 {
				return 0, fmt.Errorf("optimizer: unknown column %q", ref.Column)
			}
			if matches > 1 {
				return 0, fmt.Errorf("optimizer: ambiguous column %q; qualify it with a table name", ref.Column)
			}
		}
		mask |= 1 << uint(idx)
	}
	return mask, nil
}

// predFor returns the conjunction of conjuncts fully contained in mask.
func (a *analysis) predFor(mask uint32) expr.Expr {
	var terms []expr.Expr
	for _, c := range a.conjuncts {
		if c.mask != 0 && c.mask&^mask == 0 {
			terms = append(terms, c.pred)
		}
	}
	return expr.Conj(terms...)
}

// predOnly returns the conjunction of conjuncts whose mask exactly covers
// only the single table t (used for access paths).
func (a *analysis) predOnly(t int) expr.Expr {
	return a.predFor(1 << uint(t))
}

// tablesOf lists the table names in a mask.
func (a *analysis) tablesOf(mask uint32) []string {
	var out []string
	for i, t := range a.tables {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, t)
		}
	}
	return out
}

// connected reports whether the tables in mask form a connected subgraph
// of the join graph.
func (a *analysis) connected(mask uint32) bool {
	if mask == 0 {
		return false
	}
	start := uint32(mask & -mask) // lowest set bit
	reached := start
	for {
		prev := reached
		for _, e := range a.edges {
			cb := uint32(1) << uint(e.child)
			pb := uint32(1) << uint(e.parent)
			if cb&mask == 0 || pb&mask == 0 {
				continue
			}
			if reached&cb != 0 || reached&pb != 0 {
				reached |= cb | pb
			}
		}
		if reached == prev {
			break
		}
	}
	return reached&mask == mask
}

// popcount returns the number of set bits.
func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// intRangeFromConjunct recognizes sargable single-column integer range
// conditions: col BETWEEN lit AND lit, or col cmp lit (and the flipped
// orientation). It returns the equivalent closed integer interval.
func intRangeFromConjunct(term expr.Expr) (col expr.ColumnRef, lo, hi int64, ok bool) {
	const (
		minKey = math.MinInt64 / 4
		maxKey = math.MaxInt64 / 4
	)
	intLit := func(e expr.Expr) (int64, bool) {
		l, isLit := e.(expr.Lit)
		if !isLit || !l.Val.Numeric() {
			return 0, false
		}
		if l.Val.Kind == catalog.Float {
			// Only exactly integral floats convert losslessly.
			f := l.Val.F
			if f != math.Trunc(f) || math.Abs(f) > float64(maxKey) {
				return 0, false
			}
			return int64(f), true
		}
		return l.Val.I, true
	}
	switch n := term.(type) {
	case expr.Between:
		c, isCol := n.E.(expr.Col)
		if !isCol {
			return col, 0, 0, false
		}
		l, okL := intLit(n.Lo)
		h, okH := intLit(n.Hi)
		if !okL || !okH {
			return col, 0, 0, false
		}
		return c.Ref, l, h, true
	case expr.Cmp:
		c, isCol := n.L.(expr.Col)
		lit, okLit := intLit(n.R)
		op := n.Op
		if !isCol || !okLit {
			if c2, ok2 := n.R.(expr.Col); ok2 {
				if v2, okv := intLit(n.L); okv {
					c, lit, op = c2, v2, flip(n.Op)
					isCol, okLit = true, true
				}
			}
		}
		if !isCol || !okLit {
			return col, 0, 0, false
		}
		switch op {
		case expr.EQ:
			return c.Ref, lit, lit, true
		case expr.LT:
			return c.Ref, minKey, lit - 1, true
		case expr.LE:
			return c.Ref, minKey, lit, true
		case expr.GT:
			return c.Ref, lit + 1, maxKey, true
		case expr.GE:
			return c.Ref, lit, maxKey, true
		default:
			return col, 0, 0, false
		}
	}
	return col, 0, 0, false
}

func flip(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}
