package optimizer

import (
	"fmt"
	"math"

	"robustqo/internal/engine"
	"robustqo/internal/storage"
)

// Partition pruning is a planner pre-pass, not a plan rewrite: before any
// access path is costed, the single-table conjuncts on each partitioned
// table's partition key are intersected into one closed interval and
// resolved to the set of shards that can hold matching rows. Everything
// downstream consumes the result — the estimator observes only the
// surviving shards' synopses (pruning happens before the posterior's
// T-quantile is taken, so the pruned estimate is never looser than the
// unpruned one), scan costs charge only the surviving shards' pages, and
// the scan nodes carry the shard list into execution.

// tableParts is the pruning verdict for one partitioned query table.
type tableParts struct {
	parts  []int // surviving shards, ascending; may be empty (contradiction)
	total  int   // the table's shard count
	strict bool  // parts is a strict subset of the shards
}

// computePruning fills p.parts for every partitioned query table. Tables
// without a usable constraint on their partition key keep an explicit
// all-shards entry, so estimates and EXPLAIN ANALYZE still report the
// shard arithmetic ("partitions: n/n") even when nothing was eliminated.
func (p *planner) computePruning() {
	for i, name := range p.a.tables {
		t, ok := p.opt.Ctx.DB.Table(name)
		if !ok || t.Partitions() <= 1 {
			continue
		}
		spec := t.PartitionSpec()
		const (
			minKey = math.MinInt64 / 4
			maxKey = math.MaxInt64 / 4
		)
		lo, hi := int64(minKey), int64(maxKey)
		found := false
		bit := uint32(1) << uint(i)
		for _, c := range p.a.conjuncts {
			if c.mask != bit {
				continue
			}
			ref, l, h, ok := intRangeFromConjunct(c.pred)
			if !ok || ref.Column != spec.Column {
				continue
			}
			if ref.Table != "" && ref.Table != name {
				continue
			}
			if l > lo {
				lo = l
			}
			if h < hi {
				hi = h
			}
			found = true
		}
		tp := &tableParts{total: t.Partitions()}
		shards, pruned := []int(nil), false
		if found {
			shards, pruned = t.PrunePartitions(spec.Column, lo, hi)
		}
		if pruned {
			tp.parts = shards
			tp.strict = len(shards) < tp.total
		} else {
			tp.parts = make([]int, tp.total)
			for s := range tp.parts {
				tp.parts[s] = s
			}
		}
		if p.parts == nil {
			p.parts = make(map[int]*tableParts)
		}
		p.parts[i] = tp
	}
}

// partsForMask returns the surviving-shard list the estimator should
// observe for the masked subexpression, or nil when no partitioned table
// roots it. Synopses are rooted at the FK root, so only the root table's
// pruning applies; core.Observe falls back to the global synopsis when
// per-shard synopses are missing, which keeps a nil-tolerant contract.
func (p *planner) partsForMask(mask uint32) []int {
	if len(p.parts) == 0 {
		return nil
	}
	root, err := p.opt.Ctx.DB.Catalog.RootOf(p.a.tablesOf(mask))
	if err != nil {
		return nil
	}
	for i, name := range p.a.tables {
		if name == root {
			if tp, ok := p.parts[i]; ok {
				return tp.parts
			}
			return nil
		}
	}
	return nil
}

// prunedRowsPages returns the physical rows and pages a scan of table i
// touches after partition pruning — the whole table when no pruning
// applies. Pages use the same first-tuple-in-window charge the engine
// applies per shard span, so the cost model prices exactly what the
// executed scan will be charged.
func (p *planner) prunedRowsPages(i int) (rows, pages float64, err error) {
	tp := p.parts[i]
	if tp == nil || !tp.strict {
		return p.tableRowsPages(i)
	}
	t, ok := p.opt.Ctx.DB.Table(p.a.tables[i])
	if !ok {
		return 0, 0, fmt.Errorf("optimizer: unknown table %q", p.a.tables[i])
	}
	const per = storage.TuplesPerPage
	for _, s := range tp.parts {
		lo, hi := t.PartitionSpan(s)
		rows += float64(hi - lo)
		pages += float64((hi+per-1)/per - (lo+per-1)/per)
	}
	return rows, pages, nil
}

// scanParts returns the shard list to stamp on a scan node of table i:
// non-nil only when pruning eliminated at least one shard, so unpruned
// plans keep their exact pre-partitioning shape.
func (p *planner) scanParts(i int) []int {
	if tp := p.parts[i]; tp != nil && tp.strict {
		return tp.parts
	}
	return nil
}

// recordScan is record plus the partition arithmetic for scans of
// partitioned tables ("partitions: k/n" in EXPLAIN ANALYZE) and, for
// encoded sequential scans, the zone-map arithmetic ("segments: k/n
// skipped") with the chosen materialization strategy.
func (p *planner) recordScan(n engine.Node, rows float64, i int) {
	s := p.snap
	s.Rows = rows
	s.Fingerprint = p.fingerprintFor(uint32(1) << uint(i))
	if tp := p.parts[i]; tp != nil {
		s.PartsScanned = len(tp.parts)
		s.PartsTotal = tp.total
	}
	if seq, ok := n.(*engine.SeqScan); ok && seq.Mode != engine.ScanRows {
		if tz := p.zones[i]; tz != nil {
			s.SegsSkipped = tz.skipped
			s.SegsTotal = tz.total
		}
		s.Strategy = seq.Mode.String()
	}
	p.estimates[n] = s
}
