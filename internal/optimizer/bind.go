package optimizer

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"robustqo/internal/catalog"
	"robustqo/internal/colstore"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
)

// This file is the optimizer's interface to the plan cache
// (internal/plancache): everything a cached plan needs in order to be
// re-bound to new parameter values without re-running plan enumeration.
// AnalyzeBinding re-derives the literal-dependent planning inputs —
// per-conjunct estimator requests, partition-pruning verdicts, and the
// merged sargable index ranges — for a freshly bound query, and
// Plan.Rebound transplants a plan's estimate snapshots onto the re-bound
// node tree. Both run the same code paths Optimize itself uses
// (analyze, computePruning, sargableRanges), so the cache can never
// drift from what a cold optimization would have derived.

// sarg is one merged sargable range: the key range plus the indices
// (into analysis.conjuncts) of the conjuncts it consumed.
type sarg struct {
	rng      engine.KeyRange
	consumed []int
}

// sargableRanges merges the sargable single-table conjuncts of table i
// into one key range per indexed column, in first-appearance column
// order — the shared derivation behind both access-path enumeration and
// plan re-binding.
func sargableRanges(a *analysis, schema *catalog.TableSchema, i int) (map[string]*sarg, []string) {
	bit := uint32(1) << uint(i)
	tName := a.tables[i]
	byColumn := make(map[string]*sarg)
	var colOrder []string
	for ci, c := range a.conjuncts {
		if c.mask != bit {
			continue
		}
		ref, lo, hi, ok := intRangeFromConjunct(c.pred)
		if !ok {
			continue
		}
		if ref.Table != "" && ref.Table != tName {
			continue
		}
		if _, hasIx := schema.IndexOn(ref.Column); !hasIx {
			continue
		}
		s, exists := byColumn[ref.Column]
		if !exists {
			s = &sarg{rng: engine.KeyRange{Column: ref.Column, Lo: lo, Hi: hi}}
			byColumn[ref.Column] = s
			colOrder = append(colOrder, ref.Column)
		} else {
			if lo > s.rng.Lo {
				s.rng.Lo = lo
			}
			if hi < s.rng.Hi {
				s.rng.Hi = hi
			}
		}
		s.consumed = append(s.consumed, ci)
	}
	return byColumn, colOrder
}

// BoundConjunct is one top-level AND term of a query's predicate with
// the estimator request it marginally corresponds to: the tables of its
// reference mask and the surviving shards of the pruned root. The plan
// cache records a credible interval per conjunct at plan time and
// re-checks the conjuncts whose parameters changed at re-bind time.
type BoundConjunct struct {
	Pred   expr.Expr
	Tables []string // tables the conjunct references; nil for table-free terms
	// Partitions is the shard list the estimator should observe for
	// this conjunct's root relation (nil = all shards / unpartitioned),
	// matching what enumeration passes in core.Request.Partitions.
	Partitions []int
}

// BindInfo captures every literal-dependent planning input of a bound
// query, derived without a single estimator call.
type BindInfo struct {
	// Conjuncts holds the top-level AND terms of the predicate in
	// expr.SplitConjuncts order — the same order analyze assigns, so a
	// template's conjunct positions line up across re-bindings.
	Conjuncts []BoundConjunct
	// ScanParts is the per-table shard list a scan node would be
	// stamped with (present only when pruning is strict), keyed by
	// table name.
	ScanParts map[string][]int
	// PartsKey canonically encodes the full pruning verdict — per
	// partitioned table, its surviving shard list out of its total. Two
	// bindings with equal PartsKey prune identically.
	PartsKey string
	// Ranges holds the merged sargable key range per table and indexed
	// column — the values IndexRangeScan/IndexIntersect nodes embed.
	Ranges map[string]map[string]engine.KeyRange
}

// AnalyzeBinding derives the BindInfo of a query against the context's
// catalog and partition layout. It runs the optimizer's own analysis and
// pruning pre-passes but stops before anything data-dependent: no
// estimator calls, no plan enumeration. Cost is linear in the predicate
// size — cheap enough for every plan-cache re-bind.
func AnalyzeBinding(ctx *engine.Context, q *Query) (*BindInfo, error) {
	if ctx == nil {
		return nil, fmt.Errorf("optimizer: AnalyzeBinding needs an execution context")
	}
	a, err := analyze(ctx.DB.Catalog, q)
	if err != nil {
		return nil, err
	}
	p := &planner{opt: &Optimizer{Ctx: ctx}, a: a}
	p.computePruning()

	info := &BindInfo{}
	for _, c := range a.conjuncts {
		bc := BoundConjunct{Pred: c.pred}
		if c.mask != 0 {
			bc.Tables = a.tablesOf(c.mask)
			bc.Partitions = p.partsForMask(c.mask)
		}
		info.Conjuncts = append(info.Conjuncts, bc)
	}

	var partsKey strings.Builder
	for i, name := range a.tables {
		schema, ok := ctx.DB.Catalog.Table(name)
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown table %q", name)
		}
		if tp := p.parts[i]; tp != nil {
			partsKey.WriteString(name)
			partsKey.WriteByte('=')
			for _, s := range tp.parts {
				partsKey.WriteString(strconv.Itoa(s))
				partsKey.WriteByte(',')
			}
			partsKey.WriteByte('/')
			partsKey.WriteString(strconv.Itoa(tp.total))
			partsKey.WriteByte(';')
			if sp := p.scanParts(i); sp != nil {
				if info.ScanParts == nil {
					info.ScanParts = make(map[string][]int)
				}
				info.ScanParts[name] = sp
			}
		}
		byColumn, colOrder := sargableRanges(a, schema, i)
		if len(colOrder) == 0 {
			continue
		}
		if info.Ranges == nil {
			info.Ranges = make(map[string]map[string]engine.KeyRange)
		}
		cols := make(map[string]engine.KeyRange, len(colOrder))
		for _, col := range colOrder {
			cols[col] = byColumn[col].rng
		}
		info.Ranges[name] = cols
	}
	info.PartsKey = partsKey.String()
	return info, nil
}

// LayoutKey canonically encodes a database's partition layout: each
// partitioned table's partitioning column, kind, shard count, and range
// bounds, sorted by table name. The plan cache folds it into every
// cache key so re-partitioning the data can never serve a plan whose
// embedded shard lists describe the old layout.
func LayoutKey(ctx *engine.Context) string {
	if ctx == nil || ctx.DB == nil {
		return ""
	}
	names := ctx.DB.Catalog.TableNames()
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		t, ok := ctx.DB.Table(name)
		if !ok || t.Partitions() <= 1 {
			continue
		}
		spec := t.PartitionSpec()
		if spec == nil {
			continue
		}
		b.WriteString(name)
		b.WriteByte(':')
		b.WriteString(spec.Column)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(spec.Kind)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(t.Partitions()))
		for _, bound := range spec.Bounds {
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(bound, 10))
		}
		b.WriteByte(';')
	}
	// Columnar encodings are part of the physical layout: plans carry a
	// per-scan materialization mode chosen against a specific segment
	// image, so the format version and the set's build generation fold
	// into the key. Rebuilding encodings bumps the generation, which
	// shifts every cached plan's key — stale segment layouts miss instead
	// of being served.
	if ctx.Encodings != nil {
		b.WriteString("enc:v")
		b.WriteString(strconv.Itoa(colstore.FormatVersion))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(ctx.Encodings.Generation(), 10))
		b.WriteByte(';')
	}
	return b.String()
}

// Rebound returns a copy of the plan re-rooted at root, with the
// planning-time estimate snapshots transplanted through remap (original
// node → re-bound node, as returned by engine.Rebind). The cost,
// cardinality, and confidence figures are carried over unchanged: a
// re-bind is only performed when every changed parameter's point
// estimate stayed inside the credible interval the plan was optimized
// under, so the old figures remain the plan's honest belief.
func (p *Plan) Rebound(root engine.Node, remap map[engine.Node]engine.Node) *Plan {
	cp := *p
	cp.Root = root
	cp.estimates = make(map[engine.Node]obs.EstimateSnapshot, len(p.estimates))
	for old, snap := range p.estimates {
		if nn, ok := remap[old]; ok {
			cp.estimates[nn] = snap
		}
	}
	return &cp
}
