package optimizer

import (
	"robustqo/internal/colstore"
	"robustqo/internal/expr"
)

// Zone-map scan strategy is a planner pre-pass layered on partition
// pruning: for each query table with a fresh columnar encoding, the
// pushable prefix of its single-table predicate is compiled into encoded
// probes and tested against every segment zone map in the surviving
// shards. The pass yields three things downstream consumers share:
//
//   - an exact selectivity upper bound (the unskippable row fraction)
//     that rides the estimator request as MaxSelectivity, tightening the
//     posterior before its T-quantile is taken — the same principled
//     move as dropping pruned shards' samples;
//   - the eager-vs-late materialization choice per sequential scan,
//     driven by the posterior selectivity and the skip evidence;
//   - the "segments: k/n skipped" arithmetic EXPLAIN ANALYZE reports.

// lateMaterializationThreshold is the estimated-selectivity knee below
// which late materialization wins: few enough survivors that probing
// encoded data and materializing only survivors beats full decode.
const lateMaterializationThreshold = 0.25

// tableZones is the zone-map verdict for one query table whose encoding
// is present and fresh.
type tableZones struct {
	skipped  int     // segments provably empty under the pushed bounds
	total    int     // segments in the surviving shards
	maxSel   float64 // unskippable row fraction of the pruned physical rows
	pushable bool    // a pushable predicate prefix exists
}

// computeScanStrategies fills p.zones after computePruning; tables
// without a fresh encoding are simply absent and keep the row path.
func (p *planner) computeScanStrategies() {
	encs := p.opt.Ctx.Encodings
	if encs == nil {
		return
	}
	for i, name := range p.a.tables {
		t, ok := p.opt.Ctx.DB.Table(name)
		if !ok {
			continue
		}
		enc, ok := encs.For(name)
		if !ok || enc.Rows() != t.NumRows() {
			continue // stale encoding: execution would fall back anyway
		}
		tz := &tableZones{maxSel: 1}
		bounds, _ := expr.SplitPushdown(p.a.predOnly(i), expr.SchemaForTable(t.Schema()))
		probes := make([]colstore.Probe, 0, len(bounds))
		for _, b := range bounds {
			pr, ok := enc.CompileProbe(colstore.Pred{
				Col: b.Col, Lo: b.Lo, Hi: b.Hi,
				StrLo: b.StrLo, StrHi: b.StrHi,
				HasStrLo: b.HasStrLo, HasStrHi: b.HasStrHi,
				IsStr: b.IsStr,
			})
			if !ok {
				probes = probes[:0]
				break
			}
			probes = append(probes, pr)
		}
		tz.pushable = len(probes) > 0
		// Shards surviving partition pruning; nil means all of them.
		var inShard []bool
		if tp := p.parts[i]; tp != nil && tp.strict {
			inShard = make([]bool, t.Partitions())
			for _, s := range tp.parts {
				inShard[s] = true
			}
		}
		physRows, liveRows := 0, 0
		for si := 0; si < enc.NumSegments(); si++ {
			seg := enc.Segment(si)
			if inShard != nil && (seg.Shard >= len(inShard) || !inShard[seg.Shard]) {
				continue
			}
			tz.total++
			physRows += seg.Rows()
			skip := false
			for pi := range probes {
				if probes[pi].SkipSegment(si) {
					skip = true
					break
				}
			}
			if skip {
				tz.skipped++
			} else {
				liveRows += seg.Rows()
			}
		}
		if physRows > 0 && tz.skipped > 0 {
			tz.maxSel = float64(liveRows) / float64(physRows)
			if tz.maxSel <= 0 {
				// Every segment skipped: keep the bound positive so the
				// conditioned posterior stays proper.
				tz.maxSel = 1e-9
			}
		}
		if p.zones == nil {
			p.zones = make(map[int]*tableZones)
		}
		p.zones[i] = tz
	}
}

// maxSelForMask returns the zone-map selectivity bound the estimator
// should condition on for the masked subexpression: the root table's
// unskippable fraction, or 0 (no bound) when zone maps eliminated
// nothing. Like partsForMask, only the FK root's evidence applies — the
// synopsis population is rooted there — and the bound is fixed per root
// per query, so estOf's cache key needs no extension.
func (p *planner) maxSelForMask(mask uint32) float64 {
	if len(p.zones) == 0 {
		return 0
	}
	root, err := p.opt.Ctx.DB.Catalog.RootOf(p.a.tablesOf(mask))
	if err != nil {
		return 0
	}
	for i, name := range p.a.tables {
		if name == root {
			if tz, ok := p.zones[i]; ok && tz.skipped > 0 && tz.maxSel < 1 {
				return tz.maxSel
			}
			return 0
		}
	}
	return 0
}

// scanMode picks the sequential scan's materialization strategy for
// table i. selFrac is the estimated fraction of the scanned physical
// rows the full predicate keeps.
func (p *planner) scanMode(i int, selFrac float64) ScanModeChoice {
	tz := p.zones[i]
	if tz == nil {
		return ScanModeChoice{}
	}
	c := ScanModeChoice{Encoded: true, SegsSkipped: tz.skipped, SegsTotal: tz.total}
	if tz.pushable && (selFrac <= lateMaterializationThreshold || tz.skipped > 0) {
		c.Late = true
	}
	return c
}

// ScanModeChoice is the zone pass's per-scan verdict, consumed when the
// SeqScan candidate is built and recorded.
type ScanModeChoice struct {
	Encoded     bool
	Late        bool
	SegsSkipped int
	SegsTotal   int
}
