package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// Predicate fingerprints key the cardinality feedback ledger
// (internal/obs/ledger): two executions whose estimates should have come
// out the same must land on the same ledger entry, while shapes the
// estimator treats differently must not collide. The fingerprint is
// therefore the normalized table set plus the normalized shape of every
// conjunct applicable to that table set, with literals VALUE-BINNED
// rather than kept verbatim — "l_quantity < 30" and "l_quantity < 25"
// fall in the same magnitude bin and share feedback, while
// "l_quantity < 3000" does not. The grammar (also in DESIGN.md §12):
//
//	fingerprint = tables [ "|" conjunct { ";" conjunct } ]
//	tables      = name { "," name }          (sorted)
//	conjunct    = normalized shape, conjuncts sorted lexicographically
//	literal     = bin tag, not the value:
//	              int/date  b<len>   sign prefix "-", len = bit length of |v|
//	              float     f<exp>   sign prefix "-", exp = binary exponent
//	              string    s<len>   len = bit length of byte length
//
// Binning by bit length / binary exponent makes bins exponentially wide:
// selectivities within a bin differ by at most ~2x on uniform data, which
// is well inside the drift the ledger exists to surface, while the number
// of distinct bins per column stays O(64) so the bounded ledger cannot be
// flooded by a parameter sweep.

// binValue renders a literal's bin tag.
func binValue(v value.Value) string {
	switch v.Kind {
	case catalog.Int, catalog.Date:
		return binInt(v.I)
	case catalog.Float:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return "f?"
		}
		if v.F == 0 {
			return "f0"
		}
		tag := fmt.Sprintf("f%d", math.Ilogb(v.F))
		if v.F < 0 {
			return "-" + tag
		}
		return tag
	case catalog.String:
		return fmt.Sprintf("s%d", bits.Len(uint(len(v.S))))
	default:
		return "?"
	}
}

func binInt(v int64) string {
	if v == 0 {
		return "b0"
	}
	if v < 0 {
		return fmt.Sprintf("-b%d", bits.Len64(uint64(-v)))
	}
	return fmt.Sprintf("b%d", bits.Len64(uint64(v)))
}

// fingerprintExpr normalizes one expression subtree to its shape string.
func fingerprintExpr(e expr.Expr) string {
	switch n := e.(type) {
	case expr.Col:
		return n.Ref.String()
	case expr.Lit:
		return binValue(n.Val)
	case expr.Cmp:
		return fingerprintExpr(n.L) + n.Op.String() + fingerprintExpr(n.R)
	case expr.Between:
		return fingerprintExpr(n.E) + " between " + fingerprintExpr(n.Lo) + ".." + fingerprintExpr(n.Hi)
	case expr.And:
		return "(" + joinSortedShapes(n.Terms, "&") + ")"
	case expr.Or:
		return "(" + joinSortedShapes(n.Terms, "+") + ")"
	case expr.Not:
		return "!" + fingerprintExpr(n.E)
	case expr.Arith:
		return "(" + fingerprintExpr(n.L) + n.Op.String() + fingerprintExpr(n.R) + ")"
	case expr.Contains:
		return fingerprintExpr(n.E) + "~s" + fmt.Sprint(bits.Len(uint(len(n.Substr))))
	case expr.In:
		// The membership list is binned by size, not enumerated: IN lists
		// differing only in which keys they name share an entry.
		return fingerprintExpr(n.E) + " in#" + binInt(int64(len(n.Vals)))
	default:
		// Unknown node kinds still get a stable, collision-free tag.
		return fmt.Sprintf("<%T>", e)
	}
}

// joinSortedShapes normalizes commutative connectives: term order in the
// source text must not split ledger entries.
func joinSortedShapes(terms []expr.Expr, sep string) string {
	shapes := make([]string, len(terms))
	for i, t := range terms {
		shapes[i] = fingerprintExpr(t)
	}
	sort.Strings(shapes)
	return strings.Join(shapes, sep)
}

// fingerprintFor returns the ledger fingerprint of the masked
// subexpression under every conjunct applicable to it (the same conjunct
// set predFor conjoins), memoized per planner since enumeration revisits
// masks many times.
func (p *planner) fingerprintFor(mask uint32) string {
	if fp, ok := p.fpCache[mask]; ok {
		return fp
	}
	tables := append([]string(nil), p.a.tablesOf(mask)...)
	sort.Strings(tables)
	var shapes []string
	for _, c := range p.a.conjuncts {
		if c.mask != 0 && c.mask&^mask == 0 {
			shapes = append(shapes, fingerprintExpr(c.pred))
		}
	}
	sort.Strings(shapes)
	fp := strings.Join(tables, ",")
	if len(shapes) > 0 {
		fp += "|" + strings.Join(shapes, ";")
	}
	p.fpCache[mask] = fp
	return fp
}
