package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/colstore"
	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// zonesOptDB builds an unpartitioned table of exactly 4 columnar
// segments with a clustered (sequential) key column, so zone maps on the
// key are tight and a key-range predicate skips a predictable number of
// segments. s_key is deliberately not indexed: range predicates on it
// must plan as sequential scans, the path the zone pass decorates.
func zonesOptDB(t *testing.T) (*storage.Database, *engine.Context) {
	t.Helper()
	const rows = 4 * colstore.SegmentRows
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	seg, err := db.CreateTable(&catalog.TableSchema{
		Name: "seg",
		Columns: []catalog.Column{
			{Name: "s_id", Type: catalog.Int},
			{Name: "s_key", Type: catalog.Int},
			{Name: "s_a", Type: catalog.Int},
		},
		PrimaryKey: "s_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(43)
	for i := 0; i < rows; i++ {
		row := value.Row{
			value.Int(int64(i)),
			value.Int(int64(i)), // clustered: segment zones partition the key space
			value.Int(int64(testkit.Intn(rng, 100))),
		}
		if err := seg.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

func zonesOpt(t *testing.T, db *storage.Database, ctx *engine.Context, threshold float64) *Optimizer {
	t.Helper()
	set, err := sample.BuildAll(db, 400, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewBayesEstimator(set, core.ConfidenceThreshold(threshold))
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func buildEncodings(t *testing.T, db *storage.Database) *colstore.Set {
	t.Helper()
	encs, err := colstore.BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	return encs
}

// TestZoneSkippingPlansLateScan is the issue's optimizer acceptance
// check: a selective range predicate on the clustered key plans a late-
// materialized encoded scan, the estimate snapshot carries the segment
// arithmetic, and EXPLAIN ANALYZE reports "segments: 3/4 skipped (late)".
func TestZoneSkippingPlansLateScan(t *testing.T) {
	db, ctx := zonesOptDB(t)
	ctx.Encodings = buildEncodings(t, db)
	o := zonesOpt(t, db, ctx, 0.8)
	q := &Query{
		Tables: []string{"seg"},
		Pred:   testkit.Expr("s_key < 4096 AND s_a < 50"),
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := plan.Root.(*engine.SeqScan)
	if !ok {
		t.Fatalf("plan root is %T, want SeqScan:\n%s", plan.Root, plan.Explain())
	}
	if scan.Mode != engine.ScanLate {
		t.Fatalf("scan mode = %v, want late (pushable prefix + 3 skipped segments)", scan.Mode)
	}
	est, ok := plan.EstimateOf(scan)
	if !ok || est.SegsSkipped != 3 || est.SegsTotal != 4 || est.Strategy != "late" {
		t.Fatalf("snapshot segments %d/%d strategy %q (ok=%v), want 3/4 \"late\"",
			est.SegsSkipped, est.SegsTotal, est.Strategy, ok)
	}
	inst := engine.Instrument(plan.Root)
	var c cost.Counters
	res, err := inst.Execute(ctx, &c)
	if err != nil {
		t.Fatal(err)
	}
	// Result correctness against the raw table.
	seg := testkit.Table(db, "seg")
	want := 0
	for i := 0; i < 4096; i++ {
		if seg.Value(i, 2).I < 50 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("late-materialized scan returned %d rows, want %d", len(res.Rows), want)
	}
	// Counter transparency: the encoded scan charges exactly what the row
	// path would — full pages and tuples, zone skips included.
	if wantPages := int64(seg.NumPages()); c.SeqPages != wantPages {
		t.Errorf("encoded scan charged %d seq pages, want %d (counters must match the row path)", c.SeqPages, wantPages)
	}
	if wantTuples := int64(seg.NumRows()); c.Tuples != wantTuples {
		t.Errorf("encoded scan charged %d tuples, want %d", c.Tuples, wantTuples)
	}
	out := engine.ExplainAnalyze(inst, engine.AnalyzeOptions{EstimateOf: plan.EstimateOf})
	if !strings.Contains(out, "segments: 3/4 skipped (late)") {
		t.Errorf("EXPLAIN ANALYZE lacks the zone-map annotation:\n%s", out)
	}
}

// TestZoneBoundTightensEstimate pins the principled half of the design:
// the unskippable row fraction rides the estimator request as an exact
// selectivity upper bound, so the posterior's T-quantile estimate with
// encodings present is never looser than without — at both a median and
// a conservative 95% threshold — and the clamp caps the estimate at the
// bound itself.
func TestZoneBoundTightensEstimate(t *testing.T) {
	db, ctx := zonesOptDB(t)
	encs := buildEncodings(t, db)
	for _, threshold := range []float64{0.50, 0.95} {
		q := &Query{
			Tables: []string{"seg"},
			Pred:   testkit.Expr("s_key < 4096 AND s_a < 50"),
		}
		ctx.Encodings = nil
		free, err := zonesOpt(t, db, ctx, threshold).Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		freeEst, ok := free.EstimateOf(free.Root)
		if !ok {
			t.Fatalf("T=%v: no estimate for row-path root", threshold)
		}
		if freeEst.SegsTotal != 0 {
			t.Fatalf("T=%v: row-path snapshot reports segments %d/%d, want none",
				threshold, freeEst.SegsSkipped, freeEst.SegsTotal)
		}
		ctx.Encodings = encs
		bounded, err := zonesOpt(t, db, ctx, threshold).Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		boundEst, ok := bounded.EstimateOf(bounded.Root)
		if !ok {
			t.Fatalf("T=%v: no estimate for encoded root", threshold)
		}
		if boundEst.Rows > freeEst.Rows {
			t.Errorf("T=%v: zone-bounded estimate %v rows exceeds unbounded %v — the bound must only tighten",
				threshold, boundEst.Rows, freeEst.Rows)
		}
		// 3 of 4 segments are provably empty, so the exact bound is 1/4
		// of the physical rows; the conditioned quantile cannot exceed it.
		if maxRows := float64(colstore.SegmentRows); boundEst.Rows > maxRows {
			t.Errorf("T=%v: estimate %v rows exceeds the zone-map ceiling %v", threshold, boundEst.Rows, maxRows)
		}
	}
}

// TestZoneEagerWithoutPushablePrefix: a fresh encoding with no pushable
// predicate still scans encoded (eager decode — the compression win
// stands) but cannot late-materialize, and no segment is skipped.
func TestZoneEagerWithoutPushablePrefix(t *testing.T) {
	db, ctx := zonesOptDB(t)
	ctx.Encodings = buildEncodings(t, db)
	o := zonesOpt(t, db, ctx, 0.8)
	plan, err := o.Optimize(&Query{
		Tables: []string{"seg"},
		Pred:   testkit.Expr("s_a != 7"), // NE is never pushable
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := plan.Root.(*engine.SeqScan)
	if !ok {
		t.Fatalf("plan root is %T, want SeqScan", plan.Root)
	}
	if scan.Mode != engine.ScanEager {
		t.Fatalf("scan mode = %v, want eager", scan.Mode)
	}
	est, ok := plan.EstimateOf(scan)
	if !ok || est.SegsSkipped != 0 || est.SegsTotal != 4 || est.Strategy != "eager" {
		t.Fatalf("snapshot segments %d/%d strategy %q (ok=%v), want 0/4 \"eager\"",
			est.SegsSkipped, est.SegsTotal, est.Strategy, ok)
	}
}

// TestZoneStaleEncodingKeepsRowPath: rows appended after the encoding
// was built make it stale; the planner must leave the scan on the row
// path (no mode, no segment arithmetic) rather than trust stale zones.
func TestZoneStaleEncodingKeepsRowPath(t *testing.T) {
	db, ctx := zonesOptDB(t)
	ctx.Encodings = buildEncodings(t, db)
	seg := testkit.Table(db, "seg")
	if err := seg.Append(value.Row{value.Int(1 << 20), value.Int(1 << 20), value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	o := zonesOpt(t, db, ctx, 0.8)
	plan, err := o.Optimize(&Query{
		Tables: []string{"seg"},
		Pred:   testkit.Expr("s_key < 4096 AND s_a < 50"),
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := plan.Root.(*engine.SeqScan)
	if !ok {
		t.Fatalf("plan root is %T, want SeqScan", plan.Root)
	}
	if scan.Mode != engine.ScanRows {
		t.Fatalf("scan mode = %v, want rows (stale encoding)", scan.Mode)
	}
	if est, ok := plan.EstimateOf(scan); !ok || est.SegsTotal != 0 || est.Strategy != "" {
		t.Fatalf("stale snapshot reports segments %d/%d strategy %q, want none",
			est.SegsSkipped, est.SegsTotal, est.Strategy)
	}
}

// TestZonePassComposesWithPruning: on a range-partitioned fact, zone
// maps only examine the shards that survive partition pruning, and the
// two annotations render side by side in EXPLAIN ANALYZE. Each 1280-row
// shard is a single short segment (segments tile from the shard base),
// so the pruned scan sees exactly one segment and skips none of it.
func TestZonePassComposesWithPruning(t *testing.T) {
	db, ctx := partOptDB(t, catalog.RangePartition)
	ctx.Encodings = buildEncodings(t, db)
	o := partOpt(t, db, ctx)
	plan, err := o.Optimize(&Query{
		Tables: []string{"fact"},
		Pred:   testkit.Expr("f_key = 1500 AND f_a < 50"),
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := plan.Root.(*engine.SeqScan)
	if !ok {
		t.Fatalf("plan root is %T, want SeqScan", plan.Root)
	}
	if scan.Mode != engine.ScanLate {
		t.Fatalf("scan mode = %v, want late (equality prefix is pushable and highly selective)", scan.Mode)
	}
	est, ok := plan.EstimateOf(scan)
	if !ok || est.PartsScanned != 1 || est.PartsTotal != 4 {
		t.Fatalf("snapshot partitions %d/%d (ok=%v), want 1/4", est.PartsScanned, est.PartsTotal, ok)
	}
	if est.SegsTotal != 1 || est.SegsSkipped != 0 {
		t.Fatalf("snapshot segments %d/%d, want 0/1 (one short segment per surviving shard)",
			est.SegsSkipped, est.SegsTotal)
	}
	inst := engine.Instrument(plan.Root)
	var c cost.Counters
	res, err := inst.Execute(ctx, &c)
	if err != nil {
		t.Fatal(err)
	}
	fact := testkit.Table(db, "fact")
	want := 0
	for i := 0; i < fact.NumRows(); i++ {
		if fact.Value(i, 1).I == 1500 && fact.Value(i, 3).I < 50 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("pruned encoded scan returned %d rows, want %d", len(res.Rows), want)
	}
	out := engine.ExplainAnalyze(inst, engine.AnalyzeOptions{EstimateOf: plan.EstimateOf})
	if !strings.Contains(out, "partitions: 1/4") || !strings.Contains(out, "segments: 0/1 skipped (late)") {
		t.Errorf("EXPLAIN ANALYZE lacks the combined annotations:\n%s", out)
	}
}
