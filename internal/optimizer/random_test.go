package optimizer

import (
	"testing"

	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
)

// TestRandomQueriesMatchOracleProperty is the whole-pipeline property
// test: for randomized queries over one and two tables, whatever plan the
// optimizer picks — under the exact oracle, under the robust estimator at
// random thresholds, and under wildly wrong magic estimates — executing
// it returns exactly the true result cardinality. Estimation quality may
// change the plan; it must never change the answer.
func TestRandomQueriesMatchOracleProperty(t *testing.T) {
	db, ctx := optDB(t, 6000, 40)
	syns, err := sample.BuildAll(db, 300, stats.NewRNG(101))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(202)
	estimators := []core.Estimator{
		&exactEstimator{db: db},
	}
	for _, threshold := range []core.ConfidenceThreshold{0.05, 0.5, 0.95} {
		e, err := core.NewBayesEstimator(syns, threshold)
		if err != nil {
			t.Fatal(err)
		}
		estimators = append(estimators, e)
	}
	rowsFor := func(tab string) (int, bool) {
		tt, ok := db.Table(tab)
		if !ok {
			return 0, false
		}
		return tt.NumRows(), true
	}
	estimators = append(estimators,
		&core.MagicEstimator{Selectivity: 0.001, Catalog: db.Catalog, RowsFor: rowsFor},
		&core.MagicEstimator{Selectivity: 0.9, Catalog: db.Catalog, RowsFor: rowsFor},
	)

	randQuery := func() *Query {
		mkWindow := func(col string, width int64) expr.Expr {
			lo := int64(testkit.Intn(rng, 1000))
			return expr.Between{
				E:  expr.TC("lineitem", col),
				Lo: expr.IntLit(lo),
				Hi: expr.IntLit(lo + int64(testkit.Intn(rng, int(width)))),
			}
		}
		var terms []expr.Expr
		if testkit.Intn(rng, 2) == 0 {
			terms = append(terms, mkWindow("l_ship", 400))
		}
		if testkit.Intn(rng, 2) == 0 {
			terms = append(terms, mkWindow("l_receipt", 400))
		}
		if testkit.Intn(rng, 3) == 0 {
			terms = append(terms, expr.Cmp{
				Op: expr.LT,
				L:  expr.TC("lineitem", "l_price"),
				R:  expr.FloatLit(rng.Float64() * 100),
			})
		}
		tables := []string{"lineitem"}
		if testkit.Intn(rng, 2) == 0 {
			tables = append(tables, "part")
			terms = append(terms, expr.Cmp{
				Op: expr.LT,
				L:  expr.TC("part", "p_size"),
				R:  expr.IntLit(int64(testkit.Intn(rng, 50))),
			})
		}
		return &Query{Tables: tables, Pred: expr.Conj(terms...)}
	}

	for trial := 0; trial < 20; trial++ {
		q := randQuery()
		truth, err := sample.ExactFraction(db, q.Tables, q.Pred)
		if err != nil {
			t.Fatal(err)
		}
		want := int(truth*6000 + 0.5)
		for ei, est := range estimators {
			o, err := New(ctx, est)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := o.Optimize(q)
			if err != nil {
				t.Fatalf("trial %d est %d (%s): %v", trial, ei, est.Name(), err)
			}
			res, _, _, err := engine.Run(ctx, plan.Root)
			if err != nil {
				t.Fatalf("trial %d est %d: execute: %v\n%s", trial, ei, err, plan.Explain())
			}
			if len(res.Rows) != want {
				t.Fatalf("trial %d est %d (%s): %d rows, want %d\nquery: %v tables %v\n%s",
					trial, ei, est.Name(), len(res.Rows), want, q.Pred, q.Tables, plan.Explain())
			}
		}
	}
}
