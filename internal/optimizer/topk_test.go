package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
)

// TestOrderByLimitPlansBoundedTopK: when a query carries both ORDER BY and
// LIMIT, the planned Sort must advertise the bounded top-K heap so the
// executor retains only K rows instead of materializing the full sort run.
func TestOrderByLimitPlansBoundedTopK(t *testing.T) {
	db, ctx := optDB(t, 2000, 40)
	o := exactOpt(t, db, ctx)
	q := &Query{
		Tables:  []string{"lineitem"},
		Pred:    testkit.Expr("l_ship < 500"),
		OrderBy: []engine.SortKey{{Col: expr.ColumnRef{Table: "lineitem", Column: "l_price"}, Desc: true}},
		Limit:   17,
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "top=17") {
		t.Errorf("Sort under LIMIT not bounded to top-K:\n%s", plan.Explain())
	}
	// Without a LIMIT the same query must plan an unbounded sort.
	q.Limit = 0
	plan, err = o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "top=") {
		t.Errorf("unlimited query planned a bounded sort:\n%s", plan.Explain())
	}
}

// TestElidedSortStillStreamsUnderLimit: when ORDER BY matches the table's
// declared heap order the sort is elided entirely, and the remaining plan
// is a pure streaming pipeline — a LIMIT above it must terminate after a
// prefix of the table, not after a full scan.
func TestElidedSortStillStreamsUnderLimit(t *testing.T) {
	const nLines = 2000
	db, ctx := optDB(t, nLines, 40)
	o := exactOpt(t, db, ctx)
	q := &Query{
		Tables:  []string{"lineitem"},
		Pred:    testkit.Expr("l_ship < 500"),
		OrderBy: []engine.SortKey{{Col: expr.ColumnRef{Table: "lineitem", Column: "l_id"}}},
		Limit:   10,
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "Sort") {
		t.Fatalf("sort not elided for declared order:\n%s", plan.Explain())
	}
	res, counters, _, err := engine.Run(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	idIdx, _ := res.Schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_id"})
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][idIdx].I < res.Rows[i-1][idIdx].I {
			t.Fatal("order violated without sort")
		}
	}
	// The whole table spans many more pages than one batch; an early stop
	// must leave most of them unread.
	totalPages := int64((nLines + storage.TuplesPerPage - 1) / storage.TuplesPerPage)
	if counters.SeqPages >= totalPages {
		t.Errorf("LIMIT over elided sort scanned all %d pages; early termination lost", counters.SeqPages)
	}
}
