package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// partOptDB builds a dim/fact pair with the fact range-partitioned on
// f_key into 4 shards of exactly 1280 rows (16 pages) each, so the
// exactly-1/N page accounting of a pruned scan is an integer identity.
func partOptDB(t *testing.T, kind catalog.PartitionKind) (*storage.Database, *engine.Context) {
	t.Helper()
	const shardRows = 1280
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	dim, err := db.CreateTable(&catalog.TableSchema{
		Name: "dim",
		Columns: []catalog.Column{
			{Name: "d_id", Type: catalog.Int},
			{Name: "d_cat", Type: catalog.Int},
		},
		PrimaryKey: "d_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := &catalog.PartitionSpec{Column: "f_key", Kind: kind, Partitions: 4}
	if kind == catalog.RangePartition {
		spec.Bounds = []int64{shardRows, 2 * shardRows, 3 * shardRows}
	}
	fact, err := db.CreateTable(&catalog.TableSchema{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_id", Type: catalog.Int},
			{Name: "f_key", Type: catalog.Int},
			{Name: "f_dim", Type: catalog.Int},
			{Name: "f_a", Type: catalog.Int},
		},
		PrimaryKey: "f_id",
		Foreign:    []catalog.ForeignKey{{Column: "f_dim", RefTable: "dim"}},
		Partition:  spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 40; d++ {
		if err := dim.Append(value.Row{value.Int(int64(d)), value.Int(int64(d % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	rng := stats.NewRNG(41)
	for i := 0; i < 4*shardRows; i++ {
		row := value.Row{
			value.Int(int64(i)),
			value.Int(int64(i)), // sequential keys: range shards are exactly equal
			value.Int(int64(i % 40)),
			value.Int(int64(testkit.Intn(rng, 100))),
		}
		if err := fact.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, err := engine.NewContext(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, ctx
}

func partOpt(t *testing.T, db *storage.Database, ctx *engine.Context) *Optimizer {
	t.Helper()
	set, err := sample.BuildAll(db, 400, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewBayesEstimator(set, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestPruningScansOneShard is the issue's acceptance check: an equality
// predicate on the partition key plans a scan of exactly 1 of the 4
// shards, the executed scan charges exactly NumPages/4 sequential pages
// (zero pages from pruned shards), and EXPLAIN ANALYZE reports the
// pruning as "partitions: 1/4".
func TestPruningScansOneShard(t *testing.T) {
	for _, kind := range []catalog.PartitionKind{catalog.RangePartition, catalog.HashPartition} {
		db, ctx := partOptDB(t, kind)
		o := partOpt(t, db, ctx)
		plan, err := o.Optimize(&Query{
			Tables: []string{"fact"},
			Pred:   testkit.Expr("f_key = 1500 AND f_a < 50"),
		})
		if err != nil {
			t.Fatal(err)
		}
		scan, ok := plan.Root.(*engine.SeqScan)
		if !ok {
			t.Fatalf("%v: plan root is %T, want SeqScan", kind, plan.Root)
		}
		fact := testkit.Table(db, "fact")
		wantShard, _ := fact.ShardOfKey(1500)
		if len(scan.Partitions) != 1 || scan.Partitions[0] != wantShard {
			t.Fatalf("%v: scan reads partitions %v, want exactly [%d]", kind, scan.Partitions, wantShard)
		}
		est, ok := plan.EstimateOf(scan)
		if !ok || est.PartsScanned != 1 || est.PartsTotal != 4 {
			t.Fatalf("%v: snapshot partitions %d/%d (ok=%v), want 1/4", kind, est.PartsScanned, est.PartsTotal, ok)
		}
		inst := engine.Instrument(plan.Root)
		var c cost.Counters
		if _, err := inst.Execute(ctx, &c); err != nil {
			t.Fatal(err)
		}
		// The scan charges exactly the surviving shard's pages and tuples
		// — zero accesses against pruned shards. Range shards are exactly
		// equal here, so that is the literal 1/N of the table.
		lo, hi := fact.PartitionSpan(wantShard)
		const per = storage.TuplesPerPage
		wantPages := int64((hi+per-1)/per - (lo+per-1)/per)
		if kind == catalog.RangePartition && wantPages != int64(fact.NumPages())/4 {
			t.Fatalf("range shard is not exactly 1/4 of the table: %d of %d pages", wantPages, fact.NumPages())
		}
		if c.SeqPages != wantPages {
			t.Errorf("%v: pruned scan charged %d seq pages, want %d", kind, c.SeqPages, wantPages)
		}
		if want := int64(hi - lo); c.Tuples != want {
			t.Errorf("%v: pruned scan read %d tuples, want %d", kind, c.Tuples, want)
		}
		out := engine.ExplainAnalyze(inst, engine.AnalyzeOptions{EstimateOf: plan.EstimateOf})
		if !strings.Contains(out, "partitions: 1/4") {
			t.Errorf("%v: EXPLAIN ANALYZE lacks the pruning annotation:\n%s", kind, out)
		}
	}
}

// TestRangePruningThroughJoin: pruning holds when the partitioned fact is
// joined — the shard list rides the fact scan and the estimator observes
// only surviving shards for every mask rooted at the fact.
func TestRangePruningThroughJoin(t *testing.T) {
	db, ctx := partOptDB(t, catalog.RangePartition)
	o := partOpt(t, db, ctx)
	plan, err := o.Optimize(&Query{
		Tables: []string{"fact", "dim"},
		Pred:   testkit.Expr("f_key BETWEEN 1280 AND 2559 AND d_cat = 2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := engine.Instrument(plan.Root)
	found := false
	var walk func(n *engine.Instrumented)
	walk = func(n *engine.Instrumented) {
		if s, ok := n.Origin.(*engine.SeqScan); ok && s.Table == "fact" {
			found = true
			if len(s.Partitions) != 1 || s.Partitions[0] != 1 {
				t.Errorf("fact scan reads partitions %v, want [1]", s.Partitions)
			}
		}
		for _, kid := range n.Kids {
			walk(kid)
		}
	}
	walk(inst)
	if !found {
		t.Fatalf("no fact SeqScan in plan:\n%s", plan.Explain())
	}
	var c cost.Counters
	if _, err := inst.Execute(ctx, &c); err != nil {
		t.Fatal(err)
	}
}

// TestHashPartitionRangeNotPruned: hash partitioning cannot prune range
// predicates — the plan must scan all shards with no Partitions list, and
// the snapshot still reports the 4/4 shard arithmetic.
func TestHashPartitionRangeNotPruned(t *testing.T) {
	db, ctx := partOptDB(t, catalog.HashPartition)
	o := partOpt(t, db, ctx)
	plan, err := o.Optimize(&Query{
		Tables: []string{"fact"},
		Pred:   testkit.Expr("f_key < 1000"),
	})
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := plan.Root.(*engine.SeqScan)
	if !ok {
		t.Fatalf("plan root is %T, want SeqScan", plan.Root)
	}
	if scan.Partitions != nil {
		t.Fatalf("hash partitioning pruned a range predicate: %v", scan.Partitions)
	}
	est, ok := plan.EstimateOf(scan)
	if !ok || est.PartsScanned != 4 || est.PartsTotal != 4 {
		t.Fatalf("snapshot partitions %d/%d (ok=%v), want 4/4", est.PartsScanned, est.PartsTotal, ok)
	}
	inst := engine.Instrument(plan.Root)
	var c cost.Counters
	if _, err := inst.Execute(ctx, &c); err != nil {
		t.Fatal(err)
	}
	fact := testkit.Table(db, "fact")
	if c.SeqPages != int64(fact.NumPages()) {
		t.Errorf("unpruned scan charged %d pages, table holds %d", c.SeqPages, fact.NumPages())
	}
}

// TestPrunedCostNotHigher: the plan cost of the key-constrained query must
// not exceed the cost of the same residual predicate without the key
// constraint — pruning can only remove work.
func TestPrunedCostNotHigher(t *testing.T) {
	db, ctx := partOptDB(t, catalog.RangePartition)
	o := partOpt(t, db, ctx)
	pruned, err := o.Optimize(&Query{
		Tables: []string{"fact"},
		Pred:   testkit.Expr("f_key = 1500 AND f_a < 50"),
	})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := o.Optimize(&Query{
		Tables: []string{"fact"},
		Pred:   testkit.Expr("f_a < 50"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.EstCost > unpruned.EstCost {
		t.Errorf("pruned plan costs %.4f, unpruned %.4f", pruned.EstCost, unpruned.EstCost)
	}
	if pruned.EstRows > unpruned.EstRows {
		t.Errorf("pruned plan estimates %.1f rows, unpruned %.1f", pruned.EstRows, unpruned.EstRows)
	}
	_ = db
}
