package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/expr"
	"robustqo/internal/value"
)

func TestBinValueBins(t *testing.T) {
	cases := []struct {
		v    value.Value
		want string
	}{
		{value.Int(0), "b0"},
		{value.Int(1), "b1"},
		{value.Int(25), "b5"},
		{value.Int(30), "b5"},    // same bin as 25: [16, 32)
		{value.Int(3000), "b12"}, // far bin
		{value.Int(-7), "-b3"},
		{value.Date(9800), "b14"},
		{value.Float(0), "f0"},
		{value.Float(0.75), "f-1"},
		{value.Float(-2.5), "-f1"},
		{value.Str("abc"), "s2"},
		{value.Str(""), "s0"},
	}
	for _, c := range cases {
		if got := binValue(c.v); got != c.want {
			t.Errorf("binValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFingerprintExprShapes(t *testing.T) {
	lt25 := expr.Cmp{Op: expr.LT, L: expr.C("l_quantity"), R: expr.IntLit(25)}
	lt30 := expr.Cmp{Op: expr.LT, L: expr.C("l_quantity"), R: expr.IntLit(30)}
	lt3000 := expr.Cmp{Op: expr.LT, L: expr.C("l_quantity"), R: expr.IntLit(3000)}
	if fingerprintExpr(lt25) != fingerprintExpr(lt30) {
		t.Errorf("same-bin literals split: %q vs %q", fingerprintExpr(lt25), fingerprintExpr(lt30))
	}
	if fingerprintExpr(lt25) == fingerprintExpr(lt3000) {
		t.Errorf("far-bin literals collide: %q", fingerprintExpr(lt25))
	}
	if got := fingerprintExpr(lt25); got != "l_quantity<b5" {
		t.Errorf("cmp shape = %q", got)
	}
	bt := expr.Between{E: expr.C("l_shipdate"), Lo: expr.DateLit(600), Hi: expr.DateLit(900)}
	if got := fingerprintExpr(bt); got != "l_shipdate between b10..b10" {
		t.Errorf("between shape = %q", got)
	}
	// Commutative connectives normalize term order.
	ab := expr.Or{Terms: []expr.Expr{lt25, bt}}
	ba := expr.Or{Terms: []expr.Expr{bt, lt25}}
	if fingerprintExpr(ab) != fingerprintExpr(ba) {
		t.Errorf("OR term order split: %q vs %q", fingerprintExpr(ab), fingerprintExpr(ba))
	}
	in := expr.In{E: expr.C("p_size"), Vals: []value.Value{value.Int(1), value.Int(9), value.Int(3)}}
	if got := fingerprintExpr(in); got != "p_size in#b2" {
		t.Errorf("in shape = %q", got)
	}
	ct := expr.Contains{E: expr.C("p_attr1"), Substr: "green"}
	if got := fingerprintExpr(ct); got != "p_attr1~s3" {
		t.Errorf("contains shape = %q", got)
	}
	not := expr.Not{E: lt25}
	if got := fingerprintExpr(not); got != "!l_quantity<b5" {
		t.Errorf("not shape = %q", got)
	}
}

func TestFingerprintForMask(t *testing.T) {
	// Build an analysis by hand: two tables, one single-table conjunct on
	// each, one cross conjunct.
	a := &analysis{
		tables: []string{"orders", "lineitem"},
		conjuncts: []conjunct{
			{pred: expr.Cmp{Op: expr.LT, L: expr.C("o_totalprice"), R: expr.IntLit(400)}, mask: 1},
			{pred: expr.Cmp{Op: expr.GE, L: expr.C("l_quantity"), R: expr.IntLit(20)}, mask: 2},
			{pred: expr.Cmp{Op: expr.LT, L: expr.C("l_extendedprice"), R: expr.C("o_totalprice")}, mask: 3},
		},
	}
	p := &planner{a: a, fpCache: make(map[uint32]string)}
	if got := p.fingerprintFor(1); got != "orders|o_totalprice<b9" {
		t.Errorf("mask 1 = %q", got)
	}
	if got := p.fingerprintFor(2); got != "lineitem|l_quantity>=b5" {
		t.Errorf("mask 2 = %q", got)
	}
	full := p.fingerprintFor(3)
	// Tables sorted, all three conjuncts present, sorted.
	if !strings.HasPrefix(full, "lineitem,orders|") {
		t.Errorf("mask 3 tables not sorted: %q", full)
	}
	if got := len(strings.Split(strings.SplitN(full, "|", 2)[1], ";")); got != 3 {
		t.Errorf("mask 3 has %d conjuncts, want 3: %q", got, full)
	}
	// Memoized: same string back.
	if p.fingerprintFor(3) != full {
		t.Error("memoization changed the fingerprint")
	}
	// A mask with no conjuncts is the bare table list.
	b := &planner{a: &analysis{tables: []string{"part"}}, fpCache: make(map[uint32]string)}
	if got := b.fingerprintFor(1); got != "part" {
		t.Errorf("predicate-free fingerprint = %q", got)
	}
}
