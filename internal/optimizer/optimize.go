package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
)

// keepPerSubset bounds how many candidate plans survive pruning for each
// table subset during dynamic programming. Candidates with distinct
// physical orderings are retained in addition to the cheapest ones.
const keepPerSubset = 4

// Plan is the optimizer's output: an executable physical plan with the
// cost and cardinality the optimizer believed at planning time.
type Plan struct {
	Root      engine.Node
	EstCost   float64 // estimated execution seconds under the cost model
	EstRows   float64 // estimated final result cardinality
	Estimator string  // name of the cardinality estimator used

	// estimates holds the per-node cardinality snapshots captured while
	// the plan was built; EstimateOf serves EXPLAIN ANALYZE lookups.
	estimates  map[engine.Node]obs.EstimateSnapshot
	confidence float64
}

// Explain renders the chosen plan tree.
func (p *Plan) Explain() string { return engine.Explain(p.Root) }

// EstimateOf returns the optimizer's planning-time cardinality snapshot
// for a node of the plan tree. It is the EstimateOf callback
// engine.ExplainAnalyze expects.
func (p *Plan) EstimateOf(n engine.Node) (obs.EstimateSnapshot, bool) {
	s, ok := p.estimates[n]
	return s, ok
}

// Confidence returns the posterior percentile T the plan's estimates
// were taken at, or zero when the estimator uses point estimates.
func (p *Plan) Confidence() float64 { return p.confidence }

// Optimizer searches the plan space of a query using the engine's cost
// model and a pluggable cardinality estimator.
type Optimizer struct {
	Ctx *engine.Context
	Est core.Estimator
	// Trace, when non-nil, receives spans for the optimizer's phases
	// (analyze, access-path seeding, join enumeration, finalization)
	// and each uncached estimator call.
	Trace *obs.Trace
	// MaxDOP caps the degree of parallelism the optimizer may assign to
	// a plan's scans via Exchange operators; 0 or 1 keeps plans serial.
	MaxDOP int
	// Metrics, when non-nil, receives the optimizer's cache counters:
	// selectivity-cache hits/misses (cache hits are recorded here
	// span-free, so enumeration-heavy queries don't balloon traces) and
	// the estimator's posterior-quantile cache totals.
	Metrics *obs.Registry
}

// New returns an optimizer over the execution context using the given
// cardinality estimation module.
func New(ctx *engine.Context, est core.Estimator) (*Optimizer, error) {
	if ctx == nil || est == nil {
		return nil, fmt.Errorf("optimizer: need an execution context and an estimator")
	}
	return &Optimizer{Ctx: ctx, Est: est}, nil
}

// candidate is one physical alternative for a table subset.
type candidate struct {
	node    engine.Node
	cost    float64
	rows    float64
	ordered []expr.ColumnRef // columns the output is known to be ordered by
}

func (c candidate) orderedBy(ref expr.ColumnRef) bool {
	for _, o := range c.ordered {
		if o == ref {
			return true
		}
	}
	return false
}

// selEntry memoizes one estimator answer: the clamped selectivity plus
// the estimator's own row figure when it reported one. The row figure
// matters under partition pruning — the estimator knows which population
// its selectivity is a fraction of (the surviving shards' when it
// observed per-shard synopses, the whole table when it fell back), so
// rowsOf must not re-scale the selectivity by a population of its own
// choosing.
type selEntry struct {
	sel     float64
	rows    float64
	hasRows bool
}

// planner carries per-query optimization state.
type planner struct {
	opt      *Optimizer
	a        *analysis
	selCache map[string]selEntry
	rowCache map[uint32]float64
	// estimates remembers, per constructed plan node, the cardinality the
	// optimizer believed when it built that node; snap is the template
	// (estimator name, confidence percentile) each record starts from.
	estimates map[engine.Node]obs.EstimateSnapshot
	snap      obs.EstimateSnapshot
	// fpCache memoizes ledger fingerprints per table mask; see
	// fingerprint.go for the grammar.
	fpCache map[uint32]string
	// parts is the partition-pruning verdict per query table index,
	// filled by computePruning before access-path seeding; tables absent
	// from the map are unpartitioned.
	parts map[int]*tableParts
	// zones is the zone-map verdict per query table index, filled by
	// computeScanStrategies after pruning; tables absent from the map
	// have no fresh columnar encoding and stay on the row path.
	zones map[int]*tableZones
}

// record captures the optimizer's cardinality belief for a plan node.
// Losing candidates leave harmless extra entries: lookups are by node
// pointer and only the chosen tree's nodes are ever queried.
func (p *planner) record(n engine.Node, rows float64) {
	s := p.snap
	s.Rows = rows
	p.estimates[n] = s
}

// recordMask is record plus the ledger fingerprint of the masked
// subexpression, for nodes whose cardinality is a direct prediction about
// a table subset under its predicate (scans and joins). Post-join shaping
// operators (aggregate, sort, limit, project) stay fingerprint-free via
// plain record, so the ledger only accumulates predicate feedback.
func (p *planner) recordMask(n engine.Node, rows float64, mask uint32) {
	s := p.snap
	s.Rows = rows
	s.Fingerprint = p.fingerprintFor(mask)
	p.estimates[n] = s
}

// Optimize selects the cheapest plan for the query under the estimator.
func (o *Optimizer) Optimize(q *Query) (*Plan, error) {
	sp := o.Trace.StartSpan("optimize")
	defer sp.End()
	a, err := o.analyzeQuery(q)
	if err != nil {
		return nil, err
	}
	p := &planner{
		opt: o, a: a,
		selCache:  make(map[string]selEntry),
		rowCache:  make(map[uint32]float64),
		estimates: make(map[engine.Node]obs.EstimateSnapshot),
		snap:      obs.EstimateSnapshot{Estimator: o.Est.Name()},
		fpCache:   make(map[uint32]string),
	}
	if cl, ok := o.Est.(core.ConfidenceReporter); ok {
		if t, ok := cl.ConfidenceLevel(); ok {
			p.snap.Percentile = t
		}
	}
	p.computePruning()
	p.computeScanStrategies()
	best := make(map[uint32][]candidate)
	if err := p.seedAccessPaths(best); err != nil {
		return nil, err
	}
	winner, err := p.enumerateJoins(best)
	if err != nil {
		return nil, err
	}
	root, finalCost, finalRows, err := p.finish(winner)
	if err != nil {
		return nil, err
	}
	if o.MaxDOP >= 2 {
		root = p.parallelize(root)
	}
	exportQuantileCache(o.Metrics, quantileCacheOf(o.Est))
	return &Plan{
		Root: root, EstCost: finalCost, EstRows: finalRows, Estimator: o.Est.Name(),
		estimates: p.estimates, confidence: p.snap.Percentile,
	}, nil
}

// analyzeQuery is the semantic-analysis phase under its trace span.
func (o *Optimizer) analyzeQuery(q *Query) (*analysis, error) {
	sp := o.Trace.StartSpan("optimize/analyze")
	defer sp.End()
	return analyze(o.Ctx.DB.Catalog, q)
}

// seedAccessPaths fills best with the pruned single-table access paths.
func (p *planner) seedAccessPaths(best map[uint32][]candidate) error {
	sp := p.opt.Trace.StartSpan("optimize/access-paths")
	defer sp.End()
	for i := range p.a.tables {
		cands, err := p.accessPaths(i)
		if err != nil {
			return err
		}
		best[1<<uint(i)] = prune(cands)
	}
	return nil
}

// enumerateJoins runs the dynamic program over connected table subsets
// and returns the cheapest candidate covering every table.
func (p *planner) enumerateJoins(best map[uint32][]candidate) (candidate, error) {
	sp := p.opt.Trace.StartSpan("optimize/join-enumeration")
	defer sp.End()
	a := p.a
	full := uint32(1<<len(a.tables)) - 1
	// Grow subsets by size.
	for size := 2; size <= len(a.tables); size++ {
		for mask := uint32(1); mask <= full; mask++ {
			if popcount(mask) != size || !a.connected(mask) {
				continue
			}
			var cands []candidate
			// Left-deep extensions: mask = rest ∪ {t}.
			for i := range a.tables {
				bit := uint32(1) << uint(i)
				if mask&bit == 0 {
					continue
				}
				rest := mask &^ bit
				if rest == 0 || !a.connected(rest) {
					continue
				}
				joins, err := p.joinCandidates(rest, i, best)
				if err != nil {
					return candidate{}, err
				}
				cands = append(cands, joins...)
			}
			// Star strategies for this subset, when applicable.
			stars, err := p.starCandidates(mask, best)
			if err != nil {
				return candidate{}, err
			}
			cands = append(cands, stars...)
			if len(cands) == 0 {
				return candidate{}, fmt.Errorf("optimizer: no plan for table subset %v", a.tablesOf(mask))
			}
			best[mask] = prune(cands)
		}
	}
	winner := best[full][0]
	for _, c := range best[full][1:] {
		if cost.Less(c.cost, winner.cost) {
			winner = c
		}
	}
	sp.SetAttr("subsets", fmt.Sprint(len(best)))
	return winner, nil
}

// finish layers aggregation, ordering, limiting, and projection on top of
// the join winner, following SQL evaluation order. It returns the plan
// root, its estimated total cost, and the estimated final row count.
func (p *planner) finish(c candidate) (engine.Node, float64, float64, error) {
	sp := p.opt.Trace.StartSpan("optimize/finalize")
	defer sp.End()
	q := p.a.q
	m := p.opt.Ctx.Model
	node := c.node
	total := c.cost
	rows := c.rows
	if len(q.Aggs) > 0 || len(q.GroupBy) > 0 {
		node = &engine.Aggregate{Input: node, GroupBy: q.GroupBy, Aggs: q.Aggs}
		total += rows * (m.HashBuild + m.Tuple)
		rows = p.estimateGroups(rows)
		p.record(node, rows)
	}
	if len(q.OrderBy) > 0 {
		// Skip the sort when the winner is already ordered by the first
		// (ascending) key and no aggregation reshaped the rows.
		first := q.OrderBy[0]
		alreadyOrdered := len(q.Aggs) == 0 && len(q.GroupBy) == 0 &&
			len(q.OrderBy) == 1 && !first.Desc && c.orderedBy(first.Col)
		if !alreadyOrdered {
			// Under a LIMIT the sort only needs the first q.Limit rows, so
			// the engine can keep a bounded top-K heap instead of
			// materializing the full sorted input.
			node = &engine.Sort{Input: node, By: q.OrderBy, TopK: q.Limit}
			total += rows * m.SortTuple
			p.record(node, rows)
		}
	}
	if q.Limit > 0 {
		node = &engine.Limit{Input: node, N: q.Limit}
		if float64(q.Limit) < rows {
			rows = float64(q.Limit)
		}
		p.record(node, rows)
	}
	if len(q.Project) > 0 && len(q.Aggs) == 0 && len(q.GroupBy) == 0 {
		node = &engine.Project{Input: node, Cols: q.Project}
		total += rows * m.Tuple
		p.record(node, rows)
	}
	total += rows * m.Output
	return node, total, rows, nil
}

// estimateGroups predicts the aggregate output cardinality: one row for a
// grand total, otherwise the estimator's distinct-combination prediction
// when it offers one (Section 3.5), capped by the input rows.
func (p *planner) estimateGroups(inRows float64) float64 {
	q := p.a.q
	if len(q.GroupBy) == 0 {
		return 1
	}
	if ge, ok := p.opt.Est.(core.GroupsEstimator); ok {
		if groups, err := ge.EstimateGroups(p.a.tables, q.GroupBy); err == nil {
			if groups < 1 {
				groups = 1
			}
			if groups > inRows {
				groups = inRows
			}
			return groups
		}
	}
	// No estimator support: the traditional guess of a tenth of the rows.
	g := inRows / 10
	if g < 1 {
		g = 1
	}
	return g
}

// prune keeps the cheapest candidates, always retaining the cheapest
// representative of each distinct ordering property.
func prune(cands []candidate) []candidate {
	sort.SliceStable(cands, func(i, j int) bool { return cost.Less(cands[i].cost, cands[j].cost) })
	var kept []candidate
	seenOrder := make(map[string]bool)
	for _, c := range cands {
		key := orderKey(c.ordered)
		if len(kept) < keepPerSubset || !seenOrder[key] {
			if !seenOrder[key] || len(kept) < keepPerSubset {
				kept = append(kept, c)
				seenOrder[key] = true
			}
		}
	}
	if len(kept) == 0 {
		return cands
	}
	return kept
}

func orderKey(ordered []expr.ColumnRef) string {
	key := ""
	for _, o := range ordered {
		key += o.String() + ";"
	}
	return key
}

// selOf estimates the selectivity of pred over the FK join of the masked
// tables, memoized.
func (p *planner) selOf(mask uint32, pred expr.Expr) (float64, error) {
	e, err := p.estOf(mask, pred)
	return e.sel, err
}

// estOf is the memoized estimator call behind selOf and rowsOf.
func (p *planner) estOf(mask uint32, pred expr.Expr) (selEntry, error) {
	key := fmt.Sprintf("%d|%v", mask, pred)
	if e, ok := p.selCache[key]; ok {
		// Hits are metric increments only — no span — so traces stay
		// proportional to distinct estimates, not enumeration steps.
		// Names stay literal at the call site so qolint's metricname
		// analyzer can check the registry namespace; a nil registry
		// costs one branch.
		if p.opt.Metrics != nil {
			p.opt.Metrics.Counter("robustqo_estimate_cache_hits_total").Inc()
		}
		return e, nil
	}
	if p.opt.Metrics != nil {
		p.opt.Metrics.Counter("robustqo_estimate_cache_misses_total").Inc()
	}
	sp := p.opt.Trace.StartSpan("estimate")
	defer sp.End()
	sp.SetAttr("tables", strings.Join(p.a.tablesOf(mask), ","))
	if pred != nil {
		sp.SetAttr("pred", fmt.Sprint(pred))
	}
	// Pruning tightens the observation before the quantile is taken: the
	// estimator sums pseudo-counts over the surviving shards only, and
	// zone-map evidence conditions the posterior on an exact selectivity
	// ceiling. Both the shard list and the ceiling are functions of the
	// mask's root (fixed per query), so the cache key needs no extension.
	est, err := p.opt.Est.Estimate(core.Request{
		Tables:         p.a.tablesOf(mask),
		Pred:           pred,
		Partitions:     p.partsForMask(mask),
		MaxSelectivity: p.maxSelForMask(mask),
	})
	if err != nil {
		return selEntry{}, err
	}
	s := est.Selectivity
	if math.IsNaN(s) || s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	e := selEntry{sel: s, rows: est.Rows}
	if math.IsNaN(e.rows) || e.rows < 0 {
		e.rows = 0
	}
	// Rows == 0 with a positive selectivity means the estimator left the
	// scaling to the caller (the Independent baseline without RowsFor).
	e.hasRows = e.rows != 0 || e.sel == 0
	p.selCache[key] = e
	return e, nil
}

// rowsOf estimates the result cardinality of the masked subexpression with
// all applicable conjuncts, memoized. For FK joins this is root rows times
// joint selectivity.
func (p *planner) rowsOf(mask uint32) (float64, error) {
	if r, ok := p.rowCache[mask]; ok {
		return r, nil
	}
	tables := p.a.tablesOf(mask)
	root, err := p.opt.Ctx.DB.Catalog.RootOf(tables)
	if err != nil {
		return 0, err
	}
	rootTab, ok := p.opt.Ctx.DB.Table(root)
	if !ok {
		return 0, fmt.Errorf("optimizer: unknown table %q", root)
	}
	e, err := p.estOf(mask, p.a.predFor(mask))
	if err != nil {
		return 0, err
	}
	// Prefer the estimator's own row figure: under partition pruning its
	// selectivity is a fraction of the surviving shards' population, not
	// of the whole root table, and only the estimator knows which basis
	// it used (it falls back to the global synopsis when per-shard ones
	// are missing).
	r := e.rows
	if !e.hasRows {
		r = e.sel * float64(rootTab.NumRows())
	}
	p.rowCache[mask] = r
	return r, nil
}

// tableRowsPages returns physical statistics of a base table.
func (p *planner) tableRowsPages(i int) (rows, pages float64, err error) {
	t, ok := p.opt.Ctx.DB.Table(p.a.tables[i])
	if !ok {
		return 0, 0, fmt.Errorf("optimizer: unknown table %q", p.a.tables[i])
	}
	return float64(t.NumRows()), float64(t.NumPages()), nil
}
