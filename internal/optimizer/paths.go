package optimizer

import (
	"robustqo/internal/engine"
	"robustqo/internal/expr"
)

// accessPaths enumerates the physical alternatives for scanning one table
// with its single-table predicate: the sequential scan, a single-index
// range scan per sargable condition, and the index-intersection plan when
// several conditions are sargable.
func (p *planner) accessPaths(i int) ([]candidate, error) {
	tName := p.a.tables[i]
	schema, _ := p.opt.Ctx.DB.Catalog.Table(tName)
	m := p.opt.Ctx.Model
	// Physical stats after partition pruning: the scan only touches the
	// surviving shards' rows and pages, and is costed accordingly.
	rows, pages, err := p.prunedRowsPages(i)
	if err != nil {
		return nil, err
	}
	bit := uint32(1) << uint(i)

	outRows, err := p.rowsOf(bit)
	if err != nil {
		return nil, err
	}

	// Physical ordering of the heap: declared Ordered columns plus the
	// primary key when rows were appended in key order (we only trust the
	// declaration).
	var ordered []expr.ColumnRef
	for _, col := range schema.Ordered {
		ordered = append(ordered, expr.ColumnRef{Table: tName, Column: col})
	}

	fullPred := p.a.predOnly(i)
	seq := &engine.SeqScan{Table: tName, Filter: fullPred, Partitions: p.scanParts(i)}
	// Scan strategy: when a fresh columnar encoding exists, pick eager or
	// late materialization from the posterior selectivity and the zone
	// evidence. The simulated cost is unchanged by design — encoded scans
	// are counter transparent — so the mode never distorts plan choice;
	// it only changes the wall-clock of the plan the cost model picked.
	selFrac := 1.0
	if rows > 0 {
		selFrac = outRows / rows
	}
	if mc := p.scanMode(i, selFrac); mc.Encoded {
		if mc.Late {
			seq.Mode = engine.ScanLate
		} else {
			seq.Mode = engine.ScanEager
		}
	}
	cands := []candidate{{
		node:    seq,
		cost:    pages*m.SeqPage + rows*m.Tuple,
		rows:    outRows,
		ordered: ordered,
	}}
	p.recordScan(cands[0].node, outRows, i)

	// Collect sargable ranges per indexed column, remembering which
	// conjuncts each range consumed.
	byColumn, colOrder := sargableRanges(p.a, schema, i)

	residualExcept := func(consumed map[int]bool) expr.Expr {
		var terms []expr.Expr
		for ci, c := range p.a.conjuncts {
			if c.mask == bit && !consumed[ci] {
				terms = append(terms, c.pred)
			}
		}
		return expr.Conj(terms...)
	}
	conjOf := func(idxs []int) expr.Expr {
		var terms []expr.Expr
		for _, ci := range idxs {
			terms = append(terms, p.a.conjuncts[ci].pred)
		}
		return expr.Conj(terms...)
	}

	// Single-index range scans.
	for _, col := range colOrder {
		s := byColumn[col]
		marg, err := p.selOf(bit, conjOf(s.consumed))
		if err != nil {
			return nil, err
		}
		entries := rows * marg
		consumed := make(map[int]bool, len(s.consumed))
		for _, ci := range s.consumed {
			consumed[ci] = true
		}
		cands = append(cands, candidate{
			node: &engine.IndexRangeScan{
				Table:      tName,
				Range:      s.rng,
				Residual:   residualExcept(consumed),
				Partitions: p.scanParts(i),
			},
			cost:    m.IndexSeek + entries*(m.IndexEntry+m.RandPage+m.Tuple),
			rows:    outRows,
			ordered: ordered, // RID-ordered fetch preserves heap order
		})
		p.recordScan(cands[len(cands)-1].node, outRows, i)
	}

	// Index intersection over all sargable columns.
	if len(colOrder) >= 2 {
		var ranges []engine.KeyRange
		var allConsumed []int
		consumed := make(map[int]bool)
		costSum := 0.0
		for _, col := range colOrder {
			s := byColumn[col]
			marg, err := p.selOf(bit, conjOf(s.consumed))
			if err != nil {
				return nil, err
			}
			entries := rows * marg
			costSum += m.IndexSeek + entries*(m.IndexEntry+m.Tuple)
			ranges = append(ranges, s.rng)
			allConsumed = append(allConsumed, s.consumed...)
			for _, ci := range s.consumed {
				consumed[ci] = true
			}
		}
		// The joint selectivity of the intersected conditions — the
		// estimate on which the paper's whole argument turns.
		joint, err := p.selOf(bit, conjOf(allConsumed))
		if err != nil {
			return nil, err
		}
		costSum += rows * joint * (m.RandPage + m.Tuple)
		cands = append(cands, candidate{
			node: &engine.IndexIntersect{
				Table:      tName,
				Ranges:     ranges,
				Residual:   residualExcept(consumed),
				Partitions: p.scanParts(i),
			},
			cost:    costSum,
			rows:    outRows,
			ordered: ordered,
		})
		p.recordScan(cands[len(cands)-1].node, outRows, i)
	}
	return cands, nil
}

// joinCandidates builds the plans joining best[rest] with table i along
// every connecting foreign-key edge: hash join (both orientations), merge
// join, and indexed nested loops with table i as the inner.
func (p *planner) joinCandidates(rest uint32, i int, best map[uint32][]candidate) ([]candidate, error) {
	m := p.opt.Ctx.Model
	bit := uint32(1) << uint(i)
	mask := rest | bit
	outRows, err := p.rowsOf(mask)
	if err != nil {
		return nil, err
	}
	// Conjuncts that span both sides become a post-join filter.
	var crossTerms []expr.Expr
	for _, c := range p.a.conjuncts {
		if c.mask&rest != 0 && c.mask&bit != 0 && c.mask&^mask == 0 {
			crossTerms = append(crossTerms, c.pred)
		}
	}
	crossPred := expr.Conj(crossTerms...)
	withCross := func(node engine.Node, joinOut float64, base float64) (engine.Node, float64) {
		if crossPred == nil {
			p.recordMask(node, outRows, mask)
			return node, base
		}
		p.recordMask(node, joinOut, mask)
		f := &engine.Filter{Input: node, Pred: crossPred}
		p.recordMask(f, outRows, mask)
		return f, base + joinOut*m.Tuple
	}

	var out []candidate
	for _, e := range p.a.edges {
		cb := uint32(1) << uint(e.child)
		pb := uint32(1) << uint(e.parent)
		if mask&cb == 0 || mask&pb == 0 {
			continue
		}
		iIsChild := e.child == i && rest&pb != 0
		iIsParent := e.parent == i && rest&cb != 0
		if !iIsChild && !iIsParent {
			continue
		}
		childRef := expr.ColumnRef{Table: p.a.tables[e.child], Column: e.fkCol}
		parentRef := expr.ColumnRef{Table: p.a.tables[e.parent], Column: e.pkCol}
		restRef, iRef := parentRef, childRef
		if iIsParent {
			restRef, iRef = childRef, parentRef
		}
		// joinOut before cross-side filters: approximate with outRows when
		// no cross terms exist, otherwise re-estimate without them.
		joinOut := outRows
		if crossPred != nil {
			var nonCross []expr.Expr
			for _, c := range p.a.conjuncts {
				if c.mask != 0 && c.mask&^mask == 0 && !(c.mask&rest != 0 && c.mask&bit != 0) {
					nonCross = append(nonCross, c.pred)
				}
			}
			if jo, err := p.estOf(mask, expr.Conj(nonCross...)); err == nil {
				if jo.hasRows {
					joinOut = jo.rows
				} else {
					root, rootErr := p.opt.Ctx.DB.Catalog.RootOf(p.a.tablesOf(mask))
					if rootErr == nil {
						if rt, ok := p.opt.Ctx.DB.Table(root); ok {
							joinOut = jo.sel * float64(rt.NumRows())
						}
					}
				}
			}
		}

		for _, cr := range best[rest] {
			for _, ct := range best[bit] {
				// Hash join, both build orientations.
				for _, orient := range []struct {
					build, probe       candidate
					buildCol, probeCol expr.ColumnRef
				}{
					{cr, ct, restRef, iRef},
					{ct, cr, iRef, restRef},
				} {
					node := &engine.HashJoin{
						Build:    orient.build.node,
						Probe:    orient.probe.node,
						BuildCol: orient.buildCol,
						ProbeCol: orient.probeCol,
						// The same posterior T-quantile row estimate that
						// priced the build pre-sizes its hash table at run
						// time.
						BuildRowsEst: orient.build.rows,
					}
					c := orient.build.cost + orient.probe.cost +
						orient.build.rows*m.HashBuild + orient.probe.rows*m.HashProbe +
						joinOut*m.Tuple
					n2, c2 := withCross(node, joinOut, c)
					out = append(out, candidate{node: n2, cost: c2, rows: outRows, ordered: orient.probe.ordered})
				}
				// Merge join.
				lSorted := cr.orderedBy(restRef)
				rSorted := ct.orderedBy(iRef)
				mjCost := cr.cost + ct.cost + (cr.rows+ct.rows)*m.Tuple + joinOut*m.Tuple
				if !lSorted {
					mjCost += cr.rows * m.SortTuple
				}
				if !rSorted {
					mjCost += ct.rows * m.SortTuple
				}
				mj := &engine.MergeJoin{
					Left: cr.node, Right: ct.node,
					LeftCol: restRef, RightCol: iRef,
					LeftSorted: lSorted, RightSorted: rSorted,
				}
				n2, c2 := withCross(mj, joinOut, mjCost)
				out = append(out, candidate{node: n2, cost: c2, rows: outRows, ordered: []expr.ColumnRef{restRef, iRef}})
			}

			// Indexed nested loops with i as the inner relation.
			iName := p.a.tables[i]
			iSchema, _ := p.opt.Ctx.DB.Catalog.Table(iName)
			iRowsF, _, err := p.tableRowsPages(i)
			if err != nil {
				return nil, err
			}
			residual := p.a.predOnly(i)
			if iIsParent {
				// Probe i's primary key: one clustered lookup per outer row.
				node := &engine.INLJoin{
					Outer:      cr.node,
					OuterCol:   restRef,
					InnerTable: iName,
					InnerCol:   e.pkCol,
					Residual:   residual,
				}
				c := cr.cost + cr.rows*(m.RandPage+m.Tuple) + joinOut*m.Tuple
				n2, c2 := withCross(node, joinOut, c)
				out = append(out, candidate{node: n2, cost: c2, rows: outRows, ordered: cr.ordered})
			} else if _, hasIx := iSchema.IndexOn(e.fkCol); hasIx {
				// Probe i's secondary foreign-key index.
				parentRows, _, err := p.tableRowsPages(e.parent)
				if err != nil {
					return nil, err
				}
				fanout := 1.0
				if parentRows > 0 {
					fanout = iRowsF / parentRows
				}
				matches := cr.rows * fanout
				node := &engine.INLJoin{
					Outer:      cr.node,
					OuterCol:   restRef,
					InnerTable: iName,
					InnerCol:   e.fkCol,
					Residual:   residual,
				}
				c := cr.cost + cr.rows*m.IndexSeek + matches*(m.IndexEntry+m.RandPage+m.Tuple) + joinOut*m.Tuple
				n2, c2 := withCross(node, joinOut, c)
				out = append(out, candidate{node: n2, cost: c2, rows: outRows, ordered: cr.ordered})
			}
		}
	}
	return out, nil
}

// starCandidates builds semijoin-intersection plans for subsets shaped as
// a star: one fact table directly referencing every other table in the
// subset through an indexed foreign key (Experiment 3's "sophisticated
// execution strategy involving semijoins").
func (p *planner) starCandidates(mask uint32, best map[uint32][]candidate) ([]candidate, error) {
	m := p.opt.Ctx.Model
	// Identify the fact: the unique table in mask that is a child on every
	// edge to the other masked tables.
	type dimInfo struct {
		idx   int
		fkCol string
		pkCol string
	}
	var cands []candidate
	for f := range p.a.tables {
		fBit := uint32(1) << uint(f)
		if mask&fBit == 0 {
			continue
		}
		fSchema, _ := p.opt.Ctx.DB.Catalog.Table(p.a.tables[f])
		var dims []dimInfo
		ok := true
		for d := range p.a.tables {
			dBit := uint32(1) << uint(d)
			if d == f || mask&dBit == 0 {
				continue
			}
			var edge *joinEdge
			for k := range p.a.edges {
				e := &p.a.edges[k]
				if e.child == f && e.parent == d {
					edge = e
					break
				}
			}
			if edge == nil {
				ok = false
				break
			}
			if _, hasIx := fSchema.IndexOn(edge.fkCol); !hasIx {
				ok = false
				break
			}
			dims = append(dims, dimInfo{idx: d, fkCol: edge.fkCol, pkCol: edge.pkCol})
		}
		if !ok || len(dims) == 0 {
			continue
		}
		factRows, _, err := p.tableRowsPages(f)
		if err != nil {
			return nil, err
		}
		totalCost := 0.0
		var starDims []engine.StarDim
		for _, d := range dims {
			dBit := uint32(1) << uint(d.idx)
			dimCands := best[dBit]
			if len(dimCands) == 0 {
				ok = false
				break
			}
			dc := dimCands[0]
			selDimRows, err := p.rowsOf(dBit)
			if err != nil {
				return nil, err
			}
			// Fraction of fact rows semijoining the selected dim rows.
			margSel, err := p.selOf(fBit|dBit, p.a.predOnly(d.idx))
			if err != nil {
				return nil, err
			}
			entries := factRows * margSel
			totalCost += dc.cost + selDimRows*m.IndexSeek + entries*(m.IndexEntry+m.Tuple)
			starDims = append(starDims, engine.StarDim{
				Scan:   dc.node,
				DimPK:  expr.ColumnRef{Table: p.a.tables[d.idx], Column: d.pkCol},
				FactFK: d.fkCol,
			})
		}
		if !ok {
			continue
		}
		// Joint fraction of fact rows surviving all dim semijoins — the
		// estimate where AVI and sampling part ways.
		var dimTerms []expr.Expr
		jointMask := fBit
		for _, d := range dims {
			jointMask |= 1 << uint(d.idx)
			if t := p.a.predOnly(d.idx); t != nil {
				dimTerms = append(dimTerms, t)
			}
		}
		joint, err := p.selOf(jointMask, expr.Conj(dimTerms...))
		if err != nil {
			return nil, err
		}
		totalCost += factRows * joint * (m.RandPage + m.Tuple)
		outRows, err := p.rowsOf(mask)
		if err != nil {
			return nil, err
		}
		// Residual: fact-local conjuncts and any cross-table conjuncts.
		var residualTerms []expr.Expr
		for _, c := range p.a.conjuncts {
			if c.mask == 0 || c.mask&^mask != 0 {
				continue
			}
			if c.mask&fBit != 0 || popcount(c.mask) > 1 {
				residualTerms = append(residualTerms, c.pred)
			}
		}
		var ordered []expr.ColumnRef
		for _, col := range fSchema.Ordered {
			ordered = append(ordered, expr.ColumnRef{Table: p.a.tables[f], Column: col})
		}
		cands = append(cands, candidate{
			node: &engine.StarSemiJoin{
				Fact:     p.a.tables[f],
				Dims:     starDims,
				Residual: expr.Conj(residualTerms...),
			},
			cost:    totalCost,
			rows:    outRows,
			ordered: ordered,
		})
		p.recordMask(cands[len(cands)-1].node, outRows, mask)
	}
	return cands, nil
}
