package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
)

// analyzeRun optimizes and executes one SPJ query under a Bayes estimator
// at threshold T and returns the deterministic EXPLAIN ANALYZE rendering
// (timings off) minus the final counters line.
func analyzeRun(t *testing.T, threshold float64, tr *obs.Trace) string {
	t.Helper()
	db, ctx := optDB(t, 2000, 10)
	set, err := sample.BuildAll(db, 200, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewBayesEstimator(set, core.ConfidenceThreshold(threshold))
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	o.Trace = tr
	q := &Query{
		Tables: []string{"lineitem", "orders"},
		Pred:   testkit.Expr("l_ship BETWEEN 100 AND 200 AND orders.o_total < 500"),
		Limit:  5,
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	inst := engine.InstrumentTrace(plan.Root, tr)
	var c cost.Counters
	if _, err := inst.Execute(ctx, &c); err != nil {
		t.Fatal(err)
	}
	return engine.ExplainAnalyze(inst, engine.AnalyzeOptions{EstimateOf: plan.EstimateOf})
}

// TestExplainAnalyzeSPJPinned is the issue's acceptance check: one SPJ
// query run at two confidence thresholds, with the full annotated plan
// tree — estimated rows, actual rows, Q-error, and T per operator —
// pinned byte-for-byte. Everything in the pipeline is seeded, so any
// drift in estimation, planning, or rendering shows up here.
func TestExplainAnalyzeSPJPinned(t *testing.T) {
	got50 := analyzeRun(t, 0.50, nil)
	want50 := "Limit(5)  (est=5.0 act=5 q=1.00 T=50% batches=1)\n" +
		"  MergeJoin(orders.o_orderkey = lineitem.l_orderkey)  (est=81.6 act=97 q=1.19 T=50% batches=1)\n" +
		"    SeqScan(orders, filter=(orders.o_total < 500))  (est=257.5 act=254 q=1.01 T=50% batches=1)\n" +
		"    SeqScan(lineitem, filter=(l_ship BETWEEN 100 AND 200))  (est=191.4 act=197 q=1.03 T=50% batches=2)\n"
	if got50 != want50 {
		t.Errorf("T=0.50 mismatch:\ngot:\n%s\nwant:\n%s", got50, want50)
	}
	// The higher threshold must yield visibly more conservative (larger)
	// estimates for the same observations: the robustness knob at work.
	got95 := analyzeRun(t, 0.95, nil)
	want95 := "Limit(5)  (est=5.0 act=5 q=1.00 T=95% batches=1)\n" +
		"  MergeJoin(orders.o_orderkey = lineitem.l_orderkey)  (est=135.8 act=97 q=1.40 T=95% batches=1)\n" +
		"    SeqScan(orders, filter=(orders.o_total < 500))  (est=286.4 act=254 q=1.13 T=95% batches=1)\n" +
		"    SeqScan(lineitem, filter=(l_ship BETWEEN 100 AND 200))  (est=266.8 act=197 q=1.35 T=95% batches=2)\n"
	if got95 != want95 {
		t.Errorf("T=0.95 mismatch:\ngot:\n%s\nwant:\n%s", got95, want95)
	}
}

// TestOptimizerPhaseSpans checks the optimizer emits the documented phase
// spans, properly nested, plus estimate spans for uncached estimator
// calls and operator spans for the instrumented execution.
func TestOptimizerPhaseSpans(t *testing.T) {
	tr := obs.NewTrace("spj")
	analyzeRun(t, 0.80, tr)
	recs := tr.Records()
	byName := map[string][]obs.SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = append(byName[r.Name], r)
	}
	for _, want := range []string{
		"optimize", "optimize/analyze", "optimize/access-paths",
		"optimize/join-enumeration", "optimize/finalize", "estimate",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("no %q span; got %d spans", want, len(recs))
		}
	}
	root := byName["optimize"][0]
	for _, phase := range []string{"optimize/analyze", "optimize/access-paths", "optimize/join-enumeration", "optimize/finalize"} {
		for _, r := range byName[phase] {
			if r.Parent != root.ID {
				t.Errorf("%s span parent = %d, want optimize (%d)", phase, r.Parent, root.ID)
			}
		}
	}
	if len(byName["estimate"]) == 0 || byName["estimate"][0].Attrs["tables"] == "" {
		t.Error("estimate spans missing tables attribute")
	}
	// Operator spans from the instrumented execution ride the same trace.
	opSpans := 0
	for _, r := range recs {
		if strings.HasPrefix(r.Name, "op:") {
			opSpans++
		}
	}
	if opSpans == 0 {
		t.Error("no operator spans recorded")
	}
}
