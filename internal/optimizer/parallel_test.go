package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/obs"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
)

func bayesOpt(t *testing.T, nLines int, threshold float64) (*Optimizer, *Query) {
	t.Helper()
	db, ctx := optDB(t, nLines, 40)
	set, err := sample.BuildAll(db, 200, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewBayesEstimator(set, core.ConfidenceThreshold(threshold))
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Tables: []string{"lineitem", "orders"},
		Pred:   testkit.Expr("l_ship BETWEEN 0 AND 900 AND orders.o_total < 800"),
	}
	return o, q
}

// TestParallelizeWrapsLargeScan checks the DOP decision end to end: over
// a table past the cutoff the optimizer wraps the scan in an Exchange at
// MaxDOP, and the parallel plan still returns exactly the serial plan's
// rows and counters.
func TestParallelizeWrapsLargeScan(t *testing.T) {
	o, q := bayesOpt(t, 24000, 0.8)
	serialPlan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	o.MaxDOP = 4
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "Exchange(dop=4") {
		t.Fatalf("no Exchange in parallel plan:\n%s", plan.Explain())
	}
	if strings.Contains(serialPlan.Explain(), "Exchange") {
		t.Fatalf("Exchange in serial plan:\n%s", serialPlan.Explain())
	}
	var sc, pc cost.Counters
	sres, err := serialPlan.Root.Execute(o.Ctx, &sc)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := plan.Root.Execute(o.Ctx, &pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Rows) != len(pres.Rows) {
		t.Fatalf("serial %d rows, parallel %d", len(sres.Rows), len(pres.Rows))
	}
	if sc != pc {
		t.Fatalf("counters diverged:\nserial   %+v\nparallel %+v", sc, pc)
	}
}

// TestParallelizeKeepsSmallScansSerial: below the cardinality cutoff the
// fan-out cost isn't worth paying, so even at MaxDOP=4 the plan stays
// serial.
func TestParallelizeKeepsSmallScansSerial(t *testing.T) {
	o, q := bayesOpt(t, 2000, 0.8)
	o.MaxDOP = 4
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "Exchange") {
		t.Fatalf("small scans were parallelized:\n%s", plan.Explain())
	}
}

// TestOptimizerCacheMetrics checks the satellite fix: selectivity-cache
// hits surface as span-free metric increments, and the estimator's
// posterior-quantile cache totals are mirrored into the registry. The
// second Optimize of the same query must be all quantile hits — the
// memoization that makes repeated enumeration cheap.
func TestOptimizerCacheMetrics(t *testing.T) {
	o, q := bayesOpt(t, 2000, 0.8)
	reg := obs.NewRegistry()
	o.Metrics = reg
	if _, err := o.Optimize(q); err != nil {
		t.Fatal(err)
	}
	misses0 := reg.Counter("robustqo_quantile_cache_misses_total").Value()
	if misses0 == 0 {
		t.Fatal("no quantile-cache misses recorded on a cold cache")
	}
	if reg.Counter("robustqo_estimate_cache_misses_total").Value() == 0 {
		t.Fatal("no estimate-cache misses recorded")
	}
	tr := obs.NewTrace("requery")
	o.Trace = tr
	if _, err := o.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("robustqo_quantile_cache_hits_total").Value(); hits == 0 {
		t.Fatal("re-optimizing the same query produced no quantile-cache hits")
	}
	if misses := reg.Counter("robustqo_quantile_cache_misses_total").Value(); misses != misses0 {
		t.Fatalf("re-optimizing recomputed quantiles: misses %d -> %d", misses0, misses)
	}
	// The re-run answered repeated selectivity lookups from cache; those
	// hits must not have spawned estimate spans (the trace balloon fix) —
	// spans stay proportional to uncached estimator calls.
	estSpans := 0
	for _, r := range tr.Records() {
		if r.Name == "estimate" {
			estSpans++
		}
	}
	hits := reg.Counter("robustqo_estimate_cache_hits_total").Value()
	if hits == 0 {
		t.Fatal("no estimate-cache hits recorded")
	}
	if int64(estSpans) >= hits+reg.Counter("robustqo_estimate_cache_misses_total").Value() {
		t.Fatalf("estimate spans (%d) not reduced by caching", estSpans)
	}
}
