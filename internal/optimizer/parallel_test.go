package optimizer

import (
	"strings"
	"testing"

	"robustqo/internal/core"
	"robustqo/internal/cost"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/obs"
	"robustqo/internal/sample"
	"robustqo/internal/stats"
	"robustqo/internal/testkit"
)

func bayesOpt(t *testing.T, nLines int, threshold float64) (*Optimizer, *Query) {
	t.Helper()
	db, ctx := optDB(t, nLines, 40)
	set, err := sample.BuildAll(db, 200, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewBayesEstimator(set, core.ConfidenceThreshold(threshold))
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(ctx, est)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Tables: []string{"lineitem", "orders"},
		Pred:   testkit.Expr("l_ship BETWEEN 0 AND 900 AND orders.o_total < 800"),
	}
	return o, q
}

// TestParallelizeWrapsLargeScan checks the DOP decision end to end: over
// a table past the cutoff the optimizer wraps the scan in an Exchange at
// MaxDOP, and the parallel plan still returns exactly the serial plan's
// rows and counters.
func TestParallelizeWrapsLargeScan(t *testing.T) {
	o, q := bayesOpt(t, 24000, 0.8)
	serialPlan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	o.MaxDOP = 4
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "Exchange(dop=4") {
		t.Fatalf("no Exchange in parallel plan:\n%s", plan.Explain())
	}
	if strings.Contains(serialPlan.Explain(), "Exchange") {
		t.Fatalf("Exchange in serial plan:\n%s", serialPlan.Explain())
	}
	var sc, pc cost.Counters
	sres, err := serialPlan.Root.Execute(o.Ctx, &sc)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := plan.Root.Execute(o.Ctx, &pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Rows) != len(pres.Rows) {
		t.Fatalf("serial %d rows, parallel %d", len(sres.Rows), len(pres.Rows))
	}
	if sc != pc {
		t.Fatalf("counters diverged:\nserial   %+v\nparallel %+v", sc, pc)
	}
}

// TestParallelizeKeepsSmallScansSerial: below the cardinality cutoff the
// fan-out cost isn't worth paying, so even at MaxDOP=4 the plan stays
// serial.
func TestParallelizeKeepsSmallScansSerial(t *testing.T) {
	o, q := bayesOpt(t, 2000, 0.8)
	o.MaxDOP = 4
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "Exchange") {
		t.Fatalf("small scans were parallelized:\n%s", plan.Explain())
	}
}

// TestOptimizerCacheMetrics checks the satellite fix: selectivity-cache
// hits surface as span-free metric increments, and the estimator's
// posterior-quantile cache totals are mirrored into the registry. The
// second Optimize of the same query must be all quantile hits — the
// memoization that makes repeated enumeration cheap.
func TestOptimizerCacheMetrics(t *testing.T) {
	o, q := bayesOpt(t, 2000, 0.8)
	reg := obs.NewRegistry()
	o.Metrics = reg
	if _, err := o.Optimize(q); err != nil {
		t.Fatal(err)
	}
	misses0 := reg.Counter("robustqo_quantile_cache_misses_total").Value()
	if misses0 == 0 {
		t.Fatal("no quantile-cache misses recorded on a cold cache")
	}
	if reg.Counter("robustqo_estimate_cache_misses_total").Value() == 0 {
		t.Fatal("no estimate-cache misses recorded")
	}
	tr := obs.NewTrace("requery")
	o.Trace = tr
	if _, err := o.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("robustqo_quantile_cache_hits_total").Value(); hits == 0 {
		t.Fatal("re-optimizing the same query produced no quantile-cache hits")
	}
	if misses := reg.Counter("robustqo_quantile_cache_misses_total").Value(); misses != misses0 {
		t.Fatalf("re-optimizing recomputed quantiles: misses %d -> %d", misses0, misses)
	}
	// The re-run answered repeated selectivity lookups from cache; those
	// hits must not have spawned estimate spans (the trace balloon fix) —
	// spans stay proportional to uncached estimator calls.
	estSpans := 0
	for _, r := range tr.Records() {
		if r.Name == "estimate" {
			estSpans++
		}
	}
	hits := reg.Counter("robustqo_estimate_cache_hits_total").Value()
	if hits == 0 {
		t.Fatal("no estimate-cache hits recorded")
	}
	if int64(estSpans) >= hits+reg.Counter("robustqo_estimate_cache_misses_total").Value() {
		t.Fatalf("estimate spans (%d) not reduced by caching", estSpans)
	}
}

// TestParallelizeWrapsJoinPipeline is a unit test of the post-pass over a
// hand-built multi-way join: an eligible probe chain gets exactly one
// Exchange around the whole pipeline — no inner Exchanges along the chain
// — and the wrapped plan reproduces the serial rows and counters.
func TestParallelizeWrapsJoinPipeline(t *testing.T) {
	o, _ := bayesOpt(t, 24000, 0.8)
	o.MaxDOP = 4
	col := func(tab, c string) expr.ColumnRef { return expr.ColumnRef{Table: tab, Column: c} }
	mkPlan := func() *engine.HashJoin {
		inner := &engine.HashJoin{
			Build:    &engine.SeqScan{Table: "orders"},
			Probe:    &engine.SeqScan{Table: "lineitem"},
			BuildCol: col("orders", "o_orderkey"),
			ProbeCol: col("lineitem", "l_orderkey"),
		}
		return &engine.HashJoin{
			Build:    &engine.SeqScan{Table: "part"},
			Probe:    inner,
			BuildCol: col("part", "p_partkey"),
			ProbeCol: col("lineitem", "l_partkey"),
		}
	}
	p := &planner{opt: o, estimates: make(map[engine.Node]obs.EstimateSnapshot)}
	outer := mkPlan()
	got := p.parallelize(outer)
	ex, ok := got.(*engine.Exchange)
	if !ok {
		t.Fatalf("eligible join pipeline not wrapped: %T", got)
	}
	if ex.DOP != 4 || ex.Source != engine.Node(outer) {
		t.Fatalf("Exchange wraps %T at dop=%d, want the outer join at 4", ex.Source, ex.DOP)
	}
	if strings.Contains(engine.Explain(outer), "Exchange") {
		t.Fatalf("inner Exchange inside the wrapped pipeline:\n%s", engine.Explain(outer))
	}
	var sc, pc cost.Counters
	sres, err := mkPlan().Execute(o.Ctx, &sc)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := got.Execute(o.Ctx, &pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Rows) != len(pres.Rows) {
		t.Fatalf("serial %d rows, parallel %d", len(sres.Rows), len(pres.Rows))
	}
	if sc != pc {
		t.Fatalf("counters diverged:\nserial   %+v\nparallel %+v", sc, pc)
	}
}

// TestParallelizeKeepsSmallJoinSerial: a probe chain ending in a scan
// below the cutoff stays serial even at MaxDOP=4.
func TestParallelizeKeepsSmallJoinSerial(t *testing.T) {
	o, _ := bayesOpt(t, 2000, 0.8)
	o.MaxDOP = 4
	p := &planner{opt: o, estimates: make(map[engine.Node]obs.EstimateSnapshot)}
	hj := &engine.HashJoin{
		Build:    &engine.SeqScan{Table: "orders"},
		Probe:    &engine.SeqScan{Table: "lineitem"},
		BuildCol: expr.ColumnRef{Table: "orders", Column: "o_orderkey"},
		ProbeCol: expr.ColumnRef{Table: "lineitem", Column: "l_orderkey"},
	}
	if got := p.parallelize(hj); got != engine.Node(hj) {
		t.Fatalf("small join pipeline was wrapped: %T", got)
	}
}

// TestOptimizedHashJoinsCarryBuildEstimate: every HashJoin the optimizer
// emits records the posterior build-cardinality estimate that priced it,
// so the engine can pre-size the hash table — and at MaxDOP=4 the whole
// scan→hashjoin pipeline lands under one Exchange.
func TestOptimizedHashJoinsCarryBuildEstimate(t *testing.T) {
	o, _ := bayesOpt(t, 24000, 0.8)
	// part⋈lineitem on l_partkey: lineitem is not ordered by the join key,
	// so the sort-free merge join is not available and hash join wins.
	q := &Query{
		Tables: []string{"lineitem", "part"},
		Pred:   testkit.Expr("p_size < 40"),
	}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	o.MaxDOP = 4
	pplan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pplan.Explain(), "Exchange(dop=4, HashJoin") {
		t.Fatalf("join pipeline not wrapped at MaxDOP=4:\n%s", pplan.Explain())
	}
	found := 0
	var walk func(n engine.Node)
	walk = func(n engine.Node) {
		if hj, ok := n.(*engine.HashJoin); ok {
			found++
			if hj.BuildRowsEst <= 0 {
				t.Errorf("HashJoin %s has BuildRowsEst %g, want > 0", hj.Describe(), hj.BuildRowsEst)
			}
		}
		for _, k := range planKids(n) {
			walk(k)
		}
	}
	walk(plan.Root)
	if found == 0 {
		t.Fatalf("winning plan uses no hash join:\n%s", plan.Explain())
	}
}

// planKids enumerates the children of the node kinds the optimizer emits.
func planKids(n engine.Node) []engine.Node {
	switch t := n.(type) {
	case *engine.Filter:
		return []engine.Node{t.Input}
	case *engine.Project:
		return []engine.Node{t.Input}
	case *engine.Aggregate:
		return []engine.Node{t.Input}
	case *engine.Sort:
		return []engine.Node{t.Input}
	case *engine.Limit:
		return []engine.Node{t.Input}
	case *engine.Exchange:
		return []engine.Node{t.Source}
	case *engine.HashJoin:
		return []engine.Node{t.Build, t.Probe}
	case *engine.MergeJoin:
		return []engine.Node{t.Left, t.Right}
	case *engine.INLJoin:
		return []engine.Node{t.Outer}
	case *engine.StarSemiJoin:
		out := make([]engine.Node, 0, len(t.Dims))
		for _, d := range t.Dims {
			out = append(out, d.Scan)
		}
		return out
	}
	return nil
}
