package optimizer

import (
	"sync"

	"robustqo/internal/core"
	"robustqo/internal/engine"
	"robustqo/internal/obs"
	"robustqo/internal/storage"
)

// scanRowsExact is the exact row count a sequential scan will read: the
// whole table, or the surviving shards after partition pruning.
func scanRowsExact(tab *storage.Table, parts []int) int {
	if parts == nil {
		return tab.NumRows()
	}
	n := 0
	for _, p := range parts {
		n += tab.PartitionRows(p)
	}
	return n
}

// DefaultParallelCutoff is the cardinality below which a scan stays
// serial. Fan-out has a fixed price — worker binding, channel traffic,
// the merge barrier — so parallelism only pays once a scan moves enough
// rows; the decision stays inside the paper's framework by comparing the
// same confidence-threshold cardinality estimates the rest of the plan
// search uses (see parallelize).
const DefaultParallelCutoff = 20000

// parallelize wraps the winning plan's eligible scans in Exchange
// operators at the optimizer's MaxDOP. Interior nodes are mutated in
// place — the estimates map is keyed by node pointer, and EXPLAIN
// ANALYZE must keep resolving the original nodes.
//
// Eligibility is per scan kind: a SeqScan's work is the table's full row
// count, which is known exactly; the RID-list scans are gated on the
// optimizer's cardinality estimate for the node, which under the robust
// estimator is the posterior quantile at the query's confidence
// threshold T. A higher T therefore both picks safer plans and
// parallelizes them sooner — the same knob governs both decisions.
func (p *planner) parallelize(n engine.Node) engine.Node {
	switch t := n.(type) {
	case *engine.Filter:
		t.Input = p.parallelize(t.Input)
	case *engine.Project:
		t.Input = p.parallelize(t.Input)
	case *engine.Aggregate:
		t.Input = p.parallelize(t.Input)
	case *engine.Sort:
		t.Input = p.parallelize(t.Input)
	case *engine.Limit:
		t.Input = p.parallelize(t.Input)
	case *engine.HashJoin:
		t.Build = p.parallelize(t.Build)
		if p.probeChainEligible(t.Probe) {
			// Wrap the whole scan→hashjoin pipeline in one Exchange: the
			// engine morselizes the probe chain itself, so inner Exchanges
			// along it would only add pointless merge barriers. Build sides
			// hanging off the chain still parallelize independently.
			for pr := t.Probe; ; {
				hj, ok := pr.(*engine.HashJoin)
				if !ok {
					break
				}
				hj.Build = p.parallelize(hj.Build)
				pr = hj.Probe
			}
			return p.wrapExchange(t)
		}
		t.Probe = p.parallelize(t.Probe)
	case *engine.MergeJoin:
		t.Left = p.parallelize(t.Left)
		t.Right = p.parallelize(t.Right)
	case *engine.INLJoin:
		t.Outer = p.parallelize(t.Outer)
	case *engine.StarSemiJoin:
		for i := range t.Dims {
			t.Dims[i].Scan = p.parallelize(t.Dims[i].Scan)
		}
	case *engine.SeqScan:
		if tab, ok := p.opt.Ctx.DB.Table(t.Table); ok && scanRowsExact(tab, t.Partitions) >= DefaultParallelCutoff {
			return p.wrapExchange(n)
		}
	case *engine.IndexRangeScan:
		if est, ok := p.estimates[n]; ok && est.Rows >= DefaultParallelCutoff {
			return p.wrapExchange(n)
		}
	case *engine.IndexIntersect:
		if est, ok := p.estimates[n]; ok && est.Rows >= DefaultParallelCutoff {
			return p.wrapExchange(n)
		}
	}
	return n
}

// probeChainEligible reports whether a HashJoin probe side is worth
// running through the Exchange worker pool: a chain of hash joins ending
// in a scan that clears the parallel cutoff, judged by the same
// estimates that gate standalone scans — exact row counts for SeqScan,
// the posterior T-quantile estimate for the RID-list scans.
func (p *planner) probeChainEligible(n engine.Node) bool {
	switch t := n.(type) {
	case *engine.SeqScan:
		tab, ok := p.opt.Ctx.DB.Table(t.Table)
		return ok && scanRowsExact(tab, t.Partitions) >= DefaultParallelCutoff
	case *engine.IndexRangeScan, *engine.IndexIntersect:
		est, ok := p.estimates[n]
		return ok && est.Rows >= DefaultParallelCutoff
	case *engine.HashJoin:
		return p.probeChainEligible(t.Probe)
	}
	return false
}

func (p *planner) wrapExchange(n engine.Node) engine.Node {
	ex := &engine.Exchange{Source: n, DOP: p.opt.MaxDOP, Trace: p.opt.Trace}
	// The Exchange inherits the scan's cardinality belief so EXPLAIN
	// ANALYZE can report est/act for it too.
	if est, ok := p.estimates[n]; ok {
		p.estimates[ex] = est
	}
	return ex
}

// quantileCacheOf unwraps the estimator (through Chain) to its posterior
// quantile cache, when it has one.
func quantileCacheOf(est core.Estimator) *core.QuantileCache {
	switch e := est.(type) {
	case *core.BayesEstimator:
		return e.Quantiles
	case *core.Chain:
		for _, sub := range e.Estimators {
			if c := quantileCacheOf(sub); c != nil {
				return c
			}
		}
	}
	return nil
}

// quantExportMu serializes the read-reconcile-add below so concurrent
// queries exporting the same cache cannot double count.
var quantExportMu sync.Mutex

// exportQuantileCache reconciles the registry's quantile-cache counters
// with the cache's cumulative totals. The cache is shared across queries
// (and across WithThreshold copies), so the counters mirror its absolute
// hit/miss counts rather than adding per-query deltas; the export is
// idempotent and safe under concurrent serving. It assumes one cache per
// registry — true for both the CLI and a serve process.
func exportQuantileCache(reg *obs.Registry, qc *core.QuantileCache) {
	if reg == nil || qc == nil {
		return
	}
	hits, misses := qc.Stats()
	quantExportMu.Lock()
	defer quantExportMu.Unlock()
	hc := reg.Counter("robustqo_quantile_cache_hits_total")
	if d := hits - hc.Value(); d > 0 {
		hc.Add(d)
	}
	mc := reg.Counter("robustqo_quantile_cache_misses_total")
	if d := misses - mc.Value(); d > 0 {
		mc.Add(d)
	}
}
