package obs

// Query-lifecycle observability: stable query IDs, a structured JSON
// event log, an in-flight registry with progress estimates, and a
// bounded slow-query log. Everything here follows the package's
// determinism discipline — no wall clock is read directly; callers that
// want wall timestamps inject a Now function (the serve path does, the
// deterministic test paths do not).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryPhase is where a query currently is in its lifecycle.
type QueryPhase int32

// The lifecycle phases, in order.
const (
	PhaseReceived QueryPhase = iota
	PhaseParse
	PhaseOptimize
	PhaseExecute
	PhaseDone
	PhaseFailed
)

// String implements fmt.Stringer.
func (p QueryPhase) String() string {
	switch p {
	case PhaseReceived:
		return "received"
	case PhaseParse:
		return "parse"
	case PhaseOptimize:
		return "optimize"
	case PhaseExecute:
		return "execute"
	case PhaseDone:
		return "done"
	case PhaseFailed:
		return "failed"
	default:
		return fmt.Sprintf("phase(%d)", int32(p))
	}
}

// Event is one structured query-lifecycle record: a JSON line in the
// event log. Zero-valued optional fields are omitted from the output.
type Event struct {
	Seq     uint64  `json:"seq"`
	QueryID string  `json:"qid"`
	Event   string  `json:"event"`
	SQL     string  `json:"sql,omitempty"`
	T       float64 `json:"t,omitempty"`        // confidence threshold the plan used
	DOP     int     `json:"dop,omitempty"`      // degree of parallelism chosen
	EstRows float64 `json:"est_rows,omitempty"` // posterior cardinality of the root
	Rows    int64   `json:"rows,omitempty"`
	// PartsPruned/PartsTotal describe partition pruning of the plan's
	// widest pruned scan.
	PartsPruned int    `json:"parts_pruned,omitempty"`
	PartsTotal  int    `json:"parts_total,omitempty"`
	ElapsedUS   int64  `json:"elapsed_us,omitempty"`
	WallUS      int64  `json:"wall_us,omitempty"` // absolute, only when a clock is injected
	Detail      string `json:"detail,omitempty"`
}

// EventLog writes query-lifecycle events as JSON lines to a writer,
// assigning a monotone sequence number per event. A nil *EventLog is a
// valid no-op sink. Emit is safe for concurrent use; lines are written
// atomically under the log's lock.
type EventLog struct {
	// Now, when non-nil, timestamps events with absolute wall
	// microseconds. Nil keeps the log deterministic (sequence only).
	Now func() time.Time

	mu  sync.Mutex
	w   io.Writer
	seq uint64
	err error
}

// NewEventLog returns an event log writing JSON lines to w.
func NewEventLog(w io.Writer) *EventLog { return &EventLog{w: w} }

// Emit assigns the next sequence number and writes the event as one JSON
// line. Write errors are sticky and returned from Err; emission itself
// never fails the query path.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if l.Now != nil {
		e.WallUS = l.Now().UnixMicro()
	}
	raw, err := json.Marshal(e)
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return
	}
	if _, err := l.w.Write(append(raw, '\n')); err != nil && l.err == nil {
		l.err = err
	}
}

// Err returns the first write or encode error, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// QueryLive is the shared mutable state of one in-flight query. The
// engine's instrumentation adds produced rows from the query goroutine
// while /debug/queries reads concurrently, so the hot fields are
// atomics; the identity fields are fixed at Begin and the plan fields
// are set once, before execution starts.
type QueryLive struct {
	ID  string
	SQL string

	// Plan facts, set by StartExecute before any AddRows call.
	T           float64
	DOP         int
	EstRows     float64
	PartsPruned int
	PartsTotal  int

	phase atomic.Int32
	rows  atomic.Int64
}

// SetPhase moves the query to a lifecycle phase.
func (q *QueryLive) SetPhase(p QueryPhase) {
	if q == nil {
		return
	}
	q.phase.Store(int32(p))
}

// Phase returns the current lifecycle phase.
func (q *QueryLive) Phase() QueryPhase {
	if q == nil {
		return PhaseReceived
	}
	return QueryPhase(q.phase.Load())
}

// AddRows records rows produced by the executing plan's root. Nil-safe,
// so the engine's hot path needs no conditional.
func (q *QueryLive) AddRows(n int64) {
	if q == nil {
		return
	}
	q.rows.Add(n)
}

// Rows returns the rows produced so far.
func (q *QueryLive) Rows() int64 {
	if q == nil {
		return 0
	}
	return q.rows.Load()
}

// Progress estimates completion as produced rows over the posterior
// cardinality estimate of the plan root, clamped to [0, 1]. Before the
// plan exists (no estimate yet) it reports 0; a finished query reports 1
// regardless of how wrong the estimate was. Because the denominator is
// the T-quantile of the posterior, a progress bar stuck below 1.0 for a
// long time is itself cardinality feedback: the plan is producing more
// rows than the posterior predicted at confidence T.
func (q *QueryLive) Progress() float64 {
	if q == nil {
		return 0
	}
	if QueryPhase(q.phase.Load()) == PhaseDone {
		return 1
	}
	if q.EstRows <= 0 {
		return 0
	}
	p := float64(q.rows.Load()) / q.EstRows
	if p > 1 {
		p = 1
	}
	return p
}

// QueryView is an immutable snapshot of one in-flight query for
// rendering.
type QueryView struct {
	ID          string
	SQL         string
	Phase       string
	T           float64
	DOP         int
	EstRows     float64
	Rows        int64
	Progress    float64
	PartsPruned int
	PartsTotal  int
}

// ActiveQueries tracks in-flight queries and issues stable query IDs
// (q1, q2, ... in arrival order). All methods are safe for concurrent
// use and nil-tolerant.
type ActiveQueries struct {
	mu     sync.Mutex
	nextID uint64
	live   map[string]*QueryLive
}

// NewActiveQueries returns an empty registry.
func NewActiveQueries() *ActiveQueries {
	return &ActiveQueries{live: make(map[string]*QueryLive)}
}

// Begin registers a new query and returns its live handle with a fresh
// stable ID. On a nil registry it still returns a usable handle (with an
// empty ID) so callers need no branches.
func (a *ActiveQueries) Begin(sql string) *QueryLive {
	if a == nil {
		return &QueryLive{SQL: sql}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	q := &QueryLive{ID: fmt.Sprintf("q%d", a.nextID), SQL: sql}
	a.live[q.ID] = q
	return q
}

// Done unregisters a finished query.
func (a *ActiveQueries) Done(q *QueryLive) {
	if a == nil || q == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.live, q.ID)
}

// Snapshot returns the in-flight queries ordered by ID issue order.
func (a *ActiveQueries) Snapshot() []QueryView {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	qs := make([]*QueryLive, 0, len(a.live))
	for _, q := range a.live {
		qs = append(qs, q)
	}
	a.mu.Unlock()
	// IDs are q<n>; sort numerically by length-then-lexical, which orders
	// q2 before q10 without parsing.
	sort.Slice(qs, func(i, j int) bool {
		if len(qs[i].ID) != len(qs[j].ID) {
			return len(qs[i].ID) < len(qs[j].ID)
		}
		return qs[i].ID < qs[j].ID
	})
	out := make([]QueryView, len(qs))
	for i, q := range qs {
		out[i] = QueryView{
			ID: q.ID, SQL: q.SQL, Phase: q.Phase().String(),
			T: q.T, DOP: q.DOP, EstRows: q.EstRows,
			Rows: q.Rows(), Progress: q.Progress(),
			PartsPruned: q.PartsPruned, PartsTotal: q.PartsTotal,
		}
	}
	return out
}

// SlowQuery is one captured slow execution: identity, latency, and the
// full EXPLAIN ANALYZE rendering at capture time.
type SlowQuery struct {
	QueryID   string `json:"qid"`
	SQL       string `json:"sql"`
	ElapsedUS int64  `json:"elapsed_us"`
	Analyze   string `json:"analyze"`
}

// SlowLog keeps the most recent slow queries in a bounded ring and
// optionally mirrors each capture as a JSON line to a writer. A nil
// *SlowLog is a valid no-op sink.
type SlowLog struct {
	mu   sync.Mutex
	w    io.Writer // optional mirror
	ring []SlowQuery
	max  int
	err  error
}

// NewSlowLog returns a slow log retaining the last max captures
// (max < 1 selects 32) and mirroring JSON lines to w when w is non-nil.
func NewSlowLog(max int, w io.Writer) *SlowLog {
	if max < 1 {
		max = 32
	}
	return &SlowLog{max: max, w: w}
}

// Record captures one slow query.
func (l *SlowLog) Record(q SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring = append(l.ring, q)
	if len(l.ring) > l.max {
		l.ring = l.ring[len(l.ring)-l.max:]
	}
	if l.w == nil {
		return
	}
	raw, err := json.Marshal(q)
	if err != nil {
		if l.err == nil {
			l.err = err
		}
		return
	}
	if _, err := l.w.Write(append(raw, '\n')); err != nil && l.err == nil {
		l.err = err
	}
}

// Recent returns the retained captures, oldest first.
func (l *SlowLog) Recent() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SlowQuery(nil), l.ring...)
}

// Err returns the first mirror-write error, if any.
func (l *SlowLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
