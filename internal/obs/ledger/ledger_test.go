package ledger

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"robustqo/internal/obs"
)

func TestAppendAccumulates(t *testing.T) {
	l := New(0)
	fp := "lineitem|l_shipdate between b10..b10"
	l.Append(Observation{Fingerprint: fp, Table: "lineitem", EstRows: 100, ActualRows: 50, Percentile: 0.8})
	l.Append(Observation{Fingerprint: fp, Table: "lineitem", EstRows: 80, ActualRows: 400, Percentile: 0.8})
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	es := l.Snapshot()
	e := es[0]
	if e.Count != 2 || e.FirstOrdinal != 1 || e.LastOrdinal != 2 {
		t.Fatalf("entry counts/ordinals wrong: %+v", e)
	}
	if e.LastEstRows != 80 || e.LastActual != 400 || e.LastPercentil != 0.8 {
		t.Fatalf("last fields wrong: %+v", e)
	}
	if e.MaxQError != 5 { // 400/80
		t.Fatalf("MaxQError = %g, want 5", e.MaxQError)
	}
	if e.OverCount != 1 || e.UnderCnt != 1 {
		t.Fatalf("over/under = %d/%d, want 1/1", e.OverCount, e.UnderCnt)
	}
	wantGeo := math.Sqrt(2 * 5) // geomean of q=2 and q=5
	if math.Abs(e.GeoMeanQError()-wantGeo) > 1e-12 {
		t.Fatalf("GeoMeanQError = %g, want %g", e.GeoMeanQError(), wantGeo)
	}
}

func TestEmptyFingerprintIgnored(t *testing.T) {
	l := New(0)
	l.Append(Observation{Table: "lineitem", EstRows: 10, ActualRows: 10})
	if l.Len() != 0 || l.Ordinal() != 0 {
		t.Fatalf("empty fingerprint was recorded: len=%d ord=%d", l.Len(), l.Ordinal())
	}
}

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Append(Observation{Fingerprint: "x", EstRows: 1, ActualRows: 1})
	if l.Len() != 0 || l.Dropped() != 0 || l.Ordinal() != 0 || l.Snapshot() != nil {
		t.Fatal("nil ledger must be inert")
	}
	if got := l.TopQError(3); len(got) != 0 {
		t.Fatalf("nil TopQError returned %d entries", len(got))
	}
}

func TestBoundDropsNewFingerprints(t *testing.T) {
	l := New(2)
	l.Append(Observation{Fingerprint: "a", Table: "t", EstRows: 1, ActualRows: 10})
	l.Append(Observation{Fingerprint: "b", Table: "t", EstRows: 1, ActualRows: 10})
	l.Append(Observation{Fingerprint: "c", Table: "t", EstRows: 1, ActualRows: 10})
	l.Append(Observation{Fingerprint: "a", Table: "t", EstRows: 1, ActualRows: 10})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if l.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped())
	}
	// Existing fingerprints still accumulate while full.
	for _, e := range l.Snapshot() {
		if e.Fingerprint == "a" && e.Count != 2 {
			t.Fatalf("entry a count = %d, want 2", e.Count)
		}
	}
}

func TestTopQErrorOrdering(t *testing.T) {
	l := New(0)
	l.Append(Observation{Fingerprint: "mid", Table: "t", EstRows: 10, ActualRows: 100})  // q=10
	l.Append(Observation{Fingerprint: "low", Table: "t", EstRows: 10, ActualRows: 20})   // q=2
	l.Append(Observation{Fingerprint: "high", Table: "t", EstRows: 10, ActualRows: 990}) // q=99
	l.Append(Observation{Fingerprint: "tie", Table: "t", EstRows: 10, ActualRows: 100})  // q=10
	top := l.TopQError(3)
	got := make([]string, len(top))
	for i, e := range top {
		got[i] = e.Fingerprint
	}
	want := "high,mid,tie"
	if strings.Join(got, ",") != want {
		t.Fatalf("TopQError order = %v, want %s", got, want)
	}
	if all := l.TopQError(0); len(all) != 4 {
		t.Fatalf("TopQError(0) = %d entries, want all 4", len(all))
	}
}

func TestDriftPerTable(t *testing.T) {
	l := New(0)
	l.Append(Observation{Fingerprint: "a", Table: "lineitem", EstRows: 10, ActualRows: 40}) // under, q=4
	l.Append(Observation{Fingerprint: "a", Table: "lineitem", EstRows: 40, ActualRows: 10}) // over, q=4
	l.Append(Observation{Fingerprint: "b", Table: "orders", EstRows: 9, ActualRows: 9})     // exact, q=1
	ds := l.Drift()
	if len(ds) != 2 || ds[0].Table != "lineitem" || ds[1].Table != "orders" {
		t.Fatalf("Drift tables = %+v", ds)
	}
	li := ds[0]
	if li.Fingerprints != 1 || li.Count != 2 || li.OverCount != 1 || li.UnderCount != 1 || li.MaxQ != 4 {
		t.Fatalf("lineitem drift = %+v", li)
	}
	if math.Abs(li.GeoMeanQ-4) > 1e-12 {
		t.Fatalf("lineitem geomean = %g, want 4", li.GeoMeanQ)
	}
	if ds[1].GeoMeanQ != 1 || ds[1].MaxQ != 1 {
		t.Fatalf("orders drift = %+v", ds[1])
	}
}

func TestMetricsExport(t *testing.T) {
	reg := obs.NewRegistry()
	l := New(1)
	l.Metrics = reg
	l.Append(Observation{Fingerprint: "a", Table: "t", EstRows: 10, ActualRows: 20})
	l.Append(Observation{Fingerprint: "b", Table: "t", EstRows: 10, ActualRows: 20}) // dropped: full
	if got := reg.Counter("robustqo_ledger_appends_total").Value(); got != 1 {
		t.Fatalf("appends_total = %d, want 1", got)
	}
	if got := reg.Counter("robustqo_ledger_dropped_total").Value(); got != 1 {
		t.Fatalf("dropped_total = %d, want 1", got)
	}
	if got := reg.Histogram("robustqo_ledger_qerror", obs.QErrorBuckets).Count(); got != 1 {
		t.Fatalf("qerror count = %d, want 1", got)
	}
}

// TestConcurrentAppend exercises the lock under -race and checks the
// ordinal accounts every successful append exactly once.
func TestConcurrentAppend(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(Observation{
					Fingerprint: fmt.Sprintf("fp-%d", i%32),
					Table:       "t",
					EstRows:     float64(i + 1),
					ActualRows:  int64(w + 1),
				})
			}
		}(w)
	}
	wg.Wait()
	if got := l.Ordinal(); got != workers*per {
		t.Fatalf("Ordinal = %d, want %d", got, workers*per)
	}
	if l.Len() != 32 {
		t.Fatalf("Len = %d, want 32", l.Len())
	}
	var total int64
	for _, e := range l.Snapshot() {
		total += e.Count
	}
	if total != workers*per {
		t.Fatalf("entry counts sum to %d, want %d", total, workers*per)
	}
}
