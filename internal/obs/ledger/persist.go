package ledger

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// The ledger persists next to the statistics bundle and follows the same
// wire discipline (see internal/sample/persist.go): explicit magic bytes
// and a big-endian uint32 format version ahead of the gob payload, so a
// ledger file can never be silently misloaded by (or into) a different
// format — the magic check fails before gob ever sees the bytes, and a
// version bump is refused with an explicit error instead of decoded on
// faith.

// wireMagic opens every versioned ledger stream.
var wireMagic = [8]byte{'R', 'Q', 'O', 'L', 'E', 'D', 'G', 'R'}

// wireVersion guards against decoding incompatible formats. Version 1 is
// the initial format: bounded per-fingerprint aggregate entries plus the
// append ordinal and drop count.
const wireVersion = 1

// savedLedger is the gob wire form. Entries are sorted by fingerprint at
// save time, so equal ledgers serialize to equal bytes.
type savedLedger struct {
	Version int
	Max     int
	Ordinal uint64
	Dropped int64
	Entries []Entry
}

// Save serializes the ledger: header first, then the gob payload.
func (l *Ledger) Save(w io.Writer) error {
	if l == nil {
		return fmt.Errorf("ledger: cannot save a nil ledger")
	}
	if _, err := w.Write(wireMagic[:]); err != nil {
		return fmt.Errorf("ledger: writing header: %v", err)
	}
	if err := binary.Write(w, binary.BigEndian, uint32(wireVersion)); err != nil {
		return fmt.Errorf("ledger: writing header: %v", err)
	}
	l.mu.Lock()
	out := savedLedger{Version: wireVersion, Max: l.max, Ordinal: l.ord, Dropped: l.dropped}
	l.mu.Unlock()
	out.Entries = l.Snapshot()
	if err := gob.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("ledger: encoding entries: %v", err)
	}
	return nil
}

// Load deserializes a ledger saved with Save. Streams without the magic
// header and streams with a different format version are refused with an
// explicit error; structural invariants (entry bound, ordinal monotony)
// are validated before the ledger is returned.
func Load(r io.Reader) (*Ledger, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("ledger: reading header: %v", err)
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("ledger: stream has no ledger format-version header; not a ledger file?")
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("ledger: reading header: %v", err)
	}
	if version != wireVersion {
		return nil, fmt.Errorf("ledger: unsupported format version %d (want %d); re-run the workload to rebuild", version, wireVersion)
	}
	var in savedLedger
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("ledger: decoding entries: %v", err)
	}
	if in.Version != wireVersion {
		return nil, fmt.Errorf("ledger: header version %d disagrees with payload version %d", version, in.Version)
	}
	if in.Max < 1 || len(in.Entries) > in.Max {
		return nil, fmt.Errorf("ledger: %d entries exceed the declared bound %d", len(in.Entries), in.Max)
	}
	l := New(in.Max)
	l.ord = in.Ordinal
	l.dropped = in.Dropped
	for i := range in.Entries {
		e := in.Entries[i]
		if e.Fingerprint == "" {
			return nil, fmt.Errorf("ledger: entry %d has an empty fingerprint", i)
		}
		if e.Count < 1 || e.LastOrdinal > in.Ordinal || e.FirstOrdinal > e.LastOrdinal {
			return nil, fmt.Errorf("ledger: entry %q has inconsistent ordinals (count=%d first=%d last=%d ledger=%d)",
				e.Fingerprint, e.Count, e.FirstOrdinal, e.LastOrdinal, in.Ordinal)
		}
		if _, dup := l.entries[e.Fingerprint]; dup {
			return nil, fmt.Errorf("ledger: duplicate fingerprint %q", e.Fingerprint)
		}
		cp := e
		l.entries[e.Fingerprint] = &cp
	}
	return l, nil
}
