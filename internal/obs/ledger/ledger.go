// Package ledger is the durable read-side of cardinality feedback: a
// concurrent, bounded, persistable store of estimate-vs-actual outcomes
// keyed by predicate fingerprint. The optimizer stamps each plan node's
// estimate snapshot with a normalized table+conjunct-shape fingerprint
// (literals value-binned, so repeated traffic with shifting constants
// accumulates under one key); the engine's instrumentation appends one
// observation per fingerprinted operator when a query finishes; and the
// ledger answers the questions the feedback loop needs — which
// fingerprints the posteriors are most wrong about (worst Q-error), and
// how each table's estimates drift over/under truth.
//
// The package sits under internal/obs and inherits its determinism
// discipline: no wall clock anywhere. Observations are ordered by a
// monotone append ordinal, so replays of the same workload produce a
// byte-identical ledger — the property the persistence round-trip tests
// pin.
package ledger

import (
	"math"
	"sort"
	"sync"

	"robustqo/internal/cost"
	"robustqo/internal/obs"
)

// DefaultMaxEntries bounds the number of distinct fingerprints a ledger
// tracks by default. A fingerprint is a normalized predicate shape, not
// a literal, so real workloads concentrate into few entries; the bound
// exists to keep adversarial or ad-hoc floods from growing the ledger
// without limit.
const DefaultMaxEntries = 4096

// Observation is one estimate-vs-actual outcome for one fingerprinted
// plan operator, fed by the engine's instrumentation at query close.
type Observation struct {
	// Fingerprint keys the entry; empty fingerprints are ignored.
	Fingerprint string
	// Table is the root table of the estimated expression (the first
	// table of the fingerprint), used for per-table drift summaries.
	Table string
	// EstRows is the optimizer's planning-time cardinality at the
	// posterior percentile T; ActualRows is what the operator produced.
	EstRows    float64
	ActualRows int64
	// Percentile is the posterior percentile T the estimate was taken
	// at; zero for point estimators.
	Percentile float64
	// PartsScanned/PartsTotal record partition pruning, zero when the
	// expression's root is unpartitioned.
	PartsScanned, PartsTotal int
}

// Entry is the accumulated feedback for one fingerprint. All counters
// accumulate across appends; Last* fields snapshot the most recent
// observation so drift direction is visible without storing history.
type Entry struct {
	Fingerprint string
	Table       string

	Count         int64  // observations folded into this entry
	FirstOrdinal  uint64 // append ordinal of the first observation
	LastOrdinal   uint64 // append ordinal of the latest observation
	LastEstRows   float64
	LastActual    int64
	LastPercentil float64
	LastQError    float64
	PartsScanned  int
	PartsTotal    int

	MaxQError float64 // worst Q-error seen for this fingerprint
	SumLogQ   float64 // sum of ln(Q-error); exp(SumLogQ/Count) = geomean
	OverCount int64   // observations where est > actual (overestimates)
	UnderCnt  int64   // observations where est < actual (underestimates)
}

// GeoMeanQError returns the geometric mean Q-error of the entry's
// observations — the standard summary for multiplicative errors.
func (e Entry) GeoMeanQError() float64 {
	if e.Count == 0 {
		return 0
	}
	return math.Exp(e.SumLogQ / float64(e.Count))
}

// Ledger is the concurrent bounded store. The zero value is not usable;
// construct with New. A nil *Ledger is a valid no-op sink: Append on nil
// does nothing, so instrumentation points never need a nil check.
type Ledger struct {
	// Metrics, when non-nil, receives robustqo_ledger_* series on every
	// append. Set before concurrent use.
	Metrics *obs.Registry

	mu      sync.Mutex
	max     int
	ord     uint64
	entries map[string]*Entry
	dropped int64
}

// New returns an empty ledger bounded to maxEntries distinct
// fingerprints; maxEntries < 1 selects DefaultMaxEntries.
func New(maxEntries int) *Ledger {
	if maxEntries < 1 {
		maxEntries = DefaultMaxEntries
	}
	return &Ledger{max: maxEntries, entries: make(map[string]*Entry)}
}

// Append folds one observation into the entry for its fingerprint,
// assigning the next append ordinal. Observations with an empty
// fingerprint are ignored. When the ledger is full, observations for new
// fingerprints are dropped (counted, never evicting existing feedback):
// the first-seen shapes of a workload are the recurring ones feedback
// can act on, and a stable population keeps replays deterministic.
func (l *Ledger) Append(o Observation) {
	if l == nil || o.Fingerprint == "" {
		return
	}
	l.mu.Lock()
	e, ok := l.entries[o.Fingerprint]
	if !ok {
		if len(l.entries) >= l.max {
			l.dropped++
			l.mu.Unlock()
			if l.Metrics != nil {
				l.Metrics.Counter("robustqo_ledger_dropped_total").Inc()
			}
			return
		}
		e = &Entry{Fingerprint: o.Fingerprint, Table: o.Table}
		l.entries[o.Fingerprint] = e
	}
	l.ord++
	q := obs.QError(o.EstRows, float64(o.ActualRows))
	if e.Count == 0 {
		e.FirstOrdinal = l.ord
	}
	e.Count++
	e.LastOrdinal = l.ord
	e.LastEstRows = o.EstRows
	e.LastActual = o.ActualRows
	e.LastPercentil = o.Percentile
	e.LastQError = q
	e.PartsScanned = o.PartsScanned
	e.PartsTotal = o.PartsTotal
	if q > e.MaxQError {
		e.MaxQError = q
	}
	e.SumLogQ += math.Log(q)
	// Clamped comparison mirrors QError: sub-row estimates and empty
	// actuals compare at one row, so "over" vs "under" is well defined
	// exactly when the Q-error is.
	est, act := o.EstRows, float64(o.ActualRows)
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	switch {
	case est > act:
		e.OverCount++
	case est < act:
		e.UnderCnt++
	}
	l.mu.Unlock()
	if l.Metrics != nil {
		l.Metrics.Counter("robustqo_ledger_appends_total").Inc()
		l.Metrics.Histogram("robustqo_ledger_qerror", obs.QErrorBuckets).Observe(q)
	}
}

// Len returns the number of distinct fingerprints tracked.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Dropped returns how many observations were discarded because the
// ledger was full and their fingerprint was new.
func (l *Ledger) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Ordinal returns the append ordinal of the latest observation (the
// logical clock of the ledger).
func (l *Ledger) Ordinal() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ord
}

// Snapshot returns every entry ordered by fingerprint — the
// deterministic full dump persistence and tests build on.
func (l *Ledger) Snapshot() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// TopQError returns the n entries with the worst (largest) maximum
// Q-error, ties broken by fingerprint so the order is deterministic.
// n < 1 returns all entries.
func (l *Ledger) TopQError(n int) []Entry {
	out := l.Snapshot()
	sort.Slice(out, func(i, j int) bool {
		if cost.Less(out[j].MaxQError, out[i].MaxQError) {
			return true
		}
		if cost.Less(out[i].MaxQError, out[j].MaxQError) {
			return false
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TableDrift summarizes one table's estimate drift across every
// fingerprint rooted at it.
type TableDrift struct {
	Table        string
	Fingerprints int
	Count        int64 // total observations
	GeoMeanQ     float64
	MaxQ         float64
	OverCount    int64 // observations with est > actual
	UnderCount   int64 // observations with est < actual
}

// Drift returns the per-table summaries ordered by table name.
func (l *Ledger) Drift() []TableDrift {
	entries := l.Snapshot()
	byTable := make(map[string]*TableDrift)
	sumLog := make(map[string]float64)
	for _, e := range entries {
		d, ok := byTable[e.Table]
		if !ok {
			d = &TableDrift{Table: e.Table}
			byTable[e.Table] = d
		}
		d.Fingerprints++
		d.Count += e.Count
		sumLog[e.Table] += e.SumLogQ
		if e.MaxQError > d.MaxQ {
			d.MaxQ = e.MaxQError
		}
		d.OverCount += e.OverCount
		d.UnderCount += e.UnderCnt
	}
	names := make([]string, 0, len(byTable))
	for name := range byTable {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TableDrift, 0, len(names))
	for _, name := range names {
		d := byTable[name]
		if d.Count > 0 {
			d.GeoMeanQ = math.Exp(sumLog[name] / float64(d.Count))
		}
		out = append(out, *d)
	}
	return out
}
