package ledger

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"
)

func sampleLedger() *Ledger {
	l := New(16)
	l.Append(Observation{Fingerprint: "lineitem|l_shipdate between b10..b10", Table: "lineitem",
		EstRows: 120, ActualRows: 480, Percentile: 0.8, PartsScanned: 1, PartsTotal: 4})
	l.Append(Observation{Fingerprint: "lineitem,orders|o_totalprice<b9", Table: "orders",
		EstRows: 50, ActualRows: 49, Percentile: 0.8})
	l.Append(Observation{Fingerprint: "lineitem|l_shipdate between b10..b10", Table: "lineitem",
		EstRows: 130, ActualRows: 470, Percentile: 0.95, PartsScanned: 1, PartsTotal: 4})
	return l
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := sampleLedger()
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ordinal() != l.Ordinal() || got.Dropped() != l.Dropped() || got.max != l.max {
		t.Fatalf("header fields drifted: ord %d/%d dropped %d/%d max %d/%d",
			got.Ordinal(), l.Ordinal(), got.Dropped(), l.Dropped(), got.max, l.max)
	}
	if !reflect.DeepEqual(got.Snapshot(), l.Snapshot()) {
		t.Fatalf("entries drifted:\ngot  %+v\nwant %+v", got.Snapshot(), l.Snapshot())
	}
	// Loaded ledgers keep appending where the original left off.
	got.Append(Observation{Fingerprint: "part|p_size=b3", Table: "part", EstRows: 5, ActualRows: 5})
	if got.Ordinal() != l.Ordinal()+1 {
		t.Fatalf("append after load: ordinal %d, want %d", got.Ordinal(), l.Ordinal()+1)
	}
}

func TestSaveDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleLedger().Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleLedger().Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal ledgers serialized to different bytes")
	}
}

// TestLoadRefusesHeaderless is the regression test for the format
// header: bytes without the magic — including any pre-ledger producer's
// gob stream — must be refused before gob sees them.
func TestLoadRefusesHeaderless(t *testing.T) {
	_, err := Load(strings.NewReader("not a ledger stream at all"))
	if err == nil || !strings.Contains(err.Error(), "format-version header") {
		t.Fatalf("headerless stream: err = %v, want header refusal", err)
	}
	_, err = Load(strings.NewReader("RQO"))
	if err == nil {
		t.Fatal("truncated stream: want error")
	}
}

// TestLoadRefusesVersionMismatch pins the version gate: a header with a
// future version is refused with an explicit message, not decoded.
func TestLoadRefusesVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLedger().Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.BigEndian.PutUint32(raw[8:12], wireVersion+1)
	_, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("version mismatch: err = %v, want refusal", err)
	}
}

func TestLoadValidatesStructure(t *testing.T) {
	corrupt := func(mutate func(*savedLedger)) error {
		s := savedLedger{Version: wireVersion, Max: 4, Ordinal: 2, Entries: []Entry{
			{Fingerprint: "a", Table: "t", Count: 1, FirstOrdinal: 1, LastOrdinal: 1},
		}}
		mutate(&s)
		var buf bytes.Buffer
		buf.Write(wireMagic[:])
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], wireVersion)
		buf.Write(v[:])
		if err := gob.NewEncoder(&buf).Encode(s); err != nil {
			return err
		}
		_, err := Load(&buf)
		return err
	}
	if err := corrupt(func(s *savedLedger) { s.Entries[0].Fingerprint = "" }); err == nil {
		t.Fatal("empty fingerprint accepted")
	}
	if err := corrupt(func(s *savedLedger) { s.Entries[0].LastOrdinal = 9 }); err == nil {
		t.Fatal("ordinal beyond ledger clock accepted")
	}
	if err := corrupt(func(s *savedLedger) { s.Max = 0 }); err == nil {
		t.Fatal("zero bound accepted")
	}
	if err := corrupt(func(s *savedLedger) {
		s.Entries = append(s.Entries, s.Entries[0])
	}); err == nil {
		t.Fatal("duplicate fingerprint accepted")
	}
}
