// Package obs is the observability substrate for the optimizer and the
// streaming engine: per-query trace spans (exportable as plain JSON or
// Chrome trace-event format), a process-wide metrics registry with a
// deterministic text exposition, and the plan-feedback types behind
// EXPLAIN ANALYZE — the optimizer's estimate snapshots and the executed
// operators' actual row counts, compared through the Q-error metric.
//
// The package is stdlib-only and sits below both internal/engine and
// internal/optimizer: the engine's Instrumented wrapper fills OpStats,
// the optimizer records an EstimateSnapshot per plan node, and the
// renderer joins them per operator. Because the snapshot carries the
// posterior percentile T the estimate was taken at, EXPLAIN ANALYZE
// output from runs at different confidence thresholds is directly
// comparable — the repository's executable version of the paper's
// predictability experiments.
package obs

import "time"

// EstimateSnapshot is the optimizer's cardinality prediction for one
// plan node, captured at planning time so it can later be compared with
// the actual rows the operator produced. Percentile is the posterior
// percentile T the estimate was taken at (the paper's robustness knob);
// zero means a point estimate with no posterior attached.
type EstimateSnapshot struct {
	Rows       float64
	Percentile float64
	Estimator  string

	// Fingerprint is the normalized table+conjunct-shape key of the
	// estimate (see the optimizer's fingerprint grammar): queries whose
	// predicates differ only in literal values inside the same magnitude
	// bin share one fingerprint, so repeated traffic accumulates under a
	// single feedback-ledger entry. Empty for nodes the ledger does not
	// track (aggregation, sort, limit, projection).
	Fingerprint string

	// PartsScanned/PartsTotal describe partition pruning for scans of
	// partitioned tables: the optimizer planned to read PartsScanned of
	// the table's PartsTotal shards. Zero PartsTotal means the scan's
	// table is unpartitioned (or the node is not a scan).
	PartsScanned int
	PartsTotal   int

	// SegsSkipped/SegsTotal describe zone-map skipping for encoded
	// columnar scans: of SegsTotal segments in the surviving shards,
	// SegsSkipped are provably empty under the pushed predicate bounds.
	// Zero SegsTotal means the scan runs on the row path. Strategy names
	// the chosen materialization path ("eager" or "late"); empty when
	// not an encoded scan.
	SegsSkipped int
	SegsTotal   int
	Strategy    string
}

// OpStats accumulates actual execution feedback for one operator in an
// instrumented plan. Counts and durations accumulate across executions
// of the same instrumented tree, so repeated runs (benchmarks, the
// serve endpoint) fold into one record.
type OpStats struct {
	Opens   int64 // times the operator was opened
	Batches int64 // non-nil batches returned from Next
	Rows    int64 // total rows across those batches

	OpenTime  time.Duration // wall time inside Open (includes blocking builds)
	NextTime  time.Duration // wall time across all Next calls
	CloseTime time.Duration // wall time inside Close
}

// QError is the standard cardinality-estimation error metric: the
// multiplicative distance max(est/actual, actual/est). Both sides are
// clamped to at least one row first, so empty results and sub-row
// estimates yield a finite, well-ordered error instead of a division by
// zero; a perfect estimate scores exactly 1.
func QError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// QErrorBuckets is the histogram bucketing used for per-operator-type
// Q-error distributions: tight around 1 (good estimates), geometric in
// the tail where misestimates blow up plans.
var QErrorBuckets = []float64{1, 1.25, 1.5, 2, 3, 5, 10, 30, 100}

// LatencyBuckets is the fixed bucketing for query-latency histograms on
// the serve path, in seconds. The bounds are chosen so the p50/p90/p99
// read-offs interpolate inside a bucket rather than saturating: sub-ms
// resolution at the fast end, geometric growth to 10 s.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RatioBuckets is the fixed bucketing for fraction-valued utilization
// histograms (worker busy fractions): uniform tenths over [0, 1].
var RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// SkewBuckets is the fixed bucketing for max/mean skew ratios (per-worker
// and per-shard row imbalance): 1 is perfectly balanced, geometric tail.
var SkewBuckets = []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10}

// DepthBuckets is the fixed bucketing for queue-depth histograms
// (exchange result-queue occupancy sampled at each coordinator receive).
var DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32}
