package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one dimension of a metric series, e.g. {op, SeqScan}.
type Label struct{ Key, Value string }

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket distribution metric. Bounds are inclusive
// upper bucket bounds in ascending order; observations above the last
// bound land in an implicit +Inf bucket.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64

	mu     sync.Mutex
	counts []int64
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile estimates the p-th quantile (0 < p < 1) from the bucket
// counts, interpolating linearly inside the bucket the rank falls in —
// the standard Prometheus histogram_quantile estimate. The estimate is
// clamped to the last finite bound for ranks in the +Inf bucket, and the
// result is 0 when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := p * float64(h.n)
	cum := int64(0)
	for i, c := range h.counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a process-wide metrics store: named counter and histogram
// series keyed by name plus sorted labels. All methods are safe for
// concurrent use, and the text exposition is deterministic (series
// sorted by key) so it can be pinned in tests.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the CLI's --analyze path and the
// serve subcommand's /metrics endpoint share.
var Default = NewRegistry()

// seriesKey renders name{k="v",...} with labels sorted by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter series for name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Histogram returns the histogram series for name+labels, creating it
// with the given bucket bounds on first use. Later calls return the
// existing series regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{
			name:   name,
			labels: append([]Label(nil), labels...),
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[key] = h
	}
	return h
}

// WriteText writes every series in the Prometheus-like text exposition
// format, sorted by series key. Histograms expose cumulative _bucket
// lines with an le label plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ckeys []string
	for k := range r.counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, r.counters[k].Value()); err != nil {
			return err
		}
	}
	var hkeys []string
	for k := range r.hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		if err := writeHistText(w, r.hists[k]); err != nil {
			return err
		}
	}
	return nil
}

func writeHistText(w io.Writer, h *Histogram) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i]
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		key := seriesKey(h.name+"_bucket", append(append([]Label(nil), h.labels...), Label{Key: "le", Value: le}))
		if _, err := fmt.Fprintf(w, "%s %d\n", key, cum); err != nil {
			return err
		}
	}
	base := seriesKey(h.name, h.labels)
	sumKey := strings.Replace(base, h.name, h.name+"_sum", 1)
	countKey := strings.Replace(base, h.name, h.name+"_count", 1)
	if _, err := fmt.Fprintf(w, "%s %s\n", sumKey, formatBound(h.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", countKey, h.n)
	return err
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
