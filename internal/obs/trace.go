package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Trace collects the spans of one query: optimizer phases, estimator
// calls, and operator lifetimes. Spans nest by start/end order — a span
// started while another is open becomes its child — which matches the
// strictly nested Open/Close discipline of the streaming engine and the
// optimizer's phase structure.
//
// A nil *Trace is a valid no-op sink: StartSpan returns a nil *Span
// whose methods are all no-ops, so instrumentation points never need a
// nil check.
type Trace struct {
	Name string
	// QueryID, when non-empty, is stamped on every exported Chrome event
	// so per-query traces correlate with the event and slow-query logs.
	QueryID string
	// Now supplies timestamps; tests inject a fixed clock here. Nil
	// means time.Now.
	Now func() time.Time

	mu    sync.Mutex
	spans []*Span
	open  []*Span
}

// NewTrace returns an empty trace.
func NewTrace(name string) *Trace { return &Trace{Name: name} }

func (t *Trace) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	// The injectable clock's single sanctioned wall-clock fallback: every
	// other timestamp in the scoped packages must route through here.
	//qolint:allow-determinism injection point for the wall clock
	return time.Now()
}

// StartSpan opens a new span nested under the innermost unended span.
// Every started span must be ended on all return paths — idiomatically
// `sp := tr.StartSpan(...); defer sp.End()` — which the qolint spanend
// analyzer enforces for locally scoped spans.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, id: len(t.spans) + 1, name: name, start: t.now()}
	if n := len(t.open); n > 0 {
		s.parent = t.open[n-1].id
	}
	t.spans = append(t.spans, s)
	t.open = append(t.open, s)
	return s
}

// StartSpanDetached opens a span as a child of the innermost open span
// WITHOUT joining the open stack. It exists for spans whose lifetime runs
// on another goroutine (Exchange worker spans): stack nesting would chain
// concurrent siblings under each other, while a detached span parents to
// the operator that spawned it and leaves the spawning goroutine's
// nesting untouched.
func (t *Trace) StartSpanDetached(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, id: len(t.spans) + 1, name: name, start: t.now()}
	if n := len(t.open); n > 0 {
		s.parent = t.open[n-1].id
	}
	t.spans = append(t.spans, s)
	return s
}

// Len returns the number of spans started so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Span is one timed region of a trace. The zero of *Span (nil) is a
// valid no-op span.
type Span struct {
	tr     *Trace
	id     int
	parent int
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  []Attr
}

// Attr is one key/value annotation on a span.
type Attr struct{ Key, Value string }

// SetAttr attaches an annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span, fixing its duration. End is idempotent and safe
// on a nil span, so operator Close paths that may run twice stay
// correct.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = t.now().Sub(s.start)
	// In well-nested use the span is on top of the open stack, but a
	// missed child End must not corrupt the parent chain.
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] == s {
			t.open = append(t.open[:i], t.open[i+1:]...)
			break
		}
	}
}

// SpanRecord is the export shape of one span. Timestamps are
// microseconds relative to the trace's first span, so exported traces
// are stable under wall-clock shifts.
type SpanRecord struct {
	ID          int               `json:"id"`
	Parent      int               `json:"parent,omitempty"`
	Name        string            `json:"name"`
	StartMicros int64             `json:"start_us"`
	DurMicros   int64             `json:"dur_us"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// Records returns all spans in start order. Unended spans export with
// zero duration.
func (t *Trace) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var epoch time.Time
	if len(t.spans) > 0 {
		epoch = t.spans[0].start
	}
	out := make([]SpanRecord, len(t.spans))
	for i, s := range t.spans {
		r := SpanRecord{
			ID:          s.id,
			Parent:      s.parent,
			Name:        s.name,
			StartMicros: s.start.Sub(epoch).Microseconds(),
			DurMicros:   s.dur.Microseconds(),
		}
		if len(s.attrs) > 0 {
			r.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				r.Attrs[a.Key] = a.Value
			}
		}
		out[i] = r
	}
	return out
}

// WriteJSON writes the trace as a single JSON object with the span list
// under "spans".
func (t *Trace) WriteJSON(w io.Writer) error {
	name := ""
	if t != nil {
		name = t.Name
	}
	doc := struct {
		Trace string       `json:"trace"`
		Spans []SpanRecord `json:"spans"`
	}{Trace: name, Spans: t.Records()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// workerIndex parses the N out of an Exchange worker span name
// ("worker-N"); ok is false for every other span name.
func workerIndex(name string) (int, bool) {
	const prefix = "worker-"
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(name[len(prefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// chromeEvent is one complete event ("ph":"X") of the Chrome trace-event
// format understood by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome writes the trace in Chrome trace-event format: load the
// file via chrome://tracing or ui.perfetto.dev to see the query as a
// flame chart. Exchange worker spans (worker-N) and their descendants
// render on their own lanes — tid N+2 — so a parallel drain shows as
// concurrent per-worker tracks under the coordinator's tid 1; the
// trace's QueryID, when set, is stamped on every event.
func (t *Trace) WriteChrome(w io.Writer) error {
	recs := t.Records()
	qid := ""
	if t != nil {
		qid = t.QueryID
	}
	events := make([]chromeEvent, len(recs))
	// Records are in start order, so a parent's tid is always assigned
	// before its children inherit it.
	tidOf := make(map[int]int, len(recs))
	for i, r := range recs {
		tid := 1
		if n, ok := workerIndex(r.Name); ok {
			tid = n + 2
		} else if pt, ok := tidOf[r.Parent]; ok {
			tid = pt
		}
		tidOf[r.ID] = tid
		args := r.Attrs
		if qid != "" {
			args = make(map[string]string, len(r.Attrs)+1)
			for k, v := range r.Attrs {
				args[k] = v
			}
			args["qid"] = qid
		}
		events[i] = chromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   r.StartMicros,
			Dur:  r.DurMicros,
			Pid:  1,
			Tid:  tid,
			Args: args,
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	return nil
}
