package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per reading, making span durations
// deterministic.
func fakeClock(stepMicros int64) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Duration(stepMicros) * time.Microsecond)
		return t
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{100, 100, 1},
		{100, 50, 2},
		{50, 100, 2},
		{0, 0, 1},      // both sides clamped to one row
		{0.25, 10, 10}, // sub-row estimate clamps to 1
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%g, %g) = %g, want %g", c.est, c.act, got, c.want)
		}
	}
}

func TestTraceNestingAndRecords(t *testing.T) {
	tr := NewTrace("q1")
	tr.Now = fakeClock(10)
	root := tr.StartSpan("optimize")
	child := tr.StartSpan("estimate")
	child.SetAttr("tables", "lineitem")
	child.End()
	sib := tr.StartSpan("enumerate")
	sib.End()
	root.End()
	leftover := tr.StartSpan("render")
	leftover.End()

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].Parent != 0 {
		t.Errorf("root has parent %d", recs[0].Parent)
	}
	if recs[1].Parent != recs[0].ID || recs[2].Parent != recs[0].ID {
		t.Errorf("children not nested under root: %+v", recs)
	}
	if recs[3].Parent != 0 {
		t.Errorf("post-root span should be top-level, got parent %d", recs[3].Parent)
	}
	if recs[1].Attrs["tables"] != "lineitem" {
		t.Errorf("attr lost: %+v", recs[1])
	}
	if recs[0].DurMicros <= recs[1].DurMicros {
		t.Errorf("root duration %d not longer than child %d", recs[0].DurMicros, recs[1].DurMicros)
	}
	if recs[0].StartMicros != 0 {
		t.Errorf("first span should start at the epoch, got %d", recs[0].StartMicros)
	}
}

func TestTraceEndIdempotentAndNilSafe(t *testing.T) {
	var nilTrace *Trace
	sp := nilTrace.StartSpan("noop")
	sp.SetAttr("k", "v")
	sp.End()
	sp.End()
	if nilTrace.Len() != 0 {
		t.Error("nil trace recorded spans")
	}

	tr := NewTrace("q")
	tr.Now = fakeClock(5)
	s := tr.StartSpan("x")
	s.End()
	d1 := tr.Records()[0].DurMicros
	s.End() // second End must not extend the duration
	if d2 := tr.Records()[0].DurMicros; d2 != d1 {
		t.Errorf("duration changed on double End: %d -> %d", d1, d2)
	}
}

func TestTraceExportFormats(t *testing.T) {
	tr := NewTrace("q1")
	tr.Now = fakeClock(100)
	sp := tr.StartSpan("op:SeqScan")
	sp.SetAttr("rows", "42")
	sp.End()

	var plain strings.Builder
	if err := tr.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace": "q1"`, `"name": "op:SeqScan"`, `"rows": "42"`} {
		if !strings.Contains(plain.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, plain.String())
		}
	}

	var chrome strings.Builder
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"ph": "X"`, `"dur": 100`, `"name": "op:SeqScan"`} {
		if !strings.Contains(chrome.String(), want) {
			t.Errorf("chrome trace missing %s:\n%s", want, chrome.String())
		}
	}
}

func TestRegistryCountersAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Inc()
	r.Counter("queries_total").Add(2)
	r.Counter("plans_total", Label{Key: "t", Value: "0.8"}, Label{Key: "order", Value: "a,b"}).Inc()
	if got := r.Counter("queries_total").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}

	h := r.Histogram("qerror", []float64{1, 2, 10}, Label{Key: "op", Value: "SeqScan"})
	h.Observe(1)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(1000)
	if h.Count() != 4 {
		t.Errorf("histogram count = %d", h.Count())
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `plans_total{order="a,b",t="0.8"} 1
queries_total 3
qerror_bucket{le="1",op="SeqScan"} 1
qerror_bucket{le="2",op="SeqScan"} 2
qerror_bucket{le="10",op="SeqScan"} 3
qerror_bucket{le="+Inf",op="SeqScan"} 4
qerror_sum{op="SeqScan"} 1005.5
qerror_count{op="SeqScan"} 4
`
	if got != want {
		t.Errorf("text exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
