package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEventLogSequencesAndOmitsZeroFields(t *testing.T) {
	var sb strings.Builder
	log := NewEventLog(&sb)
	log.Emit(Event{QueryID: "q1", Event: "received", SQL: "SELECT 1"})
	log.Emit(Event{QueryID: "q1", Event: "executed", T: 0.8, DOP: 4, Rows: 42, ElapsedUS: 1234})
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["seq"] != float64(1) || first["qid"] != "q1" || first["event"] != "received" {
		t.Fatalf("first line = %v", first)
	}
	for _, absent := range []string{"t", "dop", "rows", "elapsed_us", "wall_us"} {
		if _, ok := first[absent]; ok {
			t.Fatalf("zero field %q not omitted: %v", absent, first)
		}
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["seq"] != float64(2) || second["dop"] != float64(4) || second["rows"] != float64(42) {
		t.Fatalf("second line = %v", second)
	}
}

func TestEventLogInjectedClock(t *testing.T) {
	var sb strings.Builder
	log := NewEventLog(&sb)
	log.Now = func() time.Time { return time.UnixMicro(12345) }
	log.Emit(Event{QueryID: "q1", Event: "received"})
	var e map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &e); err != nil {
		t.Fatal(err)
	}
	if e["wall_us"] != float64(12345) {
		t.Fatalf("wall_us = %v, want 12345", e["wall_us"])
	}
}

func TestNilLifecycleSinksAreInert(t *testing.T) {
	var log *EventLog
	log.Emit(Event{Event: "x"})
	if log.Err() != nil {
		t.Fatal("nil EventLog must be inert")
	}
	var q *QueryLive
	q.SetPhase(PhaseExecute)
	q.AddRows(5)
	if q.Rows() != 0 || q.Progress() != 0 || q.Phase() != PhaseReceived {
		t.Fatal("nil QueryLive must be inert")
	}
	var a *ActiveQueries
	h := a.Begin("SELECT 1")
	if h == nil || h.ID != "" {
		t.Fatal("nil ActiveQueries.Begin must still hand out a usable handle")
	}
	a.Done(h)
	if a.Snapshot() != nil {
		t.Fatal("nil snapshot must be nil")
	}
	var sl *SlowLog
	sl.Record(SlowQuery{QueryID: "q"})
	if sl.Recent() != nil || sl.Err() != nil {
		t.Fatal("nil SlowLog must be inert")
	}
}

func TestProgressEstimate(t *testing.T) {
	q := &QueryLive{EstRows: 200}
	q.SetPhase(PhaseExecute)
	if q.Progress() != 0 {
		t.Fatalf("progress before rows = %g", q.Progress())
	}
	q.AddRows(50)
	if q.Progress() != 0.25 {
		t.Fatalf("progress = %g, want 0.25", q.Progress())
	}
	q.AddRows(500) // actual blew past the posterior estimate
	if q.Progress() != 1 {
		t.Fatalf("progress clamps at 1, got %g", q.Progress())
	}
	done := &QueryLive{EstRows: 0}
	done.SetPhase(PhaseDone)
	if done.Progress() != 1 {
		t.Fatalf("done progress = %g, want 1", done.Progress())
	}
}

func TestActiveQueriesIDsAndSnapshotOrder(t *testing.T) {
	a := NewActiveQueries()
	var handles []*QueryLive
	for i := 0; i < 11; i++ {
		handles = append(handles, a.Begin("SELECT 1"))
	}
	if handles[0].ID != "q1" || handles[10].ID != "q11" {
		t.Fatalf("IDs = %s..%s", handles[0].ID, handles[10].ID)
	}
	views := a.Snapshot()
	if len(views) != 11 {
		t.Fatalf("snapshot has %d entries", len(views))
	}
	for i, v := range views {
		if v.ID != handles[i].ID {
			t.Fatalf("snapshot[%d] = %s, want %s (issue order)", i, v.ID, handles[i].ID)
		}
	}
	a.Done(handles[3])
	if got := len(a.Snapshot()); got != 10 {
		t.Fatalf("after Done: %d entries, want 10", got)
	}
}

func TestSlowLogRingAndMirror(t *testing.T) {
	var sb strings.Builder
	sl := NewSlowLog(2, &sb)
	sl.Record(SlowQuery{QueryID: "q1", SQL: "a", ElapsedUS: 1})
	sl.Record(SlowQuery{QueryID: "q2", SQL: "b", ElapsedUS: 2})
	sl.Record(SlowQuery{QueryID: "q3", SQL: "c", ElapsedUS: 3, Analyze: "SeqScan(...)"})
	rec := sl.Recent()
	if len(rec) != 2 || rec[0].QueryID != "q2" || rec[1].QueryID != "q3" {
		t.Fatalf("ring = %+v", rec)
	}
	if err := sl.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("mirror got %d lines, want 3 (mirror is unbounded)", len(lines))
	}
	var last SlowQuery
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.QueryID != "q3" || last.Analyze != "SeqScan(...)" {
		t.Fatalf("mirror line = %+v", last)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("robustqo_query_latency_seconds", LatencyBuckets)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.002) // all in the (0.001, 0.0025] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.001 || p50 > 0.0025 {
		t.Fatalf("p50 = %g, want inside the observed bucket", p50)
	}
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(0.9999); got != LatencyBuckets[len(LatencyBuckets)-1] {
		t.Fatalf("tail quantile = %g, want clamp to last bound", got)
	}
}
