package colstore

import (
	"sort"

	"robustqo/internal/catalog"
)

// Pred is one pushable single-column bound in table-ordinal space, as
// produced by expr.SplitPushdown after the engine resolves the column
// reference. Int/Date bounds use the closed interval [Lo, Hi]; String
// bounds use [StrLo, StrHi] with each side gated by its Has flag
// (an ungated side is unbounded).
type Pred struct {
	Col                int
	Lo, Hi             int64
	StrLo, StrHi       string
	HasStrLo, HasStrHi bool
	IsStr              bool
}

// Probe is a compiled encoded-data predicate: a closed interval in the
// column's encoded order domain (values for Int/Date, dictionary codes
// for String). Probes are immutable after compilation and safe to share
// across scan workers.
type Probe struct {
	e     *TableEncoding
	col   int
	lo    int64
	hi    int64
	empty bool
}

// CompileProbe translates a bound into encoded domain terms. ok is
// false when the column cannot be probed on encoded data (Float
// columns, or a kind mismatch between bound and column); such bounds
// must stay in the row-domain residual predicate.
func (e *TableEncoding) CompileProbe(p Pred) (Probe, bool) {
	if p.Col < 0 || p.Col >= len(e.cols) {
		return Probe{}, false
	}
	ce := &e.cols[p.Col]
	if ce.kind == catalog.Float || p.IsStr != (ce.kind == catalog.String) {
		return Probe{}, false
	}
	pr := Probe{e: e, col: p.Col}
	if !p.IsStr {
		pr.lo, pr.hi = p.Lo, p.Hi
		pr.empty = pr.lo > pr.hi
		return pr, true
	}
	// Map the string interval to dictionary-code space: the dictionary is
	// sorted, so [first code >= StrLo, last code <= StrHi] selects exactly
	// the dictionary entries inside the string interval. Strings absent
	// from the dictionary are absent from the column, so an empty code
	// interval proves the predicate selects nothing anywhere.
	lo := int64(0)
	if p.HasStrLo {
		lo = int64(sort.SearchStrings(ce.dict, p.StrLo))
	}
	hi := int64(len(ce.dict) - 1)
	if p.HasStrHi {
		hi = int64(sort.Search(len(ce.dict), func(i int) bool { return ce.dict[i] > p.StrHi })) - 1
	}
	pr.lo, pr.hi = lo, hi
	pr.empty = lo > hi
	return pr, true
}

// SkipSegment reports whether the segment's zone map proves no row can
// satisfy the probe. Called once per segment, off the per-row path.
func (p Probe) SkipSegment(si int) bool {
	if p.empty {
		return true
	}
	sc := &p.e.cols[p.col].segs[si]
	if sc.enc == encRaw {
		return false
	}
	return sc.zone.Max < p.lo || sc.zone.Min > p.hi
}

// FilterWindow evaluates the probe over the encoded data of one batch
// window without decoding: sel holds ascending row offsets relative to
// global row id winLo (all inside segment si), and surviving offsets are
// appended to out (reset by the caller) and returned. The evaluation is
// exact — the result equals row-domain evaluation of the source bound —
// which is what lets the residual predicate run only on survivors while
// preserving the row path's semantics.
//
//qo:hotpath
func (p Probe) FilterWindow(si, winLo int, sel, out []int) []int {
	if p.empty {
		return out
	}
	sc := &p.e.cols[p.col].segs[si]
	base := winLo - p.e.segs[si].Lo
	lo, hi := p.lo, p.hi
	switch sc.enc {
	case encPacked, encDict:
		ref := sc.ref
		if sc.width == 0 {
			// Constant segment: one comparison decides every row.
			if ref >= lo && ref <= hi {
				out = append(out, sel...)
			}
			break
		}
		for _, s := range sel {
			v := ref + int64(unpack(sc.words, base+s, sc.width))
			if v >= lo && v <= hi {
				out = append(out, s)
			}
		}
	case encRLE:
		if len(sel) == 0 {
			break
		}
		ri := runIndex(sc.runEnds, base+sel[0])
		for _, s := range sel {
			for int32(base+s) >= sc.runEnds[ri] {
				ri++
			}
			v := sc.runVals[ri]
			if v >= lo && v <= hi {
				out = append(out, s)
			}
		}
	}
	return out
}
