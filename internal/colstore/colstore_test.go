package colstore

import (
	"fmt"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// encOfInts builds a single-segment, single-column encoding by hand so
// codec internals can be exercised without a storage table.
func encOfInts(vals []int64, kind catalog.Type) *TableEncoding {
	e := &TableEncoding{name: "t", rows: len(vals), segs: []Segment{{Lo: 0, Hi: len(vals)}}}
	e.cols = make([]colEncoding, 1)
	e.cols[0].kind = kind
	e.cols[0].segs = make([]segColumn, 1)
	encodeIntSeg(&e.cols[0].segs[0], vals)
	return e
}

func encOfStrings(vals []string) *TableEncoding {
	e := &TableEncoding{name: "t", rows: len(vals), segs: []Segment{{Lo: 0, Hi: len(vals)}}}
	e.cols = make([]colEncoding, 1)
	e.cols[0].kind = catalog.String
	codes := buildDict(&e.cols[0], vals)
	e.cols[0].segs = make([]segColumn, 1)
	encodeDictSeg(&e.cols[0], &e.cols[0].segs[0], codes)
	return e
}

func decodeAll(e *TableEncoding, col int) []value.Value {
	return e.AppendColRange(nil, col, 0, e.rows)
}

func TestIntCodecChoice(t *testing.T) {
	runs := make([]int64, 0, 4096)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			runs = append(runs, int64(i*1000))
		}
	}
	e := encOfInts(runs, catalog.Int)
	if got := e.cols[0].segs[0].enc; got != encRLE {
		t.Errorf("run-heavy segment encoded as %d, want RLE", got)
	}
	noise := make([]int64, 4096)
	for i := range noise {
		noise[i] = int64((i*2654435761 + 12345) % 100000)
	}
	e = encOfInts(noise, catalog.Int)
	if got := e.cols[0].segs[0].enc; got != encPacked {
		t.Errorf("noisy segment encoded as %d, want packed", got)
	}
	if w := e.cols[0].segs[0].width; w != 17 {
		t.Errorf("width = %d, want 17 for range <100000", w)
	}
}

func TestIntRoundTrip(t *testing.T) {
	cases := map[string][]int64{
		"empty-range": {5, 5, 5, 5},
		"sequential":  {0, 1, 2, 3, 4, 5, 6, 7},
		"negative":    {-1 << 62, 0, 1 << 62, -7, 7},
		"runs":        {9, 9, 9, 2, 2, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8},
		"single":      {42},
		"minmax":      {-9223372036854775808, 9223372036854775807},
	}
	for name, vals := range cases {
		e := encOfInts(vals, catalog.Date)
		got := decodeAll(e, 0)
		if len(got) != len(vals) {
			t.Fatalf("%s: decoded %d values, want %d", name, len(got), len(vals))
		}
		for i, v := range got {
			if v.Kind != catalog.Date || v.I != vals[i] {
				t.Fatalf("%s: row %d decoded %v, want date(%d)", name, i, v, vals[i])
			}
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	vals := []string{"pear", "apple", "pear", "", "fig", "apple", "apple", "zz"}
	e := encOfStrings(vals)
	if d := e.cols[0].dict; len(d) != 5 {
		t.Fatalf("dict = %v, want 5 entries", d)
	}
	for i, v := range decodeAll(e, 0) {
		if v.Kind != catalog.String || v.S != vals[i] {
			t.Fatalf("row %d decoded %v, want %q", i, v, vals[i])
		}
	}
}

func TestAppendColSel(t *testing.T) {
	vals := []int64{10, 11, 12, 13, 14, 15, 16, 17}
	e := encOfInts(vals, catalog.Int)
	got := e.AppendColSel(nil, 0, 0, 2, []int{0, 3, 5})
	want := []int64{12, 15, 17}
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i, v := range got {
		if v.I != want[i] {
			t.Errorf("sel %d = %d, want %d", i, v.I, want[i])
		}
	}
}

// TestProbeMatchesBruteForce drives every codec through FilterWindow and
// compares with row-domain evaluation.
func TestProbeMatchesBruteForce(t *testing.T) {
	ints := make([]int64, 500)
	for i := range ints {
		ints[i] = int64((i * 37) % 83)
	}
	runs := make([]int64, 500)
	for i := range runs {
		runs[i] = int64(i / 50)
	}
	intCases := map[string][]int64{"packed": ints, "rle": runs}
	for name, vals := range intCases {
		e := encOfInts(vals, catalog.Int)
		for _, iv := range [][2]int64{{0, 40}, {5, 5}, {-10, -1}, {80, 200}, {3, 2}} {
			pr, ok := e.CompileProbe(Pred{Col: 0, Lo: iv[0], Hi: iv[1]})
			if !ok {
				t.Fatalf("%s: probe [%d,%d] did not compile", name, iv[0], iv[1])
			}
			sel := make([]int, len(vals))
			for i := range sel {
				sel[i] = i
			}
			got := pr.FilterWindow(0, 0, sel, nil)
			var want []int
			for i, v := range vals {
				if v >= iv[0] && v <= iv[1] {
					want = append(want, i)
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s probe [%d,%d]: got %v want %v", name, iv[0], iv[1], got, want)
			}
			if pr.SkipSegment(0) && len(want) > 0 {
				t.Errorf("%s probe [%d,%d]: segment skipped but %d rows match", name, iv[0], iv[1], len(want))
			}
		}
	}
	strs := []string{"ca", "ab", "bb", "ca", "da", "ab", "ee", "bb", "bb"}
	e := encOfStrings(strs)
	for _, iv := range [][2]string{{"bb", "da"}, {"ca", "ca"}, {"x", "z"}, {"", "a"}} {
		pr, ok := e.CompileProbe(Pred{Col: 0, IsStr: true, StrLo: iv[0], StrHi: iv[1], HasStrLo: true, HasStrHi: true})
		if !ok {
			t.Fatalf("string probe [%q,%q] did not compile", iv[0], iv[1])
		}
		sel := make([]int, len(strs))
		for i := range sel {
			sel[i] = i
		}
		got := pr.FilterWindow(0, 0, sel, nil)
		var want []int
		for i, s := range strs {
			if s >= iv[0] && s <= iv[1] {
				want = append(want, i)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("string probe [%q,%q]: got %v want %v", iv[0], iv[1], got, want)
		}
	}
}

// testTable builds a partitioned storage table covering all four column
// kinds, sized to span several segments per shard.
func testTable(t *testing.T, rows, shards int) *storage.Table {
	t.Helper()
	schema := &catalog.TableSchema{
		Name: "mix",
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int},
			{Name: "grp", Type: catalog.Int},
			{Name: "day", Type: catalog.Date},
			{Name: "tag", Type: catalog.String},
			{Name: "score", Type: catalog.Float},
		},
		PrimaryKey: "id",
	}
	if shards > 1 {
		spec := &catalog.PartitionSpec{Column: "id", Kind: catalog.RangePartition, Partitions: shards}
		for b := 1; b < shards; b++ {
			spec.Bounds = append(spec.Bounds, int64(b*rows/shards))
		}
		schema.Partition = spec
	}
	tab, err := storage.NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	tags := []string{"red", "green", "blue", "cyan"}
	for i := 0; i < rows; i++ {
		row := value.Row{
			value.Int(int64(i)),
			value.Int(int64(i / 512)),
			value.Date(int64((i * 13) % 4000)),
			value.Str(tags[(i/7)%len(tags)]),
			value.Float(float64(i) * 0.25),
		}
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// TestBuildTableIdentity checks shard-aligned tiling and full decode
// identity against storage.Table.Value on a partitioned table.
func TestBuildTableIdentity(t *testing.T) {
	tab := testTable(t, 3*SegmentRows+900, 3)
	e := buildTable(tab)
	if e.Rows() != tab.NumRows() {
		t.Fatalf("encoding rows = %d, want %d", e.Rows(), tab.NumRows())
	}
	for si := 0; si < e.NumSegments(); si++ {
		seg := e.Segment(si)
		lo, hi := tab.PartitionSpan(seg.Shard)
		if seg.Lo < lo || seg.Hi > hi {
			t.Fatalf("segment %d [%d,%d) escapes shard %d span [%d,%d)", si, seg.Lo, seg.Hi, seg.Shard, lo, hi)
		}
		if (seg.Lo-lo)%SegmentRows != 0 {
			t.Fatalf("segment %d not aligned to shard base", si)
		}
	}
	for c := 0; c < e.NumCols(); c++ {
		got := decodeAll(e, c)
		for r := 0; r < tab.NumRows(); r++ {
			if want := tab.Value(r, c); got[r] != want {
				t.Fatalf("col %d row %d: decoded %v, want %v", c, r, got[r], want)
			}
		}
	}
	if e.EncodedBytes() >= e.RawBytes() {
		t.Errorf("EncodedBytes %d >= RawBytes %d; expected compression", e.EncodedBytes(), e.RawBytes())
	}
}

func TestSetGeneration(t *testing.T) {
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	tab, err := db.CreateTable(&catalog.TableSchema{
		Name:       "g",
		Columns:    []catalog.Column{{Name: "k", Type: catalog.Int}},
		PrimaryKey: "k",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tab.Append(value.Row{value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	set, err := BuildAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if set.Generation() != 1 {
		t.Fatalf("generation after BuildAll = %d, want 1", set.Generation())
	}
	enc, ok := set.For("g")
	if !ok || enc.Rows() != 10 {
		t.Fatalf("For(g) = %v rows, ok=%v", enc, ok)
	}
	if err := tab.Append(value.Row{value.Int(99)}); err != nil {
		t.Fatal(err)
	}
	// Stale until rebuilt: row counts diverge.
	if enc.Rows() == tab.NumRows() {
		t.Fatal("encoding row count should lag the append")
	}
	if err := set.Rebuild(db); err != nil {
		t.Fatal(err)
	}
	if set.Generation() != 2 {
		t.Fatalf("generation after Rebuild = %d, want 2", set.Generation())
	}
	enc, _ = set.For("g")
	if enc.Rows() != tab.NumRows() {
		t.Fatalf("rebuilt encoding rows = %d, want %d", enc.Rows(), tab.NumRows())
	}
}
