// Package colstore provides compressed columnar segment encodings behind
// the storage layer's Table API: per-segment dictionary, run-length,
// and frame-of-reference + bit-packed column representations with zone
// maps (min/max/null-count/distinct-hint) per segment and column.
//
// Segments tile each partition shard's contiguous row-id span in
// SegmentRows blocks starting at the shard base — the same tiling the
// engine's morsel scheduler uses — so every 1024-row batch window the
// scan operators process lies inside exactly one segment at any degree
// of parallelism, and partitioned layouts compose unchanged.
//
// The encodings are a read-only acceleration structure built from (and
// checked against) the authoritative row storage: an encoding records
// the row count it was built at, and consumers fall back to the row
// path when the table has grown since. Encoded scans are counter
// transparent by design — they charge the exact sequential-page and
// tuple counters the row path charges, including for zone-skipped
// segments — so the cost model keeps pricing plan shape, not physical
// encoding, and differential tests can demand byte-identical counters.
// The win is wall-clock time and resident bytes, not simulated I/O.
package colstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"robustqo/internal/catalog"
	"robustqo/internal/storage"
)

// SegmentRows is the row span one segment covers. It equals the engine's
// morsel size (4 × the 1024-row batch size) so segment boundaries
// coincide with morsel boundaries; engine tests pin the equality.
const SegmentRows = 4096

// FormatVersion identifies the encoding layout; it participates in the
// optimizer's LayoutKey so a format change invalidates cached plans.
const FormatVersion = 1

// Segment is one encoded block: the half-open global row-id span
// [Lo, Hi) and the partition shard the span was tiled from.
type Segment struct {
	Lo, Hi int
	Shard  int
}

// Rows returns the segment's row count.
func (s Segment) Rows() int { return s.Hi - s.Lo }

// ZoneMap summarizes one column over one segment. Min/Max are in the
// value domain for Int and Date columns and in dictionary-code space for
// String columns (the dictionary is sorted, so code order is value
// order). NullCount is always zero — the storage layer has no NULLs —
// and is kept so the zone format matches what a nullable layout needs.
// DistinctHint is a cheap upper-bound style hint: run count for RLE
// segments, code span for dictionary segments, 0 when unknown.
type ZoneMap struct {
	Min, Max     int64
	NullCount    int
	DistinctHint int
}

// encKind selects the physical representation of one segment-column.
type encKind uint8

const (
	// encRaw aliases the table's float payload; Float columns are stored
	// uncompressed (they neither dictionary- nor delta-encode usefully
	// here) and support no encoded probes.
	encRaw encKind = iota
	// encPacked is frame-of-reference + bit-packing: value = ref + code,
	// codes packed at a fixed bit width.
	encPacked
	// encRLE is run-length encoding: runVals[i] repeats until row offset
	// runEnds[i].
	encRLE
	// encDict is bit-packed codes into the column's table-wide sorted
	// dictionary.
	encDict
)

// segColumn is the encoded payload of one column over one segment.
type segColumn struct {
	enc  encKind
	zone ZoneMap
	// encPacked / encDict payload.
	ref   int64
	width uint8
	words []uint64
	// encRLE payload: runEnds are exclusive end offsets within the
	// segment (a prefix-sum of run lengths), parallel to runVals.
	runVals []int64
	runEnds []int32
	// encRaw payload.
	floats []float64
}

// colEncoding is one column across all segments.
type colEncoding struct {
	kind catalog.Type
	// dict is the table-wide sorted dictionary of a String column.
	dict []string
	segs []segColumn
}

// TableEncoding is the compressed columnar image of one table at a
// moment in time.
type TableEncoding struct {
	name string
	rows int
	segs []Segment
	cols []colEncoding

	encodedBytes int64
	rawBytes     int64
}

// Name returns the encoded table's name.
func (e *TableEncoding) Name() string { return e.name }

// Rows returns the row count the encoding was built at; consumers
// compare it against the table's current count to detect staleness.
func (e *TableEncoding) Rows() int { return e.rows }

// NumSegments returns the segment count.
func (e *TableEncoding) NumSegments() int { return len(e.segs) }

// Segment returns segment i's row span.
func (e *TableEncoding) Segment(i int) Segment { return e.segs[i] }

// NumCols returns the column count.
func (e *TableEncoding) NumCols() int { return len(e.cols) }

// ColKind returns the declared type of column c.
func (e *TableEncoding) ColKind(c int) catalog.Type { return e.cols[c].kind }

// Dict returns the table-wide sorted dictionary of a String column, or
// nil for other column types. Callers must not modify it.
func (e *TableEncoding) Dict(c int) []string { return e.cols[c].dict }

// Zone returns the zone map of column c over segment si; ok is false
// for raw (Float) segment-columns, which carry no zones.
func (e *TableEncoding) Zone(c, si int) (ZoneMap, bool) {
	sc := &e.cols[c].segs[si]
	if sc.enc == encRaw {
		return ZoneMap{}, false
	}
	return sc.zone, true
}

// EncodedBytes returns the resident size of the encoded representation:
// packed words, run lists, dictionaries, raw float payloads, and zone
// maps.
func (e *TableEncoding) EncodedBytes() int64 { return e.encodedBytes }

// RawBytes returns the resident size of the equivalent uncompressed
// columnar representation (8 bytes per numeric cell, header + bytes per
// string cell) — the baseline the compression ratio is measured
// against.
func (e *TableEncoding) RawBytes() int64 { return e.rawBytes }

// SegIndex returns the index of the segment containing global row id
// row. The caller must pass a row inside the encoded span. Hand-rolled
// binary search: this runs once per scan window on the hot path.
//
//qo:hotpath
func (e *TableEncoding) SegIndex(row int) int {
	lo, hi := 0, len(e.segs)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if e.segs[mid].Lo <= row {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Set holds the encodings of a database's tables plus a generation
// counter the plan-cache layout key folds in: rebuilding the encodings
// bumps the generation, so cached plans bound to the old segment layout
// miss instead of being served.
type Set struct {
	mu     sync.RWMutex
	gen    atomic.Uint64
	tables map[string]*TableEncoding
}

// BuildAll encodes every table of the database and returns the set at
// generation 1.
func BuildAll(db *storage.Database) (*Set, error) {
	s := &Set{tables: make(map[string]*TableEncoding)}
	if err := s.build(db); err != nil {
		return nil, err
	}
	s.gen.Store(1)
	return s, nil
}

// Rebuild re-encodes every table against the database's current contents
// and bumps the generation.
func (s *Set) Rebuild(db *storage.Database) error {
	if err := s.build(db); err != nil {
		return err
	}
	s.gen.Add(1)
	return nil
}

func (s *Set) build(db *storage.Database) error {
	names := db.Catalog.TableNames()
	encs := make(map[string]*TableEncoding, len(names))
	for _, name := range names {
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("colstore: catalog table %q missing from storage", name)
		}
		encs[name] = buildTable(t)
	}
	s.mu.Lock()
	s.tables = encs
	s.mu.Unlock()
	return nil
}

// For returns the encoding of the named table.
func (s *Set) For(name string) (*TableEncoding, bool) {
	s.mu.RLock()
	e, ok := s.tables[name]
	s.mu.RUnlock()
	return e, ok
}

// Generation returns the set's build generation; it increases on every
// Rebuild.
func (s *Set) Generation() uint64 { return s.gen.Load() }

// EncodedBytes sums EncodedBytes over every encoded table.
func (s *Set) EncodedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, e := range s.tables {
		n += e.encodedBytes
	}
	return n
}

// RawBytes sums RawBytes over every encoded table.
func (s *Set) RawBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, e := range s.tables {
		n += e.rawBytes
	}
	return n
}
