package colstore

import (
	"encoding/binary"
	"strings"
	"testing"

	"robustqo/internal/catalog"
)

// Fuzz round-trip harnesses: each steers the fuzzed bytes toward one
// codec's shape, encodes through the production entry point, and checks
// decode identity and probe/zone soundness. Run via `make fuzz-smoke`
// or `go test -fuzz=FuzzX ./internal/colstore`.

func fuzzCheckInts(t *testing.T, vals []int64) {
	t.Helper()
	if len(vals) == 0 {
		return
	}
	e := encOfInts(vals, catalog.Int)
	got := decodeAll(e, 0)
	for i, v := range got {
		if v.I != vals[i] {
			t.Fatalf("row %d decoded %d, want %d (enc=%d)", i, v.I, vals[i], e.cols[0].segs[0].enc)
		}
	}
	zone, ok := e.Zone(0, 0)
	if !ok {
		t.Fatal("int segment lost its zone map")
	}
	for _, v := range vals {
		if v < zone.Min || v > zone.Max {
			t.Fatalf("value %d escapes zone [%d,%d]", v, zone.Min, zone.Max)
		}
	}
	// Probe the zone midpoint interval and compare with row-domain eval;
	// unsigned midpoint arithmetic avoids overflow on extreme zones.
	mid := int64(uint64(zone.Min) + (uint64(zone.Max)-uint64(zone.Min))/2)
	pr, _ := e.CompileProbe(Pred{Col: 0, Lo: zone.Min, Hi: mid})
	sel := make([]int, len(vals))
	for i := range sel {
		sel[i] = i
	}
	out := pr.FilterWindow(0, 0, sel, nil)
	j := 0
	for i, v := range vals {
		if v >= zone.Min && v <= mid {
			if j >= len(out) || out[j] != i {
				t.Fatalf("probe missed row %d (value %d)", i, v)
			}
			j++
		}
	}
	if j != len(out) {
		t.Fatalf("probe kept %d extra rows", len(out)-j)
	}
}

// FuzzBitPackRoundTrip shapes high-entropy values at a fuzzed bit width,
// exercising the packWords/unpack pair across word boundaries.
func FuzzBitPackRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 255, 0, 7, 9, 200}, uint8(13))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1}, uint8(63))
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		width = width%64 + 1
		mask := uint64(1)<<width - 1
		var vals []int64
		for len(data) >= 8 {
			vals = append(vals, int64(binary.LittleEndian.Uint64(data)&mask))
			data = data[8:]
		}
		fuzzCheckInts(t, vals)
	})
}

// FuzzFORRoundTrip shapes values around a fuzzed frame-of-reference base,
// including negative and near-overflow bases.
func FuzzFORRoundTrip(f *testing.F) {
	f.Add(int64(-9223372036854775808), []byte{0, 1, 2, 3})
	f.Add(int64(9223372036854775000), []byte{200, 100, 0})
	f.Add(int64(-5), []byte{1, 9, 3, 3, 3, 7})
	f.Fuzz(func(t *testing.T, base int64, data []byte) {
		vals := make([]int64, len(data))
		for i, b := range data {
			vals[i] = base + int64(b)
		}
		fuzzCheckInts(t, vals)
	})
}

// FuzzRLERoundTrip expands fuzzed (value, length) pairs into runs so the
// codec chooser prefers run-length encoding.
func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte{5, 100, 9, 3, 5, 200})
	f.Add([]byte{0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []int64
		for i := 0; i+1 < len(data) && len(vals) < 2*SegmentRows; i += 2 {
			v, n := int64(int8(data[i])), int(data[i+1])%64+1
			for j := 0; j < n; j++ {
				vals = append(vals, v)
			}
		}
		fuzzCheckInts(t, vals)
	})
}

// FuzzDictRoundTrip splits the fuzzed input into strings and round-trips
// the dictionary codec, checking code-space zones stay sound.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add("pear,apple,pear,,fig")
	f.Add("a,b,c,a,a,a,zzz,\x00\x01")
	f.Fuzz(func(t *testing.T, s string) {
		vals := strings.Split(s, ",")
		e := encOfStrings(vals)
		for i, v := range decodeAll(e, 0) {
			if v.S != vals[i] {
				t.Fatalf("row %d decoded %q, want %q", i, v.S, vals[i])
			}
		}
		dict := e.Dict(0)
		for i := 1; i < len(dict); i++ {
			if dict[i-1] >= dict[i] {
				t.Fatalf("dictionary not strictly sorted at %d", i)
			}
		}
		// Equality probe per distinct value must select exactly its rows.
		for _, needle := range dict {
			pr, ok := e.CompileProbe(Pred{Col: 0, IsStr: true, StrLo: needle, StrHi: needle, HasStrLo: true, HasStrHi: true})
			if !ok {
				t.Fatalf("probe for %q did not compile", needle)
			}
			sel := make([]int, len(vals))
			for i := range sel {
				sel[i] = i
			}
			out := pr.FilterWindow(0, 0, sel, nil)
			j := 0
			for i, v := range vals {
				if v == needle {
					if j >= len(out) || out[j] != i {
						t.Fatalf("probe %q missed row %d", needle, i)
					}
					j++
				}
			}
			if j != len(out) {
				t.Fatalf("probe %q kept %d extra rows", needle, len(out)-j)
			}
		}
	})
}
