package colstore

import (
	"robustqo/internal/catalog"
	"robustqo/internal/value"
)

// Decode kernels: the late-materialization path of encoded scans. Both
// kernels append value.Values identical to what storage.Table.Value
// returns for the same rows — byte-identical materialization is what
// lets differential tests compare encoded and row scans directly. They
// run per batch window on the scan hot path: no closures, no boxing, no
// per-call allocation beyond growing the caller's pooled destination.

// AppendColRange eagerly decodes column c over the global row-id span
// [lo, hi) — which may cross segments — appending one value per row.
//
//qo:hotpath
func (e *TableEncoding) AppendColRange(dst []value.Value, c, lo, hi int) []value.Value {
	ce := &e.cols[c]
	kind := ce.kind
	for lo < hi {
		si := e.SegIndex(lo)
		seg := e.segs[si]
		stop := hi
		if seg.Hi < stop {
			stop = seg.Hi
		}
		sc := &ce.segs[si]
		base := lo - seg.Lo
		n := stop - lo
		switch sc.enc {
		case encRaw:
			for i := 0; i < n; i++ {
				dst = append(dst, value.Value{Kind: catalog.Float, F: sc.floats[base+i]})
			}
		case encPacked:
			if sc.width == 0 {
				for i := 0; i < n; i++ {
					dst = append(dst, value.Value{Kind: kind, I: sc.ref})
				}
			} else {
				for i := 0; i < n; i++ {
					dst = append(dst, value.Value{Kind: kind, I: sc.ref + int64(unpack(sc.words, base+i, sc.width))})
				}
			}
		case encRLE:
			ri := runIndex(sc.runEnds, base)
			for i := 0; i < n; i++ {
				for int32(base+i) >= sc.runEnds[ri] {
					ri++
				}
				dst = append(dst, value.Value{Kind: kind, I: sc.runVals[ri]})
			}
		case encDict:
			if sc.width == 0 {
				for i := 0; i < n; i++ {
					dst = append(dst, value.Value{Kind: catalog.String, S: ce.dict[0]})
				}
			} else {
				for i := 0; i < n; i++ {
					dst = append(dst, value.Value{Kind: catalog.String, S: ce.dict[unpack(sc.words, base+i, sc.width)]})
				}
			}
		}
		lo = stop
	}
	return dst
}

// AppendColSel late-materializes column c for the selected rows of a
// window inside segment si: sel holds ascending offsets relative to
// global row id winLo, and winLo+sel[i] must lie inside the segment.
//
//qo:hotpath
func (e *TableEncoding) AppendColSel(dst []value.Value, c, si, winLo int, sel []int) []value.Value {
	ce := &e.cols[c]
	sc := &ce.segs[si]
	base := winLo - e.segs[si].Lo
	kind := ce.kind
	switch sc.enc {
	case encRaw:
		for _, s := range sel {
			dst = append(dst, value.Value{Kind: catalog.Float, F: sc.floats[base+s]})
		}
	case encPacked:
		if sc.width == 0 {
			for range sel {
				dst = append(dst, value.Value{Kind: kind, I: sc.ref})
			}
		} else {
			for _, s := range sel {
				dst = append(dst, value.Value{Kind: kind, I: sc.ref + int64(unpack(sc.words, base+s, sc.width))})
			}
		}
	case encRLE:
		if len(sel) == 0 {
			return dst
		}
		ri := runIndex(sc.runEnds, base+sel[0])
		for _, s := range sel {
			for int32(base+s) >= sc.runEnds[ri] {
				ri++
			}
			dst = append(dst, value.Value{Kind: kind, I: sc.runVals[ri]})
		}
	case encDict:
		if sc.width == 0 {
			for range sel {
				dst = append(dst, value.Value{Kind: catalog.String, S: ce.dict[0]})
			}
		} else {
			for _, s := range sel {
				dst = append(dst, value.Value{Kind: catalog.String, S: ce.dict[unpack(sc.words, base+s, sc.width)]})
			}
		}
	}
	return dst
}

// runIndex returns the index of the run containing segment-relative
// offset pos: the first run whose exclusive end exceeds pos. Hand-rolled
// binary search — sort.Search would allocate a closure on the hot path.
//
//qo:hotpath
func runIndex(runEnds []int32, pos int) int {
	lo, hi := 0, len(runEnds)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(runEnds[mid]) <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
