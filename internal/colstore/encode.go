package colstore

import (
	"math/bits"
	"sort"

	"robustqo/internal/catalog"
	"robustqo/internal/storage"
)

// Size accounting constants: what one encoded unit costs resident, used
// for the RawBytes/EncodedBytes comparison the compression gate checks.
const (
	numericCellBytes = 8  // one int64/float64 cell
	stringHeadBytes  = 16 // string header (pointer + length)
	runBytes         = 12 // one RLE run: int64 value + int32 end offset
	segMetaBytes     = 40 // per segment-column: zone map + ref/width/enc
)

// buildTable encodes every column of the table over shard-aligned
// SegmentRows segments.
func buildTable(t *storage.Table) *TableEncoding {
	e := &TableEncoding{name: t.Name(), rows: t.NumRows()}
	for p := 0; p < t.Partitions(); p++ {
		lo, hi := t.PartitionSpan(p)
		for s := lo; s < hi; s += SegmentRows {
			end := s + SegmentRows
			if end > hi {
				end = hi
			}
			e.segs = append(e.segs, Segment{Lo: s, Hi: end, Shard: p})
		}
	}
	schema := t.Schema()
	e.cols = make([]colEncoding, len(schema.Columns))
	for c := range schema.Columns {
		kind := schema.Columns[c].Type
		ce := &e.cols[c]
		ce.kind = kind
		ce.segs = make([]segColumn, len(e.segs))
		switch kind {
		case catalog.Int, catalog.Date:
			data := t.Ints(c)
			for si, seg := range e.segs {
				encodeIntSeg(&ce.segs[si], data[seg.Lo:seg.Hi])
				e.encodedBytes += intSegBytes(&ce.segs[si]) + segMetaBytes
			}
			e.rawBytes += int64(len(data)) * numericCellBytes
		case catalog.Float:
			data := t.Floats(c)
			for si, seg := range e.segs {
				sc := &ce.segs[si]
				sc.enc = encRaw
				sc.floats = data[seg.Lo:seg.Hi]
				e.encodedBytes += int64(seg.Rows()) * numericCellBytes
			}
			e.rawBytes += int64(len(data)) * numericCellBytes
		case catalog.String:
			data := t.Strings(c)
			codes := buildDict(ce, data)
			for si, seg := range e.segs {
				encodeDictSeg(ce, &ce.segs[si], codes[seg.Lo:seg.Hi])
				e.encodedBytes += int64(len(ce.segs[si].words))*numericCellBytes + segMetaBytes
			}
			for _, s := range ce.dict {
				e.encodedBytes += stringHeadBytes + int64(len(s))
			}
			for _, s := range data {
				e.rawBytes += stringHeadBytes + int64(len(s))
			}
		}
	}
	return e
}

// encodeIntSeg picks the cheaper of run-length and frame-of-reference +
// bit-packing for one Int/Date segment and fills sc.
func encodeIntSeg(sc *segColumn, vals []int64) {
	if len(vals) == 0 {
		sc.enc = encPacked
		return
	}
	mn, mx := vals[0], vals[0]
	runs := 1
	for i := 1; i < len(vals); i++ {
		v := vals[i]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if v != vals[i-1] {
			runs++
		}
	}
	sc.zone = ZoneMap{Min: mn, Max: mx}
	width := bitsFor(uint64(mx) - uint64(mn))
	packedBytes := packedWordLen(len(vals), width) * numericCellBytes
	if int64(runs)*runBytes < int64(packedBytes) {
		sc.enc = encRLE
		sc.runVals = make([]int64, 0, runs)
		sc.runEnds = make([]int32, 0, runs)
		for i := 0; i < len(vals); {
			j := i + 1
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			sc.runVals = append(sc.runVals, vals[i])
			sc.runEnds = append(sc.runEnds, int32(j))
			i = j
		}
		sc.zone.DistinctHint = runs
		return
	}
	sc.enc = encPacked
	sc.ref = mn
	sc.width = width
	sc.words = packWords(vals, mn, width)
}

// buildDict collects the column's table-wide sorted dictionary into ce
// and returns the per-row codes.
func buildDict(ce *colEncoding, data []string) []int64 {
	sorted := append([]string(nil), data...)
	sort.Strings(sorted)
	for _, s := range sorted {
		if len(ce.dict) == 0 || s != ce.dict[len(ce.dict)-1] {
			ce.dict = append(ce.dict, s)
		}
	}
	code := make(map[string]int64, len(ce.dict))
	for i, s := range ce.dict {
		code[s] = int64(i)
	}
	codes := make([]int64, len(data))
	for i, s := range data {
		codes[i] = code[s]
	}
	return codes
}

// encodeDictSeg bit-packs one segment's dictionary codes; the zone map
// is in code space, which the sorted dictionary makes order-preserving.
func encodeDictSeg(ce *colEncoding, sc *segColumn, codes []int64) {
	sc.enc = encDict
	if len(codes) == 0 {
		return
	}
	mn, mx := codes[0], codes[0]
	for _, c := range codes[1:] {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	sc.zone = ZoneMap{Min: mn, Max: mx, DistinctHint: int(mx - mn + 1)}
	// Codes pack from zero (ref stays 0) at the width of the full
	// dictionary, so probe results translate across segments.
	sc.width = bitsFor(uint64(len(ce.dict) - 1))
	sc.words = packWords(codes, 0, sc.width)
}

func intSegBytes(sc *segColumn) int64 {
	if sc.enc == encRLE {
		return int64(len(sc.runVals)) * runBytes
	}
	return int64(len(sc.words)) * numericCellBytes
}

// bitsFor returns the bit width needed to represent delta.
func bitsFor(delta uint64) uint8 { return uint8(bits.Len64(delta)) }

// packedWordLen returns the word count packing n values at width bits.
func packedWordLen(n int, width uint8) int {
	return (n*int(width) + 63) / 64
}

// packWords frame-of-reference encodes vals against ref and packs the
// codes at width bits, little-endian within and across words. Width 0
// (a constant segment) packs to no words at all.
func packWords(vals []int64, ref int64, width uint8) []uint64 {
	if width == 0 {
		return nil
	}
	words := make([]uint64, packedWordLen(len(vals), width))
	for i, v := range vals {
		code := uint64(v) - uint64(ref)
		bit := i * int(width)
		w, off := bit>>6, uint(bit&63)
		words[w] |= code << off
		if off+uint(width) > 64 {
			words[w+1] = code >> (64 - off)
		}
	}
	return words
}

// unpack extracts the i-th width-bit code. The inverse of packWords;
// width must be the packing width and nonzero.
//
//qo:hotpath
func unpack(words []uint64, i int, width uint8) uint64 {
	bit := i * int(width)
	w, off := bit>>6, uint(bit&63)
	v := words[w] >> off
	if off+uint(width) > 64 {
		v |= words[w+1] << (64 - off)
	}
	if width >= 64 {
		return v
	}
	return v & (uint64(1)<<width - 1)
}
