package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BatchPool tracks getBatch/putBatch pairs through each function. The
// engine's column batches come from a sync.Pool; a batch that is
// obtained and neither put back nor handed to an owner quietly shrinks
// the pool and turns the steady-state zero-allocation pipeline back
// into one allocation per operator lifetime — exactly the tail-latency
// erosion the robustness argument forbids.
//
// Ownership may end in one of three ways: putBatch (directly or
// deferred), transfer to the caller (return, channel send, argument to
// another call), or storage in an owner field — in which case some
// function in the same package must putBatch that field, mirroring the
// operator Open/Close discipline. The analyzer additionally flags
// early-return windows between a getBatch and a plain putBatch,
// double puts, and uses of a batch after it was put back (the pool may
// have re-issued it to another operator by then).
var BatchPool = &Analyzer{
	Name: "batchpool",
	Doc: "track getBatch/putBatch ownership per function: flag leaked, " +
		"double-put, and used-after-put pooled batches, and owner fields " +
		"that no putBatch ever releases",
	Run: runBatchPool,
}

func runBatchPool(pass *Pass) {
	// fieldGets: struct fields assigned from getBatch (field store or
	// composite-literal key), with every store position. fieldPuts:
	// fields that some putBatch in the package releases.
	fieldGets := make(map[types.Object][]token.Pos)
	fieldPuts := make(map[types.Object]bool)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBatchScope(pass, fn.Body, fieldGets)
		}
		// Field puts and the sibling-statement state machine see the
		// whole file, nested literals included.
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isNamedCall(pass, call, "putBatch") && len(call.Args) == 1 {
				if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
					if obj := pass.Info.Uses[sel.Sel]; obj != nil {
						fieldPuts[obj] = true
					}
				}
			}
			if blk, ok := n.(*ast.BlockStmt); ok {
				checkBatchSiblings(pass, blk)
			}
			return true
		})
	}

	var leaked []types.Object
	for obj := range fieldGets {
		if !fieldPuts[obj] {
			leaked = append(leaked, obj)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].Pos() < leaked[j].Pos() })
	for _, obj := range leaked {
		for _, pos := range fieldGets[obj] {
			pass.Reportf(pos,
				"field %q receives pooled batches but no putBatch in this package ever releases it",
				obj.Name())
		}
	}
}

// checkBatchScope analyzes one function body for locally owned batches;
// nested function literals are recursed into as independent scopes.
func checkBatchScope(pass *Pass, body *ast.BlockStmt, fieldGets map[types.Object][]token.Pos) {
	type batchVar struct {
		obj types.Object
		pos token.Pos
	}
	var batches []batchVar
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			checkBatchScope(pass, st.Body, fieldGets)
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isNamedCall(pass, call, "getBatch") {
				pass.Reportf(call.Pos(), "result of getBatch is discarded; the batch leaks from the pool")
			}
		case *ast.KeyValueExpr:
			// Composite-literal owner field: &worker{out: getBatch(...)}.
			call, ok := ast.Unparen(st.Value).(*ast.CallExpr)
			if !ok || !isNamedCall(pass, call, "getBatch") {
				return true
			}
			if key, ok := st.Key.(*ast.Ident); ok {
				if obj := pass.Info.Uses[key]; obj != nil {
					fieldGets[obj] = append(fieldGets[obj], call.Pos())
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !isNamedCall(pass, call, "getBatch") {
				return true
			}
			switch lhs := ast.Unparen(st.Lhs[0]).(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(), "result of getBatch is discarded; the batch leaks from the pool")
					return true
				}
				obj := pass.Info.Defs[lhs]
				if obj == nil {
					obj = pass.Info.Uses[lhs]
				}
				if obj != nil {
					batches = append(batches, batchVar{obj: obj, pos: call.Pos()})
				}
			case *ast.SelectorExpr:
				// Field store: ownership moves to the struct; the package
				// must release the field somewhere.
				if obj := pass.Info.Uses[lhs.Sel]; obj != nil {
					fieldGets[obj] = append(fieldGets[obj], call.Pos())
				}
			}
		}
		return true
	})
	for _, bv := range batches {
		if batchTransferred(pass, body, bv.obj) {
			continue
		}
		deferred, first := findPuts(pass, body, bv.obj)
		switch {
		case !deferred && first == token.NoPos:
			pass.Reportf(bv.pos,
				"batch %q is never returned to the pool; putBatch it or transfer ownership",
				bv.obj.Name())
		case !deferred && returnBetween(body, bv.pos, first):
			pass.Reportf(bv.pos,
				"a return path between getBatch and putBatch(%s) leaks the batch; use defer or put it on the early return",
				bv.obj.Name())
		}
	}
}

// batchTransferred reports whether ownership of the batch demonstrably
// leaves this function: returned, sent on a channel, stored into a
// field or element, placed in a composite literal, or passed to a call
// other than putBatch.
func batchTransferred(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
				return false
			}
			return true
		})
		return found
	}
	transferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		if transferred {
			return false
		}
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if usesObj(r) {
					transferred = true
				}
			}
		case *ast.SendStmt:
			if usesObj(st.Value) {
				transferred = true
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) || !usesObj(rhs) {
					continue
				}
				switch ast.Unparen(st.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					transferred = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if e, ok := el.(ast.Expr); ok && usesObj(e) {
					transferred = true
				}
			}
		case *ast.CallExpr:
			if isNamedCall(pass, st, "putBatch") || isNamedCall(pass, st, "getBatch") {
				return true
			}
			for _, arg := range st.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					transferred = true
				}
			}
		}
		return true
	})
	return transferred
}

// findPuts locates putBatch calls on the object: whether any is
// deferred (directly or via a deferred closure), and the position of
// the first plain put.
func findPuts(pass *Pass, body *ast.BlockStmt, obj types.Object) (deferred bool, first token.Pos) {
	isPut := func(call *ast.CallExpr) bool {
		if !isNamedCall(pass, call, "putBatch") || len(call.Args) != 1 {
			return false
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		return ok && pass.Info.Uses[id] == obj
	}
	first = token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(d, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isPut(call) {
					deferred = true
				}
				return true
			})
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPut(call) {
			if first == token.NoPos || call.Pos() < first {
				first = call.Pos()
			}
		}
		return true
	})
	return deferred, first
}

// checkBatchSiblings runs a small typestate machine over one statement
// list: after a plain putBatch(x), a second put of x is a double put
// and any other use of x is a use-after-put, until x is reassigned.
func checkBatchSiblings(pass *Pass, blk *ast.BlockStmt) {
	put := make(map[string]token.Pos)
	for _, st := range blk.List {
		if _, ok := st.(*ast.DeferStmt); ok {
			continue // defers run at exit, outside sibling order
		}
		if es, ok := st.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && isNamedCall(pass, call, "putBatch") && len(call.Args) == 1 {
				if key := batchExprKey(pass, call.Args[0]); key != "" {
					if _, done := put[key]; done {
						name := exprString(ast.Unparen(call.Args[0]))
						if name == "" {
							name = "batch"
						}
						pass.Reportf(call.Pos(),
							"double putBatch(%s); the pool may already have re-issued the batch", name)
					} else {
						put[key] = call.Pos()
					}
					continue
				}
			}
		}
		if as, ok := st.(*ast.AssignStmt); ok {
			for key := range put {
				if batchStmtUses(pass, as.Rhs, key) {
					pass.Reportf(as.Pos(), "batch used after putBatch; it may belong to another operator now")
					delete(put, key)
				}
			}
			for _, lhs := range as.Lhs {
				delete(put, batchExprKey(pass, lhs))
			}
			continue
		}
		for key := range put {
			if batchStmtUses(pass, []ast.Node{st}, key) {
				pass.Reportf(st.Pos(), "batch used after putBatch; it may belong to another operator now")
				delete(put, key)
			}
		}
	}
}

// batchExprKey names a trackable lvalue: a variable, or a chain of
// field selections rooted at one ("o.out"). Objects make the key, so
// shadowing cannot alias two different variables.
func batchExprKey(pass *Pass, e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[t]
		if obj == nil {
			obj = pass.Info.Defs[t]
		}
		if _, ok := obj.(*types.Var); ok {
			return fmt.Sprintf("v%p", obj)
		}
	case *ast.SelectorExpr:
		root := batchExprKey(pass, t.X)
		obj := pass.Info.Uses[t.Sel]
		if root != "" && obj != nil {
			return fmt.Sprintf("%s.%p", root, obj)
		}
	}
	return ""
}

// batchStmtUses reports whether any node mentions the tracked lvalue.
func batchStmtUses[T ast.Node](pass *Pass, nodes []T, key string) bool {
	found := false
	for _, nd := range nodes {
		ast.Inspect(nd, func(n ast.Node) bool {
			if found {
				return false
			}
			if e, ok := n.(ast.Expr); ok && batchExprKey(pass, e) == key {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// isNamedCall reports whether the call invokes a plain identifier
// function with the given name (getBatch/putBatch are package-level in
// the engine; fixtures define their own).
func isNamedCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == name
}
