package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp guards plan ranking against raw floating-point comparison.
// Costs and selectivities are sums of many small model terms; two plans
// whose costs differ only in the last few ulps are equal for every
// practical purpose, and ranking them with a raw == or < makes the
// chosen plan depend on association order of the additions. Equality
// (==, !=) between two non-constant float64 values is always flagged;
// ordering comparisons (<, <=, >, >=) are flagged when an operand is
// named like a cost or selectivity. The approved helpers live in
// internal/cost (cost.Less, cost.ApproxEqual), whose package is exempt.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flag raw ==/!= on float64 values and raw ordering comparisons on " +
		"cost/selectivity values; use cost.Less / cost.ApproxEqual",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	// The epsilon helpers themselves must compare raw floats.
	if pass.Pkg.Name() == "cost" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			if !isFloat64(pass, be.X) || !isFloat64(pass, be.Y) {
				return true
			}
			// Comparisons against constants are sentinel checks
			// (x == 0, s > 1 clamps), not plan ranking.
			if isConstExpr(pass, be.X) || isConstExpr(pass, be.Y) {
				return true
			}
			// x != x / x == x is the NaN idiom.
			if s := exprString(be.X); s != "" && s == exprString(be.Y) {
				return true
			}
			// x == math.Trunc(x) and friends test integrality exactly.
			if isRoundingIdiom(pass, be.X, be.Y) || isRoundingIdiom(pass, be.Y, be.X) {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				pass.Reportf(be.OpPos, "raw %s on float64 values; use cost.ApproxEqual or an explicit tolerance", be.Op)
			default:
				if costLike(be.X) || costLike(be.Y) {
					pass.Reportf(be.OpPos, "raw %s ranks float64 cost/selectivity values; use cost.Less or an explicit tolerance", be.Op)
				}
			}
			return true
		})
	}
}

func isFloat64(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.UntypedFloat)
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// costLike reports whether the expression's name suggests it holds a
// plan cost or a selectivity.
func costLike(e ast.Expr) bool {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		// e.g. model.Time(c), plan.Cost()
		return costLike(e.Fun)
	case *ast.IndexExpr:
		return costLike(e.X)
	default:
		return false
	}
	n := strings.ToLower(name)
	return strings.Contains(n, "cost") ||
		strings.Contains(n, "selectivity") ||
		n == "sel" || n == "joint" || n == "marg"
}

// isRoundingIdiom reports whether call is math.Trunc/Floor/Ceil/Round
// applied to other: comparing a value against its own rounding is an
// exact integrality test, not a ranking.
func isRoundingIdiom(pass *Pass, other, call ast.Expr) bool {
	c, ok := ast.Unparen(call).(*ast.CallExpr)
	if !ok || len(c.Args) != 1 {
		return false
	}
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "math" {
		return false
	}
	switch sel.Sel.Name {
	case "Trunc", "Floor", "Ceil", "Round", "RoundToEven":
	default:
		return false
	}
	s := exprString(c.Args[0])
	return s != "" && s == exprString(other)
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	default:
		return ""
	}
}
