package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// MetricName keeps the metrics registry's namespace coherent. Every
// name handed to Registry.Counter/Registry.Histogram must be a
// compile-time constant matching ^robustqo_[a-z0-9_]+$ — a dynamic
// name defeats static checking and invites unbounded cardinality — and
// one name must register as exactly one kind: the registry's
// get-or-create semantics would otherwise hand a counter and a
// histogram the same exposition line.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "registry metric names must be constants matching " +
		"^robustqo_[a-z0-9_]+$ and register as exactly one kind",
	Run: runMetricName,
}

var metricNameRe = regexp.MustCompile(`^robustqo_[a-z0-9_]+$`)

func runMetricName(pass *Pass) {
	type registration struct {
		kind string
		pos  token.Pos
	}
	kinds := make(map[string]registration)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			if kind != "Counter" && kind != "Histogram" {
				return true
			}
			if !isRegistry(pass.TypeOf(sel.X)) || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name must be a compile-time constant string so the registry namespace is statically checkable")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(arg.Pos(), "metric name %q must match ^robustqo_[a-z0-9_]+$", name)
				return true
			}
			if prev, ok := kinds[name]; ok && prev.kind != kind {
				pass.Reportf(arg.Pos(),
					"metric %q is registered as both %s and %s; one name, one kind", name, prev.kind, kind)
				return true
			}
			kinds[name] = registration{kind: kind, pos: arg.Pos()}
			return true
		})
	}
}

// isRegistry reports whether t is obs.Registry or a pointer to it
// (matched by package name so fixtures can stand in).
func isRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Registry" && o.Pkg() != nil && o.Pkg().Name() == "obs"
}
