package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"regexp"
)

// MetricName keeps the metrics registry's namespace coherent. Every
// name handed to Registry.Counter/Registry.Histogram must be a
// compile-time constant matching ^robustqo_[a-z0-9_]+$ — a dynamic
// name defeats static checking and invites unbounded cardinality — and
// one name must register as exactly one kind: the registry's
// get-or-create semantics would otherwise hand a counter and a
// histogram the same exposition line. Histogram registrations must also
// pass explicit bucket bounds — a package-level bucket var (the shared
// obs.*Buckets families) or a composite literal of strictly ascending
// constants — because the registry's first caller fixes the buckets for
// every later caller of the same name, so the bounds must be statically
// auditable at each registration site.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "registry metric names must be constants matching " +
		"^robustqo_[a-z0-9_]+$, register as exactly one kind, and " +
		"histograms must pass statically-known ascending bucket bounds",
	Run: runMetricName,
}

var metricNameRe = regexp.MustCompile(`^robustqo_[a-z0-9_]+$`)

func runMetricName(pass *Pass) {
	type registration struct {
		kind string
		pos  token.Pos
	}
	kinds := make(map[string]registration)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			if kind != "Counter" && kind != "Histogram" {
				return true
			}
			if !isRegistry(pass.TypeOf(sel.X)) || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name must be a compile-time constant string so the registry namespace is statically checkable")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(arg.Pos(), "metric name %q must match ^robustqo_[a-z0-9_]+$", name)
				return true
			}
			if prev, ok := kinds[name]; ok && prev.kind != kind {
				pass.Reportf(arg.Pos(),
					"metric %q is registered as both %s and %s; one name, one kind", name, prev.kind, kind)
				return true
			}
			kinds[name] = registration{kind: kind, pos: arg.Pos()}
			if kind == "Histogram" {
				checkBuckets(pass, call)
			}
			return true
		})
	}
}

// checkBuckets validates a Histogram registration's bucket-bounds
// argument: a reference to a package-level var (shared bucket families)
// or a non-empty composite literal of strictly ascending constants.
func checkBuckets(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	arg := ast.Unparen(call.Args[1])
	if tv, ok := pass.Info.Types[arg]; ok && tv.IsNil() {
		pass.Reportf(arg.Pos(),
			"histogram registration needs explicit bucket bounds (a shared bucket var or an ascending constant literal), not nil")
		return
	}
	switch b := arg.(type) {
	case *ast.CompositeLit:
		if len(b.Elts) == 0 {
			pass.Reportf(b.Pos(), "histogram bucket literal must not be empty")
			return
		}
		prev := math.Inf(-1)
		for _, e := range b.Elts {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				pass.Reportf(e.Pos(), "histogram bucket bounds must be compile-time constants")
				return
			}
			v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
			if v <= prev {
				pass.Reportf(e.Pos(), "histogram bucket bounds must be strictly ascending")
				return
			}
			prev = v
		}
	case *ast.Ident:
		checkBucketVar(pass, b, b.Pos())
	case *ast.SelectorExpr:
		checkBucketVar(pass, b.Sel, b.Pos())
	default:
		pass.Reportf(arg.Pos(),
			"histogram bucket bounds must be a package-level bucket var or an ascending constant literal")
	}
}

// checkBucketVar accepts only package-level bucket variables: locals
// and fields can be reassigned between registration sites, defeating
// the static audit.
func checkBucketVar(pass *Pass, id *ast.Ident, at token.Pos) {
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		pass.Reportf(at,
			"histogram bucket bounds must be a package-level bucket var or an ascending constant literal")
	}
}

// isRegistry reports whether t is obs.Registry or a pointer to it
// (matched by package name so fixtures can stand in).
func isRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Registry" && o.Pkg() != nil && o.Pkg().Name() == "obs"
}
