package lint

import (
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All()) {
		t.Fatalf("ByName(\"\") returned %d analyzers, want %d", len(all), len(All()))
	}
	two, err := ByName("floatcmp, nopanic")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "floatcmp" || two[1].Name != "nopanic" {
		t.Fatalf("ByName subset wrong: %v", two)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ToLower(a.Name) != a.Name {
			t.Errorf("analyzer name %q should be lowercase", a.Name)
		}
	}
}

// TestRepoIsClean runs the full suite over the enclosing module: the
// repo must satisfy its own invariants. This is the same check CI runs
// via cmd/qolint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool to load the module")
	}
	diags, err := Run(All(), "../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
