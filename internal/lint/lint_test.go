package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All()) {
		t.Fatalf("ByName(\"\") returned %d analyzers, want %d", len(all), len(All()))
	}
	two, err := ByName("floatcmp, nopanic")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "floatcmp" || two[1].Name != "nopanic" {
		t.Fatalf("ByName subset wrong: %v", two)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ToLower(a.Name) != a.Name {
			t.Errorf("analyzer name %q should be lowercase", a.Name)
		}
	}
}

// TestSuiteComplete pins the full analyzer roster: a new analyzer that
// is written but not registered in All() silently never runs in CI.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"batchpool", "counterthread", "ctxcounters", "determinism",
		"floatcmp", "goroutinejoin", "hotalloc", "maporder",
		"metricname", "nopanic", "spanend",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
			Analyzer: "batchpool",
			Message:  "batch leaks",
		},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, diags); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 1 || got[0]["file"] != "a.go" || got[0]["analyzer"] != "batchpool" || got[0]["line"] != float64(3) {
		t.Fatalf("unexpected JSON: %s", sb.String())
	}

	sb.Reset()
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty findings should encode as [], got %q", sb.String())
	}
}

// TestRepoIsClean runs the full suite over the enclosing module: the
// repo must satisfy its own invariants. This is the same check CI runs
// via cmd/qolint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool to load the module")
	}
	diags, err := Run(All(), "../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
