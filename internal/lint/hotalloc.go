package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc pins the engine's per-row allocation budget. Functions
// annotated with a //qo:hotpath doc comment (operator Next bodies, the
// vectorized evaluators, the join-table probe and build) are denied
// allocation-introducing constructs:
//
//   - calls into package fmt (formatting allocates),
//   - function literals (closure capture allocates),
//   - append to a local slice that was never pre-sized on this path,
//   - boxing a concrete value into an interface parameter,
//   - make/new and reference composite literals inside loops — the
//     per-row positions. One-per-call setup allocations outside loops
//     are tolerated; the budget is per row, not per call.
//
// A finding is waived by a //qo:alloc-ok <reason> comment on or above
// the line; the reason is mandatory, so every tolerated allocation
// carries its amortization argument in the source. This turns the >100x
// allocation reductions of the vectorized probe work into a checked
// invariant instead of a benchmark hope.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "deny allocation-introducing constructs in //qo:hotpath " +
		"functions unless waived with //qo:alloc-ok reason",
	Run: runHotAlloc,
}

const (
	hotpathMarker = "//qo:hotpath"
	allocOkMarker = "//qo:alloc-ok"
)

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		waived := collectAllocWaivers(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			checkHotFunc(pass, fn, waived)
		}
	}
}

// collectAllocWaivers indexes //qo:alloc-ok comments by line (the
// waiver covers its own line and the next, like suppressions) and
// reports reason-less waivers, which are themselves findings.
func collectAllocWaivers(pass *Pass, file *ast.File) map[int]bool {
	waived := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, allocOkMarker) {
				continue
			}
			rest := strings.TrimPrefix(text, allocOkMarker)
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				continue // e.g. //qo:alloc-okay, some other marker
			}
			// Fixture want-directives sharing the comment are not a reason.
			if i := strings.Index(rest, `// want "`); i >= 0 {
				rest = rest[:i]
			}
			line := pass.Fset.Position(c.Pos()).Line
			if strings.TrimSpace(rest) == "" {
				pass.Reportf(c.Pos(), "//qo:alloc-ok waiver must carry a reason")
				continue
			}
			waived[line] = true
			waived[line+1] = true
		}
	}
	return waived
}

// isHotpath reports whether the function's doc comment carries the
// //qo:hotpath marker.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl, waived map[int]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if waived[pass.Fset.Position(pos).Line] {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	// Loop bodies: allocations inside them are per-row, not per-call.
	type posRange struct{ lo, hi token.Pos }
	var loops []posRange
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, posRange{t.Body.Pos(), t.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posRange{t.Body.Pos(), t.Body.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, r := range loops {
			if pos >= r.lo && pos <= r.hi {
				return true
			}
		}
		return false
	}

	// Locals that were demonstrably pre-sized or alias pre-sized
	// storage: assigned from make, a field or element expression, or a
	// call (identSel-style grow-to-high-water helpers).
	presized := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CallExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
				// x = append(x, ...) is growth, not pre-sizing.
				if call, ok := rhs.(*ast.CallExpr); ok {
					if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
						if _, isBuiltin := pass.Info.Uses[fid].(*types.Builtin); isBuiltin {
							continue
						}
					}
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					presized[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			report(t.Pos(), "closure allocation in hot path; hoist the function or waive with //qo:alloc-ok reason")
			return false
		case *ast.UnaryExpr:
			if t.Op == token.AND && inLoop(t.Pos()) {
				if _, ok := ast.Unparen(t.X).(*ast.CompositeLit); ok {
					report(t.Pos(), "heap-allocated composite literal inside a loop in a hot path")
				}
			}
		case *ast.CompositeLit:
			if !inLoop(t.Pos()) {
				return true
			}
			if tt := pass.TypeOf(t); tt != nil {
				switch tt.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(t.Pos(), "slice/map literal inside a loop in a hot path allocates per iteration")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, t, inLoop, presized, report)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, inLoop func(token.Pos) bool, presized map[types.Object]bool, report func(token.Pos, string, ...any)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if pkgID, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(call.Pos(), "fmt.%s allocates; hot paths must not format (waive error paths with //qo:alloc-ok reason)", fun.Sel.Name)
				return
			}
		}
	case *ast.Ident:
		if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "make", "new":
				if inLoop(call.Pos()) {
					report(call.Pos(), "%s inside a loop in a hot path allocates per iteration", fun.Name)
				}
			case "append":
				if len(call.Args) == 0 {
					return
				}
				base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					return // appends into fields/elements target pre-sized pooled storage
				}
				obj := pass.Info.Uses[base]
				if obj == nil || presized[obj] {
					return
				}
				// Only locals declared inside the body: parameters are the
				// caller's pre-sized buffers.
				if obj.Pos() < fn.Body.Pos() || obj.Pos() > fn.Body.End() {
					return
				}
				report(call.Pos(), "append to %q, which is never pre-sized in this function; grow it with make(..., cap) first", base.Name)
			}
			return
		}
	}
	// Interface boxing: a concrete argument passed to an interface
	// parameter escapes to the heap.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument boxes a concrete %s into interface %s; hot paths must not box", at, pt)
	}
}
