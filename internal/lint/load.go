package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go tool and typechecks
// every matched package. Dependencies — including the standard library —
// are imported from compiler export data produced by `go list -export`,
// so no source re-typechecking and no network access is needed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typechecking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Run loads the patterns and applies the analyzers, returning all
// findings sorted per package.
func Run(analyzers []*Analyzer, dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, Check(analyzers, p.Fset, p.Files, p.Types, p.Info)...)
	}
	return diags, nil
}
