package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the machine-readable export shape of one finding,
// consumed by CI artifact tooling.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes the findings as an indented JSON array (empty
// findings produce [], not null, so consumers can always iterate).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
