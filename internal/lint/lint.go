// Package lint implements qolint, a project-specific static-analysis
// suite enforcing engine and optimizer invariants that the compiler
// cannot check but the paper's robustness argument depends on:
//
//   - counterthread: every Execute implementation threads its
//     *cost.Counters into child Execute calls (no silent undercounting).
//   - floatcmp: no raw ==/!=/< comparisons on float64 cost or
//     selectivity values outside the epsilon helpers in internal/cost.
//   - maporder: no map iteration whose order can leak into plan choice,
//     result rows, or accumulated slices without a subsequent sort.
//   - nopanic: no panic(...) in internal/ library code; return errors.
//   - ctxcounters: operators must not construct fresh cost.Counters;
//     they accumulate into the pointer handed to them.
//   - spanend: every span opened with obs.StartSpan is ended on all
//     return paths (unended spans corrupt trace parent inference), and
//     a span may not be ended only from a launched goroutine.
//   - batchpool: every getBatch has a putBatch, an ownership transfer,
//     or a released owner field; no double-put or use-after-put.
//   - goroutinejoin: every go statement in engine packages has a
//     visible join (WaitGroup.Wait or a channel receive).
//   - hotalloc: //qo:hotpath functions admit no allocation-introducing
//     constructs without a //qo:alloc-ok reason waiver.
//   - determinism: no direct time.Now/math/rand in
//     internal/{core,optimizer,obs}; clocks and randomness are
//     injected so runs replay byte-identically.
//   - metricname: registry metric names are constants matching
//     ^robustqo_[a-z0-9_]+$, one kind per name.
//
// The package is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis model (Analyzer, Pass, diagnostics,
// testdata fixtures) built on go/ast and go/types only, so it runs in
// hermetic environments without the x/tools module.
//
// Findings are suppressed with a comment of the form
//
//	//qolint:allow-<analyzer>
//
// either on (or immediately above) the offending line, or before the
// package clause to suppress the whole file.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //qolint:allow-<name> suppression comments.
	Name string
	// Doc is a one-paragraph description of the guarded invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      *[]Diagnostic
	suppressed suppressions
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a //qolint:allow-<name>
// comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed.covers(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is shorthand for the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// suppressions records where //qolint:allow-* comments apply.
type suppressions struct {
	// lines maps analyzer name -> filename -> set of suppressed lines.
	lines map[string]map[string]map[int]bool
	// files maps analyzer name -> filename -> whole-file suppression.
	files map[string]map[string]bool
}

const allowPrefix = "//qolint:allow-"

// collectSuppressions scans every comment in the files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{
		lines: make(map[string]map[string]map[int]bool),
		files: make(map[string]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				name := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name = rest[:i]
				}
				if name == "" {
					continue
				}
				// The documented spelling for the panic rule is
				// //qolint:allow-panic; map it onto the analyzer name.
				if name == "panic" {
					name = "nopanic"
				}
				pos := fset.Position(c.Pos())
				if c.End() < f.Package {
					// Before the package clause: whole file.
					if s.files[name] == nil {
						s.files[name] = make(map[string]bool)
					}
					s.files[name][pos.Filename] = true
					continue
				}
				if s.lines[name] == nil {
					s.lines[name] = make(map[string]map[int]bool)
				}
				if s.lines[name][pos.Filename] == nil {
					s.lines[name][pos.Filename] = make(map[int]bool)
				}
				// The comment covers its own line and the next line, so
				// both trailing and leading placements work.
				s.lines[name][pos.Filename][pos.Line] = true
				s.lines[name][pos.Filename][pos.Line+1] = true
			}
		}
	}
	return s
}

func (s suppressions) covers(analyzer string, pos token.Position) bool {
	if s.files[analyzer][pos.Filename] {
		return true
	}
	return s.lines[analyzer][pos.Filename][pos.Line]
}

// All returns the full qolint suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		BatchPool,
		CounterThread,
		CtxCounters,
		Determinism,
		FloatCmp,
		GoroutineJoin,
		HotAlloc,
		MapOrder,
		MetricName,
		NoPanic,
		SpanEnd,
	}
}

// ByName resolves a comma-separated analyzer list, or all when empty.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Check runs the analyzers over one typechecked package and returns the
// findings sorted by position.
func Check(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	sup := collectSuppressions(fset, files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
			diags:      &diags,
			suppressed: sup,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
