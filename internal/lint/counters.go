package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isCountersPtr reports whether t is *cost.Counters: a pointer to a
// named type Counters declared in a package named cost. Matching on the
// package name (not the full import path) lets testdata fixtures define
// a miniature cost package with the same shape.
func isCountersPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isCountersNamed(p.Elem())
}

// isCountersNamed reports whether t is the named type cost.Counters.
func isCountersNamed(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Counters" && obj.Pkg() != nil && obj.Pkg().Name() == "cost"
}

// countersParam returns the object and name of the first *cost.Counters
// parameter of fn, or nil when it has none.
func countersParam(pass *Pass, fn *ast.FuncDecl) (types.Object, string) {
	if fn.Type.Params == nil {
		return nil, ""
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isCountersPtr(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[name]; obj != nil {
				return obj, name.Name
			}
		}
	}
	return nil, ""
}

// countersRecvField returns the field object and name of the first
// *cost.Counters field on fn's receiver struct, or nil when fn has no
// receiver or the receiver holds no counters. This is the streaming
// Open/Next/Close shape: Open captures the counters pointer into the
// operator struct and Next/Close charge through that field.
func countersRecvField(pass *Pass, fn *ast.FuncDecl) (types.Object, string) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil, ""
	}
	t := pass.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return nil, ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isCountersPtr(f.Type()) {
			return f, f.Name()
		}
	}
	return nil, ""
}

// goroutineLits returns the function literals launched directly with a
// go statement inside body — worker bodies, where the counter-threading
// rules change: the shared counters must NOT be passed in (workers would
// race on it); instead each worker declares its own cost.Counters and
// ships it to a merge point (a channel send, or an Add call under a
// mutex or at the barrier).
func goroutineLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	lits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			lits[fl] = true
		}
		return true
	})
	return lits
}

// localCounterVars returns the cost.Counters variables declared inside
// the goroutine literal — the sanctioned per-worker accumulators.
func localCounterVars(pass *Pass, lit *ast.FuncLit) map[types.Object]bool {
	locals := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for _, name := range spec.Names {
			if obj := pass.Info.Defs[name]; obj != nil && isCountersNamed(obj.Type()) {
				locals[obj] = true
			}
		}
		return true
	})
	return locals
}

// shippedLocals returns the per-worker counter variables the goroutine
// literal ships to a merge point: mentioned in a channel send (typically
// inside a report struct), passed to an Add call (the mutex-guarded or
// barrier merge shape), or assigned into an indexed slot of a slice or
// array declared outside the goroutine — the scatter-gather per-shard
// worker shape, where each worker publishes its counters into its own
// shard slot and the coordinator folds the slots in shard order after
// the join.
func shippedLocals(pass *Pass, lit *ast.FuncLit, locals map[types.Object]bool) map[types.Object]bool {
	shipped := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && locals[obj] {
					shipped[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				for _, a := range n.Args {
					mark(a)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !isGatherSlot(pass, lit, lhs) {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					mark(n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					mark(n.Rhs[0])
				}
			}
		}
		return true
	})
	return shipped
}

// isGatherSlot reports whether e is an index expression into a slice or
// array that outlives the goroutine literal — a per-shard gather slot
// the coordinator reads after the join barrier. Writes to such slots
// are disjoint by construction (one worker per index), so assigning a
// local counter set into one counts as shipping it to the merge.
func isGatherSlot(pass *Pass, lit *ast.FuncLit, e ast.Expr) bool {
	ie, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(ie.X)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
	default:
		return false
	}
	var id *ast.Ident
	switch x := ast.Unparen(ie.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	// Declared inside the goroutine: a worker-local scratch slice, not a
	// gather surface the coordinator can see.
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// sharedMapRoot reports the root identifier of e when e indexes into a
// map declared outside the goroutine literal — the partitioned-build
// hazard. Writing such a map from a worker races with its siblings; the
// sanctioned shapes keep shared state either read-only (a finished build
// table) or slice-indexed with disjoint slots (the scatter phase), and
// publish worker-built maps by assigning whole partition slots.
func sharedMapRoot(pass *Pass, lit *ast.FuncLit, e ast.Expr) (*ast.Ident, bool) {
	x := ast.Unparen(e)
	isMap := false
	for {
		ie, ok := x.(*ast.IndexExpr)
		if !ok {
			break
		}
		if t := pass.TypeOf(ie.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				isMap = true
			}
		}
		x = ast.Unparen(ie.X)
	}
	if !isMap {
		return nil, false
	}
	var id *ast.Ident
	switch x := x.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil, false
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
		return nil, false // goroutine-local map: the worker owns it
	}
	return id, true
}

// checkSharedMapWrites flags hash-table mutations that escape the
// partitioned-build discipline: a goroutine writing (assigning,
// incrementing, or deleting) through a map declared outside its own body
// races with the other workers. Reads of a shared map stay unflagged — a
// finished build table is read-only and safe to probe from any worker —
// and so do slice-index writes, which is what sanctions the scatter
// phase's disjoint per-morsel slots and the publish of a worker-built
// partition map into its slot.
func checkSharedMapWrites(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := sharedMapRoot(pass, lit, lhs); ok {
					pass.Reportf(lhs.Pos(),
						"goroutine writes shared map %q; workers race on it — give each worker "+
							"its own partition and publish whole partitions at the merge", id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := sharedMapRoot(pass, lit, n.X); ok {
				pass.Reportf(n.X.Pos(),
					"goroutine writes shared map %q; workers race on it — give each worker "+
						"its own partition and publish whole partitions at the merge", id.Name)
			}
		case *ast.CallExpr:
			fid, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || fid.Name != "delete" || len(n.Args) != 2 {
				return true
			}
			if b, isBuiltin := pass.Info.Uses[fid].(*types.Builtin); !isBuiltin || b.Name() != "delete" {
				return true
			}
			// delete(m, k) mutates m directly; wrap the map in a synthetic
			// index so sharedMapRoot sees the same shape as m[k] = v.
			if id, ok := sharedMapRoot(pass, lit, &ast.IndexExpr{X: n.Args[0], Index: n.Args[1]}); ok {
				pass.Reportf(n.Args[0].Pos(),
					"goroutine deletes from shared map %q; workers race on it — give each worker "+
						"its own partition and publish whole partitions at the merge", id.Name)
			}
		}
		return true
	})
}

// checkGoroutineLit applies the worker-pool rules to one go-launched
// function literal: calls taking a *cost.Counters must receive a
// goroutine-local counter set that is shipped to a merge, never the
// enclosing function's shared counters; and shared maps must not be
// written from worker bodies (the partitioned-build rule).
func checkGoroutineLit(pass *Pass, lit *ast.FuncLit, shared types.Object, sharedName string) {
	checkSharedMapWrites(pass, lit)
	locals := localCounterVars(pass, lit)
	shipped := shippedLocals(pass, lit, locals)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Params() == nil {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isCountersPtr(sig.Params().At(i).Type()) {
				continue
			}
			arg := ast.Unparen(call.Args[i])
			if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && locals[obj] {
						if !shipped[obj] {
							pass.Reportf(call.Args[i].Pos(),
								"per-worker cost.Counters %q is charged but never merged; "+
									"ship it on a channel or fold it with Add before the goroutine returns", id.Name)
						}
						continue
					}
				}
			}
			if id, ok := arg.(*ast.Ident); ok && shared != nil && pass.Info.Uses[id] == shared {
				pass.Reportf(call.Args[i].Pos(),
					"shared *cost.Counters %q passed into a goroutine; workers would race on it — "+
						"give each worker its own counters and merge them at the barrier", sharedName)
				continue
			}
			if se, ok := arg.(*ast.SelectorExpr); ok && shared != nil && pass.Info.Uses[se.Sel] == shared {
				pass.Reportf(call.Args[i].Pos(),
					"shared *cost.Counters %q passed into a goroutine; workers would race on it — "+
						"give each worker its own counters and merge them at the barrier", sharedName)
				continue
			}
			pass.Reportf(call.Args[i].Pos(),
				"call inside a goroutine passes a *cost.Counters that is not a merged per-worker "+
					"counter set; declare one inside the goroutine and ship it to the merge")
		}
		return true
	})
}

// CounterThread enforces that a function holding a *cost.Counters —
// either as a parameter (Execute/Open shape) or as a field captured on
// its receiver (streaming Next/Close shape) — passes that same pointer to
// every child call that accepts one. An operator that hands a child a
// fresh or foreign counter set silently drops the child's work from the
// root total, corrupting the simulated execution times every experiment
// is ranked by.
var CounterThread = &Analyzer{
	Name: "counterthread",
	Doc: "flag child Execute-style calls that do not thread the enclosing " +
		"function's *cost.Counters parameter or captured receiver field, " +
		"which silently undercounts cost",
	Run: runCounterThread,
}

func runCounterThread(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			param, paramName := countersParam(pass, fn)
			var field types.Object
			var fieldName string
			if param == nil {
				field, fieldName = countersRecvField(pass, fn)
				if field == nil {
					continue
				}
			}
			shared, sharedName := param, paramName
			if shared == nil {
				shared, sharedName = field, fieldName
			}
			golits := goroutineLits(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && golits[fl] {
					// Worker-pool shape: the goroutine body plays by its
					// own rules — per-worker counters shipped to a merge.
					checkGoroutineLit(pass, fl, shared, sharedName)
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
				if !ok || sig.Params() == nil {
					return true
				}
				for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
					if !isCountersPtr(sig.Params().At(i).Type()) {
						continue
					}
					arg := ast.Unparen(call.Args[i])
					if param != nil {
						if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == param {
							continue
						}
						pass.Reportf(call.Args[i].Pos(),
							"call passes a *cost.Counters other than the enclosing parameter %q; "+
								"child work would not reach the caller's totals", paramName)
						continue
					}
					if se, ok := arg.(*ast.SelectorExpr); ok && pass.Info.Uses[se.Sel] == field {
						continue
					}
					pass.Reportf(call.Args[i].Pos(),
						"call passes a *cost.Counters other than the receiver field %q captured at Open; "+
							"child work would not reach the caller's totals", fieldName)
				}
				return true
			})
		}
	}
}

// CtxCounters forbids operators from constructing fresh cost.Counters
// values: a function that was handed a *cost.Counters — as a parameter or
// as a field captured on its receiver at Open — must accumulate into it,
// not into a private counter set that is then dropped or double-charged.
var CtxCounters = &Analyzer{
	Name: "ctxcounters",
	Doc: "flag construction of fresh cost.Counters inside functions that " +
		"already receive a *cost.Counters parameter or hold one as a " +
		"receiver field",
	Run: runCtxCounters,
}

func runCtxCounters(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			param, _ := countersParam(pass, fn)
			if param == nil {
				if field, _ := countersRecvField(pass, fn); field == nil {
					continue
				}
			}
			golits := goroutineLits(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && golits[fl] {
					// A worker goroutine's private counter set is the
					// sanctioned accumulator, not a leak; counterthread
					// checks that it reaches the merge.
					return false
				}
				switch n := n.(type) {
				case *ast.CompositeLit:
					if t := pass.TypeOf(n); t != nil && isCountersNamed(t) {
						pass.Reportf(n.Pos(), "fresh cost.Counters constructed inside an operator; accumulate into the *cost.Counters parameter instead")
					}
				case *ast.ValueSpec:
					if n.Type != nil {
						if t := pass.TypeOf(n.Type); t != nil && isCountersNamed(t) {
							pass.Reportf(n.Pos(), "fresh cost.Counters declared inside an operator; accumulate into the *cost.Counters parameter instead")
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
						if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && obj.Name() == "new" {
							if t := pass.TypeOf(n.Args[0]); t != nil && isCountersNamed(t) {
								pass.Reportf(n.Pos(), "fresh cost.Counters allocated inside an operator; accumulate into the *cost.Counters parameter instead")
							}
						}
					}
				}
				return true
			})
		}
	}
}
