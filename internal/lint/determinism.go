package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism keeps wall clocks and ambient randomness out of the
// packages whose outputs must replay byte-identically: internal/core
// (estimation), internal/optimizer (plan choice), and internal/obs
// (trace/metric export, which tests pin). A direct time.Now or
// math/rand call there silently varies EXPLAIN ANALYZE output and the
// differential corpus between runs. Timestamps must route through the
// injectable clock (obs.Trace.Now) and randomness through the seeded
// generators in internal/stats (RNG, Sticky).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "no direct time.Now/time.Since or math/rand use in " +
		"internal/{core,optimizer,obs}; use the injectable clock and " +
		"the seeded stats generators",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !determinismScoped(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since":
					pass.Reportf(sel.Pos(),
						"direct time.%s reads the wall clock; route timestamps through the injectable clock (obs.Trace.Now)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"math/rand is nondeterministic across runs; use the seeded generators in internal/stats (RNG, Sticky)")
			}
			return true
		})
	}
}

// determinismScoped reports whether the import path names one of the
// replay-sensitive internal packages.
func determinismScoped(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] != "internal" {
			continue
		}
		switch segs[i+1] {
		case "core", "optimizer", "obs":
			return true
		}
	}
	return false
}
