package lint

// This file is a miniature analysistest: fixtures live under
// testdata/src/<path>, import each other by that path, and annotate
// expected findings with trailing comments of the form
//
//	expr // want "regexp"
//
// testFixture typechecks the fixture package, runs one analyzer, and
// requires the findings and the annotations to match exactly.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
	infos map[string]*types.Info
}

func newFixtureLoader(root string) *fixtureLoader {
	return &fixtureLoader{
		root:  root,
		fset:  token.NewFileSet(),
		pkgs:  make(map[string]*types.Package),
		files: make(map[string][]*ast.File),
		infos: make(map[string]*types.Info),
	}
}

// Import lets the loader serve as its own types.Importer, resolving
// fixture-relative import paths recursively.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	return l.load(path)
}

func (l *fixtureLoader) load(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q: no Go files", path)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", path, err)
	}
	l.pkgs[path] = pkg
	l.files[path] = files
	l.infos[path] = info
	return pkg, nil
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// testFixture runs one analyzer over one fixture package and compares
// findings against the // want annotations.
func testFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	l := newFixtureLoader("testdata/src")
	pkg, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	files, info := l.files[path], l.infos[path]

	var expects []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := l.fset.Position(c.Pos())
					expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}

	diags := Check([]*Analyzer{a}, l.fset, files, pkg, info)
	for _, d := range diags {
		found := false
		for _, e := range expects {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	sort.Slice(expects, func(i, j int) bool { return expects[i].line < expects[j].line })
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

func TestCounterThreadFixture(t *testing.T) { testFixture(t, CounterThread, "counterthread") }

func TestCtxCountersFixture(t *testing.T) { testFixture(t, CtxCounters, "ctxcounters") }

func TestFloatCmpFixture(t *testing.T) { testFixture(t, FloatCmp, "floatcmp") }

func TestMapOrderFixture(t *testing.T) { testFixture(t, MapOrder, "maporder") }

func TestSpanEndFixture(t *testing.T) { testFixture(t, SpanEnd, "spanend") }

func TestNoPanicFixture(t *testing.T) {
	testFixture(t, NoPanic, "internal/np")
	testFixture(t, NoPanic, "internal/allowed") // whole-file suppression
	testFixture(t, NoPanic, "app")              // outside internal/: exempt
}

func TestBatchPoolFixture(t *testing.T) { testFixture(t, BatchPool, "batchpool") }

func TestGoroutineJoinFixture(t *testing.T) { testFixture(t, GoroutineJoin, "engine") }

func TestHotAllocFixture(t *testing.T) { testFixture(t, HotAlloc, "hotalloc") }

func TestDeterminismFixture(t *testing.T) {
	testFixture(t, Determinism, "internal/optimizer")
	testFixture(t, Determinism, "clockuser") // outside the scoped packages: exempt
}

func TestMetricNameFixture(t *testing.T) { testFixture(t, MetricName, "metricname") }
