package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder keeps Go's randomized map iteration order out of anything
// ordered. The telltale pattern is a range over a map whose body appends
// to a slice declared outside the loop: the slice inherits a random
// permutation, and if it feeds plan enumeration, result rows, or test
// expectations, runs stop being reproducible. The finding is suppressed
// when the slice is passed to a sort (sort.* or slices.Sort*) later in
// the same function, which restores determinism.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that appends to an outer slice without a " +
		"subsequent sort, which leaks nondeterministic ordering",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		// Slices appended to inside the loop, keyed by variable object.
		appended := make(map[types.Object]token.Pos)
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range assign.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(assign.Lhs) {
					continue
				}
				fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || fun.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
					continue
				}
				id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					obj = pass.Info.Defs[id]
				}
				// Only variables declared outside the loop body leak
				// ordering; loop-local slices die each iteration.
				if obj == nil || insideRange(obj.Pos(), rng) {
					continue
				}
				appended[obj] = id.Pos()
			}
			return true
		})
		for obj, pos := range appended {
			if !sortedLater(pass, body, rng, obj) {
				pass.Reportf(pos,
					"%q accumulates elements in map iteration order, which is nondeterministic; "+
						"sort it afterwards or iterate a sorted key slice", obj.Name())
			}
		}
		return true
	})
}

func insideRange(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}

// sortedLater reports whether obj is passed into a sort.* or
// slices.Sort* call after the range statement within the same body.
func sortedLater(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		// The slice may appear directly as an argument or inside a
		// comparison closure (sort.Slice(x, func(i, j int) bool {...})).
		for _, arg := range call.Args {
			uses := false
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					uses = true
					return false
				}
				return true
			})
			if uses {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
