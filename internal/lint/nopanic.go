package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic forbids panic in internal/ library packages. A panicking
// estimator or operator takes down the whole server process; every
// failure an operator can hit at runtime must surface as an error the
// caller can handle. Files whose panics are deliberate (test-only
// helpers, impossible-by-construction states) opt out with a
// //qolint:allow-panic comment before the package clause.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "flag panic(...) in internal/ library code; return an error instead",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	path := pass.Pkg.Path()
	if path != "internal" && !strings.HasPrefix(path, "internal/") && !strings.Contains(path, "/internal/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library package %s; return an error instead", path)
			return true
		})
	}
}
