package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd keeps the tracing layer honest: a span returned by
// obs.Trace.StartSpan that is never ended stays on the trace's open
// stack forever, corrupting parent inference for every later span and
// producing truncated exports. The analyzer flags StartSpan calls whose
// result is discarded, span variables with no End call in the enclosing
// function, and plain (non-deferred) End calls that an early return can
// skip. Spans stored into struct fields are exempt: they hand lifecycle
// ownership to a longer-lived object (the engine's instrumented
// operators end theirs in Close).
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "flag obs.StartSpan calls whose span is discarded, never ended, " +
		"or ended only on some return paths",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanScope(pass, fn.Body)
		}
	}
}

// checkSpanScope analyzes one function body; nested function literals
// are recursed into as independent scopes.
func checkSpanScope(pass *Pass, body *ast.BlockStmt) {
	type spanVar struct {
		obj types.Object
		pos token.Pos
	}
	var spans []spanVar
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			checkSpanScope(pass, st.Body)
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isStartSpan(pass, call) {
				pass.Reportf(call.Pos(), "span from StartSpan is discarded; assign it and defer End")
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !isStartSpan(pass, call) {
				return true
			}
			id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
			if !ok {
				// Field or index assignment: the span's lifecycle belongs
				// to the assigned-to owner, not this function.
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "span from StartSpan is discarded; assign it and defer End")
				return true
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				spans = append(spans, spanVar{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	for _, sv := range spans {
		deferred, firstEnd, goEnd := findEnds(pass, body, sv.obj)
		switch {
		case !deferred && firstEnd == token.NoPos && goEnd:
			pass.Reportf(sv.pos,
				"span %q is ended only inside a launched goroutine, which may outlive this function; "+
					"end it here or hand ownership to an owner field", sv.obj.Name())
		case !deferred && firstEnd == token.NoPos:
			pass.Reportf(sv.pos, "span %q is never ended; defer %s.End()", sv.obj.Name(), sv.obj.Name())
		case !deferred && returnBetween(body, sv.pos, firstEnd):
			pass.Reportf(sv.pos, "a return path can skip %s.End(); use defer", sv.obj.Name())
		}
	}
}

// isStartSpan reports whether the call is a StartSpan method returning
// an obs *Span (matched by package name so fixtures can stand in).
func isStartSpan(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return false
	}
	ptr, ok := pass.TypeOf(call).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Span" && o.Pkg() != nil && o.Pkg().Name() == "obs"
}

// findEnds locates End calls on the span object: whether any is
// deferred (directly or via a deferred closure), the position of the
// first plain End call, and whether an End appears only inside a
// go-launched closure. A goroutine-side End does not count as ending
// the span for this function — the worker may still be running when
// the function returns — so a span whose only End is goroutine-side is
// the goroutine-launched leak shape.
func findEnds(pass *Pass, body *ast.BlockStmt, obj types.Object) (deferred bool, first token.Pos, goEnd bool) {
	first = token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			ast.Inspect(g.Call, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && endsSpan(pass, call, obj) {
					goEnd = true
				}
				return true
			})
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(d, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && endsSpan(pass, call, obj) {
					deferred = true
				}
				return true
			})
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && endsSpan(pass, call, obj) {
			if first == token.NoPos || call.Pos() < first {
				first = call.Pos()
			}
		}
		return true
	})
	return deferred, first, goEnd
}

func endsSpan(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// returnBetween reports whether a return statement of this function
// (not of a nested literal) sits between the span assignment and the
// first plain End call — the window where an early return leaks it.
func returnBetween(body *ast.BlockStmt, start, end token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > start && r.Pos() < end {
			found = true
			return false
		}
		return true
	})
	return found
}
