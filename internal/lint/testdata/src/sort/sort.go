// Package sort is a fixture stand-in for the standard library's sort
// package, so maporder fixtures typecheck without export data.
package sort

// Strings sorts a slice of strings.
func Strings(x []string) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// Slice sorts using the provided less function (fixture: no-op body
// beyond satisfying the signature).
func Slice(x any, less func(i, j int) bool) {
	_ = x
	_ = less
}
