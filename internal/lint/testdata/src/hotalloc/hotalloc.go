// Package hotalloc exercises the hotalloc analyzer: //qo:hotpath
// functions are denied allocation-introducing constructs unless waived
// with //qo:alloc-ok reason.
package hotalloc

import "fmt"

type row []int

type batch struct {
	cols [][]int
	sel  []int
}

// hotClean appends into pre-sized pooled storage only.
//
//qo:hotpath
func hotClean(b *batch, rows []row) {
	for _, r := range rows {
		for c, v := range r {
			b.cols[c] = append(b.cols[c], v)
		}
	}
}

//qo:hotpath
func hotFmt(n int) error {
	if n < 0 {
		return fmt.Errorf("bad %d", n) // want "fmt.Errorf allocates"
	}
	return nil
}

//qo:hotpath
func hotWaivedFmt(n int) error {
	if n < 0 {
		//qo:alloc-ok error path, cold
		return fmt.Errorf("bad %d", n)
	}
	return nil
}

//qo:hotpath
func hotClosure(xs []int) int {
	f := func(a int) int { return a + 1 } // want "closure allocation"
	return f(xs[0])
}

//qo:hotpath
func hotMakeInLoop(rows []row) []row {
	out := make([]row, 0, len(rows)) // setup outside loops: tolerated
	for _, r := range rows {
		c := make(row, len(r)) // want "make inside a loop"
		copy(c, r)
		out = append(out, c)
	}
	return out
}

//qo:hotpath
func hotAppendUnpresized(rows []row) []row {
	var out []row
	for _, r := range rows {
		out = append(out, r) // want "never pre-sized"
	}
	return out
}

//qo:hotpath
func hotAppendPresized(b *batch, n int) {
	sel := b.sel[:0] // aliases pre-sized pooled storage: tolerated
	for i := 0; i < n; i++ {
		sel = append(sel, i)
	}
	b.sel = sel
}

//qo:hotpath
func hotBoxing(v int) {
	observe(v) // want "boxes a concrete int"
}

func observe(v any) { _ = v }

//qo:hotpath
func hotPointerLitInLoop(n int) *batch {
	var last *batch
	for i := 0; i < n; i++ {
		last = &batch{} // want "heap-allocated composite literal"
	}
	return last
}

//qo:hotpath
func hotSuppressed(n int) error {
	//qolint:allow-hotalloc
	return fmt.Errorf("bad %d", n)
}

// hotCacheLookup pins the plan-cache hit-path idiom: inline FNV-1a
// over the key, a map probe, and a positional parameter comparison —
// no hashing objects, no closures, no per-call allocation.
//
//qo:hotpath
func hotCacheLookup(entries map[string][]int, key string, params []int) ([]int, bool) {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	cached, ok := entries[key]
	if !ok || len(cached) != len(params) {
		return nil, false
	}
	for i := range cached {
		if cached[i] != params[i] {
			return nil, false
		}
	}
	return cached, h != 0
}

// hotProbeFilter pins the encoded-probe kernel idiom from the columnar
// scan: unpack bit-packed words inline (shift/mask, spill across word
// boundaries), reconstruct frame-of-reference values, and append the
// surviving offsets into a selection vector aliasing pre-sized pooled
// storage — no closures, no per-window allocation.
//
//qo:hotpath
func hotProbeFilter(words []uint64, width uint, ref, lo, hi int64, sel, out []int) []int {
	out = out[:0]
	mask := uint64(1)<<width - 1
	for _, r := range sel {
		bit := uint(r) * width
		w, off := bit>>6, bit&63
		raw := words[w] >> off
		if off+width > 64 {
			raw |= words[w+1] << (64 - off)
		}
		if v := ref + int64(raw&mask); v >= lo && v <= hi {
			out = append(out, r)
		}
	}
	return out
}

// hotRunIndex pins the RLE run-lookup idiom: a hand-rolled first-end-
// exceeding-pos binary search — no sort.Search closure on the hot path.
//
//qo:hotpath
func hotRunIndex(runEnds []int32, pos int32) int {
	lo, hi := 0, len(runEnds)
	for lo < hi {
		mid := (lo + hi) / 2
		if runEnds[mid] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// coldAlloc is unannotated: it may allocate freely.
func coldAlloc(rows []row) []row {
	var out []row
	for _, r := range rows {
		out = append(out, append(row(nil), r...))
	}
	return out
}

func badWaiver(n int) int {
	//qo:alloc-ok // want "must carry a reason"
	return n
}
