package ctxcounters

import "cost"

// streamOp captures its counters pointer at Open; Next accumulates into
// the captured field, which is the sanctioned streaming shape.
type streamOp struct {
	counters *cost.Counters
}

func (o *streamOp) Open(ctx *Context, counters *cost.Counters) error {
	o.counters = counters
	return nil
}

func (o *streamOp) Next(ctx *Context) (*Result, error) {
	o.counters.Tuples++
	return &Result{}, nil
}

// freshStreamOp hides per-batch work in a private counter set the opener
// never sees, even though it holds a captured pointer to charge.
type freshStreamOp struct {
	counters *cost.Counters
}

func (o *freshStreamOp) Next(ctx *Context) (*Result, error) {
	var local cost.Counters // want "fresh cost.Counters declared"
	local.Tuples++
	return &Result{}, nil
}
