package ctxcounters

import "cost"

type Context struct{}

type Result struct{ Rows int }

type Node interface {
	Execute(ctx *Context, counters *cost.Counters) (*Result, error)
}

// Good accumulates into the pointer it was handed.
type Good struct{}

func (g *Good) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	counters.Tuples++
	return &Result{}, nil
}

// Fresh constructs private counter sets three different ways; all of
// them hide work from the caller.
type Fresh struct{ Input Node }

func (f *Fresh) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	var local cost.Counters // want "fresh cost.Counters declared"
	local.Tuples++
	lit := cost.Counters{} // want "fresh cost.Counters constructed"
	lit.Tuples++
	ptr := new(cost.Counters) // want "fresh cost.Counters allocated"
	ptr.Tuples++
	return &Result{}, nil
}

// outside has no counters parameter, so constructing one is fine: this
// is what plan roots like engine.Run do.
func outside() cost.Counters {
	var counters cost.Counters
	counters.Tuples++
	return counters
}
