package ctxcounters

import "cost"

// The partitioned-build coordinator shape, as ctxcounters sees it: the
// per-worker counter sets declared inside go-launched literals are the
// sanctioned accumulators (counterthread checks they reach the merge),
// while the coordinator itself must still charge the *cost.Counters it
// was handed — a fresh set outside the goroutines hides the build.

// goodPartitionedCoordinator builds partitions in workers with private
// counters and never constructs a fresh set on the coordinator path.
func goodPartitionedCoordinator(ctx *Context, n Node, counters *cost.Counters, keys []int64) {
	const nParts = 4
	tables := make([]map[int64]int64, nParts)
	reports := make(chan cost.Counters, nParts)
	for w := 0; w < nParts; w++ {
		go func(pi int) {
			var wc cost.Counters // worker-local: sanctioned
			part := make(map[int64]int64)
			for _, k := range keys {
				if int(k)%nParts == pi {
					wc.Tuples++
					part[k] = k
				}
			}
			tables[pi] = part
			reports <- wc
		}(w)
	}
	for w := 0; w < nParts; w++ {
		counters.Add(<-reports)
	}
}

// badCoordinatorScratch charges the coordinator's own build bookkeeping
// to a fresh counter set it then drops: the workers merge correctly but
// the scatter pass vanishes from the totals.
func badCoordinatorScratch(ctx *Context, n Node, counters *cost.Counters, keys []int64) {
	var scratch cost.Counters // want "fresh cost.Counters declared"
	for range keys {
		scratch.Tuples++
	}
	reports := make(chan cost.Counters, 1)
	go func() {
		var wc cost.Counters
		wc.Tuples++
		reports <- wc
	}()
	counters.Add(<-reports)
}
