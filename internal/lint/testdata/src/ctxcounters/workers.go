package ctxcounters

import "cost"

// workerPool declares per-worker counters inside a go-launched literal.
// That is the sanctioned worker-pool shape — the private set is the
// worker's accumulator, and counterthread (not ctxcounters) polices
// that it reaches the merge.
func workerPool(ctx *Context, n Node, counters *cost.Counters) {
	done := make(chan cost.Counters, 1)
	go func() {
		var wc cost.Counters
		if _, err := n.Execute(ctx, &wc); err != nil {
			wc = cost.Counters{}
		}
		done <- wc
	}()
	counters.Add(<-done)
}
