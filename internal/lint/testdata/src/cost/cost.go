// Package cost is a miniature stand-in for robustqo/internal/cost: the
// analyzers match the named type Counters in a package named cost, so
// fixtures can exercise them without importing the real module.
package cost

// Counters mirrors the shape of the real counter set.
type Counters struct {
	Tuples int64
	Output int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Tuples += other.Tuples
	c.Output += other.Output
}
