// Package app sits outside internal/, where nopanic does not apply:
// binaries may crash on startup misconfiguration.
package app

func MustConfig(path string) string {
	if path == "" {
		panic("app: empty config path")
	}
	return path
}
