package floatcmp

// pick ranks two plan costs with raw operators.
func pick(costA, costB float64) bool {
	if costA == costB { // want "raw == on float64 values"
		return false
	}
	return costA < costB // want "raw < ranks float64 cost/selectivity"
}

type candidate struct {
	cost float64
	sel  float64
}

func cheapest(cands []candidate) candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost { // want "raw < ranks"
			best = c
		}
	}
	return best
}

func jointSel(selectivityA, selectivityB float64) bool {
	return selectivityA != selectivityB // want "raw != on float64 values"
}

// fine shows the allowed patterns: NaN idiom, constant sentinels and
// clamps, and ordering of floats that are not costs or selectivities.
func fine(x, y float64) float64 {
	if x != x { // NaN check
		return 0
	}
	if x == 0 { // exact sentinel
		return y
	}
	if x > 1 { // clamp
		x = 1
	}
	if x < y { // not cost-like
		return x
	}
	return y
}

// suppressed acknowledges a deliberate exact comparison.
func suppressed(costA, costB float64) bool {
	return costA == costB //qolint:allow-floatcmp
}
