package maporder

import "sort"

// leak returns keys in nondeterministic map order.
func leak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "accumulates elements in map iteration order"
	}
	return keys
}

// sorted restores determinism before the slice escapes.
func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedClosure sorts through a comparison closure.
func sortedClosure(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// local appends to a slice that dies inside the loop body: no leak.
func local(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// aggregate folds map values commutatively, which is order-insensitive.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// suppressed acknowledges an ordering that is re-established elsewhere.
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //qolint:allow-maporder
	}
	return keys
}
