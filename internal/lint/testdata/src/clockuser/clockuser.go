// Package clockuser sits outside internal/{core,optimizer,obs}: the
// determinism analyzer must leave it alone.
package clockuser

import "time"

// Stamp may read the wall clock freely here.
func Stamp() time.Time { return time.Now() }
