// Package optimizer stands in for a replay-sensitive internal package
// (its fixture path internal/optimizer is what the determinism
// analyzer scopes on).
package optimizer

import (
	"math/rand"
	"time"
)

type clock func() time.Time

type planner struct {
	now clock
}

// stamp routes through the injectable clock but falls back to the wall
// clock, which is exactly the call the analyzer must catch.
func (p *planner) stamp() time.Time {
	if p.now != nil {
		return p.now()
	}
	return time.Now() // want "time.Now"
}

func elapsed(start time.Time) int64 {
	return time.Since(start) // want "time.Since"
}

func jitter() int {
	return rand.Intn(10) // want "math/rand"
}

func suppressedInjectionPoint() time.Time {
	//qolint:allow-determinism the sanctioned fallback of an injectable clock
	return time.Now()
}
