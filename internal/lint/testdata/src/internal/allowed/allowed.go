//qolint:allow-panic

// Package allowed demonstrates the whole-file suppression: a comment
// before the package clause opts every panic in the file out of the
// nopanic rule (the real repo uses this for test-only Must helpers).
package allowed

func MustPositive(n int) int {
	if n <= 0 {
		panic("allowed: non-positive")
	}
	return n
}
