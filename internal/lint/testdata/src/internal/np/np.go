// Package np lives under internal/ in fixture space, so nopanic holds
// it to the library rule: errors, not panics.
package np

type boundError struct{}

func (boundError) Error() string { return "np: bad bound" }

func Bad(n int) int {
	if n <= 0 {
		panic("np: bad bound") // want "panic in library package internal/np"
	}
	return n - 1
}

func Good(n int) (int, error) {
	if n <= 0 {
		return 0, boundError{}
	}
	return n - 1, nil
}
