// Package metricname exercises the metricname analyzer: registry
// names are constants matching ^robustqo_[a-z0-9_]+$, one kind each.
package metricname

import "obs"

const hitsName = "robustqo_cache_hits_total"

func ok(reg *obs.Registry) {
	reg.Counter("robustqo_queries_total").Inc()
	reg.Counter(hitsName).Inc()
	reg.Histogram("robustqo_qerror", []float64{1, 2, 4}).Observe(1.5)
	// Same name, same kind, different labels: one series family.
	reg.Counter("robustqo_queries_total", obs.Label{Key: "op", Value: "scan"}).Inc()
}

func badPrefix(reg *obs.Registry) {
	reg.Counter("queries_total").Inc() // want "must match"
}

func badChars(reg *obs.Registry) {
	reg.Counter("robustqo_Rows-Seen").Inc() // want "must match"
}

func dynamicName(reg *obs.Registry, name string) {
	reg.Counter(name).Inc() // want "compile-time constant"
}

func kindClash(reg *obs.Registry) {
	reg.Histogram("robustqo_latency", nil).Observe(1)
	reg.Counter("robustqo_latency").Inc() // want "both Histogram and Counter"
}

func suppressed(reg *obs.Registry, name string) {
	//qolint:allow-metricname
	reg.Counter(name).Inc()
}
