// Package metricname exercises the metricname analyzer: registry
// names are constants matching ^robustqo_[a-z0-9_]+$, one kind each,
// and histograms register with statically-known ascending buckets.
package metricname

import "obs"

const hitsName = "robustqo_cache_hits_total"

// skewBuckets stands in for the shared obs.*Buckets families: a
// package-level var is an acceptable bucket reference.
var skewBuckets = []float64{1, 1.5, 2, 4, 10}

func ok(reg *obs.Registry) {
	reg.Counter("robustqo_queries_total").Inc()
	reg.Counter(hitsName).Inc()
	reg.Histogram("robustqo_qerror", []float64{1, 2, 4}).Observe(1.5)
	// Same name, same kind, different labels: one series family.
	reg.Counter("robustqo_queries_total", obs.Label{Key: "op", Value: "scan"}).Inc()
}

// exchangeSeries registers the executor utilization family: counters
// plus histograms on shared package-level bucket vars.
func exchangeSeries(reg *obs.Registry) {
	reg.Counter("robustqo_exchange_rows_total").Add(3)
	reg.Counter("robustqo_exchange_morsels_total").Add(1)
	reg.Histogram("robustqo_exchange_queue_depth", []float64{0, 1, 2, 4, 8}).Observe(2)
	reg.Histogram("robustqo_exchange_worker_busy_ratio", []float64{0.25, 0.5, 0.75, 1}).Observe(0.9)
	reg.Histogram("robustqo_exchange_row_skew", skewBuckets).Observe(1.2)
	reg.Histogram("robustqo_exchange_shard_skew", skewBuckets).Observe(1)
}

// ledgerSeries registers the cardinality feedback family.
func ledgerSeries(reg *obs.Registry) {
	reg.Counter("robustqo_ledger_appends_total").Inc()
	reg.Counter("robustqo_ledger_dropped_total").Inc()
	reg.Histogram("robustqo_ledger_qerror", skewBuckets).Observe(2)
}

func badPrefix(reg *obs.Registry) {
	reg.Counter("queries_total").Inc() // want "must match"
}

func badChars(reg *obs.Registry) {
	reg.Counter("robustqo_Rows-Seen").Inc() // want "must match"
}

func dynamicName(reg *obs.Registry, name string) {
	reg.Counter(name).Inc() // want "compile-time constant"
}

func kindClash(reg *obs.Registry) {
	reg.Histogram("robustqo_latency", skewBuckets).Observe(1)
	reg.Counter("robustqo_latency").Inc() // want "both Histogram and Counter"
}

func nilBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_nil_buckets", nil).Observe(1) // want "needs explicit bucket bounds"
}

func emptyBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_empty_buckets", []float64{}).Observe(1) // want "must not be empty"
}

func descendingBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_descending_buckets", []float64{4, 2, 1}).Observe(1) // want "strictly ascending"
}

func duplicateBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_duplicate_buckets", []float64{1, 2, 2}).Observe(1) // want "strictly ascending"
}

func dynamicBuckets(reg *obs.Registry, bounds []float64) {
	reg.Histogram("robustqo_local_buckets", bounds).Observe(1) // want "package-level bucket var"
}

func computedBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_computed_buckets", makeBuckets()).Observe(1) // want "package-level bucket var"
}

func makeBuckets() []float64 { return []float64{1, 2} }

func suppressed(reg *obs.Registry, name string) {
	//qolint:allow-metricname
	reg.Counter(name).Inc()
}
