// Package metricname exercises the metricname analyzer: registry
// names are constants matching ^robustqo_[a-z0-9_]+$, one kind each,
// and histograms register with statically-known ascending buckets.
package metricname

import "obs"

const hitsName = "robustqo_cache_hits_total"

// skewBuckets stands in for the shared obs.*Buckets families: a
// package-level var is an acceptable bucket reference.
var skewBuckets = []float64{1, 1.5, 2, 4, 10}

func ok(reg *obs.Registry) {
	reg.Counter("robustqo_queries_total").Inc()
	reg.Counter(hitsName).Inc()
	reg.Histogram("robustqo_qerror", []float64{1, 2, 4}).Observe(1.5)
	// Same name, same kind, different labels: one series family.
	reg.Counter("robustqo_queries_total", obs.Label{Key: "op", Value: "scan"}).Inc()
}

// exchangeSeries registers the executor utilization family: counters
// plus histograms on shared package-level bucket vars.
func exchangeSeries(reg *obs.Registry) {
	reg.Counter("robustqo_exchange_rows_total").Add(3)
	reg.Counter("robustqo_exchange_morsels_total").Add(1)
	reg.Histogram("robustqo_exchange_queue_depth", []float64{0, 1, 2, 4, 8}).Observe(2)
	reg.Histogram("robustqo_exchange_worker_busy_ratio", []float64{0.25, 0.5, 0.75, 1}).Observe(0.9)
	reg.Histogram("robustqo_exchange_row_skew", skewBuckets).Observe(1.2)
	reg.Histogram("robustqo_exchange_shard_skew", skewBuckets).Observe(1)
}

// columnarSeries registers the encoded-scan zone-map family: one
// counter per segment disposition, literal names at the call sites.
func columnarSeries(reg *obs.Registry) {
	reg.Counter("robustqo_columnar_segments_scanned_total").Inc()
	reg.Counter("robustqo_columnar_segments_skipped_total").Inc()
}

// ledgerSeries registers the cardinality feedback family.
func ledgerSeries(reg *obs.Registry) {
	reg.Counter("robustqo_ledger_appends_total").Inc()
	reg.Counter("robustqo_ledger_dropped_total").Inc()
	reg.Histogram("robustqo_ledger_qerror", skewBuckets).Observe(2)
}

// plancacheSeries registers the plan-cache outcome family: every
// serve-path Plan call lands in exactly one of the first four.
func plancacheSeries(reg *obs.Registry) {
	reg.Counter("robustqo_plancache_hits_total").Inc()
	reg.Counter("robustqo_plancache_rebinds_total").Inc()
	reg.Counter("robustqo_plancache_misses_total").Inc()
	reg.Counter("robustqo_plancache_rejects_total").Inc()
	reg.Counter("robustqo_plancache_interval_rejects_total").Inc()
	reg.Counter("robustqo_plancache_pruning_rejects_total").Inc()
	reg.Counter("robustqo_plancache_invalidations_total").Inc()
	reg.Counter("robustqo_plancache_evictions_total").Inc()
}

// admissionSeries registers the admission-gate family: counters for
// every Admit disposition plus the queue-depth/wait histograms.
func admissionSeries(reg *obs.Registry) {
	reg.Counter("robustqo_admission_admitted_total").Inc()
	reg.Counter("robustqo_admission_shed_total").Inc()
	reg.Counter("robustqo_admission_timeouts_total").Inc()
	reg.Counter("robustqo_admission_cancelled_total").Inc()
	reg.Counter("robustqo_admission_closed_rejects_total").Inc()
	reg.Counter("robustqo_admission_mem_rejects_total").Inc()
	reg.Histogram("robustqo_admission_queue_depth", []float64{0, 1, 2, 4, 8, 16, 32}).Observe(1)
	reg.Histogram("robustqo_admission_queue_wait_seconds", []float64{0.001, 0.01, 0.1, 1, 10}).Observe(0.002)
}

func badPrefix(reg *obs.Registry) {
	reg.Counter("queries_total").Inc() // want "must match"
}

func badChars(reg *obs.Registry) {
	reg.Counter("robustqo_Rows-Seen").Inc() // want "must match"
}

func dynamicName(reg *obs.Registry, name string) {
	reg.Counter(name).Inc() // want "compile-time constant"
}

func kindClash(reg *obs.Registry) {
	reg.Histogram("robustqo_latency", skewBuckets).Observe(1)
	reg.Counter("robustqo_latency").Inc() // want "both Histogram and Counter"
}

func nilBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_nil_buckets", nil).Observe(1) // want "needs explicit bucket bounds"
}

func emptyBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_empty_buckets", []float64{}).Observe(1) // want "must not be empty"
}

func descendingBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_descending_buckets", []float64{4, 2, 1}).Observe(1) // want "strictly ascending"
}

func duplicateBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_duplicate_buckets", []float64{1, 2, 2}).Observe(1) // want "strictly ascending"
}

func dynamicBuckets(reg *obs.Registry, bounds []float64) {
	reg.Histogram("robustqo_local_buckets", bounds).Observe(1) // want "package-level bucket var"
}

func computedBuckets(reg *obs.Registry) {
	reg.Histogram("robustqo_computed_buckets", makeBuckets()).Observe(1) // want "package-level bucket var"
}

func makeBuckets() []float64 { return []float64{1, 2} }

func suppressed(reg *obs.Registry, name string) {
	//qolint:allow-metricname
	reg.Counter(name).Inc()
}
