package counterthread

import "cost"

// Scatter-gather per-shard worker shapes: one worker per shard of a
// partitioned table, each publishing its results and its counters into
// its own shard slot of shared slices, merged in shard order after the
// join barrier.

// goodScatterGather is the blessed shape: each worker charges a private
// counter set and publishes it by assigning its shard's slot of the
// gather slice; the coordinator folds the slots in shard order after
// the workers are joined.
func goodScatterGather(ctx *Context, shards []Node, counters *cost.Counters) {
	results := make([]*Result, len(shards))
	slots := make([]cost.Counters, len(shards))
	done := make(chan struct{}, len(shards))
	for s := range shards {
		go func(s int) {
			var wc cost.Counters
			res, err := shards[s].Execute(ctx, &wc)
			if err == nil {
				results[s] = res // disjoint slice slot: sanctioned
			}
			slots[s] = wc // counters published into the shard's gather slot
			done <- struct{}{}
		}(s)
	}
	for range shards {
		<-done
	}
	// Deterministic merge: shard order, not completion order.
	for s := range shards {
		counters.Add(slots[s])
	}
}

// goodScatterGatherField publishes through a coordinator struct's slot
// slice instead of a local one — the operator-shaped variant.
type gatherOp struct {
	shards []Node
	slots  []cost.Counters
}

func (g *gatherOp) run(ctx *Context, counters *cost.Counters) {
	done := make(chan struct{}, len(g.shards))
	for s := range g.shards {
		go func(s int) {
			var wc cost.Counters
			_, _ = g.shards[s].Execute(ctx, &wc)
			g.slots[s] = wc
			done <- struct{}{}
		}(s)
	}
	for range g.shards {
		<-done
	}
	for s := range g.slots {
		counters.Add(g.slots[s])
	}
}

// badScatterLocalSlice gathers into a slice declared inside the worker:
// the coordinator can never see it, so the shard's work is dropped.
func badScatterLocalSlice(ctx *Context, shards []Node, counters *cost.Counters) {
	done := make(chan struct{}, len(shards))
	for s := range shards {
		go func(s int) {
			scratch := make([]cost.Counters, 1)
			var wc cost.Counters
			_, _ = shards[s].Execute(ctx, &wc) // want "never merged"
			scratch[0] = wc                    // worker-local slice: not a gather surface
			done <- struct{}{}
		}(s)
	}
	for range shards {
		<-done
	}
}

// badScatterSharedPointer hands every worker a pointer into the shared
// slot slice instead of a goroutine-local counter set: the discipline
// requires locals so the merge stays explicit and ordered.
func badScatterSharedPointer(ctx *Context, shards []Node, counters *cost.Counters) {
	slots := make([]cost.Counters, len(shards))
	done := make(chan struct{}, len(shards))
	for s := range shards {
		go func(s int) {
			_, _ = shards[s].Execute(ctx, &slots[s]) // want "not a merged per-worker counter set"
			done <- struct{}{}
		}(s)
	}
	for range shards {
		<-done
	}
	for s := range slots {
		counters.Add(slots[s])
	}
}

// badScatterSharedCounters passes the coordinator's own counters into a
// shard worker: all workers race on the same int64 fields.
func badScatterSharedCounters(ctx *Context, shards []Node, counters *cost.Counters) {
	done := make(chan struct{}, len(shards))
	for s := range shards {
		go func(s int) {
			_, _ = shards[s].Execute(ctx, counters) // want "passed into a goroutine"
			done <- struct{}{}
		}(s)
	}
	for range shards {
		<-done
	}
}
