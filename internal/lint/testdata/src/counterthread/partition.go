package counterthread

import "cost"

// Partitioned hash-join build shapes: workers may read a shared table,
// write disjoint slice slots, and publish whole worker-built partition
// maps — but never write a shared map in place.

// goodPartitionedBuild is the blessed two-phase shape. Phase 1 scatters
// row indices into per-morsel slice slots (slice-index writes are
// disjoint by construction and stay unflagged); phase 2 gives each worker
// a goroutine-local map and publishes it by assigning its partition slot.
func goodPartitionedBuild(ctx *Context, n Node, counters *cost.Counters, keys []int64) {
	const nParts = 4
	scattered := make([][]int64, nParts)
	tables := make([]map[int64]int64, nParts)
	reports := make(chan cost.Counters, nParts)
	for w := 0; w < nParts; w++ {
		go func(pi int) {
			var wc cost.Counters
			bucket := make([]int64, 0, len(keys))
			for _, k := range keys {
				if int(k)%nParts == pi {
					bucket = append(bucket, k)
				}
			}
			scattered[pi] = bucket // disjoint slice slot: sanctioned
			part := make(map[int64]int64, len(bucket))
			for _, k := range bucket {
				wc.Tuples++
				part[k] = k // goroutine-local map: the worker owns it
			}
			tables[pi] = part // publishing a whole partition: sanctioned
			reports <- wc
		}(w)
	}
	for w := 0; w < nParts; w++ {
		counters.Add(<-reports)
	}
}

// goodSharedProbe reads a finished, read-only build table from every
// worker — the probe phase — which is safe and stays unflagged.
func goodSharedProbe(ctx *Context, n Node, counters *cost.Counters, table map[int64]int64, keys []int64) {
	reports := make(chan cost.Counters, 4)
	for w := 0; w < 4; w++ {
		go func() {
			var wc cost.Counters
			for _, k := range keys {
				if _, ok := table[k]; ok {
					wc.Tuples++
				}
			}
			reports <- wc
		}()
	}
	for w := 0; w < 4; w++ {
		counters.Add(<-reports)
	}
}

// badSharedTableBuild has every worker inserting into one shared map: the
// writes race and the table comes out corrupted.
func badSharedTableBuild(ctx *Context, n Node, counters *cost.Counters, keys []int64) {
	table := make(map[int64][]int64, len(keys))
	reports := make(chan cost.Counters, 4)
	for w := 0; w < 4; w++ {
		go func(pi int) {
			var wc cost.Counters
			for _, k := range keys {
				if int(k)%4 == pi {
					wc.Tuples++
					table[k] = append(table[k], k) // want "goroutine writes shared map \"table\""
				}
			}
			reports <- wc
		}(w)
	}
	for w := 0; w < 4; w++ {
		counters.Add(<-reports)
	}
}

// badSharedCounts increments through a shared map — the same race in
// IncDecStmt clothing.
func badSharedCounts(ctx *Context, n Node, counters *cost.Counters, keys []int64) {
	counts := make(map[int64]int64, len(keys))
	reports := make(chan cost.Counters, 4)
	for w := 0; w < 4; w++ {
		go func() {
			var wc cost.Counters
			for _, k := range keys {
				wc.Tuples++
				counts[k]++ // want "goroutine writes shared map \"counts\""
			}
			reports <- wc
		}()
	}
	for w := 0; w < 4; w++ {
		counters.Add(<-reports)
	}
}

// badSharedEviction deletes from the shared table while siblings read it.
func badSharedEviction(ctx *Context, n Node, counters *cost.Counters, table map[int64]int64, keys []int64) {
	reports := make(chan cost.Counters, 4)
	for w := 0; w < 4; w++ {
		go func() {
			var wc cost.Counters
			for _, k := range keys {
				wc.Tuples++
				delete(table, k) // want "goroutine deletes from shared map \"table\""
			}
			reports <- wc
		}()
	}
	for w := 0; w < 4; w++ {
		counters.Add(<-reports)
	}
}
