package counterthread

import "cost"

// report mirrors the engine's worker report: per-worker counters travel
// to the merge by value on a channel.
type report struct {
	counters cost.Counters
	rows     int
}

// goodWorkers is the blessed morsel-pool shape: each worker charges a
// private counter set and ships it on the reports channel; the
// coordinator folds the reports into the shared counters at the barrier.
func goodWorkers(ctx *Context, n Node, counters *cost.Counters) {
	reports := make(chan report, 4)
	for w := 0; w < 4; w++ {
		go func() {
			var wc cost.Counters
			if _, err := n.Execute(ctx, &wc); err != nil {
				reports <- report{}
				return
			}
			reports <- report{counters: wc}
		}()
	}
	for w := 0; w < 4; w++ {
		r := <-reports
		counters.Add(r.counters)
	}
}

// goodMutexMerge folds each worker's counters into the shared set under
// a lock (a one-slot semaphore channel standing in for a mutex here)
// instead of shipping a report.
func goodMutexMerge(ctx *Context, n Node, counters *cost.Counters) {
	mu := make(chan struct{}, 1)
	done := make(chan struct{}, 4)
	for w := 0; w < 4; w++ {
		go func() {
			var wc cost.Counters
			if _, err := n.Execute(ctx, &wc); err == nil {
				mu <- struct{}{}
				counters.Add(wc)
				<-mu
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

// sharedIntoGoroutine hands every worker the caller's counter set: the
// int64 bumps race and the totals come out garbage.
func sharedIntoGoroutine(ctx *Context, n Node, counters *cost.Counters) {
	done := make(chan struct{}, 4)
	for w := 0; w < 4; w++ {
		go func() {
			n.Execute(ctx, counters) // want "shared \*cost.Counters \"counters\" passed into a goroutine"
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

// neverMerged gives each worker its own counters but drops them on the
// floor: the workers' charges vanish from the totals.
func neverMerged(ctx *Context, n Node, counters *cost.Counters) {
	done := make(chan struct{}, 4)
	for w := 0; w < 4; w++ {
		go func() {
			var wc cost.Counters
			n.Execute(ctx, &wc) // want "per-worker cost.Counters \"wc\" is charged but never merged"
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
