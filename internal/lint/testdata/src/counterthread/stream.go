package counterthread

import "cost"

// streamOp mirrors the engine's streaming operators: Open receives the
// counters pointer and captures it into a field; Next, which has no
// counters parameter of its own, charges children through that field.
type streamOp struct {
	input    Node
	counters *cost.Counters
}

func (o *streamOp) Open(ctx *Context, counters *cost.Counters) error {
	o.counters = counters
	_, err := o.input.Execute(ctx, counters)
	return err
}

func (o *streamOp) Next(ctx *Context) (*Result, error) {
	return o.input.Execute(ctx, o.counters) // the captured field: allowed
}

var global cost.Counters

// badStreamOp hands its child something other than the field captured at
// Open, so the child's work never reaches the totals the operator was
// opened against.
type badStreamOp struct {
	input    Node
	counters *cost.Counters
}

func (o *badStreamOp) Next(ctx *Context) (*Result, error) {
	if _, err := o.input.Execute(ctx, &global); err != nil { // want "other than the receiver field \"counters\""
		return nil, err
	}
	return o.input.Execute(ctx, &cost.Counters{}) // want "other than the receiver field"
}
