package counterthread

import "cost"

// Prober deliberately measures its child in isolation; the suppression
// comment acknowledges the intent.
type Prober struct{ Input Node }

func (p *Prober) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	var probe cost.Counters //qolint:allow-ctxcounters
	res, err := p.Input.Execute(ctx, &probe) //qolint:allow-counterthread
	if err != nil {
		return nil, err
	}
	counters.Add(probe)
	return res, nil
}
