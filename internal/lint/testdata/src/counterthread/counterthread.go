package counterthread

import "cost"

type Context struct{}

type Result struct{ Rows int }

type Node interface {
	Execute(ctx *Context, counters *cost.Counters) (*Result, error)
}

// Filter threads its counters correctly.
type Filter struct{ Input Node }

func (f *Filter) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	counters.Tuples++
	return f.Input.Execute(ctx, counters)
}

// Scratch executes its child against a private counter set: the child's
// work never reaches the caller.
type Scratch struct{ Input Node }

func (s *Scratch) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	var scratch cost.Counters
	return s.Input.Execute(ctx, &scratch) // want "other than the enclosing parameter \"counters\""
}

// Dropper passes nil, dropping the child's accounting entirely.
type Dropper struct{ Input Node }

func (d *Dropper) Execute(ctx *Context, counters *cost.Counters) (*Result, error) {
	return d.Input.Execute(ctx, nil) // want "other than the enclosing parameter"
}

// Helper functions taking counters are held to the same rule as methods.
func runTwice(ctx *Context, n Node, counters *cost.Counters) error {
	if _, err := n.Execute(ctx, counters); err != nil {
		return err
	}
	_, err := n.Execute(ctx, &cost.Counters{}) // want "other than the enclosing parameter"
	return err
}
