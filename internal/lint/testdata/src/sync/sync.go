// Package sync is a miniature stand-in for the standard library's
// sync: the goroutinejoin analyzer matches WaitGroup by package name,
// so fixtures can exercise it without real export data.
package sync

// WaitGroup counts outstanding goroutines.
type WaitGroup struct{ n int }

// Add adjusts the outstanding count.
func (w *WaitGroup) Add(delta int) { w.n += delta }

// Done marks one goroutine finished.
func (w *WaitGroup) Done() { w.n-- }

// Wait blocks until the count reaches zero.
func (w *WaitGroup) Wait() {}
