// Package time is a miniature stand-in for the standard library's
// time: the determinism analyzer matches Now/Since by import path, so
// fixtures can exercise it without real export data.
package time

// Time is an instant.
type Time struct{ ns int64 }

// Now reads the wall clock.
func Now() Time { return Time{} }

// Since reports the elapsed nanoseconds (a wall-clock read).
func Since(t Time) int64 { return -t.ns }
