// Package batchpool exercises the batchpool analyzer: every batch
// obtained with getBatch must be put back, transferred, or stored in a
// field the package releases.
package batchpool

// Batch stands in for the engine's pooled column batch.
type Batch struct{ n int }

type schema struct{}

func getBatch(s schema) *Batch { return &Batch{} }

func putBatch(b *Batch) {}

func okDeferred(s schema) {
	b := getBatch(s)
	defer putBatch(b)
	b.n++
}

func okPlain(s schema) {
	b := getBatch(s)
	b.n++
	putBatch(b)
}

func okReturnTransfer(s schema) *Batch {
	b := getBatch(s)
	b.n = 1
	return b
}

func okSendTransfer(s schema, ch chan *Batch) {
	b := getBatch(s)
	ch <- b
}

func okCallTransfer(s schema) {
	b := getBatch(s)
	consume(b)
}

type owner struct {
	out     *Batch
	scratch *Batch
}

func okFieldOwner(o *owner, s schema) {
	o.out = getBatch(s)
}

func (o *owner) close() {
	putBatch(o.out)
	o.out = nil
}

func okCompositeOwner(s schema) *owner {
	return &owner{out: getBatch(s)}
}

func fieldNeverPut(o *owner, s schema) {
	o.scratch = getBatch(s) // want "no putBatch in this package ever releases it"
}

func leakNoPut(s schema) {
	b := getBatch(s) // want "never returned to the pool"
	b.n = 2
}

func leakEarlyReturn(s schema, fail bool) bool {
	b := getBatch(s) // want "a return path between getBatch and putBatch"
	if fail {
		return false
	}
	putBatch(b)
	return true
}

func doublePut(s schema) {
	b := getBatch(s)
	b.n++
	putBatch(b)
	putBatch(b) // want "double putBatch"
}

func useAfterPut(s schema) {
	b := getBatch(s)
	putBatch(b)
	b.n++ // want "used after putBatch"
}

func okReassignAfterPut(s schema) {
	b := getBatch(s)
	putBatch(b)
	b = getBatch(s)
	putBatch(b)
}

func okNilAfterPut(o *owner) {
	putBatch(o.out)
	o.out = nil
}

func discardedStmt(s schema) {
	getBatch(s) // want "discarded"
}

func discardedBlank(s schema) {
	_ = getBatch(s) // want "discarded"
}

func suppressed(s schema) {
	//qolint:allow-batchpool
	getBatch(s)
}

func consume(b *Batch) { putBatch(b) }
