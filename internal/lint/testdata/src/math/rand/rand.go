// Package rand is a miniature stand-in for math/rand: the determinism
// analyzer matches any use of the package by import path.
package rand

// Intn returns a pseudo-random int in [0, n).
func Intn(n int) int { return n - 1 }
