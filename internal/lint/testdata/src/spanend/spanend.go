// Package spanend exercises the spanend analyzer: spans must be
// assigned and ended on every return path, ideally via defer.
package spanend

import "obs"

func okDeferred(tr *obs.Trace) {
	sp := tr.StartSpan("phase")
	defer sp.End()
	work()
}

func okPlain(tr *obs.Trace) {
	sp := tr.StartSpan("phase")
	work()
	sp.End()
}

func okDeferredClosure(tr *obs.Trace) {
	sp := tr.StartSpan("phase")
	defer func() { sp.End() }()
	work()
}

func okChained(tr *obs.Trace) {
	defer tr.StartSpan("phase").End()
	work()
}

func discardedStmt(tr *obs.Trace) {
	tr.StartSpan("phase") // want "discarded"
	work()
}

func discardedBlank(tr *obs.Trace) {
	_ = tr.StartSpan("phase") // want "discarded"
}

func neverEnded(tr *obs.Trace) {
	sp := tr.StartSpan("phase") // want "never ended"
	sp.SetAttr("k", "v")
}

func returnSkipsEnd(tr *obs.Trace, fail bool) bool {
	sp := tr.StartSpan("phase") // want "use defer"
	if fail {
		return false
	}
	sp.End()
	return true
}

func returnAfterEndIsFine(tr *obs.Trace, fail bool) bool {
	sp := tr.StartSpan("phase")
	work()
	sp.End()
	if fail {
		return false
	}
	return true
}

type holder struct{ sp *obs.Span }

// Field assignments hand the span to a longer-lived owner (the engine's
// instrumented operators end theirs in Close): not flagged.
func fieldAssigned(h *holder, tr *obs.Trace) {
	h.sp = tr.StartSpan("phase")
}

func closureScopesAreIndependent(tr *obs.Trace) func() {
	return func() {
		sp := tr.StartSpan("inner") // want "never ended"
		sp.SetAttr("k", "v")
	}
}

func suppressed(tr *obs.Trace) {
	//qolint:allow-spanend
	tr.StartSpan("phase")
}

// A worker closure that creates and ends its own span is the blessed
// goroutine shape.
func workerEndsOwnSpan(tr *obs.Trace) {
	go func() {
		sp := tr.StartSpan("worker")
		defer sp.End()
		work()
	}()
}

// Ending a span only from a launched goroutine does not tie the End to
// this function's lifetime: the worker may still be running (or never
// scheduled) when the function returns.
func goroutineOnlyEnd(tr *obs.Trace) {
	sp := tr.StartSpan("phase") // want "ended only inside a launched goroutine"
	go func() {
		sp.End()
	}()
}

func workerNeverEnds(tr *obs.Trace) {
	go func() {
		sp := tr.StartSpan("worker") // want "never ended"
		sp.SetAttr("k", "v")
	}()
}

func work() {}
