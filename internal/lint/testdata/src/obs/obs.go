// Package obs is a miniature stand-in for robustqo/internal/obs: the
// spanend analyzer matches the StartSpan method returning *Span in a
// package named obs, so fixtures can exercise it without importing the
// real module.
package obs

// Trace collects spans.
type Trace struct{ spans []*Span }

// Span is one timed region.
type Span struct{ name string }

// StartSpan opens a span.
func (t *Trace) StartSpan(name string) *Span {
	s := &Span{name: name}
	if t != nil {
		t.spans = append(t.spans, s)
	}
	return s
}

// End closes the span.
func (s *Span) End() {}

// SetAttr attaches a key/value pair.
func (s *Span) SetAttr(k, v string) { _ = k; _ = v }
