// Package obs is a miniature stand-in for robustqo/internal/obs: the
// spanend analyzer matches the StartSpan method returning *Span in a
// package named obs, so fixtures can exercise it without importing the
// real module.
package obs

// Trace collects spans.
type Trace struct{ spans []*Span }

// Span is one timed region.
type Span struct{ name string }

// StartSpan opens a span.
func (t *Trace) StartSpan(name string) *Span {
	s := &Span{name: name}
	if t != nil {
		t.spans = append(t.spans, s)
	}
	return s
}

// End closes the span.
func (s *Span) End() {}

// SetAttr attaches a key/value pair.
func (s *Span) SetAttr(k, v string) { _ = k; _ = v }

// Label is one metric dimension.
type Label struct{ Key, Value string }

// Counter is a monotonically increasing metric.
type Counter struct{ v int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.v++ }

// Add bumps the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Histogram is a bucketed distribution metric.
type Histogram struct{ n int64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { _ = v; h.n++ }

// Registry is a named metric store; the metricname analyzer matches
// its Counter/Histogram methods.
type Registry struct{ names []string }

// Counter returns the named counter series.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	r.names = append(r.names, name)
	_ = labels
	return &Counter{}
}

// Histogram returns the named histogram series.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	r.names = append(r.names, name)
	_, _ = bounds, labels
	return &Histogram{}
}
