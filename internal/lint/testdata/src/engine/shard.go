// Scatter-gather per-shard worker shapes for the goroutinejoin
// analyzer: one worker per shard, results gathered into shard slots,
// workers joined before the gather is read.
package engine

import "sync"

// okScatterGatherWaitGroup is the blessed shape: per-shard workers
// write disjoint gather slots and the coordinator Waits on the group
// every worker Dones before reading any slot.
func okScatterGatherWaitGroup(shards int) []int {
	slots := make([]int, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			slots[s] = s * s
		}(s)
	}
	wg.Wait()
	return slots
}

// okScatterGatherCounted joins through a counted done-channel receive
// instead of a WaitGroup.
func okScatterGatherCounted(shards int) []int {
	slots := make([]int, shards)
	done := make(chan struct{}, shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			slots[s] = s + 1
			done <- struct{}{}
		}(s)
	}
	for s := 0; s < shards; s++ {
		<-done
	}
	return slots
}

// leakScatterNoJoin writes gather slots but never joins the workers:
// the coordinator can read the slots before the writes land, and the
// goroutines outlive the operator.
func leakScatterNoJoin(shards int) []int {
	slots := make([]int, shards)
	for s := 0; s < shards; s++ {
		go func(s int) { // want "no reachable join"
			slots[s] = s
		}(s)
	}
	return slots
}

// leakScatterAbandonedGroup Adds and Dones a WaitGroup nobody Waits on.
func leakScatterAbandonedGroup(shards int) {
	var grp sync.WaitGroup
	for s := 0; s < shards; s++ {
		grp.Add(1)
		go func() { // want "no reachable join"
			defer grp.Done()
			work()
		}()
	}
}
