// Package engine exercises the goroutinejoin analyzer: every go
// statement in an engine package needs a visible join.
package engine

import "sync"

func okLocalWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type pool struct {
	wg  sync.WaitGroup
	out chan int
}

// Launch and join live in different methods; the shared field object
// ties the worker's Done to drain's Wait.
func (p *pool) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.out <- 1
	}()
}

func (p *pool) drain() int {
	v := <-p.out
	p.wg.Wait()
	return v
}

func okChannelClose() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

func okChannelSend() {
	res := make(chan int, 1)
	go func() { res <- 1 }()
	_ = <-res
}

func okRangeReceive() int {
	res := make(chan int)
	go func() {
		res <- 1
		close(res)
	}()
	sum := 0
	for v := range res {
		sum += v
	}
	return sum
}

func okNamedWithWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func worker(wg *sync.WaitGroup) { wg.Done() }

func leakNoJoin() {
	go func() { // want "no reachable join"
		work()
	}()
}

func leakSendNoReceive() {
	ch := make(chan int, 1)
	go func() { // want "no reachable join"
		ch <- 1
	}()
	_ = ch
}

func leakNamed() {
	go work() // want "no reachable join"
}

func leakWaitGroupNeverWaited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "no reachable join"
		defer wg.Done()
	}()
}

func suppressed() {
	//qolint:allow-goroutinejoin
	go work()
}

func work() {}
