// Package fmt is a miniature stand-in for the standard library's fmt:
// the hotalloc analyzer matches calls into it by import path, so
// fixtures can exercise it without real export data.
package fmt

// Errorf formats an error.
func Errorf(format string, args ...any) error {
	_ = args
	return nil
}

// Sprintf formats a string.
func Sprintf(format string, args ...any) string {
	_ = args
	return format
}
