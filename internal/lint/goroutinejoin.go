package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineJoin guards the engine's worker lifecycles: every go
// statement in an engine package must have a join the analyzer can see
// — a Wait call on the WaitGroup the goroutine Dones, or a receive on
// a channel the goroutine sends on or closes. An unjoined worker
// outlives its operator's Close, keeps its scratch batches out of the
// pool, and can publish counters after the merge barrier has already
// read them — the leak class the Exchange tests probe by hand.
//
// The join may live in another function (the Exchange workers Done a
// struct-field WaitGroup that finish() Waits); what matters is that
// the same variable or field is waited on somewhere in the package.
var GoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc: "every go statement in engine packages needs a visible join: " +
		"WaitGroup.Wait on the group it Dones, or a receive on a channel " +
		"it sends on or closes",
	Run: runGoroutineJoin,
}

func runGoroutineJoin(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path(), "engine") {
		return
	}
	// Package-wide join points, keyed by variable or struct-field object.
	waited := make(map[types.Object]bool)
	received := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(t.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroup(pass.TypeOf(sel.X)) {
					if obj := refObj(pass, sel.X); obj != nil {
						waited[obj] = true
					}
				}
			case *ast.UnaryExpr:
				if t.Op == token.ARROW {
					if obj := refObj(pass, t.X); obj != nil {
						received[obj] = true
					}
				}
			case *ast.RangeStmt:
				if tp := pass.TypeOf(t.X); tp != nil {
					if _, ok := tp.Underlying().(*types.Chan); ok {
						if obj := refObj(pass, t.X); obj != nil {
							received[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineJoined(pass, g, waited, received) {
				pass.Reportf(g.Pos(),
					"goroutine has no reachable join (no Wait on its WaitGroup, no receive on its channel); "+
						"workers must be joined before the operator's Close returns")
			}
			return true
		})
	}
}

// goroutineJoined reports whether the launched goroutine demonstrably
// meets a join point recorded in waited/received.
func goroutineJoined(pass *Pass, g *ast.GoStmt, waited, received map[types.Object]bool) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// go someFunc(...): accept a waited *sync.WaitGroup argument —
		// the callee is presumed to Done it.
		for _, arg := range g.Call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				arg = u.X
			}
			if isWaitGroup(pass.TypeOf(arg)) && waited[refObj(pass, arg)] {
				return true
			}
		}
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch t := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(t.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroup(pass.TypeOf(sel.X)) {
				if waited[refObj(pass, sel.X)] {
					joined = true
				}
			}
			if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && id.Name == "close" && len(t.Args) == 1 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && received[refObj(pass, t.Args[0])] {
					joined = true
				}
			}
		case *ast.SendStmt:
			if received[refObj(pass, t.Chan)] {
				joined = true
			}
		}
		return true
	})
	return joined
}

// refObj resolves a variable or field-selection expression to the
// object that identifies it across functions: the variable itself, or
// the struct-field object for o.f (shared by every method of the type,
// which is what lets a worker's Done match finish's Wait).
func refObj(pass *Pass, e ast.Expr) types.Object {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[t]; obj != nil {
			return obj
		}
		return pass.Info.Defs[t]
	case *ast.SelectorExpr:
		return pass.Info.Uses[t.Sel]
	}
	return nil
}

// isWaitGroup reports whether t is sync.WaitGroup or a pointer to it
// (matched by package name so fixtures can stand in).
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "WaitGroup" && o.Pkg() != nil && o.Pkg().Name() == "sync"
}

// pathHasSegment reports whether the slash-separated import path
// contains seg as a whole segment.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
