// Package star generates the synthetic data warehouse of Experiment 3:
// a fact table with foreign keys to three small dimension tables, with
// the joint join fraction "handcrafted" so that any percentage of fact
// rows between 0% and 10% joins the selected 10% of each dimension —
// while every marginal stays exactly 10%, which pins histogram-based
// estimates at 0.1% regardless of the truth.
package star

import (
	"fmt"

	"robustqo/internal/catalog"
	"robustqo/internal/engine"
	"robustqo/internal/expr"
	"robustqo/internal/optimizer"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// MarginalFraction is the per-dimension selected fraction (the paper's
// "each filter selected 10% of the rows of its dimension table").
const MarginalFraction = 0.10

// Config controls generation.
type Config struct {
	// FactRows is the fact table size (the paper used 10,000,000).
	FactRows int
	// DimRows is the size of each dimension table (paper: 1,000).
	DimRows int
	// Dims is the number of dimension tables (paper: 3).
	Dims int
	// JoinFraction is the fraction of fact rows whose foreign keys all
	// land in the selected 10% of their dimensions. In [0, 0.1].
	JoinFraction float64
	// Seed makes generation reproducible.
	Seed uint64
}

func (c *Config) validate() error {
	if c.FactRows <= 0 || c.DimRows <= 0 {
		return fmt.Errorf("star: FactRows and DimRows must be positive")
	}
	if c.Dims < 1 {
		return fmt.Errorf("star: need at least one dimension, got %d", c.Dims)
	}
	if c.JoinFraction < 0 || c.JoinFraction > MarginalFraction {
		return fmt.Errorf("star: JoinFraction %g outside [0, %g]", c.JoinFraction, MarginalFraction)
	}
	if c.DimRows < 20 {
		return fmt.Errorf("star: DimRows %d too small for a 10%% selected set", c.DimRows)
	}
	return nil
}

// DimName returns the name of dimension i (0-based): "dim1", "dim2", ...
func DimName(i int) string { return fmt.Sprintf("dim%d", i+1) }

// FactFK returns the fact column referencing dimension i.
func FactFK(i int) string { return fmt.Sprintf("f_dim%d", i+1) }

// Generate builds the star schema database.
//
// The joint distribution is the exact mixture construction: with
// probability JoinFraction a fact row draws all FKs from the selected key
// sets; with probability (MarginalFraction - JoinFraction) per dimension
// exactly that one FK is selected; otherwise none are. Every marginal is
// exactly MarginalFraction and the joint is exactly JoinFraction, for any
// JoinFraction in [0, MarginalFraction].
func Generate(cfg Config) (*storage.Database, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)

	selCount := int(float64(cfg.DimRows) * MarginalFraction)
	dims := make([]*storage.Table, cfg.Dims)
	for i := 0; i < cfg.Dims; i++ {
		t, err := db.CreateTable(&catalog.TableSchema{
			Name: DimName(i),
			Columns: []catalog.Column{
				{Name: "d_id", Type: catalog.Int},
				{Name: "d_attr", Type: catalog.Int},
				{Name: "d_payload", Type: catalog.Int},
			},
			PrimaryKey: "d_id",
			Ordered:    []string{"d_id"},
		})
		if err != nil {
			return nil, err
		}
		dims[i] = t
	}
	factCols := []catalog.Column{{Name: "f_id", Type: catalog.Int}}
	var fks []catalog.ForeignKey
	var ixs []catalog.Index
	for i := 0; i < cfg.Dims; i++ {
		factCols = append(factCols, catalog.Column{Name: FactFK(i), Type: catalog.Int})
		fks = append(fks, catalog.ForeignKey{Column: FactFK(i), RefTable: DimName(i)})
		ixs = append(ixs, catalog.Index{Name: "ix_" + FactFK(i), Column: FactFK(i), Kind: catalog.NonClustered})
	}
	factCols = append(factCols,
		catalog.Column{Name: "f_measure1", Type: catalog.Float},
		catalog.Column{Name: "f_measure2", Type: catalog.Float},
	)
	fact, err := db.CreateTable(&catalog.TableSchema{
		Name:       "fact",
		Columns:    factCols,
		PrimaryKey: "f_id",
		Foreign:    fks,
		Indexes:    ixs,
		Ordered:    []string{"f_id"},
	})
	if err != nil {
		return nil, err
	}

	rng := stats.NewRNG(cfg.Seed)
	dimRNG := stats.NewSticky(rng.Split())
	for i := 0; i < cfg.Dims; i++ {
		for d := 0; d < cfg.DimRows; d++ {
			attr := int64(1) // unselected
			if d < selCount {
				attr = 0 // d_attr = 0 marks the selected 10%
			}
			row := value.Row{
				value.Int(int64(d)),
				value.Int(attr),
				value.Int(int64(dimRNG.Intn(1000))),
			}
			if err := dims[i].Append(row); err != nil {
				return nil, err
			}
		}
	}
	if err := dimRNG.Err(); err != nil {
		return nil, err
	}

	factRNG := stats.NewSticky(rng.Split())
	perDim := MarginalFraction - cfg.JoinFraction // probability of "only dim i selected"
	for f := 0; f < cfg.FactRows; f++ {
		u := factRNG.Float64()
		// Mode: -2 = all selected, i in [0,Dims) = only dim i, -1 = none.
		mode := -1
		switch {
		case u < cfg.JoinFraction:
			mode = -2
		case u < cfg.JoinFraction+float64(cfg.Dims)*perDim:
			mode = int((u - cfg.JoinFraction) / perDim)
			if mode >= cfg.Dims {
				mode = cfg.Dims - 1
			}
		}
		row := make(value.Row, 0, len(factCols))
		row = append(row, value.Int(int64(f)))
		for i := 0; i < cfg.Dims; i++ {
			inSelected := mode == -2 || mode == i
			var key int64
			if inSelected {
				key = int64(factRNG.Intn(selCount))
			} else {
				key = int64(selCount + factRNG.Intn(cfg.DimRows-selCount))
			}
			row = append(row, value.Int(key))
		}
		row = append(row,
			value.Float(factRNG.Float64()*100),
			value.Float(factRNG.Float64()*1000),
		)
		if err := fact.Append(row); err != nil {
			return nil, err
		}
	}
	if err := factRNG.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// Query builds the Section 6.2.3 template: the star join of fact with all
// dimensions, a 10% filter on each dimension, and aggregates over the
// fact measures.
func Query(dims int) *optimizer.Query {
	tables := []string{"fact"}
	var terms []expr.Expr
	for i := 0; i < dims; i++ {
		tables = append(tables, DimName(i))
		terms = append(terms, expr.Cmp{
			Op: expr.EQ,
			L:  expr.TC(DimName(i), "d_attr"),
			R:  expr.IntLit(0),
		})
	}
	return &optimizer.Query{
		Tables: tables,
		Pred:   expr.Conj(terms...),
		Aggs: []engine.AggSpec{
			{Func: engine.Sum, Arg: expr.TC("fact", "f_measure1"), As: "m1"},
			{Func: engine.Avg, Arg: expr.TC("fact", "f_measure2"), As: "m2"},
			{Func: engine.Count, As: "n"},
		},
	}
}
