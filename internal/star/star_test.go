package star

import (
	"math"
	"testing"

	"robustqo/internal/expr"
	"robustqo/internal/sample"
	"robustqo/internal/testkit"
)

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{},
		{FactRows: 100, DimRows: 100, Dims: 0},
		{FactRows: 100, DimRows: 100, Dims: 3, JoinFraction: 0.2},
		{FactRows: 100, DimRows: 100, Dims: 3, JoinFraction: -0.1},
		{FactRows: 100, DimRows: 10, Dims: 3},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateIntegrityAndNames(t *testing.T) {
	db, err := Generate(Config{FactRows: 2000, DimRows: 100, Dims: 3, JoinFraction: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := db.Table(DimName(i)); !ok {
			t.Errorf("missing %s", DimName(i))
		}
	}
	fact := testkit.Table(db, "fact")
	for i := 0; i < 3; i++ {
		if fact.Schema().ColumnIndex(FactFK(i)) < 0 {
			t.Errorf("missing %s", FactFK(i))
		}
		if _, ok := fact.Schema().IndexOn(FactFK(i)); !ok {
			t.Errorf("no index on %s", FactFK(i))
		}
	}
}

func selectedFraction(t *testing.T, cfg Config, pred expr.Expr) float64 {
	t.Helper()
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tables := []string{"fact"}
	for i := 0; i < cfg.Dims; i++ {
		tables = append(tables, DimName(i))
	}
	sel, err := sample.ExactFraction(db, tables, pred)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestJointFractionControlled(t *testing.T) {
	for _, j := range []float64{0, 0.001, 0.02, 0.05, 0.1} {
		cfg := Config{FactRows: 40000, DimRows: 1000, Dims: 3, JoinFraction: j, Seed: 11}
		got := selectedFraction(t, cfg, Query(3).Pred)
		tol := 0.004 + j*0.15
		if math.Abs(got-j) > tol {
			t.Errorf("join fraction %g: measured %g", j, got)
		}
	}
}

func TestMarginalsStayAtTenPercent(t *testing.T) {
	// Regardless of the joint, each single-dimension semijoin fraction
	// stays at 10% — the property that pins histogram estimates at 0.1%.
	for _, j := range []float64{0, 0.05, 0.1} {
		cfg := Config{FactRows: 40000, DimRows: 1000, Dims: 3, JoinFraction: j, Seed: 13}
		db, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			pred := expr.Cmp{Op: expr.EQ, L: expr.TC(DimName(i), "d_attr"), R: expr.IntLit(0)}
			sel, err := sample.ExactFraction(db, []string{"fact", DimName(i)}, pred)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sel-MarginalFraction) > 0.01 {
				t.Errorf("joint %g dim %d: marginal = %g", j, i, sel)
			}
		}
	}
}

func TestDimFilterSelectsTenPercent(t *testing.T) {
	db, err := Generate(Config{FactRows: 500, DimRows: 1000, Dims: 2, JoinFraction: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := expr.Cmp{Op: expr.EQ, L: expr.TC("dim1", "d_attr"), R: expr.IntLit(0)}
	sel, err := sample.ExactFraction(db, []string{"dim1"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0.1 {
		t.Errorf("dim filter selects %g", sel)
	}
}

func TestQueryShape(t *testing.T) {
	q := Query(3)
	if len(q.Tables) != 4 || q.Tables[0] != "fact" {
		t.Errorf("tables = %v", q.Tables)
	}
	if len(q.Aggs) != 3 {
		t.Errorf("aggs = %v", q.Aggs)
	}
	if len(expr.SplitConjuncts(q.Pred)) != 3 {
		t.Errorf("pred = %v", q.Pred)
	}
}
