package sample

import (
	"math"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

func TestExactFractionSingleTable(t *testing.T) {
	db := chainDB(t, 20, 2, 3) // 120 lineitems
	sel, err := ExactFraction(db, []string{"lineitem"}, testkit.Expr("l_qty < 25"))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check by hand.
	li := testkit.Table(db, "lineitem")
	matches := 0
	for _, q := range li.Ints(2) {
		if q < 25 {
			matches++
		}
	}
	want := float64(matches) / float64(li.NumRows())
	if math.Abs(sel-want) > 1e-12 {
		t.Errorf("sel = %g, want %g", sel, want)
	}
}

func TestExactFractionJoinMatchesSynopsisLimit(t *testing.T) {
	db := chainDB(t, 40, 3, 4)
	pred := testkit.Expr("l_qty < 25 AND o_priority = 1")
	exact, err := ExactFraction(db, []string{"lineitem", "orders"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	// A very large synopsis converges to the exact fraction.
	syn, err := BuildSynopsis(db, "lineitem", 20000, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	k, err := syn.Count(pred)
	if err != nil {
		t.Fatal(err)
	}
	approx := float64(k) / float64(syn.Size())
	if math.Abs(exact-approx) > 0.02 {
		t.Errorf("exact %g vs large-sample %g", exact, approx)
	}
}

func TestExactFractionNilPredicateIsOne(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	sel, err := ExactFraction(db, []string{"lineitem", "orders", "customer"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 1 {
		t.Errorf("nil predicate = %g", sel)
	}
}

func TestExactFractionErrors(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	if _, err := ExactFraction(db, []string{"ghost"}, nil); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := ExactFraction(db, []string{"orders", "lineitem", "ghost"}, nil); err == nil {
		t.Error("unknown member accepted")
	}
	if _, err := ExactFraction(db, []string{"customer", "lineitem"}, nil); err == nil {
		t.Error("disconnected set accepted")
	}
	if _, err := ExactFraction(db, []string{"lineitem"}, testkit.Expr("ghost = 1")); err == nil {
		t.Error("unknown column accepted")
	}
	// Empty root table.
	cat := catalog.NewCatalog()
	db2 := storage.NewDatabase(cat)
	if _, err := db2.CreateTable(&catalog.TableSchema{
		Name: "empty", Columns: []catalog.Column{{Name: "a", Type: catalog.Int}}, PrimaryKey: "a",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExactFraction(db2, []string{"empty"}, nil); err == nil {
		t.Error("empty table accepted")
	}
}

func TestExactFractionDanglingFKAndDiamond(t *testing.T) {
	// Dangling FK errors out mid-expansion.
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	dim, _ := db.CreateTable(&catalog.TableSchema{
		Name: "dim", Columns: []catalog.Column{{Name: "d_id", Type: catalog.Int}}, PrimaryKey: "d_id"})
	fact, _ := db.CreateTable(&catalog.TableSchema{
		Name: "fact", Columns: []catalog.Column{
			{Name: "f_id", Type: catalog.Int}, {Name: "f_d", Type: catalog.Int}},
		PrimaryKey: "f_id", Foreign: []catalog.ForeignKey{{Column: "f_d", RefTable: "dim"}}})
	_ = dim.Append(value.Row{value.Int(1)})
	_ = fact.Append(value.Row{value.Int(1), value.Int(77)})
	if _, err := ExactFraction(db, []string{"fact", "dim"}, nil); err == nil {
		t.Error("dangling FK accepted")
	}
	// Diamonds are rejected at planning.
	cat2 := catalog.NewCatalog()
	db2 := storage.NewDatabase(cat2)
	d, _ := db2.CreateTable(&catalog.TableSchema{
		Name: "d", Columns: []catalog.Column{{Name: "d_id", Type: catalog.Int}}, PrimaryKey: "d_id"})
	b, _ := db2.CreateTable(&catalog.TableSchema{
		Name: "b", Columns: []catalog.Column{{Name: "b_id", Type: catalog.Int}, {Name: "b_d", Type: catalog.Int}},
		PrimaryKey: "b_id", Foreign: []catalog.ForeignKey{{Column: "b_d", RefTable: "d"}}})
	c, _ := db2.CreateTable(&catalog.TableSchema{
		Name: "c", Columns: []catalog.Column{{Name: "c_id", Type: catalog.Int}, {Name: "c_d", Type: catalog.Int}},
		PrimaryKey: "c_id", Foreign: []catalog.ForeignKey{{Column: "c_d", RefTable: "d"}}})
	a, _ := db2.CreateTable(&catalog.TableSchema{
		Name: "a", Columns: []catalog.Column{
			{Name: "a_id", Type: catalog.Int}, {Name: "a_b", Type: catalog.Int}, {Name: "a_c", Type: catalog.Int}},
		PrimaryKey: "a_id", Foreign: []catalog.ForeignKey{
			{Column: "a_b", RefTable: "b"}, {Column: "a_c", RefTable: "c"}}})
	_ = d.Append(value.Row{value.Int(1)})
	_ = b.Append(value.Row{value.Int(1), value.Int(1)})
	_ = c.Append(value.Row{value.Int(1), value.Int(1)})
	_ = a.Append(value.Row{value.Int(1), value.Int(1), value.Int(1)})
	if _, err := ExactFraction(db2, []string{"a", "b", "c"}, nil); err == nil {
		t.Error("diamond accepted")
	}
}
