package sample

import (
	"math"
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// chainDB builds lineitem -> orders -> customer so synopsis construction
// exercises recursive foreign-key expansion.
func chainDB(t *testing.T, nCust, ordersPerCust, linesPerOrder int) *storage.Database {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	cust, err := db.CreateTable(&catalog.TableSchema{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_id", Type: catalog.Int},
			{Name: "c_region", Type: catalog.Int},
		},
		PrimaryKey: "c_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_id", Type: catalog.Int},
			{Name: "o_cust", Type: catalog.Int},
			{Name: "o_priority", Type: catalog.Int},
		},
		PrimaryKey: "o_id",
		Foreign:    []catalog.ForeignKey{{Column: "o_cust", RefTable: "customer"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lineitem, err := db.CreateTable(&catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_order", Type: catalog.Int},
			{Name: "l_qty", Type: catalog.Int},
		},
		PrimaryKey: "l_id",
		Foreign:    []catalog.ForeignKey{{Column: "l_order", RefTable: "orders"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	oid, lid := int64(0), int64(0)
	for c := 0; c < nCust; c++ {
		_ = cust.Append(value.Row{value.Int(int64(c)), value.Int(int64(c % 5))})
		for o := 0; o < ordersPerCust; o++ {
			_ = orders.Append(value.Row{value.Int(oid), value.Int(int64(c)), value.Int(int64(testkit.Intn(rng, 3)))})
			for l := 0; l < linesPerOrder; l++ {
				_ = lineitem.Append(value.Row{value.Int(lid), value.Int(oid), value.Int(int64(testkit.Intn(rng, 50)))})
				lid++
			}
			oid++
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildTableSample(t *testing.T) {
	db := chainDB(t, 10, 2, 3)
	tab := testkit.Table(db, "lineitem")
	syn, err := BuildTableSample(tab, 40, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if syn.Size() != 40 || syn.N != tab.NumRows() || syn.Root != "lineitem" {
		t.Errorf("synopsis = size %d, N %d, root %s", syn.Size(), syn.N, syn.Root)
	}
	if len(syn.Schema.Fields) != 3 {
		t.Errorf("schema = %v", syn.Schema)
	}
	for _, row := range syn.Rows {
		if len(row) != 3 {
			t.Fatalf("row width = %d", len(row))
		}
	}
}

func TestBuildTableSampleErrors(t *testing.T) {
	db := chainDB(t, 2, 1, 1)
	tab := testkit.Table(db, "lineitem")
	if _, err := BuildTableSample(tab, 0, stats.NewRNG(1)); err == nil {
		t.Error("zero size accepted")
	}
	empty, _ := storage.NewTable(&catalog.TableSchema{Name: "e", Columns: []catalog.Column{{Name: "a", Type: catalog.Int}}})
	if _, err := BuildTableSample(empty, 5, stats.NewRNG(1)); err == nil {
		t.Error("empty table accepted")
	}
}

func TestBuildSynopsisSchemaAndWidth(t *testing.T) {
	db := chainDB(t, 8, 2, 2)
	syn, err := BuildSynopsis(db, "lineitem", 30, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// lineitem(3) + orders(3) + customer(2) = 8 columns.
	if len(syn.Schema.Fields) != 8 {
		t.Fatalf("schema width = %d: %s", len(syn.Schema.Fields), syn.Schema)
	}
	wantTables := []string{"lineitem", "orders", "customer"}
	if len(syn.Tables) != 3 {
		t.Fatalf("tables = %v", syn.Tables)
	}
	for i, w := range wantTables {
		if syn.Tables[i] != w {
			t.Errorf("Tables[%d] = %s, want %s", i, syn.Tables[i], w)
		}
	}
	// Every sample tuple must satisfy the join conditions.
	oIdx, _ := syn.Schema.Resolve(expr.ColumnRef{Table: "lineitem", Column: "l_order"})
	oid, _ := syn.Schema.Resolve(expr.ColumnRef{Table: "orders", Column: "o_id"})
	cIdx, _ := syn.Schema.Resolve(expr.ColumnRef{Table: "orders", Column: "o_cust"})
	cid, _ := syn.Schema.Resolve(expr.ColumnRef{Table: "customer", Column: "c_id"})
	for _, row := range syn.Rows {
		if row[oIdx].I != row[oid].I || row[cIdx].I != row[cid].I {
			t.Fatal("synopsis row violates join condition")
		}
	}
}

func TestSynopsisCount(t *testing.T) {
	db := chainDB(t, 10, 3, 4)
	syn, err := BuildSynopsis(db, "lineitem", 200, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// Count with a predicate across all three tables.
	k, err := syn.Count(testkit.Expr("l_qty < 25 AND o_priority = 1 AND c_region = 2"))
	if err != nil {
		t.Fatal(err)
	}
	if k < 0 || k > syn.Size() {
		t.Errorf("k = %d", k)
	}
	// Nil predicate matches everything.
	all, err := syn.Count(nil)
	if err != nil || all != syn.Size() {
		t.Errorf("Count(nil) = %d, %v", all, err)
	}
	// Binding errors are reported.
	if _, err := syn.Count(testkit.Expr("ghost = 1")); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestSampleSelectivityApproximatesTruth(t *testing.T) {
	db := chainDB(t, 50, 4, 5) // 1000 lineitems
	// Ground truth for l_qty < 25 joined with c_region = 2.
	li := testkit.Table(db, "lineitem")
	or := testkit.Table(db, "orders")
	cu := testkit.Table(db, "customer")
	matches := 0
	for r := 0; r < li.NumRows(); r++ {
		qty := li.Ints(2)[r]
		orid, _ := or.LookupPK(li.Ints(1)[r])
		crid, _ := cu.LookupPK(or.Ints(1)[orid])
		if qty < 25 && cu.Ints(1)[crid] == 2 {
			matches++
		}
	}
	truth := float64(matches) / float64(li.NumRows())

	// Average the sample fraction over several synopses.
	var fracs []float64
	for seed := uint64(0); seed < 20; seed++ {
		syn, err := BuildSynopsis(db, "lineitem", 500, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		k, err := syn.Count(testkit.Expr("l_qty < 25 AND c_region = 2"))
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, float64(k)/float64(syn.Size()))
	}
	mean, _ := stats.MeanStd(fracs)
	if math.Abs(mean-truth) > 0.03 {
		t.Errorf("sample mean %g vs truth %g", mean, truth)
	}
}

func TestBuildSynopsisErrors(t *testing.T) {
	db := chainDB(t, 2, 1, 1)
	if _, err := BuildSynopsis(db, "ghost", 10, stats.NewRNG(1)); err == nil {
		t.Error("unknown root accepted")
	}
	if _, err := BuildSynopsis(db, "lineitem", 0, stats.NewRNG(1)); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBuildSynopsisDetectsDiamond(t *testing.T) {
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	d, _ := db.CreateTable(&catalog.TableSchema{
		Name: "d", Columns: []catalog.Column{{Name: "d_id", Type: catalog.Int}}, PrimaryKey: "d_id"})
	b, _ := db.CreateTable(&catalog.TableSchema{
		Name: "b", Columns: []catalog.Column{{Name: "b_id", Type: catalog.Int}, {Name: "b_d", Type: catalog.Int}},
		PrimaryKey: "b_id", Foreign: []catalog.ForeignKey{{Column: "b_d", RefTable: "d"}}})
	c, _ := db.CreateTable(&catalog.TableSchema{
		Name: "c", Columns: []catalog.Column{{Name: "c_id", Type: catalog.Int}, {Name: "c_d", Type: catalog.Int}},
		PrimaryKey: "c_id", Foreign: []catalog.ForeignKey{{Column: "c_d", RefTable: "d"}}})
	a, _ := db.CreateTable(&catalog.TableSchema{
		Name: "a", Columns: []catalog.Column{
			{Name: "a_id", Type: catalog.Int}, {Name: "a_b", Type: catalog.Int}, {Name: "a_c", Type: catalog.Int}},
		PrimaryKey: "a_id", Foreign: []catalog.ForeignKey{
			{Column: "a_b", RefTable: "b"}, {Column: "a_c", RefTable: "c"}}})
	_ = d.Append(value.Row{value.Int(1)})
	_ = b.Append(value.Row{value.Int(1), value.Int(1)})
	_ = c.Append(value.Row{value.Int(1), value.Int(1)})
	_ = a.Append(value.Row{value.Int(1), value.Int(1), value.Int(1)})
	_, err := BuildSynopsis(db, "a", 5, stats.NewRNG(1))
	if err == nil || !strings.Contains(err.Error(), "multiple foreign-key paths") {
		t.Errorf("diamond err = %v", err)
	}
	// BuildAll degrades the diamond root to a plain single-table sample
	// and keeps full synopses for the others.
	set, err := BuildAll(db, 5, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	aSyn, ok := set.Synopsis("a")
	if !ok {
		t.Fatal("diamond root has no sample at all")
	}
	if len(aSyn.Tables) != 1 || aSyn.Tables[0] != "a" {
		t.Errorf("diamond root sample covers %v, want just [a]", aSyn.Tables)
	}
	if bSyn, ok := set.Synopsis("b"); !ok || len(bSyn.Tables) != 2 {
		t.Errorf("b synopsis = %v, %v", bSyn, ok)
	}
	// Multi-table requests rooted at the degraded table fail coverage.
	if _, err := set.For([]string{"a", "b"}); err == nil {
		t.Error("For over uncovered join accepted")
	}
}

func TestBuildSynopsisDanglingFK(t *testing.T) {
	cat2 := catalog.NewCatalog()
	db2 := storage.NewDatabase(cat2)
	dim2, _ := db2.CreateTable(&catalog.TableSchema{
		Name: "dim", Columns: []catalog.Column{{Name: "d_id", Type: catalog.Int}}, PrimaryKey: "d_id"})
	fact2, _ := db2.CreateTable(&catalog.TableSchema{
		Name: "fact", Columns: []catalog.Column{{Name: "f_id", Type: catalog.Int}, {Name: "f_d", Type: catalog.Int}},
		PrimaryKey: "f_id", Foreign: []catalog.ForeignKey{{Column: "f_d", RefTable: "dim"}}})
	_ = dim2.Append(value.Row{value.Int(1)})
	_ = fact2.Append(value.Row{value.Int(1), value.Int(99)}) // dangling
	if _, err := BuildSynopsis(db2, "fact", 5, stats.NewRNG(1)); err == nil {
		t.Error("dangling FK accepted")
	}
}

func TestSetForSelectsRoot(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	set, err := BuildAll(db, 50, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	syn, err := set.For([]string{"orders", "lineitem"})
	if err != nil || syn.Root != "lineitem" {
		t.Errorf("For = %v, %v", syn, err)
	}
	syn, err = set.For([]string{"customer", "orders"})
	if err != nil || syn.Root != "orders" {
		t.Errorf("For = %v, %v", syn, err)
	}
	syn, err = set.For([]string{"customer"})
	if err != nil || syn.Root != "customer" {
		t.Errorf("For(customer) = %v, %v", syn, err)
	}
	// lineitem and customer are only joinable through orders, so the set
	// {customer, lineitem} is not a valid FK-join expression: two roots.
	if _, err := set.For([]string{"customer", "lineitem"}); err == nil {
		t.Error("For(customer, lineitem) accepted a disconnected table set")
	}
	if _, err := set.For([]string{"ghost"}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestSetForMissingSynopsis(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	set, err := BuildAll(db, 50, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// Remove the lineitem synopsis to simulate limited statistics.
	set.synopses = map[string]*Synopsis{}
	if _, err := set.For([]string{"lineitem"}); err == nil {
		t.Error("missing synopsis accepted")
	}
}

func TestSetAddAndCatalog(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	set, _ := BuildAll(db, 10, stats.NewRNG(1))
	if set.Catalog() != db.Catalog {
		t.Error("Catalog() mismatch")
	}
	syn, _ := BuildTableSample(testkit.Table(db, "customer"), 10, stats.NewRNG(2))
	set.Add(syn)
	got, ok := set.Synopsis("customer")
	if !ok || got != syn {
		t.Error("Add did not replace synopsis")
	}
}

func TestReservoir(t *testing.T) {
	rng := stats.NewRNG(11)
	ids := Reservoir(100, 10, rng)
	if len(ids) != 10 {
		t.Fatalf("len = %d", len(ids))
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		if id < 0 || id >= 100 || seen[id] {
			t.Fatalf("bad id %d", id)
		}
		seen[id] = true
	}
	if got := Reservoir(5, 10, rng); len(got) != 5 {
		t.Errorf("n > total: len = %d", len(got))
	}
	if got := Reservoir(0, 10, rng); got != nil {
		t.Errorf("total 0: %v", got)
	}
	if got := Reservoir(10, 0, rng); got != nil {
		t.Errorf("n 0: %v", got)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 20 items should appear in a 5-item reservoir with
	// probability 1/4; chi-square test over many trials.
	const trials = 20000
	counts := make([]int, 20)
	rng := stats.NewRNG(13)
	for i := 0; i < trials; i++ {
		for _, id := range Reservoir(20, 5, rng) {
			counts[id]++
		}
	}
	expected := float64(trials) * 5 / 20
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 99.9th percentile of chi-square with 19 dof is ~43.8.
	if chi2 > 43.8 {
		t.Errorf("chi-square = %g", chi2)
	}
}

func TestSampleUniformityChiSquare(t *testing.T) {
	// With-replacement sampling should hit each row uniformly.
	db := chainDB(t, 10, 1, 2) // 20 lineitems
	tab := testkit.Table(db, "lineitem")
	counts := make(map[int64]int)
	rng := stats.NewRNG(17)
	const n = 40000
	syn, err := BuildTableSample(tab, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range syn.Rows {
		counts[row[0].I]++
	}
	expected := float64(n) / 20
	chi2 := 0.0
	for id := int64(0); id < 20; id++ {
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	// 99.9th percentile of chi-square with 19 dof.
	if chi2 > 43.8 {
		t.Errorf("chi-square = %g", chi2)
	}
}
