// Package sample implements the precomputed-statistics side of the paper's
// estimation procedure: uniform random samples of base tables and join
// synopses (Acharya et al. [1]) — samples of each relation pre-joined with
// every relation reachable through its foreign keys — so that the
// selectivity of any foreign-key SPJ expression can be measured directly
// on a single sample.
package sample

import (
	"fmt"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// DefaultSize is the sample size used throughout the paper's experiments.
const DefaultSize = 500

// Synopsis is a precomputed uniform random sample of a root table, each
// sample tuple widened with the matching rows of every table reachable via
// foreign keys. For a plain table sample (no expansion), the schema covers
// only the root's columns.
type Synopsis struct {
	Root   string
	Tables []string // all tables folded in, root first, expansion order
	Schema expr.RelSchema
	Rows   []value.Row
	N      int // root table population size the sample represents
}

// Size returns the number of sample tuples n.
func (s *Synopsis) Size() int { return len(s.Rows) }

// Count evaluates a predicate over the sample and returns the number of
// matching tuples k. The fraction k/Size is the maximum-likelihood
// selectivity; the Bayesian treatment lives in package core.
func (s *Synopsis) Count(pred expr.Expr) (int, error) {
	bound, err := expr.Bind(pred, s.Schema)
	if err != nil {
		return 0, fmt.Errorf("sample: synopsis %q: %v", s.Root, err)
	}
	k := 0
	for _, row := range s.Rows {
		ok, err := bound.Eval(row)
		if err != nil {
			return 0, fmt.Errorf("sample: synopsis %q: %v", s.Root, err)
		}
		if ok {
			k++
		}
	}
	return k, nil
}

// BuildTableSample draws a uniform with-replacement sample of n rows from
// the table, with no foreign-key expansion.
func BuildTableSample(t *storage.Table, n int, rng *stats.RNG) (*Synopsis, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sample: sample size %d must be positive", n)
	}
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("sample: table %q is empty", t.Name())
	}
	schema := expr.SchemaForTable(t.Schema())
	rows := make([]value.Row, n)
	for i := range rows {
		rid, err := rng.Intn(t.NumRows())
		if err != nil {
			return nil, err
		}
		rows[i] = t.Row(rid)
	}
	return &Synopsis{
		Root:   t.Name(),
		Tables: []string{t.Name()},
		Schema: schema,
		Rows:   rows,
		N:      t.NumRows(),
	}, nil
}

// BuildSynopsis constructs the join synopsis of root: a uniform
// with-replacement sample of root, each tuple joined (via primary-key
// lookups) with the full contents of every foreign-key-reachable table.
//
// The foreign-key graph must be acyclic and free of diamonds (no table
// reachable along two paths), and every foreign key must resolve —
// referential integrity is required for the synopsis rows to be a uniform
// sample of the full join (the paper's correctness argument).
func BuildSynopsis(db *storage.Database, root string, n int, rng *stats.RNG) (*Synopsis, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sample: sample size %d must be positive", n)
	}
	rootTab, ok := db.Table(root)
	if !ok {
		return nil, fmt.Errorf("sample: unknown table %q", root)
	}
	if rootTab.NumRows() == 0 {
		return nil, fmt.Errorf("sample: table %q is empty", root)
	}
	// Plan the expansion: depth-first over foreign keys, recording the
	// visit order and detecting diamonds.
	var tables []string
	var schema expr.RelSchema
	seen := make(map[string]bool)
	var plan func(name string) error
	plan = func(name string) error {
		if seen[name] {
			return fmt.Errorf("sample: table %q reachable along multiple foreign-key paths from %q; join synopsis is ambiguous", name, root)
		}
		seen[name] = true
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("sample: unknown table %q", name)
		}
		tables = append(tables, name)
		schema = schema.Concat(expr.SchemaForTable(t.Schema()))
		for _, fk := range t.Schema().Foreign {
			if err := plan(fk.RefTable); err != nil {
				return err
			}
		}
		return nil
	}
	if err := plan(root); err != nil {
		return nil, err
	}

	rows := make([]value.Row, n)
	for i := range rows {
		row := make(value.Row, 0, len(schema.Fields))
		var expand func(name string, rid int) error
		expand = func(name string, rid int) error {
			t, ok := db.Table(name)
			if !ok {
				return fmt.Errorf("sample: unknown table %q", name)
			}
			base := t.Row(rid)
			row = append(row, base...)
			for _, fk := range t.Schema().Foreign {
				fkIdx := t.Schema().ColumnIndex(fk.Column)
				ref, ok := db.Table(fk.RefTable)
				if !ok {
					return fmt.Errorf("sample: unknown table %q", fk.RefTable)
				}
				refRID, ok := ref.LookupPK(base[fkIdx].I)
				if !ok {
					return fmt.Errorf("sample: dangling foreign key %s.%s = %d into %q",
						name, fk.Column, base[fkIdx].I, fk.RefTable)
				}
				if err := expand(fk.RefTable, refRID); err != nil {
					return err
				}
			}
			return nil
		}
		rid, err := rng.Intn(rootTab.NumRows())
		if err != nil {
			return nil, err
		}
		if err := expand(root, rid); err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return &Synopsis{
		Root:   root,
		Tables: tables,
		Schema: schema,
		Rows:   rows,
		N:      rootTab.NumRows(),
	}, nil
}

// Reservoir draws a uniform without-replacement sample of up to n row ids
// from a population of size total using Vitter's Algorithm R. It is
// exported for callers that prefer distinct tuples (the Bayesian posterior
// in package core assumes with-replacement draws, but for n << N the
// difference is negligible).
func Reservoir(total, n int, rng *stats.RNG) []int {
	if n <= 0 || total <= 0 {
		return nil
	}
	if n > total {
		n = total
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = i
	}
	for i := n; i < total; i++ {
		j, _ := rng.Intn(i + 1) // i+1 > n > 0: the bound error is impossible
		if j < n {
			out[j] = i
		}
	}
	return out
}

// Set holds one join synopsis per table of a database — the full
// precomputed statistics the robust estimator runs on.
type Set struct {
	cat      *catalog.Catalog
	synopses map[string]*Synopsis
}

// BuildAll constructs an n-tuple join synopsis for every table. For
// tables whose foreign-key closure contains a diamond (where the join
// synopsis is ill-defined), it degrades to a plain single-table sample,
// so that multi-table estimates rooted there fall back to the
// independence-combination technique while single-table estimates keep
// working — the paper's "error confined to the subexpressions for which
// adequate samples are not available" (Section 3.5).
func BuildAll(db *storage.Database, n int, rng *stats.RNG) (*Set, error) {
	if err := db.Catalog.Validate(); err != nil {
		return nil, err
	}
	s := &Set{cat: db.Catalog, synopses: make(map[string]*Synopsis)}
	for _, name := range db.Catalog.TableNames() {
		t, ok := db.Table(name)
		if !ok || t.NumRows() == 0 {
			continue
		}
		syn, err := BuildSynopsis(db, name, n, rng.Split())
		if err != nil {
			syn, err = BuildTableSample(t, n, rng.Split())
			if err != nil {
				return nil, err
			}
		}
		s.synopses[name] = syn
	}
	return s, nil
}

// Synopsis returns the synopsis rooted at the named table.
func (s *Set) Synopsis(table string) (*Synopsis, bool) {
	syn, ok := s.synopses[table]
	return syn, ok
}

// Add registers (or replaces) a synopsis, keyed by its root.
func (s *Set) Add(syn *Synopsis) { s.synopses[syn.Root] = syn }

// Catalog returns the catalog the set was built against.
func (s *Set) Catalog() *catalog.Catalog { return s.cat }

// For returns the synopsis appropriate for an SPJ expression over the
// given tables: the synopsis rooted at the expression's root relation
// (the table whose primary key is not joined away). The synopsis must
// cover every requested table.
func (s *Set) For(tables []string) (*Synopsis, error) {
	root, err := s.cat.RootOf(tables)
	if err != nil {
		return nil, err
	}
	syn, ok := s.synopses[root]
	if !ok {
		return nil, fmt.Errorf("sample: no synopsis for root table %q", root)
	}
	covered := make(map[string]bool, len(syn.Tables))
	for _, t := range syn.Tables {
		covered[t] = true
	}
	for _, t := range tables {
		if !covered[t] {
			return nil, fmt.Errorf("sample: synopsis for %q does not cover table %q", root, t)
		}
	}
	return syn, nil
}

// ExactFraction computes the true selectivity of pred over the foreign-key
// join rooted at the root of tables, by exhaustively expanding every root
// row. It is the ground-truth oracle used by tests and by the experiment
// harness to position queries at target selectivities; real systems cannot
// afford it, which is the point of sampling.
func ExactFraction(db *storage.Database, tables []string, pred expr.Expr) (float64, error) {
	root, err := db.Catalog.RootOf(tables)
	if err != nil {
		return 0, err
	}
	rootTab, ok := db.Table(root)
	if !ok {
		return 0, fmt.Errorf("sample: unknown table %q", root)
	}
	if rootTab.NumRows() == 0 {
		return 0, fmt.Errorf("sample: table %q is empty", root)
	}
	// Reuse the synopsis expansion plan for the schema.
	var schema expr.RelSchema
	var order []string
	seen := make(map[string]bool)
	var plan func(name string) error
	plan = func(name string) error {
		if seen[name] {
			return fmt.Errorf("sample: table %q reachable along multiple foreign-key paths from %q", name, root)
		}
		seen[name] = true
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("sample: unknown table %q", name)
		}
		order = append(order, name)
		schema = schema.Concat(expr.SchemaForTable(t.Schema()))
		for _, fk := range t.Schema().Foreign {
			if err := plan(fk.RefTable); err != nil {
				return err
			}
		}
		return nil
	}
	if err := plan(root); err != nil {
		return 0, err
	}
	for _, t := range tables {
		if !seen[t] {
			return 0, fmt.Errorf("sample: table %q not in the foreign-key closure of %q", t, root)
		}
	}
	bound, err := expr.Bind(pred, schema)
	if err != nil {
		return 0, err
	}
	row := make(value.Row, 0, len(schema.Fields))
	var expand func(name string, rid int) error
	expand = func(name string, rid int) error {
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("sample: unknown table %q", name)
		}
		start := len(row)
		row = row[:start+len(t.Schema().Columns)]
		t.ReadRow(rid, row[start:])
		for _, fk := range t.Schema().Foreign {
			fkIdx := t.Schema().ColumnIndex(fk.Column)
			ref, ok := db.Table(fk.RefTable)
			if !ok {
				return fmt.Errorf("sample: unknown table %q", fk.RefTable)
			}
			refRID, ok := ref.LookupPK(row[start+fkIdx].I)
			if !ok {
				return fmt.Errorf("sample: dangling foreign key %s.%s", name, fk.Column)
			}
			if err := expand(fk.RefTable, refRID); err != nil {
				return err
			}
		}
		return nil
	}
	matches := 0
	full := make(value.Row, len(schema.Fields))
	for r := 0; r < rootTab.NumRows(); r++ {
		row = full[:0]
		if err := expand(root, r); err != nil {
			return 0, err
		}
		ok, err := bound.Eval(full)
		if err != nil {
			return 0, err
		}
		if ok {
			matches++
		}
	}
	return float64(matches) / float64(rootTab.NumRows()), nil
}
