// Package sample implements the precomputed-statistics side of the paper's
// estimation procedure: uniform random samples of base tables and join
// synopses (Acharya et al. [1]) — samples of each relation pre-joined with
// every relation reachable through its foreign keys — so that the
// selectivity of any foreign-key SPJ expression can be measured directly
// on a single sample.
package sample

import (
	"fmt"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/value"
)

// DefaultSize is the sample size used throughout the paper's experiments.
const DefaultSize = 500

// Synopsis is a precomputed uniform random sample of a root table, each
// sample tuple widened with the matching rows of every table reachable via
// foreign keys. For a plain table sample (no expansion), the schema covers
// only the root's columns.
type Synopsis struct {
	Root   string
	Tables []string // all tables folded in, root first, expansion order
	Schema expr.RelSchema
	Rows   []value.Row
	N      int // root table population size the sample represents
}

// Size returns the number of sample tuples n.
func (s *Synopsis) Size() int { return len(s.Rows) }

// Count evaluates a predicate over the sample and returns the number of
// matching tuples k. The fraction k/Size is the maximum-likelihood
// selectivity; the Bayesian treatment lives in package core.
func (s *Synopsis) Count(pred expr.Expr) (int, error) {
	bound, err := expr.Bind(pred, s.Schema)
	if err != nil {
		return 0, fmt.Errorf("sample: synopsis %q: %v", s.Root, err)
	}
	k := 0
	for _, row := range s.Rows {
		ok, err := bound.Eval(row)
		if err != nil {
			return 0, fmt.Errorf("sample: synopsis %q: %v", s.Root, err)
		}
		if ok {
			k++
		}
	}
	return k, nil
}

// BuildTableSample draws a uniform with-replacement sample of n rows from
// the table, with no foreign-key expansion.
func BuildTableSample(t *storage.Table, n int, rng *stats.RNG) (*Synopsis, error) {
	return buildTableSampleSpan(t, n, rng, 0, t.NumRows())
}

// buildTableSampleSpan samples uniformly within the global row-id span
// [lo, hi) — a single shard of a partitioned table, or the whole table.
func buildTableSampleSpan(t *storage.Table, n int, rng *stats.RNG, lo, hi int) (*Synopsis, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sample: sample size %d must be positive", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("sample: table %q is empty", t.Name())
	}
	schema := expr.SchemaForTable(t.Schema())
	rows := make([]value.Row, n)
	for i := range rows {
		rid, err := rng.Intn(hi - lo)
		if err != nil {
			return nil, err
		}
		rows[i] = t.Row(lo + rid)
	}
	return &Synopsis{
		Root:   t.Name(),
		Tables: []string{t.Name()},
		Schema: schema,
		Rows:   rows,
		N:      hi - lo,
	}, nil
}

// BuildSynopsis constructs the join synopsis of root: a uniform
// with-replacement sample of root, each tuple joined (via primary-key
// lookups) with the full contents of every foreign-key-reachable table.
//
// The foreign-key graph must be acyclic and free of diamonds (no table
// reachable along two paths), and every foreign key must resolve —
// referential integrity is required for the synopsis rows to be a uniform
// sample of the full join (the paper's correctness argument).
func BuildSynopsis(db *storage.Database, root string, n int, rng *stats.RNG) (*Synopsis, error) {
	rootTab, ok := db.Table(root)
	if !ok {
		return nil, fmt.Errorf("sample: unknown table %q", root)
	}
	return buildSynopsisSpan(db, root, n, rng, 0, rootTab.NumRows())
}

// buildSynopsisSpan builds a join synopsis whose root sample is drawn
// uniformly from the global row-id span [lo, hi) — one shard of a
// partitioned root, or the whole table. Foreign-key expansion always runs
// against the referenced tables in full; only the root is stratified.
func buildSynopsisSpan(db *storage.Database, root string, n int, rng *stats.RNG, lo, hi int) (*Synopsis, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sample: sample size %d must be positive", n)
	}
	if _, ok := db.Table(root); !ok {
		return nil, fmt.Errorf("sample: unknown table %q", root)
	}
	if hi <= lo {
		return nil, fmt.Errorf("sample: table %q is empty", root)
	}
	// Plan the expansion: depth-first over foreign keys, recording the
	// visit order and detecting diamonds.
	var tables []string
	var schema expr.RelSchema
	seen := make(map[string]bool)
	var plan func(name string) error
	plan = func(name string) error {
		if seen[name] {
			return fmt.Errorf("sample: table %q reachable along multiple foreign-key paths from %q; join synopsis is ambiguous", name, root)
		}
		seen[name] = true
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("sample: unknown table %q", name)
		}
		tables = append(tables, name)
		schema = schema.Concat(expr.SchemaForTable(t.Schema()))
		for _, fk := range t.Schema().Foreign {
			if err := plan(fk.RefTable); err != nil {
				return err
			}
		}
		return nil
	}
	if err := plan(root); err != nil {
		return nil, err
	}

	rows := make([]value.Row, n)
	for i := range rows {
		row := make(value.Row, 0, len(schema.Fields))
		var expand func(name string, rid int) error
		expand = func(name string, rid int) error {
			t, ok := db.Table(name)
			if !ok {
				return fmt.Errorf("sample: unknown table %q", name)
			}
			base := t.Row(rid)
			row = append(row, base...)
			for _, fk := range t.Schema().Foreign {
				fkIdx := t.Schema().ColumnIndex(fk.Column)
				ref, ok := db.Table(fk.RefTable)
				if !ok {
					return fmt.Errorf("sample: unknown table %q", fk.RefTable)
				}
				refRID, ok := ref.LookupPK(base[fkIdx].I)
				if !ok {
					return fmt.Errorf("sample: dangling foreign key %s.%s = %d into %q",
						name, fk.Column, base[fkIdx].I, fk.RefTable)
				}
				if err := expand(fk.RefTable, refRID); err != nil {
					return err
				}
			}
			return nil
		}
		rid, err := rng.Intn(hi - lo)
		if err != nil {
			return nil, err
		}
		if err := expand(root, lo+rid); err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return &Synopsis{
		Root:   root,
		Tables: tables,
		Schema: schema,
		Rows:   rows,
		N:      hi - lo,
	}, nil
}

// BuildPartitionSynopses builds one FK-expanded synopsis per shard of a
// partitioned table — stratified sampling with proportional allocation:
// shard p receives n*N_p/N of the n sample tuples (at least 1 when the
// shard is non-empty), so summing per-shard match counts behaves like one
// uniform sample of the union and the per-shard Beta pseudo-counts can be
// added directly (the posterior combination rule in package core). Empty
// shards get a nil entry. Roots whose FK closure contains a diamond fall
// back to plain per-shard table samples, mirroring BuildAll.
func BuildPartitionSynopses(db *storage.Database, root string, n int, rng *stats.RNG) ([]*Synopsis, error) {
	t, ok := db.Table(root)
	if !ok {
		return nil, fmt.Errorf("sample: unknown table %q", root)
	}
	if t.Partitions() < 2 {
		return nil, fmt.Errorf("sample: table %q is not partitioned", root)
	}
	if n <= 0 {
		return nil, fmt.Errorf("sample: sample size %d must be positive", n)
	}
	total := t.NumRows()
	if total == 0 {
		return nil, fmt.Errorf("sample: table %q is empty", root)
	}
	syns := make([]*Synopsis, t.Partitions())
	for p := range syns {
		lo, hi := t.PartitionSpan(p)
		if hi <= lo {
			continue
		}
		np := n * (hi - lo) / total
		if np < 1 {
			np = 1
		}
		syn, err := buildSynopsisSpan(db, root, np, rng.Split(), lo, hi)
		if err != nil {
			syn, err = buildTableSampleSpan(t, np, rng.Split(), lo, hi)
			if err != nil {
				return nil, err
			}
		}
		syns[p] = syn
	}
	return syns, nil
}

// Reservoir draws a uniform without-replacement sample of up to n row ids
// from a population of size total using Vitter's Algorithm R. It is
// exported for callers that prefer distinct tuples (the Bayesian posterior
// in package core assumes with-replacement draws, but for n << N the
// difference is negligible).
func Reservoir(total, n int, rng *stats.RNG) []int {
	if n <= 0 || total <= 0 {
		return nil
	}
	if n > total {
		n = total
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = i
	}
	for i := n; i < total; i++ {
		j, _ := rng.Intn(i + 1) // i+1 > n > 0: the bound error is impossible
		if j < n {
			out[j] = i
		}
	}
	return out
}

// Set holds one join synopsis per table of a database — the full
// precomputed statistics the robust estimator runs on. Partitioned tables
// additionally carry one synopsis per shard so the estimator can combine
// per-shard posteriors over whichever shards survive pruning.
type Set struct {
	cat      *catalog.Catalog
	synopses map[string]*Synopsis
	// partitioned maps a partitioned root table to its per-shard
	// synopses, indexed by shard; empty shards hold nil.
	partitioned map[string][]*Synopsis
}

// BuildAll constructs an n-tuple join synopsis for every table. For
// tables whose foreign-key closure contains a diamond (where the join
// synopsis is ill-defined), it degrades to a plain single-table sample,
// so that multi-table estimates rooted there fall back to the
// independence-combination technique while single-table estimates keep
// working — the paper's "error confined to the subexpressions for which
// adequate samples are not available" (Section 3.5).
func BuildAll(db *storage.Database, n int, rng *stats.RNG) (*Set, error) {
	if err := db.Catalog.Validate(); err != nil {
		return nil, err
	}
	s := &Set{
		cat:         db.Catalog,
		synopses:    make(map[string]*Synopsis),
		partitioned: make(map[string][]*Synopsis),
	}
	for _, name := range db.Catalog.TableNames() {
		t, ok := db.Table(name)
		if !ok || t.NumRows() == 0 {
			continue
		}
		syn, err := BuildSynopsis(db, name, n, rng.Split())
		if err != nil {
			syn, err = BuildTableSample(t, n, rng.Split())
			if err != nil {
				return nil, err
			}
		}
		s.synopses[name] = syn
		if t.Partitions() > 1 {
			shards, err := BuildPartitionSynopses(db, name, n, rng.Split())
			if err != nil {
				return nil, err
			}
			s.partitioned[name] = shards
		}
	}
	return s, nil
}

// Synopsis returns the synopsis rooted at the named table.
func (s *Set) Synopsis(table string) (*Synopsis, bool) {
	syn, ok := s.synopses[table]
	return syn, ok
}

// Add registers (or replaces) a synopsis, keyed by its root.
func (s *Set) Add(syn *Synopsis) { s.synopses[syn.Root] = syn }

// AddPartitioned registers (or replaces) the per-shard synopses of a
// partitioned root table, indexed by shard (nil entries for empty shards).
func (s *Set) AddPartitioned(root string, shards []*Synopsis) {
	if s.partitioned == nil {
		s.partitioned = make(map[string][]*Synopsis)
	}
	s.partitioned[root] = shards
}

// Partitioned returns the per-shard synopses of a partitioned root table.
func (s *Set) Partitioned(root string) ([]*Synopsis, bool) {
	shards, ok := s.partitioned[root]
	return shards, ok
}

// ForShards returns the per-shard synopses appropriate for an SPJ
// expression over the given tables, rooted (like For) at the table whose
// primary key is not joined away. ok is false when the root is not
// partitioned or a shard synopsis does not cover every requested table —
// callers then fall back to the global synopsis.
func (s *Set) ForShards(tables []string) ([]*Synopsis, bool) {
	root, err := s.cat.RootOf(tables)
	if err != nil {
		return nil, false
	}
	shards, ok := s.partitioned[root]
	if !ok {
		return nil, false
	}
	for _, syn := range shards {
		if syn == nil {
			continue
		}
		covered := make(map[string]bool, len(syn.Tables))
		for _, t := range syn.Tables {
			covered[t] = true
		}
		for _, t := range tables {
			if !covered[t] {
				return nil, false
			}
		}
	}
	return shards, true
}

// Catalog returns the catalog the set was built against.
func (s *Set) Catalog() *catalog.Catalog { return s.cat }

// For returns the synopsis appropriate for an SPJ expression over the
// given tables: the synopsis rooted at the expression's root relation
// (the table whose primary key is not joined away). The synopsis must
// cover every requested table.
func (s *Set) For(tables []string) (*Synopsis, error) {
	root, err := s.cat.RootOf(tables)
	if err != nil {
		return nil, err
	}
	syn, ok := s.synopses[root]
	if !ok {
		return nil, fmt.Errorf("sample: no synopsis for root table %q", root)
	}
	covered := make(map[string]bool, len(syn.Tables))
	for _, t := range syn.Tables {
		covered[t] = true
	}
	for _, t := range tables {
		if !covered[t] {
			return nil, fmt.Errorf("sample: synopsis for %q does not cover table %q", root, t)
		}
	}
	return syn, nil
}

// ExactFraction computes the true selectivity of pred over the foreign-key
// join rooted at the root of tables, by exhaustively expanding every root
// row. It is the ground-truth oracle used by tests and by the experiment
// harness to position queries at target selectivities; real systems cannot
// afford it, which is the point of sampling.
func ExactFraction(db *storage.Database, tables []string, pred expr.Expr) (float64, error) {
	root, err := db.Catalog.RootOf(tables)
	if err != nil {
		return 0, err
	}
	rootTab, ok := db.Table(root)
	if !ok {
		return 0, fmt.Errorf("sample: unknown table %q", root)
	}
	if rootTab.NumRows() == 0 {
		return 0, fmt.Errorf("sample: table %q is empty", root)
	}
	// Reuse the synopsis expansion plan for the schema.
	var schema expr.RelSchema
	var order []string
	seen := make(map[string]bool)
	var plan func(name string) error
	plan = func(name string) error {
		if seen[name] {
			return fmt.Errorf("sample: table %q reachable along multiple foreign-key paths from %q", name, root)
		}
		seen[name] = true
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("sample: unknown table %q", name)
		}
		order = append(order, name)
		schema = schema.Concat(expr.SchemaForTable(t.Schema()))
		for _, fk := range t.Schema().Foreign {
			if err := plan(fk.RefTable); err != nil {
				return err
			}
		}
		return nil
	}
	if err := plan(root); err != nil {
		return 0, err
	}
	for _, t := range tables {
		if !seen[t] {
			return 0, fmt.Errorf("sample: table %q not in the foreign-key closure of %q", t, root)
		}
	}
	bound, err := expr.Bind(pred, schema)
	if err != nil {
		return 0, err
	}
	row := make(value.Row, 0, len(schema.Fields))
	var expand func(name string, rid int) error
	expand = func(name string, rid int) error {
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("sample: unknown table %q", name)
		}
		start := len(row)
		row = row[:start+len(t.Schema().Columns)]
		t.ReadRow(rid, row[start:])
		for _, fk := range t.Schema().Foreign {
			fkIdx := t.Schema().ColumnIndex(fk.Column)
			ref, ok := db.Table(fk.RefTable)
			if !ok {
				return fmt.Errorf("sample: unknown table %q", fk.RefTable)
			}
			refRID, ok := ref.LookupPK(row[start+fkIdx].I)
			if !ok {
				return fmt.Errorf("sample: dangling foreign key %s.%s", name, fk.Column)
			}
			if err := expand(fk.RefTable, refRID); err != nil {
				return err
			}
		}
		return nil
	}
	matches := 0
	full := make(value.Row, len(schema.Fields))
	for r := 0; r < rootTab.NumRows(); r++ {
		row = full[:0]
		if err := expand(root, r); err != nil {
			return 0, err
		}
		ok, err := bound.Eval(full)
		if err != nil {
			return 0, err
		}
		if ok {
			matches++
		}
	}
	return float64(matches) / float64(rootTab.NumRows()), nil
}
