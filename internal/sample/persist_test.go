package sample

import (
	"bytes"
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

func TestSetSaveLoadRoundTrip(t *testing.T) {
	db := chainDB(t, 20, 2, 3)
	set, err := BuildAll(db, 100, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSet(&buf, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Every synopsis must round-trip: same root, coverage, population,
	// and exactly the same predicate counts.
	pred := testkit.Expr("l_qty < 25 AND c_region = 2")
	for _, name := range db.Catalog.TableNames() {
		orig, ok1 := set.Synopsis(name)
		back, ok2 := loaded.Synopsis(name)
		if ok1 != ok2 {
			t.Fatalf("%s: presence mismatch", name)
		}
		if !ok1 {
			continue
		}
		if orig.N != back.N || orig.Size() != back.Size() || len(orig.Tables) != len(back.Tables) {
			t.Fatalf("%s: shape mismatch", name)
		}
		if name == "lineitem" {
			k1, err := orig.Count(pred)
			if err != nil {
				t.Fatal(err)
			}
			k2, err := back.Count(pred)
			if err != nil {
				t.Fatal(err)
			}
			if k1 != k2 {
				t.Fatalf("count mismatch: %d vs %d", k1, k2)
			}
		}
	}
	// The loaded set serves For requests.
	if _, err := loaded.For([]string{"lineitem", "orders"}); err != nil {
		t.Errorf("For on loaded set: %v", err)
	}
}

func TestLoadSetValidatesCatalog(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	set, _ := BuildAll(db, 20, stats.NewRNG(1))
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Loading against a different catalog must fail loudly.
	other := catalog.NewCatalog()
	otherDB := storage.NewDatabase(other)
	if _, err := otherDB.CreateTable(&catalog.TableSchema{
		Name:       "lineitem",
		Columns:    []catalog.Column{{Name: "different", Type: catalog.Int}},
		PrimaryKey: "different",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSet(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("mismatched catalog accepted")
	}
	if _, err := LoadSet(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := LoadSet(strings.NewReader("junk"), db.Catalog); err == nil {
		t.Error("garbage input accepted")
	}
	if _, err := LoadSet(bytes.NewReader(nil), db.Catalog); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLoadSetRejectsCorruptRows(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	set, _ := BuildAll(db, 20, stats.NewRNG(1))
	// Corrupt a synopsis in memory, save, and confirm load rejects it.
	syn, _ := set.Synopsis("customer")
	syn.Rows[0] = value.Row{value.Int(1)} // wrong width? customer width is 2
	syn.Rows[0] = syn.Rows[0][:1]
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSet(&buf, db.Catalog); err == nil {
		t.Error("corrupt row width accepted")
	}
}
