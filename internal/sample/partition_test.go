package sample

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"strings"
	"testing"

	"robustqo/internal/catalog"
	"robustqo/internal/stats"
	"robustqo/internal/storage"
	"robustqo/internal/testkit"
	"robustqo/internal/value"
)

// partDB is chainDB with lineitem range-partitioned on l_qty into 4
// shards, so the per-shard synopsis machinery sees a real FK chain.
func partDB(t *testing.T, nCust, ordersPerCust, linesPerOrder int) *storage.Database {
	t.Helper()
	cat := catalog.NewCatalog()
	db := storage.NewDatabase(cat)
	cust, err := db.CreateTable(&catalog.TableSchema{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_id", Type: catalog.Int},
			{Name: "c_region", Type: catalog.Int},
		},
		PrimaryKey: "c_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateTable(&catalog.TableSchema{
		Name: "orders",
		Columns: []catalog.Column{
			{Name: "o_id", Type: catalog.Int},
			{Name: "o_cust", Type: catalog.Int},
		},
		PrimaryKey: "o_id",
		Foreign:    []catalog.ForeignKey{{Column: "o_cust", RefTable: "customer"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lineitem, err := db.CreateTable(&catalog.TableSchema{
		Name: "lineitem",
		Columns: []catalog.Column{
			{Name: "l_id", Type: catalog.Int},
			{Name: "l_order", Type: catalog.Int},
			{Name: "l_qty", Type: catalog.Int},
		},
		PrimaryKey: "l_id",
		Foreign:    []catalog.ForeignKey{{Column: "l_order", RefTable: "orders"}},
		Partition: &catalog.PartitionSpec{
			Column: "l_qty", Kind: catalog.RangePartition, Partitions: 4, Bounds: []int64{13, 25, 38},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	oid, lid := int64(0), int64(0)
	for c := 0; c < nCust; c++ {
		_ = cust.Append(value.Row{value.Int(int64(c)), value.Int(int64(c % 5))})
		for o := 0; o < ordersPerCust; o++ {
			_ = orders.Append(value.Row{value.Int(oid), value.Int(int64(c))})
			for l := 0; l < linesPerOrder; l++ {
				_ = lineitem.Append(value.Row{value.Int(lid), value.Int(oid), value.Int(int64(testkit.Intn(rng, 50)))})
				lid++
			}
			oid++
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildPartitionSynopses(t *testing.T) {
	db := partDB(t, 30, 2, 4)
	set, err := BuildAll(db, 120, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	line, _ := db.Table("lineitem")
	shards, ok := set.Partitioned("lineitem")
	if !ok {
		t.Fatal("no per-shard synopses for the partitioned table")
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shard synopses, want 4", len(shards))
	}
	popSum := 0
	for p, syn := range shards {
		if syn == nil {
			if line.PartitionRows(p) != 0 {
				t.Fatalf("shard %d non-empty but has no synopsis", p)
			}
			continue
		}
		if syn.N != line.PartitionRows(p) {
			t.Fatalf("shard %d synopsis population %d, shard holds %d", p, syn.N, line.PartitionRows(p))
		}
		if syn.Size() < 1 {
			t.Fatalf("shard %d synopsis is empty", p)
		}
		// FK expansion must have run: the shard synopsis covers the chain.
		if len(syn.Tables) != 3 {
			t.Fatalf("shard %d covers %v, want the 3-table chain", p, syn.Tables)
		}
		// Every sampled tuple's partition key must route to this shard.
		qtyIdx := -1
		for i, f := range syn.Schema.Fields {
			if f.Table == "lineitem" && f.Column == "l_qty" {
				qtyIdx = i
			}
		}
		for _, row := range syn.Rows {
			if got, _ := line.ShardOfKey(row[qtyIdx].I); got != p {
				t.Fatalf("shard %d sampled qty %d belonging to shard %d", p, row[qtyIdx].I, got)
			}
		}
		popSum += syn.N
	}
	if popSum != line.NumRows() {
		t.Fatalf("shard populations sum to %d, table holds %d", popSum, line.NumRows())
	}
	// ForShards resolves join requests rooted at the partitioned table.
	if _, ok := set.ForShards([]string{"lineitem", "orders"}); !ok {
		t.Error("ForShards failed for a covered join")
	}
	// ...but not requests rooted elsewhere.
	if _, ok := set.ForShards([]string{"customer"}); ok {
		t.Error("ForShards matched an unpartitioned root")
	}
	// Unpartitioned tables have no shard synopses.
	if _, ok := set.Partitioned("orders"); ok {
		t.Error("unpartitioned table has shard synopses")
	}
}

func TestPartitionedPersistRoundTrip(t *testing.T) {
	db := partDB(t, 20, 2, 3)
	set, err := BuildAll(db, 80, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSet(&buf, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := set.Partitioned("lineitem")
	back, ok := loaded.Partitioned("lineitem")
	if !ok || len(back) != len(orig) {
		t.Fatalf("per-shard synopses did not round-trip: ok=%v len=%d want %d", ok, len(back), len(orig))
	}
	pred := testkit.Expr("l_qty < 25 AND c_region = 2")
	for p := range orig {
		if (orig[p] == nil) != (back[p] == nil) {
			t.Fatalf("shard %d presence mismatch", p)
		}
		if orig[p] == nil {
			continue
		}
		k1, err := orig[p].Count(pred)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := back[p].Count(pred)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 || orig[p].N != back[p].N {
			t.Fatalf("shard %d mismatch after round-trip: k %d vs %d, N %d vs %d",
				p, k1, k2, orig[p].N, back[p].N)
		}
	}
}

// TestLoadSetRefusesHeaderless is the satellite regression test: a
// version-1 file (raw gob, no header — what pre-partitioning builds
// wrote) must be refused with an explicit error, not misloaded.
func TestLoadSetRefusesHeaderless(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(savedSet{Version: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadSet(bytes.NewReader(v1.Bytes()), db.Catalog)
	if err == nil {
		t.Fatal("headerless version-1 stream accepted")
	}
	if !strings.Contains(err.Error(), "format-version header") {
		t.Fatalf("headerless refusal lacks a clear message: %v", err)
	}
}

// TestLoadSetRefusesWrongVersion pins the versioned refusal: right magic,
// wrong version number.
func TestLoadSetRefusesWrongVersion(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	var buf bytes.Buffer
	buf.Write(setWireMagic[:])
	if err := binary.Write(&buf, binary.BigEndian, uint32(99)); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(savedSet{Version: 99}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadSet(bytes.NewReader(buf.Bytes()), db.Catalog)
	if err == nil {
		t.Fatal("wrong-version stream accepted")
	}
	if !strings.Contains(err.Error(), "unsupported statistics format version 99") {
		t.Fatalf("version refusal lacks a clear message: %v", err)
	}
}

// TestLoadSetRefusesTruncatedHeader: a short stream fails at the header
// read, not deep inside gob.
func TestLoadSetRefusesTruncatedHeader(t *testing.T) {
	db := chainDB(t, 5, 2, 2)
	if _, err := LoadSet(bytes.NewReader([]byte("RQOS")), db.Catalog); err == nil {
		t.Fatal("truncated header accepted")
	}
}
