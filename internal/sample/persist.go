package sample

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// Statistics are expensive to recompute (a scan per table) relative to
// their size (a few hundred tuples per table), so the set supports
// serialization: build once at UPDATE STATISTICS time, persist, reload in
// any process using the same catalog.
//
// The stream opens with an explicit format header — magic bytes followed
// by a big-endian uint32 version — written before the gob payload. The
// header exists so per-partition synopses can never be silently misloaded
// from (or into) a pre-partitioning file: version-1 files carried no
// header at all, and any other producer's bytes fail the magic check
// before gob ever sees them.

// setWireMagic opens every versioned synopsis stream.
var setWireMagic = [8]byte{'R', 'Q', 'O', 'S', 'T', 'A', 'T', 'S'}

// setWireVersion guards against decoding incompatible formats. Version 2
// introduced the header itself and the per-shard synopses of partitioned
// tables.
const setWireVersion = 2

// savedSynopsis is the gob wire form of a Synopsis. Partition is the
// shard of the root table the sample was drawn from, or -1 for a
// whole-table synopsis.
type savedSynopsis struct {
	Root      string
	Tables    []string
	Fields    []expr.Field
	Rows      []value.Row
	N         int
	Partition int
}

// savedSet is the gob wire form of a Set. Shards[root] is the shard count
// of each partitioned root, so nil entries (empty shards) round-trip.
type savedSet struct {
	Version  int
	Synopses []savedSynopsis
	Shards   map[string]int
}

// Save serializes the set.
func (s *Set) Save(w io.Writer) error {
	if _, err := w.Write(setWireMagic[:]); err != nil {
		return fmt.Errorf("sample: writing header: %v", err)
	}
	if err := binary.Write(w, binary.BigEndian, uint32(setWireVersion)); err != nil {
		return fmt.Errorf("sample: writing header: %v", err)
	}
	out := savedSet{Version: setWireVersion, Shards: make(map[string]int)}
	// Deterministic order: catalog table order, whole-table synopsis
	// first, then shards ascending.
	for _, name := range s.cat.TableNames() {
		syn, ok := s.synopses[name]
		if !ok {
			continue
		}
		out.Synopses = append(out.Synopses, saveSynopsis(syn, -1))
		shards, ok := s.partitioned[name]
		if !ok {
			continue
		}
		out.Shards[name] = len(shards)
		for p, shard := range shards {
			if shard == nil {
				continue
			}
			out.Synopses = append(out.Synopses, saveSynopsis(shard, p))
		}
	}
	if err := gob.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("sample: encoding synopses: %v", err)
	}
	return nil
}

func saveSynopsis(syn *Synopsis, part int) savedSynopsis {
	return savedSynopsis{
		Root:      syn.Root,
		Tables:    syn.Tables,
		Fields:    syn.Schema.Fields,
		Rows:      syn.Rows,
		N:         syn.N,
		Partition: part,
	}
}

// LoadSet deserializes a set saved with Save. The catalog must describe
// the same schema the statistics were built against; each synopsis is
// validated structurally against it. Streams without the format header
// (version-1 files predate it) and streams with a different version are
// refused with an explicit error rather than decoded on faith.
func LoadSet(r io.Reader, cat *catalog.Catalog) (*Set, error) {
	if cat == nil {
		return nil, fmt.Errorf("sample: LoadSet requires a catalog")
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("sample: reading header: %v", err)
	}
	if magic != setWireMagic {
		return nil, fmt.Errorf("sample: statistics file has no format-version header (saved by a pre-partitioning version?); rebuild with UPDATE STATISTICS")
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("sample: reading header: %v", err)
	}
	if version != setWireVersion {
		return nil, fmt.Errorf("sample: unsupported statistics format version %d (want %d); rebuild with UPDATE STATISTICS", version, setWireVersion)
	}
	var in savedSet
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sample: decoding synopses: %v", err)
	}
	if in.Version != setWireVersion {
		return nil, fmt.Errorf("sample: header version %d disagrees with payload version %d", version, in.Version)
	}
	s := &Set{
		cat:         cat,
		synopses:    make(map[string]*Synopsis),
		partitioned: make(map[string][]*Synopsis, len(in.Shards)),
	}
	for root, n := range in.Shards {
		if n < 2 {
			return nil, fmt.Errorf("sample: root %q declares %d shards", root, n)
		}
		s.partitioned[root] = make([]*Synopsis, n)
	}
	for _, saved := range in.Synopses {
		syn := &Synopsis{
			Root:   saved.Root,
			Tables: saved.Tables,
			Schema: expr.RelSchema{Fields: saved.Fields},
			Rows:   saved.Rows,
			N:      saved.N,
		}
		if err := validateAgainstCatalog(syn, cat); err != nil {
			return nil, err
		}
		if saved.Partition < 0 {
			s.synopses[syn.Root] = syn
			continue
		}
		shards, ok := s.partitioned[syn.Root]
		if !ok || saved.Partition >= len(shards) {
			return nil, fmt.Errorf("sample: synopsis for %q shard %d outside declared shard count", syn.Root, saved.Partition)
		}
		shards[saved.Partition] = syn
	}
	return s, nil
}

func validateAgainstCatalog(syn *Synopsis, cat *catalog.Catalog) error {
	if len(syn.Tables) == 0 || syn.Tables[0] != syn.Root {
		return fmt.Errorf("sample: synopsis %q has malformed table list %v", syn.Root, syn.Tables)
	}
	width := 0
	for _, t := range syn.Tables {
		s, ok := cat.Table(t)
		if !ok {
			return fmt.Errorf("sample: synopsis %q covers unknown table %q", syn.Root, t)
		}
		for _, col := range s.Columns {
			if width >= len(syn.Schema.Fields) {
				return fmt.Errorf("sample: synopsis %q schema narrower than catalog", syn.Root)
			}
			f := syn.Schema.Fields[width]
			if f.Table != t || f.Column != col.Name || f.Type != col.Type {
				return fmt.Errorf("sample: synopsis %q field %d is %s.%s %s, catalog has %s.%s %s",
					syn.Root, width, f.Table, f.Column, f.Type, t, col.Name, col.Type)
			}
			width++
		}
	}
	if width != len(syn.Schema.Fields) {
		return fmt.Errorf("sample: synopsis %q schema wider than catalog", syn.Root)
	}
	for i, row := range syn.Rows {
		if len(row) != width {
			return fmt.Errorf("sample: synopsis %q row %d has %d values, want %d", syn.Root, i, len(row), width)
		}
	}
	if syn.N < 0 {
		return fmt.Errorf("sample: synopsis %q has negative population", syn.Root)
	}
	return nil
}
