package sample

import (
	"encoding/gob"
	"fmt"
	"io"

	"robustqo/internal/catalog"
	"robustqo/internal/expr"
	"robustqo/internal/value"
)

// Statistics are expensive to recompute (a scan per table) relative to
// their size (a few hundred tuples per table), so the set supports
// serialization: build once at UPDATE STATISTICS time, persist, reload in
// any process using the same catalog.

// savedSynopsis is the gob wire form of a Synopsis.
type savedSynopsis struct {
	Root   string
	Tables []string
	Fields []expr.Field
	Rows   []value.Row
	N      int
}

// savedSet is the gob wire form of a Set.
type savedSet struct {
	Version  int
	Synopses []savedSynopsis
}

// setWireVersion guards against decoding incompatible formats.
const setWireVersion = 1

// Save serializes the set.
func (s *Set) Save(w io.Writer) error {
	out := savedSet{Version: setWireVersion}
	// Deterministic order: catalog table order.
	for _, name := range s.cat.TableNames() {
		syn, ok := s.synopses[name]
		if !ok {
			continue
		}
		out.Synopses = append(out.Synopses, savedSynopsis{
			Root:   syn.Root,
			Tables: syn.Tables,
			Fields: syn.Schema.Fields,
			Rows:   syn.Rows,
			N:      syn.N,
		})
	}
	if err := gob.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("sample: encoding synopses: %v", err)
	}
	return nil
}

// LoadSet deserializes a set saved with Save. The catalog must describe
// the same schema the statistics were built against; each synopsis is
// validated structurally against it.
func LoadSet(r io.Reader, cat *catalog.Catalog) (*Set, error) {
	if cat == nil {
		return nil, fmt.Errorf("sample: LoadSet requires a catalog")
	}
	var in savedSet
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sample: decoding synopses: %v", err)
	}
	if in.Version != setWireVersion {
		return nil, fmt.Errorf("sample: unsupported statistics format version %d", in.Version)
	}
	s := &Set{cat: cat, synopses: make(map[string]*Synopsis, len(in.Synopses))}
	for _, saved := range in.Synopses {
		syn := &Synopsis{
			Root:   saved.Root,
			Tables: saved.Tables,
			Schema: expr.RelSchema{Fields: saved.Fields},
			Rows:   saved.Rows,
			N:      saved.N,
		}
		if err := validateAgainstCatalog(syn, cat); err != nil {
			return nil, err
		}
		s.synopses[syn.Root] = syn
	}
	return s, nil
}

func validateAgainstCatalog(syn *Synopsis, cat *catalog.Catalog) error {
	if len(syn.Tables) == 0 || syn.Tables[0] != syn.Root {
		return fmt.Errorf("sample: synopsis %q has malformed table list %v", syn.Root, syn.Tables)
	}
	width := 0
	for _, t := range syn.Tables {
		s, ok := cat.Table(t)
		if !ok {
			return fmt.Errorf("sample: synopsis %q covers unknown table %q", syn.Root, t)
		}
		for _, col := range s.Columns {
			if width >= len(syn.Schema.Fields) {
				return fmt.Errorf("sample: synopsis %q schema narrower than catalog", syn.Root)
			}
			f := syn.Schema.Fields[width]
			if f.Table != t || f.Column != col.Name || f.Type != col.Type {
				return fmt.Errorf("sample: synopsis %q field %d is %s.%s %s, catalog has %s.%s %s",
					syn.Root, width, f.Table, f.Column, f.Type, t, col.Name, col.Type)
			}
			width++
		}
	}
	if width != len(syn.Schema.Fields) {
		return fmt.Errorf("sample: synopsis %q schema wider than catalog", syn.Root)
	}
	for i, row := range syn.Rows {
		if len(row) != width {
			return fmt.Errorf("sample: synopsis %q row %d has %d values, want %d", syn.Root, i, len(row), width)
		}
	}
	if syn.N < 0 {
		return fmt.Errorf("sample: synopsis %q has negative population", syn.Root)
	}
	return nil
}
