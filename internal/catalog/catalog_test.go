package catalog

import (
	"strings"
	"testing"
)

func lineitemSchema() *TableSchema {
	return &TableSchema{
		Name: "lineitem",
		Columns: []Column{
			{Name: "l_id", Type: Int},
			{Name: "l_orderkey", Type: Int},
			{Name: "l_partkey", Type: Int},
			{Name: "l_shipdate", Type: Date},
			{Name: "l_receiptdate", Type: Date},
			{Name: "l_extendedprice", Type: Float},
		},
		PrimaryKey: "l_id",
		Foreign: []ForeignKey{
			{Column: "l_orderkey", RefTable: "orders"},
			{Column: "l_partkey", RefTable: "part"},
		},
		Indexes: []Index{
			{Name: "ix_ship", Column: "l_shipdate", Kind: NonClustered},
			{Name: "ix_receipt", Column: "l_receiptdate", Kind: NonClustered},
		},
	}
}

func ordersSchema() *TableSchema {
	return &TableSchema{
		Name: "orders",
		Columns: []Column{
			{Name: "o_orderkey", Type: Int},
			{Name: "o_custkey", Type: Int},
		},
		PrimaryKey: "o_orderkey",
	}
}

func partSchema() *TableSchema {
	return &TableSchema{
		Name: "part",
		Columns: []Column{
			{Name: "p_partkey", Type: Int},
			{Name: "p_size", Type: Int},
		},
		PrimaryKey: "p_partkey",
	}
}

func buildTPCHCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, s := range []*TableSchema{lineitemSchema(), ordersSchema(), partSchema()} {
		if err := c.AddTable(s); err != nil {
			t.Fatalf("AddTable(%s): %v", s.Name, err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{Int: "INT", Float: "FLOAT", String: "VARCHAR", Date: "DATE"} {
		if got := typ.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(typ), got, want)
		}
	}
	if got := Type(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestIndexKindString(t *testing.T) {
	if Clustered.String() != "CLUSTERED" || NonClustered.String() != "NONCLUSTERED" {
		t.Error("IndexKind strings wrong")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := lineitemSchema()
	if got := s.ColumnIndex("l_shipdate"); got != 3 {
		t.Errorf("ColumnIndex = %d", got)
	}
	if got := s.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d", got)
	}
	col, ok := s.Column("l_extendedprice")
	if !ok || col.Type != Float {
		t.Errorf("Column = %+v, %v", col, ok)
	}
	if _, ok := s.Column("nope"); ok {
		t.Error("Column(nope) found")
	}
	ix, ok := s.IndexOn("l_shipdate")
	if !ok || ix.Name != "ix_ship" {
		t.Errorf("IndexOn = %+v, %v", ix, ok)
	}
	if _, ok := s.IndexOn("l_extendedprice"); ok {
		t.Error("IndexOn unindexed column found")
	}
	fk, ok := s.ForeignKeyTo("part")
	if !ok || fk.Column != "l_partkey" {
		t.Errorf("ForeignKeyTo = %+v, %v", fk, ok)
	}
	if _, ok := s.ForeignKeyTo("nation"); ok {
		t.Error("ForeignKeyTo(nation) found")
	}
}

func TestAddTableValidation(t *testing.T) {
	cases := []struct {
		name   string
		schema *TableSchema
		errSub string
	}{
		{"nil", nil, "name"},
		{"empty name", &TableSchema{}, "name"},
		{"no columns", &TableSchema{Name: "t"}, "no columns"},
		{"unnamed column", &TableSchema{Name: "t", Columns: []Column{{}}}, "unnamed"},
		{"dup column", &TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}}}, "duplicate column"},
		{"pk not a column", &TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: Int}}, PrimaryKey: "b"}, "primary key"},
		{"pk not int", &TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: String}}, PrimaryKey: "a"}, "must be INT"},
		{"fk column missing", &TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: Int}},
			Foreign: []ForeignKey{{Column: "x", RefTable: "u"}}}, "foreign key column"},
		{"fk not int", &TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: Float}},
			Foreign: []ForeignKey{{Column: "a", RefTable: "u"}}}, "must be INT"},
		{"fk self", &TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: Int}},
			Foreign: []ForeignKey{{Column: "a", RefTable: "t"}}}, "self-referencing"},
		{"index bad column", &TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: Int}},
			Indexes: []Index{{Name: "ix", Column: "z"}}}, "unknown column"},
	}
	for _, c := range cases {
		err := NewCatalog().AddTable(c.schema)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.errSub)
		}
	}
}

func TestAddTableDuplicate(t *testing.T) {
	c := NewCatalog()
	if err := c.AddTable(ordersSchema()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(ordersSchema()); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestValidateMissingRef(t *testing.T) {
	c := NewCatalog()
	if err := c.AddTable(lineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("Validate = %v", err)
	}
}

func TestValidateRefWithoutPK(t *testing.T) {
	c := NewCatalog()
	noPK := &TableSchema{Name: "dim", Columns: []Column{{Name: "d", Type: Int}}}
	fact := &TableSchema{Name: "fact", Columns: []Column{{Name: "fk", Type: Int}},
		Foreign: []ForeignKey{{Column: "fk", RefTable: "dim"}}}
	if err := c.AddTable(noPK); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "no primary key") {
		t.Errorf("Validate = %v", err)
	}
}

func TestValidateCycle(t *testing.T) {
	c := NewCatalog()
	a := &TableSchema{Name: "a", Columns: []Column{{Name: "id", Type: Int}, {Name: "b_id", Type: Int}},
		PrimaryKey: "id", Foreign: []ForeignKey{{Column: "b_id", RefTable: "b"}}}
	b := &TableSchema{Name: "b", Columns: []Column{{Name: "id", Type: Int}, {Name: "a_id", Type: Int}},
		PrimaryKey: "id", Foreign: []ForeignKey{{Column: "a_id", RefTable: "a"}}}
	if err := c.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(b); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Validate = %v", err)
	}
}

func TestTableNamesOrder(t *testing.T) {
	c := buildTPCHCatalog(t)
	got := c.TableNames()
	want := []string{"lineitem", "orders", "part"}
	if len(got) != len(want) {
		t.Fatalf("TableNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TableNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFKClosure(t *testing.T) {
	c := buildTPCHCatalog(t)
	got, err := c.FKClosure("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"lineitem", "orders", "part"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("FKClosure(lineitem) = %v", got)
	}
	got, err = c.FKClosure("orders")
	if err != nil || len(got) != 1 || got[0] != "orders" {
		t.Errorf("FKClosure(orders) = %v, %v", got, err)
	}
	if _, err := c.FKClosure("nope"); err == nil {
		t.Error("FKClosure(nope) succeeded")
	}
}

func TestRootOf(t *testing.T) {
	c := buildTPCHCatalog(t)
	root, err := c.RootOf([]string{"part", "lineitem", "orders"})
	if err != nil || root != "lineitem" {
		t.Errorf("RootOf = %q, %v", root, err)
	}
	root, err = c.RootOf([]string{"part"})
	if err != nil || root != "part" {
		t.Errorf("RootOf(part) = %q, %v", root, err)
	}
	// orders and part are unconnected: two roots.
	if _, err := c.RootOf([]string{"orders", "part"}); err == nil {
		t.Error("RootOf with two roots succeeded")
	}
	if _, err := c.RootOf(nil); err == nil {
		t.Error("RootOf(empty) succeeded")
	}
	if _, err := c.RootOf([]string{"nope"}); err == nil {
		t.Error("RootOf(unknown) succeeded")
	}
}

func TestTableLookup(t *testing.T) {
	c := buildTPCHCatalog(t)
	s, ok := c.Table("orders")
	if !ok || s.Name != "orders" {
		t.Errorf("Table(orders) = %v, %v", s, ok)
	}
	if _, ok := c.Table("ghost"); ok {
		t.Error("Table(ghost) found")
	}
}
