// Package catalog defines the schema metadata layer of the database
// substrate: column types, table schemas, primary and foreign keys, and
// index descriptors. The sampling, histogram, optimizer, and execution
// layers all consult the catalog rather than carrying schema knowledge of
// their own.
package catalog

import (
	"fmt"
	"sort"
)

// Type enumerates the column value types supported by the engine.
type Type int

const (
	// Int is a 64-bit signed integer column.
	Int Type = iota
	// Float is a 64-bit floating point column.
	Float
	// String is a variable-length string column.
	String
	// Date is a day-granularity date column stored as days since an
	// arbitrary epoch; it compares and ranges like Int.
	Date
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
}

// ForeignKey declares that Column of the owning table references the
// primary key of RefTable. Only single-column foreign keys to single-column
// primary keys are supported, matching the paper's foreign-key-join query
// model.
type ForeignKey struct {
	Column   string // column in the owning table
	RefTable string // referenced table (whose PK the column stores)
}

// IndexKind distinguishes the physical index layouts the cost model knows
// about.
type IndexKind int

const (
	// Clustered means the table rows are stored in index order; a range
	// scan reads sequential pages.
	Clustered IndexKind = iota
	// NonClustered is a secondary index whose leaf entries are RIDs;
	// fetching qualifying rows costs one random page read per row.
	NonClustered
)

func (k IndexKind) String() string {
	if k == Clustered {
		return "CLUSTERED"
	}
	return "NONCLUSTERED"
}

// Index describes an index over a single column of a table.
type Index struct {
	Name   string
	Column string
	Kind   IndexKind
}

// PartitionKind distinguishes the horizontal-partitioning schemes the
// storage layer implements.
type PartitionKind int

const (
	// HashPartition routes each row to shard hash(key) mod N. Equality
	// predicates on the key prune to a single shard; range predicates
	// cannot prune.
	HashPartition PartitionKind = iota
	// RangePartition routes each row by comparing the key against the
	// ascending Bounds: shard 0 holds keys below Bounds[0], shard i holds
	// [Bounds[i-1], Bounds[i]), and the last shard holds everything from
	// Bounds[N-2] up. Both equality and range predicates prune.
	RangePartition
)

func (k PartitionKind) String() string {
	if k == HashPartition {
		return "HASH"
	}
	return "RANGE"
}

// PartitionSpec declares horizontal partitioning of a table on a single
// Int or Date column. Partitions == 1 (or a nil spec) is the unpartitioned
// degenerate case.
type PartitionSpec struct {
	Column     string
	Kind       PartitionKind
	Partitions int
	// Bounds are the N-1 ascending split points of a RangePartition;
	// must be empty for HashPartition.
	Bounds []int64
}

// TableSchema is the static description of one table.
type TableSchema struct {
	Name       string
	Columns    []Column
	PrimaryKey string // name of the PK column ("" if none); must be of type Int
	Foreign    []ForeignKey
	Indexes    []Index
	// Ordered lists columns by which the physical row order is known to be
	// non-decreasing (e.g. the clustering key, or correlated surrogate
	// keys). The optimizer uses it to skip sorts before merge joins.
	Ordered []string
	// Partition, when non-nil with Partitions > 1, splits the table into
	// per-shard physical segments keyed on Partition.Column. Row ids stay
	// global (partition-major), so readers see one logical table.
	Partition *PartitionSpec
}

// OrderedBy reports whether the physical row order is non-decreasing in
// the named column.
func (s *TableSchema) OrderedBy(column string) bool {
	for _, c := range s.Ordered {
		if c == column {
			return true
		}
	}
	return false
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the column descriptor by name.
func (s *TableSchema) Column(name string) (Column, bool) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Columns[i], true
}

// IndexOn returns the index over the named column, if any.
func (s *TableSchema) IndexOn(column string) (Index, bool) {
	for _, ix := range s.Indexes {
		if ix.Column == column {
			return ix, true
		}
	}
	return Index{}, false
}

// ForeignKeyTo returns the foreign key from this table to ref, if any.
func (s *TableSchema) ForeignKeyTo(ref string) (ForeignKey, bool) {
	for _, fk := range s.Foreign {
		if fk.RefTable == ref {
			return fk, true
		}
	}
	return ForeignKey{}, false
}

// Catalog is the set of table schemas making up a database, with the
// foreign-key graph validated to be acyclic (the paper assumes acyclic join
// graphs so that join synopses are well defined).
type Catalog struct {
	tables map[string]*TableSchema
	order  []string // insertion order, for deterministic iteration
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*TableSchema)}
}

// AddTable validates and registers a schema. Foreign keys may reference
// tables added later; validation of reference targets and acyclicity
// happens in Validate (called implicitly by users such as the synopsis
// builder, and explicitly by Database.Validate).
func (c *Catalog) AddTable(s *TableSchema) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("catalog: table must have a name")
	}
	if _, dup := c.tables[s.Name]; dup {
		return fmt.Errorf("catalog: duplicate table %q", s.Name)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, col := range s.Columns {
		if col.Name == "" {
			return fmt.Errorf("catalog: table %q has an unnamed column", s.Name)
		}
		if seen[col.Name] {
			return fmt.Errorf("catalog: table %q has duplicate column %q", s.Name, col.Name)
		}
		seen[col.Name] = true
	}
	if s.PrimaryKey != "" {
		pk, ok := s.Column(s.PrimaryKey)
		if !ok {
			return fmt.Errorf("catalog: table %q primary key %q is not a column", s.Name, s.PrimaryKey)
		}
		if pk.Type != Int {
			return fmt.Errorf("catalog: table %q primary key %q must be INT, got %s", s.Name, s.PrimaryKey, pk.Type)
		}
	}
	for _, fk := range s.Foreign {
		col, ok := s.Column(fk.Column)
		if !ok {
			return fmt.Errorf("catalog: table %q foreign key column %q is not a column", s.Name, fk.Column)
		}
		if col.Type != Int {
			return fmt.Errorf("catalog: table %q foreign key column %q must be INT", s.Name, fk.Column)
		}
		if fk.RefTable == s.Name {
			return fmt.Errorf("catalog: table %q has a self-referencing foreign key", s.Name)
		}
	}
	for _, ix := range s.Indexes {
		if _, ok := s.Column(ix.Column); !ok {
			return fmt.Errorf("catalog: table %q index %q over unknown column %q", s.Name, ix.Name, ix.Column)
		}
	}
	if err := validatePartition(s); err != nil {
		return err
	}
	c.tables[s.Name] = s
	c.order = append(c.order, s.Name)
	return nil
}

// validatePartition checks a schema's partition declaration: the key must
// be an existing Int or Date column, the shard count positive, and range
// bounds strictly ascending with exactly one fewer bound than shards.
func validatePartition(s *TableSchema) error {
	p := s.Partition
	if p == nil {
		return nil
	}
	col, ok := s.Column(p.Column)
	if !ok {
		return fmt.Errorf("catalog: table %q partition key %q is not a column", s.Name, p.Column)
	}
	if col.Type != Int && col.Type != Date {
		return fmt.Errorf("catalog: table %q partition key %q must be INT or DATE, got %s", s.Name, p.Column, col.Type)
	}
	if p.Partitions < 1 {
		return fmt.Errorf("catalog: table %q declares %d partitions; need at least 1", s.Name, p.Partitions)
	}
	switch p.Kind {
	case HashPartition:
		if len(p.Bounds) != 0 {
			return fmt.Errorf("catalog: table %q hash partitioning takes no bounds, got %d", s.Name, len(p.Bounds))
		}
	case RangePartition:
		if len(p.Bounds) != p.Partitions-1 {
			return fmt.Errorf("catalog: table %q range partitioning into %d shards needs %d bounds, got %d",
				s.Name, p.Partitions, p.Partitions-1, len(p.Bounds))
		}
		for i := 1; i < len(p.Bounds); i++ {
			if p.Bounds[i] <= p.Bounds[i-1] {
				return fmt.Errorf("catalog: table %q range bounds must be strictly ascending; bound %d (%d) <= bound %d (%d)",
					s.Name, i, p.Bounds[i], i-1, p.Bounds[i-1])
			}
		}
	default:
		return fmt.Errorf("catalog: table %q has unknown partition kind %d", s.Name, int(p.Kind))
	}
	return nil
}

// Table returns the schema for the named table.
func (c *Catalog) Table(name string) (*TableSchema, bool) {
	s, ok := c.tables[name]
	return s, ok
}

// TableNames returns table names in insertion order.
func (c *Catalog) TableNames() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Validate checks that all foreign keys reference existing tables with
// primary keys and that the foreign-key graph is acyclic.
func (c *Catalog) Validate() error {
	for _, name := range c.order {
		s := c.tables[name]
		for _, fk := range s.Foreign {
			ref, ok := c.tables[fk.RefTable]
			if !ok {
				return fmt.Errorf("catalog: table %q references unknown table %q", name, fk.RefTable)
			}
			if ref.PrimaryKey == "" {
				return fmt.Errorf("catalog: table %q references table %q which has no primary key", name, fk.RefTable)
			}
		}
	}
	return c.checkAcyclic()
}

func (c *Catalog) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(c.tables))
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("catalog: foreign-key cycle through table %q", name)
		case black:
			return nil
		}
		color[name] = gray
		for _, fk := range c.tables[name].Foreign {
			if _, ok := c.tables[fk.RefTable]; !ok {
				continue // reported by Validate
			}
			if err := visit(fk.RefTable); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for _, name := range c.order {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// FKClosure returns the set of tables reachable from root by following
// foreign keys (including root itself), sorted by name. This is the set of
// tables folded into root's join synopsis.
func (c *Catalog) FKClosure(root string) ([]string, error) {
	if _, ok := c.tables[root]; !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", root)
	}
	seen := map[string]bool{root: true}
	stack := []string{root}
	for len(stack) > 0 {
		name := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fk := range c.tables[name].Foreign {
			if !seen[fk.RefTable] {
				if _, ok := c.tables[fk.RefTable]; !ok {
					return nil, fmt.Errorf("catalog: table %q references unknown table %q", name, fk.RefTable)
				}
				seen[fk.RefTable] = true
				stack = append(stack, fk.RefTable)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// RootOf determines the root relation of a set of tables joined by foreign
// keys: the one table whose primary key is not referenced by any other
// table in the set. The paper's estimation procedure evaluates each SPJ
// expression on the join synopsis of its root relation.
func (c *Catalog) RootOf(tables []string) (string, error) {
	if len(tables) == 0 {
		return "", fmt.Errorf("catalog: empty table set")
	}
	inSet := make(map[string]bool, len(tables))
	for _, t := range tables {
		if _, ok := c.tables[t]; !ok {
			return "", fmt.Errorf("catalog: unknown table %q", t)
		}
		inSet[t] = true
	}
	referenced := make(map[string]bool)
	for _, t := range tables {
		for _, fk := range c.tables[t].Foreign {
			if inSet[fk.RefTable] {
				referenced[fk.RefTable] = true
			}
		}
	}
	var roots []string
	for _, t := range tables {
		if !referenced[t] {
			roots = append(roots, t)
		}
	}
	if len(roots) != 1 {
		return "", fmt.Errorf("catalog: table set %v has %d roots; expected exactly 1 (acyclic foreign-key join)", tables, len(roots))
	}
	return roots[0], nil
}
